examples/merkle_batching.mli:
