examples/quickstart.mli:
