examples/throughput_study.mli:
