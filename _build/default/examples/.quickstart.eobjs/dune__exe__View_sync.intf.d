examples/view_sync.mli:
