examples/partition_study.ml: Bftsim_core Format List
