examples/merkle_batching.ml: Bftsim_core Bftsim_crypto Bftsim_net Format List Printf String
