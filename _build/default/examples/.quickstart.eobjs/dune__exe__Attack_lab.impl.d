examples/attack_lab.ml: Bftsim_core Format List
