examples/custom_protocol.ml: Bftsim_attack Bftsim_core Bftsim_net Bftsim_protocols Bftsim_sim Format List Printf String
