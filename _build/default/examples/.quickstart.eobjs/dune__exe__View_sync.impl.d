examples/view_sync.ml: Bftsim_core Bftsim_net Format
