examples/quickstart.ml: Bftsim_core Bftsim_net Bftsim_protocols Format List
