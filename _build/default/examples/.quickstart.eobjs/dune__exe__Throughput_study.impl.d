examples/throughput_study.ml: Bftsim_core Bftsim_net Format List
