(* Throughput study — the extension the paper sketches in §III-A3:
   "estimate the computation time through calculating the number of
   computational extensive operations, such as cryptography operations."

   With a cost model attached, every outgoing message charges signing time
   and every incoming message charges verification time on the node's
   sequential CPU, so quadratic message complexity turns into real
   compute-bound throughput limits — visible below as PBFT (O(n^2)
   messages per decision) falling behind chained HotStuff (O(n)) much
   faster once verification stops being free.

   Run with: dune exec examples/throughput_study.exe *)

module Core = Bftsim_core
module Net = Bftsim_net

let throughput ~protocol ~n ~costs =
  let config =
    Core.Config.make protocol ~n ~seed:11 ~decisions_target:20 ~costs
      ~delay:(Net.Delay_model.normal ~mu:50. ~sigma:10.)
  in
  Core.Controller.throughput (Core.Controller.run config)

let () =
  Format.printf "Decided values per second, 20-decision runs, N(50,10) delays:@.@.";
  Format.printf "  %-12s %-5s %12s %12s %12s@." "protocol" "n" "free crypto" "commodity" "rsa2048";
  List.iter
    (fun protocol ->
      List.iter
        (fun n ->
          Format.printf "  %-12s %-5d" protocol n;
          List.iter
            (fun costs -> Format.printf " %9.2f/s  " (throughput ~protocol ~n ~costs))
            [ Core.Cost_model.zero; Core.Cost_model.commodity; Core.Cost_model.rsa2048 ];
          Format.printf "@.")
        [ 8; 16; 32; 64 ])
    [ "pbft"; "hotstuff-ns" ];
  Format.printf
    "@.Reading: without costs, latency is purely network-bound and n barely@.\
     matters.  With crypto charged, throughput falls as n grows — and PBFT,@.\
     whose per-decision message count is quadratic in n, pays a steeper@.\
     verification backlog than HotStuff's linear leader communication.@."
