(* View-synchronization analysis (paper §IV-D, Fig. 9): sample every
   node's view during a HotStuff+NS run and render the timeline.

   With lambda = 150 ms against actual delays of N(250, 50) the assumed
   bound is wrong, the naive synchronizer keeps firing, and node views
   stagger; with lambda = 1000 ms the timeline is a clean staircase.

   Run with: dune exec examples/view_sync.exe *)

module Core = Bftsim_core
module Net = Bftsim_net

let run ~lambda_ms ~seed =
  let config =
    Core.Config.make "hotstuff-ns" ~lambda_ms ~seed
      ~delay:(Net.Delay_model.normal ~mu:250. ~sigma:50.)
      ~view_sample_ms:250.
  in
  let result = Core.Controller.run config in
  Format.printf "@.lambda = %.0f ms (seed %d): %a after %.1f s@." lambda_ms seed
    Core.Controller.pp_outcome result.outcome
    (result.time_ms /. 1000.);
  print_string (Core.View_tracker.render ~width:80 result.view_samples);
  let d = Core.View_tracker.analyze ~sample_ms:250. result.view_samples in
  Format.printf "max view spread %d; %.1f s spent with diverged views@." d.max_spread
    (d.time_desynced_ms /. 1000.)

let () =
  run ~lambda_ms:150. ~seed:9;
  run ~lambda_ms:1000. ~seed:9;
  Format.printf
    "@.Underestimated delay bounds make the nodes' views stagger (non-uniform@.\
     columns above); a correct bound keeps every node in the same view.@."
