(* Batched proposals with Merkle commitments.

   Real BFT deployments do not broadcast full client batches in every
   protocol message: the leader commits to a batch with a Merkle root, the
   protocol agrees on the 32-byte root, and clients later fetch logarithmic
   inclusion proofs for their own requests.  This example runs PBFT over
   such commitments and then audits them: every client request gets an
   inclusion proof against the decided root, and a tampered request is
   rejected.

   Run with: dune exec examples/merkle_batching.exe *)

module Core = Bftsim_core
module Net = Bftsim_net
module Merkle = Bftsim_crypto.Merkle
module Sha256 = Bftsim_crypto.Sha256

let () =
  (* The batch the view-0 primary wants decided. *)
  let batch = List.init 12 (fun i -> Printf.sprintf "transfer(acct%d -> acct%d, %d)" i (i + 1) (10 * (i + 1))) in
  let root = Merkle.root batch in
  let commitment = Sha256.to_hex root in
  Format.printf "batch of %d requests, Merkle root %s...@." (List.length batch)
    (String.sub commitment 0 16);

  (* Agree on the commitment: every node proposes it (the primary's value
     wins), so the decided value *is* the root. *)
  let config =
    Core.Config.make "pbft" ~n:16 ~seed:3
      ~delay:(Net.Delay_model.normal ~mu:250. ~sigma:50.)
      ~inputs:(Core.Config.Same commitment)
  in
  let result = Core.Controller.run config in
  let decided =
    match List.find_opt (fun (_, values) -> values <> []) result.decisions with
    | Some (_, value :: _) -> value
    | _ -> failwith "no decision"
  in
  Format.printf "consensus: %a in %.2f s, decided %s...@." Core.Controller.pp_outcome
    result.outcome (result.time_ms /. 1000.)
    (String.sub decided 0 16);
  assert (String.length decided >= String.length commitment);

  (* Audit: inclusion proofs for every request against the decided root. *)
  let proofs_ok =
    List.for_all
      (fun i -> Merkle.verify ~root ~leaf:(List.nth batch i) (Merkle.prove batch i))
      (List.init (List.length batch) (fun i -> i))
  in
  Format.printf "inclusion proofs for all %d requests: %s@." (List.length batch)
    (if proofs_ok then "valid" else "INVALID");

  (* A forged request cannot prove inclusion. *)
  let forged_ok = Merkle.verify ~root ~leaf:"transfer(acct0 -> attacker, 999999)" (Merkle.prove batch 0) in
  Format.printf "forged request accepted: %b (proof sizes: %d hashes per request)@." forged_ok
    (List.length (Merkle.prove batch 0))
