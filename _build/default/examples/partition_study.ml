(* Partition study (paper §IV-C1, Fig. 6): split the network into two
   subnets, heal after a while, and watch how long each protocol needs to
   reach its first consensus.

   The interesting contrast: LibraBFT's timeout certificates re-synchronize
   all views within one message delay of the heal, while HotStuff+NS's
   naive view-doubling synchronizer accumulated an exponential timeout
   backlog during the partition and still has to wait it out.

   Run with: dune exec examples/partition_study.exe *)

module Core = Bftsim_core

let study ~heal_s =
  let heal_ms = heal_s *. 1000. in
  Format.printf "@.Partition from 0 s to %.0f s (cross traffic dropped):@." heal_s;
  Format.printf "  %-12s %-14s %s@." "protocol" "consensus at" "overhang after heal";
  List.iter
    (fun protocol ->
      let config =
        Core.Config.make protocol ~seed:7 ~decisions_target:1
          ~attack:
            (Core.Config.Partition { first_size = 8; start_ms = 0.; heal_ms; drop = true })
      in
      let summary = Core.Runner.run_many ~reps:10 config in
      let mean_s = summary.latency_ms.Core.Stats.mean /. 1000. in
      Format.printf "  %-12s %8.1f s    +%.1f s@." protocol mean_s (mean_s -. heal_s))
    Core.Experiments.fig6_protocols

let () =
  study ~heal_s:10.;
  study ~heal_s:20.;
  Format.printf
    "@.Note how HotStuff+NS's overhang grows with the partition length while@.\
     the others stay within a few seconds of the heal.@."
