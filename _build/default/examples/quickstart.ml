(* Quickstart: simulate PBFT with 16 nodes on a partially-synchronous
   network and read off the paper's two metrics (time and message usage).

   Run with: dune exec examples/quickstart.exe *)

module Core = Bftsim_core
module Net = Bftsim_net

let () =
  (* A configuration = protocol + network model + (optional) attack.
     [Config.make] fills in the paper's defaults for everything else. *)
  let config =
    Core.Config.make "pbft" ~n:16 ~lambda_ms:1000.
      ~delay:(Net.Delay_model.normal ~mu:250. ~sigma:50.)
      ~seed:2024
  in
  let result = Core.Controller.run config in
  Format.printf "One run of %s:@." (Core.Config.describe config);
  Format.printf "  outcome      : %a@." Core.Controller.pp_outcome result.outcome;
  Format.printf "  time usage   : %.3f s@." (result.time_ms /. 1000.);
  Format.printf "  message usage: %d messages@." result.messages_sent;
  Format.printf "  agreement    : %b@." result.safety_ok;

  (* Repetition harness: the paper runs each experiment 100 times and
     reports mean and standard deviation. *)
  let summary = Core.Runner.run_many ~reps:20 config in
  Format.printf "@.Across %d runs:@." summary.reps;
  Format.printf "  latency : %a@." Core.Stats.pp_ms_as_s summary.latency_ms;
  Format.printf "  messages: %a@." Core.Stats.pp summary.messages;

  (* The same workload on every implemented protocol. *)
  Format.printf "@.All eight protocols on N(250,50), lambda = 1000 ms:@.";
  List.iter
    (fun name ->
      let config = Core.Config.make name ~seed:2024 in
      let summary = Core.Runner.run_many ~reps:10 config in
      Format.printf "  %a@." Core.Runner.pp_summary summary)
    (Bftsim_protocols.Registry.names ())
