(* Attack lab (paper §IV-C3/C4, Fig. 8): the static and rushing-adaptive
   attacks against the three ADD+ variants.

   - static: crash the first f scheduled leaders before the run.  v1's
     deterministic round-robin schedule makes its first f iterations
     worthless; v2/v3's VRF election is immune.
   - rushing adaptive: observe each iteration's credentials in flight and
     corrupt the winner.  v2 loses its proposal every time; v3's prepare
     round already delivered the proposal, so the corruption is wasted.

   Run with: dune exec examples/attack_lab.exe *)

module Core = Bftsim_core

let sweep ~label make_config =
  Format.printf "@.%s (latency in s, mean of 10 runs):@." label;
  Format.printf "  %-8s" "f";
  List.iter (fun f -> Format.printf " %8d" f) Core.Experiments.fig8_f_values;
  Format.printf "@.";
  List.iter
    (fun protocol ->
      Format.printf "  %-8s" protocol;
      List.iter
        (fun f ->
          let summary = Core.Runner.run_many ~reps:10 (make_config ~protocol ~f) in
          Format.printf " %8.1f" (summary.Core.Runner.latency_ms.Core.Stats.mean /. 1000.))
        Core.Experiments.fig8_f_values;
      Format.printf "@.")
    Core.Experiments.add_variants

let () =
  sweep ~label:"Static attack (crash the first f round-robin leaders)"
    (fun ~protocol ~f -> Core.Experiments.fig8_static_config ~protocol ~f ~seed:17);
  sweep ~label:"Rushing adaptive attack (corrupt each revealed VRF winner, budget f)"
    (fun ~protocol ~f -> Core.Experiments.fig8_adaptive_config ~protocol ~f ~seed:17);
  Format.printf
    "@.Shape check (paper Fig. 8): under the static attack only add-v1 grows@.\
     with f; under the rushing adaptive attack only add-v2 grows with f.@."
