(* Tests for the network module: envelopes, delay models (including the
   mapping to the paper's three network models), topology and counters. *)

open Bftsim_sim
open Bftsim_net

let rng () = Rng.create 1234

(* --- Message --- *)

let test_message_make () =
  let m = Message.make ~id:7 ~src:1 ~dst:2 ~sent_at:(Time.of_ms 100.) (Message.Blob "hello") in
  Alcotest.(check int) "id" 7 m.Message.id;
  Alcotest.(check string) "default tag" "msg" m.Message.tag;
  Alcotest.(check int) "default size" Message.default_size m.Message.size;
  Alcotest.(check (float 1e-9)) "no delay yet" 0. m.Message.delay_ms

let test_message_arrival () =
  let m = Message.make ~id:1 ~src:0 ~dst:1 ~sent_at:(Time.of_ms 100.) (Message.Blob "x") in
  m.Message.delay_ms <- 40.;
  Alcotest.(check (float 1e-9)) "arrival = sent + delay" 140. (Time.to_ms (Message.arrival_time m))

let test_message_printer_registry () =
  Alcotest.(check string) "blob fallback" "Blob(hi)" (Message.payload_to_string (Message.Blob "hi"));
  (* Registered printers see protocol payloads. *)
  let s = Message.payload_to_string (Bftsim_protocols.Pbft.Prepare { view = 1; slot = 2; value = "v" }) in
  Alcotest.(check string) "pbft prepare rendered" "Prepare(v=1,s=2,v)" s

(* --- Delay_model --- *)

let test_delay_constant () =
  let m = Delay_model.Constant 42. in
  for _ = 1 to 10 do
    Alcotest.(check (float 1e-9)) "constant" 42. (Delay_model.sample m (rng ()))
  done;
  Alcotest.(check (option (float 1e-9))) "bound" (Some 42.) (Delay_model.upper_bound m)

let test_delay_uniform_bounds () =
  let m = Delay_model.Uniform { lo = 10.; hi = 20. } in
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Delay_model.sample m r in
    if v < 10. || v >= 20. then Alcotest.failf "uniform delay out of bounds: %f" v
  done;
  Alcotest.(check (option (float 1e-9))) "upper bound" (Some 20.) (Delay_model.upper_bound m)

let test_delay_normal_nonnegative () =
  (* Truncation matters when mu is close to 0 relative to sigma. *)
  let m = Delay_model.normal ~mu:10. ~sigma:100. in
  let r = rng () in
  for _ = 1 to 5000 do
    let v = Delay_model.sample m r in
    if v < 0. then Alcotest.failf "negative delay: %f" v
  done;
  Alcotest.(check (option (float 1e-9))) "normal unbounded" None (Delay_model.upper_bound m)

let test_delay_bounded () =
  let m = Delay_model.bounded (Delay_model.normal ~mu:250. ~sigma:50.) ~bound:260. in
  let r = rng () in
  for _ = 1 to 2000 do
    let v = Delay_model.sample m r in
    if v > 260. then Alcotest.failf "bound violated: %f" v
  done;
  Alcotest.(check (option (float 1e-9))) "bound reported" (Some 260.) (Delay_model.upper_bound m)

let test_delay_mean () =
  Alcotest.(check (float 1e-9)) "uniform mean" 15.
    (Delay_model.mean (Delay_model.Uniform { lo = 10.; hi = 20. }));
  Alcotest.(check (float 1e-9)) "normal mean" 250. (Delay_model.mean (Delay_model.normal ~mu:250. ~sigma:50.));
  Alcotest.(check (float 1e-9)) "exp mean" 300. (Delay_model.mean (Delay_model.Exponential { mean = 300. }))

let test_delay_describe_parse_roundtrip () =
  let cases =
    [ "constant:100"; "uniform:10,20"; "normal:250,50"; "exp:300"; "poisson:250";
      "bounded:normal:250,50@1000" ]
  in
  List.iter
    (fun s ->
      match Delay_model.of_string s with
      | Error e -> Alcotest.failf "parse %s failed: %s" s e
      | Ok m -> ignore (Delay_model.describe m))
    cases;
  (match Delay_model.of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense parsed");
  (match Delay_model.of_string "uniform:20,10" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inverted uniform accepted");
  match Delay_model.of_string "normal:250,50" with
  | Ok (Delay_model.Normal { mu; sigma }) ->
    Alcotest.(check (float 1e-9)) "mu" 250. mu;
    Alcotest.(check (float 1e-9)) "sigma" 50. sigma
  | _ -> Alcotest.fail "normal parse shape"

let prop_delay_samples_nonnegative_finite =
  let model_gen =
    QCheck.Gen.(
      oneof
        [
          map (fun ms -> Delay_model.Constant (Float.abs ms)) (float_bound_exclusive 1e4);
          map2
            (fun lo span -> Delay_model.Uniform { lo = Float.abs lo; hi = Float.abs lo +. Float.abs span +. 1. })
            (float_bound_exclusive 1e3) (float_bound_exclusive 1e3);
          map2
            (fun mu sigma -> Delay_model.Normal { mu = Float.abs mu; sigma = Float.abs sigma })
            (float_bound_exclusive 1e3) (float_bound_exclusive 1e3);
          map (fun mean -> Delay_model.Exponential { mean = Float.abs mean +. 1. }) (float_bound_exclusive 1e3);
        ])
  in
  QCheck.Test.make ~name:"all delay models sample nonnegative finite values" ~count:200
    (QCheck.make model_gen) (fun m ->
      let r = rng () in
      List.for_all
        (fun _ ->
          let v = Delay_model.sample m r in
          Float.is_finite v && v >= 0.)
        (List.init 50 (fun i -> i)))

(* --- Topology --- *)

let test_topology_default () =
  let t = Topology.fully_connected 8 in
  Alcotest.(check int) "n" 8 (Topology.n t);
  Alcotest.(check bool) "all same subnet" true (Topology.same_subnet t 0 7);
  Alcotest.(check (float 1e-9)) "default scale" 1.0 (Topology.pair_scale t ~src:0 ~dst:1)

let test_topology_split () =
  let t = Topology.split_in_two 10 ~first_size:4 in
  Alcotest.(check int) "subnet of node 0" 0 (Topology.subnet_of t 0);
  Alcotest.(check int) "subnet of node 3" 0 (Topology.subnet_of t 3);
  Alcotest.(check int) "subnet of node 4" 1 (Topology.subnet_of t 4);
  Alcotest.(check bool) "cross-subnet differs" false (Topology.same_subnet t 0 9)

let test_topology_pair_scale () =
  let t = Topology.fully_connected 4 in
  Topology.set_pair_scale t ~src:1 ~dst:2 3.5;
  Alcotest.(check (float 1e-9)) "scaled link" 3.5 (Topology.pair_scale t ~src:1 ~dst:2);
  Alcotest.(check (float 1e-9)) "reverse direction untouched" 1.0 (Topology.pair_scale t ~src:2 ~dst:1)

let test_topology_validation () =
  (match Topology.fully_connected 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n = 0 accepted");
  let t = Topology.fully_connected 4 in
  match Topology.with_subnets t [| 0; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched subnet assignment accepted"

(* --- Network --- *)

let make_msg ~src ~dst = Message.make ~id:1 ~src ~dst ~sent_at:Time.zero (Message.Blob "x")

let test_network_assigns_delay () =
  let net =
    Network.create ~delay:(Delay_model.Constant 30.) ~topology:(Topology.fully_connected 4)
      ~rng:(rng ())
  in
  let m = make_msg ~src:0 ~dst:1 in
  Network.assign_delay net m;
  Alcotest.(check (float 1e-9)) "constant delay" 30. m.Message.delay_ms

let test_network_self_messages_free () =
  let net =
    Network.create ~delay:(Delay_model.Constant 30.) ~topology:(Topology.fully_connected 4)
      ~rng:(rng ())
  in
  let m = make_msg ~src:2 ~dst:2 in
  Network.assign_delay net m;
  Alcotest.(check (float 1e-9)) "self delivery immediate" 0. m.Message.delay_ms;
  Alcotest.(check int) "self delivery not counted" 0 (Network.stats net).Network.sent

let test_network_counters () =
  let net =
    Network.create ~delay:(Delay_model.Constant 1.) ~topology:(Topology.fully_connected 4)
      ~rng:(rng ())
  in
  Network.assign_delay net (make_msg ~src:0 ~dst:1);
  Network.assign_delay net (make_msg ~src:1 ~dst:2);
  let stats = Network.stats net in
  Alcotest.(check int) "sent" 2 stats.Network.sent;
  Alcotest.(check int) "bytes" (2 * Message.default_size) stats.Network.bytes;
  Network.reset_stats net;
  Alcotest.(check int) "reset" 0 (Network.stats net).Network.sent

let test_network_pair_scaling () =
  let topology = Topology.fully_connected 4 in
  Topology.set_pair_scale topology ~src:0 ~dst:1 2.0;
  let net = Network.create ~delay:(Delay_model.Constant 10.) ~topology ~rng:(rng ()) in
  let m = make_msg ~src:0 ~dst:1 in
  Network.assign_delay net m;
  Alcotest.(check (float 1e-9)) "scaled delay" 20. m.Message.delay_ms

let test_network_override_delay () =
  let net =
    Network.create ~delay:(Delay_model.Constant 10.) ~topology:(Topology.fully_connected 4)
      ~rng:(rng ())
  in
  Network.override_delay net (Delay_model.Constant 99.);
  let m = make_msg ~src:0 ~dst:1 in
  Network.assign_delay net m;
  Alcotest.(check (float 1e-9)) "overridden model used" 99. m.Message.delay_ms

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "net"
    [
      ( "message",
        [
          Alcotest.test_case "make" `Quick test_message_make;
          Alcotest.test_case "arrival time" `Quick test_message_arrival;
          Alcotest.test_case "printer registry" `Quick test_message_printer_registry;
        ] );
      ( "delay_model",
        [
          Alcotest.test_case "constant" `Quick test_delay_constant;
          Alcotest.test_case "uniform bounds" `Quick test_delay_uniform_bounds;
          Alcotest.test_case "normal nonnegative" `Quick test_delay_normal_nonnegative;
          Alcotest.test_case "bounded clipping" `Quick test_delay_bounded;
          Alcotest.test_case "means" `Quick test_delay_mean;
          Alcotest.test_case "parse/describe" `Quick test_delay_describe_parse_roundtrip;
          qc prop_delay_samples_nonnegative_finite;
        ] );
      ( "topology",
        [
          Alcotest.test_case "default" `Quick test_topology_default;
          Alcotest.test_case "two subnets" `Quick test_topology_split;
          Alcotest.test_case "pair scaling" `Quick test_topology_pair_scale;
          Alcotest.test_case "validation" `Quick test_topology_validation;
        ] );
      ( "network",
        [
          Alcotest.test_case "assigns sampled delay" `Quick test_network_assigns_delay;
          Alcotest.test_case "self messages free and uncounted" `Quick test_network_self_messages_free;
          Alcotest.test_case "counters" `Quick test_network_counters;
          Alcotest.test_case "per-pair scaling" `Quick test_network_pair_scaling;
          Alcotest.test_case "mid-run override" `Quick test_network_override_delay;
        ] );
    ]
