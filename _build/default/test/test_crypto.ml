(* Tests for the simulated-cryptography substrate: SHA-256 against FIPS/NIST
   vectors, HMAC against RFC 4231 vectors, and the derived signature / VRF /
   Merkle constructions. *)

open Bftsim_crypto

(* --- SHA-256 known-answer tests --- *)

let sha_hex s = Sha256.to_hex (Sha256.digest_string s)

let test_sha256_empty () =
  Alcotest.(check string)
    "empty string" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" (sha_hex "")

let test_sha256_abc () =
  Alcotest.(check string)
    "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" (sha_hex "abc")

let test_sha256_two_blocks () =
  Alcotest.(check string)
    "448-bit NIST vector" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (sha_hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_896_bit () =
  Alcotest.(check string)
    "896-bit NIST vector" "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (sha_hex
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_sha256_thousand_a () =
  Alcotest.(check string)
    "1000 x 'a'" "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"
    (sha_hex (String.make 1000 'a'))

let test_sha256_padding_boundaries () =
  (* 55, 56 and 64 bytes straddle the padding's length-field boundary. *)
  Alcotest.(check string)
    "55 bytes" "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"
    (sha_hex (String.make 55 'a'));
  Alcotest.(check string)
    "56 bytes" "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
    (sha_hex (String.make 56 'a'));
  Alcotest.(check string)
    "64 bytes" "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
    (sha_hex (String.make 64 'a'))

let test_sha256_digest_ops () =
  let d = Sha256.digest_string "abc" in
  Alcotest.(check bool) "equal to itself" true (Sha256.equal d (Sha256.digest_string "abc"));
  Alcotest.(check bool) "different input differs" false (Sha256.equal d (Sha256.digest_string "abd"));
  Alcotest.(check int) "compare consistent" 0 (Sha256.compare d d);
  Alcotest.(check string) "raw round-trip" (Sha256.to_hex d)
    (Sha256.to_hex (Sha256.of_raw (Sha256.to_raw d)));
  (match Sha256.of_raw "short" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_raw accepted wrong length");
  (* ba7816bf... -> first 8 bytes big-endian *)
  Alcotest.(check int64) "first64 big-endian" 0xba7816bf8f01cfeaL
    (Int64.logand (Sha256.first64 d) (-1L))

let prop_sha256_deterministic =
  QCheck.Test.make ~name:"sha256 is deterministic" ~count:200 QCheck.string (fun s ->
      Sha256.equal (Sha256.digest_string s) (Sha256.digest_string s))

let prop_sha256_injective_on_samples =
  QCheck.Test.make ~name:"sha256 distinct on distinct inputs (sampled)" ~count:200
    QCheck.(pair string string)
    (fun (a, b) -> String.equal a b || not (Sha256.equal (Sha256.digest_string a) (Sha256.digest_string b)))

(* --- HMAC (RFC 4231) --- *)

let test_hmac_rfc4231_case1 () =
  let key = String.make 20 '\x0b' in
  Alcotest.(check string)
    "case 1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Sha256.to_hex (Hmac.mac ~key "Hi There"))

let test_hmac_rfc4231_case2 () =
  Alcotest.(check string)
    "case 2 (Jefe)" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.to_hex (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"))

let test_hmac_rfc4231_case3 () =
  let key = String.make 20 '\xaa' in
  let data = String.make 50 '\xdd' in
  Alcotest.(check string)
    "case 3" "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Sha256.to_hex (Hmac.mac ~key data))

let test_hmac_long_key () =
  (* RFC 4231 case 6: 131-byte key forces the key-hashing path. *)
  let key = String.make 131 '\xaa' in
  Alcotest.(check string)
    "case 6 (long key)" "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Sha256.to_hex (Hmac.mac ~key "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_verify () =
  let tag = Hmac.mac ~key:"k" "message" in
  Alcotest.(check bool) "verify accepts" true (Hmac.verify ~key:"k" "message" tag);
  Alcotest.(check bool) "wrong key rejected" false (Hmac.verify ~key:"k2" "message" tag);
  Alcotest.(check bool) "wrong message rejected" false (Hmac.verify ~key:"k" "message2" tag)

(* --- Simulated signatures --- *)

let test_sig_roundtrip () =
  let kp = Sig_sim.keygen ~seed:99 ~node:3 in
  let s = Sig_sim.sign kp "vote for block 7" in
  Alcotest.(check bool) "valid signature verifies" true (Sig_sim.verify ~seed:99 s "vote for block 7");
  Alcotest.(check int) "signer recorded" 3 s.Sig_sim.signer

let test_sig_rejections () =
  let kp = Sig_sim.keygen ~seed:99 ~node:3 in
  let s = Sig_sim.sign kp "msg" in
  Alcotest.(check bool) "other message rejected" false (Sig_sim.verify ~seed:99 s "other");
  Alcotest.(check bool) "other key domain rejected" false (Sig_sim.verify ~seed:98 s "msg");
  let forged = { s with Sig_sim.signer = 4 } in
  Alcotest.(check bool) "claimed wrong signer rejected" false (Sig_sim.verify ~seed:99 forged "msg")

let test_sig_keys_deterministic () =
  let a = Sig_sim.keygen ~seed:1 ~node:0 and b = Sig_sim.keygen ~seed:1 ~node:0 in
  Alcotest.(check string) "same public key" a.Sig_sim.public b.Sig_sim.public;
  let c = Sig_sim.keygen ~seed:1 ~node:1 in
  Alcotest.(check bool) "different node, different key" true (a.Sig_sim.public <> c.Sig_sim.public)

(* --- VRF --- *)

let test_vrf_eval_verify () =
  let ev = Vrf.eval ~seed:5 ~node:2 ~input:"round-9" in
  Alcotest.(check bool) "evaluation verifies" true (Vrf.verify ~seed:5 ev);
  let ev' = Vrf.eval ~seed:5 ~node:2 ~input:"round-9" in
  Alcotest.(check bool) "deterministic" true (Sha256.equal ev.Vrf.output ev'.Vrf.output)

let test_vrf_rejects_tampering () =
  let ev = Vrf.eval ~seed:5 ~node:2 ~input:"round-9" in
  let wrong_node = { ev with Vrf.node = 3 } in
  Alcotest.(check bool) "claimed wrong node rejected" false (Vrf.verify ~seed:5 wrong_node);
  let wrong_output = { ev with Vrf.output = Sha256.digest_string "forged" } in
  Alcotest.(check bool) "forged output rejected" false (Vrf.verify ~seed:5 wrong_output);
  let wrong_input = { ev with Vrf.input = "round-10" } in
  Alcotest.(check bool) "swapped input rejected" false (Vrf.verify ~seed:5 wrong_input)

let test_vrf_tickets_vary () =
  let tickets =
    List.init 16 (fun node -> Vrf.ticket (Vrf.eval ~seed:5 ~node ~input:"round-1"))
  in
  let distinct = List.sort_uniq Int64.compare tickets in
  Alcotest.(check int) "16 distinct tickets" 16 (List.length distinct);
  List.iter (fun t -> Alcotest.(check bool) "non-negative" true (Int64.compare t 0L >= 0)) tickets

let test_vrf_winner () =
  let evs = List.init 8 (fun node -> Vrf.eval ~seed:7 ~node ~input:"i") in
  let w = Option.get (Vrf.winner evs) in
  List.iter
    (fun ev ->
      Alcotest.(check bool) "winner has minimal ticket" true
        (Int64.compare (Vrf.ticket w) (Vrf.ticket ev) <= 0))
    evs;
  Alcotest.(check bool) "winner of [] is None" true (Vrf.winner [] = None)

let prop_vrf_leader_rotates =
  QCheck.Test.make ~name:"vrf winner varies across rounds" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let winner_of round =
        (Option.get
           (Vrf.winner (List.init 16 (fun node -> Vrf.eval ~seed ~node ~input:(string_of_int round)))))
          .Vrf.node
      in
      let winners = List.init 12 winner_of in
      List.length (List.sort_uniq compare winners) > 1)

(* --- Merkle --- *)

let test_merkle_single_leaf () =
  let leaves = [ "only" ] in
  let root = Merkle.root leaves in
  let proof = Merkle.prove leaves 0 in
  Alcotest.(check bool) "single-leaf proof verifies" true (Merkle.verify ~root ~leaf:"only" proof);
  Alcotest.(check int) "single-leaf proof is empty" 0 (List.length proof)

let test_merkle_proofs_verify () =
  let leaves = [ "a"; "b"; "c"; "d"; "e" ] in
  let root = Merkle.root leaves in
  List.iteri
    (fun i leaf ->
      let proof = Merkle.prove leaves i in
      Alcotest.(check bool) (Printf.sprintf "leaf %d verifies" i) true
        (Merkle.verify ~root ~leaf proof))
    leaves

let test_merkle_rejects_wrong_leaf () =
  let leaves = [ "a"; "b"; "c"; "d" ] in
  let root = Merkle.root leaves in
  let proof = Merkle.prove leaves 1 in
  Alcotest.(check bool) "wrong leaf rejected" false (Merkle.verify ~root ~leaf:"x" proof);
  Alcotest.(check bool) "wrong position rejected" false (Merkle.verify ~root ~leaf:"a" proof)

let test_merkle_root_depends_on_order () =
  Alcotest.(check bool) "leaf order matters" true
    (not (Sha256.equal (Merkle.root [ "a"; "b" ]) (Merkle.root [ "b"; "a" ])))

let test_merkle_out_of_bounds () =
  match Merkle.prove [ "a" ] 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-bounds leaf accepted"

let prop_merkle_all_proofs =
  QCheck.Test.make ~name:"every leaf of a random tree proves" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 24) (string_gen_of_size (Gen.int_range 0 8) Gen.printable))
    (fun leaves ->
      let root = Merkle.root leaves in
      List.for_all
        (fun i -> Merkle.verify ~root ~leaf:(List.nth leaves i) (Merkle.prove leaves i))
        (List.init (List.length leaves) (fun i -> i)))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "empty" `Quick test_sha256_empty;
          Alcotest.test_case "abc" `Quick test_sha256_abc;
          Alcotest.test_case "two blocks" `Quick test_sha256_two_blocks;
          Alcotest.test_case "896-bit" `Quick test_sha256_896_bit;
          Alcotest.test_case "1000 a" `Quick test_sha256_thousand_a;
          Alcotest.test_case "padding boundaries" `Quick test_sha256_padding_boundaries;
          Alcotest.test_case "digest operations" `Quick test_sha256_digest_ops;
          qc prop_sha256_deterministic;
          qc prop_sha256_injective_on_samples;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 case 1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "rfc4231 case 2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "rfc4231 case 3" `Quick test_hmac_rfc4231_case3;
          Alcotest.test_case "rfc4231 case 6 long key" `Quick test_hmac_long_key;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "signatures",
        [
          Alcotest.test_case "sign/verify round-trip" `Quick test_sig_roundtrip;
          Alcotest.test_case "rejections" `Quick test_sig_rejections;
          Alcotest.test_case "deterministic keys" `Quick test_sig_keys_deterministic;
        ] );
      ( "vrf",
        [
          Alcotest.test_case "eval/verify" `Quick test_vrf_eval_verify;
          Alcotest.test_case "tamper rejection" `Quick test_vrf_rejects_tampering;
          Alcotest.test_case "ticket distribution" `Quick test_vrf_tickets_vary;
          Alcotest.test_case "winner selection" `Quick test_vrf_winner;
          qc prop_vrf_leader_rotates;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "single leaf" `Quick test_merkle_single_leaf;
          Alcotest.test_case "proofs verify" `Quick test_merkle_proofs_verify;
          Alcotest.test_case "wrong leaf rejected" `Quick test_merkle_rejects_wrong_leaf;
          Alcotest.test_case "order sensitivity" `Quick test_merkle_root_depends_on_order;
          Alcotest.test_case "bounds" `Quick test_merkle_out_of_bounds;
          qc prop_merkle_all_proofs;
        ] );
    ]
