(* Tests for the abstracted-global-attacker framework and the generic
   attacker implementations (fail-stop, partition, delay injection). *)

open Bftsim_sim
open Bftsim_net
open Bftsim_attack

(* A self-contained attacker environment over mutable test state. *)
let make_env ?(n = 8) ?(f = 2) ?(now = 0.) () =
  let corrupted = Hashtbl.create 8 in
  let injected = ref [] in
  let timers = ref [] in
  let now_ref = ref now in
  let env =
    {
      Attacker.n;
      f;
      lambda_ms = 1000.;
      now = (fun () -> Time.of_ms !now_ref);
      rng = Rng.create 1;
      topology = Topology.fully_connected n;
      set_timer =
        (fun ~delay_ms ~tag payload ->
          timers := (delay_ms, tag, payload) :: !timers;
          List.length !timers);
      inject =
        (fun ~src ~dst ~delay_ms ~tag ~size:_ payload ->
          injected := (src, dst, delay_ms, tag, payload) :: !injected);
      corrupt =
        (fun node ->
          if Hashtbl.mem corrupted node || Hashtbl.length corrupted >= f then false
          else begin
            Hashtbl.replace corrupted node ();
            true
          end);
      is_corrupted = Hashtbl.mem corrupted;
      corrupted =
        (fun () -> Hashtbl.fold (fun k () acc -> k :: acc) corrupted [] |> List.sort compare);
    }
  in
  (env, now_ref, injected, timers)

let msg ?(src = 0) ?(dst = 1) ?(sent_at = 0.) ?(tag = "m") () =
  Message.make ~id:1 ~src ~dst ~sent_at:(Time.of_ms sent_at) ~tag (Message.Blob "x")

let is_deliver = function Attacker.Deliver -> true | Attacker.Drop -> false

(* --- passthrough & helpers --- *)

let test_passthrough () =
  let env, _, _, _ = make_env () in
  Alcotest.(check bool) "delivers" true (is_deliver (Attacker.passthrough.attack env (msg ())))

let test_corruption_budget () =
  let env, _, _, _ = make_env ~f:2 () in
  Alcotest.(check bool) "first corruption ok" true (env.corrupt 0);
  Alcotest.(check bool) "second corruption ok" true (env.corrupt 1);
  Alcotest.(check bool) "budget exhausted" false (env.corrupt 2);
  Alcotest.(check bool) "re-corruption refused" false (env.corrupt 0);
  Alcotest.(check (list int)) "ledger" [ 0; 1 ] (env.corrupted ())

let test_drop_from_corrupted () =
  let env, _, _, _ = make_env () in
  ignore (env.corrupt 3);
  Alcotest.(check bool) "corrupted sender dropped" false
    (is_deliver (Attacker.drop_from_corrupted env (msg ~src:3 ())));
  Alcotest.(check bool) "honest sender delivered" true
    (is_deliver (Attacker.drop_from_corrupted env (msg ~src:4 ())))

let test_delay_all () =
  let env, _, _, _ = make_env () in
  let attacker = Attacker.delay_all ~extra_ms:500. in
  let m = msg () in
  m.Message.delay_ms <- 100.;
  Alcotest.(check bool) "delivers" true (is_deliver (attacker.attack env m));
  Alcotest.(check (float 1e-9)) "delay extended" 600. m.Message.delay_ms

(* --- fail-stop --- *)

let test_failstop_from_start () =
  let env, _, _, _ = make_env () in
  let attacker = Failstop.from_start ~nodes:[ 1; 2 ] in
  Alcotest.(check bool) "victim silenced" false (is_deliver (attacker.attack env (msg ~src:1 ())));
  Alcotest.(check bool) "other node fine" true (is_deliver (attacker.attack env (msg ~src:0 ())))

let test_failstop_at_time () =
  let env, now_ref, _, _ = make_env () in
  let attacker = Failstop.at_time ~nodes:[ 5 ] ~at_ms:1000. in
  Alcotest.(check bool) "honest before the crash" true
    (is_deliver (attacker.attack env (msg ~src:5 ())));
  now_ref := 1500.;
  Alcotest.(check bool) "silenced after the crash" false
    (is_deliver (attacker.attack env (msg ~src:5 ())))

(* --- partition --- *)

let partition_spec ?(mode = Partition_attack.Drop_cross_traffic) () =
  Partition_attack.
    { groups = [| 0; 0; 0; 0; 1; 1; 1; 1 |]; start_ms = 1000.; heal_ms = 5000.; mode }

let test_partition_window () =
  let env, now_ref, _, _ = make_env () in
  let attacker = Partition_attack.make (partition_spec ()) in
  let cross () = msg ~src:0 ~dst:7 ~sent_at:!now_ref () in
  Alcotest.(check bool) "before the attack" true (is_deliver (attacker.attack env (cross ())));
  now_ref := 2000.;
  Alcotest.(check bool) "during: cross dropped" false (is_deliver (attacker.attack env (cross ())));
  Alcotest.(check bool) "during: intra delivered" true
    (is_deliver (attacker.attack env (msg ~src:0 ~dst:3 ())));
  now_ref := 5000.;
  Alcotest.(check bool) "at heal boundary delivered" true (is_deliver (attacker.attack env (cross ())))

let test_partition_delay_mode () =
  let env, now_ref, _, _ = make_env () in
  let attacker =
    Partition_attack.make (partition_spec ~mode:(Partition_attack.Delay_until_heal { jitter_ms = 0. }) ())
  in
  now_ref := 2000.;
  let m = msg ~src:1 ~dst:6 ~sent_at:2000. () in
  m.Message.delay_ms <- 250.;
  Alcotest.(check bool) "delivered (buffered)" true (is_deliver (attacker.attack env m));
  Alcotest.(check (float 1e-9)) "released at heal" 5000.
    (Time.to_ms (Message.arrival_time m))

let test_partition_validation () =
  match
    Partition_attack.make
      { groups = [| 0; 1 |]; start_ms = 10.; heal_ms = 5.; mode = Partition_attack.Drop_cross_traffic }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "heal before start accepted"

let test_two_subnets_builder () =
  let env, now_ref, _, _ = make_env () in
  let attacker =
    Partition_attack.two_subnets ~n:8 ~first_size:4 ~start_ms:0. ~heal_ms:1000.
      Partition_attack.Drop_cross_traffic
  in
  now_ref := 500.;
  Alcotest.(check bool) "0 -> 4 crosses" false
    (is_deliver (attacker.attack env (msg ~src:0 ~dst:4 ())));
  Alcotest.(check bool) "4 -> 7 intra" true (is_deliver (attacker.attack env (msg ~src:4 ~dst:7 ())))

(* --- ADD+ attacks (unit level; end-to-end covered in test_integration) --- *)

let test_add_static_marks_victims () =
  let env, _, _, _ = make_env ~f:3 () in
  let attacker = Bftsim_protocols.Addplus_attacks.static ~f:3 in
  attacker.on_start env;
  Alcotest.(check (list int)) "first f nodes corrupted" [ 0; 1; 2 ] (env.corrupted ());
  Alcotest.(check bool) "their messages dropped" false
    (is_deliver (attacker.attack env (msg ~src:0 ())))

let test_add_adaptive_corrupts_winner () =
  let env, now_ref, _, timers = make_env ~f:3 () in
  let attacker = Bftsim_protocols.Addplus_attacks.rushing_adaptive () in
  (* Replay an iteration's credential flow through the attacker. *)
  let creds =
    List.init 8 (fun node ->
        Bftsim_crypto.Vrf.eval ~seed:1 ~node ~input:"add|0")
  in
  List.iter
    (fun (c : Bftsim_crypto.Vrf.evaluation) ->
      let m =
        Message.make ~id:c.node ~src:c.node ~dst:0 ~sent_at:Time.zero ~tag:"add-credential"
          (Bftsim_protocols.Add_common.Add_credential { iter = 0; credential = c })
      in
      ignore (attacker.attack env m))
    creds;
  Alcotest.(check int) "one corruption timer armed" 1 (List.length !timers);
  (* Fire the armed timer. *)
  let delay_ms, tag, payload = List.hd !timers in
  now_ref := delay_ms;
  attacker.on_time_event env
    { Timer.id = 1; owner = Timer.attacker_owner; deadline = Time.of_ms delay_ms; tag; payload };
  let winner = (Option.get (Bftsim_crypto.Vrf.winner creds)).Bftsim_crypto.Vrf.node in
  Alcotest.(check (list int)) "exactly the VRF winner corrupted" [ winner ] (env.corrupted ())

let () =
  Alcotest.run "attack"
    [
      ( "framework",
        [
          Alcotest.test_case "passthrough" `Quick test_passthrough;
          Alcotest.test_case "corruption budget" `Quick test_corruption_budget;
          Alcotest.test_case "drop_from_corrupted" `Quick test_drop_from_corrupted;
          Alcotest.test_case "delay_all" `Quick test_delay_all;
        ] );
      ( "failstop",
        [
          Alcotest.test_case "from start" `Quick test_failstop_from_start;
          Alcotest.test_case "mid-run crash" `Quick test_failstop_at_time;
        ] );
      ( "partition",
        [
          Alcotest.test_case "attack window" `Quick test_partition_window;
          Alcotest.test_case "delay-until-heal mode" `Quick test_partition_delay_mode;
          Alcotest.test_case "validation" `Quick test_partition_validation;
          Alcotest.test_case "two_subnets builder" `Quick test_two_subnets_builder;
        ] );
      ( "addplus",
        [
          Alcotest.test_case "static picks scheduled leaders" `Quick test_add_static_marks_victims;
          Alcotest.test_case "adaptive corrupts the revealed winner" `Quick
            test_add_adaptive_corrupts_winner;
        ] );
    ]
