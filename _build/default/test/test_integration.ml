(* End-to-end integration tests: the protocol × attack × network matrix the
   paper's evaluation walks through, asserted at the level of qualitative
   shapes (who degrades, who stays flat, who recovers). *)

module Core = Bftsim_core
module Net = Bftsim_net

let mean_latency ?(reps = 5) config =
  (Core.Runner.run_many ~reps config).Core.Runner.latency_ms.Core.Stats.mean

let assert_live name (r : Core.Controller.result) =
  Alcotest.(check bool) (name ^ " live") true (r.outcome = Core.Controller.Reached_target);
  Alcotest.(check bool) (name ^ " safe") true r.safety_ok

(* --- Fig 3: every protocol under every network environment --- *)

let test_fig3_matrix () =
  List.iter
    (fun protocol ->
      List.iter
        (fun (env_name, delay) ->
          let r = Core.Controller.run (Core.Experiments.fig3_config ~protocol ~delay ~seed:31) in
          assert_live (Printf.sprintf "%s @ %s" protocol env_name) r)
        Core.Experiments.network_environments)
    Core.Experiments.all_protocols

let test_fig3_hotstuff_cheapest_messages () =
  (* Paper: "As for message usage, HotStuff+NS also outperformed the other
     protocols" — linear leader communication vs everyone's broadcasts. *)
  let delay = Net.Delay_model.normal ~mu:250. ~sigma:50. in
  let messages protocol =
    let summary =
      Core.Runner.run_many ~reps:5 (Core.Experiments.fig3_config ~protocol ~delay ~seed:32)
    in
    summary.Core.Runner.messages.Core.Stats.mean
  in
  let hotstuff = messages "hotstuff-ns" in
  List.iter
    (fun protocol ->
      Alcotest.(check bool)
        (Printf.sprintf "hotstuff cheaper than %s" protocol)
        true
        (hotstuff < messages protocol))
    [ "pbft"; "algorand"; "async-ba"; "add-v1"; "add-v2"; "add-v3" ]

(* --- Fig 4: responsiveness --- *)

let test_fig4_responsive_protocols_flat () =
  List.iter
    (fun protocol ->
      let at lambda_ms =
        mean_latency (Core.Experiments.fig4_config ~protocol ~lambda_ms ~seed:41)
      in
      let low = at 1000. and high = at 3000. in
      Alcotest.(check bool)
        (Printf.sprintf "%s unaffected by timeout overestimation" protocol)
        true
        (high < 1.5 *. low))
    [ "pbft"; "hotstuff-ns"; "librabft"; "async-ba" ]

let test_fig4_synchronous_protocols_scale_with_lambda () =
  List.iter
    (fun protocol ->
      let at lambda_ms =
        mean_latency (Core.Experiments.fig4_config ~protocol ~lambda_ms ~seed:42)
      in
      let low = at 1000. and high = at 3000. in
      Alcotest.(check bool)
        (Printf.sprintf "%s latency grows with lambda" protocol)
        true
        (high > 2. *. low))
    [ "add-v1"; "add-v2"; "add-v3"; "algorand" ]

(* --- Fig 5: underestimated delay --- *)

let test_fig5_librabft_flat () =
  let at lambda_ms =
    mean_latency (Core.Experiments.fig5_config ~protocol:"librabft" ~lambda_ms ~seed:51)
  in
  Alcotest.(check bool) "librabft unaffected by underestimation" true (at 150. < 1.5 *. at 1000.)

let test_fig5_hotstuff_degrades_at_150 () =
  let at ~protocol lambda_ms =
    mean_latency ~reps:10 (Core.Experiments.fig5_config ~protocol ~lambda_ms ~seed:52)
  in
  (* The naive synchronizer's churn must cost HotStuff+NS something at
     lambda = 150 relative to its own well-configured latency. *)
  Alcotest.(check bool) "hotstuff-ns pays for underestimation" true
    (at ~protocol:"hotstuff-ns" 150. > 1.05 *. at ~protocol:"hotstuff-ns" 1000.)

(* --- Fig 6: partition --- *)

let test_fig6_all_protocols_recover () =
  List.iter
    (fun protocol ->
      let r = Core.Controller.run (Core.Experiments.fig6_config ~protocol ~seed:61) in
      assert_live ("partition recovery: " ^ protocol) r;
      Alcotest.(check bool)
        (protocol ^ " cannot decide during the partition")
        true
        (r.time_ms >= Core.Experiments.fig6_heal_ms))
    Core.Experiments.fig6_protocols

let test_fig6_hotstuff_worst_recovery () =
  let recovery protocol =
    let r = Core.Controller.run (Core.Experiments.fig6_config ~protocol ~seed:62) in
    r.Core.Controller.time_ms
  in
  let hotstuff = recovery "hotstuff-ns" in
  List.iter
    (fun protocol ->
      Alcotest.(check bool)
        (Printf.sprintf "hotstuff-ns recovers slower than %s" protocol)
        true
        (hotstuff > recovery protocol))
    [ "pbft"; "librabft"; "algorand" ]

(* --- Fig 7: fail-stop --- *)

let test_fig7_matrix_live () =
  List.iter
    (fun protocol ->
      List.iter
        (fun failstop ->
          let r = Core.Controller.run (Core.Experiments.fig7_config ~protocol ~failstop ~seed:71) in
          Alcotest.(check bool)
            (Printf.sprintf "%s safe at %d fail-stop" protocol failstop)
            true r.safety_ok)
        [ 0; 2; 5 ])
    [ "add-v1"; "algorand"; "async-ba"; "pbft"; "librabft" ]

let test_fig7_librabft_graceful_hotstuff_not () =
  let latency protocol =
    let r = Core.Controller.run (Core.Experiments.fig7_config ~protocol ~failstop:5 ~seed:72) in
    r.Core.Controller.per_decision_latency_ms
  in
  Alcotest.(check bool) "hotstuff-ns degrades drastically vs librabft" true
    (latency "hotstuff-ns" > 2.5 *. latency "librabft")

(* --- Fig 8 shapes --- *)

let test_fig8_static_shape () =
  let lat protocol f =
    mean_latency ~reps:3 (Core.Experiments.fig8_static_config ~protocol ~f ~seed:81)
  in
  Alcotest.(check bool) "v1 grows with f" true (lat "add-v1" 5 > lat "add-v1" 1 +. 5000.);
  Alcotest.(check bool) "v2 flat" true (lat "add-v2" 5 < lat "add-v2" 1 +. 2000.);
  Alcotest.(check bool) "v3 flat" true (lat "add-v3" 5 < lat "add-v3" 1 +. 2000.)

let test_fig8_adaptive_shape () =
  let lat protocol f =
    mean_latency ~reps:3 (Core.Experiments.fig8_adaptive_config ~protocol ~f ~seed:82)
  in
  Alcotest.(check bool) "v2 grows with budget" true (lat "add-v2" 5 > lat "add-v2" 1 +. 8000.);
  Alcotest.(check bool) "v3 flat under adaptive" true (lat "add-v3" 5 < lat "add-v3" 1 +. 2000.)

(* --- Fig 9: view divergence --- *)

let test_fig9_views_diverge_then_converge () =
  let r = Core.Controller.run (Core.Experiments.fig9_config ~seed:91) in
  assert_live "fig9 run" r;
  let d = Core.View_tracker.analyze ~sample_ms:250. r.view_samples in
  Alcotest.(check bool) "views diverged at some point" true (d.max_spread >= 1);
  Alcotest.(check bool) "some desynchronized time" true (d.time_desynced_ms > 0.)

let test_fig9_well_configured_stays_tight () =
  let config =
    Core.Config.make "hotstuff-ns" ~lambda_ms:1000. ~seed:92
      ~delay:(Net.Delay_model.normal ~mu:250. ~sigma:50.)
      ~view_sample_ms:250.
  in
  let r = Core.Controller.run config in
  let d = Core.View_tracker.analyze ~sample_ms:250. r.view_samples in
  Alcotest.(check bool) "correct bound keeps spread tiny" true (d.max_spread <= 1)

(* --- Attack/protocol cross checks --- *)

let test_silence_attack_equals_crash () =
  (* Silencing a node from t=0 through the attacker must leave the same
     survivors deciding as never starting it. *)
  let silenced =
    Core.Controller.run
      (Core.Config.make "pbft" ~seed:13 ~delay:(Net.Delay_model.Constant 100.)
         ~attack:(Core.Config.Silence { nodes = [ 5 ]; at_ms = 0. }))
  in
  let crashed =
    Core.Controller.run
      (Core.Config.make "pbft" ~seed:13 ~delay:(Net.Delay_model.Constant 100.) ~crashed:[ 5 ])
  in
  assert_live "silenced run" silenced;
  let value r =
    match List.find_opt (fun (node, _) -> node = 0) r.Core.Controller.decisions with
    | Some (_, v :: _) -> v
    | _ -> Alcotest.fail "node 0 decided nothing"
  in
  Alcotest.(check string) "same decided value" (value crashed) (value silenced)

let test_extra_delay_slows_everyone () =
  let plain = Core.Controller.run (Core.Config.make "pbft" ~seed:14) in
  let delayed =
    Core.Controller.run
      (Core.Config.make "pbft" ~seed:14 ~attack:(Core.Config.Extra_delay { extra_ms = 400. }))
  in
  assert_live "delayed run" delayed;
  Alcotest.(check bool) "slower under injected delay" true (delayed.time_ms > plain.time_ms +. 500.)

let prop_no_attack_matrix =
  QCheck.Test.make ~name:"matrix: protocol x n x seed stays live and safe" ~count:30
    QCheck.(triple (int_range 0 7) (int_range 0 2) (int_range 0 999))
    (fun (proto_idx, n_idx, seed) ->
      let protocol = List.nth Core.Experiments.all_protocols proto_idx in
      let n = List.nth [ 4; 10; 16 ] n_idx in
      let config =
        Core.Config.make protocol ~n ~seed ~delay:(Net.Delay_model.normal ~mu:150. ~sigma:30.)
      in
      let r = Core.Controller.run config in
      r.safety_ok && r.outcome = Core.Controller.Reached_target)

let prop_failstop_safety =
  QCheck.Test.make ~name:"fail-stop within tolerance never breaks agreement" ~count:20
    QCheck.(pair (int_range 0 7) (int_range 0 5))
    (fun (proto_idx, failstop) ->
      let protocol = List.nth Core.Experiments.all_protocols proto_idx in
      let config = Core.Experiments.fig7_config ~protocol ~failstop ~seed:7 in
      let config = { config with Core.Config.max_time_ms = 120_000. } in
      (Core.Controller.run config).safety_ok)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "integration"
    [
      ( "fig3",
        [
          Alcotest.test_case "matrix live+safe" `Slow test_fig3_matrix;
          Alcotest.test_case "hotstuff cheapest in messages" `Slow
            test_fig3_hotstuff_cheapest_messages;
        ] );
      ( "fig4",
        [
          Alcotest.test_case "responsive protocols flat" `Slow test_fig4_responsive_protocols_flat;
          Alcotest.test_case "synchronous protocols scale" `Slow
            test_fig4_synchronous_protocols_scale_with_lambda;
        ] );
      ( "fig5",
        [
          Alcotest.test_case "librabft flat" `Slow test_fig5_librabft_flat;
          Alcotest.test_case "hotstuff pays at lambda=150" `Slow test_fig5_hotstuff_degrades_at_150;
        ] );
      ( "fig6",
        [
          Alcotest.test_case "all recover after heal" `Slow test_fig6_all_protocols_recover;
          Alcotest.test_case "hotstuff worst recovery" `Slow test_fig6_hotstuff_worst_recovery;
        ] );
      ( "fig7",
        [
          Alcotest.test_case "matrix safe" `Slow test_fig7_matrix_live;
          Alcotest.test_case "librabft graceful, hotstuff drastic" `Slow
            test_fig7_librabft_graceful_hotstuff_not;
        ] );
      ( "fig8",
        [
          Alcotest.test_case "static shape" `Slow test_fig8_static_shape;
          Alcotest.test_case "adaptive shape" `Slow test_fig8_adaptive_shape;
        ] );
      ( "fig9",
        [
          Alcotest.test_case "views diverge then converge" `Quick
            test_fig9_views_diverge_then_converge;
          Alcotest.test_case "well-configured stays tight" `Quick
            test_fig9_well_configured_stays_tight;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "silence equals crash" `Quick test_silence_attack_equals_crash;
          Alcotest.test_case "extra delay slows" `Quick test_extra_delay_slows_everyone;
          qc prop_no_attack_matrix;
          qc prop_failstop_safety;
        ] );
    ]
