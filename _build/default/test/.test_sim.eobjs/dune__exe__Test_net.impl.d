test/test_net.ml: Alcotest Bftsim_net Bftsim_protocols Bftsim_sim Delay_model Float List Message Network QCheck QCheck_alcotest Rng Time Topology
