test/test_sim.ml: Alcotest Array Bftsim_sim Event_queue Float List Option Pqueue QCheck QCheck_alcotest Rng Time
