test/test_attack.ml: Alcotest Attacker Bftsim_attack Bftsim_crypto Bftsim_net Bftsim_protocols Bftsim_sim Failstop Hashtbl List Message Option Partition_attack Rng Time Timer Topology
