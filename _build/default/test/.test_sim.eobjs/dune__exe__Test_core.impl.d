test/test_core.ml: Alcotest Array Bftsim_attack Bftsim_core Bftsim_net Gen List Option Printf QCheck QCheck_alcotest String
