test/test_crypto.ml: Alcotest Bftsim_crypto Gen Hmac Int64 List Merkle Option Printf QCheck QCheck_alcotest Sha256 Sig_sim String Vrf
