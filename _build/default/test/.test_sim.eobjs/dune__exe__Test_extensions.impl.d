test/test_extensions.ml: Alcotest Array Bftsim_core Bftsim_net Bftsim_protocols Fun List Printf String
