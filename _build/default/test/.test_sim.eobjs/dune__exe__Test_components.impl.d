test/test_components.ml: Alcotest Bftsim_attack Bftsim_core Bftsim_net Bftsim_protocols Bftsim_sim Filename List Printf String Sys
