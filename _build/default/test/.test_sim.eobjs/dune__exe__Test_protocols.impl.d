test/test_protocols.ml: Alcotest Array Bftsim_core Bftsim_net Bftsim_protocols List Printf QCheck QCheck_alcotest
