test/test_integration.ml: Alcotest Bftsim_core Bftsim_net List Printf QCheck QCheck_alcotest
