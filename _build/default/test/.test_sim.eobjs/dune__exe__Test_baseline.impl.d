test/test_baseline.ml: Alcotest Bftsim_baseline Bftsim_core Bftsim_net Bytes List
