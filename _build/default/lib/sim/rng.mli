(** Deterministic pseudo-random number generation.

    Every simulation run must be a pure function of its seed so that traces
    can be replayed and cross-validated (paper §III-A6).  We therefore avoid
    the global [Random] state and thread explicit generators, built on the
    splitmix64 algorithm (Steele, Lea & Flood 2014), through the simulator.

    The distribution samplers cover the network-delay distributions the paper
    uses ([N(mu, sigma)] normal delays, Poisson, exponential) plus the
    uniform helpers protocols need for value choices and leader election. *)

type t
(** A mutable generator.  Not thread-safe; each simulation owns its own. *)

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds yield equal streams. *)

val copy : t -> t
(** An independent generator that continues from the same state. *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t].  Used to give each module (network, attacker, every node)
    its own stream so adding a consumer does not perturb the others. *)

val bits64 : t -> int64
(** Next raw 64 pseudo-random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian via the Box–Muller transform. *)

val truncated_normal : t -> mu:float -> sigma:float -> lo:float -> float
(** Gaussian resampled (then clamped after 64 attempts) to be [>= lo]; the
    paper samples network delays from [N(mu, sigma)], which must be
    non-negative to be meaningful as delays. *)

val exponential : t -> mean:float -> float
(** Exponential with the given mean. *)

val poisson : t -> mean:float -> int
(** Poisson-distributed count (Knuth's algorithm; O(mean)). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.
    @raise Invalid_argument on an empty array. *)
