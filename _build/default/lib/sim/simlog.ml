let src = Logs.Src.create "bftsim" ~doc:"BFT simulator events"


let now_ref = ref (fun () -> Time.zero)

let set_now f = now_ref := f

let level_to_int = function
  | Logs.App -> 0
  | Logs.Error -> 1
  | Logs.Warning -> 2
  | Logs.Info -> 3
  | Logs.Debug -> 4

let enabled level =
  match Logs.Src.level src with
  | None -> false
  | Some max_level -> level_to_int level <= level_to_int max_level

(* Formatting happens only when the level is enabled, so per-message debug
   calls cost one comparison in large benchmark runs. *)
let log level fmt =
  if enabled level then
    Format.kasprintf
      (fun s -> Logs.msg ~src level (fun m -> m "[%a] %s" Time.pp (!now_ref ()) s))
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let debug fmt = log Logs.Debug fmt

let info fmt = log Logs.Info fmt

let warn fmt = log Logs.Warning fmt

let err fmt = log Logs.Error fmt

let setup_for_cli ~level =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.Src.set_level src level
