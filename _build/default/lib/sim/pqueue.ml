type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?initial_capacity:_ () = { heap = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

(* [before a b] decides heap order: smaller priority first, insertion order on
   ties.  This is the invariant the whole simulator's determinism rests on. *)
let before a b =
  a.priority < b.priority || (Float.equal a.priority b.priority && a.seq < b.seq)

(* Growth takes a witness entry so the fresh slots are well-typed without
   resorting to unsafe tricks. *)
let grow q witness =
  let cap = Stdlib.max 64 (2 * Array.length q.heap) in
  let heap' = Array.make cap witness in
  Array.blit q.heap 0 heap' 0 q.size;
  q.heap <- heap'

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = if left < q.size && before q.heap.(left) q.heap.(i) then left else i in
  let smallest =
    if right < q.size && before q.heap.(right) q.heap.(smallest) then right else smallest
  in
  if smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(smallest);
    q.heap.(smallest) <- tmp;
    sift_down q smallest
  end

let push q ~priority value =
  if Float.is_nan priority then invalid_arg "Pqueue.push: NaN priority";
  let entry = { priority; seq = q.next_seq; value } in
  if q.size = Array.length q.heap then grow q entry;
  q.next_seq <- q.next_seq + 1;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.priority, top.value)
  end

let peek q = if q.size = 0 then None else Some (q.heap.(0).priority, q.heap.(0).value)

let clear q = q.size <- 0

let to_sorted_list q =
  let entries = Array.sub q.heap 0 q.size |> Array.to_list in
  let sorted = List.sort (fun a b -> if before a b then -1 else 1) entries in
  List.map (fun e -> (e.priority, e.value)) sorted
