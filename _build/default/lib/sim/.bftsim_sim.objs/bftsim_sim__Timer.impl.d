lib/sim/timer.ml: Format Time
