lib/sim/simlog.mli: Format Logs Time
