lib/sim/pqueue.ml: Array Float List Stdlib
