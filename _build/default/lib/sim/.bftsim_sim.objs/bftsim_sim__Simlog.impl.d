lib/sim/simlog.ml: Format Logs Time
