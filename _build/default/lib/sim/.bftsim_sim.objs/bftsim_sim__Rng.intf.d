lib/sim/rng.mli:
