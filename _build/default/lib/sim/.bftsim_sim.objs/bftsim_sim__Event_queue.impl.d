lib/sim/event_queue.ml: Pqueue Printf Time
