lib/sim/timer.mli: Format Time
