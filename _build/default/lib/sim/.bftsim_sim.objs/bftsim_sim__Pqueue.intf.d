lib/sim/pqueue.mli:
