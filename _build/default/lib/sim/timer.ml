type payload = ..

type payload += Tick

type id = int

type t = { id : id; owner : int; deadline : Time.t; tag : string; payload : payload }

let attacker_owner = -1

let pp ppf t =
  Format.fprintf ppf "timer#%d[owner=%d tag=%s at=%a]" t.id t.owner t.tag Time.pp t.deadline
