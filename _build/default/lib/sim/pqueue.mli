(** Imperative binary min-heap with deterministic tie-breaking.

    The event queue of the simulator (paper §III-A2) must pop events in
    timestamp order; events carrying the same timestamp must come out in the
    order they were pushed, otherwise two runs with the same seed could
    interleave simultaneous deliveries differently and traces would not be
    reproducible.  The heap therefore keys entries on the pair
    [(priority, sequence-number)] where the sequence number is a
    monotonically increasing insertion counter. *)

type 'a t
(** A mutable priority queue holding values of type ['a]. *)

val create : ?initial_capacity:int -> unit -> 'a t
(** [create ()] is a fresh empty queue. *)

val length : 'a t -> int
(** Number of queued entries. *)

val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit
(** [push q ~priority v] inserts [v].  Entries with smaller [priority] pop
    first; equal priorities pop in insertion order. *)

val pop : 'a t -> (float * 'a) option
(** [pop q] removes and returns the minimum entry, or [None] if empty. *)

val peek : 'a t -> (float * 'a) option
(** [peek q] is the minimum entry without removing it. *)

val clear : 'a t -> unit
(** Removes every entry. *)

val to_sorted_list : 'a t -> (float * 'a) list
(** [to_sorted_list q] is a non-destructive snapshot of the queue contents in
    pop order.  Intended for tests and debugging; costs O(n log n). *)
