type 'a t = { queue : 'a Pqueue.t; mutable clock : Time.t; mutable popped : int }

let create () = { queue = Pqueue.create (); clock = Time.zero; popped = 0 }

let now q = q.clock

let schedule q ~at ev =
  if Time.is_before at q.clock then
    invalid_arg
      (Printf.sprintf "Event_queue.schedule: %s is in the past (now %s)" (Time.to_string at)
         (Time.to_string q.clock));
  Pqueue.push q.queue ~priority:(Time.to_ms at) ev

let schedule_after q ~delay_ms ev =
  let delay_ms = if delay_ms < 0. then 0. else delay_ms in
  schedule q ~at:(Time.add_ms q.clock delay_ms) ev

let next q =
  match Pqueue.pop q.queue with
  | None -> None
  | Some (priority, ev) ->
    let at = Time.of_ms priority in
    q.clock <- Time.max q.clock at;
    q.popped <- q.popped + 1;
    Some (q.clock, ev)

let peek_time q =
  match Pqueue.peek q.queue with
  | None -> None
  | Some (priority, _) -> Some (Time.of_ms priority)

let pending q = Pqueue.length q.queue

let popped q = q.popped
