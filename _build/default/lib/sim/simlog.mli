(** Simulation-aware logging.

    Thin layer over {!Logs} that prefixes every line with the virtual clock,
    so a log of a run reads as a timeline.  The current time is injected by
    the controller via {!set_now}; library code only calls the level
    helpers. *)

val src : Logs.src
(** The [bftsim] log source; adjust its level with [Logs.Src.set_level]. *)

val set_now : (unit -> Time.t) -> unit
(** Installs the clock accessor.  Called by the controller at start-up; the
    default reports {!Time.zero}. *)

val debug : ('a, Format.formatter, unit, unit) format4 -> 'a
val info : ('a, Format.formatter, unit, unit) format4 -> 'a
val warn : ('a, Format.formatter, unit, unit) format4 -> 'a
val err : ('a, Format.formatter, unit, unit) format4 -> 'a

val setup_for_cli : level:Logs.level option -> unit
(** Installs a [Fmt]-based reporter on stderr; used by [bin/] and
    [examples/]. *)
