(** Time-triggered events ("time events" in paper §III-A2).

    A consensus node or an attacker registers a timer with the controller;
    when the simulation clock reaches the deadline the owner's
    [on_time_event] callback runs with the timer's payload.  Payloads use an
    extensible variant so every protocol declares its own timer kinds without
    this module knowing about them. *)

type payload = ..
(** Protocol- or attacker-specific timer payloads.  Extend with e.g.
    [type Timer.payload += View_timeout of int]. *)

type payload += Tick
(** A generic payload for callers that only need a wake-up. *)

type id = int
(** Handle used to cancel a pending timer.  Unique within one simulation. *)

type t = {
  id : id;
  owner : int;  (** Node index, or {!attacker_owner} for the attacker. *)
  deadline : Time.t;
  tag : string;  (** Human-readable label recorded in traces. *)
  payload : payload;
}

val attacker_owner : int
(** Distinguished owner index for attacker timers (-1). *)

val pp : Format.formatter -> t -> unit
