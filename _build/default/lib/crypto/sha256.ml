type digest = string

(* Round constants: cube roots of the first 64 primes (FIPS 180-4 §4.2.2). *)
let k =
  [|
    0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l; 0x923f82a4l;
    0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel;
    0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl;
    0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l;
    0xc6e00bf3l; 0xd5a79147l; 0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
    0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
    0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l;
    0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl; 0x682e6ff3l;
    0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l; 0x90befffal; 0xa4506cebl; 0xbef9a3f7l;
    0xc67178f2l;
  |]

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

let ( +% ) = Int32.add

let ( ^% ) = Int32.logxor

let ( &% ) = Int32.logand

let lnot32 = Int32.lognot

let shr = Int32.shift_right_logical

type state = { h : int32 array }

let init () =
  (* Initial hash: square roots of the first 8 primes. *)
  {
    h =
      [|
        0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl; 0x9b05688cl; 0x1f83d9abl;
        0x5be0cd19l;
      |];
  }

let compress st block off =
  let w = Array.make 64 0l in
  for t = 0 to 15 do
    let base = off + (4 * t) in
    let byte i = Int32.of_int (Char.code (Bytes.get block (base + i))) in
    w.(t) <-
      Int32.logor
        (Int32.shift_left (byte 0) 24)
        (Int32.logor
           (Int32.shift_left (byte 1) 16)
           (Int32.logor (Int32.shift_left (byte 2) 8) (byte 3)))
  done;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 ^% rotr w.(t - 15) 18 ^% shr w.(t - 15) 3 in
    let s1 = rotr w.(t - 2) 17 ^% rotr w.(t - 2) 19 ^% shr w.(t - 2) 10 in
    w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
  done;
  let a = ref st.h.(0)
  and b = ref st.h.(1)
  and c = ref st.h.(2)
  and d = ref st.h.(3)
  and e = ref st.h.(4)
  and f = ref st.h.(5)
  and g = ref st.h.(6)
  and hh = ref st.h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 ^% rotr !e 11 ^% rotr !e 25 in
    let ch = (!e &% !f) ^% (lnot32 !e &% !g) in
    let t1 = !hh +% s1 +% ch +% k.(t) +% w.(t) in
    let s0 = rotr !a 2 ^% rotr !a 13 ^% rotr !a 22 in
    let maj = (!a &% !b) ^% (!a &% !c) ^% (!b &% !c) in
    let t2 = s0 +% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +% t1;
    d := !c;
    c := !b;
    b := !a;
    a := t1 +% t2
  done;
  st.h.(0) <- st.h.(0) +% !a;
  st.h.(1) <- st.h.(1) +% !b;
  st.h.(2) <- st.h.(2) +% !c;
  st.h.(3) <- st.h.(3) +% !d;
  st.h.(4) <- st.h.(4) +% !e;
  st.h.(5) <- st.h.(5) +% !f;
  st.h.(6) <- st.h.(6) +% !g;
  st.h.(7) <- st.h.(7) +% !hh

let digest_bytes msg =
  let st = init () in
  let len = Bytes.length msg in
  (* Padding: 0x80, zeros, then the bit length as a big-endian 64-bit word,
     bringing the total to a multiple of 64 bytes. *)
  let rem = len mod 64 in
  let pad_len = if rem < 56 then 56 - rem else 120 - rem in
  let total = len + pad_len + 8 in
  let buf = Bytes.make total '\000' in
  Bytes.blit msg 0 buf 0 len;
  Bytes.set buf len '\x80';
  let bitlen = Int64.of_int (8 * len) in
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    Bytes.set buf
      (total - 8 + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen shift) 0xffL)))
  done;
  let blocks = total / 64 in
  for b = 0 to blocks - 1 do
    compress st buf (b * 64)
  done;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = st.h.(i) in
    Bytes.set out (4 * i) (Char.chr (Int32.to_int (shr v 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr (Int32.to_int (shr v 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr (Int32.to_int (shr v 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (Int32.to_int v land 0xff))
  done;
  Bytes.unsafe_to_string out

let digest_string s = digest_bytes (Bytes.of_string s)

let to_hex d =
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let of_raw s = if String.length s <> 32 then invalid_arg "Sha256.of_raw: need 32 bytes" else s

let to_raw d = d

let equal = String.equal

let compare = String.compare

let first64 d =
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code d.[i]))
  done;
  !acc

let pp ppf d = Format.pp_print_string ppf (String.sub (to_hex d) 0 8)
