(** SHA-256 (FIPS 180-4), implemented from scratch.

    The simulator does not need cryptographic security against real-world
    adversaries — everything runs inside one process — but it does need a
    collision-resistant, deterministic hash to build the simulated signature
    scheme, the VRF used by ADD+v2/v3 and Algorand leader election, and
    Merkle commitments.  A faithful SHA-256 keeps those substrates honest and
    exercises realistic code paths. *)

type digest = private string
(** A 32-byte digest. *)

val digest_string : string -> digest
(** [digest_string s] is the SHA-256 digest of [s]. *)

val digest_bytes : bytes -> digest

val to_hex : digest -> string
(** Lowercase hexadecimal rendering (64 characters). *)

val of_raw : string -> digest
(** Treats a 32-byte string as a digest.
    @raise Invalid_argument if the length is not 32. *)

val to_raw : digest -> string
(** The raw 32-byte digest string. *)

val equal : digest -> digest -> bool

val compare : digest -> digest -> int

val first64 : digest -> int64
(** Big-endian interpretation of the first 8 digest bytes; handy for turning
    a digest into a sortable "lottery ticket" (VRF output ordering). *)

val pp : Format.formatter -> digest -> unit
(** Prints the first 8 hex characters, enough to identify a value in logs. *)
