type proof_step = Left of Sha256.digest | Right of Sha256.digest

type proof = proof_step list

let hash_leaf leaf = Sha256.digest_string ("leaf|" ^ leaf)

let hash_node l r = Sha256.digest_string ("node|" ^ Sha256.to_raw l ^ Sha256.to_raw r)

(* Pad to a power of two by repeating the last leaf hash; standard and keeps
   proof shapes uniform. *)
let level_of_leaves leaves =
  let hashes = List.map hash_leaf leaves in
  match hashes with
  | [] -> [| Sha256.digest_string "" |]
  | _ ->
    let n = List.length hashes in
    let size = ref 1 in
    while !size < n do
      size := !size * 2
    done;
    let arr = Array.make !size (List.nth hashes (n - 1)) in
    List.iteri (fun i h -> arr.(i) <- h) hashes;
    arr

let reduce level =
  let half = Array.length level / 2 in
  Array.init half (fun i -> hash_node level.(2 * i) level.((2 * i) + 1))

let root leaves =
  let level = ref (level_of_leaves leaves) in
  while Array.length !level > 1 do
    level := reduce !level
  done;
  !level.(0)

let prove leaves i =
  let n = List.length leaves in
  if i < 0 || i >= n then invalid_arg "Merkle.prove: leaf index out of bounds";
  let level = ref (level_of_leaves leaves) in
  let idx = ref i in
  let steps = ref [] in
  while Array.length !level > 1 do
    let sibling = if !idx mod 2 = 0 then !idx + 1 else !idx - 1 in
    let step =
      if !idx mod 2 = 0 then Right !level.(sibling) else Left !level.(sibling)
    in
    steps := step :: !steps;
    level := reduce !level;
    idx := !idx / 2
  done;
  List.rev !steps

let verify ~root:expected ~leaf proof =
  let acc =
    List.fold_left
      (fun acc step ->
        match step with Left sib -> hash_node sib acc | Right sib -> hash_node acc sib)
      (hash_leaf leaf) proof
  in
  Sha256.equal acc expected
