(** Simulated verifiable random function.

    ADD+v2/v3 elect the round leader by having every node evaluate a VRF on
    the round number and broadcasting the proof; the node with the smallest
    output wins (paper §III-B1).  Algorand Agreement selects proposers by
    VRF credentials the same way.  The evaluation here is
    [HMAC(sk_node, round)], which gives the three VRF properties the
    protocols need: determinism (same node and input → same output),
    pseudo-randomness across nodes and rounds, and verifiability (any node
    can check a claimed evaluation against the claimed evaluator). *)

type evaluation = {
  node : int;  (** The evaluator. *)
  input : string;  (** Serialized input, e.g. the round number. *)
  output : Sha256.digest;  (** The pseudo-random output. *)
  proof : Sig_sim.signature;  (** Binds the output to the evaluator. *)
}

val eval : seed:int -> node:int -> input:string -> evaluation
(** Evaluate the VRF of [node] on [input] within key domain [seed]. *)

val verify : seed:int -> evaluation -> bool
(** Checks the proof and the output recomputation. *)

val ticket : evaluation -> int64
(** A sortable lottery ticket: the first 64 bits of the output, with the
    sign bit cleared so comparisons behave as unsigned. *)

val winner : evaluation list -> evaluation option
(** The evaluation with the smallest {!ticket}; ties (which have negligible
    probability) break toward the smaller node id.  [None] on []. *)
