let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.to_raw (Sha256.digest_string key) else key in
  let padded = Bytes.make block_size '\000' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  Bytes.unsafe_to_string padded

let xor_with pad s =
  String.init (String.length s) (fun i -> Char.chr (Char.code s.[i] lxor pad))

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest_string (xor_with 0x36 key ^ msg) in
  Sha256.digest_string (xor_with 0x5c key ^ Sha256.to_raw inner)

let verify ~key msg tag = Sha256.equal (mac ~key msg) tag
