type evaluation = {
  node : int;
  input : string;
  output : Sha256.digest;
  proof : Sig_sim.signature;
}

let eval ~seed ~node ~input =
  let kp = Sig_sim.keygen ~seed ~node in
  let output = Hmac.mac ~key:kp.secret ("vrf|" ^ input) in
  let proof = Sig_sim.sign kp ("vrf-proof|" ^ input ^ "|" ^ Sha256.to_raw output) in
  { node; input; output; proof }

let verify ~seed ev =
  ev.proof.Sig_sim.signer = ev.node
  && Sig_sim.verify ~seed ev.proof ("vrf-proof|" ^ ev.input ^ "|" ^ Sha256.to_raw ev.output)
  &&
  (* Re-derive the evaluation itself: in the simulated scheme the verifier
     may recompute the evaluator's HMAC directly. *)
  let kp = Sig_sim.keygen ~seed ~node:ev.node in
  Sha256.equal (Hmac.mac ~key:kp.secret ("vrf|" ^ ev.input)) ev.output

let ticket ev = Int64.logand (Sha256.first64 ev.output) Int64.max_int

let winner evs =
  let better a b =
    let ta = ticket a and tb = ticket b in
    let c = Int64.compare ta tb in
    c < 0 || (c = 0 && a.node < b.node)
  in
  List.fold_left
    (fun best ev -> match best with None -> Some ev | Some b -> if better ev b then Some ev else best)
    None evs
