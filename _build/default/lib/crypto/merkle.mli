(** Merkle trees over string leaves.

    Used to commit to batched proposals: a leader can send a root commitment
    and later reveal individual leaves with logarithmic inclusion proofs.
    The core protocols of the paper transmit whole values, but the tree is
    exercised by the batching example and gives the message-size estimator a
    realistic payload model. *)

type proof_step = Left of Sha256.digest | Right of Sha256.digest
(** One sibling on the leaf-to-root path, tagged with its side. *)

type proof = proof_step list

val root : string list -> Sha256.digest
(** Merkle root of the leaves (duplicate-last padding to a power of two).
    The root of [\[\]] is the digest of the empty string. *)

val prove : string list -> int -> proof
(** [prove leaves i] is the inclusion proof for leaf [i].
    @raise Invalid_argument if [i] is out of bounds. *)

val verify : root:Sha256.digest -> leaf:string -> proof -> bool
(** Checks an inclusion proof. *)
