lib/crypto/sig_sim.ml: Format Hmac Printf Sha256
