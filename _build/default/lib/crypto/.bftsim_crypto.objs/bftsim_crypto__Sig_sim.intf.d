lib/crypto/sig_sim.mli: Format Sha256
