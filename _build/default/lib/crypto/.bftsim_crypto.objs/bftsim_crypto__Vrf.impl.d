lib/crypto/vrf.ml: Hmac Int64 List Sha256 Sig_sim
