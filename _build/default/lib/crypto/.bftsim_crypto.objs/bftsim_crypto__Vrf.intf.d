lib/crypto/vrf.mli: Sha256 Sig_sim
