type keypair = { node : int; secret : string; public : string }

type signature = { signer : int; tag : Sha256.digest }

let secret_of ~seed ~node =
  Sha256.to_raw (Sha256.digest_string (Printf.sprintf "bftsim-sk|%d|%d" seed node))

let keygen ~seed ~node =
  let secret = secret_of ~seed ~node in
  let public = Sha256.to_hex (Sha256.digest_string ("bftsim-pk|" ^ secret)) in
  { node; secret; public }

let sign kp msg = { signer = kp.node; tag = Hmac.mac ~key:kp.secret msg }

let verify ~seed s msg =
  let secret = secret_of ~seed ~node:s.signer in
  Hmac.verify ~key:secret msg s.tag

let pp ppf s = Format.fprintf ppf "sig[%d:%a]" s.signer Sha256.pp s.tag
