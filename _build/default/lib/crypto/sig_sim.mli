(** Simulated digital signatures.

    A keypair is derived deterministically from a node identifier and a
    domain seed; a signature is an HMAC under the secret key, and — because
    the whole distributed system lives inside a single simulation process —
    verification simply re-derives the signer's secret key from its public
    identity.  This preserves the two properties protocols rely on:
    unforgeability *within the simulation's honest code paths* (honest nodes
    only sign through their own keys) and non-repudiation (a vote carries
    evidence of its sender that the attacker module can forge only for
    corrupted nodes, which is exactly the paper's attacker capability). *)

type keypair = { node : int; secret : string; public : string }

type signature = { signer : int; tag : Sha256.digest }

val keygen : seed:int -> node:int -> keypair
(** Deterministic keypair for [node] in the key domain [seed]. *)

val sign : keypair -> string -> signature

val verify : seed:int -> signature -> string -> bool
(** [verify ~seed s msg] checks that [s] is a valid signature on [msg] by
    node [s.signer] within key domain [seed]. *)

val pp : Format.formatter -> signature -> unit
