(** HMAC-SHA256 (RFC 2104).

    Keyed MACs are the deterministic primitive underneath the simulated
    signature scheme and the VRF: [HMAC(sk, msg)] plays the role of a unique
    signature, and its digest doubles as the VRF output whose pseudo-random
    value drives leader election in ADD+v2/v3 and Algorand. *)

val mac : key:string -> string -> Sha256.digest
(** [mac ~key msg] is HMAC-SHA256 of [msg] under [key]. *)

val verify : key:string -> string -> Sha256.digest -> bool
(** Constant-shape recomputation check (timing resistance is irrelevant in a
    simulator; determinism is what matters). *)
