type 'k entry = { voters : (int, unit) Hashtbl.t }

type 'k t = {
  table : ('k, 'k entry) Hashtbl.t;
  mutable order : 'k list;  (** Keys in first-seen order, newest first. *)
}

let create () = { table = Hashtbl.create 32; order = [] }

let entry t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
    let e = { voters = Hashtbl.create 8 } in
    Hashtbl.replace t.table key e;
    t.order <- key :: t.order;
    e

let add t key ~voter =
  let e = entry t key in
  if not (Hashtbl.mem e.voters voter) then Hashtbl.replace e.voters voter ();
  Hashtbl.length e.voters

let count t key =
  match Hashtbl.find_opt t.table key with None -> 0 | Some e -> Hashtbl.length e.voters

let has_voted t key ~voter =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some e -> Hashtbl.mem e.voters voter

let voters t key =
  match Hashtbl.find_opt t.table key with
  | None -> []
  | Some e -> Hashtbl.fold (fun voter () acc -> voter :: acc) e.voters [] |> List.sort compare

let keys t = t.order

let max_count t =
  (* Walk keys in first-seen order so ties resolve deterministically. *)
  List.fold_left
    (fun best key ->
      let c = count t key in
      match best with Some (_, bc) when bc >= c -> best | _ -> Some (key, c))
    None (List.rev t.order)

let clear t =
  Hashtbl.reset t.table;
  t.order <- []
