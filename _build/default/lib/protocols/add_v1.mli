(** ADD+ BA, basic variant (paper §III-B1): deterministic round-robin
    leaders.  Vulnerable to the static attack of Fig. 8 (left): crashing the
    first [f] scheduled leaders wastes the first [f] iterations. *)

include Protocol_intf.S with type node = Add_common.node
