open Bftsim_sim
open Bftsim_net
open Bftsim_attack
module Vrf = Bftsim_crypto.Vrf

type Timer.payload += Corrupt_winner of { iter : int }

let static ~f =
  {
    Attacker.name = Printf.sprintf "add-static(f=%d)" f;
    on_start =
      (fun env ->
        (* Fix the victims before the protocol starts: exactly v1's first f
           round-robin leaders. *)
        for node = 0 to f - 1 do
          ignore (env.Attacker.corrupt node)
        done);
    attack = Attacker.drop_from_corrupted;
    on_time_event = (fun _ _ -> ());
  }

let rushing_adaptive ?budget () =
  (* Lowest ticket seen so far per iteration, learned by observing the
     in-flight credentials (rushing capability). *)
  let best : (int, int64 * int) Hashtbl.t = Hashtbl.create 16 in
  let armed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let spent = ref 0 in
  let attack (env : Attacker.env) (msg : Message.t) =
    match Attacker.drop_from_corrupted env msg with
    | Attacker.Drop -> Attacker.Drop
    | Attacker.Deliver ->
      (match msg.payload with
      | Add_common.Add_credential { iter; credential } when credential.Vrf.node = msg.src ->
        let ticket = Vrf.ticket credential in
        (match Hashtbl.find_opt best iter with
        | Some (b, _) when Int64.compare b ticket <= 0 -> ()
        | _ -> Hashtbl.replace best iter (ticket, msg.src));
        if not (Hashtbl.mem armed iter) then begin
          Hashtbl.replace armed iter ();
          (* All credentials of an iteration are broadcast at the same slot
             boundary, so by 0.9 lambda later the winner is known and its
             proposal (sent at the next boundary) is not yet out. *)
          ignore
            (env.Attacker.set_timer
               ~delay_ms:(0.9 *. env.Attacker.lambda_ms)
               ~tag:"corrupt-winner" (Corrupt_winner { iter }))
        end
      | _ -> ());
      Attacker.Deliver
  in
  let on_time_event (env : Attacker.env) (timer : Timer.t) =
    match timer.Timer.payload with
    | Corrupt_winner { iter } -> (
      let budget = match budget with Some b -> b | None -> env.Attacker.f in
      match Hashtbl.find_opt best iter with
      | Some (_, winner) when !spent < budget ->
        if env.Attacker.corrupt winner then incr spent
      | Some _ | None -> ())
    | _ -> ()
  in
  { Attacker.name = "add-rushing-adaptive"; on_start = (fun _ -> ()); attack; on_time_event }
