(** LibraBFT (paper §III-B6).

    Identical chained-HotStuff consensus core as {!Hotstuff}, but the
    PaceMaker advances views with broadcast timeout votes aggregated into
    timeout certificates, and its back-off resets on progress.  This gives a
    termination bound after GST: when the network heals, one certificate
    round re-synchronizes every honest node — which is why LibraBFT recovers
    quickly in the paper's partition and delay-underestimation experiments
    where HotStuff+NS collapses. *)

include Protocol_intf.S with type node = Chained_core.node

val current_view : node -> int
