(** Duplicate-safe vote counting.

    Every threshold rule in the protocols ("on receiving [2f+1] prepares for
    digest [d] …") needs a map from a vote key to the {e set} of distinct
    voters, because a faulty or retransmitting node must not be counted
    twice.  ['k] is the vote key — typically a [(view, phase, value)]
    tuple. *)

type 'k t

val create : unit -> 'k t

val add : 'k t -> 'k -> voter:int -> int
(** [add t key ~voter] records the vote and returns the new number of
    distinct voters for [key].  Re-votes do not change the count. *)

val count : 'k t -> 'k -> int
(** Number of distinct voters recorded for [key]; 0 if none. *)

val has_voted : 'k t -> 'k -> voter:int -> bool

val voters : 'k t -> 'k -> int list
(** Ascending list of distinct voters for [key]. *)

val keys : 'k t -> 'k list
(** All keys with at least one vote, in unspecified order. *)

val max_count : 'k t -> ('k * int) option
(** The key with the most distinct voters (ties broken arbitrarily but
    deterministically for a given insertion history). *)

val clear : 'k t -> unit
