(** Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI '99).

    Partially-synchronous, responsive (paper §III-B4): a slot decides after
    the pre-prepare → prepare → commit exchange regardless of the timeout
    parameter, and the view-change timeout doubles every time the view
    changes, so the protocol eventually outlasts any actual network delay.

    This implementation runs consecutive slots (state-machine replication):
    once slot [s] decides, the primary proposes slot [s+1]; the controller
    stops the run when its decision target is met. *)

open Bftsim_net

type Message.payload +=
  | Pre_prepare of { view : int; slot : int; value : string }
  | Prepare of { view : int; slot : int; value : string }
  | Commit of { view : int; slot : int; value : string }
  | View_change of { new_view : int }
  | New_view of { view : int; slot : int; value : string }

type Bftsim_sim.Timer.payload += Progress of { view : int; slot : int }

include Protocol_intf.S
