(** Tendermint consensus (Buchman, Kwon, Milosevic 2018) — extension
    protocol beyond the paper's Table I.

    The paper cites Tendermint twice (early versions used PBFT, and "the
    latest gossip on BFT consensus" appears as a newer blockchain-scale
    protocol), making it the natural ninth protocol for the simulator.
    Partially synchronous, rotating proposers, two voting steps per round
    (prevote, precommit) with value locking for safety; round timeouts grow
    linearly, so it recovers from faulty proposers without exponential
    back-off.  Nil votes let a round fail cleanly when the proposer is
    silent. *)

open Bftsim_net

type Message.payload +=
  | Tm_proposal of { height : int; round : int; value : string }
  | Tm_prevote of { height : int; round : int; value : string }
      (** [value = ""] is the nil prevote. *)
  | Tm_precommit of { height : int; round : int; value : string }

type Bftsim_sim.Timer.payload +=
  | Tm_timeout of { height : int; round : int; step : int }
      (** step 0 = propose, 1 = prevote-wait, 2 = precommit-wait. *)

include Protocol_intf.S

val current_height : node -> int

val current_round : node -> int
