(** Bracha reliable broadcast (the primitive under async BA, §III-B3).

    Bracha's asynchronous BA "limits the behavior of Byzantine nodes using
    reliable broadcast plus a validation function"; this module provides
    that primitive as an embeddable component: any protocol can hold an
    {!t} in its node state, call {!broadcast}, route RBC messages through
    {!handle}, and receive at most one {e delivery} per (origin, tag) with
    the guarantees:

    - {b validity}: a broadcast by an honest origin is eventually delivered
      by every honest node;
    - {b totality / agreement}: if any honest node delivers [(origin, tag,
      v)], every honest node delivers the same [v] for that broadcast —
      even if the origin equivocated its init messages.

    Echo (2f+1) and ready (2f+1 to deliver, f+1 to amplify) thresholds are
    the classic ones. *)

open Bftsim_net

type Message.payload +=
  | Rbc_init of { origin : int; tag : string; value : string }
  | Rbc_echo of { origin : int; tag : string; value : string }
  | Rbc_ready of { origin : int; tag : string; value : string }

type t
(** Per-node broadcast state (covers any number of concurrent broadcasts,
    keyed by (origin, tag)). *)

val create : unit -> t

val broadcast : t -> Context.t -> tag:string -> value:string -> unit
(** Start reliably broadcasting [value] as this node; [tag] distinguishes
    concurrent broadcasts by the same origin. *)

val handle : t -> Context.t -> Message.t -> (int * string * string) option
(** Process one incoming message.  Returns [Some (origin, tag, value)] the
    first time that broadcast becomes deliverable at this node, [None] for
    non-RBC messages and duplicates. *)

val delivered : t -> origin:int -> tag:string -> string option
(** The delivered value of a broadcast, if any. *)

val delivered_count : t -> int
