open Bftsim_sim
open Bftsim_net

type t = {
  node_id : int;
  n : int;
  f : int;
  lambda_ms : float;
  seed : int;
  input : string;
  rng : Rng.t;
  now : unit -> Time.t;
  send_raw : dst:int -> tag:string -> size:int -> Message.payload -> unit;
  broadcast_raw : include_self:bool -> tag:string -> size:int -> Message.payload -> unit;
  set_timer : delay_ms:float -> tag:string -> Timer.payload -> Timer.id;
  cancel_timer : Timer.id -> unit;
  decide : string -> unit;
}

let send t ~dst ~tag ?(size = Message.default_size) payload = t.send_raw ~dst ~tag ~size payload

let broadcast t ?(include_self = true) ~tag ?(size = Message.default_size) payload =
  t.broadcast_raw ~include_self ~tag ~size payload

let leader_round_robin t ~view = ((view mod t.n) + t.n) mod t.n

let is_leader_round_robin t ~view = leader_round_robin t ~view = t.node_id
