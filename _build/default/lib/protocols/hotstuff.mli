(** HotStuff with a naive view-doubling synchronizer — "HotStuff+NS"
    (paper §III-B5).

    Chained (pipelined) HotStuff with linear leader communication and
    optimistic responsiveness.  The HotStuff paper leaves the PaceMaker
    abstract; following the simulator paper, this instantiation uses the
    naive exponential view-doubling synchronizer of Naor et al., whose
    never-resetting back-off is responsible for the dramatic behaviours in
    the paper's Figs. 5, 6 and 9.  The consensus machinery itself lives in
    {!Chained_core}. *)

include Protocol_intf.S with type node = Chained_core.node

val current_view : node -> int
(** Exposed for the Fig. 9 view tracker. *)
