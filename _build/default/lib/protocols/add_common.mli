(** Shared core of the three ADD+ synchronous BA variants
    (Abraham, Devadas, Dolev, Nayak, Ren 2018; paper §III-B1).

    Execution is lock-step: every slot lasts exactly one lambda (the known
    synchronous delay bound), and nodes act on slot-boundary time events.
    Per iteration:

    - {b v1}: deterministic round-robin leader; propose → vote → tally.
      A static attacker that crashes the first [f] scheduled leaders wastes
      the first [f] iterations (Fig. 8 left).
    - {b v2}: adds VRF leader election (lowest ticket wins), defeating the
      static attacker — but a rushing adaptive attacker that corrupts each
      winner right after the credentials are revealed, before the winner's
      proposal, still wastes an iteration per corruption (Fig. 8 right).
    - {b v3}: adds a prepare round {e before} the credential reveal: every
      node broadcasts its proposal content first, and the elected leader's
      already-delivered prepare {e is} the proposal.  Corrupting the winner
      after the reveal is too late, restoring expected-constant-round
      termination under the rushing adaptive attacker.

    Once a node has seen [n - f] votes for a value it decides and notifies;
    [f + 1] notifications are also sufficient to decide (they prove an
    honest node decided).  Decided nodes keep voting their decided value so
    stragglers can finish. *)

open Bftsim_net
module Vrf = Bftsim_crypto.Vrf

type variant = V1 | V2 | V3

type Message.payload +=
  | Add_prepare of { iter : int; value : string }
  | Add_credential of { iter : int; credential : Vrf.evaluation }
  | Add_propose of { iter : int; value : string }
  | Add_vote of { iter : int; leader : int; value : string }
  | Add_notify of { value : string }

type Bftsim_sim.Timer.payload += Add_slot of { iter : int; slot : int }

val slots_per_iteration : variant -> int
(** 3 for v1 (propose/vote/tally), 4 for v2, 5 for v3 (the prepare round
    plus a credential-propagation window add a slot each). *)

type node

val create : variant -> Context.t -> node

val on_start : node -> Context.t -> unit

val on_message : node -> Context.t -> Message.t -> unit

val on_timer : node -> Context.t -> Bftsim_sim.Timer.t -> unit

val current_iteration : node -> int

val decided_value : node -> string option
