(** The two protocol-aware attackers against the ADD+ family
    (paper §III-C, Table II; evaluated in Fig. 8).

    Both are built on the abstracted global attacker: corruption of a node
    means silencing all of its subsequent messages, which — since nodes only
    interact through messages — is indistinguishable from crashing it. *)

open Bftsim_attack

val static : f:int -> Attacker.t
(** The {b static} attack: the adversary fixes its victims before the run —
    it crashes nodes [0 .. f-1], which are exactly ADD+v1's first [f]
    round-robin leaders, forcing [f] wasted iterations.  Against v2/v3 the
    VRF schedule makes this choice no better than random. *)

val rushing_adaptive : ?budget:int -> unit -> Attacker.t
(** The {b rushing adaptive} attack: the adversary watches the in-flight
    credential messages of each iteration, and just before the next slot
    boundary corrupts the node holding the winning (lowest) ticket, spending
    its corruption budget ([budget], default the tolerance bound [f]).  Against v2 the winner's proposal is
    thereby suppressed and the iteration wasted; against v3 the winner's
    prepared value is already delivered, so the corruption achieves
    nothing. *)
