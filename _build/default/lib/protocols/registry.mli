(** The catalogue of implemented protocols (paper Table I).

    The CLI, the experiment runner and the benchmark harness resolve
    protocols by name through this registry.  It is extensible at run time:
    a user protocol becomes available everywhere (CLI names, configs,
    sweeps) after one {!register} call — the paper's "users can also import
    or write customized BFT protocols" (§III-A). *)

val all : unit -> Protocol_intf.t list
(** Registered protocols: the paper's eight in Table I order, the two
    extension protocols (Tendermint, Sync HotStuff), then any
    user-registered ones in registration order. *)

val names : unit -> string list

val find : string -> Protocol_intf.t option

val find_exn : string -> Protocol_intf.t
(** @raise Invalid_argument on an unknown name (the message lists the known
    ones). *)

val register : Protocol_intf.t -> unit
(** Adds a protocol.
    @raise Invalid_argument if the name is already taken. *)
