(** ADD+ BA with VRF leader election (paper §III-B1): immune to the static
    attack, but a rushing adaptive attacker corrupting each revealed winner
    before its proposal still delays termination by one iteration per
    corruption (Fig. 8 right). *)

include Protocol_intf.S with type node = Add_common.node
