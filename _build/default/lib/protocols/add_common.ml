open Bftsim_sim
open Bftsim_net
module Vrf = Bftsim_crypto.Vrf

type variant = V1 | V2 | V3

type Message.payload +=
  | Add_prepare of { iter : int; value : string }
  | Add_credential of { iter : int; credential : Vrf.evaluation }
  | Add_propose of { iter : int; value : string }
  | Add_vote of { iter : int; leader : int; value : string }
  | Add_notify of { value : string }

type Timer.payload += Add_slot of { iter : int; slot : int }

let slots_per_iteration = function V1 -> 3 | V2 -> 4 | V3 -> 5

type node = {
  variant : variant;
  mutable iter : int;
  mutable slot : int;
  mutable value : string;
  mutable decided : string option;
  voted : (int, unit) Hashtbl.t;
  (* iter -> sender -> prepared value (v3). *)
  prepares : (int, (int, string) Hashtbl.t) Hashtbl.t;
  (* iter -> sender -> proposed value (v1, v2). *)
  proposals : (int, (int, string) Hashtbl.t) Hashtbl.t;
  (* iter -> best (ticket, node) among verified credentials. *)
  best_credential : (int, int64 * int) Hashtbl.t;
  votes : (int * int * string) Tally.t;
  notifies : string Tally.t;
}

let create variant ctx =
  {
    variant;
    iter = 0;
    slot = 0;
    value = ctx.Context.input;
    decided = None;
    voted = Hashtbl.create 16;
    prepares = Hashtbl.create 16;
    proposals = Hashtbl.create 16;
    best_credential = Hashtbl.create 16;
    votes = Tally.create ();
    notifies = Tally.create ();
  }

let current_iteration t = t.iter

let decided_value t = t.decided

let delta ctx = ctx.Context.lambda_ms

let sub_table table iter =
  match Hashtbl.find_opt table iter with
  | Some sub -> sub
  | None ->
    let sub = Hashtbl.create 8 in
    Hashtbl.replace table iter sub;
    sub

let credential_input iter = Printf.sprintf "add|%d" iter

(* The leader this node currently believes in for [iter]: the round-robin
   schedule for v1, the lowest verified VRF ticket for v2/v3. *)
let perceived_leader t ctx iter =
  match t.variant with
  | V1 -> Some (Context.leader_round_robin ctx ~view:iter)
  | V2 | V3 -> (
    match Hashtbl.find_opt t.best_credential iter with
    | Some (_, node) -> Some node
    | None -> None)

let schedule_slot ctx ~iter ~slot =
  ignore (ctx.Context.set_timer ~delay_ms:(delta ctx) ~tag:"add-slot" (Add_slot { iter; slot }))

let decide t ctx value =
  if t.decided = None then begin
    t.decided <- Some value;
    t.value <- value;
    ctx.Context.decide value;
    Context.broadcast ctx ~tag:"add-notify" (Add_notify { value })
  end

(* Voting is event-driven within the iteration's voting window: a node
   votes as soon as it is in the voting slot or later AND knows the leader's
   proposal, so delays approaching the slot length (e.g. Fig. 7's
   N(1000,300) against lambda = 1000) do not silently starve the tally. *)
let vote_slot = function V1 -> 1 | V2 -> 2 | V3 -> 3

let try_vote t ctx =
  if (not (Hashtbl.mem t.voted t.iter)) && t.slot >= vote_slot t.variant then begin
    match perceived_leader t ctx t.iter with
    | None -> ()
    | Some leader -> (
      let source = match t.variant with V3 -> t.prepares | V1 | V2 -> t.proposals in
      match Hashtbl.find_opt (sub_table source t.iter) leader with
      | Some value ->
        Hashtbl.replace t.voted t.iter ();
        Context.broadcast ctx ~tag:"add-vote" (Add_vote { iter = t.iter; leader; value })
      | None -> ())
  end

(* Deciding is likewise event-driven: a quorum of identical votes decides no
   matter when the last vote lands. *)
let try_decide t ctx ~iter ~leader ~value =
  if Tally.count t.votes (iter, leader, value) >= Quorum.quorum ctx.Context.n then
    decide t ctx value

(* End of an iteration: decisions already happened event-driven; just move
   on to the next iteration. *)
let tally_and_continue t ctx =
  t.iter <- t.iter + 1;
  t.slot <- 0;
  schedule_slot ctx ~iter:t.iter ~slot:0

let run_slot t ctx ~iter ~slot =
  if iter <> t.iter then ()
  else begin
    t.slot <- slot;
    (match (t.variant, slot) with
    | V1, 0 ->
      if Context.is_leader_round_robin ctx ~view:iter then
        Context.broadcast ctx ~tag:"add-propose" (Add_propose { iter; value = t.value })
    | V1, 1 -> try_vote t ctx
    | V1, _ -> tally_and_continue t ctx
    | V2, 0 | V3, 1 ->
      let credential =
        Vrf.eval ~seed:ctx.Context.seed ~node:ctx.Context.node_id
          ~input:(credential_input iter)
      in
      Context.broadcast ctx ~tag:"add-credential" ~size:192 (Add_credential { iter; credential })
    | V3, 0 -> Context.broadcast ctx ~tag:"add-prepare" (Add_prepare { iter; value = t.value })
    | V2, 1 ->
      (* Only the node that believes itself elected proposes. *)
      if perceived_leader t ctx iter = Some ctx.Context.node_id then
        Context.broadcast ctx ~tag:"add-propose" (Add_propose { iter; value = t.value })
    | V2, 2 | V3, 3 -> try_vote t ctx
    (* v3 slot 2 is the credential-propagation window: all credentials
       (broadcast at slot 1) arrive before anyone votes, so every node
       elects the same winner. *)
    | V3, 2 -> ()
    | V2, _ | V3, _ -> tally_and_continue t ctx);
    if slot < slots_per_iteration t.variant - 1 then schedule_slot ctx ~iter ~slot:(slot + 1)
  end

let on_start t ctx = run_slot t ctx ~iter:0 ~slot:0

let on_message t ctx (msg : Message.t) =
  match msg.payload with
  | Add_prepare { iter; value } ->
    Hashtbl.replace (sub_table t.prepares iter) msg.src value;
    if iter = t.iter then try_vote t ctx
  | Add_propose { iter; value } ->
    Hashtbl.replace (sub_table t.proposals iter) msg.src value;
    if iter = t.iter then try_vote t ctx
  | Add_credential { iter; credential } ->
    if
      credential.Vrf.node = msg.src
      && Vrf.verify ~seed:ctx.Context.seed credential
      && String.equal credential.Vrf.input (credential_input iter)
    then begin
      let ticket = Vrf.ticket credential in
      match Hashtbl.find_opt t.best_credential iter with
      | Some (best, _) when Int64.compare best ticket <= 0 -> ()
      | _ -> Hashtbl.replace t.best_credential iter (ticket, msg.src)
    end
  | Add_vote { iter; leader; value } ->
    ignore (Tally.add t.votes (iter, leader, value) ~voter:msg.src);
    try_decide t ctx ~iter ~leader ~value
  | Add_notify { value } ->
    let count = Tally.add t.notifies value ~voter:msg.src in
    if count >= Quorum.one_honest ctx.Context.n then decide t ctx value
  | _ -> ()

let on_timer t ctx (timer : Timer.t) =
  match timer.payload with
  | Add_slot { iter; slot } -> run_slot t ctx ~iter ~slot
  | _ -> ()

let () =
  Message.register_printer (function
    | Add_prepare { iter; value } -> Some (Printf.sprintf "AddPrepare(i=%d,%s)" iter value)
    | Add_credential { iter; _ } -> Some (Printf.sprintf "AddCredential(i=%d)" iter)
    | Add_propose { iter; value } -> Some (Printf.sprintf "AddPropose(i=%d,%s)" iter value)
    | Add_vote { iter; leader; value } ->
      Some (Printf.sprintf "AddVote(i=%d,l=%d,%s)" iter leader value)
    | Add_notify { value } -> Some (Printf.sprintf "AddNotify(%s)" value)
    | _ -> None)
