lib/protocols/protocol_intf.ml: Bftsim_net Bftsim_sim Context
