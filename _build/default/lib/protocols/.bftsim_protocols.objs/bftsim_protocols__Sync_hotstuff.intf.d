lib/protocols/sync_hotstuff.mli: Bftsim_net Bftsim_sim Chain Message Protocol_intf
