lib/protocols/librabft.mli: Chained_core Protocol_intf
