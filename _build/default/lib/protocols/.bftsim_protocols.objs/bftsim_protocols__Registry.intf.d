lib/protocols/registry.mli: Protocol_intf
