lib/protocols/add_v1.ml: Add_common Protocol_intf
