lib/protocols/addplus_attacks.mli: Attacker Bftsim_attack
