lib/protocols/tally.mli:
