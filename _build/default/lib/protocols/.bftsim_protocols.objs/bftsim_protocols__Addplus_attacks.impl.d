lib/protocols/addplus_attacks.ml: Add_common Attacker Bftsim_attack Bftsim_crypto Bftsim_net Bftsim_sim Hashtbl Int64 Message Printf Timer
