lib/protocols/async_ba.mli: Bftsim_net Message Protocol_intf
