lib/protocols/quorum.mli:
