lib/protocols/sync_hotstuff.ml: Bftsim_net Bftsim_sim Chain Context Format Hashtbl Message Printf Protocol_intf Quorum Stdlib String Tally Timer
