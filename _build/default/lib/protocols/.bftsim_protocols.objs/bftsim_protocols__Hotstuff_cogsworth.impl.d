lib/protocols/hotstuff_cogsworth.ml: Chained_core Protocol_intf
