lib/protocols/rbc.ml: Bftsim_net Context Hashtbl Message Printf Quorum Tally
