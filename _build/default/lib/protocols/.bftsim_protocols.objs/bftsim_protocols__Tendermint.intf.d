lib/protocols/tendermint.mli: Bftsim_net Bftsim_sim Message Protocol_intf
