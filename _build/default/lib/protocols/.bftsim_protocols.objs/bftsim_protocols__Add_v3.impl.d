lib/protocols/add_v3.ml: Add_common Protocol_intf
