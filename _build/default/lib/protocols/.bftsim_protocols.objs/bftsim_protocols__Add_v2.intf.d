lib/protocols/add_v2.mli: Add_common Protocol_intf
