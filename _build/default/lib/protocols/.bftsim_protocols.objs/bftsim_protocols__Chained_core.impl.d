lib/protocols/chained_core.ml: Bftsim_net Bftsim_sim Chain Context Format Hashtbl List Message Option Printf Quorum Stdlib String Sys Tally Timer
