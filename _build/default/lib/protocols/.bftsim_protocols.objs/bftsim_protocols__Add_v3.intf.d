lib/protocols/add_v3.mli: Add_common Protocol_intf
