lib/protocols/hotstuff.mli: Chained_core Protocol_intf
