lib/protocols/add_v2.ml: Add_common Protocol_intf
