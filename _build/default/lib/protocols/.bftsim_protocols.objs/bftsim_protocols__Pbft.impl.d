lib/protocols/pbft.ml: Bftsim_net Bftsim_sim Context Hashtbl List Message Option Printf Protocol_intf Quorum Tally Timer
