lib/protocols/algorand.ml: Bftsim_crypto Bftsim_net Bftsim_sim Context Hashtbl Int64 List Message Option Printf Protocol_intf Quorum String Tally Timer
