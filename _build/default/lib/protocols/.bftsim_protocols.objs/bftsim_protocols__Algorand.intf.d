lib/protocols/algorand.mli: Bftsim_crypto Bftsim_net Bftsim_sim Message Protocol_intf
