lib/protocols/chained_core.mli: Bftsim_net Bftsim_sim Chain Context Message
