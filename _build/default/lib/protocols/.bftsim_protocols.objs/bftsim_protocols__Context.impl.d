lib/protocols/context.ml: Bftsim_net Bftsim_sim Message Rng Time Timer
