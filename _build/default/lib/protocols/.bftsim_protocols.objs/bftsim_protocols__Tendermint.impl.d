lib/protocols/tendermint.ml: Bftsim_net Bftsim_sim Context Hashtbl List Message Printf Protocol_intf Quorum String Tally Timer
