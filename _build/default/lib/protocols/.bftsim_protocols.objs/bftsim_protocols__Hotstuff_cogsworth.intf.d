lib/protocols/hotstuff_cogsworth.mli: Chained_core Protocol_intf
