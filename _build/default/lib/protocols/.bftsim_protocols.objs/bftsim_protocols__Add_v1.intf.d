lib/protocols/add_v1.mli: Add_common Protocol_intf
