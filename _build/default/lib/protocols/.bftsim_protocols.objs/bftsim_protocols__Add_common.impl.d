lib/protocols/add_common.ml: Bftsim_crypto Bftsim_net Bftsim_sim Context Hashtbl Int64 Message Printf Quorum String Tally Timer
