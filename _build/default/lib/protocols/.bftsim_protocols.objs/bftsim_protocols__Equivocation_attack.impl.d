lib/protocols/equivocation_attack.ml: Attacker Bftsim_attack Bftsim_net Message Pbft Printf
