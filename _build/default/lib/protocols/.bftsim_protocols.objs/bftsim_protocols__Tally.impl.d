lib/protocols/tally.ml: Hashtbl List
