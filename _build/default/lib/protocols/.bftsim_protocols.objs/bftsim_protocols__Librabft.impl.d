lib/protocols/librabft.ml: Chained_core Protocol_intf
