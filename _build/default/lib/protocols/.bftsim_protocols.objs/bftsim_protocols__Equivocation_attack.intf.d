lib/protocols/equivocation_attack.mli: Attacker Bftsim_attack
