lib/protocols/async_ba.ml: Array Bftsim_crypto Bftsim_net Char Context Hashtbl Message Printf Protocol_intf Quorum String
