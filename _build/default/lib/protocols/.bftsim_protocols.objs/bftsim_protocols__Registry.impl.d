lib/protocols/registry.ml: Add_v1 Add_v2 Add_v3 Algorand Async_ba Hotstuff Hotstuff_cogsworth Librabft List Pbft Printf Protocol_intf String Sync_hotstuff Tendermint
