lib/protocols/context.mli: Bftsim_net Bftsim_sim Message Rng Time Timer
