lib/protocols/hotstuff.ml: Chained_core Protocol_intf
