lib/protocols/add_common.mli: Bftsim_crypto Bftsim_net Bftsim_sim Context Message
