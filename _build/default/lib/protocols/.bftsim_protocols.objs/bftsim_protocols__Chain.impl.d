lib/protocols/chain.ml: Bftsim_crypto Format Hashtbl Printf String
