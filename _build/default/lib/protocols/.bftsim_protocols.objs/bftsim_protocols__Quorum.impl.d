lib/protocols/quorum.ml: Printf
