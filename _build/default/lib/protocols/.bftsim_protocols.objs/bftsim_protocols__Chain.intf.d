lib/protocols/chain.mli: Format
