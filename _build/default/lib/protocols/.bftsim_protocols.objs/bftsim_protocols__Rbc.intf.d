lib/protocols/rbc.mli: Bftsim_net Context Message
