(** Sync HotStuff (Abraham, Malkhi, Nayak, Ren, Yin 2020) — extension
    protocol beyond the paper's Table I.

    A synchronous SMR protocol tolerating a {e minority} of faults
    (n >= 2f+1): replicas vote on the leader's proposal and commit after
    waiting two delay bounds (2 * lambda) without observing leader
    equivocation.  Certificates need only a simple majority.  A replica
    that sees no progress for 3 * lambda blames the leader; f+1 blames
    change the view.  The paper cites the force-locking attack on this
    protocol [27] as the kind of sophisticated strategy a flexible
    simulator should be able to express — the commit path here is exactly
    the timing-sensitive step that attack targets. *)

open Bftsim_net

type Message.payload +=
  | Sh_propose of { view : int; block : Chain.block }
  | Sh_vote of { view : int; digest : string }
  | Sh_blame of { view : int }

type Bftsim_sim.Timer.payload +=
  | Sh_commit_wait of { view : int; digest : string }
  | Sh_progress of { view : int; deadline_id : int }
  | Sh_newview_wait of { view : int }

include Protocol_intf.S

val majority : int -> int
(** [n/2 + 1]: the certificate threshold under the synchronous minority
    assumption. *)
