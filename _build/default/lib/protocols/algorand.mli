(** Algorand Agreement (Chen, Gorbunov, Micali, Vlachos 2018) —
    paper §III-B2.

    A synchronous, partition-resilient BFT protocol.  Execution proceeds in
    {e periods} of four lambda-paced steps: every node broadcasts a
    VRF-credentialed proposal; soft-votes go to the proposal with the
    lowest credential; 2f+1 soft-votes trigger a cert-vote; 2f+1 cert-votes
    decide.  If nothing certifies, next-votes (re-broadcast while stuck, so
    a healed partition can drain them) establish the next period's starting
    value.  Safety never depends on timing — only liveness does — which is
    what makes the protocol partition-resilient (Fig. 6). *)

open Bftsim_net
module Vrf = Bftsim_crypto.Vrf

type Message.payload +=
  | Alg_proposal of { period : int; value : string; credential : Vrf.evaluation }
  | Alg_soft of { period : int; value : string }
  | Alg_cert of { period : int; value : string }
  | Alg_next of { period : int; value : string }
      (** [value = ""] encodes the bottom next-vote. *)

type Bftsim_sim.Timer.payload += Alg_step of { period : int; step : int }

include Protocol_intf.S

val current_period : node -> int
