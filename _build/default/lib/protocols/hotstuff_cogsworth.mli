(** HotStuff with the Cogsworth view synchronizer — extension protocol.

    Same chained-HotStuff core as {!Hotstuff} and {!Librabft}; the
    pacemaker is Naor et al.'s Cogsworth (the very paper the simulator
    paper cites for view synchronization): stuck replicas unicast sync
    requests to the next leader, which relays a broadcast once f+1 arrive.
    Linear pacemaker communication in the benign case, unlike LibraBFT's
    all-to-all timeout votes, but recovery depends on the next leader
    being reachable. *)

include Protocol_intf.S with type node = Chained_core.node

val current_view : node -> int
