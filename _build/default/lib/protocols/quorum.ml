let max_faulty n = (n - 1) / 3

let quorum n = n - max_faulty n

let one_honest n = max_faulty n + 1

let supermajority n = (2 * max_faulty n) + 1

let check ~n ~f =
  if f < 0 then invalid_arg "Quorum.check: negative f";
  if n <= 3 * f then invalid_arg (Printf.sprintf "Quorum.check: n=%d <= 3*f=%d" n (3 * f))
