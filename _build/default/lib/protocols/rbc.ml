open Bftsim_net

type Message.payload +=
  | Rbc_init of { origin : int; tag : string; value : string }
  | Rbc_echo of { origin : int; tag : string; value : string }
  | Rbc_ready of { origin : int; tag : string; value : string }

type t = {
  echoes : (int * string * string) Tally.t;
  readies : (int * string * string) Tally.t;
  sent_echo : (int * string, unit) Hashtbl.t;
  sent_ready : (int * string, unit) Hashtbl.t;
  delivered_values : (int * string, string) Hashtbl.t;
}

let create () =
  {
    echoes = Tally.create ();
    readies = Tally.create ();
    sent_echo = Hashtbl.create 32;
    sent_ready = Hashtbl.create 32;
    delivered_values = Hashtbl.create 32;
  }

let broadcast _t ctx ~tag ~value =
  Context.broadcast ctx ~tag:"rbc-init"
    (Rbc_init { origin = ctx.Context.node_id; tag; value })

let send_echo t ctx ~origin ~tag ~value =
  if not (Hashtbl.mem t.sent_echo (origin, tag)) then begin
    Hashtbl.replace t.sent_echo (origin, tag) ();
    Context.broadcast ctx ~tag:"rbc-echo" (Rbc_echo { origin; tag; value })
  end

let send_ready t ctx ~origin ~tag ~value =
  if not (Hashtbl.mem t.sent_ready (origin, tag)) then begin
    Hashtbl.replace t.sent_ready (origin, tag) ();
    Context.broadcast ctx ~tag:"rbc-ready" (Rbc_ready { origin; tag; value })
  end

(* Threshold checks shared by echo and ready arrivals. *)
let progress t ctx ~origin ~tag ~value =
  let n = ctx.Context.n in
  if Tally.count t.echoes (origin, tag, value) >= Quorum.supermajority n then
    send_ready t ctx ~origin ~tag ~value;
  let readies = Tally.count t.readies (origin, tag, value) in
  (* f+1 readies prove an honest node will deliver: join in (amplification,
     the step that gives totality). *)
  if readies >= Quorum.one_honest n then send_ready t ctx ~origin ~tag ~value;
  if readies >= Quorum.supermajority n && not (Hashtbl.mem t.delivered_values (origin, tag)) then begin
    Hashtbl.replace t.delivered_values (origin, tag) value;
    Some (origin, tag, value)
  end
  else None

let handle t ctx (msg : Message.t) =
  match msg.payload with
  | Rbc_init { origin; tag; value } ->
    (* Only the authentic origin's first init for a tag earns an echo; a
       second, different init is equivocation and is ignored (the echo
       quorum then arbitrates which value, if any, gets through). *)
    if msg.src = origin then send_echo t ctx ~origin ~tag ~value;
    None
  | Rbc_echo { origin; tag; value } ->
    ignore (Tally.add t.echoes (origin, tag, value) ~voter:msg.src);
    progress t ctx ~origin ~tag ~value
  | Rbc_ready { origin; tag; value } ->
    ignore (Tally.add t.readies (origin, tag, value) ~voter:msg.src);
    progress t ctx ~origin ~tag ~value
  | _ -> None

let delivered t ~origin ~tag = Hashtbl.find_opt t.delivered_values (origin, tag)

let delivered_count t = Hashtbl.length t.delivered_values

let () =
  Message.register_printer (function
    | Rbc_init { origin; tag; value } -> Some (Printf.sprintf "RbcInit(%d,%s,%s)" origin tag value)
    | Rbc_echo { origin; tag; value } -> Some (Printf.sprintf "RbcEcho(%d,%s,%s)" origin tag value)
    | Rbc_ready { origin; tag; value } ->
      Some (Printf.sprintf "RbcReady(%d,%s,%s)" origin tag value)
    | _ -> None)
