(** Equivocation attack on PBFT's primary.

    Demonstrates the global attacker's message-{e modification} capability
    (paper §III-C: a corrupted node's behaviour is controlled "by dropping,
    modifying, or inserting messages"), and covers the Byzantine behaviour
    class the Twins work [15] tests for: the victim primary appears to send
    {e different} proposals to different replicas.

    Mechanically: pre-prepares (and new-views) from the victim to
    odd-numbered replicas are dropped and replaced with an injected copy
    carrying a conflicting value.  PBFT's prepare quorum (2f+1 of n, any
    two quorums intersect in an honest replica) must prevent both values
    from committing — the attack costs a view change, never agreement. *)

open Bftsim_attack

val pbft_equivocation : victim:int -> Attacker.t
(** Equivocates every proposal the [victim] primary sends. *)
