(** ADD+ BA with VRF election and a prepare round (paper §III-B1): proposal
    contents are broadcast before credentials are revealed, so corrupting
    the elected leader is too late — expected-constant-round termination
    even under the rushing adaptive attacker. *)

include Protocol_intf.S with type node = Add_common.node
