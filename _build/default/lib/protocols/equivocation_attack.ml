open Bftsim_net
open Bftsim_attack

let forged value = value ^ "#forged"

let pbft_equivocation ~victim =
  let attack (env : Attacker.env) (msg : Message.t) =
    if msg.src <> victim then Attacker.Deliver
    else
      match msg.payload with
      | Pbft.Pre_prepare { view; slot; value } when msg.dst mod 2 = 1 ->
        (* "Modify" = drop the original and inject a conflicting copy with
           the same delivery characteristics. *)
        env.inject ~src:victim ~dst:msg.dst ~delay_ms:msg.delay_ms ~tag:"pre-prepare*"
          ~size:msg.size
          (Pbft.Pre_prepare { view; slot; value = forged value });
        Attacker.Drop
      | Pbft.New_view { view; slot; value } when msg.dst mod 2 = 1 ->
        env.inject ~src:victim ~dst:msg.dst ~delay_ms:msg.delay_ms ~tag:"new-view*" ~size:msg.size
          (Pbft.New_view { view; slot; value = forged value });
        Attacker.Drop
      | _ -> Attacker.Deliver
  in
  {
    Attacker.name = Printf.sprintf "pbft-equivocation(victim=%d)" victim;
    on_start = (fun env -> ignore (env.Attacker.corrupt victim));
    attack;
    on_time_event = (fun _ _ -> ());
  }
