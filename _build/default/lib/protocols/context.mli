(** Execution context handed to every consensus node (paper §III-A3).

    A node never touches the event queue, network or controller directly; it
    acts through these capabilities.  [send]/[broadcast] route through the
    network and attacker modules; [set_timer] registers a time event;
    [decide] is the paper's [reportToSystem], delivering a consensus result
    to the controller, which computes the metrics. *)

open Bftsim_sim
open Bftsim_net

type t = {
  node_id : int;
  n : int;  (** Total number of nodes, including crashed/Byzantine ones. *)
  f : int;  (** Fault budget the protocol is configured to tolerate. *)
  lambda_ms : float;
      (** The protocol's {e assumed} network-delay bound / timeout parameter
          (the paper's lambda).  The real network may violate it. *)
  seed : int;  (** Key domain for simulated crypto (signatures, VRFs). *)
  input : string;  (** This node's input value for the consensus. *)
  rng : Rng.t;  (** Node-private randomness stream. *)
  now : unit -> Time.t;
  send_raw : dst:int -> tag:string -> size:int -> Message.payload -> unit;
  broadcast_raw : include_self:bool -> tag:string -> size:int -> Message.payload -> unit;
      (** One-to-all dissemination.  The controller implements it either as
          n point-to-point sends (the paper's model) or as epidemic gossip
          (the blockchain-style transport extension); protocols stay
          oblivious and use {!broadcast}. *)
  set_timer : delay_ms:float -> tag:string -> Timer.payload -> Timer.id;
  cancel_timer : Timer.id -> unit;
  decide : string -> unit;
      (** Report one decided value.  SMR protocols call it once per slot. *)
}

val send : t -> dst:int -> tag:string -> ?size:int -> Message.payload -> unit
(** Point-to-point send; [size] defaults to {!Message.default_size}. *)

val broadcast : t -> ?include_self:bool -> tag:string -> ?size:int -> Message.payload -> unit
(** Disseminates to every node through the configured transport.
    [include_self] (default [true]) also delivers a zero-delay local copy,
    which lets protocols treat their own votes uniformly with everyone
    else's. *)

val is_leader_round_robin : t -> view:int -> bool
(** [true] iff this node is the round-robin leader of [view]
    ([view mod n]). *)

val leader_round_robin : t -> view:int -> int
