(** Bracha's asynchronous Byzantine agreement (paper §III-B3).

    Classic binary-value BFT for fully asynchronous networks: no timers at
    all — progress is driven purely by message quorums, so the FLP result
    applies and termination is only probabilistic.  Each round has three
    phases (value, ratify, decide-or-adopt) with [n-f] receipt thresholds;
    the fallback randomness is a common coin, modelled as a shared hash
    oracle on the round number — the standard cryptographic common-coin
    setup that turns Bracha's exponential local-coin variant into an
    expected-constant-round protocol.

    Inputs: the node's input bit is parsed from {!Context.t.input} when that
    is ["0"] or ["1"], otherwise derived from a hash of the input string. *)

open Bftsim_net

type Message.payload += Aba of { round : int; phase : int; value : int }
(** [value] is 0 or 1 in phases 1–2; phase 3 additionally allows 2 = ⊥. *)

include Protocol_intf.S

val current_round : node -> int

val decided_value : node -> int option
