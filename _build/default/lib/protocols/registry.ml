let builtin : Protocol_intf.t list =
  [
    (module Add_v1);
    (module Add_v2);
    (module Add_v3);
    (module Algorand);
    (module Async_ba);
    (module Pbft);
    (module Hotstuff);
    (module Librabft);
    (* Extension protocols beyond the paper's Table I. *)
    (module Tendermint);
    (module Sync_hotstuff);
    (module Hotstuff_cogsworth);
  ]

let registered : Protocol_intf.t list ref = ref builtin

let all () = !registered

let names () = List.map (fun (module P : Protocol_intf.S) -> P.name) !registered

let find name =
  List.find_opt (fun (module P : Protocol_intf.S) -> String.equal P.name name) !registered

let find_exn name =
  match find name with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "unknown protocol %S (known: %s)" name (String.concat ", " (names ())))

let register (module P : Protocol_intf.S) =
  if find P.name <> None then invalid_arg (Printf.sprintf "protocol %S already registered" P.name);
  registered := !registered @ [ (module P : Protocol_intf.S) ]
