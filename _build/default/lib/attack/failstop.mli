(** Fail-stop faults (paper §III-C).

    The weakest Byzantine behaviour: a node stops participating.  The paper
    realizes it by starting only [n - f] honest nodes; the controller does
    the same when [Config.crashed] is non-empty.  This module additionally
    offers fail-stop as an {e attacker}, which silences a chosen set of
    nodes from a chosen instant — useful to crash nodes mid-run (e.g. crash
    a leader right after it was elected) without touching the protocol. *)

val from_start : nodes:int list -> Attacker.t
(** Drops every message sent by [nodes], from time zero.  Equivalent to not
    starting them, except the victims still burn their own timers. *)

val at_time : nodes:int list -> at_ms:float -> Attacker.t
(** The nodes behave honestly before [at_ms] and are silenced afterwards. *)
