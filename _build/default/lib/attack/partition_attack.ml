open Bftsim_sim
open Bftsim_net

type mode = Drop_cross_traffic | Delay_until_heal of { jitter_ms : float }

type spec = { groups : int array; start_ms : float; heal_ms : float; mode : mode }

let make spec =
  if spec.heal_ms < spec.start_ms then invalid_arg "Partition_attack.make: heal before start";
  let crosses (msg : Message.t) =
    msg.src <> msg.dst && spec.groups.(msg.src) <> spec.groups.(msg.dst)
  in
  let active now = now >= spec.start_ms && now < spec.heal_ms in
  let attack (env : Attacker.env) (msg : Message.t) =
    let now = Time.to_ms (env.now ()) in
    if not (active now && crosses msg) then Attacker.Deliver
    else
      match spec.mode with
      | Drop_cross_traffic -> Attacker.Drop
      | Delay_until_heal { jitter_ms } ->
        let release =
          spec.heal_ms +. (if jitter_ms > 0. then Rng.float env.rng jitter_ms else 0.)
        in
        (* Stretch the delay so arrival lands just after the heal. *)
        msg.delay_ms <- Float.max msg.delay_ms (release -. Time.to_ms msg.sent_at);
        Attacker.Deliver
  in
  {
    Attacker.name =
      Printf.sprintf "partition[%g,%g)%s" spec.start_ms spec.heal_ms
        (match spec.mode with Drop_cross_traffic -> "-drop" | Delay_until_heal _ -> "-delay");
    on_start = (fun _ -> ());
    attack;
    on_time_event = (fun _ _ -> ());
  }

let two_subnets ~n ~first_size ~start_ms ~heal_ms mode =
  if first_size < 0 || first_size > n then invalid_arg "Partition_attack.two_subnets";
  let groups = Array.init n (fun i -> if i < first_size then 0 else 1) in
  make { groups; start_ms; heal_ms; mode }
