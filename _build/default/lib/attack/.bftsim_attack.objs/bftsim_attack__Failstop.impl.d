lib/attack/failstop.ml: Attacker Bftsim_net Bftsim_sim Hashtbl List Message Printf Time
