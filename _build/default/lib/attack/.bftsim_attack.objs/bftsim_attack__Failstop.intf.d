lib/attack/failstop.mli: Attacker
