lib/attack/attacker.mli: Bftsim_net Bftsim_sim Message Rng Time Timer Topology
