lib/attack/partition_attack.mli: Attacker
