lib/attack/partition_attack.ml: Array Attacker Bftsim_net Bftsim_sim Float Message Printf Rng Time
