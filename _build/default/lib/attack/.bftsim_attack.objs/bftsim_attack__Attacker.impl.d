lib/attack/attacker.ml: Bftsim_net Bftsim_sim Message Printf Rng Time Timer Topology
