open Bftsim_sim
open Bftsim_net

let silence ~nodes ~at_ms =
  let victims = Hashtbl.create 8 in
  List.iter (fun node -> Hashtbl.replace victims node ()) nodes;
  let attack (env : Attacker.env) (msg : Message.t) =
    if Time.to_ms (env.now ()) >= at_ms && Hashtbl.mem victims msg.src then Attacker.Drop
    else Attacker.Deliver
  in
  {
    Attacker.name = Printf.sprintf "failstop[%d nodes@%gms]" (List.length nodes) at_ms;
    on_start = (fun _ -> ());
    attack;
    on_time_event = (fun _ _ -> ());
  }

let from_start ~nodes = silence ~nodes ~at_ms:0.

let at_time ~nodes ~at_ms = silence ~nodes ~at_ms
