(** Network-partition attack (paper §III-C, Table II; evaluated in Fig. 6).

    Divides the network into subnets and filters traffic crossing subnet
    boundaries during the attack window, exactly as Algorand's adversary
    model describes: "the attacker can either drop or delay the packets
    between different subnets".  Subnet membership comes from the
    topology. *)

type mode =
  | Drop_cross_traffic  (** Cross-subnet messages vanish. *)
  | Delay_until_heal of { jitter_ms : float }
      (** Cross-subnet messages are buffered by the adversary and released
          at heal time plus a uniform jitter in [\[0, jitter_ms)]. *)

type spec = {
  groups : int array;  (** Subnet of each node (overrides topology grouping). *)
  start_ms : float;  (** Attack begins (simulation time). *)
  heal_ms : float;  (** Attack ends; must be [>= start_ms]. *)
  mode : mode;
}

val make : spec -> Attacker.t
(** @raise Invalid_argument on an ill-formed window. *)

val two_subnets : n:int -> first_size:int -> start_ms:float -> heal_ms:float -> mode -> Attacker.t
(** The two-subnet split used in the paper's partition experiment. *)
