type kind = Send | Deliver | Drop | Timer_fired | Decide

type entry = {
  at_ms : float;
  kind : kind;
  node : int;
  peer : int;
  tag : string;
  detail : string;
}

type t = { mutable rev_entries : entry list; mutable count : int }

let create () = { rev_entries = []; count = 0 }

let record t entry =
  t.rev_entries <- entry :: t.rev_entries;
  t.count <- t.count + 1

let entries t = List.rev t.rev_entries

let length t = t.count

let entry_equal a b =
  Float.equal a.at_ms b.at_ms && a.kind = b.kind && a.node = b.node && a.peer = b.peer
  && String.equal a.tag b.tag && String.equal a.detail b.detail

let equal a b = a.count = b.count && List.for_all2 entry_equal (entries a) (entries b)

let first_divergence a b =
  let rec walk i xs ys =
    match (xs, ys) with
    | [], [] -> None
    | x :: xs', y :: ys' -> if entry_equal x y then walk (i + 1) xs' ys' else Some (i, Some x, Some y)
    | x :: _, [] -> Some (i, Some x, None)
    | [], y :: _ -> Some (i, None, Some y)
  in
  walk 0 (entries a) (entries b)

let delays t =
  (* Match sends to deliveries per (src, dst, tag) link in FIFO order; the
     event queue's deterministic ordering makes this reconstruction exact
     for unmodified traffic. *)
  let sends : (int * int * string, float list ref) Hashtbl.t = Hashtbl.create 64 in
  let out : (int * int * string, float list ref) Hashtbl.t = Hashtbl.create 64 in
  let keys = ref [] in
  List.iter
    (fun e ->
      match e.kind with
      | Send ->
        let key = (e.node, e.peer, e.tag) in
        let q =
          match Hashtbl.find_opt sends key with
          | Some q -> q
          | None ->
            let q = ref [] in
            Hashtbl.replace sends key q;
            q
        in
        q := e.at_ms :: !q
      | Deliver -> (
        let key = (e.peer, e.node, e.tag) in
        match Hashtbl.find_opt sends key with
        | Some ({ contents = _ :: _ } as q) ->
          (* FIFO: sends were consed, so take from the tail. *)
          let rec split_last acc = function
            | [] -> assert false
            | [ x ] -> (x, List.rev acc)
            | x :: rest -> split_last (x :: acc) rest
          in
          let sent_at, remaining = split_last [] !q in
          q := remaining;
          let d =
            match Hashtbl.find_opt out key with
            | Some d -> d
            | None ->
              let d = ref [] in
              Hashtbl.replace out key d;
              keys := key :: !keys;
              d
          in
          d := (e.at_ms -. sent_at) :: !d
        | _ -> ())
      | Drop | Timer_fired | Decide -> ())
    (entries t);
  List.rev_map (fun key -> (key, List.rev !(Hashtbl.find out key))) !keys

let decisions t =
  let per_node : (int, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let nodes = ref [] in
  List.iter
    (fun e ->
      if e.kind = Decide then begin
        match Hashtbl.find_opt per_node e.node with
        | Some l -> l := e.tag :: !l
        | None ->
          Hashtbl.replace per_node e.node (ref [ e.tag ]);
          nodes := e.node :: !nodes
      end)
    (entries t);
  List.sort compare !nodes |> List.map (fun node -> (node, List.rev !(Hashtbl.find per_node node)))

let kind_to_string = function
  | Send -> "send"
  | Deliver -> "deliver"
  | Drop -> "drop"
  | Timer_fired -> "timer"
  | Decide -> "decide"

let pp_entry ppf e =
  Format.fprintf ppf "%10.3f %-8s node=%d peer=%d %s %s" e.at_ms (kind_to_string e.kind) e.node
    e.peer e.tag e.detail

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
