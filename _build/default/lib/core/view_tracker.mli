(** View-synchronization analysis (paper §IV-D, Fig. 9).

    The controller can sample every node's current view at a fixed period;
    this module renders those samples as an ASCII timeline — one row per
    node, one column per sample, each cell a symbol for the node's view —
    making divergence into "groups of different views" and the eventual
    re-convergence directly visible, like the paper's colour plot. *)

type divergence_stats = {
  max_spread : int;  (** Largest (max view - min view) over any sample. *)
  time_desynced_ms : float;
      (** Total sampled time during which live nodes disagreed on the view. *)
  first_desync_ms : float option;
  resync_ms : float option;
      (** Last instant at which nodes re-converged after a desync. *)
}

val analyze : sample_ms:float -> (float * int array) list -> divergence_stats

val render : ?width:int -> (float * int array) list -> string
(** ASCII heatmap of the samples; views are shown modulo a symbol alphabet,
    crashed nodes as ['.'].  [width] caps the number of columns by
    subsampling (default 96). *)
