type divergence_stats = {
  max_spread : int;
  time_desynced_ms : float;
  first_desync_ms : float option;
  resync_ms : float option;
}

let live_views views = Array.to_list views |> List.filter (fun v -> v >= 0)

let spread views =
  match live_views views with
  | [] -> 0
  | vs -> List.fold_left Stdlib.max min_int vs - List.fold_left Stdlib.min max_int vs

let analyze ~sample_ms samples =
  let max_spread = List.fold_left (fun acc (_, views) -> Stdlib.max acc (spread views)) 0 samples in
  let time_desynced_ms =
    List.fold_left (fun acc (_, views) -> if spread views > 0 then acc +. sample_ms else acc) 0. samples
  in
  let first_desync_ms =
    List.find_map (fun (at, views) -> if spread views > 0 then Some at else None) samples
  in
  (* The re-synchronization instant: the first in-sync sample after the last
     desynchronized one. *)
  let resync_ms =
    let rec scan last_desync resync = function
      | [] -> if last_desync <> None then resync else None
      | (at, views) :: rest ->
        if spread views > 0 then scan (Some at) None rest
        else scan last_desync (if resync = None && last_desync <> None then Some at else resync) rest
    in
    scan None None samples
  in
  { max_spread; time_desynced_ms; first_desync_ms; resync_ms }

let symbols = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

let render ?(width = 96) samples =
  match samples with
  | [] -> "(no samples)"
  | (_, first) :: _ ->
    let n = Array.length first in
    let total = List.length samples in
    let stride = Stdlib.max 1 (total / width) in
    let cols =
      List.filteri (fun i _ -> i mod stride = 0) samples
    in
    let buf = Buffer.create 4096 in
    let t0, _ = List.hd cols in
    let tN, _ = List.nth cols (List.length cols - 1) in
    Buffer.add_string buf
      (Printf.sprintf "view timeline: %.1fs .. %.1fs (%d samples, 1 char = %d sample(s))\n"
         (t0 /. 1000.) (tN /. 1000.) total stride);
    for node = 0 to n - 1 do
      Buffer.add_string buf (Printf.sprintf "node %2d |" node);
      List.iter
        (fun (_, views) ->
          let v = views.(node) in
          let c =
            if v < 0 then '.' else symbols.[v mod String.length symbols]
          in
          Buffer.add_char buf c)
        cols;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
