(** Lines-of-code inventory (paper Tables I and II).

    The paper reports the size of each protocol and attack implementation
    as evidence that the simulator makes them cheap to write; this module
    measures the same inventory over this repository's sources at run time.
    Counting is non-blank, non-comment-only lines of the [.ml] file
    (interfaces are documentation and excluded, as the paper counts
    implementation code). *)

type entry = { label : string; network_model : string; files : string list; loc : int }

val count_file : string -> int option
(** Non-blank, non-comment-only lines of one file; [None] if unreadable. *)

val table1 : root:string -> entry list
(** The eight protocol implementations, in the paper's Table I order.
    [root] is the repository root (containing [lib/]). *)

val table2 : root:string -> entry list
(** The three attack implementations of Table II. *)

val find_root : unit -> string option
(** Walks upward from the current directory and the executable's directory
    looking for the repository root (identified by [lib/protocols]). *)
