(** Computation-cost model (the paper's proposed throughput extension).

    §III-A3 notes the simulator "does not calculate the computational cost
    of an honest node, and therefore measuring the throughput of a BFT
    protocol is not possible.  One way to add this feature is to estimate
    the computation time through calculating the number of computational
    extensive operations, such as cryptography operations."  This module is
    that feature: per-node costs for signing outgoing and verifying incoming
    messages, charged against a sequential per-node CPU, so a node drowning
    in n² votes becomes compute-bound exactly like a real replica.

    {!zero} (the default) reproduces the paper's cost-free behaviour. *)

type t = {
  sign_ms : float;  (** CPU time to sign/authenticate one outgoing message. *)
  verify_ms : float;  (** CPU time to verify one incoming message. *)
}

val zero : t
(** No computation costs — the paper's model. *)

val commodity : t
(** Ed25519-class costs on a commodity core: 0.05 ms sign, 0.15 ms verify. *)

val rsa2048 : t
(** RSA-2048-class costs: 1.5 ms sign, 0.06 ms verify — signing-bound
    leaders, a classic PBFT deployment regime. *)

val is_zero : t -> bool

val of_string : string -> (t, string) result
(** ["none"] | ["commodity"] | ["rsa2048"] | ["custom:<sign>,<verify>"]. *)

val describe : t -> string

type cpu
(** A node's sequential processor. *)

val make_cpu : unit -> cpu

val charge : cpu -> now_ms:float -> cost_ms:float -> float
(** Books [cost_ms] of work starting no earlier than [now_ms] and no earlier
    than the CPU's previous completion; returns the completion time. *)

val busy_until : cpu -> float
