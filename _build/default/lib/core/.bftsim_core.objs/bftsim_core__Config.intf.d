lib/core/config.mli: Bftsim_net Cost_model Delay_model
