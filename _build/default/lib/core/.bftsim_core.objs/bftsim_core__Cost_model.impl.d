lib/core/cost_model.ml: Float Printf String
