lib/core/experiments.mli: Bftsim_net Config Delay_model
