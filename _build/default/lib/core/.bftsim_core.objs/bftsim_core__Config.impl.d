lib/core/config.ml: Bftsim_crypto Bftsim_net Bftsim_protocols Char Cost_model Delay_model List Printf Result String
