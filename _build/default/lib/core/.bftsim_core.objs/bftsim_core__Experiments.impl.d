lib/core/experiments.ml: Bftsim_net Bftsim_protocols Config Delay_model List String
