lib/core/runner.mli: Config Controller Format Stats
