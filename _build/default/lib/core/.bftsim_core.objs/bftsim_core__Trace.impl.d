lib/core/trace.ml: Float Format Hashtbl List String
