lib/core/csv_export.ml: Array Bftsim_net Buffer Config Controller Fun List Printf Runner Stats Stdlib String
