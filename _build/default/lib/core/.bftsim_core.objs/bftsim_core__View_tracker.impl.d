lib/core/view_tracker.ml: Array Buffer List Printf Stdlib String
