lib/core/view_tracker.mli:
