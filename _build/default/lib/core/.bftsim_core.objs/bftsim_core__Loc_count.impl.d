lib/core/loc_count.ml: Filename List String Sys
