lib/core/validator.mli: Config Controller Format Trace
