lib/core/loc_count.mli:
