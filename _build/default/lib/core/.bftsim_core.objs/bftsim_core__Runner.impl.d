lib/core/runner.ml: Config Controller Format List Printf Stats Sys
