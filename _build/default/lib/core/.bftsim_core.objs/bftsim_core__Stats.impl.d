lib/core/stats.ml: Array Float Format List
