lib/core/controller.mli: Bftsim_attack Bftsim_sim Config Format Timer Trace
