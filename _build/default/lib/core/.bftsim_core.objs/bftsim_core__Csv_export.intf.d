lib/core/csv_export.mli: Controller Runner
