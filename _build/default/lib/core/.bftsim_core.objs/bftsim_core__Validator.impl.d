lib/core/validator.ml: Config Controller Format Hashtbl List Option Printf String Trace
