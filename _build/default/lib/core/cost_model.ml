type t = { sign_ms : float; verify_ms : float }

let zero = { sign_ms = 0.; verify_ms = 0. }

let commodity = { sign_ms = 0.05; verify_ms = 0.15 }

let rsa2048 = { sign_ms = 1.5; verify_ms = 0.06 }

let is_zero t = t.sign_ms = 0. && t.verify_ms = 0.

let of_string = function
  | "none" | "zero" -> Ok zero
  | "commodity" -> Ok commodity
  | "rsa2048" -> Ok rsa2048
  | s when String.length s > 7 && String.sub s 0 7 = "custom:" -> (
    let rest = String.sub s 7 (String.length s - 7) in
    match String.split_on_char ',' rest with
    | [ sign; verify ] -> (
      match (float_of_string_opt sign, float_of_string_opt verify) with
      | Some sign_ms, Some verify_ms when sign_ms >= 0. && verify_ms >= 0. ->
        Ok { sign_ms; verify_ms }
      | _ -> Error (Printf.sprintf "invalid cost spec %S" s))
    | _ -> Error (Printf.sprintf "invalid cost spec %S" s))
  | s -> Error (Printf.sprintf "unknown cost model %S" s)

let describe t =
  if is_zero t then "none" else Printf.sprintf "sign=%gms,verify=%gms" t.sign_ms t.verify_ms

type cpu = { mutable busy_until_ms : float }

let make_cpu () = { busy_until_ms = 0. }

let charge cpu ~now_ms ~cost_ms =
  let start = Float.max now_ms cpu.busy_until_ms in
  let finish = start +. cost_ms in
  cpu.busy_until_ms <- finish;
  finish

let busy_until cpu = cpu.busy_until_ms
