(** Logical network topology.

    The simulator models a fully connected peer-to-peer overlay; the
    topology adds two refinements used by experiments:

    - {b subnets}: a partition of the node set into groups.  The partition
      attacker (paper §III-C) filters on subnet boundaries.
    - {b per-pair latency scaling}: heterogeneous links (e.g. a slow
      cross-datacenter pair) without changing the global delay model. *)

type t

val fully_connected : int -> t
(** [fully_connected n] is the default topology: everyone in subnet 0,
    uniform latency scaling. *)

val n : t -> int

val with_subnets : t -> int array -> t
(** [with_subnets t assignment] places node [i] in subnet [assignment.(i)].
    @raise Invalid_argument if the array length differs from [n t]. *)

val split_in_two : int -> first_size:int -> t
(** Convenience: nodes [0 .. first_size-1] in subnet 0, the rest in
    subnet 1 — the two-subnet partition of the paper's Fig. 6. *)

val subnet_of : t -> int -> int

val same_subnet : t -> int -> int -> bool

val set_pair_scale : t -> src:int -> dst:int -> float -> unit
(** Multiplies sampled delays on the directed link [src -> dst]. *)

val pair_scale : t -> src:int -> dst:int -> float
(** The scaling factor for a directed link; 1.0 by default. *)
