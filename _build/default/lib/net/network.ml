open Bftsim_sim

type stats = { sent : int; bytes : int }

type t = {
  mutable delay : Delay_model.t;
  topology : Topology.t;
  rng : Rng.t;
  mutable sent : int;
  mutable bytes : int;
}

let create ~delay ~topology ~rng = { delay; topology; rng; sent = 0; bytes = 0 }

let delay_model t = t.delay

let topology t = t.topology

let assign_delay t (msg : Message.t) =
  if msg.src = msg.dst then msg.delay_ms <- 0.
  else begin
    let base = Delay_model.sample t.delay t.rng in
    msg.delay_ms <- base *. Topology.pair_scale t.topology ~src:msg.src ~dst:msg.dst;
    (* Self-addressed messages are local deliveries, not wire traffic, so
       only cross-node messages count toward message usage (§II-C). *)
    t.sent <- t.sent + 1;
    t.bytes <- t.bytes + msg.size
  end

let override_delay t delay = t.delay <- delay

let stats t = { sent = t.sent; bytes = t.bytes }

let reset_stats t =
  t.sent <- 0;
  t.bytes <- 0
