type t = { n : int; subnet : int array; scales : (int * int, float) Hashtbl.t }

let fully_connected n =
  if n <= 0 then invalid_arg "Topology.fully_connected: n <= 0";
  { n; subnet = Array.make n 0; scales = Hashtbl.create 16 }

let n t = t.n

let with_subnets t assignment =
  if Array.length assignment <> t.n then invalid_arg "Topology.with_subnets: length mismatch";
  { t with subnet = Array.copy assignment }

let split_in_two n ~first_size =
  if first_size < 0 || first_size > n then invalid_arg "Topology.split_in_two";
  let t = fully_connected n in
  with_subnets t (Array.init n (fun i -> if i < first_size then 0 else 1))

let subnet_of t i = t.subnet.(i)

let same_subnet t a b = t.subnet.(a) = t.subnet.(b)

let set_pair_scale t ~src ~dst scale = Hashtbl.replace t.scales (src, dst) scale

let pair_scale t ~src ~dst = Option.value ~default:1.0 (Hashtbl.find_opt t.scales (src, dst))
