lib/net/network.ml: Bftsim_sim Delay_model Message Rng Topology
