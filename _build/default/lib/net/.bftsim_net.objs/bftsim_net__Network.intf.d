lib/net/network.mli: Bftsim_sim Delay_model Message Rng Topology
