lib/net/message.mli: Bftsim_sim Format Time
