lib/net/delay_model.ml: Bftsim_sim Float Format List Printf Rng String
