lib/net/topology.ml: Array Hashtbl Option
