lib/net/message.ml: Bftsim_sim Format Printf Time
