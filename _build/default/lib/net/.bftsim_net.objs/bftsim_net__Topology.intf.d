lib/net/topology.mli:
