lib/net/delay_model.mli: Bftsim_sim Format Rng
