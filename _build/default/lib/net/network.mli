(** The network module (paper §III-A4).

    Each node is connected to this module.  A sender sets [src] and [dst] in
    the envelope and hands the message over; the network samples the [delay]
    variable from the configured distribution (scaled by the topology's
    per-link factor) and forwards the message onward — in the full simulator
    the next hop is the attacker module, then the event queue.  The network
    also keeps the message-usage counters backing the paper's second metric
    (§II-C). *)

open Bftsim_sim

type t

type stats = {
  sent : int;  (** Messages that entered the network. *)
  bytes : int;  (** Sum of estimated message sizes. *)
}

val create : delay:Delay_model.t -> topology:Topology.t -> rng:Rng.t -> t
(** The network owns its RNG stream so delay sampling is independent of
    protocol randomness. *)

val delay_model : t -> Delay_model.t

val topology : t -> Topology.t

val assign_delay : t -> Message.t -> unit
(** Samples and writes [delay_ms] (self-addressed messages get 0 delay —
    local delivery does not traverse the wire) and updates the counters. *)

val override_delay : t -> Delay_model.t -> unit
(** Swaps the delay distribution mid-simulation; used to model networks that
    stabilize (GST) or degrade at a known time. *)

val stats : t -> stats

val reset_stats : t -> unit
