module Sha256 = Bftsim_crypto.Sha256

type kind =
  | Syn
  | Syn_ack
  | Handshake_ack
  | Data of { msg_id : int; seq : int; total : int }
  | Ack of { msg_id : int; seq : int }

type t = {
  id : int;
  src : int;
  dst : int;
  size_bytes : int;
  kind : kind;
  mutable payload : Bytes.t;  (** Actual wire bytes; copied at each hop. *)
  checksum : string;
}

let header_bytes = 54

let mss = 536

let serialize_header ~id ~src ~dst ~payload_bytes kind =
  let kind_str =
    match kind with
    | Syn -> "syn"
    | Syn_ack -> "syn-ack"
    | Handshake_ack -> "hs-ack"
    | Data { msg_id; seq; total } -> Printf.sprintf "data:%d:%d:%d" msg_id seq total
    | Ack { msg_id; seq } -> Printf.sprintf "ack:%d:%d" msg_id seq
  in
  Printf.sprintf "pkt|%d|%d|%d|%d|%s" id src dst payload_bytes kind_str

(* The payload carries the header at the front, like a real wire format;
   the checksum covers the whole packet, so every hop pays a full scan —
   exactly the per-packet work that makes packet-level simulation slow. *)
let make ~id ~src ~dst ~payload_bytes kind =
  let header = serialize_header ~id ~src ~dst ~payload_bytes kind in
  let payload = Bytes.make (payload_bytes + header_bytes) '\000' in
  Bytes.blit_string header 0 payload 0 (min (String.length header) (Bytes.length payload));
  {
    id;
    src;
    dst;
    size_bytes = payload_bytes + header_bytes;
    kind;
    payload;
    checksum = Sha256.to_raw (Sha256.digest_bytes payload);
  }

let verify t = String.equal (Sha256.to_raw (Sha256.digest_bytes t.payload)) t.checksum

let copy_at_hop t =
  (* Store-and-forward: the router and the receiving NIC each materialize
     their own copy of the frame. *)
  t.payload <- Bytes.copy t.payload
