(** The packet-level baseline simulator (Fig. 2 comparator).

    Runs the {e same} protocol implementations as the main simulator (via
    the {!Bftsim_protocols.Context.t} capability record), but transports
    every message over a simulated network stack: TCP-like handshakes per
    node pair, MSS segmentation, per-hop store-and-forward through a
    central router, per-packet checksums and acknowledgements, and per-node
    CPU accounting for signatures — the packet-level fidelity that makes
    BFTSim-style simulators slow and memory-hungry, measured against the
    message-level main simulator in Fig. 2.

    Per-pair socket buffers are allocated eagerly (as a real stack would),
    so memory grows with n²; the Fig. 2 harness caps the baseline at 32
    nodes, mirroring BFTSim's out-of-memory failure there. *)

type result = {
  protocol : string;
  n : int;
  outcome_ok : bool;  (** Decision target reached within the time cap. *)
  time_ms : float;  (** Simulated time at termination. *)
  packets : int;  (** Total packets transported (data + acks + handshakes). *)
  events : int;  (** Discrete events processed. *)
  decisions : (int * string list) list;
  safety_ok : bool;
}

val run :
  ?protocol:string ->
  ?decisions_target:int ->
  ?max_time_ms:float ->
  ?bandwidth_mbps:float ->
  n:int ->
  seed:int ->
  unit ->
  result
(** Defaults: PBFT, one decision, 600 s cap, 100 Mbps access links.
    Propagation delays are drawn so end-to-end latency matches the main
    simulator's N(250, 50) default. *)

val wall_clock_of_run :
  ?protocol:string -> ?decisions_target:int -> n:int -> seed:int -> unit -> float * result
(** Host seconds taken by one simulation — the Fig. 2 measurement. *)

val estimated_memory_bytes : n:int -> int
(** Eager per-pair buffer footprint: the reason large n is infeasible. *)
