(** Physical-layer models of the baseline: links, router, CPU.

    Star topology: every node has a full-duplex access link to one central
    router.  Links are store-and-forward with finite bandwidth, so every
    packet pays serialization + propagation + queuing on both hops, and
    per-node CPUs charge for cryptographic work — the fidelity/cost
    trade-off the Fig. 2 comparison measures. *)

type link

val make_link : bandwidth_mbps:float -> propagation_ms:float -> link

val transmit : link -> now_ms:float -> bytes:int -> float
(** [transmit link ~now_ms ~bytes] enqueues a packet on the link and
    returns its arrival time at the other end (after queuing behind
    earlier packets, serialization and propagation). *)

val link_queue_depth_ms : link -> now_ms:float -> float
(** How far ahead of [now] the link is booked (pending serialization). *)

type cpu

val make_cpu : unit -> cpu

val charge : cpu -> now_ms:float -> cost_ms:float -> float
(** [charge cpu ~now_ms ~cost_ms] books CPU time (signature checks, packet
    processing) and returns the completion time. *)

val sign_cost_ms : float
(** Cost of producing a signature/MAC (0.08 ms, commodity-CPU scale). *)

val verify_cost_ms : float
(** Cost of verifying one (0.04 ms). *)

val per_packet_cost_ms : float
(** Protocol-stack processing per packet (0.01 ms). *)
