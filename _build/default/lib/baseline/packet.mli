(** Packets of the packet-level baseline simulator.

    The baseline (DESIGN.md §4, substitution 1) stands in for BFTSim's
    ns-2 core in the Fig. 2 comparison: it simulates every protocol message
    as TCP-like segments with per-hop events, acknowledgements and
    checksums, which is what makes packet-level simulation slow compared to
    the message-level abstraction of the main simulator. *)

type kind =
  | Syn  (** Connection setup (once per ordered node pair). *)
  | Syn_ack
  | Handshake_ack
  | Data of { msg_id : int; seq : int; total : int }
      (** One segment of an application message. *)
  | Ack of { msg_id : int; seq : int }

type t = {
  id : int;
  src : int;
  dst : int;
  size_bytes : int;
  kind : kind;
  mutable payload : Bytes.t;  (** The wire bytes; copied at every hop. *)
  checksum : string;
      (** Covers the whole frame, so verification scans every byte —
          deliberately part of the per-packet cost, as in ns-2. *)
}

val header_bytes : int
(** Per-packet header overhead (54 bytes: Ethernet + IP + TCP). *)

val mss : int
(** Maximum segment size for application payload (536 bytes). *)

val make : id:int -> src:int -> dst:int -> payload_bytes:int -> kind -> t
(** Builds a packet; [size_bytes = payload_bytes + header_bytes];
    serializes the header and computes its checksum. *)

val verify : t -> bool
(** Recomputes the full-frame checksum — charged on every hop, as
    ns-2-style simulators do. *)

val copy_at_hop : t -> unit
(** Materializes a fresh copy of the frame (store-and-forward). *)
