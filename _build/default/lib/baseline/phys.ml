type link = { bandwidth_bps : float; propagation_ms : float; mutable free_at_ms : float }

let make_link ~bandwidth_mbps ~propagation_ms =
  if bandwidth_mbps <= 0. then invalid_arg "Phys.make_link: bandwidth <= 0";
  { bandwidth_bps = bandwidth_mbps *. 1_000_000.; propagation_ms; free_at_ms = 0. }

let transmit link ~now_ms ~bytes =
  let serialization_ms = float_of_int (8 * bytes) /. link.bandwidth_bps *. 1000. in
  let start = Float.max now_ms link.free_at_ms in
  let done_tx = start +. serialization_ms in
  link.free_at_ms <- done_tx;
  done_tx +. link.propagation_ms

let link_queue_depth_ms link ~now_ms = Float.max 0. (link.free_at_ms -. now_ms)

type cpu = { mutable busy_until_ms : float }

let make_cpu () = { busy_until_ms = 0. }

let charge cpu ~now_ms ~cost_ms =
  let start = Float.max now_ms cpu.busy_until_ms in
  let finish = start +. cost_ms in
  cpu.busy_until_ms <- finish;
  finish

let sign_cost_ms = 0.08

let verify_cost_ms = 0.04

let per_packet_cost_ms = 0.01
