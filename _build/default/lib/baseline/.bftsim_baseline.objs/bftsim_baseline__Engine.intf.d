lib/baseline/engine.mli:
