lib/baseline/engine.ml: Array Bftsim_net Bftsim_protocols Bftsim_sim Bytes Event_queue Float Hashtbl List Message Option Packet Phys Printf Rng String Time Timer Unix
