lib/baseline/phys.ml: Float
