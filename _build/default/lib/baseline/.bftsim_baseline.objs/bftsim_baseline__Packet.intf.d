lib/baseline/packet.mli: Bytes
