lib/baseline/packet.ml: Bftsim_crypto Bytes Printf String
