lib/baseline/phys.mli:
