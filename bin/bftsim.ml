(* bftsim — command-line front end of the BFT protocol simulator.

   Mirrors the paper's user story (§III-A): a run is described by a small
   configuration (protocol, network model and parameters, optional attack),
   either as command-line flags or a key = value config file. *)

open Cmdliner
module Core = Bftsim_core
module Net = Bftsim_net
module Protocols = Bftsim_protocols
module Obs = Bftsim_obs

(* Exit codes, standardized across every subcommand (README "Exit
   codes"): 0 success, 1 crash or usage error, 2 safety violation,
   3 liveness failure or wall-clock deadline.  cmdliner's own CLI-error
   and uncaught-exception codes are folded into 1 at the bottom of this
   file. *)
module Exit_code = struct
  let ok = 0
  let crash = 1
  let safety = 2
  let liveness = 3
end

(* Campaign journal plumbing shared by sweep and conform: --journal FILE
   opens (or truncates) a journal; --resume additionally loads it first
   and verifies it belongs to this campaign.  --resume against a journal
   that does not exist yet is a fresh start, so scripted campaigns can
   pass both flags unconditionally. *)
let open_campaign_journal ~fingerprint ~journal ~resume =
  match (journal, resume) with
  | None, false -> Ok (None, [])
  | None, true -> Error "--resume requires --journal FILE"
  | Some path, false -> Ok (Some (Core.Journal.create ~fingerprint path), [])
  | Some path, true ->
    if Sys.file_exists path then
      Result.map (fun (t, events) -> (Some t, events)) (Core.Journal.resume ~fingerprint path)
    else Ok (Some (Core.Journal.create ~fingerprint path), [])

let read_config_file path =
  let ic = open_in path in
  let kvs = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if String.length line > 0 && line.[0] <> '#' then
         match String.index_opt line '=' with
         | Some i ->
           let key = String.trim (String.sub line 0 i) in
           let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
           kvs := (key, value) :: !kvs
         | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !kvs

let config_of_args ?transport ?costs ?deadline ?retries ?quarantine ?zones ?bandwidth ?pipeline
    ?(extra = []) ~config_file ~protocol ~n ~lambda ~delay ~seed ~attack ~crashed ~target ~inputs
    ~max_time ~chaos ~watchdog () =
  let file_kvs = match config_file with Some path -> read_config_file path | None -> [] in
  let flag key value = match value with Some v -> [ (key, v) ] | None -> [] in
  (* Flags override file values because assoc finds the first binding. *)
  let kvs =
    flag "protocol" protocol @ flag "n" n @ flag "lambda" lambda @ flag "delay" delay
    @ flag "seed" seed @ flag "attack" attack @ flag "crashed" crashed @ flag "target" target
    @ flag "inputs" inputs @ flag "max_time_ms" max_time @ flag "transport" transport
    @ flag "costs" costs @ flag "chaos" chaos @ flag "watchdog" watchdog
    @ flag "deadline_ms" deadline @ flag "retries" retries @ flag "quarantine" quarantine
    @ flag "zones" zones @ flag "bandwidth" bandwidth @ flag "pipeline" pipeline
    @ extra @ file_kvs
  in
  Core.Config.of_keyvalues kvs

(* Shared flag definitions *)
let config_file_arg =
  let doc = "Configuration file with key = value lines (see bftsim run --help)." in
  Arg.(value & opt (some file) None & info [ "c"; "config" ] ~docv:"FILE" ~doc)

let protocol_arg =
  let doc = "Protocol to simulate: " ^ String.concat ", " (Protocols.Registry.names ()) ^ "." in
  Arg.(value & opt (some string) None & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

let n_arg = Arg.(value & opt (some string) None & info [ "n" ] ~docv:"NODES" ~doc:"Number of nodes.")

let lambda_arg =
  Arg.(value & opt (some string) None & info [ "lambda" ] ~docv:"MS" ~doc:"Assumed delay bound (ms).")

let delay_arg =
  let doc = "Network delay model, e.g. normal:250,50 | uniform:10,20 | exp:300." in
  Arg.(value & opt (some string) None & info [ "delay" ] ~docv:"MODEL" ~doc)

let seed_arg = Arg.(value & opt (some string) None & info [ "seed" ] ~docv:"INT" ~doc:"Random seed.")

let attack_arg =
  let doc =
    "Attack: none | partition:<first>,<start>,<heal>[,delay] | silence:<ids>@<ms> | \
     add-static:<f> | add-adaptive | extra-delay:<ms>."
  in
  Arg.(value & opt (some string) None & info [ "attack" ] ~docv:"SPEC" ~doc)

let crashed_arg =
  Arg.(value & opt (some string) None & info [ "crashed" ] ~docv:"IDS" ~doc:"Fail-stop node ids, comma separated.")

let target_arg =
  Arg.(value & opt (some string) None & info [ "target" ] ~docv:"INT" ~doc:"Decisions per node before stopping.")

let inputs_arg =
  Arg.(value & opt (some string) None & info [ "inputs" ] ~docv:"SPEC" ~doc:"distinct | same:<v> | binary.")

let max_time_arg =
  Arg.(value & opt (some string) None & info [ "max-time" ] ~docv:"MS" ~doc:"Simulated-time cap (ms).")

let transport_arg =
  Arg.(value & opt (some string) None
       & info [ "transport" ] ~docv:"SPEC" ~doc:"direct (default) or gossip:<fanout>.")

let costs_arg =
  Arg.(value & opt (some string) None
       & info [ "costs" ] ~docv:"SPEC"
           ~doc:"Computation costs: none | commodity | rsa2048 | custom:<sign_ms>,<verify_ms>.")

let chaos_arg =
  let doc =
    "Timed fault schedule: semicolon-separated action@time steps, e.g. \
     crash:3@0;recover:3@15000;loss:0.2@0-8000;partition:0,1|2,3@1000;heal@5000;\
     spike:500@0-4000;dup:0.1@0-4000;gst:normal:100,10@15000."
  in
  Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"PLAN" ~doc)

let watchdog_arg =
  let doc =
    "Liveness watchdog: abort as stalled after this many lambda without a decision \
     (once all scheduled chaos steps have played out)."
  in
  Arg.(value & opt (some string) None & info [ "watchdog" ] ~docv:"K" ~doc)

(* Lossy-network / crash-recovery family, bundled into one term that yields
   the key = value pairs [config_of_args] splices in front of the config
   file (so flags override file values, like every other flag). *)
let lossy_args =
  let loss =
    Arg.(value & opt (some string) None
         & info [ "loss" ] ~docv:"P"
             ~doc:"Independent per-message drop probability on every link.")
  in
  let dup =
    Arg.(value & opt (some string) None
         & info [ "dup" ] ~docv:"P" ~doc:"Per-delivered-message duplication probability.")
  in
  let reorder =
    Arg.(value & opt (some string) None
         & info [ "reorder" ] ~docv:"MS"
             ~doc:"Reordering window: extra uniform [0,$(docv)) delay per delivered message.")
  in
  let burst_loss =
    Arg.(value & opt (some string) None
         & info [ "burst-loss" ] ~docv:"GB,BG,BAD"
             ~doc:"Gilbert-Elliott burst loss per link: good-to-bad and bad-to-good transition \
                   probabilities and the drop probability while in the bad state.")
  in
  let reliable =
    Arg.(value & flag
         & info [ "reliable" ]
             ~doc:"Run protocol traffic over the simulated reliable channel: sequence-numbered \
                   frames, acks, retransmission with exponential backoff, receive-side \
                   deduplication.")
  in
  let retrans_base =
    Arg.(value & opt (some string) None
         & info [ "retrans-base" ] ~docv:"MS"
             ~doc:"Reliable-channel base retransmission timeout (default 2 lambda).")
  in
  let retrans_backoff =
    Arg.(value & opt (some string) None
         & info [ "retrans-backoff" ] ~docv:"F"
             ~doc:"Reliable-channel exponential backoff factor (default 2).")
  in
  let retrans_max =
    Arg.(value & opt (some string) None
         & info [ "retrans-max" ] ~docv:"INT"
             ~doc:"Retransmissions per frame before the channel gives up (default 10).")
  in
  let wal_ms =
    Arg.(value & opt (some string) None
         & info [ "wal-ms" ] ~docv:"MS"
             ~doc:"Simulated write-ahead-log write latency charged to the node's CPU per \
                   Context.persist call.")
  in
  let stall_ms =
    Arg.(value & opt (some string) None
         & info [ "stall-ms" ] ~docv:"MS"
             ~doc:"Absolute liveness-watchdog stall threshold (ms); overrides the \
                   $(b,--watchdog) multiplier.")
  in
  let collect loss dup reorder burst_loss reliable retrans_base retrans_backoff retrans_max
      wal_ms stall_ms =
    let flag key value = match value with Some v -> [ (key, v) ] | None -> [] in
    flag "loss" loss @ flag "dup" dup @ flag "reorder" reorder @ flag "burst_loss" burst_loss
    @ (if reliable then [ ("reliable", "true") ] else [])
    @ flag "retrans_base_ms" retrans_base
    @ flag "retrans_backoff" retrans_backoff
    @ flag "retrans_max" retrans_max @ flag "wal_ms" wal_ms @ flag "stall_ms" stall_ms
  in
  Term.(
    const collect $ loss $ dup $ reorder $ burst_loss $ reliable $ retrans_base
    $ retrans_backoff $ retrans_max $ wal_ms $ stall_ms)

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log simulation events.")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"MS"
           ~doc:"Wall-clock budget per supervised replication attempt (ms); overruns are \
                 abandoned between events, reported, and retried.")

let retries_arg =
  Arg.(value & opt (some int) None
       & info [ "retries" ] ~docv:"INT"
           ~doc:"Extra attempts after a crashed or deadline-overrunning replication (default 1).")

let quarantine_arg =
  Arg.(value & opt (some int) None
       & info [ "quarantine" ] ~docv:"INT"
           ~doc:"Failures of one replication before it is quarantined (default 3).")

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"Append-only JSONL campaign journal: every completed unit of work is recorded \
                 as it happens, so an interrupted campaign can be resumed with $(b,--resume).")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Load the $(b,--journal) file first and skip work it records as finished; the \
                 final summary is byte-identical to an uninterrupted run's.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Collect the telemetry registry (counters, gauges, histograms) and print it.")

let print_metrics reg = Format.printf "@.--- metrics ---@.%a" Obs.Metrics.pp reg

let setup_logs verbose =
  Bftsim_sim.Simlog.setup_for_cli ~level:(if verbose then Some Logs.Info else Some Logs.Warning)

let print_result (r : Core.Controller.result) =
  Format.printf "protocol        : %s@." r.config.Core.Config.protocol;
  Format.printf "configuration   : %s@." (Core.Config.describe r.config);
  Format.printf "outcome         : %a@." Core.Controller.pp_outcome r.outcome;
  Format.printf "time usage      : %.3f s@." (r.time_ms /. 1000.);
  Format.printf "message usage   : %d messages (%d bytes est., %d dropped by attacker)@."
    r.messages_sent r.bytes_sent r.messages_dropped;
  Format.printf "per decision    : %.3f s, %.1f messages@."
    (r.per_decision_latency_ms /. 1000.)
    r.per_decision_messages;
  Format.printf "events          : %d@." r.events_processed;
  Format.printf "safety          : %s@."
    (if r.safety_ok then "ok (agreement holds)"
     else "VIOLATED: " ^ Option.value ~default:"?" r.safety_violation);
  if r.violations <> [] then
    Format.printf "invariants      : %d violation(s)@.%s@." (List.length r.violations)
      (String.concat "\n"
         (List.map (fun v -> "  " ^ Core.Invariant.describe_violation v) r.violations));
  if r.corrupted <> [] then
    Format.printf "corrupted nodes : %s@."
      (String.concat ", " (List.map string_of_int r.corrupted));
  let decided = List.filter (fun (_, values) -> values <> []) r.decisions in
  (match decided with
  | (_, values) :: _ ->
    Format.printf "decided values  : %s (by %d nodes)@."
      (String.concat "; " values)
      (List.length decided)
  | [] -> Format.printf "decided values  : none@.")

(* --- run --- *)

let run_cmd =
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record an event trace and write it to $(docv) (see $(b,--trace-format)).")
  in
  let trace_format_arg =
    let fmt = Arg.enum [ ("jsonl", Obs.Exporter.Jsonl); ("chrome", Obs.Exporter.Chrome) ] in
    Arg.(value & opt fmt Obs.Exporter.Chrome
         & info [ "trace-format" ] ~docv:"FMT"
             ~doc:"Trace format: $(b,chrome) (Perfetto / chrome://tracing) or $(b,jsonl).")
  in
  let events_arg =
    Arg.(value & flag & info [ "events" ] ~doc:"Dump the replay/validation event log.")
  in
  let views_arg =
    Arg.(value & flag & info [ "views" ] ~doc:"Sample views every 250 ms and render the timeline.")
  in
  let action config_file protocol n lambda delay seed attack crashed target inputs max_time
      chaos watchdog transport costs lossy trace trace_format metrics events views verbose =
    setup_logs verbose;
    match
      config_of_args ?transport ?costs ~extra:lossy ~config_file ~protocol ~n ~lambda ~delay
        ~seed ~attack ~crashed ~target ~inputs ~max_time ~chaos ~watchdog ()
    with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok config ->
      let telemetry =
        {
          config.Core.Config.telemetry with
          Core.Config.metrics = metrics || config.Core.Config.telemetry.Core.Config.metrics;
          tracing = trace <> None || config.Core.Config.telemetry.Core.Config.tracing;
        }
      in
      let config =
        {
          config with
          Core.Config.record_trace = events;
          view_sample_ms = (if views then Some 250. else config.Core.Config.view_sample_ms);
          telemetry;
        }
      in
      let r = Core.Controller.run config in
      print_result r;
      (match r.trace with
      | Some t when events ->
        Format.printf "@.--- events (%d entries) ---@." (Core.Trace.length t);
        Core.Trace.dump Format.std_formatter t
      | _ -> ());
      (match r.Core.Controller.metrics with
      | Some reg when metrics -> print_metrics reg
      | _ -> ());
      (match (r.Core.Controller.spans, trace) with
      | Some spans, Some path ->
        Obs.Exporter.write_file ~path ~format:trace_format spans;
        Format.printf "wrote %s (%d trace entries, %d dropped)@." path
          (Obs.Tracer.length spans) (Obs.Tracer.dropped spans)
      | _ -> ());
      if views then Format.printf "@.%s@." (Core.View_tracker.render r.view_samples);
      if not r.safety_ok then Exit_code.safety
      else if r.outcome <> Core.Controller.Reached_target then Exit_code.liveness
      else Exit_code.ok
  in
  let term =
    Term.(
      const action $ config_file_arg $ protocol_arg $ n_arg $ lambda_arg $ delay_arg $ seed_arg
      $ attack_arg $ crashed_arg $ target_arg $ inputs_arg $ max_time_arg $ chaos_arg
      $ watchdog_arg $ transport_arg $ costs_arg $ lossy_args $ trace_arg $ trace_format_arg
      $ metrics_arg $ events_arg $ views_arg $ verbose_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one simulation and print its metrics") term

(* --- sweep --- *)

let sweep_cmd =
  let reps_arg =
    Arg.(value & opt int 0 & info [ "reps" ] ~docv:"INT" ~doc:"Repetitions (default BFTSIM_REPS or 20).")
  in
  let jobs_arg =
    let doc =
      "Domains to fan repetitions across (default BFTSIM_JOBS, else cores - 1). Results are \
       identical whatever the value; 1 forces the sequential path."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"INT" ~doc)
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-run results as CSV.")
  in
  let action config_file protocol n lambda delay seed attack crashed target inputs max_time
      chaos watchdog transport costs lossy reps jobs journal resume deadline retries quarantine
      csv metrics verbose =
    setup_logs verbose;
    match
      config_of_args ?transport ?costs
        ?deadline:(Option.map (Printf.sprintf "%g") deadline)
        ?retries:(Option.map string_of_int retries)
        ?quarantine:(Option.map string_of_int quarantine)
        ~extra:lossy ~config_file ~protocol ~n ~lambda ~delay ~seed ~attack ~crashed ~target
        ~inputs ~max_time ~chaos ~watchdog ()
    with
    | Error e ->
      Format.eprintf "error: %s@." e;
      Exit_code.crash
    | Ok config ->
      let config =
        if metrics then
          {
            config with
            Core.Config.telemetry =
              { config.Core.Config.telemetry with Core.Config.metrics = true };
          }
        else config
      in
      let reps = if reps > 0 then Some reps else None in
      let reps_n = match reps with Some r -> r | None -> Core.Runner.default_reps () in
      let fingerprint = Core.Journal.fingerprint ~mode:"sweep" ~reps:reps_n [ config ] in
      (match open_campaign_journal ~fingerprint ~journal ~resume with
      | Error e ->
        Format.eprintf "error: %s@." e;
        Exit_code.crash
      | Ok (journal_t, resumed) ->
        let summary = Core.Runner.run_many ?reps ?jobs ?journal:journal_t ~resumed config in
        Option.iter Core.Journal.close journal_t;
        (* Progress notes go to stderr: stdout must stay byte-diffable
           between resumed and uninterrupted campaigns. *)
        if summary.Core.Runner.resumed > 0 then
          Format.eprintf "resumed: %d of %d replication(s) journaled, %d run now@."
            summary.Core.Runner.resumed reps_n
            (reps_n - summary.Core.Runner.resumed);
        Format.printf "%s@." (Core.Config.describe config);
        Format.printf "%a@." Core.Runner.pp_summary summary;
        (* The merged registry is deterministic in the seed sequence, so this
           block is diffable across --jobs values (the CI determinism check)
           and across resume (the registry always rebuilds from digests). *)
        (match summary.Core.Runner.metrics with
        | Some reg when metrics -> print_metrics reg
        | _ -> ());
        List.iter
          (fun (f : Core.Runner.failure) ->
            Format.eprintf "rep %d %s: %s (%d retr%s)@." f.Core.Runner.rep f.Core.Runner.kind
              f.Core.Runner.detail f.Core.Runner.retries
              (if f.Core.Runner.retries = 1 then "y" else "ies"))
          summary.Core.Runner.failures;
        (match csv with
        | None -> ()
        | Some path ->
          Core.Csv_export.write_file ~path ~header:Core.Csv_export.result_header
            ~rows:(List.map (Core.Csv_export.digest_row config) summary.Core.Runner.digests);
          Format.printf "wrote %s (%d rows)@." path (List.length summary.Core.Runner.digests));
        let crashed =
          List.exists
            (fun (f : Core.Runner.failure) -> f.Core.Runner.kind <> "deadline")
            summary.Core.Runner.failures
        in
        if summary.Core.Runner.safety_violations > 0 then Exit_code.safety
        else if crashed then Exit_code.crash
        else if summary.Core.Runner.failures <> [] then Exit_code.liveness
        else Exit_code.ok)
  in
  let term =
    Term.(
      const action $ config_file_arg $ protocol_arg $ n_arg $ lambda_arg $ delay_arg $ seed_arg
      $ attack_arg $ crashed_arg $ target_arg $ inputs_arg $ max_time_arg $ chaos_arg
      $ watchdog_arg $ transport_arg $ costs_arg $ lossy_args $ reps_arg $ jobs_arg $ journal_arg
      $ resume_arg $ deadline_arg $ retries_arg $ quarantine_arg $ csv_arg $ metrics_arg
      $ verbose_arg)
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Run a configuration repeatedly and report mean/stddev") term

(* --- load --- *)

let load_cmd =
  let module Wl = Bftsim_workload in
  let rates_arg =
    Arg.(value & opt string "50,100,200,400,800,1600"
         & info [ "rates" ] ~docv:"LIST"
             ~doc:"Comma-separated offered rates (req/s); one simulation per rate.")
  in
  let arrival_arg =
    Arg.(value & opt string "poisson:1"
         & info [ "arrival" ] ~docv:"SPEC"
             ~doc:"Arrival process shape: constant:<rate> | poisson:<rate> | \
                   onoff:<rate>,<on_ms>,<off_ms>.  The rate is overridden by each $(b,--rates) \
                   point; the shape (and on/off windows) is kept.")
  in
  let batch_arg =
    Arg.(value & opt string (Wl.Batch.to_cli_string Wl.Batch.default)
         & info [ "batch" ] ~docv:"SIZE[@WAIT]"
             ~doc:"Leader batching: cut at SIZE requests or after WAIT ms, whichever first.")
  in
  let mempool_arg =
    Arg.(value & opt int 4096
         & info [ "mempool" ] ~docv:"INT" ~doc:"Mempool capacity (requests beyond it are dropped).")
  in
  let clients_arg =
    Arg.(value & opt string "open"
         & info [ "clients" ] ~docv:"MODE"
             ~doc:"Client loop: open (arrival-process driven, the default) | closed:<cap> — a \
                   fixed population each keeping <cap> requests in flight; with closed loops \
                   each $(b,--rates) entry is a population size, not a req/s rate.")
  in
  let keys_arg =
    Arg.(value & opt string "single"
         & info [ "keys" ] ~docv:"DIST"
             ~doc:"Request key distribution: single (default, unkeyed) | uniform:<n> | \
                   zipf:<s>[,<n>].  Adjacent commits with equal keys count as wl.key_conflicts.")
  in
  let heights_arg =
    Arg.(value & opt int 50
         & info [ "heights" ] ~docv:"INT" ~doc:"Consensus heights to drive per point.")
  in
  let zones_arg =
    Arg.(value & opt (some string) None
         & info [ "zones" ] ~docv:"SPEC"
             ~doc:"Geographic zones: geo3 | geo5 | uniform:<k>@<rtt_ms>; replicas are placed \
                   round-robin and messages pay the one-way inter-zone latency.")
  in
  let bandwidth_arg =
    Arg.(value & opt (some float) None
         & info [ "bandwidth" ] ~docv:"MBPS"
             ~doc:"Per-sender egress bandwidth: batch bytes serialize FIFO into delay.")
  in
  let pipeline_arg =
    Arg.(value & opt (some int) None
         & info [ "pipeline" ] ~docv:"INT" ~doc:"Consensus heights a leader keeps in flight.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"INT"
             ~doc:"Domains to fan rate points across (default BFTSIM_JOBS, else cores - 1). \
                   The curve is byte-identical whatever the value.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write the curve as CSV.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Write the curve as JSON.")
  in
  let action config_file protocol n lambda delay seed crashed max_time lossy rates arrival batch
      mempool clients keys heights zones bandwidth pipeline jobs journal resume csv out metrics
      verbose =
    setup_logs verbose;
    let parse_rates s =
      let items = List.filter (fun x -> x <> "") (String.split_on_char ',' s) in
      let rec go acc = function
        | [] -> if acc = [] then Error "empty --rates" else Ok (List.rev acc)
        | x :: rest -> (
          match float_of_string_opt x with
          | Some r when r > 0. -> go (r :: acc) rest
          | _ -> Error (Printf.sprintf "invalid rate %S" x))
      in
      go [] items
    in
    let spec =
      let ( let* ) = Result.bind in
      let* rates = parse_rates rates in
      let* arrival = Wl.Arrival.of_string arrival in
      let* policy = Wl.Batch.of_string batch in
      let* clients = Wl.Driver.clients_of_string clients in
      let* keys = Wl.Keys.of_string keys in
      let* config =
        config_of_args ?zones
          ?bandwidth:(Option.map (Printf.sprintf "%g") bandwidth)
          ?pipeline:(Option.map string_of_int pipeline)
          ~extra:lossy ~config_file ~protocol ~n ~lambda ~delay ~seed ~attack:None ~crashed
          ~target:(Some (string_of_int heights)) ~inputs:None ~max_time ~chaos:None
          ~watchdog:None ()
      in
      Ok (rates, arrival, policy, clients, keys, config)
    in
    match spec with
    | Error e ->
      Format.eprintf "error: %s@." e;
      Exit_code.crash
    | Ok (rates, arrival, policy, clients, keys, config) ->
      let config =
        if metrics then
          {
            config with
            Core.Config.telemetry =
              { config.Core.Config.telemetry with Core.Config.metrics = true };
          }
        else config
      in
      let driver = Wl.Driver.make ~arrival ~policy ~mempool_capacity:mempool ~clients ~keys () in
      let fingerprint = Wl.Driver.fingerprint driver config ~rates in
      (match open_campaign_journal ~fingerprint ~journal ~resume with
      | Error e ->
        Format.eprintf "error: %s@." e;
        Exit_code.crash
      | Ok (journal_t, resumed) ->
        let curve = Wl.Driver.sweep ?jobs ?journal:journal_t ~resumed driver config ~rates in
        Option.iter Core.Journal.close journal_t;
        (* Progress notes go to stderr: stdout must stay byte-diffable
           between resumed and uninterrupted sweeps and across --jobs. *)
        if curve.Wl.Driver.resumed > 0 then
          Format.eprintf "resumed: %d of %d point(s) journaled, %d run now@."
            curve.Wl.Driver.resumed (List.length rates)
            (List.length rates - curve.Wl.Driver.resumed);
        Format.printf "%s@." (Core.Config.describe config);
        Format.printf "workload: %s, %d height(s) per point@." (Wl.Driver.describe driver)
          heights;
        Format.printf "%a" Wl.Driver.pp_curve curve;
        (match curve.Wl.Driver.metrics with
        | Some reg when metrics -> print_metrics reg
        | _ -> ());
        (match csv with
        | None -> ()
        | Some path ->
          Core.Csv_export.write_file ~path ~header:Wl.Driver.header
            ~rows:(List.map Wl.Driver.row curve.Wl.Driver.points);
          Format.printf "wrote %s (%d rows)@." path (List.length curve.Wl.Driver.points));
        (match out with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          output_string oc (Obs.Json.to_string (Wl.Driver.curve_to_json curve));
          output_char oc '\n';
          close_out oc;
          Format.printf "wrote %s@." path);
        if
          List.exists
            (fun (p : Wl.Driver.point) -> p.Wl.Driver.outcome = "event-cap")
            curve.Wl.Driver.points
        then Exit_code.crash
        else Exit_code.ok)
  in
  let term =
    Term.(
      const action $ config_file_arg $ protocol_arg $ n_arg $ lambda_arg $ delay_arg $ seed_arg
      $ crashed_arg $ max_time_arg $ lossy_args $ rates_arg $ arrival_arg $ batch_arg
      $ mempool_arg $ clients_arg $ keys_arg $ heights_arg $ zones_arg $ bandwidth_arg
      $ pipeline_arg $ jobs_arg $ journal_arg $ resume_arg $ csv_arg $ out_arg $ metrics_arg
      $ verbose_arg)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Load sweep: open- or closed-loop clients feed a bounded mempool, leaders batch \
          requests through pipelined consensus (stale batches re-queue on view change), and \
          each offered rate yields one point of the throughput-latency curve (saturation knee \
          included)")
    term

(* --- list --- *)

let list_cmd =
  let action () =
    Format.printf "%-12s %-22s %s@." "name" "network model" "measurement";
    List.iter
      (fun (module P : Protocols.Protocol_intf.S) ->
        Format.printf "%-12s %-22s %s@." P.name
          (Protocols.Protocol_intf.network_model_to_string P.model)
          (if P.pipelined then "10 decisions (pipelined)" else "1 decision"))
      (Protocols.Registry.all ());
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the implemented protocols (paper Table I)")
    Term.(const action $ const ())

(* --- validate --- *)

let validate_cmd =
  let action config_file protocol n lambda delay seed attack crashed target inputs max_time chaos
      watchdog verbose =
    setup_logs verbose;
    match
      config_of_args ~config_file ~protocol ~n ~lambda ~delay ~seed ~attack ~crashed ~target ~inputs
        ~max_time ~chaos ~watchdog ()
    with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok config ->
      let det = Core.Validator.check_determinism config in
      Format.printf "determinism : %a@." Core.Validator.pp_report det;
      let ground = Core.Controller.run { config with Core.Config.record_trace = true } in
      let replayed = Core.Validator.validate_against ~ground_truth:ground config in
      Format.printf "replay      : %a@." Core.Validator.pp_report replayed;
      if det.Core.Validator.decisions_match && replayed.Core.Validator.decisions_match then
        Exit_code.ok
      else Exit_code.safety
  in
  let term =
    Term.(
      const action $ config_file_arg $ protocol_arg $ n_arg $ lambda_arg $ delay_arg $ seed_arg
      $ attack_arg $ crashed_arg $ target_arg $ inputs_arg $ max_time_arg $ chaos_arg
      $ watchdog_arg $ verbose_arg)
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Cross-validate a configuration (determinism and trace replay)")
    term

(* --- conform --- *)

let conform_cmd =
  let module Conf = Bftsim_conformance in
  let budget_arg =
    Arg.(value & opt int 32
         & info [ "budget" ] ~docv:"SEEDS"
             ~doc:"Number of random scenarios to generate and check.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc:"Fuzzing seed (scenario batch is a pure function of it).") in
  let protocols_arg =
    Arg.(value & opt (some string) None
         & info [ "protocols" ] ~docv:"NAMES"
             ~doc:"Comma-separated protocol names to fuzz (default: all registered).")
  in
  let families_arg =
    Arg.(value & opt (some string) None
         & info [ "families" ] ~docv:"LIST"
             ~doc:"Comma-separated attacker families: none, failstop, partition, delay, chaos, \
                   twins (default: all).")
  in
  let out_arg =
    Arg.(value & opt string "conform-out"
         & info [ "out" ] ~docv:"DIR" ~doc:"Directory for shrunk counterexample bundles.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"INT"
             ~doc:"Domains to fan scenario checks across (default BFTSIM_JOBS, else cores - 1).")
  in
  let no_det_arg =
    Arg.(value & flag
         & info [ "no-determinism" ]
             ~doc:"Skip the per-scenario determinism replay (3x faster, safety oracles only).")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Keep failing configs as generated, do not minimize.")
  in
  let shrink_budget_arg =
    Arg.(value & opt int 48
         & info [ "shrink-budget" ] ~docv:"INT"
             ~doc:"Max harness re-evaluations the shrinker may spend per counterexample.")
  in
  let action budget seed protocols families out jobs no_det no_shrink shrink_budget journal
      resume deadline retries quarantine verbose =
    setup_logs verbose;
    let parse_csv parse label = function
      | None -> Ok None
      | Some s ->
        let items = List.filter (fun x -> x <> "") (String.split_on_char ',' s) in
        let rec go acc = function
          | [] -> Ok (Some (List.rev acc))
          | x :: rest -> (
            match parse x with
            | Some v -> go (v :: acc) rest
            | None -> Error (Printf.sprintf "unknown %s %S" label x))
        in
        go [] items
    in
    let protocols_r =
      parse_csv
        (fun name -> Option.map (fun _ -> name) (Protocols.Registry.find name))
        "protocol" protocols
    in
    let families_r = parse_csv Conf.Scenario.family_of_string "family" families in
    match (protocols_r, families_r) with
    | Error e, _ | _, Error e ->
      Format.eprintf "error: %s@." e;
      Exit_code.crash
    | Ok protocols, Ok families ->
      (match Protocols.Quorum.mutation () with
      | Some m ->
        Format.printf "MUTATION ACTIVE: %s (expect failures)@."
          (Protocols.Quorum.mutation_to_string m)
      | None -> ());
      let policy =
        let d = Core.Supervisor.default_policy in
        {
          d with
          Core.Supervisor.seed;
          deadline_ms = (match deadline with Some _ -> deadline | None -> d.deadline_ms);
          max_retries = Option.value ~default:d.Core.Supervisor.max_retries retries;
          quarantine_after =
            Option.value ~default:d.Core.Supervisor.quarantine_after quarantine;
        }
      in
      let fingerprint =
        Conf.Harness.campaign_cell ~budget ~seed
          (Conf.Scenario.sample ?protocols ?families ~budget ~seed ())
      in
      (match open_campaign_journal ~fingerprint ~journal ~resume with
      | Error e ->
        Format.eprintf "error: %s@." e;
        Exit_code.crash
      | Ok (journal_t, resumed) ->
        let report =
          Conf.Harness.fuzz ?protocols ?families ?jobs ~determinism:(not no_det)
            ~shrink:(not no_shrink) ~shrink_budget ~bundle_dir:out ~policy ?journal:journal_t
            ~resumed ~budget ~seed ()
        in
        Option.iter Core.Journal.close journal_t;
        if report.Conf.Harness.resumed > 0 then
          Format.eprintf "resumed: %d of %d check(s) already journaled as passed@."
            report.Conf.Harness.resumed report.Conf.Harness.scenarios;
        Format.printf "%a@." Conf.Harness.pp_report report;
        if Conf.Harness.ok report then begin
          Format.printf "conformance OK: %d scenario(s), all oracles hold@."
            report.Conf.Harness.scenarios;
          Exit_code.ok
        end
        else if report.Conf.Harness.failures <> [] then Exit_code.safety
        else Exit_code.crash)
  in
  let term =
    Term.(
      const action $ budget_arg $ seed_arg $ protocols_arg $ families_arg $ out_arg $ jobs_arg
      $ no_det_arg $ no_shrink_arg $ shrink_budget_arg $ journal_arg $ resume_arg $ deadline_arg
      $ retries_arg $ quarantine_arg $ verbose_arg)
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Fuzz random scenarios across protocols, attackers and network models; check protocol \
          oracles (agreement, validity, integrity, quorum sanity) plus replay determinism; \
          shrink and persist any counterexample")
    term

(* --- twins --- *)

let twins_cmd =
  let module Conf = Bftsim_conformance in
  let module Twins = Bftsim_twins in
  let budget_arg =
    Arg.(value & opt int 128
         & info [ "budget" ] ~docv:"INT"
             ~doc:"Max enumerated schedules to check (most-adversarial-first); each is crossed \
                   with every selected protocol.")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"INT"
             ~doc:"Config seed shared by every scenario (the schedule set itself is \
                   deterministic).")
  in
  let protocols_arg =
    Arg.(value & opt (some string) None
         & info [ "protocols" ] ~docv:"NAMES"
             ~doc:"Comma-separated protocol names (default: every applicable registered \
                   protocol).")
  in
  let n_arg =
    Arg.(value & opt int Twins.Synth.default_params.Twins.Synth.n
         & info [ "nodes" ] ~docv:"INT" ~doc:"Logical system size (physical size is n + 1).")
  in
  let rounds_arg =
    Arg.(value & opt int Twins.Synth.default_params.Twins.Synth.rounds
         & info [ "rounds" ] ~docv:"INT" ~doc:"Schedule length in partition rounds.")
  in
  let round_ms_arg =
    Arg.(value & opt float Twins.Synth.default_params.Twins.Synth.round_ms
         & info [ "round-ms" ] ~docv:"MS" ~doc:"Duration of one schedule round.")
  in
  let enumerate_only_arg =
    Arg.(value & flag
         & info [ "enumerate-only" ]
             ~doc:"Print enumeration statistics (raw, unique, emitted schedule counts) and \
                   exit without running anything.")
  in
  let out_arg =
    Arg.(value & opt string "twins-out"
         & info [ "out" ] ~docv:"DIR" ~doc:"Directory for shrunk counterexample bundles.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"INT"
             ~doc:"Domains to fan scenario checks across (default BFTSIM_JOBS, else cores - 1).")
  in
  let no_det_arg =
    Arg.(value & flag
         & info [ "no-determinism" ]
             ~doc:"Skip the per-scenario determinism replay (3x faster, safety oracles only).")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Keep failing configs as generated, do not minimize.")
  in
  let shrink_budget_arg =
    Arg.(value & opt int 48
         & info [ "shrink-budget" ] ~docv:"INT"
             ~doc:"Max harness re-evaluations the shrinker may spend per counterexample.")
  in
  let action budget seed protocols n rounds round_ms enumerate_only out jobs no_det no_shrink
      shrink_budget journal resume deadline retries quarantine verbose =
    setup_logs verbose;
    let protocols_r =
      match protocols with
      | None -> Ok None
      | Some s ->
        let items = List.filter (fun x -> x <> "") (String.split_on_char ',' s) in
        let rec go acc = function
          | [] -> Ok (Some (List.rev acc))
          | x :: rest -> (
            match Protocols.Registry.find x with
            | Some _ -> go (x :: acc) rest
            | None -> Error (Printf.sprintf "unknown protocol %S" x))
        in
        go [] items
    in
    match protocols_r with
    | Error e ->
      Format.eprintf "error: %s@." e;
      Exit_code.crash
    | Ok protocols -> (
      let params =
        { Twins.Synth.default_params with Twins.Synth.n; rounds; round_ms; seed }
      in
      match Twins.Synth.synthesize ?protocols ~budget ~params () with
      | exception Invalid_argument e ->
        Format.eprintf "error: %s@." e;
        Exit_code.crash
      | scenarios, stats ->
        Format.printf "twins enumeration: %a@." Twins.Synth.pp_stats stats;
        if enumerate_only then Exit_code.ok
        else if scenarios = [] then begin
          Format.eprintf "error: no applicable protocol selected@.";
          Exit_code.crash
        end
        else begin
          Format.printf "checking %d scenario(s) across %d protocol(s)@."
            (List.length scenarios)
            (List.length scenarios / stats.Twins.Enumerate.emitted);
          let policy =
            let d = Core.Supervisor.default_policy in
            {
              d with
              Core.Supervisor.seed;
              deadline_ms = (match deadline with Some _ -> deadline | None -> d.deadline_ms);
              max_retries = Option.value ~default:d.Core.Supervisor.max_retries retries;
              quarantine_after =
                Option.value ~default:d.Core.Supervisor.quarantine_after quarantine;
            }
          in
          let fingerprint =
            Conf.Harness.campaign_cell ~mode:"twins" ~budget ~seed scenarios
          in
          match open_campaign_journal ~fingerprint ~journal ~resume with
          | Error e ->
            Format.eprintf "error: %s@." e;
            Exit_code.crash
          | Ok (journal_t, resumed) ->
            let report =
              Conf.Harness.fuzz_scenarios ~mode:"twins" ?jobs ~determinism:(not no_det)
                ~shrink:(not no_shrink) ~shrink_budget ~bundle_dir:out ~policy
                ?journal:journal_t ~resumed ~seed scenarios
            in
            Option.iter Core.Journal.close journal_t;
            if report.Conf.Harness.resumed > 0 then
              Format.eprintf "resumed: %d of %d check(s) already journaled as passed@."
                report.Conf.Harness.resumed report.Conf.Harness.scenarios;
            Format.printf "%a@." Conf.Harness.pp_report report;
            if Conf.Harness.ok report then begin
              Format.printf "twins OK: %d scenario(s), all oracles hold@."
                report.Conf.Harness.scenarios;
              Exit_code.ok
            end
            else if report.Conf.Harness.failures <> [] then begin
              (* Liveness-only findings (a stalled pacemaker) exit 3;
                 anything touching a safety oracle exits 2. *)
              let liveness_only =
                List.for_all
                  (fun f ->
                    List.for_all
                      (fun v -> v.Conf.Oracle.oracle = "liveness")
                      f.Conf.Harness.verdicts)
                  report.Conf.Harness.failures
              in
              if liveness_only then Exit_code.liveness else Exit_code.safety
            end
            else Exit_code.crash
        end)
  in
  let term =
    Term.(
      const action $ budget_arg $ seed_arg $ protocols_arg $ n_arg $ rounds_arg $ round_ms_arg
      $ enumerate_only_arg $ out_arg $ jobs_arg $ no_det_arg $ no_shrink_arg $ shrink_budget_arg
      $ journal_arg $ resume_arg $ deadline_arg $ retries_arg $ quarantine_arg $ verbose_arg)
  in
  Cmd.v
    (Cmd.info "twins"
       ~doc:
         "Systematic Twins-style Byzantine testing: enumerate duplicate-identity schedules \
          (partition rounds + pinned leaders, symmetry-deduplicated), run each against the \
          selected protocols, and judge with the conformance oracles; counterexamples are \
          shrunk and persisted as replayable bundles")
    term

(* --- loc --- *)

let loc_cmd =
  let action () =
    match Core.Loc_count.find_root () with
    | None ->
      Format.eprintf "error: repository sources not found (run from the repo)@.";
      1
    | Some root ->
      Format.printf "Table I: implemented BFT protocols@.";
      Format.printf "  %-22s %-22s %s@." "protocol" "network model" "LoC";
      List.iter
        (fun (e : Core.Loc_count.entry) ->
          Format.printf "  %-22s %-22s %d@." e.label e.network_model e.loc)
        (Core.Loc_count.table1 ~root);
      Format.printf "Table II: implemented attacks@.";
      Format.printf "  %-26s %-20s %s@." "attack" "capability" "LoC";
      List.iter
        (fun (e : Core.Loc_count.entry) ->
          Format.printf "  %-26s %-20s %d@." e.label e.network_model e.loc)
        (Core.Loc_count.table2 ~root);
      0
  in
  Cmd.v (Cmd.info "loc" ~doc:"Lines-of-code inventory (paper Tables I and II)")
    Term.(const action $ const ())

let main_cmd =
  let doc = "Efficient and flexible simulator for BFT protocols (DSN 2022 reproduction)" in
  let info = Cmd.info "bftsim" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ run_cmd; sweep_cmd; load_cmd; list_cmd; validate_cmd; conform_cmd; twins_cmd; loc_cmd ]

let () =
  (* Simulation-profile GC for the coordinating domain; Parallel.map does
     the same for every worker it spawns. *)
  Core.Parallel.tune_gc ();
  (* One exit-code scheme for the whole binary: fold cmdliner's CLI-error
     (124) and uncaught-exception (125) codes into 1. *)
  exit (match Cmd.eval' ~term_err:Exit_code.crash main_cmd with 124 | 125 -> Exit_code.crash | c -> c)
