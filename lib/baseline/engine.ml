open Bftsim_sim
open Bftsim_net
module Protocols = Bftsim_protocols

type result = {
  protocol : string;
  n : int;
  outcome_ok : bool;
  time_ms : float;
  packets : int;
  events : int;
  decisions : (int * string list) list;
  safety_ok : bool;
}

type event =
  | At_router of Packet.t
  | At_host of Packet.t
  | Deliver of Message.t
  | Node_timer of Timer.t
  | Retransmit_check of { msg_id : int; seq : int }

(* TCP-ish connection state per ordered (src, dst) pair.  The buffers are
   allocated eagerly like real socket buffers; their n^2 growth is the
   baseline's memory wall. *)
type connection = {
  mutable established : bool;
  mutable handshake_started : bool;
  mutable pending : Message.t list;  (** Messages queued behind the handshake. *)
  send_buffer : Bytes.t;
  recv_buffer : Bytes.t;
}

let socket_buffer_bytes = 16_384

let estimated_memory_bytes ~n = n * (n - 1) * 2 * socket_buffer_bytes

let run ?(protocol = "pbft") ?(decisions_target = 1) ?(max_time_ms = 600_000.)
    ?(bandwidth_mbps = 100.) ~n ~seed () =
  let (module P : Protocols.Protocol_intf.S) = Protocols.Registry.find_exn protocol in
  let root_rng = Rng.create (seed lxor 0x0badcafe) in
  let node_rngs = Array.init n (fun _ -> Rng.split root_rng) in
  let queue : event Event_queue.t = Event_queue.create () in
  (* Access-link propagation per node, drawn so that a two-hop path has
     mean 250 ms / stddev ~50 ms like the main simulator's default. *)
  let prop () = Rng.truncated_normal root_rng ~mu:125. ~sigma:35. ~lo:1. in
  let uplinks = Array.init n (fun _ -> Phys.make_link ~bandwidth_mbps ~propagation_ms:(prop ())) in
  let downlinks = Array.init n (fun _ -> Phys.make_link ~bandwidth_mbps ~propagation_ms:(prop ())) in
  let cpus = Array.init n (fun _ -> Phys.make_cpu ()) in
  let router_cpu = Phys.make_cpu () in
  let connections : (int * int, connection) Hashtbl.t = Hashtbl.create (n * n) in
  let connection src dst =
    match Hashtbl.find_opt connections (src, dst) with
    | Some c -> c
    | None ->
      let c =
        {
          established = false;
          handshake_started = false;
          pending = [];
          send_buffer = Bytes.create socket_buffer_bytes;
          recv_buffer = Bytes.create socket_buffer_bytes;
        }
      in
      (* Touch the buffers so the allocation is not optimized away. *)
      Bytes.set c.send_buffer 0 'x';
      Bytes.set c.recv_buffer 0 'x';
      Hashtbl.replace connections (src, dst) c;
      c
  in
  let packet_counter = ref 0 in
  let msg_counter = ref 0 in
  let timer_counter = ref 0 in
  let cancelled : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let total_packets = ref 0 in
  let unacked : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let decisions = Array.init n (fun _ -> ref []) in
  let finished = ref None in
  let reassembly : (int, int * Message.t) Hashtbl.t = Hashtbl.create 256 in

  let now_ms () = Time.to_ms (Event_queue.now queue) in

  let send_packet ~at_ms packet =
    incr total_packets;
    let arrival = Phys.transmit uplinks.(packet.Packet.src) ~now_ms:at_ms ~bytes:packet.size_bytes in
    Event_queue.schedule queue ~at:(Time.of_ms (Float.max arrival (now_ms ()))) (At_router packet)
  in

  let fresh_packet ~src ~dst ~payload_bytes kind =
    incr packet_counter;
    Packet.make ~id:!packet_counter ~src ~dst ~payload_bytes kind
  in

  (* BFTSim's PBFT carried batched client requests and authenticators; the
     wire representation of a protocol message is therefore far larger than
     the simulator-level size estimate.  4 KiB per message is a modest
     batch. *)
  let wire_bytes (msg : Message.t) = max msg.size 4096 in

  let send_segments ~at_ms (msg : Message.t) =
    let size = wire_bytes msg in
    let total = max 1 ((size + Packet.mss - 1) / Packet.mss) in
    Hashtbl.replace reassembly msg.id (total, msg);
    for seq = 0 to total - 1 do
      let payload_bytes = min Packet.mss (size - (seq * Packet.mss)) in
      let payload_bytes = max 1 payload_bytes in
      Hashtbl.replace unacked (msg.id, seq) ();
      send_packet ~at_ms
        (fresh_packet ~src:msg.src ~dst:msg.dst ~payload_bytes
           (Packet.Data { msg_id = msg.id; seq; total }));
      (* RTO bookkeeping: the sender re-checks each segment; with lossless
         links the check is always satisfied, but a real stack still pays
         for arming and servicing it. *)
      Event_queue.schedule_after queue ~delay_ms:3000. (Retransmit_check { msg_id = msg.id; seq })
    done
  in

  let transport (msg : Message.t) =
    (* Signing happens on the sender CPU before anything hits the wire. *)
    let signed_at = Phys.charge cpus.(msg.src) ~now_ms:(now_ms ()) ~cost_ms:Phys.sign_cost_ms in
    let conn = connection msg.src msg.dst in
    if conn.established then send_segments ~at_ms:signed_at msg
    else begin
      conn.pending <- msg :: conn.pending;
      if not conn.handshake_started then begin
        conn.handshake_started <- true;
        send_packet ~at_ms:signed_at (fresh_packet ~src:msg.src ~dst:msg.dst ~payload_bytes:1 Packet.Syn)
      end
    end
  in

  let ctxs = Array.make n None in
  let get_ctx i = Option.get ctxs.(i) in

  let make_ctx node_id =
    {
      Protocols.Context.node_id;
      n;
      f = Protocols.Quorum.max_faulty n;
      lambda_ms = 1000.;
      seed;
      input = Printf.sprintf "v%d" node_id;
      naive_reset = Protocols.Context.Reset_on_commit;
      rng = node_rngs.(node_id);
      now = (fun () -> Event_queue.now queue);
      send_raw =
        (fun ~dst ~tag ~size payload ->
          incr msg_counter;
          let msg =
            Message.make ~id:!msg_counter ~src:node_id ~dst ~sent_at:(Event_queue.now queue) ~tag
              ~size payload
          in
          if dst = node_id then Event_queue.schedule queue ~at:(Event_queue.now queue) (Deliver msg)
          else transport msg);
      broadcast_raw =
        (fun ~include_self ~tag ~size payload ->
          for dst = 0 to n - 1 do
            if include_self || dst <> node_id then begin
              incr msg_counter;
              let msg =
                Message.make ~id:!msg_counter ~src:node_id ~dst ~sent_at:(Event_queue.now queue)
                  ~tag ~size payload
              in
              if dst = node_id then
                Event_queue.schedule queue ~at:(Event_queue.now queue) (Deliver msg)
              else transport msg
            end
          done);
      set_timer =
        (fun ~delay_ms ~tag payload ->
          incr timer_counter;
          let id = !timer_counter in
          let deadline = Time.add_ms (Event_queue.now queue) (Float.max 0. delay_ms) in
          Event_queue.schedule queue ~at:deadline
            (Node_timer { Timer.id; owner = node_id; deadline; tag; payload });
          id);
      cancel_timer = (fun id -> Hashtbl.replace cancelled id ());
      decide =
        (fun value ->
          decisions.(node_id) := value :: !(decisions.(node_id));
          if !finished = None then begin
            let all_done = ref true in
            for i = 0 to n - 1 do
              if List.length !(decisions.(i)) < decisions_target then all_done := false
            done;
            if !all_done then finished := Some (now_ms ())
          end);
      probe = (fun ~tag:_ ~detail:_ -> ());
      leader_schedule = None;
      request_proposal = (fun ~slot:_ ~width:_ ~default k -> ignore (k default : bool));
      pipeline_depth = 1;
      durable = false;
      persist = (fun ~key:_ _ -> ());
      recall = (fun ~key:_ -> None);
      on_caught_up = ignore;
    }
  in
  for i = 0 to n - 1 do
    ctxs.(i) <- Some (make_ctx i)
  done;
  let nodes = Array.init n (fun i -> P.create (get_ctx i)) in

  let handle_at_host (packet : Packet.t) =
    let dst = packet.Packet.dst in
    let processed =
      Phys.charge cpus.(dst) ~now_ms:(now_ms ()) ~cost_ms:Phys.per_packet_cost_ms
    in
    if not (Packet.verify packet) then ()
    else
      match packet.kind with
      | Packet.Syn ->
        send_packet ~at_ms:processed (fresh_packet ~src:dst ~dst:packet.src ~payload_bytes:1 Packet.Syn_ack)
      | Packet.Syn_ack ->
        (* src of the original connection receives the SYN-ACK. *)
        let conn = connection dst packet.src in
        send_packet ~at_ms:processed
          (fresh_packet ~src:dst ~dst:packet.src ~payload_bytes:1 Packet.Handshake_ack);
        conn.established <- true;
        let pending = List.rev conn.pending in
        conn.pending <- [];
        List.iter (fun msg -> send_segments ~at_ms:processed msg) pending
      | Packet.Handshake_ack -> (connection packet.src dst).established <- true
      | Packet.Ack { msg_id; seq } -> Hashtbl.remove unacked (msg_id, seq)
      | Packet.Data { msg_id; seq; total = _ } -> (
        (* Acknowledge the segment, then reassemble. *)
        send_packet ~at_ms:processed
          (fresh_packet ~src:dst ~dst:packet.src ~payload_bytes:1 (Packet.Ack { msg_id; seq }));
        match Hashtbl.find_opt reassembly msg_id with
        | None -> ()
        | Some (remaining, msg) ->
          if remaining <= 1 then begin
            Hashtbl.remove reassembly msg_id;
            (* Verify the application-level signature before delivery. *)
            let verified =
              Phys.charge cpus.(dst) ~now_ms:processed ~cost_ms:Phys.verify_cost_ms
            in
            Event_queue.schedule queue ~at:(Time.of_ms (Float.max verified (now_ms ()))) (Deliver msg)
          end
          else Hashtbl.replace reassembly msg_id (remaining - 1, msg))
  in

  let handle = function
    | At_router packet ->
      (* Store-and-forward: router charges per-packet processing, verifies
         the checksum, and forwards on the destination's downlink. *)
      let processed = Phys.charge router_cpu ~now_ms:(now_ms ()) ~cost_ms:Phys.per_packet_cost_ms in
      if Packet.verify packet then begin
        Packet.copy_at_hop packet;
        let arrival =
          Phys.transmit downlinks.(packet.Packet.dst) ~now_ms:processed ~bytes:packet.size_bytes
        in
        Event_queue.schedule queue ~at:(Time.of_ms (Float.max arrival (now_ms ()))) (At_host packet)
      end
    | At_host packet ->
      Packet.copy_at_hop packet;
      handle_at_host packet
    | Retransmit_check { msg_id; seq } -> ignore (Hashtbl.mem unacked (msg_id, seq))
    | Deliver msg -> P.on_message nodes.(msg.Message.dst) (get_ctx msg.Message.dst) msg
    | Node_timer timer ->
      if not (Hashtbl.mem cancelled timer.Timer.id) then
        P.on_timer nodes.(timer.Timer.owner) (get_ctx timer.Timer.owner) timer
  in

  Array.iteri (fun i node -> P.on_start node (get_ctx i)) nodes;
  let rec loop () =
    if !finished <> None then ()
    else
      match Event_queue.next queue with
      | None -> ()
      | Some (now, ev) ->
        if Time.to_ms now > max_time_ms then ()
        else begin
          handle ev;
          loop ()
        end
  in
  loop ();
  let decisions_list = List.init n (fun i -> (i, List.rev !(decisions.(i)))) in
  let safety_ok =
    let table = Hashtbl.create 64 in
    List.for_all
      (fun (_, values) ->
        List.for_all (fun ok -> ok)
          (List.mapi
             (fun k v ->
               match Hashtbl.find_opt table k with
               | None ->
                 Hashtbl.replace table k v;
                 true
               | Some expected -> String.equal expected v)
             values))
      decisions_list
  in
  {
    protocol;
    n;
    outcome_ok = !finished <> None;
    time_ms = (match !finished with Some t -> t | None -> Float.min (now_ms ()) max_time_ms);
    packets = !total_packets;
    events = Event_queue.popped queue;
    decisions = decisions_list;
    safety_ok;
  }

let wall_clock_of_run ?protocol ?decisions_target ~n ~seed () =
  let start = Unix.gettimeofday () in
  let result = run ?protocol ?decisions_target ~n ~seed () in
  (Unix.gettimeofday () -. start, result)
