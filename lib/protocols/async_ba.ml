open Bftsim_net
module Sha256 = Bftsim_crypto.Sha256

type Message.payload += Aba of { round : int; phase : int; value : int }

let name = "async-ba"

let model = Protocol_intf.Asynchronous

let pipelined = false

let bottom = 2

type node = {
  mutable round : int;
  mutable phase : int;
  mutable value : int;
  mutable decided : int option;
  (* (round, phase) -> sender -> reported value.  Future-round messages are
     buffered here until the node catches up. *)
  received : (int * int, (int, int) Hashtbl.t) Hashtbl.t;
  mutable max_round_seen : int;
}

let input_bit ctx =
  match ctx.Context.input with
  | "0" -> 0
  | "1" -> 1
  | other -> Char.code (Sha256.to_raw (Sha256.digest_string other)).[0] land 1

let create ctx =
  {
    round = 1;
    phase = 1;
    value = input_bit ctx;
    decided = None;
    received = Hashtbl.create 64;
    max_round_seen = 1;
  }

let bucket t key =
  match Hashtbl.find_opt t.received key with
  | Some b -> b
  | None ->
    let b = Hashtbl.create 16 in
    Hashtbl.replace t.received key b;
    b

let counts bucket =
  let c = [| 0; 0; 0 |] in
  Hashtbl.iter (fun _sender v -> if v >= 0 && v <= 2 then c.(v) <- c.(v) + 1) bucket;
  c

(* The common coin: a shared hash oracle over the round number, identical at
   every node — the cryptographic-setup assumption that gives expected
   constant rounds. *)
let coin ctx round =
  let d = Sha256.digest_string (Printf.sprintf "coin|%d|%d" ctx.Context.seed round) in
  Char.code (Sha256.to_raw d).[0] land 1

let broadcast_phase t ctx =
  let value = if t.phase = 3 && t.value = bottom then bottom else t.value in
  Context.broadcast ctx ~tag:(Printf.sprintf "aba-r%d-p%d" t.round t.phase)
    (Aba { round = t.round; phase = t.phase; value })

(* One quorum-driven step.  Returns [true] if the node advanced, so the
   caller loops — buffered future messages may immediately unlock the next
   phase. *)
let step t ctx =
  let b = bucket t (t.round, t.phase) in
  if Hashtbl.length b < Quorum.quorum ctx.Context.n then false
  else begin
    let c = counts b in
    (match t.phase with
    | 1 ->
      (* Adopt the majority value of the first wave. *)
      if c.(0) > c.(1) then t.value <- 0 else if c.(1) > c.(0) then t.value <- 1;
      t.phase <- 2
    | 2 ->
      (* Ratify only a value seen from more than half the quorum wave. *)
      let half = Quorum.quorum ctx.Context.n / 2 in
      if c.(0) > half then t.value <- 0
      else if c.(1) > half then t.value <- 1
      else t.value <- bottom;
      t.phase <- 3
    | _ ->
      let modal, modal_count = if c.(0) >= c.(1) then (0, c.(0)) else (1, c.(1)) in
      let n = ctx.Context.n in
      if modal_count >= Quorum.supermajority n then begin
        if t.decided = None then begin
          t.decided <- Some modal;
          ctx.Context.decide (string_of_int modal)
        end;
        t.value <- modal
      end
      else if modal_count >= Quorum.one_honest n then t.value <- modal
      else t.value <- coin ctx t.round;
      t.round <- t.round + 1;
      t.phase <- 1);
    broadcast_phase t ctx;
    true
  end

let run t ctx =
  while step t ctx do
    ()
  done

let on_start t ctx = broadcast_phase t ctx

let on_message t ctx (msg : Message.t) =
  match msg.payload with
  | Aba { round; phase; value } ->
    if round >= t.round && phase >= 1 && phase <= 3 && value >= 0 && value <= 2 then begin
      let b = bucket t (round, phase) in
      if not (Hashtbl.mem b msg.src) then Hashtbl.replace b msg.src value;
      if round > t.max_round_seen then t.max_round_seen <- round;
      run t ctx
    end
  | _ -> ()

let on_timer _t _ctx _timer = ()

let current_round t = t.round

let decided_value t = t.decided

let view = current_round

let () =
  Message.register_printer (function
    | Aba { round; phase; value } -> Some (Printf.sprintf "ABA(r=%d,p=%d,v=%d)" round phase value)
    | _ -> None)

(* A restarted replica rejoins from scratch: safe for this protocol's
   message flow, though a one-shot instance that already passed its
   decision point may never re-decide. *)
let on_restart = on_start
