open Bftsim_sim
open Bftsim_net

type pacemaker = Naive_doubling | Timeout_certificates | Cogsworth

type Message.payload +=
  | Proposal of { block : Chain.block }
  | Vote of { view : int; digest : string }
  | Timeout_vote of { view : int }
  | Timeout_cert of { view : int }
  | Sync_request of { view : int }
      (** Cogsworth: unicast plea to the leader of [view] to start it. *)
  | Sync_advance of { view : int }
      (** Cogsworth: the leader's relay moving everyone to [view]. *)

type Timer.payload += View_timer of { view : int }

(* A view must fit a proposal broadcast plus a vote flight, so the base
   timeout is twice the assumed delay bound. *)
let base_view_factor = 2.0

type node = {
  pacemaker : pacemaker;
  store : Chain.store;
  mutable cur_view : int;
  mutable high_qc : Chain.qc;
  mutable locked : Chain.qc;
  mutable last_committed : string;
  mutable timeouts : int;
  mutable timer : Timer.id option;
  votes : (int * string) Tally.t;
  timeout_votes : int Tally.t;
  sync_requests : int Tally.t;
  voted : (int, unit) Hashtbl.t;
  proposed : (int, unit) Hashtbl.t;
  qc_formed : (int, unit) Hashtbl.t;
  sent_timeout : (int, unit) Hashtbl.t;
  (* Proposals for views this node has not entered yet (e.g. the proposal
     raced ahead of the pacemaker's view-change message); re-examined on
     view entry. *)
  pending_proposals : (int, Chain.block) Hashtbl.t;
  mutable committed : int;
}

let create pacemaker _ctx =
  {
    pacemaker;
    store = Chain.create ();
    cur_view = 0;
    high_qc = Chain.genesis_qc;
    locked = Chain.genesis_qc;
    last_committed = Chain.genesis.digest;
    timeouts = 0;
    timer = None;
    votes = Tally.create ();
    timeout_votes = Tally.create ();
    sync_requests = Tally.create ();
    voted = Hashtbl.create 64;
    proposed = Hashtbl.create 64;
    qc_formed = Hashtbl.create 64;
    sent_timeout = Hashtbl.create 64;
    pending_proposals = Hashtbl.create 64;
    committed = 0;
  }

let current_view t = t.cur_view

let timeout_count t = t.timeouts

let committed_count t = t.committed

let leader ctx view = Context.leader_round_robin ctx ~view

(* HotStuff+NS uses the naive view-doubling synchronizer (Naor et al.): the
   view timeout doubles on every local timeout.  The per-run configuration
   (Config.naive_reset, surfaced as BFTSIM_NAIVE_RESET / the naive_reset
   config key) selects when (if ever) the back-off resets — "commit"
   (default) resets on every local commit, "never" keeps growing, "view"
   derives the budget from the view number itself.  LibraBFT's pacemaker
   doubles per consecutive timeout and resets on any progress. *)
type naive_reset_policy = Context.naive_reset_policy =
  | Reset_on_commit
  | Never_reset
  | Per_view_number

let view_duration_ms t ctx =
  let exponent =
    match t.pacemaker with
    | Naive_doubling -> (
      match ctx.Context.naive_reset with
      | Per_view_number -> Stdlib.min t.cur_view 24
      | Reset_on_commit | Never_reset -> Stdlib.min t.timeouts 24)
    | Timeout_certificates | Cogsworth -> Stdlib.min t.timeouts 24
  in
  base_view_factor *. ctx.Context.lambda_ms *. (2. ** float_of_int exponent)

let restart_timer t ctx =
  Option.iter ctx.Context.cancel_timer t.timer;
  let id =
    ctx.Context.set_timer ~delay_ms:(view_duration_ms t ctx) ~tag:"view-timer"
      (View_timer { view = t.cur_view })
  in
  t.timer <- Some id

let propose t ctx =
  if not (Hashtbl.mem t.proposed t.cur_view) then
    match Chain.find t.store t.high_qc.Chain.block with
    | None -> ()
    | Some _ ->
      let view = t.cur_view in
      Hashtbl.replace t.proposed view ();
      (* Chained protocols are natively pipelined — one block per view, each
         carrying the QC for its parent — so the whole pipeline window rides
         a single block: ask the workload for a payload [width] batches
         wide.  Without a workload the continuation runs immediately with
         the synthetic default and the block is byte-identical to the
         pre-hook behavior. *)
      ctx.Context.request_proposal ~slot:view ~width:ctx.Context.pipeline_depth
        ~default:{ Context.value = ""; size = 512 }
        (fun (p : Context.proposal) ->
          (* A deferred batch may fire after the pacemaker moved on; the
             parent/justify are re-resolved at fire time, and a stale view
             returns [false] so the workload re-queues the batch. *)
          if t.cur_view = view && Context.is_leader_round_robin ctx ~view then
            match Chain.find t.store t.high_qc.Chain.block with
            | None -> false
            | Some parent ->
              let block =
                Chain.make_block ~payload:p.Context.value ~view ~parent ~justify:t.high_qc
                  ~proposer:ctx.Context.node_id ()
              in
              Chain.add t.store block;
              Context.broadcast ctx ~tag:"proposal" ~size:p.Context.size (Proposal { block });
              true
          else false)

(* Commit rule: a QC heading a three-chain of consecutive views commits the
   tail block and all its uncommitted ancestors, in chain order — each one
   is a decided value reported to the controller. *)
let try_commit t ctx qc =
  match Chain.three_chain_tail t.store qc with
  | None -> ()
  | Some b3 ->
    if
      (not (String.equal b3.Chain.digest t.last_committed))
      && Chain.extends t.store b3 ~ancestor:t.last_committed
    then begin
      let newly = Chain.chain_between t.store ~after:t.last_committed ~upto:b3 in
      List.iter
        (fun (b : Chain.block) ->
          t.committed <- t.committed + 1;
          (* A workload batch decides by its batch name so the driver can
             match commits; synthetic blocks keep deciding their digest. *)
          ctx.Context.decide (if b.Chain.payload = "" then b.Chain.digest else b.Chain.payload))
        newly;
      t.last_committed <- b3.Chain.digest;
      if t.pacemaker = Naive_doubling && ctx.Context.naive_reset = Reset_on_commit then
        t.timeouts <- 0
    end

let process_qc t ctx (qc : Chain.qc) =
  if qc.view > t.high_qc.Chain.view then t.high_qc <- qc;
  (match Chain.find t.store qc.block with
  | Some b1 -> if b1.justify.view > t.locked.Chain.view then t.locked <- b1.justify
  | None -> ());
  try_commit t ctx qc

let vote_for t ctx (b : Chain.block) =
  Hashtbl.replace t.voted b.view ();
  Context.send ctx
    ~dst:(leader ctx (b.view + 1))
    ~tag:"vote"
    (Vote { view = b.view; digest = b.digest })

let safe_to_vote t (b : Chain.block) =
  b.justify.view > t.locked.Chain.view || Chain.extends t.store b ~ancestor:t.locked.Chain.block

(* On entering a view, act on a proposal that arrived before we did. *)
let vote_pending t ctx =
  match Hashtbl.find_opt t.pending_proposals t.cur_view with
  | Some b when (not (Hashtbl.mem t.voted b.view)) && safe_to_vote t b -> vote_for t ctx b
  | Some _ | None -> ()

(* [fresh] marks entry through protocol progress (a QC or TC) rather than a
   local timeout; LibraBFT's pacemaker resets its back-off on progress,
   the naive synchronizer never does. *)
let enter_view t ctx ~fresh view =
  if view > t.cur_view then begin
    t.cur_view <- view;
    if fresh && (t.pacemaker = Timeout_certificates || t.pacemaker = Cogsworth) then
      t.timeouts <- 0;
    restart_timer t ctx;
    if leader ctx view = ctx.Context.node_id then propose t ctx;
    vote_pending t ctx
  end

let handle_proposal t ctx (msg : Message.t) (b : Chain.block) =
  if msg.src = leader ctx b.view then begin
    Chain.add t.store b;
    if b.view > t.cur_view then Hashtbl.replace t.pending_proposals b.view b;
    process_qc t ctx b.justify;
    (* Optimistic responsiveness: a proposal carrying a QC for the directly
       preceding view proves that view succeeded, so jump to the proposal's
       view without waiting for the timer. *)
    if b.view > t.cur_view && b.justify.view = b.view - 1 then enter_view t ctx ~fresh:true b.view;
    if b.view = t.cur_view && (not (Hashtbl.mem t.voted b.view)) && safe_to_vote t b then
      vote_for t ctx b
  end

let handle_vote t ctx (msg : Message.t) ~view ~digest =
  (* Staleness: the leader of view v+1 aggregates votes of view v only
     while its own view clock has not moved past v+1; later votes belong to
     a view it is no longer responsible for.  Under the naive synchronizer
     this is what turns clock divergence into failed views (Figs. 5, 9) —
     the timeout-certificate pacemaker keeps clocks close enough that the
     rule rarely bites. *)
  if leader ctx (view + 1) = ctx.Context.node_id && t.cur_view <= view + 1 then begin
    let count = Tally.add t.votes (view, digest) ~voter:msg.src in
    if count >= Quorum.quorum ctx.Context.n && not (Hashtbl.mem t.qc_formed view) then begin
      Hashtbl.replace t.qc_formed view ();
      let qc = { Chain.view; block = digest } in
      process_qc t ctx qc;
      enter_view t ctx ~fresh:true (view + 1);
      (* Already in a later view (clock ran ahead): still propose on the
         freshest QC if leadership matches. *)
      if leader ctx t.cur_view = ctx.Context.node_id then propose t ctx
    end
  end

let broadcast_timeout ?(force = false) t ctx view =
  if force || not (Hashtbl.mem t.sent_timeout view) then begin
    Hashtbl.replace t.sent_timeout view ();
    Context.broadcast ctx ~tag:"timeout-vote" (Timeout_vote { view })
  end

let handle_timeout_vote t ctx (msg : Message.t) ~view =
  if t.pacemaker = Timeout_certificates then begin
    let count = Tally.add t.timeout_votes view ~voter:msg.src in
    if view >= t.cur_view then begin
      (* f+1 timeouts prove an honest node is stuck: join the timeout. *)
      if count >= Quorum.one_honest ctx.Context.n then broadcast_timeout t ctx view;
      if Tally.count t.timeout_votes view >= Quorum.quorum ctx.Context.n then begin
        Context.broadcast ctx ~tag:"timeout-cert" (Timeout_cert { view });
        enter_view t ctx ~fresh:true (view + 1)
      end
    end
  end

let on_start t ctx = enter_view t ctx ~fresh:false 1

(* Cogsworth view synchronization (Naor et al.): a stuck replica asks the
   *next leader* to start the next view (linear communication); the leader
   relays once it holds f+1 requests, which proves an honest replica is
   stuck and lets every honest replica jump within one message delay. *)
let handle_sync_request t ctx (msg : Message.t) ~view =
  if t.pacemaker = Cogsworth && leader ctx view = ctx.Context.node_id then begin
    let count = Tally.add t.sync_requests view ~voter:msg.src in
    if count >= Quorum.one_honest ctx.Context.n && view > t.cur_view then begin
      Context.broadcast ctx ~tag:"sync-advance" (Sync_advance { view });
      enter_view t ctx ~fresh:true view
    end
  end

let on_message t ctx (msg : Message.t) =
  match msg.payload with
  | Proposal { block } -> handle_proposal t ctx msg block
  | Vote { view; digest } -> handle_vote t ctx msg ~view ~digest
  | Timeout_vote { view } -> handle_timeout_vote t ctx msg ~view
  | Timeout_cert { view } ->
    if t.pacemaker = Timeout_certificates && view >= t.cur_view then
      enter_view t ctx ~fresh:true (view + 1)
  | Sync_request { view } -> handle_sync_request t ctx msg ~view
  | Sync_advance { view } ->
    if t.pacemaker = Cogsworth && msg.src = leader ctx view then enter_view t ctx ~fresh:true view
  | _ -> ()

let on_timer t ctx (timer : Timer.t) =
  match timer.payload with
  | View_timer { view } when view = t.cur_view -> (
    t.timeouts <- t.timeouts + 1;
    match t.pacemaker with
    | Naive_doubling ->
      (* Unilateral advance with doubled duration; never resets. *)
      enter_view t ctx ~fresh:false (t.cur_view + 1)
    | Timeout_certificates | Cogsworth ->
      (* Stay in the view, (re-)signal the pacemaker and re-arm at the base
         cadence so the signal keeps flowing until the view can change —
         this is what bounds recovery once a partition heals. *)
      (match t.pacemaker with
      | Timeout_certificates -> broadcast_timeout ~force:true t ctx t.cur_view
      | Naive_doubling | Cogsworth ->
        (* Cogsworth: ask a later leader to start its view; consecutive
           timeouts escalate the target so a stretch of crashed leaders is
           skipped (the k-th timeout asks leader(v + k)). *)
        let target = t.cur_view + Stdlib.max 1 t.timeouts in
        Context.send ctx ~dst:(leader ctx target) ~tag:"sync-request"
          (Sync_request { view = target }));
      Option.iter ctx.Context.cancel_timer t.timer;
      let id =
        ctx.Context.set_timer
          ~delay_ms:(base_view_factor *. ctx.Context.lambda_ms)
          ~tag:"view-timer"
          (View_timer { view = t.cur_view })
      in
      t.timer <- Some id)
  | _ -> ()

let () =
  Message.register_printer (function
    | Proposal { block } -> Some (Format.asprintf "Proposal(%a)" Chain.pp_block block)
    | Vote { view; digest } -> Some (Printf.sprintf "Vote(v=%d,%s)" view digest)
    | Timeout_vote { view } -> Some (Printf.sprintf "TimeoutVote(v=%d)" view)
    | Timeout_cert { view } -> Some (Printf.sprintf "TC(v=%d)" view)
    | Sync_request { view } -> Some (Printf.sprintf "SyncReq(v=%d)" view)
    | Sync_advance { view } -> Some (Printf.sprintf "SyncAdv(v=%d)" view)
    | _ -> None)
