open Bftsim_sim
open Bftsim_net

type pacemaker = Naive_doubling | Timeout_certificates | Cogsworth

type Message.payload +=
  | Proposal of { block : Chain.block }
  | Vote of { view : int; digest : string }
  | Timeout_vote of { view : int }
  | Timeout_cert of { view : int }
  | Sync_request of { view : int }
      (** Cogsworth: unicast plea to the leader of [view] to start it. *)
  | Sync_advance of { view : int }
      (** Cogsworth: the leader's relay moving everyone to [view]. *)
  | Catchup_req of { last_committed : string }
      (** A restarted replica asks its peers for the blocks it missed,
          naming the last block its WAL proves committed. *)
  | Catchup_resp of {
      blocks : Chain.block list;
      high_qc : Chain.qc;
      view : int;
      last_committed : string;
    }
      (** Peer's reply: the chain from the requester's block up to the
          peer's freshest certified block (hash-linked, oldest first),
          plus the peer's pacemaker position. *)

type Timer.payload += View_timer of { view : int }

(* A view must fit a proposal broadcast plus a vote flight, so the base
   timeout is twice the assumed delay bound. *)
let base_view_factor = 2.0

type node = {
  pacemaker : pacemaker;
  store : Chain.store;
  mutable cur_view : int;
  mutable high_qc : Chain.qc;
  mutable locked : Chain.qc;
  mutable last_committed : string;
  mutable timeouts : int;
  mutable timer : Timer.id option;
  votes : (int * string) Tally.t;
  timeout_votes : int Tally.t;
  sync_requests : int Tally.t;
  voted : (int, unit) Hashtbl.t;
  proposed : (int, unit) Hashtbl.t;
  qc_formed : (int, unit) Hashtbl.t;
  sent_timeout : (int, unit) Hashtbl.t;
  (* Proposals for views this node has not entered yet (e.g. the proposal
     raced ahead of the pacemaker's view-change message); re-examined on
     view entry. *)
  pending_proposals : (int, Chain.block) Hashtbl.t;
  mutable committed : int;
  (* Set between [on_restart] and the first applied catch-up response;
     volatile by design — a second restart restarts the catch-up. *)
  mutable recovering : bool;
}

let create pacemaker _ctx =
  {
    pacemaker;
    store = Chain.create ();
    cur_view = 0;
    high_qc = Chain.genesis_qc;
    locked = Chain.genesis_qc;
    last_committed = Chain.genesis.digest;
    timeouts = 0;
    timer = None;
    votes = Tally.create ();
    timeout_votes = Tally.create ();
    sync_requests = Tally.create ();
    voted = Hashtbl.create 64;
    proposed = Hashtbl.create 64;
    qc_formed = Hashtbl.create 64;
    sent_timeout = Hashtbl.create 64;
    pending_proposals = Hashtbl.create 64;
    committed = 0;
    recovering = false;
  }

(* Simulated-WAL records (written only when the run models restarts, see
   [Context.durable]): enough state to neither double-vote nor re-decide
   after losing everything volatile.  Blocks themselves are not persisted —
   the restarted replica re-fetches them from peers. *)
let wal_qc_to_string (qc : Chain.qc) = Printf.sprintf "%d %s" qc.Chain.view qc.Chain.block

let wal_qc_of_string s =
  match String.index_opt s ' ' with
  | Some i ->
    {
      Chain.view = int_of_string (String.sub s 0 i);
      block = String.sub s (i + 1) (String.length s - i - 1);
    }
  | None -> Chain.genesis_qc

let current_view t = t.cur_view

let timeout_count t = t.timeouts

let committed_count t = t.committed

let leader ctx view = Context.leader_round_robin ctx ~view

(* HotStuff+NS uses the naive view-doubling synchronizer (Naor et al.): the
   view timeout doubles on every local timeout.  The per-run configuration
   (Config.naive_reset, surfaced as BFTSIM_NAIVE_RESET / the naive_reset
   config key) selects when (if ever) the back-off resets — "commit"
   (default) resets on every local commit, "never" keeps growing, "view"
   derives the budget from the view number itself.  LibraBFT's pacemaker
   doubles per consecutive timeout and resets on any progress. *)
type naive_reset_policy = Context.naive_reset_policy =
  | Reset_on_commit
  | Never_reset
  | Per_view_number

let view_duration_ms t ctx =
  let exponent =
    match t.pacemaker with
    | Naive_doubling -> (
      match ctx.Context.naive_reset with
      | Per_view_number -> Stdlib.min t.cur_view 24
      | Reset_on_commit | Never_reset -> Stdlib.min t.timeouts 24)
    | Timeout_certificates | Cogsworth -> Stdlib.min t.timeouts 24
  in
  base_view_factor *. ctx.Context.lambda_ms *. (2. ** float_of_int exponent)

let restart_timer t ctx =
  Option.iter ctx.Context.cancel_timer t.timer;
  let id =
    ctx.Context.set_timer ~delay_ms:(view_duration_ms t ctx) ~tag:"view-timer"
      (View_timer { view = t.cur_view })
  in
  t.timer <- Some id

let propose t ctx =
  if not (Hashtbl.mem t.proposed t.cur_view) then
    match Chain.find t.store t.high_qc.Chain.block with
    | None -> ()
    | Some _ ->
      let view = t.cur_view in
      Hashtbl.replace t.proposed view ();
      (* Chained protocols are natively pipelined — one block per view, each
         carrying the QC for its parent — so the whole pipeline window rides
         a single block: ask the workload for a payload [width] batches
         wide.  Without a workload the continuation runs immediately with
         the synthetic default and the block is byte-identical to the
         pre-hook behavior. *)
      ctx.Context.request_proposal ~slot:view ~width:ctx.Context.pipeline_depth
        ~default:{ Context.value = ""; size = 512 }
        (fun (p : Context.proposal) ->
          (* A deferred batch may fire after the pacemaker moved on; the
             parent/justify are re-resolved at fire time, and a stale view
             returns [false] so the workload re-queues the batch. *)
          if t.cur_view = view && Context.is_leader_round_robin ctx ~view then
            match Chain.find t.store t.high_qc.Chain.block with
            | None -> false
            | Some parent ->
              let block =
                Chain.make_block ~payload:p.Context.value ~view ~parent ~justify:t.high_qc
                  ~proposer:ctx.Context.node_id ()
              in
              Chain.add t.store block;
              Context.broadcast ctx ~tag:"proposal" ~size:p.Context.size (Proposal { block });
              true
          else false)

(* Commit rule: a QC heading a three-chain of consecutive views commits the
   tail block and all its uncommitted ancestors, in chain order — each one
   is a decided value reported to the controller. *)
let try_commit t ctx qc =
  match Chain.three_chain_tail t.store qc with
  | None -> ()
  | Some b3 ->
    if
      (not (String.equal b3.Chain.digest t.last_committed))
      && Chain.extends t.store b3 ~ancestor:t.last_committed
    then begin
      let newly = Chain.chain_between t.store ~after:t.last_committed ~upto:b3 in
      List.iter
        (fun (b : Chain.block) ->
          t.committed <- t.committed + 1;
          (* A workload batch decides by its batch name so the driver can
             match commits; synthetic blocks keep deciding their digest. *)
          ctx.Context.decide (if b.Chain.payload = "" then b.Chain.digest else b.Chain.payload))
        newly;
      t.last_committed <- b3.Chain.digest;
      if ctx.Context.durable then begin
        ctx.Context.persist ~key:"lc" t.last_committed;
        ctx.Context.persist ~key:"n" (string_of_int t.committed)
      end;
      if t.pacemaker = Naive_doubling && ctx.Context.naive_reset = Reset_on_commit then
        t.timeouts <- 0
    end

let process_qc t ctx (qc : Chain.qc) =
  if qc.view > t.high_qc.Chain.view then begin
    t.high_qc <- qc;
    if ctx.Context.durable then ctx.Context.persist ~key:"hq" (wal_qc_to_string qc)
  end;
  (match Chain.find t.store qc.block with
  | Some b1 ->
    if b1.justify.view > t.locked.Chain.view then begin
      t.locked <- b1.justify;
      if ctx.Context.durable then ctx.Context.persist ~key:"lk" (wal_qc_to_string b1.justify)
    end
  | None -> ());
  try_commit t ctx qc

let vote_for t ctx (b : Chain.block) =
  Hashtbl.replace t.voted b.view ();
  (* Votes happen only in the current view and views never rewind, so the
     highest voted view is the only one a restarted replica could be asked
     to re-vote in — persisting it is enough to rule out equivocation. *)
  if ctx.Context.durable then ctx.Context.persist ~key:"voted" (string_of_int b.view);
  Context.send ctx
    ~dst:(leader ctx (b.view + 1))
    ~tag:"vote"
    (Vote { view = b.view; digest = b.digest })

let safe_to_vote t (b : Chain.block) =
  b.justify.view > t.locked.Chain.view || Chain.extends t.store b ~ancestor:t.locked.Chain.block

(* On entering a view, act on a proposal that arrived before we did. *)
let vote_pending t ctx =
  match Hashtbl.find_opt t.pending_proposals t.cur_view with
  | Some b when (not (Hashtbl.mem t.voted b.view)) && safe_to_vote t b -> vote_for t ctx b
  | Some _ | None -> ()

(* [fresh] marks entry through protocol progress (a QC or TC) rather than a
   local timeout; LibraBFT's pacemaker resets its back-off on progress,
   the naive synchronizer never does. *)
let enter_view t ctx ~fresh view =
  if view > t.cur_view then begin
    t.cur_view <- view;
    if ctx.Context.durable then ctx.Context.persist ~key:"v" (string_of_int view);
    if fresh && (t.pacemaker = Timeout_certificates || t.pacemaker = Cogsworth) then
      t.timeouts <- 0;
    restart_timer t ctx;
    if leader ctx view = ctx.Context.node_id then propose t ctx;
    vote_pending t ctx
  end

let handle_proposal t ctx (msg : Message.t) (b : Chain.block) =
  if msg.src = leader ctx b.view then begin
    Chain.add t.store b;
    if b.view > t.cur_view then Hashtbl.replace t.pending_proposals b.view b;
    process_qc t ctx b.justify;
    (* Optimistic responsiveness: a proposal carrying a QC for the directly
       preceding view proves that view succeeded, so jump to the proposal's
       view without waiting for the timer. *)
    if b.view > t.cur_view && b.justify.view = b.view - 1 then enter_view t ctx ~fresh:true b.view;
    if b.view = t.cur_view && (not (Hashtbl.mem t.voted b.view)) && safe_to_vote t b then
      vote_for t ctx b
  end

let handle_vote t ctx (msg : Message.t) ~view ~digest =
  (* Staleness: the leader of view v+1 aggregates votes of view v only
     while its own view clock has not moved past v+1; later votes belong to
     a view it is no longer responsible for.  Under the naive synchronizer
     this is what turns clock divergence into failed views (Figs. 5, 9) —
     the timeout-certificate pacemaker keeps clocks close enough that the
     rule rarely bites. *)
  if leader ctx (view + 1) = ctx.Context.node_id && t.cur_view <= view + 1 then begin
    let count = Tally.add t.votes (view, digest) ~voter:msg.src in
    if count >= Quorum.quorum ctx.Context.n && not (Hashtbl.mem t.qc_formed view) then begin
      Hashtbl.replace t.qc_formed view ();
      let qc = { Chain.view; block = digest } in
      process_qc t ctx qc;
      enter_view t ctx ~fresh:true (view + 1);
      (* Already in a later view (clock ran ahead): still propose on the
         freshest QC if leadership matches. *)
      if leader ctx t.cur_view = ctx.Context.node_id then propose t ctx
    end
  end

let broadcast_timeout ?(force = false) t ctx view =
  if force || not (Hashtbl.mem t.sent_timeout view) then begin
    Hashtbl.replace t.sent_timeout view ();
    Context.broadcast ctx ~tag:"timeout-vote" (Timeout_vote { view })
  end

let handle_timeout_vote t ctx (msg : Message.t) ~view =
  if t.pacemaker = Timeout_certificates then begin
    let count = Tally.add t.timeout_votes view ~voter:msg.src in
    if view >= t.cur_view then begin
      (* f+1 timeouts prove an honest node is stuck: join the timeout. *)
      if count >= Quorum.one_honest ctx.Context.n then broadcast_timeout t ctx view;
      if Tally.count t.timeout_votes view >= Quorum.quorum ctx.Context.n then begin
        Context.broadcast ctx ~tag:"timeout-cert" (Timeout_cert { view });
        enter_view t ctx ~fresh:true (view + 1)
      end
    end
  end

let on_start t ctx = enter_view t ctx ~fresh:false 1

(* --- Crash-recovery: WAL rehydration + block transfer ------------------- *)

(* A peer answers a catch-up request with the hash-linked chain from the
   requester's last committed block up to the peer's freshest certified
   block — not just its own commit frontier, because the requester also
   needs the uncommitted two-chain head to resume committing. *)
let handle_catchup_req t ctx (msg : Message.t) ~last_committed =
  if msg.Message.src <> ctx.Context.node_id then begin
    let tip =
      match Chain.find t.store t.high_qc.Chain.block with
      | Some b -> Some b
      | None -> Chain.find t.store t.last_committed
    in
    match tip with
    | None -> ()
    | Some tip ->
      let blocks = Chain.chain_between t.store ~after:last_committed ~upto:tip in
      Context.send ctx ~dst:msg.Message.src ~tag:"catchup-resp"
        ~size:(256 + (512 * List.length blocks))
        (Catchup_resp
           { blocks; high_qc = t.high_qc; view = t.cur_view; last_committed = t.last_committed })
  end

(* Trust model: a response is accepted iff its blocks are internally
   hash-linked (each block names its predecessor's digest and carries its
   QC).  Digests commit to all block fields, so a single honest response
   suffices; a malformed one is discarded whole.  Only blocks extending the
   replica's own committed prefix up to the *peer's* committed frontier are
   decided — everything else just fills the store. *)
let apply_catchup t ctx ~blocks ~(high_qc : Chain.qc) ~view ~last_committed =
  let rec linked = function
    | [] | [ _ ] -> true
    | (a : Chain.block) :: (b : Chain.block) :: rest ->
      String.equal b.Chain.parent a.Chain.digest
      && String.equal b.Chain.justify.Chain.block a.Chain.digest
      && linked (b :: rest)
  in
  if linked blocks then begin
    List.iter (Chain.add t.store) blocks;
    (match Chain.find t.store last_committed with
    | Some peer_tip
      when (not (String.equal peer_tip.Chain.digest t.last_committed))
           && Chain.extends t.store peer_tip ~ancestor:t.last_committed ->
      let newly = Chain.chain_between t.store ~after:t.last_committed ~upto:peer_tip in
      List.iter
        (fun (b : Chain.block) ->
          t.committed <- t.committed + 1;
          ctx.Context.decide (if b.Chain.payload = "" then b.Chain.digest else b.Chain.payload))
        newly;
      t.last_committed <- peer_tip.Chain.digest;
      if ctx.Context.durable then begin
        ctx.Context.persist ~key:"lc" t.last_committed;
        ctx.Context.persist ~key:"n" (string_of_int t.committed)
      end
    | Some _ | None -> ());
    if high_qc.Chain.view > t.high_qc.Chain.view then begin
      t.high_qc <- high_qc;
      if ctx.Context.durable then ctx.Context.persist ~key:"hq" (wal_qc_to_string high_qc)
    end;
    if view > t.cur_view then enter_view t ctx ~fresh:true view;
    if t.recovering then begin
      t.recovering <- false;
      ctx.Context.on_caught_up ()
    end
  end

let on_restart t ctx =
  t.recovering <- true;
  if ctx.Context.durable then begin
    (match ctx.Context.recall ~key:"lc" with Some d -> t.last_committed <- d | None -> ());
    (match ctx.Context.recall ~key:"n" with
    | Some s -> t.committed <- int_of_string s
    | None -> ());
    (match ctx.Context.recall ~key:"hq" with
    | Some s -> t.high_qc <- wal_qc_of_string s
    | None -> ());
    (match ctx.Context.recall ~key:"lk" with
    | Some s -> t.locked <- wal_qc_of_string s
    | None -> ());
    match ctx.Context.recall ~key:"voted" with
    | Some s -> Hashtbl.replace t.voted (int_of_string s) ()
    | None -> ()
  end;
  let resume_view =
    match if ctx.Context.durable then ctx.Context.recall ~key:"v" else None with
    | Some s -> Stdlib.max 1 (int_of_string s)
    | None -> 1
  in
  Context.broadcast ctx ~include_self:false ~tag:"catchup-req"
    (Catchup_req { last_committed = t.last_committed });
  enter_view t ctx ~fresh:false resume_view

(* Cogsworth view synchronization (Naor et al.): a stuck replica asks the
   *next leader* to start the next view (linear communication); the leader
   relays once it holds f+1 requests, which proves an honest replica is
   stuck and lets every honest replica jump within one message delay. *)
let handle_sync_request t ctx (msg : Message.t) ~view =
  if t.pacemaker = Cogsworth && leader ctx view = ctx.Context.node_id then begin
    let count = Tally.add t.sync_requests view ~voter:msg.src in
    if count >= Quorum.one_honest ctx.Context.n && view > t.cur_view then begin
      Context.broadcast ctx ~tag:"sync-advance" (Sync_advance { view });
      enter_view t ctx ~fresh:true view
    end
  end

let on_message t ctx (msg : Message.t) =
  match msg.payload with
  | Proposal { block } -> handle_proposal t ctx msg block
  | Vote { view; digest } -> handle_vote t ctx msg ~view ~digest
  | Timeout_vote { view } -> handle_timeout_vote t ctx msg ~view
  | Timeout_cert { view } ->
    if t.pacemaker = Timeout_certificates && view >= t.cur_view then
      enter_view t ctx ~fresh:true (view + 1)
  | Sync_request { view } -> handle_sync_request t ctx msg ~view
  | Sync_advance { view } ->
    if t.pacemaker = Cogsworth && msg.src = leader ctx view then enter_view t ctx ~fresh:true view
  | Catchup_req { last_committed } -> handle_catchup_req t ctx msg ~last_committed
  | Catchup_resp { blocks; high_qc; view; last_committed } ->
    apply_catchup t ctx ~blocks ~high_qc ~view ~last_committed
  | _ -> ()

let on_timer t ctx (timer : Timer.t) =
  match timer.payload with
  | View_timer { view } when view = t.cur_view -> (
    t.timeouts <- t.timeouts + 1;
    match t.pacemaker with
    | Naive_doubling ->
      (* Unilateral advance with doubled duration; never resets. *)
      enter_view t ctx ~fresh:false (t.cur_view + 1)
    | Timeout_certificates | Cogsworth ->
      (* Stay in the view, (re-)signal the pacemaker and re-arm at the base
         cadence so the signal keeps flowing until the view can change —
         this is what bounds recovery once a partition heals. *)
      (match t.pacemaker with
      | Timeout_certificates -> broadcast_timeout ~force:true t ctx t.cur_view
      | Naive_doubling | Cogsworth ->
        (* Cogsworth: ask a later leader to start its view; consecutive
           timeouts escalate the target so a stretch of crashed leaders is
           skipped (the k-th timeout asks leader(v + k)). *)
        let target = t.cur_view + Stdlib.max 1 t.timeouts in
        Context.send ctx ~dst:(leader ctx target) ~tag:"sync-request"
          (Sync_request { view = target }));
      Option.iter ctx.Context.cancel_timer t.timer;
      let id =
        ctx.Context.set_timer
          ~delay_ms:(base_view_factor *. ctx.Context.lambda_ms)
          ~tag:"view-timer"
          (View_timer { view = t.cur_view })
      in
      t.timer <- Some id)
  | _ -> ()

let () =
  Message.register_printer (function
    | Proposal { block } -> Some (Format.asprintf "Proposal(%a)" Chain.pp_block block)
    | Vote { view; digest } -> Some (Printf.sprintf "Vote(v=%d,%s)" view digest)
    | Timeout_vote { view } -> Some (Printf.sprintf "TimeoutVote(v=%d)" view)
    | Timeout_cert { view } -> Some (Printf.sprintf "TC(v=%d)" view)
    | Sync_request { view } -> Some (Printf.sprintf "SyncReq(v=%d)" view)
    | Sync_advance { view } -> Some (Printf.sprintf "SyncAdv(v=%d)" view)
    | Catchup_req { last_committed } -> Some (Printf.sprintf "CatchupReq(%s)" last_committed)
    | Catchup_resp { blocks; view; _ } ->
      Some (Printf.sprintf "CatchupResp(%d blocks,v=%d)" (List.length blocks) view)
    | _ -> None)
