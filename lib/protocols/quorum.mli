(** Quorum arithmetic shared by every protocol.

    With [n] nodes of which at most [f] are faulty, BFT protocols rely on
    two thresholds: a {e quorum} of [n - f] (any two quorums intersect in an
    honest node when [n > 3f]) and [f + 1] (at least one honest node).  The
    experiments run configurations like [n = 16] that are not of the tight
    [3f + 1] form, so thresholds are computed from [n] alone via the maximal
    tolerable [f]. *)

val max_faulty : int -> int
(** [max_faulty n] is [(n - 1) / 3], the largest [f] with [n > 3f]. *)

val quorum : int -> int
(** [quorum n = n - max_faulty n]; e.g. 11 for [n = 16]. *)

val one_honest : int -> int
(** [one_honest n = max_faulty n + 1]: any such set contains an honest node. *)

val supermajority : int -> int
(** [2 f + 1] for [f = max_faulty n] — Algorand's certification threshold. *)

val check : n:int -> f:int -> unit
(** @raise Invalid_argument unless [0 <= f] and [n > 3 f]. *)

(** {2 Mutation-testing hook}

    The conformance harness's value rests on actually catching bugs, so a
    known quorum-arithmetic bug can be injected on demand and the harness
    asserted to flag it (the CI mutation-smoke step).  Exactly one mutation
    exists today: *)

type mutation =
  | Quorum_minus_one
      (** [quorum n] returns one vote too few — quorums may no longer
          intersect in an honest node, the classic off-by-one that breaks
          agreement without affecting liveness. *)

val set_mutation : mutation option -> unit
(** Activate/clear the injected bug (process-global, tests only). *)

val mutation : unit -> mutation option
(** The active mutation; seeded from the [BFTSIM_MUTATE] environment
    variable ([quorum-minus-one]) at startup. *)

val mutation_of_string : string -> mutation option

val mutation_to_string : mutation -> string
