open Bftsim_sim
open Bftsim_net

type Message.payload +=
  | Pre_prepare of { view : int; slot : int; value : string }
  | Prepare of { view : int; slot : int; value : string }
  | Commit of { view : int; slot : int; value : string }
  | View_change of { new_view : int }
  | New_view of { view : int; slot : int; value : string }
  | State_req of { slot : int }
      (** A restarted replica asks peers for decisions from [slot] on. *)
  | State_resp of { view : int; decided : (int * string) list }
      (** Peer's reply: its view and its decided slots at or above the
          requested one, in slot order. *)

type Timer.payload += Progress of { view : int; slot : int }

let name = "pbft"

let model = Protocol_intf.Partially_synchronous

let pipelined = false

(* The view-change timeout starts at [base_timeout_factor * lambda] and
   doubles on every view change, as the paper describes PBFT's adaptation to
   partial synchrony ("doubling its timeout every time it changes its
   view"). *)
let base_timeout_factor = 2.0

type node = {
  mutable view : int;
  mutable slot : int;  (** Lowest undecided slot. *)
  mutable timeouts : int;  (** View changes since the last decision. *)
  mutable timer : Timer.id option;
  prepares : (int * int * string) Tally.t;
  commits : (int * int * string) Tally.t;
  view_changes : int Tally.t;
  accepted : (int * int, string) Hashtbl.t;  (** (view, slot) -> pre-prepared value. *)
  proposals : (int * int, string) Hashtbl.t;
      (** Every proposal seen from a valid primary, buffered so a node that
          is still deciding slot [s] can pick up the pre-prepare for [s+1]
          once it advances. *)
  sent_prepare : (int * int, unit) Hashtbl.t;
  sent_commit : (int * int, unit) Hashtbl.t;
  requested : (int * int, unit) Hashtbl.t;
      (** (view, slot) pairs whose proposal payload this primary already
          asked the workload hook for; guards against double proposing when
          the pipeline window slides. *)
  decided : (int, string) Hashtbl.t;
  state_votes : (int * string) Tally.t;
      (** Catch-up confirmations: a (slot, value) claimed decided by f+1
          distinct peers is decided (at least one of them is honest). *)
  recovery_views : (int, int) Hashtbl.t;  (** responder -> reported view. *)
  mutable recovering : bool;
  mutable gap_req : int;
      (** Highest frontier slot for which this replica already broadcast a
          gap-filling [State_req]; throttles the fetch to once per stall. *)
}

let create _ctx =
  {
    view = 0;
    slot = 1;
    timeouts = 0;
    timer = None;
    prepares = Tally.create ();
    commits = Tally.create ();
    view_changes = Tally.create ();
    accepted = Hashtbl.create 64;
    proposals = Hashtbl.create 64;
    sent_prepare = Hashtbl.create 64;
    sent_commit = Hashtbl.create 64;
    requested = Hashtbl.create 64;
    decided = Hashtbl.create 64;
    state_votes = Tally.create ();
    recovery_views = Hashtbl.create 8;
    recovering = false;
    gap_req = 0;
  }

let primary ctx view = Context.leader_round_robin ctx ~view

let proposal_value ctx slot = Printf.sprintf "%s/slot%d" ctx.Context.input slot

let timeout_ms ctx t = base_timeout_factor *. ctx.Context.lambda_ms *. (2. ** float_of_int t.timeouts)

let restart_timer t ctx =
  Option.iter ctx.Context.cancel_timer t.timer;
  let id =
    ctx.Context.set_timer ~delay_ms:(timeout_ms ctx t) ~tag:"pbft-progress"
      (Progress { view = t.view; slot = t.slot })
  in
  t.timer <- Some id

(* The primary proposes every slot in the pipeline window
   [t.slot .. t.slot + depth - 1] it has not proposed yet.  Payloads come
   through the workload hook: with no workload the continuation fires
   immediately with the default value, reproducing the classic single-shot
   behavior message for message; with one, the callback may arrive later
   (once a batch is cut) and must re-check that the view has not moved on. *)
let propose t ctx =
  if primary ctx t.view = ctx.Context.node_id then begin
    let view = t.view in
    for slot = t.slot to t.slot + ctx.Context.pipeline_depth - 1 do
      if not (Hashtbl.mem t.requested (view, slot)) then begin
        Hashtbl.replace t.requested (view, slot) ();
        let default = { Context.value = proposal_value ctx slot; size = 256 } in
        ctx.Context.request_proposal ~slot ~width:1 ~default (fun proposal ->
            if t.view = view && slot >= t.slot && primary ctx t.view = ctx.Context.node_id then begin
              Context.broadcast ctx ~tag:"pre-prepare" ~size:proposal.Context.size
                (Pre_prepare { view; slot; value = proposal.Context.value });
              true
            end
            else false)
      end
    done
  end

let on_start t ctx =
  restart_timer t ctx;
  propose t ctx

let send_prepare t ctx ~view ~slot ~value =
  if not (Hashtbl.mem t.sent_prepare (view, slot)) then begin
    Hashtbl.replace t.sent_prepare (view, slot) ();
    Context.broadcast ctx ~tag:"prepare" (Prepare { view; slot; value })
  end

(* A proposal is actionable when it falls inside the pipeline window
   [t.slot .. t.slot + depth - 1]; with depth 1 that degenerates to the
   classic "current slot only" rule. *)
let in_window t ctx slot = slot >= t.slot && slot < t.slot + ctx.Context.pipeline_depth

let accept_proposal t ctx ~view ~slot ~value =
  Hashtbl.replace t.proposals (view, slot) value;
  if view = t.view && in_window t ctx slot && not (Hashtbl.mem t.accepted (view, slot)) then begin
    Hashtbl.replace t.accepted (view, slot) value;
    send_prepare t ctx ~view ~slot ~value
  end

(* After advancing slot or view, adopt any buffered proposal that slid into
   the window. *)
let catch_up t ctx =
  for slot = t.slot to t.slot + ctx.Context.pipeline_depth - 1 do
    match Hashtbl.find_opt t.proposals (t.view, slot) with
    | Some value when not (Hashtbl.mem t.accepted (t.view, slot)) ->
      Hashtbl.replace t.accepted (t.view, slot) value;
      send_prepare t ctx ~view:t.view ~slot ~value
    | _ -> ()
  done

(* Entering a view resets the progress timer (with its doubled duration);
   the new primary re-proposes the pending slot.  Only a value backed by a
   prepared *certificate* (a prepare quorum it observed) may be carried
   over — a value merely pre-prepared by the old primary could be one side
   of an equivocation and must not survive the view change. *)
let prepared_certificate t ctx ~slot ~below_view =
  let candidates = Tally.keys t.prepares in
  List.find_map
    (fun (v, s, value) ->
      if
        s = slot && v < below_view
        && Tally.count t.prepares (v, s, value) >= Quorum.quorum ctx.Context.n
      then Some (v, value)
      else None)
    (List.sort (fun (a, _, _) (b, _, _) -> compare b a) candidates)

let enter_view t ctx new_view =
  t.view <- new_view;
  if ctx.Context.durable then ctx.Context.persist ~key:"view" (string_of_int new_view);
  restart_timer t ctx;
  if primary ctx t.view = ctx.Context.node_id then begin
    let value =
      match prepared_certificate t ctx ~slot:t.slot ~below_view:new_view with
      | Some (_, value) -> value
      | None -> proposal_value ctx t.slot
    in
    Context.broadcast ctx ~tag:"new-view" ~size:512
      (New_view { view = t.view; slot = t.slot; value })
  end

let start_view_change t ctx ~first =
  if first then t.timeouts <- t.timeouts + 1;
  let target = t.view + 1 in
  Context.broadcast ctx ~tag:"view-change" (View_change { new_view = target });
  (* The doubled timeout decides when to *start* a view change; while one
     is pending, the vote is re-broadcast at a fixed cadence so it survives
     loss (e.g. across a partition heal) without an exponential overhang. *)
  Option.iter ctx.Context.cancel_timer t.timer;
  let delay_ms =
    if first then timeout_ms ctx t else base_timeout_factor *. ctx.Context.lambda_ms
  in
  let id =
    ctx.Context.set_timer ~delay_ms ~tag:"pbft-progress" (Progress { view = t.view; slot = t.slot })
  in
  t.timer <- Some id

(* WAL records (written only when the run models restarts): every decided
   slot ([d<k>], plus the high-water mark [dmax]), the lowest unreported
   slot ([slot]) and the view — enough for a restarted replica to neither
   re-report a decision nor regress its slot/view. *)
let persist_decided ctx ~slot ~value =
  if ctx.Context.durable then begin
    ctx.Context.persist ~key:(Printf.sprintf "d%d" slot) value;
    let prev =
      match ctx.Context.recall ~key:"dmax" with Some s -> int_of_string s | None -> 0
    in
    if slot > prev then ctx.Context.persist ~key:"dmax" (string_of_int slot)
  end

let try_decide t ctx ~slot ~value =
  if not (Hashtbl.mem t.decided slot) then begin
    Hashtbl.replace t.decided slot value;
    persist_decided ctx ~slot ~value;
    if slot = t.slot then begin
      (* Commits may form out of order — across the pipeline window, or at
         depth 1 when loss/reordering starves a slot's quorum while a later
         slot's completes — but decisions must be reported in slot order:
         emit the contiguous decided prefix, holding back anything behind a
         gap.  On a loss-free run quorums complete in slot order, so this
         path reproduces the classic sequential behavior call for call. *)
      while Hashtbl.mem t.decided t.slot do
        ctx.Context.decide (Hashtbl.find t.decided t.slot);
        t.slot <- t.slot + 1
      done;
      if ctx.Context.durable then ctx.Context.persist ~key:"slot" (string_of_int t.slot);
      t.timeouts <- 0;
      restart_timer t ctx;
      propose t ctx;
      catch_up t ctx
    end
    else if t.gap_req < t.slot then begin
      (* A commit quorum completed past this replica's frontier: 2f+1 peers
         have decided every slot below [slot], so the gap's values exist and
         f+1 honest peers can vouch for them.  Fetch the missing prefix
         instead of stalling (the quorum that produced it will not re-form)
         or skipping (which would fork the decision log).  This is how both
         a loss-starved replica and one that slept through part of the run
         rejoin; throttled to one request per stuck frontier. *)
      t.gap_req <- t.slot;
      Context.broadcast ctx ~include_self:false ~tag:"state-req" (State_req { slot = t.slot })
    end
  end

(* --- Crash-recovery: WAL rehydration + slot state transfer -------------- *)

let handle_state_req t ctx (msg : Message.t) ~slot =
  if msg.Message.src <> ctx.Context.node_id then begin
    let decided =
      Hashtbl.fold (fun k v acc -> if k >= slot then (k, v) :: acc else acc) t.decided []
    in
    let decided = List.sort (fun (a, _) (b, _) -> compare a b) decided in
    Context.send ctx ~dst:msg.Message.src ~tag:"state-resp"
      ~size:(128 + (64 * List.length decided))
      (State_resp { view = t.view; decided })
  end

(* Unlike the chained family, PBFT decisions are not self-certifying, so a
   restarted replica adopts a (slot, value) only once f+1 distinct peers
   claim it decided — at least one of them is honest.  The view is adopted
   the same way: the highest view that f+1 responders have reached. *)
let handle_state_resp t ctx (msg : Message.t) ~view ~decided =
  (* (slot, value) votes count whether the replica is rehydrating after a
     restart or gap-fetching after a stall: f+1 matching claims establish a
     decision either way. *)
  List.iter
    (fun (slot, value) ->
      let count = Tally.add t.state_votes (slot, value) ~voter:msg.Message.src in
      if count >= Quorum.one_honest ctx.Context.n then try_decide t ctx ~slot ~value)
    decided;
  if t.recovering then begin
    Hashtbl.replace t.recovery_views msg.Message.src view;
    let f1 = Quorum.one_honest ctx.Context.n in
    let views =
      List.sort
        (fun a b -> compare b a)
        (Hashtbl.fold (fun _ v acc -> v :: acc) t.recovery_views [])
    in
    (match List.nth_opt views (f1 - 1) with
    | Some v when v > t.view ->
      t.view <- v;
      if ctx.Context.durable then ctx.Context.persist ~key:"view" (string_of_int v);
      restart_timer t ctx;
      propose t ctx;
      catch_up t ctx
    | _ -> ());
    if List.length views >= f1 then begin
      t.recovering <- false;
      ctx.Context.on_caught_up ()
    end
  end

let on_restart t ctx =
  t.recovering <- true;
  if ctx.Context.durable then begin
    (match ctx.Context.recall ~key:"slot" with
    | Some s -> t.slot <- int_of_string s
    | None -> ());
    (match ctx.Context.recall ~key:"view" with
    | Some s -> t.view <- int_of_string s
    | None -> ());
    (* Restore the decided table so retransmitted commit quorums (and the
       contiguous-prefix reporter) cannot re-report a slot the replica
       already decided before the crash. *)
    match ctx.Context.recall ~key:"dmax" with
    | Some m ->
      for k = 1 to int_of_string m do
        match ctx.Context.recall ~key:(Printf.sprintf "d%d" k) with
        | Some v -> Hashtbl.replace t.decided k v
        | None -> ()
      done
    | None -> ()
  end;
  Context.broadcast ctx ~include_self:false ~tag:"state-req" (State_req { slot = t.slot });
  restart_timer t ctx;
  propose t ctx

let on_message t ctx (msg : Message.t) =
  match msg.payload with
  | Pre_prepare { view; slot; value } ->
    if msg.src = primary ctx view then accept_proposal t ctx ~view ~slot ~value
  | Prepare { view; slot; value } ->
    let count = Tally.add t.prepares (view, slot, value) ~voter:msg.src in
    if
      count >= Quorum.quorum ctx.Context.n
      && view = t.view
      && not (Hashtbl.mem t.sent_commit (view, slot))
    then begin
      Hashtbl.replace t.sent_commit (view, slot) ();
      Hashtbl.replace t.accepted (view, slot) value;
      Context.broadcast ctx ~tag:"commit" (Commit { view; slot; value })
    end
  | Commit { view; slot; value } ->
    let count = Tally.add t.commits (view, slot, value) ~voter:msg.src in
    if count >= Quorum.quorum ctx.Context.n then try_decide t ctx ~slot ~value
  | View_change { new_view } ->
    let count = Tally.add t.view_changes new_view ~voter:msg.src in
    if new_view > t.view then begin
      (* Amplify: f+1 view changes prove an honest node timed out. *)
      if
        count >= Quorum.one_honest ctx.Context.n
        && not (Tally.has_voted t.view_changes new_view ~voter:ctx.Context.node_id)
      then Context.broadcast ctx ~tag:"view-change" (View_change { new_view });
      if Tally.count t.view_changes new_view >= Quorum.quorum ctx.Context.n then begin
        enter_view t ctx new_view;
        catch_up t ctx
      end
    end
  | New_view { view; slot; value } ->
    if msg.src = primary ctx view && view >= t.view then begin
      if view > t.view then begin
        t.view <- view;
        if ctx.Context.durable then ctx.Context.persist ~key:"view" (string_of_int view);
        restart_timer t ctx
      end;
      Hashtbl.replace t.proposals (view, slot) value;
      if in_window t ctx slot && not (Hashtbl.mem t.accepted (view, slot)) then begin
        Hashtbl.replace t.accepted (view, slot) value;
        send_prepare t ctx ~view ~slot ~value
      end
    end
  | State_req { slot } -> handle_state_req t ctx msg ~slot
  | State_resp { view; decided } -> handle_state_resp t ctx msg ~view ~decided
  | _ -> ()

let on_timer t ctx (timer : Timer.t) =
  match timer.payload with
  | Progress { view; slot } ->
    if view = t.view && slot = t.slot && not (Hashtbl.mem t.decided slot) then begin
      let first = not (Tally.has_voted t.view_changes (t.view + 1) ~voter:ctx.Context.node_id) in
      start_view_change t ctx ~first
    end
  | _ -> ()

let view t = t.view

let () =
  Message.register_printer (function
    | Pre_prepare { view; slot; value } ->
      Some (Printf.sprintf "PrePrepare(v=%d,s=%d,%s)" view slot value)
    | Prepare { view; slot; value } -> Some (Printf.sprintf "Prepare(v=%d,s=%d,%s)" view slot value)
    | Commit { view; slot; value } -> Some (Printf.sprintf "Commit(v=%d,s=%d,%s)" view slot value)
    | View_change { new_view } -> Some (Printf.sprintf "ViewChange(v=%d)" new_view)
    | New_view { view; slot; value } ->
      Some (Printf.sprintf "NewView(v=%d,s=%d,%s)" view slot value)
    | State_req { slot } -> Some (Printf.sprintf "StateReq(s=%d)" slot)
    | State_resp { view; decided } ->
      Some (Printf.sprintf "StateResp(v=%d,%d slots)" view (List.length decided))
    | _ -> None)
