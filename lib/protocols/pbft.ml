open Bftsim_sim
open Bftsim_net

type Message.payload +=
  | Pre_prepare of { view : int; slot : int; value : string }
  | Prepare of { view : int; slot : int; value : string }
  | Commit of { view : int; slot : int; value : string }
  | View_change of { new_view : int }
  | New_view of { view : int; slot : int; value : string }

type Timer.payload += Progress of { view : int; slot : int }

let name = "pbft"

let model = Protocol_intf.Partially_synchronous

let pipelined = false

(* The view-change timeout starts at [base_timeout_factor * lambda] and
   doubles on every view change, as the paper describes PBFT's adaptation to
   partial synchrony ("doubling its timeout every time it changes its
   view"). *)
let base_timeout_factor = 2.0

type node = {
  mutable view : int;
  mutable slot : int;  (** Lowest undecided slot. *)
  mutable timeouts : int;  (** View changes since the last decision. *)
  mutable timer : Timer.id option;
  prepares : (int * int * string) Tally.t;
  commits : (int * int * string) Tally.t;
  view_changes : int Tally.t;
  accepted : (int * int, string) Hashtbl.t;  (** (view, slot) -> pre-prepared value. *)
  proposals : (int * int, string) Hashtbl.t;
      (** Every proposal seen from a valid primary, buffered so a node that
          is still deciding slot [s] can pick up the pre-prepare for [s+1]
          once it advances. *)
  sent_prepare : (int * int, unit) Hashtbl.t;
  sent_commit : (int * int, unit) Hashtbl.t;
  requested : (int * int, unit) Hashtbl.t;
      (** (view, slot) pairs whose proposal payload this primary already
          asked the workload hook for; guards against double proposing when
          the pipeline window slides. *)
  decided : (int, string) Hashtbl.t;
}

let create _ctx =
  {
    view = 0;
    slot = 1;
    timeouts = 0;
    timer = None;
    prepares = Tally.create ();
    commits = Tally.create ();
    view_changes = Tally.create ();
    accepted = Hashtbl.create 64;
    proposals = Hashtbl.create 64;
    sent_prepare = Hashtbl.create 64;
    sent_commit = Hashtbl.create 64;
    requested = Hashtbl.create 64;
    decided = Hashtbl.create 64;
  }

let primary ctx view = Context.leader_round_robin ctx ~view

let proposal_value ctx slot = Printf.sprintf "%s/slot%d" ctx.Context.input slot

let timeout_ms ctx t = base_timeout_factor *. ctx.Context.lambda_ms *. (2. ** float_of_int t.timeouts)

let restart_timer t ctx =
  Option.iter ctx.Context.cancel_timer t.timer;
  let id =
    ctx.Context.set_timer ~delay_ms:(timeout_ms ctx t) ~tag:"pbft-progress"
      (Progress { view = t.view; slot = t.slot })
  in
  t.timer <- Some id

(* The primary proposes every slot in the pipeline window
   [t.slot .. t.slot + depth - 1] it has not proposed yet.  Payloads come
   through the workload hook: with no workload the continuation fires
   immediately with the default value, reproducing the classic single-shot
   behavior message for message; with one, the callback may arrive later
   (once a batch is cut) and must re-check that the view has not moved on. *)
let propose t ctx =
  if primary ctx t.view = ctx.Context.node_id then begin
    let view = t.view in
    for slot = t.slot to t.slot + ctx.Context.pipeline_depth - 1 do
      if not (Hashtbl.mem t.requested (view, slot)) then begin
        Hashtbl.replace t.requested (view, slot) ();
        let default = { Context.value = proposal_value ctx slot; size = 256 } in
        ctx.Context.request_proposal ~slot ~width:1 ~default (fun proposal ->
            if t.view = view && slot >= t.slot && primary ctx t.view = ctx.Context.node_id then begin
              Context.broadcast ctx ~tag:"pre-prepare" ~size:proposal.Context.size
                (Pre_prepare { view; slot; value = proposal.Context.value });
              true
            end
            else false)
      end
    done
  end

let on_start t ctx =
  restart_timer t ctx;
  propose t ctx

let send_prepare t ctx ~view ~slot ~value =
  if not (Hashtbl.mem t.sent_prepare (view, slot)) then begin
    Hashtbl.replace t.sent_prepare (view, slot) ();
    Context.broadcast ctx ~tag:"prepare" (Prepare { view; slot; value })
  end

(* A proposal is actionable when it falls inside the pipeline window
   [t.slot .. t.slot + depth - 1]; with depth 1 that degenerates to the
   classic "current slot only" rule. *)
let in_window t ctx slot = slot >= t.slot && slot < t.slot + ctx.Context.pipeline_depth

let accept_proposal t ctx ~view ~slot ~value =
  Hashtbl.replace t.proposals (view, slot) value;
  if view = t.view && in_window t ctx slot && not (Hashtbl.mem t.accepted (view, slot)) then begin
    Hashtbl.replace t.accepted (view, slot) value;
    send_prepare t ctx ~view ~slot ~value
  end

(* After advancing slot or view, adopt any buffered proposal that slid into
   the window. *)
let catch_up t ctx =
  for slot = t.slot to t.slot + ctx.Context.pipeline_depth - 1 do
    match Hashtbl.find_opt t.proposals (t.view, slot) with
    | Some value when not (Hashtbl.mem t.accepted (t.view, slot)) ->
      Hashtbl.replace t.accepted (t.view, slot) value;
      send_prepare t ctx ~view:t.view ~slot ~value
    | _ -> ()
  done

(* Entering a view resets the progress timer (with its doubled duration);
   the new primary re-proposes the pending slot.  Only a value backed by a
   prepared *certificate* (a prepare quorum it observed) may be carried
   over — a value merely pre-prepared by the old primary could be one side
   of an equivocation and must not survive the view change. *)
let prepared_certificate t ctx ~slot ~below_view =
  let candidates = Tally.keys t.prepares in
  List.find_map
    (fun (v, s, value) ->
      if
        s = slot && v < below_view
        && Tally.count t.prepares (v, s, value) >= Quorum.quorum ctx.Context.n
      then Some (v, value)
      else None)
    (List.sort (fun (a, _, _) (b, _, _) -> compare b a) candidates)

let enter_view t ctx new_view =
  t.view <- new_view;
  restart_timer t ctx;
  if primary ctx t.view = ctx.Context.node_id then begin
    let value =
      match prepared_certificate t ctx ~slot:t.slot ~below_view:new_view with
      | Some (_, value) -> value
      | None -> proposal_value ctx t.slot
    in
    Context.broadcast ctx ~tag:"new-view" ~size:512
      (New_view { view = t.view; slot = t.slot; value })
  end

let start_view_change t ctx ~first =
  if first then t.timeouts <- t.timeouts + 1;
  let target = t.view + 1 in
  Context.broadcast ctx ~tag:"view-change" (View_change { new_view = target });
  (* The doubled timeout decides when to *start* a view change; while one
     is pending, the vote is re-broadcast at a fixed cadence so it survives
     loss (e.g. across a partition heal) without an exponential overhang. *)
  Option.iter ctx.Context.cancel_timer t.timer;
  let delay_ms =
    if first then timeout_ms ctx t else base_timeout_factor *. ctx.Context.lambda_ms
  in
  let id =
    ctx.Context.set_timer ~delay_ms ~tag:"pbft-progress" (Progress { view = t.view; slot = t.slot })
  in
  t.timer <- Some id

let try_decide t ctx ~slot ~value =
  if not (Hashtbl.mem t.decided slot) then begin
    Hashtbl.replace t.decided slot value;
    if ctx.Context.pipeline_depth = 1 then begin
      (* Classic sequential path, kept verbatim for bit-identical replays. *)
      ctx.Context.decide value;
      if slot = t.slot then begin
        t.slot <- t.slot + 1;
        t.timeouts <- 0;
        restart_timer t ctx;
        propose t ctx;
        catch_up t ctx
      end
    end
    else if slot = t.slot then begin
      (* Pipelined: commits may form out of order across the window, but
         decisions must be reported in slot order — emit the contiguous
         decided prefix, holding back anything behind a gap. *)
      while Hashtbl.mem t.decided t.slot do
        ctx.Context.decide (Hashtbl.find t.decided t.slot);
        t.slot <- t.slot + 1
      done;
      t.timeouts <- 0;
      restart_timer t ctx;
      propose t ctx;
      catch_up t ctx
    end
  end

let on_message t ctx (msg : Message.t) =
  match msg.payload with
  | Pre_prepare { view; slot; value } ->
    if msg.src = primary ctx view then accept_proposal t ctx ~view ~slot ~value
  | Prepare { view; slot; value } ->
    let count = Tally.add t.prepares (view, slot, value) ~voter:msg.src in
    if
      count >= Quorum.quorum ctx.Context.n
      && view = t.view
      && not (Hashtbl.mem t.sent_commit (view, slot))
    then begin
      Hashtbl.replace t.sent_commit (view, slot) ();
      Hashtbl.replace t.accepted (view, slot) value;
      Context.broadcast ctx ~tag:"commit" (Commit { view; slot; value })
    end
  | Commit { view; slot; value } ->
    let count = Tally.add t.commits (view, slot, value) ~voter:msg.src in
    if count >= Quorum.quorum ctx.Context.n then try_decide t ctx ~slot ~value
  | View_change { new_view } ->
    let count = Tally.add t.view_changes new_view ~voter:msg.src in
    if new_view > t.view then begin
      (* Amplify: f+1 view changes prove an honest node timed out. *)
      if
        count >= Quorum.one_honest ctx.Context.n
        && not (Tally.has_voted t.view_changes new_view ~voter:ctx.Context.node_id)
      then Context.broadcast ctx ~tag:"view-change" (View_change { new_view });
      if Tally.count t.view_changes new_view >= Quorum.quorum ctx.Context.n then begin
        enter_view t ctx new_view;
        catch_up t ctx
      end
    end
  | New_view { view; slot; value } ->
    if msg.src = primary ctx view && view >= t.view then begin
      if view > t.view then begin
        t.view <- view;
        restart_timer t ctx
      end;
      Hashtbl.replace t.proposals (view, slot) value;
      if in_window t ctx slot && not (Hashtbl.mem t.accepted (view, slot)) then begin
        Hashtbl.replace t.accepted (view, slot) value;
        send_prepare t ctx ~view ~slot ~value
      end
    end
  | _ -> ()

let on_timer t ctx (timer : Timer.t) =
  match timer.payload with
  | Progress { view; slot } ->
    if view = t.view && slot = t.slot && not (Hashtbl.mem t.decided slot) then begin
      let first = not (Tally.has_voted t.view_changes (t.view + 1) ~voter:ctx.Context.node_id) in
      start_view_change t ctx ~first
    end
  | _ -> ()

let view t = t.view

let () =
  Message.register_printer (function
    | Pre_prepare { view; slot; value } ->
      Some (Printf.sprintf "PrePrepare(v=%d,s=%d,%s)" view slot value)
    | Prepare { view; slot; value } -> Some (Printf.sprintf "Prepare(v=%d,s=%d,%s)" view slot value)
    | Commit { view; slot; value } -> Some (Printf.sprintf "Commit(v=%d,s=%d,%s)" view slot value)
    | View_change { new_view } -> Some (Printf.sprintf "ViewChange(v=%d)" new_view)
    | New_view { view; slot; value } ->
      Some (Printf.sprintf "NewView(v=%d,s=%d,%s)" view slot value)
    | _ -> None)
