open Bftsim_sim
open Bftsim_net

type Message.payload +=
  | Sh_propose of { view : int; block : Chain.block }
  | Sh_vote of { view : int; digest : string }
  | Sh_blame of { view : int }

type Timer.payload +=
  | Sh_commit_wait of { view : int; digest : string }
  | Sh_progress of { view : int; deadline_id : int }
  | Sh_newview_wait of { view : int }

let name = "sync-hotstuff"

let model = Protocol_intf.Synchronous

let pipelined = true

let majority n = (n / 2) + 1

type node = {
  store : Chain.store;
  mutable view : int;
  mutable highest_cert : Chain.block;  (** Tip of the certified chain. *)
  mutable committed_height : int;
  mutable quit_view : bool;  (** Stopped participating in the current view. *)
  mutable progress_deadline : int;  (** Monotonic id invalidating old progress timers. *)
  votes : string Tally.t;
  blames : int Tally.t;
  certified : (string, unit) Hashtbl.t;
  committed : (string, unit) Hashtbl.t;
  (* (view, height) -> digest of the first proposal seen; a second distinct
     digest is leader equivocation. *)
  seen_proposal : (int * int, string) Hashtbl.t;
  mutable blamed : (int, unit) Hashtbl.t;
  proposed_height : (int, unit) Hashtbl.t;
}

let create _ctx =
  {
    store = Chain.create ();
    view = 0;
    highest_cert = Chain.genesis;
    committed_height = 0;
    quit_view = false;
    progress_deadline = 0;
    votes = Tally.create ();
    blames = Tally.create ();
    certified = Hashtbl.create 64;
    committed = Hashtbl.create 64;
    seen_proposal = Hashtbl.create 64;
    blamed = Hashtbl.create 16;
    proposed_height = Hashtbl.create 64;
  }

let view t = t.view

let leader ctx view = Context.leader_round_robin ctx ~view

let delta ctx = ctx.Context.lambda_ms

let reset_progress_timer t ctx =
  t.progress_deadline <- t.progress_deadline + 1;
  ignore
    (ctx.Context.set_timer ~delay_ms:(3. *. delta ctx) ~tag:"sh-progress"
       (Sh_progress { view = t.view; deadline_id = t.progress_deadline }))

(* Heights serve as the chained-HotStuff "view" field of the block; each
   block extends the previous certified one. *)
let propose t ctx =
  let height = t.highest_cert.Chain.view + 1 in
  if not (Hashtbl.mem t.proposed_height height) then begin
    Hashtbl.replace t.proposed_height height ();
    let view = t.view in
    ctx.Context.request_proposal ~slot:height ~width:ctx.Context.pipeline_depth
      ~default:{ Context.value = ""; size = 512 }
      (fun (p : Context.proposal) ->
        (* Deferred batches re-check that the certified tip and the view are
           unchanged; a stale window returns [false] so the workload
           re-queues the batch instead of losing it. *)
        if
          t.highest_cert.Chain.view + 1 = height && t.view = view && (not t.quit_view)
          && leader ctx view = ctx.Context.node_id
        then begin
          let justify =
            { Chain.view = t.highest_cert.Chain.view; block = t.highest_cert.Chain.digest }
          in
          let block =
            Chain.make_block ~payload:p.Context.value ~view:height ~parent:t.highest_cert ~justify
              ~proposer:ctx.Context.node_id ()
          in
          Chain.add t.store block;
          Context.broadcast ctx ~tag:"sh-propose" ~size:p.Context.size
            (Sh_propose { view = t.view; block });
          true
        end
        else false)
  end

let blame t ctx view =
  if not (Hashtbl.mem t.blamed view) then begin
    Hashtbl.replace t.blamed view ();
    Context.broadcast ctx ~tag:"sh-blame" (Sh_blame { view })
  end

let enter_view t ctx new_view =
  if new_view > t.view then begin
    t.view <- new_view;
    t.quit_view <- false;
    reset_progress_timer t ctx;
    (* The incoming leader waits 2 delta so every replica's highest
       certificate reaches it before it extends the chain. *)
    if leader ctx new_view = ctx.Context.node_id then
      ignore
        (ctx.Context.set_timer ~delay_ms:(2. *. delta ctx) ~tag:"sh-newview"
           (Sh_newview_wait { view = new_view }))
  end

(* Commit in chain order once the 2-delta window closed cleanly. *)
let commit t ctx (block : Chain.block) =
  if
    (not (Hashtbl.mem t.committed block.Chain.digest))
    && block.Chain.view = t.committed_height + 1
  then begin
    Hashtbl.replace t.committed block.Chain.digest ();
    t.committed_height <- block.Chain.view;
    ctx.Context.decide
      (if block.Chain.payload = "" then block.Chain.digest else block.Chain.payload)
  end

let handle_proposal t ctx (msg : Message.t) view (block : Chain.block) =
  if msg.src = leader ctx view && view = t.view && not t.quit_view then begin
    Chain.add t.store block;
    let key = (view, block.Chain.view) in
    match Hashtbl.find_opt t.seen_proposal key with
    | Some digest when not (String.equal digest block.Chain.digest) ->
      (* Equivocation: two proposals for the same height in one view. *)
      t.quit_view <- true;
      blame t ctx view
    | Some _ -> ()
    | None ->
      if block.Chain.view = t.committed_height + 1 || block.Chain.view > t.highest_cert.Chain.view
      then begin
        Hashtbl.replace t.seen_proposal key block.Chain.digest;
        reset_progress_timer t ctx;
        Context.broadcast ctx ~tag:"sh-vote" (Sh_vote { view; digest = block.Chain.digest });
        ignore
          (ctx.Context.set_timer ~delay_ms:(2. *. delta ctx) ~tag:"sh-commit"
             (Sh_commit_wait { view; digest = block.Chain.digest }))
      end
  end

let handle_vote t ctx (msg : Message.t) view digest =
  if view = t.view then begin
    let count = Tally.add t.votes digest ~voter:msg.src in
    if count >= majority ctx.Context.n && not (Hashtbl.mem t.certified digest) then begin
      Hashtbl.replace t.certified digest ();
      (match Chain.find t.store digest with
      | Some block when block.Chain.view > t.highest_cert.Chain.view -> t.highest_cert <- block
      | Some _ | None -> ());
      (* A certified tip lets the leader pipeline the next height. *)
      if leader ctx t.view = ctx.Context.node_id && not t.quit_view then propose t ctx
    end
  end

let handle_blame t ctx (msg : Message.t) view =
  if view >= t.view then begin
    let count = Tally.add t.blames view ~voter:msg.src in
    let f = (ctx.Context.n - 1) / 2 in
    if count >= Stdlib.min (f + 1) (Quorum.one_honest ctx.Context.n) then blame t ctx view;
    if count >= f + 1 && view >= t.view then enter_view t ctx (view + 1)
  end

let on_start t ctx = enter_view t ctx 1

let on_message t ctx (msg : Message.t) =
  match msg.payload with
  | Sh_propose { view; block } -> handle_proposal t ctx msg view block
  | Sh_vote { view; digest } -> handle_vote t ctx msg view digest
  | Sh_blame { view } -> handle_blame t ctx msg view
  | _ -> ()

let on_timer t ctx (timer : Timer.t) =
  match timer.payload with
  | Sh_commit_wait { view; digest } ->
    (* Safe to commit iff the 2-delta window elapsed inside the same view
       with no equivocation (quit_view covers both blame paths). *)
    if view = t.view && not t.quit_view then (
      match Chain.find t.store digest with Some block -> commit t ctx block | None -> ())
  | Sh_progress { view; deadline_id } ->
    if view = t.view && deadline_id = t.progress_deadline && not t.quit_view then begin
      t.quit_view <- true;
      blame t ctx view
    end
  | Sh_newview_wait { view } ->
    if view = t.view && leader ctx view = ctx.Context.node_id then propose t ctx
  | _ -> ()

let () =
  Message.register_printer (function
    | Sh_propose { view; block } -> Some (Format.asprintf "ShPropose(v=%d,%a)" view Chain.pp_block block)
    | Sh_vote { view; digest } -> Some (Printf.sprintf "ShVote(v=%d,%s)" view digest)
    | Sh_blame { view } -> Some (Printf.sprintf "ShBlame(v=%d)" view)
    | _ -> None)

(* A restarted replica rejoins from scratch: safe for this protocol's
   message flow, though a one-shot instance that already passed its
   decision point may never re-decide. *)
let on_restart = on_start
