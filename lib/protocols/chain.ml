module Sha256 = Bftsim_crypto.Sha256

type qc = { view : int; block : string }

type block = {
  digest : string;
  view : int;
  parent : string;
  justify : qc;
  proposer : int;
  payload : string;
}

let genesis_digest = "genesis"

let genesis_qc = { view = 0; block = genesis_digest }

let genesis =
  { digest = genesis_digest; view = 0; parent = ""; justify = genesis_qc; proposer = -1; payload = "" }

let make_block ?(payload = "") ~view ~(parent : block) ~(justify : qc) ~proposer () =
  let preimage =
    (* The historical preimage is kept verbatim for payload-free blocks so
       that runs without a workload keep their exact digests (and hence
       golden fingerprints); a batch payload extends it. *)
    let base =
      Printf.sprintf "block|%d|%s|%d|%s|%d" view parent.digest justify.view justify.block proposer
    in
    if payload = "" then base else base ^ "|" ^ payload
  in
  let digest = Sha256.to_hex (Sha256.digest_string preimage) in
  (* 16 hex chars are plenty to be collision-free within a run and keep
     decided values readable in traces. *)
  let digest = String.sub digest 0 16 in
  { digest; view; parent = parent.digest; justify; proposer; payload }

type store = { blocks : (string, block) Hashtbl.t }

let create () =
  let blocks = Hashtbl.create 128 in
  Hashtbl.replace blocks genesis.digest genesis;
  { blocks }

let add store b = if not (Hashtbl.mem store.blocks b.digest) then Hashtbl.replace store.blocks b.digest b

let find store digest = Hashtbl.find_opt store.blocks digest

let rec extends store b ~ancestor =
  if String.equal b.digest ancestor then true
  else if String.equal b.digest genesis.digest then false
  else
    match find store b.parent with
    | None -> false
    | Some parent -> extends store parent ~ancestor

let chain_between store ~after ~upto =
  let rec walk b acc =
    if String.equal b.digest after then acc
    else
      let acc = b :: acc in
      if String.equal b.digest genesis.digest then acc
      else match find store b.parent with None -> acc | Some parent -> walk parent acc
  in
  walk upto []

let three_chain_tail store (qc : qc) =
  match find store qc.block with
  | None -> None
  | Some b1 -> (
    match find store b1.parent with
    | None -> None
    | Some b2 -> (
      match find store b2.parent with
      | None -> None
      | Some b3 ->
        if qc.view = b1.view && b1.view = b2.view + 1 && b2.view = b3.view + 1 then Some b3
        else None))

let pp_qc ppf (qc : qc) = Format.fprintf ppf "QC(v=%d,%s)" qc.view qc.block

let pp_block ppf b =
  if b.payload = "" then
    Format.fprintf ppf "B(%s,v=%d,parent=%s,justify=%a)" b.digest b.view b.parent pp_qc b.justify
  else
    Format.fprintf ppf "B(%s,v=%d,parent=%s,justify=%a,payload=%s)" b.digest b.view b.parent pp_qc
      b.justify b.payload
