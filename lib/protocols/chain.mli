(** Block chains and quorum certificates for chained HotStuff / LibraBFT.

    Chained HotStuff organizes proposals in a tree of blocks, each carrying a
    quorum certificate (QC) for its parent; a block commits once it heads a
    {e three-chain} of consecutive views.  This module is the shared block
    store; the pacemakers that differ between HotStuff+NS and LibraBFT live
    in the protocol modules. *)

type qc = { view : int; block : string }
(** A certificate that a quorum voted for [block] in [view].  Vote
    signatures are implicit: the simulator's network layer authenticates
    senders, and the vote tally enforces distinctness. *)

type block = {
  digest : string;
      (** Hex content digest; doubles as the decided value for payload-free
          blocks. *)
  view : int;
  parent : string;  (** Digest of the parent block. *)
  justify : qc;  (** QC for the parent carried by this block. *)
  proposer : int;
  payload : string;
      (** Workload batch riding this block — [""] (a synthetic, payload-free
          block) outside load runs.  When non-empty it is the decided value,
          so the load driver can match committed batches by name. *)
}

val genesis : block
(** The root of every chain, at view 0, self-certified. *)

val genesis_qc : qc

val make_block : ?payload:string -> view:int -> parent:block -> justify:qc -> proposer:int -> unit -> block
(** A new block extending [parent]; the digest commits to all fields.
    [payload] defaults to [""], in which case the digest preimage is
    byte-identical to historical payload-free blocks. *)

type store
(** A node's local block tree. *)

val create : unit -> store
(** A store containing only {!genesis}. *)

val add : store -> block -> unit
(** Idempotent insert. *)

val find : store -> string -> block option

val extends : store -> block -> ancestor:string -> bool
(** [extends store b ~ancestor] iff [ancestor] is on [b]'s parent path
    (including [b] itself). *)

val chain_between : store -> after:string -> upto:block -> block list
(** Blocks strictly newer than [after] on the path from genesis to [upto],
    oldest first.  Returns the full path from genesis if [after] is not an
    ancestor. *)

val three_chain_tail : store -> qc -> block option
(** Given a fresh QC certifying [b1], returns [b3] — the great-grandblock —
    when [b1], [b2 = parent b1], [b3 = parent b2] have consecutive views
    (the chained-HotStuff commit rule), otherwise [None]. *)

val pp_qc : Format.formatter -> qc -> unit

val pp_block : Format.formatter -> block -> unit
