(* Mutation-testing hook: the conformance harness must demonstrably catch a
   quorum-arithmetic bug, so one can be injected on demand.  Programmatic
   setter for tests; the BFTSIM_MUTATE environment variable seeds the
   initial value so the CI mutation-smoke step can flip it from outside. *)
type mutation = Quorum_minus_one

let mutation_of_string = function "quorum-minus-one" -> Some Quorum_minus_one | _ -> None

let mutation_to_string = function Quorum_minus_one -> "quorum-minus-one"

let active_mutation =
  ref
    (match Sys.getenv_opt "BFTSIM_MUTATE" with
    | Some s -> mutation_of_string s
    | None -> None)

let set_mutation m = active_mutation := m

let mutation () = !active_mutation

let max_faulty n = (n - 1) / 3

let quorum n =
  let q = n - max_faulty n in
  match !active_mutation with Some Quorum_minus_one -> q - 1 | None -> q

let one_honest n = max_faulty n + 1

let supermajority n = (2 * max_faulty n) + 1

let check ~n ~f =
  if f < 0 then invalid_arg "Quorum.check: negative f";
  if n <= 3 * f then invalid_arg (Printf.sprintf "Quorum.check: n=%d <= 3*f=%d" n (3 * f))
