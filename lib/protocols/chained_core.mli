(** Chained HotStuff consensus core with pluggable pacemaker.

    HotStuff and LibraBFT share the identical safety machinery — pipelined
    blocks, quorum certificates, the three-chain commit rule — and differ
    only in the PaceMaker, the view-synchronization component (paper
    §III-B5/B6).  This module implements the shared core; the two protocol
    modules instantiate it with their pacemaker:

    - {!Naive_doubling} (HotStuff+NS): a local view-doubling synchronizer
      after Naor et al. — on expiry a node unilaterally advances one view
      and doubles its timeout, and the counter {e never resets}.  This is
      the source of the pathologies in the paper's Figs. 5, 6 and 9.
    - {!Timeout_certificates} (LibraBFT): on expiry a node broadcasts a
      timeout vote; 2f+1 such votes form a timeout certificate that moves
      every honest node to the next view within one message delay, and the
      doubling counter resets on progress — bounding recovery after GST.
    - {!Cogsworth} (Naor et al.'s leader-relayed synchronizer, the paper's
      citation for view synchronization): a stuck replica unicasts a sync
      request to the next leader; f+1 requests make the leader broadcast a
      relay that moves everyone — linear communication when leaders are
      honest, at the cost of one extra hop. *)

open Bftsim_net

type pacemaker = Naive_doubling | Timeout_certificates | Cogsworth

type Message.payload +=
  | Proposal of { block : Chain.block }
  | Vote of { view : int; digest : string }
  | Timeout_vote of { view : int }
  | Timeout_cert of { view : int }
  | Sync_request of { view : int }
  | Sync_advance of { view : int }
  | Catchup_req of { last_committed : string }
  | Catchup_resp of {
      blocks : Chain.block list;
      high_qc : Chain.qc;
      view : int;
      last_committed : string;
    }

type Bftsim_sim.Timer.payload += View_timer of { view : int }

type node

val create : pacemaker -> Context.t -> node

val on_start : node -> Context.t -> unit

val on_message : node -> Context.t -> Message.t -> unit

val on_timer : node -> Context.t -> Bftsim_sim.Timer.t -> unit

val on_restart : node -> Context.t -> unit
(** Crash-recovery entry point, called on a fresh node after a [restart@]
    chaos event: rehydrates the safety-critical state (last committed
    block, commit count, high/locked QC, highest voted view, pacemaker
    view) from the simulated WAL, broadcasts a [Catchup_req], and re-enters
    the persisted view.  Peers answer with the hash-linked block chain from
    the requester's commit frontier to their freshest certified block; the
    first internally-linked response re-commits the missed blocks in order
    and signals [Context.on_caught_up]. *)

val current_view : node -> int
(** The node's view, exposed for the view tracker (Fig. 9). *)

val timeout_count : node -> int
(** Number of local timeouts experienced so far. *)

val committed_count : node -> int

type naive_reset_policy = Context.naive_reset_policy =
  | Reset_on_commit
  | Never_reset
  | Per_view_number
(** When HotStuff+NS's view-doubling back-off resets (re-exported from
    {!Context}): on every local commit (default, and the configuration that
    reproduces the paper's shapes), never, or derived from the view number.
    Selected per run via [Config.naive_reset] (defaulted from the
    BFTSIM_NAIVE_RESET environment variable: [commit] | [never] | [view])
    and read from the node context — there is deliberately no process-global
    setter, so concurrent runs on different domains cannot race on it. *)
