let name = "hotstuff-ns"

let model = Protocol_intf.Partially_synchronous

let pipelined = true

type node = Chained_core.node

let create ctx = Chained_core.create Chained_core.Naive_doubling ctx

let on_start = Chained_core.on_start

let on_message = Chained_core.on_message

let on_timer = Chained_core.on_timer

let current_view = Chained_core.current_view

let view = Chained_core.current_view

let on_restart = Chained_core.on_restart
