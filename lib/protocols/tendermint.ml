open Bftsim_sim
open Bftsim_net

type Message.payload +=
  | Tm_proposal of { height : int; round : int; value : string }
  | Tm_prevote of { height : int; round : int; value : string }
  | Tm_precommit of { height : int; round : int; value : string }

type Timer.payload += Tm_timeout of { height : int; round : int; step : int }

let name = "tendermint"

let model = Protocol_intf.Partially_synchronous

let pipelined = false

let nil = ""

(* Round timeouts grow linearly (Tendermint's documented choice), not
   exponentially: timeout(r) = lambda * (1 + r/2). *)
let timeout_ms ctx round =
  ctx.Context.lambda_ms *. (1. +. (float_of_int round /. 2.))

type step = Propose | Prevote | Precommit

type node = {
  mutable height : int;
  mutable round : int;
  mutable step : step;
  mutable locked_value : string;  (** [nil] when unlocked. *)
  mutable locked_round : int;
  mutable decided_heights : int;
  (* (height, round) -> proposal value. *)
  proposals : (int * int, string) Hashtbl.t;
  prevotes : (int * int * string) Tally.t;
  prevote_totals : (int * int) Tally.t;
  precommits : (int * int * string) Tally.t;
  precommit_totals : (int * int) Tally.t;
  sent_prevote : (int * int, string) Hashtbl.t;
  sent_precommit : (int * int, string) Hashtbl.t;
  decided : (int, string) Hashtbl.t;
  mutable wait_armed : (int * int * step) option;
}

let create _ctx =
  {
    height = 1;
    round = 0;
    step = Propose;
    locked_value = nil;
    locked_round = -1;
    decided_heights = 0;
    proposals = Hashtbl.create 64;
    prevotes = Tally.create ();
    prevote_totals = Tally.create ();
    precommits = Tally.create ();
    precommit_totals = Tally.create ();
    sent_prevote = Hashtbl.create 64;
    sent_precommit = Hashtbl.create 64;
    decided = Hashtbl.create 64;
    wait_armed = None;
  }

let current_height t = t.height

let current_round t = t.round

let view t = t.height

let proposer ctx ~height ~round = (height + round) mod ctx.Context.n

let proposal_value ctx ~height = Printf.sprintf "%s/h%d" ctx.Context.input height

let set_timeout t ctx ~step_idx ~delay_ms =
  ignore
    (ctx.Context.set_timer ~delay_ms ~tag:"tm-timeout"
       (Tm_timeout { height = t.height; round = t.round; step = step_idx }))

let broadcast_prevote t ctx value =
  if not (Hashtbl.mem t.sent_prevote (t.height, t.round)) then begin
    Hashtbl.replace t.sent_prevote (t.height, t.round) value;
    t.step <- Prevote;
    Context.broadcast ctx ~tag:"tm-prevote"
      (Tm_prevote { height = t.height; round = t.round; value })
  end

let broadcast_precommit t ctx value =
  if not (Hashtbl.mem t.sent_precommit (t.height, t.round)) then begin
    Hashtbl.replace t.sent_precommit (t.height, t.round) value;
    t.step <- Precommit;
    Context.broadcast ctx ~tag:"tm-precommit"
      (Tm_precommit { height = t.height; round = t.round; value })
  end

(* Prevote the proposal if our lock allows it: unlocked, same value, or the
   proposal carries a newer proof-of-lock (simplified: lock from an older
   round yields to the current proposal only if values match). *)
let prevote_on_proposal t ctx value =
  let acceptable = t.locked_value = nil || String.equal t.locked_value value in
  broadcast_prevote t ctx (if acceptable then value else nil)

let rec start_round t ctx round =
  t.round <- round;
  t.step <- Propose;
  t.wait_armed <- None;
  if proposer ctx ~height:t.height ~round = ctx.Context.node_id then begin
    if t.locked_value <> nil then
      (* Locked: re-proposing the locked value is a safety obligation, the
         workload never substitutes it. *)
      Context.broadcast ctx ~tag:"tm-proposal" ~size:256
        (Tm_proposal { height = t.height; round; value = t.locked_value })
    else begin
      let height = t.height in
      let default = { Context.value = proposal_value ctx ~height; size = 256 } in
      ctx.Context.request_proposal ~slot:height ~width:ctx.Context.pipeline_depth ~default
        (fun (p : Context.proposal) ->
          (* A deferred batch fires only if this (height, round) is still in
             its propose step and we are still unlocked; otherwise the
             workload re-queues it. *)
          if
            t.height = height && t.round = round && t.step = Propose && t.locked_value = nil
            && proposer ctx ~height ~round = ctx.Context.node_id
            && not (Hashtbl.mem t.proposals (height, round))
          then begin
            Context.broadcast ctx ~tag:"tm-proposal" ~size:p.Context.size
              (Tm_proposal { height; round; value = p.Context.value });
            true
          end
          else false)
    end
  end;
  (* If the proposal is already buffered (we were behind), act on it now. *)
  (match Hashtbl.find_opt t.proposals (t.height, t.round) with
  | Some value -> prevote_on_proposal t ctx value
  | None -> set_timeout t ctx ~step_idx:0 ~delay_ms:(timeout_ms ctx round));
  (* Watchdog: if the round stalls (e.g. votes lost to a partition),
     re-broadcast our votes so quorums can eventually form. *)
  set_timeout t ctx ~step_idx:3 ~delay_ms:(2.5 *. timeout_ms ctx round);
  check_quorums t ctx

and advance_height t ctx value =
  if not (Hashtbl.mem t.decided t.height) then begin
    Hashtbl.replace t.decided t.height value;
    t.decided_heights <- t.decided_heights + 1;
    ctx.Context.decide value;
    t.height <- t.height + 1;
    t.locked_value <- nil;
    t.locked_round <- -1;
    start_round t ctx 0
  end

(* Quorum-driven transitions; called on every relevant arrival so late
   messages still unblock the round. *)
and check_quorums t ctx =
  let n = ctx.Context.n in
  let h = t.height and r = t.round in
  (* Prevote quorum for a value: lock and precommit it. *)
  (match
     List.find_opt
       (fun (hh, rr, v) ->
         hh = h && rr = r && (not (String.equal v nil))
         && Tally.count t.prevotes (hh, rr, v) >= Quorum.quorum n)
       (Tally.keys t.prevotes)
   with
  | Some (_, _, v) when t.step <> Propose ->
    t.locked_value <- v;
    t.locked_round <- r;
    broadcast_precommit t ctx v
  | _ -> ());
  (* 2f+1 prevotes without a value quorum: give stragglers half a lambda,
     then precommit nil. *)
  if
    t.step = Prevote
    && Tally.count t.prevote_totals (h, r) >= Quorum.quorum n
    && t.wait_armed <> Some (h, r, Prevote)
    && not (Hashtbl.mem t.sent_precommit (h, r))
  then begin
    t.wait_armed <- Some (h, r, Prevote);
    set_timeout t ctx ~step_idx:1 ~delay_ms:(ctx.Context.lambda_ms /. 2.)
  end;
  (* Precommit quorum for a value: decide, at any step of any round. *)
  (match
     List.find_opt
       (fun (hh, rr, v) ->
         hh = h
         && (not (String.equal v nil))
         && Tally.count t.precommits (hh, rr, v) >= Quorum.quorum n)
       (Tally.keys t.precommits)
   with
  | Some (_, _, v) -> advance_height t ctx v
  | None ->
    (* 2f+1 precommits without a decision: wait briefly, then next round. *)
    if
      t.step = Precommit
      && Tally.count t.precommit_totals (h, r) >= Quorum.quorum n
      && t.wait_armed <> Some (h, r, Precommit)
    then begin
      t.wait_armed <- Some (h, r, Precommit);
      set_timeout t ctx ~step_idx:2 ~delay_ms:(ctx.Context.lambda_ms /. 2.)
    end)

let on_start t ctx = start_round t ctx 0

let on_message t ctx (msg : Message.t) =
  match msg.payload with
  | Tm_proposal { height; round; value } ->
    if msg.src = proposer ctx ~height ~round && not (Hashtbl.mem t.proposals (height, round)) then begin
      Hashtbl.replace t.proposals (height, round) value;
      if height = t.height && round = t.round && t.step = Propose then
        prevote_on_proposal t ctx value;
      check_quorums t ctx
    end
  | Tm_prevote { height; round; value } ->
    ignore (Tally.add t.prevotes (height, round, value) ~voter:msg.src);
    ignore (Tally.add t.prevote_totals (height, round) ~voter:msg.src);
    if height = t.height then check_quorums t ctx
  | Tm_precommit { height; round; value } ->
    ignore (Tally.add t.precommits (height, round, value) ~voter:msg.src);
    ignore (Tally.add t.precommit_totals (height, round) ~voter:msg.src);
    if height = t.height then check_quorums t ctx
  | _ -> ()

let on_timer t ctx (timer : Timer.t) =
  match timer.payload with
  | Tm_timeout { height; round; step } ->
    if height = t.height && round = t.round then begin
      match step with
      | 0 ->
        (* Propose timeout: no proposal seen, prevote nil. *)
        if t.step = Propose then begin
          broadcast_prevote t ctx nil;
          check_quorums t ctx
        end
      | 1 ->
        (* Prevote-wait expired without a value quorum: precommit nil. *)
        if t.step = Prevote then begin
          broadcast_precommit t ctx nil;
          check_quorums t ctx
        end
      | 2 ->
        (* Precommit-wait expired without a decision: next round. *)
        if t.step = Precommit then start_round t ctx (t.round + 1)
      | _ ->
        (* Watchdog: re-broadcast whatever we already voted and re-arm. *)
        (match Hashtbl.find_opt t.sent_prevote (height, round) with
        | Some value ->
          Context.broadcast ctx ~tag:"tm-prevote" (Tm_prevote { height; round; value })
        | None -> ());
        (match Hashtbl.find_opt t.sent_precommit (height, round) with
        | Some value ->
          Context.broadcast ctx ~tag:"tm-precommit" (Tm_precommit { height; round; value })
        | None -> ());
        set_timeout t ctx ~step_idx:3 ~delay_ms:(2.5 *. timeout_ms ctx round)
    end
  | _ -> ()

let () =
  Message.register_printer (function
    | Tm_proposal { height; round; value } ->
      Some (Printf.sprintf "TmProposal(h=%d,r=%d,%s)" height round value)
    | Tm_prevote { height; round; value } ->
      Some
        (Printf.sprintf "TmPrevote(h=%d,r=%d,%s)" height round (if value = nil then "nil" else value))
    | Tm_precommit { height; round; value } ->
      Some
        (Printf.sprintf "TmPrecommit(h=%d,r=%d,%s)" height round
           (if value = nil then "nil" else value))
    | _ -> None)

(* A restarted replica rejoins from scratch: safe for this protocol's
   message flow, though a one-shot instance that already passed its
   decision point may never re-decide. *)
let on_restart = on_start
