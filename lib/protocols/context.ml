open Bftsim_sim
open Bftsim_net

type naive_reset_policy = Reset_on_commit | Never_reset | Per_view_number

let naive_reset_policy_of_string = function
  | "commit" -> Some Reset_on_commit
  | "never" -> Some Never_reset
  | "view" -> Some Per_view_number
  | _ -> None

let naive_reset_policy_to_string = function
  | Reset_on_commit -> "commit"
  | Never_reset -> "never"
  | Per_view_number -> "view"

type proposal = { value : string; size : int }

type t = {
  node_id : int;
  n : int;
  f : int;
  lambda_ms : float;
  seed : int;
  input : string;
  naive_reset : naive_reset_policy;
  rng : Rng.t;
  now : unit -> Time.t;
  send_raw : dst:int -> tag:string -> size:int -> Message.payload -> unit;
  broadcast_raw : include_self:bool -> tag:string -> size:int -> Message.payload -> unit;
  set_timer : delay_ms:float -> tag:string -> Timer.payload -> Timer.id;
  cancel_timer : Timer.id -> unit;
  decide : string -> unit;
  probe : tag:string -> detail:string -> unit;
  leader_schedule : int array option;
      (* Per-view leader pinning (twins runs): [leader_schedule.(view)]
         overrides the round-robin rotation for views inside the array;
         views beyond it fall back to rotation. [None] everywhere else. *)
  request_proposal : slot:int -> width:int -> default:proposal -> (proposal -> bool) -> unit;
      (* Workload hook: a leader about to propose asks for a payload
         covering [width] consensus slots (chained protocols pack their
         whole pipeline window into one block).  With no workload attached
         the continuation runs immediately with [default] (same behavior as
         before the hook existed); a workload layer may instead defer the
         callback while a batch accumulates.  The continuation returns
         whether it actually used the proposal — [false] means the leader's
         window moved on (view change) and the workload layer re-queues the
         batch instead of dropping it. *)
  pipeline_depth : int;
      (* How many consensus heights a leader may keep in flight at once;
         1 = sequential heights (the classic single-shot behavior). *)
  durable : bool;
      (* Whether this run models crash-restart faults: only then do
         protocols pay the cost of rendering persistence records, so
         runs without restarts stay allocation-identical to the legacy
         path. *)
  persist : key:string -> string -> unit;
      (* Append/overwrite one record in the node's simulated WAL.  The
         write occupies the node's sequential CPU for [wal_ms] (cost
         model), and the record survives a [restart@] chaos event. *)
  recall : key:string -> string option;
      (* Read back a WAL record; [None] if never persisted. *)
  on_caught_up : unit -> unit;
      (* A restarted node reports that it has finished catching up with
         its peers; the controller records recovery.catchup_ms.  No-op
         outside a restart. *)
}

let send t ~dst ~tag ?(size = Message.default_size) payload = t.send_raw ~dst ~tag ~size payload

let probe t ~tag ?(detail = "") () = t.probe ~tag ~detail

let broadcast t ?(include_self = true) ~tag ?(size = Message.default_size) payload =
  t.broadcast_raw ~include_self ~tag ~size payload

let leader_round_robin t ~view =
  match t.leader_schedule with
  | Some schedule when view >= 0 && view < Array.length schedule -> schedule.(view)
  | Some _ | None -> ((view mod t.n) + t.n) mod t.n

let is_leader_round_robin t ~view = leader_round_robin t ~view = t.node_id
