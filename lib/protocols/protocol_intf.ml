(** The consensus-module interface (paper §III-A3).

    "To simulate a customized protocol, a user of our simulator needs only
    to implement three functions": [onMsgEvent], [onTimeEvent] and
    [reportToSystem].  Here the first two are [on_message] and [on_timer];
    reporting happens through {!Context.t.decide}.  [on_start] additionally
    marks the beginning of the run (the reference implementation does this
    with an initial self-scheduled event). *)

type network_model = Synchronous | Partially_synchronous | Asynchronous

let network_model_to_string = function
  | Synchronous -> "synchronous"
  | Partially_synchronous -> "partially-synchronous"
  | Asynchronous -> "asynchronous"

module type S = sig
  val name : string
  (** Stable identifier used by the registry, CLI and experiment tables. *)

  val model : network_model
  (** The network model the protocol is designed for (paper Table I). *)

  val pipelined : bool
  (** [true] for protocols that amortize cost over consecutive decisions
      (HotStuff, LibraBFT); the runner then measures per-decision averages
      over ten decisions instead of a single decision (paper §IV). *)

  type node
  (** Per-replica protocol state. *)

  val create : Context.t -> node
  (** Builds the state of one replica; must not send or schedule anything —
      that happens in [on_start]. *)

  val on_start : node -> Context.t -> unit
  (** Invoked once at simulation time zero for every live node. *)

  val on_message : node -> Context.t -> Bftsim_net.Message.t -> unit
  (** The paper's [onMsgEvent]: a message event reached this node. *)

  val on_timer : node -> Context.t -> Bftsim_sim.Timer.t -> unit
  (** The paper's [onTimeEvent]: a timer registered by this node fired. *)

  val on_restart : node -> Context.t -> unit
  (** Invoked on a {e fresh} node object after a [restart@] chaos event:
      the replica lost its volatile state, and may rehydrate from
      [Context.recall] and initiate catch-up with its peers.  Protocols
      without a recovery story use [on_start] here (they rejoin from
      scratch, which is safe whenever the protocol is; a mid-run restart
      of a one-shot protocol may simply never re-decide). *)

  val view : node -> int
  (** The node's current view / round / period / iteration — the protocol's
      notion of logical progress, sampled by the view tracker (Fig. 9). *)
end

type t = (module S)
(** A protocol packaged as a first-class module. *)

let name (module P : S) = P.name

let model (module P : S) = P.model

let pipelined (module P : S) = P.pipelined
