let name = "add-v1"

let model = Protocol_intf.Synchronous

let pipelined = false

type node = Add_common.node

let create ctx = Add_common.create Add_common.V1 ctx

let on_start = Add_common.on_start

let on_message = Add_common.on_message

let on_timer = Add_common.on_timer

let view = Add_common.current_iteration

(* A restarted replica rejoins from scratch: safe for this protocol's
   message flow, though a one-shot instance that already passed its
   decision point may never re-decide. *)
let on_restart = Add_common.on_start
