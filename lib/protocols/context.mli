(** Execution context handed to every consensus node (paper §III-A3).

    A node never touches the event queue, network or controller directly; it
    acts through these capabilities.  [send]/[broadcast] route through the
    network and attacker modules; [set_timer] registers a time event;
    [decide] is the paper's [reportToSystem], delivering a consensus result
    to the controller, which computes the metrics. *)

open Bftsim_sim
open Bftsim_net

type naive_reset_policy = Reset_on_commit | Never_reset | Per_view_number
(** When HotStuff+NS's view-doubling back-off resets: on every local commit
    (the default, and the configuration that reproduces the paper's
    shapes), never, or derived from the view number.  Carried in the
    per-run configuration (and hence in every node's context) rather than a
    process-global knob so concurrent simulations on different domains
    cannot race on it. *)

val naive_reset_policy_of_string : string -> naive_reset_policy option
(** Parses ["commit"] | ["never"] | ["view"]. *)

val naive_reset_policy_to_string : naive_reset_policy -> string

type proposal = { value : string; size : int }
(** What a leader puts into a pre-prepare/proposal: an opaque value string
    and its estimated wire size in bytes.  Produced either by the protocol
    itself (the classic pre-agreed input) or by a workload batcher. *)

type t = {
  node_id : int;
  n : int;  (** Total number of nodes, including crashed/Byzantine ones. *)
  f : int;  (** Fault budget the protocol is configured to tolerate. *)
  lambda_ms : float;
      (** The protocol's {e assumed} network-delay bound / timeout parameter
          (the paper's lambda).  The real network may violate it. *)
  seed : int;  (** Key domain for simulated crypto (signatures, VRFs). *)
  input : string;  (** This node's input value for the consensus. *)
  naive_reset : naive_reset_policy;
      (** Pacemaker ablation knob consumed by {!Chained_core}; other
          protocols ignore it. *)
  rng : Rng.t;  (** Node-private randomness stream. *)
  now : unit -> Time.t;
  send_raw : dst:int -> tag:string -> size:int -> Message.payload -> unit;
  broadcast_raw : include_self:bool -> tag:string -> size:int -> Message.payload -> unit;
      (** One-to-all dissemination.  The controller implements it either as
          n point-to-point sends (the paper's model) or as epidemic gossip
          (the blockchain-style transport extension); protocols stay
          oblivious and use {!broadcast}. *)
  set_timer : delay_ms:float -> tag:string -> Timer.payload -> Timer.id;
  cancel_timer : Timer.id -> unit;
  decide : string -> unit;
      (** Report one decided value.  SMR protocols call it once per slot. *)
  probe : tag:string -> detail:string -> unit;
      (** Telemetry capability: emits a trace instant on the run's timeline
          when tracing is enabled, and is a no-op otherwise — protocols can
          sprinkle probes without caring whether telemetry is on.  Prefer
          the {!probe} wrapper. *)
  leader_schedule : int array option;
      (** Per-view leader pinning (twins runs): for views inside the array,
          {!leader_round_robin} returns [leader_schedule.(view)] instead of
          the rotation; views beyond it fall back.  [None] everywhere else. *)
  request_proposal : slot:int -> width:int -> default:proposal -> (proposal -> bool) -> unit;
      (** A leader about to propose for [slot] asks for a payload covering
          [width] consensus slots ([pipeline_depth] for chained protocols,
          which pack their whole window into one block; [1] for slot-based
          windows like PBFT's, which request each slot separately).
          Without a workload layer the continuation runs {e immediately}
          with [default], so protocols that adopt the hook behave exactly
          as before; with one attached (see [Controller]'s [?workload])
          the callback may be deferred until a request batch is cut.  The
          continuation must re-check its own staleness (view/leadership
          may have moved on by the time it fires) and return whether it
          used the proposal: on [false] the workload layer returns the
          batched requests to the mempool (re-queue on view change)
          instead of dropping them. *)
  pipeline_depth : int;
      (** How many consensus heights a leader may keep in flight at once;
          [1] (the default) reproduces the classic sequential behavior. *)
  durable : bool;
      (** [true] iff the run's chaos schedule contains a [restart@] event —
          the only case where persistence can pay off.  Protocols gate
          their {!field-persist} calls on it so runs without restarts skip
          the record formatting entirely and stay allocation-identical to
          the legacy path. *)
  persist : key:string -> string -> unit;
      (** Write one record (last-writer-wins per key) to the node's
          simulated write-ahead log.  The write occupies the node's
          sequential CPU for the configured [wal_ms] and the record
          survives a [restart@] chaos event, unlike everything else in the
          node's state. *)
  recall : key:string -> string option;
      (** Read back a WAL record after a restart; [None] if the key was
          never persisted. *)
  on_caught_up : unit -> unit;
      (** A restarted node signals that it has rejoined (rehydrated and
          caught up with peers); the controller turns the first signal
          after each restart into the [recovery.catchup_ms] histogram.
          No-op when the node was never restarted. *)
}

val send : t -> dst:int -> tag:string -> ?size:int -> Message.payload -> unit
(** Point-to-point send; [size] defaults to {!Message.default_size}. *)

val probe : t -> tag:string -> ?detail:string -> unit -> unit
(** [probe ctx ~tag ()] marks a protocol-level instant (phase entry,
    quorum formation, …) on the trace timeline; free when tracing is off. *)

val broadcast : t -> ?include_self:bool -> tag:string -> ?size:int -> Message.payload -> unit
(** Disseminates to every node through the configured transport.
    [include_self] (default [true]) also delivers a zero-delay local copy,
    which lets protocols treat their own votes uniformly with everyone
    else's. *)

val is_leader_round_robin : t -> view:int -> bool
(** [true] iff this node is the round-robin leader of [view]
    ([view mod n], or the [leader_schedule] override when pinned). *)

val leader_round_robin : t -> view:int -> int
