open Bftsim_sim
open Bftsim_net
module Vrf = Bftsim_crypto.Vrf

type Message.payload +=
  | Alg_proposal of { period : int; value : string; credential : Vrf.evaluation }
  | Alg_soft of { period : int; value : string }
  | Alg_cert of { period : int; value : string }
  | Alg_next of { period : int; value : string }

type Timer.payload += Alg_step of { period : int; step : int }

let name = "algorand"

let model = Protocol_intf.Synchronous

let pipelined = false

(* Every step waits two lambda: one delay bound for the previous step's
   broadcast to land everywhere, one of slack — the protocol's synchrony
   assumption. *)
let step_ms ctx = 2. *. ctx.Context.lambda_ms

let bot = ""

type node = {
  mutable period : int;
  mutable value : string;  (** Current preferred / starting value. *)
  mutable decided : string option;
  mutable timer : Timer.id option;
  (* Best (lowest-ticket) verified proposal seen per period. *)
  best_proposal : (int, int64 * string) Hashtbl.t;
  softs : (int * string) Tally.t;
  certs : (int * string) Tally.t;
  nexts : (int * string) Tally.t;
  sent_soft : (int, unit) Hashtbl.t;
  sent_cert : (int, unit) Hashtbl.t;
  sent_next : (int, unit) Hashtbl.t;
}

let create ctx =
  {
    period = 0;
    value = ctx.Context.input;
    decided = None;
    timer = None;
    best_proposal = Hashtbl.create 16;
    softs = Tally.create ();
    certs = Tally.create ();
    nexts = Tally.create ();
    sent_soft = Hashtbl.create 16;
    sent_cert = Hashtbl.create 16;
    sent_next = Hashtbl.create 16;
  }

let current_period t = t.period

let set_step_timer t ctx ~period ~step ~delay_ms =
  Option.iter ctx.Context.cancel_timer t.timer;
  t.timer <- Some (ctx.Context.set_timer ~delay_ms ~tag:"alg-step" (Alg_step { period; step }))

let start_period t ctx period =
  t.period <- period;
  let credential =
    Vrf.eval ~seed:ctx.Context.seed ~node:ctx.Context.node_id
      ~input:(Printf.sprintf "alg|%d" period)
  in
  Context.broadcast ctx ~tag:"alg-proposal" ~size:320
    (Alg_proposal { period; value = t.value; credential });
  set_step_timer t ctx ~period ~step:2 ~delay_ms:(step_ms ctx)

let soft_vote t ctx =
  if not (Hashtbl.mem t.sent_soft t.period) then begin
    Hashtbl.replace t.sent_soft t.period ();
    let value =
      match Hashtbl.find_opt t.best_proposal t.period with
      | Some (_, v) -> v
      | None -> t.value
    in
    Context.broadcast ctx ~tag:"alg-soft" (Alg_soft { period = t.period; value })
  end

(* Cert-votes fire as soon as the soft quorum is in (the step-3 timer is
   just the fallback deadline for moving on to next-votes). *)
let maybe_cert t ctx ~period ~value =
  if
    period = t.period
    && (not (Hashtbl.mem t.sent_cert period))
    && Tally.count t.softs (period, value) >= Quorum.supermajority ctx.Context.n
  then begin
    Hashtbl.replace t.sent_cert period ();
    Context.broadcast ctx ~tag:"alg-cert" (Alg_cert { period; value })
  end

let next_vote t ctx ~rebroadcast =
  if rebroadcast || not (Hashtbl.mem t.sent_next t.period) then begin
    Hashtbl.replace t.sent_next t.period ();
    (* Next-vote the value we saw certified support for, else bottom. *)
    let value =
      let candidates = Tally.keys t.softs in
      let supported =
        List.find_opt
          (fun (p, v) ->
            p = t.period && Tally.count t.softs (p, v) >= Quorum.supermajority ctx.Context.n)
          candidates
      in
      match supported with Some (_, v) -> v | None -> bot
    in
    Context.broadcast ctx ~tag:"alg-next" (Alg_next { period = t.period; value })
  end

let advance_period t ctx ~starting =
  if String.length starting > 0 then t.value <- starting;
  start_period t ctx (t.period + 1)

let on_start t ctx = start_period t ctx 1

let on_message t ctx (msg : Message.t) =
  match msg.payload with
  | Alg_proposal { period; value; credential } ->
    if
      credential.Vrf.node = msg.src
      && Vrf.verify ~seed:ctx.Context.seed credential
      && String.equal credential.Vrf.input (Printf.sprintf "alg|%d" period)
    then begin
      let ticket = Vrf.ticket credential in
      match Hashtbl.find_opt t.best_proposal period with
      | Some (best, _) when Int64.compare best ticket <= 0 -> ()
      | _ -> Hashtbl.replace t.best_proposal period (ticket, value)
    end
  | Alg_soft { period; value } ->
    let _ = Tally.add t.softs (period, value) ~voter:msg.src in
    maybe_cert t ctx ~period ~value
  | Alg_cert { period; value } ->
    let count = Tally.add t.certs (period, value) ~voter:msg.src in
    if count >= Quorum.supermajority ctx.Context.n && t.decided = None then begin
      t.decided <- Some value;
      ctx.Context.decide value
    end
  | Alg_next { period; value } ->
    let count = Tally.add t.nexts (period, value) ~voter:msg.src in
    if period = t.period && count >= Quorum.supermajority ctx.Context.n then
      advance_period t ctx ~starting:value
  | _ -> ()

let on_timer t ctx (timer : Timer.t) =
  match timer.payload with
  | Alg_step { period; step } ->
    if period = t.period && t.decided = None then begin
      match step with
      | 2 ->
        soft_vote t ctx;
        set_step_timer t ctx ~period ~step:4 ~delay_ms:(2. *. step_ms ctx)
      | _ ->
        (* Step 4 and beyond: (re-)broadcast the next-vote until the period
           advances; the re-broadcast lets quorums form after a partition
           heals even though the original votes were dropped. *)
        next_vote t ctx ~rebroadcast:true;
        set_step_timer t ctx ~period ~step:4 ~delay_ms:(step_ms ctx)
    end
  | _ -> ()

let view = current_period

let () =
  Message.register_printer (function
    | Alg_proposal { period; value; _ } -> Some (Printf.sprintf "AlgProp(p=%d,%s)" period value)
    | Alg_soft { period; value } -> Some (Printf.sprintf "AlgSoft(p=%d,%s)" period value)
    | Alg_cert { period; value } -> Some (Printf.sprintf "AlgCert(p=%d,%s)" period value)
    | Alg_next { period; value } ->
      Some (Printf.sprintf "AlgNext(p=%d,%s)" period (if value = bot then "bot" else value))
    | _ -> None)

(* A restarted replica rejoins from scratch: safe for this protocol's
   message flow, though a one-shot instance that already passed its
   decision point may never re-decide. *)
let on_restart = on_start
