open Bftsim_core
module Attack = Bftsim_attack

(* A candidate is one simplification step applied to a failing config; it
   must still be a valid configuration to be worth re-running. *)
let valid config = match Config.validate config with () -> true | exception Invalid_argument _ -> false

let without_nth xs k = List.filteri (fun i _ -> i <> k) xs

let halves = function
  | [] | [ _ ] -> []
  | xs ->
    let k = List.length xs / 2 in
    [ List.filteri (fun i _ -> i < k) xs; List.filteri (fun i _ -> i >= k) xs ]

(* Reduce n while keeping the rest of the scenario meaningful: drop crashed
   ids that no longer exist, clamp the partition split, and keep only chaos
   steps that still validate. *)
let with_n (config : Config.t) n' =
  let crashed = List.filter (fun id -> id < n') config.Config.crashed in
  let attack =
    match config.Config.attack with
    | Config.Partition { first_size; start_ms; heal_ms; drop } ->
      Config.Partition { first_size = max 1 (min first_size (n' - 1)); start_ms; heal_ms; drop }
    | Config.Silence { nodes; at_ms } ->
      Config.Silence { nodes = List.filter (fun id -> id < n') nodes; at_ms }
    | a -> a
  in
  let chaos =
    List.filter
      (fun step -> match Attack.Fault_schedule.validate ~n:n' [ step ] with
        | () -> true
        | exception Invalid_argument _ -> false)
      config.Config.chaos
  in
  (* A twins schedule's partition groups are keyed by physical ids, which
     shift when n does — there is no faithful down-mapping, so shrinking n
     drops the twins dimension (its own candidates shrink it in place). *)
  { config with Config.n = n'; crashed; attack; chaos; twins = None }

let candidates (config : Config.t) =
  let chaos_steps = config.Config.chaos in
  let chaos_candidates =
    if chaos_steps = [] then []
    else
      ({ config with Config.chaos = [] }
       :: List.map (fun half -> { config with Config.chaos = half }) (halves chaos_steps))
      @
      if List.length chaos_steps <= 6 then
        List.mapi (fun k _ -> { config with Config.chaos = without_nth chaos_steps k }) chaos_steps
      else []
  in
  let attack_candidates =
    match config.Config.attack with
    | Config.No_attack -> []
    | _ -> [ { config with Config.attack = Config.No_attack } ]
  in
  let crashed_candidates =
    match config.Config.crashed with
    | [] -> []
    | [ _ ] -> [ { config with Config.crashed = [] } ]
    | ids ->
      ({ config with Config.crashed = [] }
       :: List.map (fun half -> { config with Config.crashed = half }) (halves ids))
      @ List.mapi (fun k _ -> { config with Config.crashed = without_nth ids k }) ids
  in
  let n_candidates =
    List.filter_map
      (fun n' -> if n' < config.Config.n then Some (with_n config n') else None)
      [ 4; 5; 7; 8; 10; 13 ]
  in
  let target_candidates =
    if config.Config.decisions_target > 1 then
      [ { config with Config.decisions_target = 1 } ]
    else []
  in
  let seed_candidates =
    if config.Config.seed > 3 then
      List.map (fun s -> { config with Config.seed = s }) [ 1; 2; 3 ]
    else []
  in
  let delay_candidates =
    match config.Config.delay with
    | Bftsim_net.Delay_model.Constant _ -> []
    | _ -> [ { config with Config.delay = Bftsim_net.Delay_model.Constant 100. } ]
  in
  let inputs_candidates =
    match config.Config.inputs with
    | Config.Distinct -> []
    | _ -> [ { config with Config.inputs = Config.Distinct } ]
  in
  let twins_candidates =
    match config.Config.twins with
    | None -> []
    | Some tw ->
      let with_tw tw' = { config with Config.twins = Some tw' } in
      ({ config with Config.twins = None }
       :: (if tw.Attack.Twins_schedule.leaders <> [] then
             [ with_tw { tw with Attack.Twins_schedule.leaders = [] } ]
           else []))
      @ (match tw.Attack.Twins_schedule.rounds with
        | [] | [ _ ] -> []
        | rounds ->
          (* Prefix truncation keeps round indices meaningful (a suffix
             would renumber every remaining round). *)
          let k = List.length rounds / 2 in
          [ with_tw { tw with Attack.Twins_schedule.rounds = List.filteri (fun i _ -> i < k) rounds } ])
      @ List.filter_map
          (fun round_ms' ->
            if round_ms' < tw.Attack.Twins_schedule.round_ms then
              Some (with_tw { tw with Attack.Twins_schedule.round_ms = round_ms' })
            else None)
          [ 1000.; 2000. ]
  in
  List.filter valid
    (twins_candidates @ chaos_candidates @ attack_candidates @ crashed_candidates @ n_candidates
   @ target_candidates @ delay_candidates @ inputs_candidates @ seed_candidates)

let minimize ?(budget = 48) ~fails config =
  if budget < 0 then invalid_arg "Shrink.minimize: negative budget";
  let attempts = ref 0 in
  let rec fixpoint current =
    let rec first_failing = function
      | [] -> None
      | candidate :: rest ->
        if !attempts >= budget then None
        else begin
          incr attempts;
          if fails candidate then Some candidate else first_failing rest
        end
    in
    match first_failing (candidates current) with
    | Some simpler -> fixpoint simpler
    | None -> current
  in
  let minimal = fixpoint config in
  (minimal, !attempts)
