open Bftsim_core
module Attack = Bftsim_attack
module Protocols = Bftsim_protocols

type verdict = { oracle : string; detail : string }

let describe v = Printf.sprintf "[%s] %s" v.oracle v.detail

(* Protocols whose decided values are (derived from) the proposed inputs;
   chained protocols decide block digests, so validity is meaningless there
   (the same reasoning as Config.check_validity's default).  async-ba is
   excluded: it hashes non-binary inputs down to a bit, so its decisions
   derive from proposals only under already-binary inputs — handled
   separately below. *)
let value_deciding = [ "add-v1"; "add-v2"; "add-v3"; "algorand"; "pbft" ]

(* One-shot consensus: each node decides exactly once, so a second decision
   is a decide-once (integrity) violation.  Multi-slot and chained
   protocols may legitimately overshoot the decision target (a single
   3-chain commit can decide several ancestor blocks at once). *)
let one_shot = [ "add-v1"; "add-v2"; "add-v3"; "algorand"; "async-ba" ]

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

(* A twinned identity is the run's emulated Byzantine node: its two halves
   may legitimately equivocate, so its decisions never count towards the
   safety oracles — the violation to detect is disagreement among the
   remaining honest identities. *)
let twinned (config : Config.t) node =
  match config.Config.twins with
  | None -> false
  | Some tw -> List.mem node tw.Attack.Twins_schedule.ids

(* A node's decisions count towards safety oracles when it is honest for
   the whole run: not config-crashed, not adaptively corrupted, not
   twinned. *)
let counted (config : Config.t) (result : Controller.result) node =
  (not (List.mem node config.Config.crashed))
  && (not (List.mem node result.Controller.corrupted))
  && not (twinned config node)

(* Per-index agreement additionally presumes a complete decision log, which
   chaos-crashed-and-recovered nodes do not have (no state transfer), and
   neither does an honest node a twins round ever cut off from a quorum. *)
let aligned (config : Config.t) (result : Controller.result) node =
  counted config result node
  && (not (Attack.Fault_schedule.ever_crashed config.Config.chaos ~node))
  && not
       (match config.Config.twins with
       | None -> false
       | Some tw ->
         Attack.Twins_schedule.isolated_below_quorum ~n:config.Config.n
           ~quorum:(Protocols.Quorum.quorum config.Config.n) tw ~node)

let agreement_over ~aligned decisions =
  let verdicts = ref [] in
  let by_index : (int, int * string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (node, values) ->
      if aligned node then
        List.iteri
          (fun k value ->
            match Hashtbl.find_opt by_index k with
            | None -> Hashtbl.replace by_index k (node, value)
            | Some (other, expected) ->
              if not (String.equal expected value) then
                verdicts :=
                  {
                    oracle = "agreement";
                    detail =
                      Printf.sprintf "decision %d: node %d decided %S but node %d decided %S" k
                        node value other expected;
                  }
                  :: !verdicts)
          values)
    decisions;
  List.rev !verdicts

let agreement config result =
  agreement_over ~aligned:(aligned config result) result.Controller.decisions

let validity config result =
  let proposals = List.init config.Config.n (Config.input_for config) in
  let binary = List.for_all (fun p -> p = "0" || p = "1") proposals in
  let derives =
    if List.mem config.Config.protocol value_deciding then
      Some (fun value -> List.exists (fun p -> contains ~needle:p value) proposals)
    else if config.Config.protocol = "async-ba" && binary then
      (* Binary validity: with all-binary inputs the decided bit must have
         been proposed by someone. *)
      Some (fun value -> List.mem value proposals)
    else None
  in
  match derives with
  | None -> []
  | Some derives ->
    List.concat_map
      (fun (node, values) ->
        if not (counted config result node) then []
        else
          List.filter_map
            (fun value ->
              if derives value then None
              else
                Some
                  {
                    oracle = "validity";
                    detail =
                      Printf.sprintf "node %d decided %S, which derives from no proposed value"
                        node value;
                  })
            values)
      result.Controller.decisions

let integrity config result =
  let verdicts = ref [] in
  let flag detail = verdicts := { oracle = "integrity"; detail } :: !verdicts in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (node, values) ->
      let occurrences = 1 + Option.value ~default:0 (Hashtbl.find_opt seen node) in
      Hashtbl.replace seen node occurrences;
      (* A twinned identity legitimately contributes one row per physical
         half; anything beyond the expected multiplicity is a corrupted
         decision table. *)
      let allowed = if twinned config node then 2 else 1 in
      if occurrences > allowed then
        flag
          (Printf.sprintf "node %d appears %d times in the decision table (expected %d)" node
             occurrences allowed);
      if List.mem node config.Config.crashed && values <> [] then
        flag
          (Printf.sprintf "config-crashed node %d decided %d value(s)" node (List.length values));
      if
        List.mem config.Config.protocol one_shot
        && counted config result node
        && List.length values > 1
      then
        flag
          (Printf.sprintf "node %d decided %d times in a one-shot consensus" node
             (List.length values)))
    result.Controller.decisions;
  List.rev !verdicts

let qc_sanity ~n =
  let f = Protocols.Quorum.max_faulty n in
  let q = Protocols.Quorum.quorum n in
  let verdicts = ref [] in
  let flag detail = verdicts := { oracle = "qc-sanity"; detail } :: !verdicts in
  if q > n then flag (Printf.sprintf "quorum %d exceeds n = %d" q n);
  if q < 1 then flag (Printf.sprintf "quorum %d is empty (n = %d)" q n);
  (* Quorum intersection: two quorums overlap in at least 2q - n nodes; that
     overlap must contain an honest node, i.e. exceed f. *)
  if (2 * q) - n < f + 1 then
    flag
      (Printf.sprintf
         "quorum intersection broken: two quorums of %d among %d nodes overlap in %d <= f = %d"
         q n ((2 * q) - n) f);
  if Protocols.Quorum.one_honest n < f + 1 then
    flag (Printf.sprintf "one-honest threshold %d admits all-faulty sets (f = %d)"
            (Protocols.Quorum.one_honest n) f);
  List.rev !verdicts

let online result =
  List.map
    (fun v ->
      { oracle = "online-" ^ v.Invariant.monitor; detail = Invariant.describe_violation v })
    result.Controller.violations

let check_trace config (result : Controller.result) =
  match result.Controller.trace with
  | None -> []
  | Some trace ->
    (* Trace rows carry physical node ids; the result table is logical.
       Map before comparing so a twin half's decisions line up with the row
       its identity published. *)
    let to_logical node =
      match config.Config.twins with
      | Some tw when node >= config.Config.n ->
        Attack.Twins_schedule.logical ~n:config.Config.n tw node
      | Some _ | None -> node
    in
    let from_trace =
      List.sort compare
        (List.map (fun (node, values) -> (to_logical node, values)) (Trace.decisions trace))
    in
    let from_result =
      List.sort compare
        (List.filter (fun (_, values) -> values <> []) result.Controller.decisions)
    in
    (if from_trace <> from_result then
       [
         {
           oracle = "trace-consistency";
           detail = "decisions recorded in the trace differ from the result's decision table";
         };
       ]
     else [])
    @ agreement_over ~aligned:(aligned config result) from_trace

(* Crash-recovery oracle: a node the chaos plan restarts must rejoin the
   network instead of forking away from it.  Two obligations:

   (a) no conflicting re-commits — at every decision index the restarted
       node shares with the reference log (the longest log among aligned
       nodes), the values agree.  Catch-up re-commits the missed suffix, so
       an index-shifted or diverging log means the WAL rehydration or the
       block/state transfer replayed history wrong;
   (b) rejoin within [view_slack] views — the restarted node's final view
       must reach the aligned maximum minus the slack.  A node stuck in a
       stale view never rejoined, even if it re-decided old values. *)
let recovery ?(view_slack = 4) (config : Config.t) (result : Controller.result) =
  let restarted =
    List.sort_uniq compare (Attack.Fault_schedule.restarts config.Config.chaos)
  in
  if restarted = [] then []
  else begin
    let verdicts = ref [] in
    let flag detail = verdicts := { oracle = "recovery"; detail } :: !verdicts in
    let aligned = aligned config result in
    let reference =
      List.fold_left
        (fun acc (node, values) ->
          if not (aligned node) then acc
          else
            match acc with
            | Some (_, best) when List.length best >= List.length values -> acc
            | _ -> Some (node, values))
        None result.Controller.decisions
    in
    let max_view =
      let m = ref (-1) in
      Array.iteri
        (fun node v -> if aligned node && v > !m then m := v)
        result.Controller.final_views;
      !m
    in
    List.iter
      (fun node ->
        (match (reference, List.assoc_opt node result.Controller.decisions) with
        | Some (ref_node, ref_values), Some values ->
          List.iteri
            (fun k value ->
              match List.nth_opt ref_values k with
              | Some expected when not (String.equal expected value) ->
                flag
                  (Printf.sprintf
                     "restarted node %d committed %S at index %d where node %d committed %S" node
                     value k ref_node expected)
              | Some _ | None -> ())
            values
        | _, _ -> ());
        if max_view >= 0 && node >= 0 && node < Array.length result.Controller.final_views then begin
          let v = result.Controller.final_views.(node) in
          if v >= 0 && v < max_view - view_slack then
            flag
              (Printf.sprintf
                 "restarted node %d finished in view %d, more than %d views behind the network \
                  (view %d): it never rejoined"
                 node v view_slack max_view)
        end)
      restarted;
    List.rev !verdicts
  end

let check_result config result =
  qc_sanity ~n:config.Config.n
  @ agreement config result
  @ integrity config result
  @ validity config result
  @ recovery config result
  @ online result
  @ check_trace config result
