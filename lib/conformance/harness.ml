open Bftsim_core

type failure = {
  scenario : Scenario.t;
  verdicts : Oracle.verdict list;
  shrunk : Config.t;
  shrunk_verdicts : Oracle.verdict list;
  shrunk_result : Controller.result;
  shrink_attempts : int;
  bundle : string option;
}

type report = {
  scenarios : int;
  checks : int;
  failures : failure list;
  crashed : (int * string) list;
  resumed : int;
}

let ok report = report.failures = [] && report.crashed = []

let check_config ?(determinism = true) ?(expect_live = true) ?cancel config =
  let config = { config with Config.record_trace = true } in
  let result = Controller.run ?cancel config in
  let verdicts = Oracle.check_result config result in
  let liveness =
    if expect_live && result.Controller.outcome <> Controller.Reached_target then
      [
        {
          Oracle.oracle = "liveness";
          detail =
            Format.asprintf "expected to reach the decision target but %a after %g ms"
              Controller.pp_outcome result.Controller.outcome result.Controller.time_ms;
        };
      ]
    else []
  in
  let det =
    if not determinism then []
    else begin
      let r = Validator.check_determinism config in
      if r.Validator.decisions_match && r.Validator.trace_match <> Some false then []
      else
        [
          {
            Oracle.oracle = "determinism";
            detail = Format.asprintf "%a" Validator.pp_report r;
          };
        ]
    end
  in
  (verdicts @ liveness @ det, result)

let run_scenario ?determinism ?cancel (scenario : Scenario.t) =
  check_config ?determinism ?cancel ~expect_live:scenario.Scenario.expect_live
    scenario.Scenario.config

let bundle_name idx (config : Config.t) =
  Printf.sprintf "%03d-%s-n%d-seed%d" idx config.Config.protocol config.Config.n config.Config.seed

let campaign_cell ?(mode = "conform") ~budget ~seed scenarios =
  ignore (budget, seed);
  Journal.fingerprint ~mode ~reps:1
    (List.map (fun (s : Scenario.t) -> s.Scenario.config) scenarios)

(* One scenario check under supervision.  [Passed] covers both a fresh
   pass and one replayed from the journal; failing and crashing scenarios
   are never journaled, so a resumed campaign re-examines them and the
   report comes out identical to an uninterrupted run's. *)
type checked = Passed | Failed of (Oracle.verdict list * Controller.result) | Crashed of string

let fuzz_scenarios ?mode ?jobs ?(determinism = true) ?(shrink = true) ?(shrink_budget = 48)
    ?bundle_dir ?policy ?journal ?(resumed = []) ~seed scenarios =
  let cell = campaign_cell ?mode ~budget:(List.length scenarios) ~seed scenarios in
  let already_passed = Journal.checks resumed ~cell in
  let supervisor =
    let policy = match policy with Some p -> p | None -> { Supervisor.default_policy with seed } in
    let on_failure =
      Option.map
        (fun j ~key ~attempt ~wall_ms kind ->
          let kind_s, detail, backtrace =
            match kind with
            | Supervisor.Crash { exn; backtrace } -> ("crash", exn, backtrace)
            | Supervisor.Deadline -> ("deadline", "wall-clock deadline exceeded", "")
          in
          let rep =
            try Scanf.sscanf key "scenario%d" Fun.id
            with Scanf.Scan_failure _ | End_of_file -> -1
          in
          Journal.append j
            (Journal.Failure { cell; rep; attempt; wall_ms; kind = kind_s; detail; backtrace }))
        journal
    in
    Supervisor.create ~policy ?on_failure ()
  in
  (* Scenario checks are independent full simulations, so they fan out
     across the domain pool exactly like Runner replications — under
     supervision, so one crashing oracle or hung scenario cannot sink the
     campaign. *)
  let checked =
    Parallel.map ?jobs
      (fun (idx, s) ->
        if List.mem idx already_passed then Passed
        else
          let outcome =
            Supervisor.supervise supervisor
              ~key:(Printf.sprintf "scenario%d" idx)
              (fun ~cancel -> run_scenario ~determinism ~cancel s)
          in
          match outcome with
          | Supervisor.Ok ((verdicts, _) as check) ->
            if verdicts = [] then begin
              (match journal with
              | Some j -> Journal.append j (Journal.Check { cell; index = idx })
              | None -> ());
              Passed
            end
            else Failed check
          | Supervisor.Crashed { exn; retries; backtrace = _ } ->
            Crashed (Printf.sprintf "%s (after %d retr%s)" exn retries
                       (if retries = 1 then "y" else "ies"))
          | Supervisor.Deadline_exceeded { wall_ms; retries = _ } ->
            Crashed (Printf.sprintf "wall-clock deadline exceeded after %.0f ms" wall_ms)
          | Supervisor.Quarantined { failures } ->
            Crashed (Printf.sprintf "quarantined after %d failure(s)" failures))
      (List.mapi (fun i s -> (i, s)) scenarios)
  in
  let crashed =
    List.concat
      (List.mapi (fun i -> function Crashed d -> [ (i, d) ] | _ -> []) checked)
  in
  let failures =
    List.concat
      (List.map2
         (fun scenario checked_one ->
           match checked_one with
           | Passed | Crashed _ -> []
           | Failed (verdicts, result) -> begin
             let expect_live = scenario.Scenario.expect_live in
             let fails c = fst (check_config ~determinism ~expect_live c) <> [] in
             let shrunk, shrink_attempts =
               if shrink then Shrink.minimize ~budget:shrink_budget ~fails scenario.Scenario.config
               else (scenario.Scenario.config, 0)
             in
             let shrunk_verdicts, shrunk_result =
               if shrunk == scenario.Scenario.config then (verdicts, result)
               else check_config ~determinism ~expect_live shrunk
             in
             [
               {
                 scenario;
                 verdicts;
                 shrunk;
                 shrunk_verdicts;
                 shrunk_result;
                 shrink_attempts;
                 bundle = None;
               };
             ]
           end)
         scenarios checked)
  in
  let failures =
    match bundle_dir with
    | None -> failures
    | Some dir ->
      List.mapi
        (fun idx f ->
          let bundle =
            Bundle.write ~dir ~name:(bundle_name idx f.shrunk) ~original:f.scenario.Scenario.config
              ~shrunk:f.shrunk ~verdicts:f.shrunk_verdicts ~result:f.shrunk_result ()
          in
          { f with bundle = Some bundle })
        failures
  in
  {
    scenarios = List.length scenarios;
    checks = List.length checked;
    failures;
    crashed;
    resumed = List.length already_passed;
  }

let fuzz ?protocols ?families ?jobs ?determinism ?shrink ?shrink_budget ?bundle_dir ?policy
    ?journal ?resumed ~budget ~seed () =
  let scenarios = Scenario.sample ?protocols ?families ~budget ~seed () in
  fuzz_scenarios ?jobs ?determinism ?shrink ?shrink_budget ?bundle_dir ?policy ?journal ?resumed
    ~seed scenarios

let pp_report ppf r =
  Format.fprintf ppf "%d scenario(s), %d failure(s)%s" r.scenarios (List.length r.failures)
    (if r.crashed = [] then ""
     else Printf.sprintf ", %d crashed check(s)" (List.length r.crashed));
  List.iter
    (fun (idx, detail) -> Format.fprintf ppf "@.CRASH scenario #%d: %s" idx detail)
    r.crashed;
  List.iter
    (fun f ->
      Format.fprintf ppf "@.FAIL %s" (Scenario.describe f.scenario);
      List.iter (fun v -> Format.fprintf ppf "@.  %s" (Oracle.describe v)) f.verdicts;
      Format.fprintf ppf "@.  shrunk (%d attempt(s)) to: %s" f.shrink_attempts
        (Config.describe f.shrunk);
      match f.bundle with
      | Some path -> Format.fprintf ppf "@.  bundle: %s" path
      | None -> ())
    r.failures
