open Bftsim_core

type failure = {
  scenario : Scenario.t;
  verdicts : Oracle.verdict list;
  shrunk : Config.t;
  shrunk_verdicts : Oracle.verdict list;
  shrunk_result : Controller.result;
  shrink_attempts : int;
  bundle : string option;
}

type report = { scenarios : int; checks : int; failures : failure list }

let ok report = report.failures = []

let check_config ?(determinism = true) ?(expect_live = true) config =
  let config = { config with Config.record_trace = true } in
  let result = Controller.run config in
  let verdicts = Oracle.check_result config result in
  let liveness =
    if expect_live && result.Controller.outcome <> Controller.Reached_target then
      [
        {
          Oracle.oracle = "liveness";
          detail =
            Format.asprintf "expected to reach the decision target but %a after %g ms"
              Controller.pp_outcome result.Controller.outcome result.Controller.time_ms;
        };
      ]
    else []
  in
  let det =
    if not determinism then []
    else begin
      let r = Validator.check_determinism config in
      if r.Validator.decisions_match && r.Validator.trace_match <> Some false then []
      else
        [
          {
            Oracle.oracle = "determinism";
            detail = Format.asprintf "%a" Validator.pp_report r;
          };
        ]
    end
  in
  (verdicts @ liveness @ det, result)

let run_scenario ?determinism (scenario : Scenario.t) =
  check_config ?determinism ~expect_live:scenario.Scenario.expect_live scenario.Scenario.config

let bundle_name idx (config : Config.t) =
  Printf.sprintf "%03d-%s-n%d-seed%d" idx config.Config.protocol config.Config.n config.Config.seed

let fuzz ?protocols ?families ?jobs ?(determinism = true) ?(shrink = true) ?(shrink_budget = 48)
    ?bundle_dir ~budget ~seed () =
  let scenarios = Scenario.sample ?protocols ?families ~budget ~seed () in
  (* Scenario checks are independent full simulations, so they fan out
     across the domain pool exactly like Runner replications. *)
  let checked =
    Parallel.map ?jobs
      (fun (s : Scenario.t) -> run_scenario ~determinism s)
      scenarios
  in
  let failures =
    List.concat
      (List.map2
         (fun scenario (verdicts, result) ->
           if verdicts = [] then []
           else begin
             let expect_live = scenario.Scenario.expect_live in
             let fails c = fst (check_config ~determinism ~expect_live c) <> [] in
             let shrunk, shrink_attempts =
               if shrink then Shrink.minimize ~budget:shrink_budget ~fails scenario.Scenario.config
               else (scenario.Scenario.config, 0)
             in
             let shrunk_verdicts, shrunk_result =
               if shrunk == scenario.Scenario.config then (verdicts, result)
               else check_config ~determinism ~expect_live shrunk
             in
             [
               {
                 scenario;
                 verdicts;
                 shrunk;
                 shrunk_verdicts;
                 shrunk_result;
                 shrink_attempts;
                 bundle = None;
               };
             ]
           end)
         scenarios checked)
  in
  let failures =
    match bundle_dir with
    | None -> failures
    | Some dir ->
      List.mapi
        (fun idx f ->
          let bundle =
            Bundle.write ~dir ~name:(bundle_name idx f.shrunk) ~original:f.scenario.Scenario.config
              ~shrunk:f.shrunk ~verdicts:f.shrunk_verdicts ~result:f.shrunk_result ()
          in
          { f with bundle = Some bundle })
        failures
  in
  { scenarios = List.length scenarios; checks = List.length checked; failures }

let pp_report ppf r =
  Format.fprintf ppf "%d scenario(s), %d failure(s)" r.scenarios (List.length r.failures);
  List.iter
    (fun f ->
      Format.fprintf ppf "@.FAIL %s" (Scenario.describe f.scenario);
      List.iter (fun v -> Format.fprintf ppf "@.  %s" (Oracle.describe v)) f.verdicts;
      Format.fprintf ppf "@.  shrunk (%d attempt(s)) to: %s" f.shrink_attempts
        (Config.describe f.shrunk);
      match f.bundle with
      | Some path -> Format.fprintf ppf "@.  bundle: %s" path
      | None -> ())
    r.failures
