(** Replayable counterexample bundles.

    When the harness finds a violation it persists everything needed to
    reproduce and triage it, as plain text under [dir/name/]:

    - [config.txt] — the shrunk failing configuration in the CLI's
      key = value syntax, replayable verbatim with [bftsim run -c] /
      [bftsim validate -c];
    - [original.txt] — the configuration as generated, before shrinking;
    - [report.txt] — the oracle verdicts and the run outcome;
    - [trace.txt] — the failing run's event trace, when recorded. *)

open Bftsim_core

val mkdir_p : string -> unit

val write :
  dir:string ->
  name:string ->
  original:Config.t ->
  shrunk:Config.t ->
  verdicts:Oracle.verdict list ->
  result:Controller.result ->
  unit ->
  string
(** Writes the bundle and returns its directory path. *)
