(** Counterexample shrinking.

    Given a failing configuration and a predicate that re-runs the harness,
    greedily minimize the scenario: drop the chaos schedule (whole, halves,
    then single steps), remove the attacker, shed crashed nodes, shrink [n]
    (fixing up crashed ids, partition splits and chaos steps to stay valid),
    reduce the decision target to 1, simplify the delay model to a constant,
    and try small seeds.  Each accepted step restarts the scan, so the
    result is a local minimum: no single candidate simplification of it
    still fails.

    The predicate is typically [fun c -> Harness.check_config c <> []]; any
    failure — not necessarily the original oracle — keeps a candidate, which
    is the standard delta-debugging trade-off (it can only make the repro
    simpler to trigger). *)

open Bftsim_core

val candidates : Config.t -> Config.t list
(** The one-step simplifications of a config, most aggressive first, each
    already re-validated. *)

val minimize : ?budget:int -> fails:(Config.t -> bool) -> Config.t -> Config.t * int
(** [minimize ~fails config] is the shrunk config together with the number
    of predicate evaluations spent.  [budget] (default 48) caps those
    evaluations; the original [config] is assumed failing and is returned
    unchanged if nothing simpler fails. *)
