open Bftsim_core
module Sha256 = Bftsim_crypto.Sha256

let canonical (r : Controller.result) =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  add "protocol=%s" r.Controller.config.Config.protocol;
  add "n=%d" r.Controller.config.Config.n;
  add "seed=%d" r.Controller.config.Config.seed;
  add "outcome=%s" (Format.asprintf "%a" Controller.pp_outcome r.Controller.outcome);
  add "time_ms=%.6f" r.Controller.time_ms;
  add "messages_sent=%d" r.Controller.messages_sent;
  add "bytes_sent=%d" r.Controller.bytes_sent;
  add "messages_dropped=%d" r.Controller.messages_dropped;
  add "events=%d" r.Controller.events_processed;
  add "safety_ok=%b" r.Controller.safety_ok;
  List.iter
    (fun (node, values) -> add "decided:%d=[%s]" node (String.concat ";" values))
    (List.sort compare r.Controller.decisions);
  add "final_views=[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int r.Controller.final_views)));
  Buffer.contents b

let of_result r = Sha256.to_hex (Sha256.digest_string (canonical r))

let canonical_trace trace =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (Format.asprintf "%a" Trace.pp_entry e);
      Buffer.add_char b '\n')
    (Trace.entries trace);
  Buffer.contents b

let of_trace trace = Sha256.to_hex (Sha256.digest_string (canonical_trace trace))
