(** The conformance harness: generate → run → judge → shrink → persist.

    One {!check_config} call runs a configuration (trace recording on),
    evaluates every {!Oracle} on the result, adds a {e liveness} verdict
    when a run expected to terminate did not, and — unless disabled — a
    {e determinism} verdict from {!Bftsim_core.Validator.check_determinism}
    (so each scenario costs up to three simulations).

    {!fuzz} drives a whole batch: scenarios are drawn by {!Scenario.sample}
    from a seed, checked in parallel across the domain pool, and each
    failure is shrunk with {!Shrink.minimize} and optionally persisted as a
    replayable {!Bundle}. *)

open Bftsim_core

type failure = {
  scenario : Scenario.t;  (** As generated. *)
  verdicts : Oracle.verdict list;  (** Verdicts against the original config. *)
  shrunk : Config.t;  (** Minimized failing config (= original if unshrinkable). *)
  shrunk_verdicts : Oracle.verdict list;
  shrunk_result : Controller.result;
  shrink_attempts : int;  (** Predicate evaluations the shrinker spent. *)
  bundle : string option;  (** Bundle directory, when one was written. *)
}

type report = {
  scenarios : int;
  checks : int;
  failures : failure list;
  crashed : (int * string) list;
      (** Scenario checks the supervisor gave up on (index, diagnosis) —
          crashes, deadline overruns, quarantines.  Deterministic across
          resume: crashed checks are never journaled, so they re-run. *)
  resumed : int;  (** Checks skipped because the journal recorded a pass. *)
}

val ok : report -> bool
(** No oracle failures {e and} no crashed checks. *)

val check_config :
  ?determinism:bool ->
  ?expect_live:bool ->
  ?cancel:(unit -> bool) ->
  Config.t ->
  Oracle.verdict list * Controller.result
(** Run one configuration and judge it.  [determinism] (default [true])
    additionally replays the config twice through the validator;
    [expect_live] (default [true]) turns a non-[Reached_target] outcome
    into a verdict.  [cancel] is threaded to the main [Controller.run] —
    the supervision layer's cooperative deadline. *)

val run_scenario :
  ?determinism:bool ->
  ?cancel:(unit -> bool) ->
  Scenario.t ->
  Oracle.verdict list * Controller.result

val campaign_cell : ?mode:string -> budget:int -> seed:int -> Scenario.t list -> string
(** Journal cell (and campaign fingerprint) of a fuzzing batch: a stable
    hash over the sampled scenarios' configurations.  The CLI computes it
    from [Scenario.sample] with the same arguments it passes to {!fuzz}.
    [mode] (default ["conform"]) namespaces the fingerprint, so a twins
    campaign's journal is never mistaken for a conformance one's. *)

val fuzz_scenarios :
  ?mode:string ->
  ?jobs:int ->
  ?determinism:bool ->
  ?shrink:bool ->
  ?shrink_budget:int ->
  ?bundle_dir:string ->
  ?policy:Supervisor.policy ->
  ?journal:Journal.t ->
  ?resumed:Journal.event list ->
  seed:int ->
  Scenario.t list ->
  report
(** Check an explicitly supplied scenario list through the full
    supervise → judge → shrink → bundle pipeline.  This is the engine
    under {!fuzz}; callers with their own scenario source (the twins
    enumerator) use it directly.  [mode] namespaces the journal cell. *)

val fuzz :
  ?protocols:string list ->
  ?families:Scenario.family list ->
  ?jobs:int ->
  ?determinism:bool ->
  ?shrink:bool ->
  ?shrink_budget:int ->
  ?bundle_dir:string ->
  ?policy:Supervisor.policy ->
  ?journal:Journal.t ->
  ?resumed:Journal.event list ->
  budget:int ->
  seed:int ->
  unit ->
  report
(** [fuzz ~budget ~seed ()] draws and checks [budget] scenarios.  Scenario
    checks fan out over [jobs] domains ({!Bftsim_core.Parallel.map}
    defaults) under a [Supervisor] ([policy] defaults to
    [Supervisor.default_policy] with this campaign's [seed]): a crashing
    or deadline-overrunning check lands in [report.crashed] instead of
    sinking the campaign.  Shrinking and bundle writing happen
    sequentially afterwards.  [bundle_dir] enables counterexample
    persistence.

    [journal] records every {e passed} check (and every failed supervised
    attempt) as it happens; [resumed] takes the loaded events of a prior
    journal and skips the recorded passes.  Failing and crashing scenarios
    are deliberately not journaled — a resumed campaign re-examines them,
    so its report is identical to an uninterrupted run's. *)

val pp_report : Format.formatter -> report -> unit
