(** The conformance harness: generate → run → judge → shrink → persist.

    One {!check_config} call runs a configuration (trace recording on),
    evaluates every {!Oracle} on the result, adds a {e liveness} verdict
    when a run expected to terminate did not, and — unless disabled — a
    {e determinism} verdict from {!Bftsim_core.Validator.check_determinism}
    (so each scenario costs up to three simulations).

    {!fuzz} drives a whole batch: scenarios are drawn by {!Scenario.sample}
    from a seed, checked in parallel across the domain pool, and each
    failure is shrunk with {!Shrink.minimize} and optionally persisted as a
    replayable {!Bundle}. *)

open Bftsim_core

type failure = {
  scenario : Scenario.t;  (** As generated. *)
  verdicts : Oracle.verdict list;  (** Verdicts against the original config. *)
  shrunk : Config.t;  (** Minimized failing config (= original if unshrinkable). *)
  shrunk_verdicts : Oracle.verdict list;
  shrunk_result : Controller.result;
  shrink_attempts : int;  (** Predicate evaluations the shrinker spent. *)
  bundle : string option;  (** Bundle directory, when one was written. *)
}

type report = { scenarios : int; checks : int; failures : failure list }

val ok : report -> bool

val check_config :
  ?determinism:bool -> ?expect_live:bool -> Config.t -> Oracle.verdict list * Controller.result
(** Run one configuration and judge it.  [determinism] (default [true])
    additionally replays the config twice through the validator;
    [expect_live] (default [true]) turns a non-[Reached_target] outcome
    into a verdict. *)

val run_scenario : ?determinism:bool -> Scenario.t -> Oracle.verdict list * Controller.result

val fuzz :
  ?protocols:string list ->
  ?families:Scenario.family list ->
  ?jobs:int ->
  ?determinism:bool ->
  ?shrink:bool ->
  ?shrink_budget:int ->
  ?bundle_dir:string ->
  budget:int ->
  seed:int ->
  unit ->
  report
(** [fuzz ~budget ~seed ()] draws and checks [budget] scenarios.  Scenario
    checks fan out over [jobs] domains ({!Bftsim_core.Parallel.map}
    defaults); shrinking and bundle writing happen sequentially afterwards.
    [bundle_dir] enables counterexample persistence. *)

val pp_report : Format.formatter -> report -> unit
