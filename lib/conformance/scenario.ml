open Bftsim_core
module Net = Bftsim_net
module Protocols = Bftsim_protocols
module Attack = Bftsim_attack
module Gen = QCheck.Gen

type family = Passthrough | Failstop | Partition_split | Slowdown | Crash_recover | Twins

type t = { config : Config.t; family : family; expect_live : bool }

let all_families = [ Passthrough; Failstop; Partition_split; Slowdown; Crash_recover; Twins ]

let family_to_string = function
  | Passthrough -> "none"
  | Failstop -> "failstop"
  | Partition_split -> "partition"
  | Slowdown -> "delay"
  | Crash_recover -> "chaos"
  | Twins -> "twins"

let family_of_string = function
  | "none" | "passthrough" -> Some Passthrough
  | "failstop" -> Some Failstop
  | "partition" -> Some Partition_split
  | "delay" | "slowdown" -> Some Slowdown
  | "chaos" | "crash-recover" -> Some Crash_recover
  | "twins" -> Some Twins
  | _ -> None

let default_ns = [ 4; 5; 7; 8; 10; 13; 16 ]

(* Partitions and adversarial slowdowns break the synchrony assumption a
   synchronous-model protocol is entitled to, so an agreement violation
   there would be the model's fault, not the engine's — restrict those
   families to protocols designed for weaker models. *)
let applicable ~model family =
  match family with
  | Passthrough | Failstop | Crash_recover -> true
  | Partition_split | Slowdown | Twins -> model <> Protocols.Protocol_intf.Synchronous

(* HotStuff with the naive pacemaker loses liveness under crashed leaders
   by design (EXPERIMENTS.md Fig 7: never-certificated exponential backoff
   — the documented weakness Cogsworth fixes), so failing to reach the
   target there is expected behaviour, not a conformance violation. *)
let crash_fragile = [ "hotstuff-ns" ]

(* Snap generated floats to one decimal: the repro bundle renders numbers
   with %g (6 significant digits), so only "round" parameters survive the
   write-to-disk → parse-back trip bit-exactly — and replay fidelity is the
   whole point of a bundle. *)
let snap1 x = Float.round (x *. 10.) /. 10.

let float_range lo hi st = snap1 (Gen.float_range lo hi st)

let distinct_ids ~n ~count st =
  let chosen = Hashtbl.create 8 in
  let rec loop acc k =
    if k = 0 then List.sort compare acc
    else
      let id = Gen.int_range 0 (n - 1) st in
      if Hashtbl.mem chosen id then loop acc k
      else begin
        Hashtbl.replace chosen id ();
        loop (id :: acc) (k - 1)
      end
  in
  loop [] count

let delay_gen ~model ~lambda_ms st =
  match model with
  | Protocols.Protocol_intf.Synchronous ->
    (* The protocol assumes delays bounded by lambda; honour it. *)
    Gen.oneofl
      [
        Net.Delay_model.Constant (float_range 20. (lambda_ms /. 4.) st);
        Net.Delay_model.Uniform { lo = 10.; hi = float_range 50. (lambda_ms /. 2.) st };
        Net.Delay_model.bounded
          (Net.Delay_model.normal ~mu:(lambda_ms /. 4.) ~sigma:(lambda_ms /. 16.))
          ~bound:lambda_ms;
      ]
      st
  | Protocols.Protocol_intf.Partially_synchronous | Protocols.Protocol_intf.Asynchronous ->
    Gen.oneofl
      [
        Net.Delay_model.normal ~mu:(float_range 50. 400. st) ~sigma:(float_range 10. 100. st);
        Net.Delay_model.Uniform { lo = 10.; hi = float_range 100. 500. st };
        Net.Delay_model.Exponential { mean = float_range 50. 300. st };
        Net.Delay_model.Constant (float_range 20. 300. st);
      ]
      st

let gen ?protocols ?(families = all_families) () : t Gen.t =
 fun st ->
  let protocols =
    match protocols with Some ps when ps <> [] -> ps | _ -> Protocols.Registry.names ()
  in
  if families = [] then invalid_arg "Scenario.gen: empty family list";
  let protocol = Gen.oneofl protocols st in
  let model = Protocols.Protocol_intf.model (Protocols.Registry.find_exn protocol) in
  let families =
    match List.filter (applicable ~model) families with [] -> [ Passthrough ] | fs -> fs
  in
  let family = Gen.oneofl families st in
  let n = Gen.oneofl default_ns st in
  let f = Protocols.Quorum.max_faulty n in
  let lambda_ms = Gen.oneofl [ 500.; 1000.; 2000. ] st in
  let delay = delay_gen ~model ~lambda_ms st in
  let seed = Gen.int_range 1 1_000_000 st in
  let inputs =
    Gen.frequency [ (4, Gen.return Config.Distinct); (1, Gen.return (Config.Same "u")) ] st
  in
  let fragile = List.mem protocol crash_fragile in
  let crashed, attack, chaos, twins, expect_live =
    match family with
    | Passthrough -> ([], Config.No_attack, Attack.Fault_schedule.empty, None, true)
    | Failstop ->
      let count = if f = 0 then 0 else Gen.int_range 1 f st in
      let crashed = distinct_ids ~n ~count st in
      (crashed, Config.No_attack, Attack.Fault_schedule.empty, None, crashed = [] || not fragile)
    | Partition_split ->
      let first_size = Gen.int_range 1 (n - 1) st in
      let start_ms = float_range 0. 2000. st in
      (* Re-snap the sum: adding two one-decimal doubles does not always
         yield the double that parsing the rendered value produces. *)
      let heal_ms = snap1 (start_ms +. float_range 500. 6000. st) in
      let drop = Gen.bool st in
      ( [],
        Config.Partition { first_size; start_ms; heal_ms; drop },
        Attack.Fault_schedule.empty,
        None,
        not fragile )
    | Slowdown ->
      let extra_ms = float_range 10. 200. st in
      ([], Config.Extra_delay { extra_ms }, Attack.Fault_schedule.empty, None, true)
    | Crash_recover ->
      let count = if f = 0 then 1 else Gen.int_range 1 f st in
      let nodes = distinct_ids ~n ~count st in
      let crash_ms = float_range 0. 1000. st in
      let recover_ms = snap1 (crash_ms +. float_range 1000. 8000. st) in
      ( [],
        Config.No_attack,
        Attack.Fault_schedule.crash_and_recover ~nodes ~crash_ms ~recover_ms,
        None,
        false )
    | Twins ->
      (* One twinned identity (physical half lives at id n), 2..4 rounds
         drawn from a mix of honest-coherent shapes (only the twin halves
         are cut off — the classic Twins play, liveness-preserving) and
         arbitrary splits (safety-only: an isolated honest node may miss
         commits forever), occasionally with a leader prefix pinned to the
         twin.  The watchdog holds fire until the schedule ends. *)
      let twin = Gen.int_range 0 (n - 1) st in
      let pn = n + 1 in
      let round_ms = float_range (2. *. lambda_ms) (4. *. lambda_ms) st in
      let round _ =
        match Gen.int_range 0 7 st with
        | 0 | 1 -> [] (* healed round *)
        | 2 -> [ [ twin ] ] (* original half cut off *)
        | 3 -> [ [ n ] ] (* twin half cut off *)
        | 4 -> [ [ twin ]; [ n ] ] (* both halves isolated, separately *)
        | 5 -> [ [ twin; n ] ] (* the pair cut off together *)
        | _ ->
          let size = Gen.int_range 1 (pn - 1) st in
          [ distinct_ids ~n:pn ~count:size st ]
      in
      let rounds = List.init (Gen.int_range 2 4 st) round in
      let leaders =
        if Gen.bool st then []
        else
          List.init (Gen.int_range 1 4 st) (fun _ ->
              if Gen.bool st then twin else Gen.int_range 0 (n - 1) st)
      in
      let tw = { Attack.Twins_schedule.ids = [ twin ]; round_ms; rounds; leaders } in
      let live =
        Attack.Twins_schedule.preserves_liveness ~n ~quorum:(Protocols.Quorum.quorum n) tw
      in
      ([], Config.No_attack, Attack.Fault_schedule.empty, Some tw, live && not fragile)
  in
  let config =
    Config.make protocol ~n ~crashed ~lambda_ms ~delay ~seed ~attack ~chaos ?twins ~inputs
      ~max_time_ms:600_000.
  in
  { config; family; expect_live }

let sample ?protocols ?families ~budget ~seed () =
  if budget <= 0 then invalid_arg "Scenario.sample: budget <= 0";
  let rand = Random.State.make [| seed; 0x5ce7a110 |] in
  List.init budget (fun _ -> gen ?protocols ?families () rand)

let describe t =
  Printf.sprintf "%s %s" (family_to_string t.family) (Config.describe t.config)
