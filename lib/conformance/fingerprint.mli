(** Run fingerprints for golden regression tests.

    A fingerprint is the SHA-256 of a canonical textual rendering of a
    run's observable behaviour (outcome, timing, message counts, per-node
    decisions, final views) or of its full event trace.  The golden tests
    pin one fingerprint per protocol: an engine refactor that silently
    changes schedules — even while every safety property still holds —
    flips the fingerprint and fails loudly, turning "the simulation is a
    pure function of its seed" into an enforced regression contract. *)

open Bftsim_core

val canonical : Controller.result -> string
(** The exact string hashed — printed by tests on mismatch so the diff is
    inspectable. *)

val of_result : Controller.result -> string
(** 64-char lowercase hex. *)

val canonical_trace : Trace.t -> string

val of_trace : Trace.t -> string
