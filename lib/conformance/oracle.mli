(** Protocol-conformance oracles.

    The validator (paper §III-A6) answers "is this run {e reproducible}?";
    these oracles answer "is this run {e correct}?".  Each inspects one
    completed {!Bftsim_core.Controller.result} — independently of the
    engine's own safety bookkeeping — and returns the violations it finds:

    - {b agreement}: no two honest index-aligned nodes decide different
      values at the same decision index;
    - {b validity}: for protocols that decide input-derived values, every
      decision derives from some proposed input;
    - {b integrity} (decide-once): the decision table is well-formed — no
      duplicate node rows, nothing decided by config-crashed nodes, no node
      past the decision target;
    - {b qc-sanity}: the quorum arithmetic the protocols share guarantees
      intersection in an honest node ([2q - n > f]) — the oracle that
      catches the injected [Quorum_minus_one] mutation;
    - {b online-*}: violations the in-run {!Bftsim_core.Invariant} monitors
      flagged (agreement / validity / crashed-decide evaluated at decision
      instant), surfaced through the same verdict type;
    - {b trace-consistency}: when a replay trace was recorded, the decisions
      it contains must match the result's decision table, and agreement must
      hold over the trace's view of the run too. *)

open Bftsim_core

type verdict = { oracle : string; detail : string }

val describe : verdict -> string

val value_deciding : string list
(** Protocols whose decided values derive verbatim from proposed inputs
    (chained protocols decide block digests; async-ba hashes inputs to a
    bit and gets a binary-validity check instead). *)

val one_shot : string list
(** One-shot consensus protocols, for which a second decision by the same
    node is a decide-once violation.  Multi-slot and chained protocols may
    legitimately decide past the target (one commit can finalize several
    ancestor blocks). *)

val agreement : Config.t -> Controller.result -> verdict list

val validity : Config.t -> Controller.result -> verdict list

val integrity : Config.t -> Controller.result -> verdict list

val qc_sanity : n:int -> verdict list
(** Pure arithmetic check of {!Bftsim_protocols.Quorum} for this [n];
    independent of any run, evaluated once per scenario. *)

val recovery : ?view_slack:int -> Config.t -> Controller.result -> verdict list
(** Crash-recovery oracle, active only when the chaos plan contains
    [restart@] steps: every restarted node must (a) never commit a value
    conflicting with the reference log (the longest log among aligned
    nodes) at a shared decision index — catch-up must replay history, not
    rewrite it — and (b) finish within [view_slack] (default 4) views of
    the aligned maximum, i.e. actually rejoin.  Protocols that rejoin from
    scratch (no recovery story) trivially satisfy (a) by re-deciding the
    same one-shot value and (b) because the network's views stay small. *)

val online : Controller.result -> verdict list

val check_trace : Config.t -> Controller.result -> verdict list

val check_result : Config.t -> Controller.result -> verdict list
(** All of the above, concatenated in a deterministic order. *)
