(** Randomized scenario generation over the protocol × attacker ×
    network-model × f/n space.

    A scenario is a complete {!Bftsim_core.Config.t} plus the metadata the
    harness needs to judge it: the attacker {e family} it was drawn from and
    whether the run is expected to terminate ([expect_live]).  Generation is
    a [QCheck.Gen.t], so scenarios compose with property-based tests, and
    {!sample} derives a reproducible batch from an integer seed (the
    [bftsim conform --seed] contract).

    Model-awareness: synchronous-model protocols are generated only with
    delay models bounded by their [lambda] (their safety presumes the
    bound), and the partition / slowdown families — which deliberately break
    synchrony — are restricted to partially-synchronous and asynchronous
    protocols.  An agreement violation reported by the harness is therefore
    always an engine or protocol bug, never the model's own fine print. *)

open Bftsim_core

type family =
  | Passthrough  (** No attacker at all. *)
  | Failstop  (** 1..f config-crashed nodes (never started). *)
  | Partition_split  (** Two-subnet partition that heals within seconds. *)
  | Slowdown  (** Adversarial uniform extra delay on every message. *)
  | Crash_recover  (** Chaos schedule: crash 1..f nodes, restart them later. *)
  | Twins
      (** Twins-style Byzantine emulation: one identity runs as two
          physical halves under a round-indexed partition schedule (and
          optionally pinned leaders), mechanically producing equivocation
          without protocol-specific attacker code. *)

type t = {
  config : Config.t;
  family : family;
  expect_live : bool;
      (** Whether failing to reach the decision target counts as a liveness
          violation (crash-recover runs are exempt: recovered nodes may
          legitimately lag). *)
}

val all_families : family list

val family_to_string : family -> string
(** CLI names: [none], [failstop], [partition], [delay], [chaos],
    [twins]. *)

val family_of_string : string -> family option

val default_ns : int list
(** System sizes sampled: mixes tight 3f+1 forms (4, 7, 13) with the
    paper's loose n = 16 and awkward in-between values. *)

val applicable : model:Bftsim_protocols.Protocol_intf.network_model -> family -> bool

val crash_fragile : string list
(** Protocols whose liveness is {e documented} to collapse under crashed
    leaders (hotstuff-ns: never-certificated exponential backoff,
    EXPERIMENTS.md Fig 7); scenarios crashing or partitioning them are
    generated with [expect_live = false]. *)

val gen : ?protocols:string list -> ?families:family list -> unit -> t QCheck.Gen.t
(** Generator over the given protocols (default: every registered protocol)
    and families (default: all).  Families inapplicable to a drawn
    protocol's model fall back to {!Passthrough}.
    @raise Invalid_argument on an empty family list. *)

val sample : ?protocols:string list -> ?families:family list -> budget:int -> seed:int -> unit -> t list
(** [sample ~budget ~seed ()] draws [budget] scenarios deterministically
    from [seed]. *)

val describe : t -> string
