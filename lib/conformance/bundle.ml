open Bftsim_core

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_lines path lines =
  let oc = open_out path in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    lines;
  close_out oc

let config_lines ?(header = []) config =
  List.map (fun h -> "# " ^ h) header
  @ List.map (fun (k, v) -> Printf.sprintf "%s = %s" k v) (Config.to_keyvalues config)

let write ~dir ~name ~original ~shrunk ~verdicts ~(result : Controller.result) () =
  let bundle = Filename.concat dir name in
  mkdir_p bundle;
  write_lines (Filename.concat bundle "config.txt")
    (config_lines
       ~header:
         [
           "Shrunk failing configuration — replay with: bftsim run -c config.txt";
           "Validate determinism with:  bftsim validate -c config.txt";
         ]
       shrunk);
  write_lines (Filename.concat bundle "original.txt")
    (config_lines ~header:[ "Configuration as originally generated (before shrinking)" ] original);
  write_lines
    (Filename.concat bundle "report.txt")
    ([
       "scenario : " ^ Config.describe shrunk;
       Format.asprintf "outcome  : %a" Controller.pp_outcome result.Controller.outcome;
       Printf.sprintf "verdicts : %d" (List.length verdicts);
     ]
    @ List.map (fun v -> "  " ^ Oracle.describe v) verdicts);
  (match result.Controller.trace with
  | Some trace ->
    let oc = open_out (Filename.concat bundle "trace.txt") in
    let ppf = Format.formatter_of_out_channel oc in
    Trace.dump ppf trace;
    Format.pp_print_flush ppf ();
    close_out oc
  | None -> ());
  bundle
