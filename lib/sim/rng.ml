type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64: state advances by a fixed gamma; output is a bijective mix of
   the state, so distinct states never collide within a stream.  [mix64] and
   [bits64] are inlined into the samplers so the Int64 chain stays in
   registers — the boxed-Int64 traffic otherwise dominates the per-message
   delay-sampling cost.  Inlining does not change any arithmetic, so every
   stream is bit-identical to the out-of-line spelling. *)
let[@inline] mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let[@inline] bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let mask = Int64.of_int max_int in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    (* Reject the tail to keep the distribution exactly uniform. *)
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let[@inline] float t bound =
  (* 53 random bits give a uniform double in [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits /. 9007199254740992. *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let normal t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u <= 0. then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let truncated_normal t ~mu ~sigma ~lo =
  let rec attempt k =
    let x = normal t ~mu ~sigma in
    if x >= lo then x
    else if k >= 64 then lo
    else attempt (k + 1)
  in
  attempt 0

let exponential t ~mean =
  let rec nonzero () =
    let u = float t 1.0 in
    if u <= 0. then nonzero () else u
  in
  -.mean *. log (nonzero ())

let poisson t ~mean =
  if mean < 0. then invalid_arg "Rng.poisson: negative mean";
  let limit = exp (-.mean) in
  let rec loop k p =
    let p = p *. float t 1.0 in
    if p <= limit then k else loop (k + 1) p
  in
  loop 0 1.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
