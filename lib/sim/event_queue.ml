(* The clock lives in a one-element float array: float-array slots are
   unboxed, so advancing the clock on every popped event stores a word
   instead of allocating a fresh box (a mutable float field in this mixed
   record would box on every write). *)
type 'a t = {
  queue : 'a Pqueue.t;
  clock : float array;
  (* Boxed mirror of [clock.(0)], refreshed once per clock advance so the
     many [now] callers (protocol handlers, senders) share one box instead
     of boxing per call. *)
  mutable clock_t : Time.t;
  mutable popped : int;
}

let create () = { queue = Pqueue.create (); clock = [| 0. |]; clock_t = Time.zero; popped = 0 }

let now_ms q = Array.unsafe_get q.clock 0

let now q = q.clock_t

let schedule q ~at ev =
  if Time.to_ms at < now_ms q then
    invalid_arg
      (Printf.sprintf "Event_queue.schedule: %s is in the past (now %s)" (Time.to_string at)
         (Time.to_string (now q)));
  Pqueue.push q.queue ~priority:(Time.to_ms at) ev

let schedule_after q ~delay_ms ev =
  let delay_ms = if delay_ms < 0. then 0. else delay_ms in
  schedule q ~at:(Time.add_ms (now q) delay_ms) ev

let is_empty q = Pqueue.is_empty q.queue

let next_exn q =
  let at = Pqueue.min_priority q.queue in
  let ev = Pqueue.pop_exn q.queue in
  if at > now_ms q then begin
    Array.unsafe_set q.clock 0 at;
    q.clock_t <- Time.unsafe_of_ms at
  end;
  q.popped <- q.popped + 1;
  ev

let next q =
  if is_empty q then None
  else begin
    let ev = next_exn q in
    Some (now q, ev)
  end

let peek_time q =
  match Pqueue.peek q.queue with
  | None -> None
  | Some (priority, _) -> Some (Time.of_ms priority)

let pending q = Pqueue.length q.queue

let popped q = q.popped
