let src = Logs.Src.create "bftsim" ~doc:"BFT simulator events"


(* The clock hook is domain-local storage, not a global ref: concurrent
   simulations (Parallel.map fanning Controller.run across domains) each
   install their own clock without racing on a shared cell. *)
let now_key = Domain.DLS.new_key (fun () -> fun () -> Time.zero)

let set_now f = Domain.DLS.set now_key f

let now () = (Domain.DLS.get now_key) ()

(* Telemetry mirror: when a tracer is active, the controller installs a
   callback here so warn/err lines also land on the trace timeline.  Like
   the clock it is domain-local — concurrent runs mirror into their own
   tracers — and like the clock it is a hook, not a dependency: Simlog
   stays below the telemetry library. *)
let mirror_key : (level:Logs.level -> string -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_mirror m = Domain.DLS.set mirror_key m

let level_to_int = function
  | Logs.App -> 0
  | Logs.Error -> 1
  | Logs.Warning -> 2
  | Logs.Info -> 3
  | Logs.Debug -> 4

let enabled level =
  match Logs.Src.level src with
  | None -> false
  | Some max_level -> level_to_int level <= level_to_int max_level

(* Formatting happens only when the level is enabled, so per-message debug
   calls cost one comparison in large benchmark runs.  A mirrored
   warn/err line is formatted even when the log level suppresses it: the
   trace timeline must show warnings whatever the console verbosity. *)
let log level fmt =
  let mirror =
    match Domain.DLS.get mirror_key with
    | Some m when level_to_int level <= level_to_int Logs.Warning -> Some m
    | Some _ | None -> None
  in
  let log_on = enabled level in
  if log_on || mirror <> None then
    Format.kasprintf
      (fun s ->
        if log_on then Logs.msg ~src level (fun m -> m "[%a] %s" Time.pp (now ()) s);
        match mirror with Some m -> m ~level s | None -> ())
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let debug fmt = log Logs.Debug fmt

let info fmt = log Logs.Info fmt

let warn fmt = log Logs.Warning fmt

let err fmt = log Logs.Error fmt

let setup_for_cli ~level =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.Src.set_level src level
