let src = Logs.Src.create "bftsim" ~doc:"BFT simulator events"


(* The clock hook is domain-local storage, not a global ref: concurrent
   simulations (Parallel.map fanning Controller.run across domains) each
   install their own clock without racing on a shared cell. *)
let now_key = Domain.DLS.new_key (fun () -> fun () -> Time.zero)

let set_now f = Domain.DLS.set now_key f

let now () = (Domain.DLS.get now_key) ()

let level_to_int = function
  | Logs.App -> 0
  | Logs.Error -> 1
  | Logs.Warning -> 2
  | Logs.Info -> 3
  | Logs.Debug -> 4

let enabled level =
  match Logs.Src.level src with
  | None -> false
  | Some max_level -> level_to_int level <= level_to_int max_level

(* Formatting happens only when the level is enabled, so per-message debug
   calls cost one comparison in large benchmark runs. *)
let log level fmt =
  if enabled level then
    Format.kasprintf
      (fun s -> Logs.msg ~src level (fun m -> m "[%a] %s" Time.pp (now ()) s))
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let debug fmt = log Logs.Debug fmt

let info fmt = log Logs.Info fmt

let warn fmt = log Logs.Warning fmt

let err fmt = log Logs.Error fmt

let setup_for_cli ~level =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.Src.set_level src level
