(* Allocation-free binary min-heap in parallel lanes.

   The heap state lives in three flat arrays indexed by heap slot: an
   unboxed float lane for priorities, an int lane for insertion sequence
   numbers, and a uniform lane for the payloads.  A push or pop therefore
   moves words between flat arrays instead of allocating and chasing a
   boxed entry record per element — the representation the simulator's
   per-event cost budget rests on (DESIGN.md §3.15).

   The payload lane is created from an immediate filler, so it is always a
   generic (pointer/immediate) array even when ['a] is [float]; payloads of
   float type are stored boxed, which is the only representation the
   polymorphic reads below are correct for.  Vacated slots are overwritten
   with the filler on [pop]/[clear] so the heap never pins popped payloads
   (the space leak the boxed representation had). *)

type 'a t = {
  mutable prio : float array;
  mutable seq : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

(* An immediate stand-in for an empty payload slot.  Guarded by [size]:
   no code path ever reads a slot holding the filler. *)
let filler : unit -> 'a = fun () -> Obj.magic 0

let create ?(initial_capacity = 0) () =
  let cap = Stdlib.max 0 initial_capacity in
  {
    prio = Array.make cap 0.;
    seq = Array.make cap 0;
    vals = Array.make cap (filler ());
    size = 0;
    next_seq = 0;
  }

let length q = q.size

let is_empty q = q.size = 0

(* [before q i j] decides heap order between slots: smaller priority first,
   insertion order on ties.  This is the invariant the whole simulator's
   determinism rests on.  NaN never enters ([push] rejects it), so [=] on
   the priority lane coincides with [Float.equal]. *)
let[@inline] before q i j =
  let pi = Array.unsafe_get q.prio i and pj = Array.unsafe_get q.prio j in
  pi < pj || (pi = pj && Array.unsafe_get q.seq i < Array.unsafe_get q.seq j)

let[@inline] swap q i j =
  let p = Array.unsafe_get q.prio i in
  Array.unsafe_set q.prio i (Array.unsafe_get q.prio j);
  Array.unsafe_set q.prio j p;
  let s = Array.unsafe_get q.seq i in
  Array.unsafe_set q.seq i (Array.unsafe_get q.seq j);
  Array.unsafe_set q.seq j s;
  let v = Array.unsafe_get q.vals i in
  Array.unsafe_set q.vals i (Array.unsafe_get q.vals j);
  Array.unsafe_set q.vals j v

let grow q =
  let cap = Stdlib.max 64 (2 * Array.length q.prio) in
  let prio' = Array.make cap 0. in
  let seq' = Array.make cap 0 in
  let vals' = Array.make cap (filler ()) in
  Array.blit q.prio 0 prio' 0 q.size;
  Array.blit q.seq 0 seq' 0 q.size;
  Array.blit q.vals 0 vals' 0 q.size;
  q.prio <- prio';
  q.seq <- seq';
  q.vals <- vals'

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q i parent then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = if left < q.size && before q left i then left else i in
  let smallest = if right < q.size && before q right smallest then right else smallest in
  if smallest <> i then begin
    swap q i smallest;
    sift_down q smallest
  end

let push q ~priority value =
  if Float.is_nan priority then invalid_arg "Pqueue.push: NaN priority";
  if q.size = Array.length q.prio then grow q;
  let i = q.size in
  Array.unsafe_set q.prio i priority;
  Array.unsafe_set q.seq i q.next_seq;
  Array.unsafe_set q.vals i value;
  q.next_seq <- q.next_seq + 1;
  q.size <- i + 1;
  sift_up q i

let min_priority q =
  if q.size = 0 then invalid_arg "Pqueue.min_priority: empty queue";
  Array.unsafe_get q.prio 0

let pop_exn q =
  let n = q.size - 1 in
  if n < 0 then invalid_arg "Pqueue.pop_exn: empty queue";
  let v = Array.unsafe_get q.vals 0 in
  q.size <- n;
  if n > 0 then begin
    Array.unsafe_set q.prio 0 (Array.unsafe_get q.prio n);
    Array.unsafe_set q.seq 0 (Array.unsafe_get q.seq n);
    Array.unsafe_set q.vals 0 (Array.unsafe_get q.vals n)
  end;
  (* Clear the vacated slot so the heap does not pin the payload. *)
  Array.unsafe_set q.vals n (filler ());
  if n > 1 then sift_down q 0;
  v

let pop q =
  if q.size = 0 then None
  else begin
    let priority = Array.unsafe_get q.prio 0 in
    let v = pop_exn q in
    Some (priority, v)
  end

let peek q =
  if q.size = 0 then None else Some (Array.unsafe_get q.prio 0, Array.unsafe_get q.vals 0)

let clear q =
  Array.fill q.vals 0 q.size (filler ());
  q.size <- 0

let to_sorted_list q =
  let idx = Array.init q.size Fun.id in
  Array.sort (fun i j -> if before q i j then -1 else 1) idx;
  Array.to_list (Array.map (fun i -> (q.prio.(i), q.vals.(i))) idx)
