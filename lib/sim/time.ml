type t = float

let zero = 0.

let of_ms ms =
  if not (Float.is_finite ms) || ms < 0. then
    invalid_arg (Printf.sprintf "Time.of_ms: %f" ms)
  else ms

let to_ms t = t

let unsafe_of_ms ms = ms

let of_sec s = of_ms (s *. 1000.)

let to_sec t = t /. 1000.

let add_ms t d =
  let t' = t +. d in
  if t' < 0. then 0. else t'

let diff_ms later earlier = later -. earlier

let compare = Float.compare

let equal a b = Float.equal a b

let min = Float.min

let max = Float.max

let is_before a b = a < b

let pp ppf t = Format.fprintf ppf "%.3fs" (to_sec t)

let to_string t = Format.asprintf "%a" pp t
