(** Growable bitset over small non-negative integers.

    Built for the controller's timer bookkeeping (DESIGN.md §3.15): timer
    ids are issued sequentially, so pending/cancelled membership is one bit
    per id in a flat byte array — no per-operation allocation, unlike the
    hashtable it replaced.  Memory is one bit per key ever {!add}ed. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** Fresh empty set, pre-sized for keys below [initial_capacity]
    (default 256); the set grows on demand beyond it. *)

val add : t -> int -> unit
(** [add t i] inserts [i], growing the set if needed.
    @raise Invalid_argument if [i] is negative. *)

val mem : t -> int -> bool
(** Membership; [false] for negative or never-inserted keys. *)

val remove : t -> int -> unit
(** Removes [i]; a no-op when absent or negative. *)

val clear : t -> unit
(** Empties the set, keeping its capacity. *)
