(* Growable bitset over small non-negative integers.

   The controller's timer bookkeeping keys on sequential timer ids, so a
   flat bit per id beats a hashtable: membership is a shift and a mask with
   no per-operation allocation (a [Hashtbl.replace] conses a bucket), and
   the set grows to one bit per id ever issued. *)

type t = { mutable bits : Bytes.t }

let create ?(initial_capacity = 256) () =
  { bits = Bytes.make (Stdlib.max 1 ((initial_capacity + 7) / 8)) '\000' }

let ensure t i =
  let needed = (i / 8) + 1 in
  let cur = Bytes.length t.bits in
  if needed > cur then begin
    let bits' = Bytes.make (Stdlib.max needed (2 * cur)) '\000' in
    Bytes.blit t.bits 0 bits' 0 cur;
    t.bits <- bits'
  end

let add t i =
  if i < 0 then invalid_arg "Dense_set.add: negative key";
  ensure t i;
  let byte = i lsr 3 and mask = 1 lsl (i land 7) in
  Bytes.unsafe_set t.bits byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits byte) lor mask))

let mem t i =
  if i < 0 then false
  else
    let byte = i lsr 3 in
    byte < Bytes.length t.bits
    && Char.code (Bytes.unsafe_get t.bits byte) land (1 lsl (i land 7)) <> 0

let remove t i =
  if i >= 0 then begin
    let byte = i lsr 3 in
    if byte < Bytes.length t.bits then
      Bytes.unsafe_set t.bits byte
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits byte) land lnot (1 lsl (i land 7))))
  end

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'
