(** Simulation time.

    The simulator measures time on a virtual clock, advanced only by popping
    events from the event queue (never by the wall clock).  The unit is the
    millisecond, matching the paper's [lambda] and network-delay parameters. *)

type t = private float
(** A point in simulation time, in milliseconds since the start of the run.
    The representation is exposed read-only so that times can be compared
    with the polymorphic operators, but construction goes through the
    functions below which enforce non-negativity. *)

val zero : t
(** The start of the simulation. *)

val of_ms : float -> t
(** [of_ms ms] is the time [ms] milliseconds after the start.
    @raise Invalid_argument if [ms] is negative or not finite. *)

val to_ms : t -> float
(** [to_ms t] is [t] expressed in milliseconds. *)

val unsafe_of_ms : float -> t
(** [of_ms] without the validity check, for hot paths that re-wrap a float
    already known to be a valid instant (e.g. the event queue's clock lane).
    Passing a negative or non-finite float is undefined behaviour for the
    callers of this module. *)

val of_sec : float -> t
(** [of_sec s] is the time [s] seconds after the start. *)

val to_sec : t -> float
(** [to_sec t] is [t] expressed in seconds. *)

val add_ms : t -> float -> t
(** [add_ms t d] is [t] shifted [d] milliseconds into the future.  Negative
    [d] is clamped so the result never precedes {!zero}. *)

val diff_ms : t -> t -> float
(** [diff_ms later earlier] is the (possibly negative) span between two
    instants, in milliseconds. *)

val compare : t -> t -> int
(** Total order on instants. *)

val equal : t -> t -> bool

val min : t -> t -> t

val max : t -> t -> t

val is_before : t -> t -> bool
(** [is_before a b] is [true] iff [a] is strictly earlier than [b]. *)

val pp : Format.formatter -> t -> unit
(** Prints as seconds with millisecond precision, e.g. ["12.345s"]. *)

val to_string : t -> string
