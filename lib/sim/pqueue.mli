(** Imperative binary min-heap with deterministic tie-breaking.

    The event queue of the simulator (paper §III-A2) must pop events in
    timestamp order; events carrying the same timestamp must come out in the
    order they were pushed, otherwise two runs with the same seed could
    interleave simultaneous deliveries differently and traces would not be
    reproducible.  The heap therefore keys entries on the pair
    [(priority, sequence-number)] where the sequence number is a
    monotonically increasing insertion counter.

    Representation (DESIGN.md §3.15): the heap lives in three flat lanes —
    an unboxed float array of priorities, an int array of sequence numbers
    and a uniform payload array — so pushes and pops move words between
    arrays instead of allocating boxed entries.  {!min_priority} and
    {!pop_exn} expose the hot path without the option/tuple boxing of
    {!pop}. *)

type 'a t
(** A mutable priority queue holding values of type ['a]. *)

val create : ?initial_capacity:int -> unit -> 'a t
(** [create ()] is a fresh empty queue. *)

val length : 'a t -> int
(** Number of queued entries. *)

val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit
(** [push q ~priority v] inserts [v].  Entries with smaller [priority] pop
    first; equal priorities pop in insertion order. *)

val pop : 'a t -> (float * 'a) option
(** [pop q] removes and returns the minimum entry, or [None] if empty. *)

val min_priority : 'a t -> float
(** Priority of the minimum entry, without boxing it in an option.
    @raise Invalid_argument if the queue is empty. *)

val pop_exn : 'a t -> 'a
(** [pop_exn q] removes the minimum entry and returns its payload alone —
    the allocation-free spelling of {!pop} for the event loop (read the
    timestamp first with {!min_priority}).  The vacated slot is cleared so
    the heap never retains popped payloads.
    @raise Invalid_argument if the queue is empty. *)

val peek : 'a t -> (float * 'a) option
(** [peek q] is the minimum entry without removing it. *)

val clear : 'a t -> unit
(** Removes every entry and drops every reference the heap held to the
    queued payloads (capacity is retained). *)

val to_sorted_list : 'a t -> (float * 'a) list
(** [to_sorted_list q] is a non-destructive snapshot of the queue contents in
    pop order.  Intended for tests and debugging; costs O(n log n). *)
