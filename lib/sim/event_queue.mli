(** Event queue with an attached simulation clock (paper §III-A2).

    All simulation progress flows through this structure: scheduling places a
    future event, and {!next} pops the earliest event while advancing the
    clock to its timestamp.  Scheduling into the past is a programming error
    and raises, which catches causality bugs in protocols early. *)

type 'a t

val create : unit -> 'a t
(** Fresh queue with the clock at {!Time.zero}. *)

val now : 'a t -> Time.t
(** Current simulation time — the timestamp of the last popped event. *)

val schedule : 'a t -> at:Time.t -> 'a -> unit
(** [schedule q ~at ev] enqueues [ev] for time [at].
    @raise Invalid_argument if [at] precedes [now q]. *)

val schedule_after : 'a t -> delay_ms:float -> 'a -> unit
(** [schedule_after q ~delay_ms ev] enqueues [ev] at [now + delay_ms];
    negative delays clamp to zero (deliver "immediately", i.e. at the current
    instant but after all earlier-queued simultaneous events). *)

val next : 'a t -> (Time.t * 'a) option
(** Pops the earliest event and advances the clock to its timestamp. *)

val is_empty : 'a t -> bool

val next_exn : 'a t -> 'a
(** Allocation-free spelling of {!next} for the event loop: pops the
    earliest event, advances the clock, and returns the event alone — read
    the timestamp afterwards with {!now_ms}.
    @raise Invalid_argument if the queue is empty (guard with {!is_empty}). *)

val now_ms : 'a t -> float
(** [Time.to_ms (now q)] without going through the boxed {!Time.t}. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the next event without popping. *)

val pending : 'a t -> int
(** Number of queued events. *)

val popped : 'a t -> int
(** Total number of events processed so far (a cheap progress metric and a
    guard counter against runaway simulations). *)
