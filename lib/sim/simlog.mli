(** Simulation-aware logging.

    Thin layer over {!Logs} that prefixes every line with the virtual clock,
    so a log of a run reads as a timeline.  The current time is injected by
    the controller via {!set_now}; library code only calls the level
    helpers. *)

val src : Logs.src
(** The [bftsim] log source; adjust its level with [Logs.Src.set_level]. *)

val set_now : (unit -> Time.t) -> unit
(** Installs the clock accessor {e for the calling domain} (the hook lives
    in domain-local storage, so concurrent simulations on different domains
    do not race).  Called by the controller at run entry; the default
    reports {!Time.zero}. *)

val now : unit -> Time.t
(** The current domain's simulated time, as installed by {!set_now}.  The
    accessor lives in domain-local storage ([Domain.DLS]): each domain sees
    the clock of the run {e it} is executing, and the {!Time.zero} default
    applies per domain until that domain's controller installs a clock —
    there is no process-wide clock to fall back to. *)

val set_mirror : (level:Logs.level -> string -> unit) option -> unit
(** Installs (or clears, with [None]) the calling domain's log mirror: a
    callback invoked with every formatted [warn]/[err] line, {e regardless}
    of the [Logs] reporting level.  The controller uses it to surface
    warnings as trace instants when tracing is enabled.  Domain-local, like
    the clock. *)

val debug : ('a, Format.formatter, unit, unit) format4 -> 'a
val info : ('a, Format.formatter, unit, unit) format4 -> 'a
val warn : ('a, Format.formatter, unit, unit) format4 -> 'a
val err : ('a, Format.formatter, unit, unit) format4 -> 'a

val setup_for_cli : level:Logs.level option -> unit
(** Installs a [Fmt]-based reporter on stderr; used by [bin/] and
    [examples/]. *)
