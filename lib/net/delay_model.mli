(** Network delay distributions (paper §III-A4).

    The delay of every message "can be sampled from any distribution, such
    as a Gaussian distribution or a Poisson distribution"; by choosing the
    distribution and an optional hard bound we realize the paper's three
    network models:

    - {b Synchronous}: delays bounded by [b <= lambda] known to the protocol
      — use {!val:bounded} with the protocol's [lambda].
    - {b Partially synchronous}: delays bounded by some [b] the protocol
      does not know — use {!val:bounded} with an arbitrary bound.
    - {b Asynchronous}: unbounded sampling — use an unbounded model. *)

open Bftsim_sim

type t =
  | Constant of float  (** Every message takes exactly this many ms. *)
  | Uniform of { lo : float; hi : float }
  | Normal of { mu : float; sigma : float }
      (** The paper's [N(mu, sigma)], truncated at 0 (delays are causal). *)
  | Exponential of { mean : float }  (** Heavy-ish tail; asynchronous runs. *)
  | Poisson of { mean : float }  (** Integer-ms Poisson delays. *)
  | LogNormal of { mu : float; sigma : float }
      (** [exp(N(mu, sigma))]: heavy-tailed WAN latencies / jitter.  Note
          [mu]/[sigma] parameterize the underlying normal, so the mean is
          [exp(mu + sigma^2/2)]. *)
  | Bounded of { base : t; bound : float }
      (** [base] clipped from above: realizes (partially-)synchronous
          networks with a hard delay bound. *)

val sample : t -> Rng.t -> float
(** One delay draw, always [>= 0] and finite. *)

val upper_bound : t -> float option
(** Static upper bound if one exists ([Constant], [Uniform], [Bounded]). *)

val mean : t -> float
(** Mean of the distribution.  Analytic where a closed form exists
    (ignoring the at-zero truncation of [Normal]); for [Bounded] the
    clipped mean [E(min(X, bound))] is estimated numerically from a
    fixed-seed sample, so it is deterministic but approximate. *)

val normal : mu:float -> sigma:float -> t
(** Convenience for the paper's ubiquitous [N(mu, sigma)]. *)

val log_normal : mu:float -> sigma:float -> t

val bounded : t -> bound:float -> t

val describe : t -> string
(** e.g. ["N(250,50)"]; used in experiment tables. *)

val of_string : string -> (t, string) result
(** Parses the CLI syntax: ["constant:100"], ["uniform:10,20"],
    ["normal:250,50"], ["exp:300"], ["poisson:250"], ["lognormal:1.5,0.5"],
    ["bounded:<inner>@<bound>"] e.g. ["bounded:normal:250,50@1000"]. *)

val to_cli_string : t -> string
(** Inverse of {!of_string}: renders the model in the parseable CLI syntax
    (unlike {!describe}, which renders the human notation ["N(250,50)"]). *)

val pp : Format.formatter -> t -> unit
