open Bftsim_sim

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Normal of { mu : float; sigma : float }
  | Exponential of { mean : float }
  | Poisson of { mean : float }
  | LogNormal of { mu : float; sigma : float }
  | Bounded of { base : t; bound : float }

let rec sample t rng =
  match t with
  | Constant ms -> Float.max 0. ms
  | Uniform { lo; hi } -> Rng.uniform rng ~lo ~hi
  | Normal { mu; sigma } -> Rng.truncated_normal rng ~mu ~sigma ~lo:0.
  | Exponential { mean } -> Rng.exponential rng ~mean
  | Poisson { mean } -> float_of_int (Rng.poisson rng ~mean)
  | LogNormal { mu; sigma } -> Float.exp (Rng.normal rng ~mu ~sigma)
  | Bounded { base; bound } -> Float.min bound (sample base rng)

let rec upper_bound = function
  | Constant ms -> Some ms
  | Uniform { hi; _ } -> Some hi
  | Normal _ | Exponential _ | Poisson _ | LogNormal _ -> None
  | Bounded { base; bound } -> (
    match upper_bound base with Some b -> Some (Float.min b bound) | None -> Some bound)

let mean = function
  | Constant ms -> ms
  | Uniform { lo; hi } -> (lo +. hi) /. 2.
  | Normal { mu; _ } -> mu
  | Exponential { mean = m } -> m
  | Poisson { mean = m } -> m
  | LogNormal { mu; sigma } -> Float.exp (mu +. (sigma *. sigma /. 2.))
  | Bounded _ as t ->
    (* E[min(X, bound)] has no closed form for an arbitrary base:
       min(mean base, bound) overstates the clipped mean (clipping moves
       the whole upper tail down to [bound], not just the part above the
       mean).  Estimate it numerically from a fixed-seed stream so the
       result stays a pure function of the model. *)
    let rng = Rng.create 0x7ac1de5 in
    let k = 4096 in
    let acc = ref 0. in
    for _ = 1 to k do
      acc := !acc +. sample t rng
    done;
    !acc /. float_of_int k

let normal ~mu ~sigma = Normal { mu; sigma }

let bounded base ~bound = Bounded { base; bound }

let log_normal ~mu ~sigma = LogNormal { mu; sigma }

let rec describe = function
  | Constant ms -> Printf.sprintf "const(%g)" ms
  | Uniform { lo; hi } -> Printf.sprintf "U(%g,%g)" lo hi
  | Normal { mu; sigma } -> Printf.sprintf "N(%g,%g)" mu sigma
  | Exponential { mean } -> Printf.sprintf "Exp(%g)" mean
  | Poisson { mean } -> Printf.sprintf "Poisson(%g)" mean
  | LogNormal { mu; sigma } -> Printf.sprintf "LogN(%g,%g)" mu sigma
  | Bounded { base; bound } -> Printf.sprintf "%s|%g" (describe base) bound

let pp ppf t = Format.pp_print_string ppf (describe t)

let rec to_cli_string = function
  | Constant ms -> Printf.sprintf "constant:%g" ms
  | Uniform { lo; hi } -> Printf.sprintf "uniform:%g,%g" lo hi
  | Normal { mu; sigma } -> Printf.sprintf "normal:%g,%g" mu sigma
  | Exponential { mean } -> Printf.sprintf "exp:%g" mean
  | Poisson { mean } -> Printf.sprintf "poisson:%g" mean
  | LogNormal { mu; sigma } -> Printf.sprintf "lognormal:%g,%g" mu sigma
  | Bounded { base; bound } -> Printf.sprintf "bounded:%s@%g" (to_cli_string base) bound

let parse_floats s =
  try Some (List.map float_of_string (String.split_on_char ',' s)) with Failure _ -> None

let rec of_string s =
  let invalid () = Error (Printf.sprintf "invalid delay model %S" s) in
  match String.index_opt s ':' with
  | None -> invalid ()
  | Some i -> (
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match kind with
    | "constant" | "const" -> (
      match parse_floats rest with Some [ ms ] -> Ok (Constant ms) | _ -> invalid ())
    | "uniform" -> (
      match parse_floats rest with
      | Some [ lo; hi ] when lo <= hi -> Ok (Uniform { lo; hi })
      | _ -> invalid ())
    | "normal" -> (
      match parse_floats rest with
      | Some [ mu; sigma ] -> Ok (Normal { mu; sigma })
      | _ -> invalid ())
    | "exp" | "exponential" -> (
      match parse_floats rest with Some [ mean ] -> Ok (Exponential { mean }) | _ -> invalid ())
    | "poisson" -> (
      match parse_floats rest with Some [ mean ] -> Ok (Poisson { mean }) | _ -> invalid ())
    | "lognormal" | "logn" -> (
      match parse_floats rest with
      | Some [ mu; sigma ] -> Ok (LogNormal { mu; sigma })
      | _ -> invalid ())
    | "bounded" -> (
      match String.rindex_opt rest '@' with
      | None -> invalid ()
      | Some j -> (
        let inner = String.sub rest 0 j in
        let bound = String.sub rest (j + 1) (String.length rest - j - 1) in
        match (of_string inner, float_of_string_opt bound) with
        | Ok base, Some bound -> Ok (Bounded { base; bound })
        | _ -> invalid ()))
    | _ -> invalid ())
