(** Per-link stochastic network faults.

    The delay model ({!Delay_model}) decides {e when} a message arrives;
    attackers decide {e whether an adversary} suppresses it; this module
    models the {e network itself} misbehaving: independent drops,
    duplication, a bounded reordering window, and bursty loss via a
    two-state Gilbert–Elliott chain per link.  All draws come from the RNG
    the caller threads in, so lossy runs stay bit-identical across
    [--jobs] like everything else. *)

type burst = { p_gb : float; p_bg : float; p_bad : float }
(** Gilbert–Elliott parameters: per-message transition probabilities
    good→bad ([p_gb]) and bad→good ([p_bg]), and the drop probability
    while in the bad state ([p_bad]).  The steady independent [drop]
    probability still applies in both states. *)

type t = {
  drop : float;  (** independent per-message drop probability *)
  dup : float;  (** per-delivered-message duplication probability *)
  reorder_ms : float;
      (** extra uniform [0, reorder_ms) delay per delivered message;
          0 disables reordering *)
  burst : burst option;
}

val none : t
(** The lossless model; {!is_none} holds.  Runs configured with [none]
    must be byte-identical to runs that predate this module. *)

val is_none : t -> bool

val make :
  ?drop:float -> ?dup:float -> ?reorder_ms:float -> ?burst:burst -> unit -> t

val validate : t -> unit
(** @raise Invalid_argument if any probability lies outside [0, 1] or the
    reorder window is negative. *)

val burst_of_string : string -> burst
(** Parses ["p_gb,p_bg,p_bad"].  @raise Invalid_argument on malformed
    input. *)

val burst_to_string : burst -> string

val describe : t -> string
(** One-line human summary, ["lossless"] for {!none}. *)

type state
(** Owns the per-link Gilbert–Elliott chains; one per run. *)

val state : t -> state

type verdict = {
  deliver : bool;
  duplicate : bool;  (** meaningful only when [deliver] *)
  reorder_extra_ms : float;  (** meaningful only when [deliver] *)
}

val sample : state -> Bftsim_sim.Rng.t -> src:int -> dst:int -> verdict
(** One per-message draw for link [src -> dst].  Draw order (burst
    transition, drop, dup, reorder) is fixed: it is part of the
    lossy-fingerprint determinism contract. *)
