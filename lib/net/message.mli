(** Network messages (paper §III-A4).

    A message is an envelope around a protocol-specific payload.  The sender
    fills in [src] and [dst]; the network module samples [delay_ms]; the
    attacker module may rewrite [delay_ms], drop the message, or synthesize
    entirely new messages.  Payloads are an extensible variant so each
    protocol contributes its own constructors without any central registry
    of message types — mirroring the duck-typed JS objects of the reference
    implementation, but statically typed per protocol. *)

open Bftsim_sim

type payload = ..
(** Extend per protocol: [type Message.payload += Prepare of …]. *)

type payload += Blob of string
(** A generic payload for tests and examples. *)

type t = {
  id : int;  (** Unique within one simulation; used in traces. *)
  src : int;
  dst : int;
  sent_at : Time.t;
  mutable delay_ms : float;  (** Set by the network, writable by the attacker. *)
  tag : string;  (** Human-readable message kind, recorded in traces. *)
  size : int;  (** Estimated wire size in bytes (for byte-volume estimates). *)
  payload : payload;
}

val make :
  id:int -> src:int -> dst:int -> sent_at:Time.t -> ?tag:string -> ?size:int -> payload -> t
(** Builds an envelope with [delay_ms = 0.]; the network assigns the real
    delay.  [tag] defaults to ["msg"], [size] to {!default_size}. *)

val default_size : int
(** Default estimated message size (128 bytes). *)

val arrival_time : t -> Time.t
(** [sent_at + delay_ms]: when the message event fires. *)

val register_printer : (payload -> string option) -> unit
(** Protocols may register a printer for their payload constructors; used by
    traces and logs.  First registered printer returning [Some _] wins.
    Registration is O(1), lock-free and domain-safe: protocol initializers
    may race under a [run_many] domain pool without losing printers. *)

val payload_to_string : payload -> string
(** Rendering via registered printers, falling back to ["<payload>"]. *)

val pp : Format.formatter -> t -> unit
