open Bftsim_sim

type payload = ..

type payload += Blob of string

type t = {
  id : int;
  src : int;
  dst : int;
  sent_at : Time.t;
  mutable delay_ms : float;
  tag : string;
  size : int;
  payload : payload;
}

let default_size = 128

let make ~id ~src ~dst ~sent_at ?(tag = "msg") ?(size = default_size) payload =
  { id; src; dst; sent_at; delay_ms = 0.; tag; size; payload }

let arrival_time t = Time.add_ms t.sent_at t.delay_ms

(* Registrations happen from protocol-module initializers, which race when
   [run_many] first touches several protocols from different domains: the
   list is an [Atomic.t] updated by compare-and-set, so registration is
   lock-free, O(1) (prepend, not the quadratic [old @ [f]] append this
   replaced), and never loses a printer.  The registration-order-first
   lookup semantics are recovered by reversing the snapshot at rendering
   time — rendering is a cold path (traces and logs only). *)
let printers : (payload -> string option) list Atomic.t = Atomic.make []

let rec register_printer f =
  let cur = Atomic.get printers in
  if not (Atomic.compare_and_set printers cur (f :: cur)) then register_printer f

let payload_to_string p =
  let rec try_all = function
    | [] -> ( match p with Blob s -> Printf.sprintf "Blob(%s)" s | _ -> "<payload>")
    | f :: rest -> ( match f p with Some s -> s | None -> try_all rest)
  in
  try_all (List.rev (Atomic.get printers))

let pp ppf t =
  Format.fprintf ppf "#%d %d->%d %s(+%.1fms) %s" t.id t.src t.dst t.tag t.delay_ms
    (payload_to_string t.payload)
