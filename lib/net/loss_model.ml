(* Per-link stochastic network faults: independent drop, duplication, a
   bounded reordering window, and Gilbert–Elliott burst loss.  The model is
   pure configuration plus a [state] value that owns the per-link
   Gilbert–Elliott chains; every random draw comes from the RNG the caller
   threads in, so the whole model inherits the simulator's determinism. *)

type burst = { p_gb : float; p_bg : float; p_bad : float }

type t = { drop : float; dup : float; reorder_ms : float; burst : burst option }

let none = { drop = 0.; dup = 0.; reorder_ms = 0.; burst = None }

let is_none t =
  t.drop = 0. && t.dup = 0. && t.reorder_ms = 0. && t.burst = None

let make ?(drop = 0.) ?(dup = 0.) ?(reorder_ms = 0.) ?burst () =
  { drop; dup; reorder_ms; burst }

let check_prob what p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg
      (Printf.sprintf "%s must be a probability in [0, 1], got %g" what p)

let validate t =
  check_prob "loss (drop probability)" t.drop;
  check_prob "dup (duplication probability)" t.dup;
  if not (t.reorder_ms >= 0.) then
    invalid_arg
      (Printf.sprintf "reorder window must be >= 0 ms, got %g" t.reorder_ms);
  match t.burst with
  | None -> ()
  | Some b ->
      check_prob "burst_loss good->bad transition" b.p_gb;
      check_prob "burst_loss bad->good transition" b.p_bg;
      check_prob "burst_loss bad-state drop probability" b.p_bad

(* "p_gb,p_bg,p_bad" — e.g. "0.01,0.2,0.8": enter the bad state with
   probability 0.01 per message, leave it with 0.2, drop 80% while bad. *)
let burst_of_string s =
  match String.split_on_char ',' (String.trim s) with
  | [ a; b; c ] -> (
      try
        let p_gb = float_of_string (String.trim a) in
        let p_bg = float_of_string (String.trim b) in
        let p_bad = float_of_string (String.trim c) in
        { p_gb; p_bg; p_bad }
      with _ ->
        invalid_arg
          (Printf.sprintf
             "burst_loss %S: expected three floats \"p_gb,p_bg,p_bad\"" s))
  | _ ->
      invalid_arg
        (Printf.sprintf "burst_loss %S: expected \"p_gb,p_bg,p_bad\"" s)

let burst_to_string b = Printf.sprintf "%g,%g,%g" b.p_gb b.p_bg b.p_bad

let describe t =
  if is_none t then "lossless"
  else
    String.concat " "
      (List.filter
         (fun s -> s <> "")
         [
           (if t.drop > 0. then Printf.sprintf "loss=%g" t.drop else "");
           (if t.dup > 0. then Printf.sprintf "dup=%g" t.dup else "");
           (if t.reorder_ms > 0. then Printf.sprintf "reorder=%gms" t.reorder_ms
            else "");
           (match t.burst with
           | Some b -> Printf.sprintf "burst=%s" (burst_to_string b)
           | None -> "");
         ])

(* Per-link Gilbert–Elliott chains, keyed by (src, dst) and created lazily
   on first traffic so link count never affects the RNG stream of links
   that carry no messages. *)
type state = { model : t; links : (int * int, bool ref) Hashtbl.t }

let state model = { model; links = Hashtbl.create 64 }

type verdict = { deliver : bool; duplicate : bool; reorder_extra_ms : float }

(* Draw order is part of the determinism contract: burst-state transition,
   then drop, then (if delivered) duplication, then reordering.  Changing it
   changes every lossy fingerprint. *)
let sample st rng ~src ~dst =
  let model = st.model in
  let dropped =
    let burst_dropped =
      match model.burst with
      | None -> false
      | Some b ->
          let bad =
            match Hashtbl.find_opt st.links (src, dst) with
            | Some r -> r
            | None ->
                let r = ref false in
                Hashtbl.add st.links (src, dst) r;
                r
          in
          let flip = Bftsim_sim.Rng.float rng 1. in
          (if !bad then (if flip < b.p_bg then bad := false)
           else if flip < b.p_gb then bad := true);
          !bad && Bftsim_sim.Rng.float rng 1. < b.p_bad
    in
    burst_dropped
    || (model.drop > 0. && Bftsim_sim.Rng.float rng 1. < model.drop)
  in
  if dropped then { deliver = false; duplicate = false; reorder_extra_ms = 0. }
  else
    let duplicate =
      model.dup > 0. && Bftsim_sim.Rng.float rng 1. < model.dup
    in
    let reorder_extra_ms =
      if model.reorder_ms > 0. then Bftsim_sim.Rng.float rng model.reorder_ms
      else 0.
    in
    { deliver = true; duplicate; reorder_extra_ms }
