(** The network module (paper §III-A4).

    Each node is connected to this module.  A sender sets [src] and [dst] in
    the envelope and hands the message over; the network samples the [delay]
    variable from the configured distribution (scaled by the topology's
    per-link factor, plus the one-way zone latency when the topology has
    geographic zones) and forwards the message onward — in the full
    simulator the next hop is the attacker module, then the event queue.

    With a per-link bandwidth configured, each sender's egress link is a
    FIFO server: a message waits behind everything the sender already put
    on the wire, then occupies the link for its serialization time, so
    message {e size} translates into delay and congestion.  The network
    also keeps the message-usage counters backing the paper's second metric
    (§II-C). *)

open Bftsim_sim

type t

type stats = {
  sent : int;  (** Messages that entered the network. *)
  bytes : int;  (** Sum of estimated message sizes. *)
  queued : int;  (** Messages that waited behind a busy egress link. *)
  queue_ms_total : float;  (** Total time spent waiting in egress queues. *)
}

val create :
  ?bandwidth_mbps:float -> delay:Delay_model.t -> topology:Topology.t -> rng:Rng.t -> unit -> t
(** The network owns its RNG stream so delay sampling is independent of
    protocol randomness.  [bandwidth_mbps] enables the per-sender FIFO
    egress model; omitted means infinite bandwidth (sizes cost nothing).
    @raise Invalid_argument if [bandwidth_mbps <= 0] or non-finite. *)

val delay_model : t -> Delay_model.t

val topology : t -> Topology.t

val assign_delay : t -> Message.t -> unit
(** Samples and writes [delay_ms] (self-addressed messages get 0 delay —
    local delivery does not traverse the wire) and updates the counters.
    [delay_ms] = egress queue wait + serialization + zone one-way latency
    + sampled jitter x pair scale. *)

val last_queue_ms : t -> float
(** Queue-wait + serialization component of the most recent
    {!assign_delay}; [0.] without bandwidth modelling.  Read it immediately
    after the call (it is overwritten by the next one). *)

val override_delay : t -> Delay_model.t -> unit
(** Swaps the delay distribution mid-simulation; used to model networks that
    stabilize (GST) or degrade at a known time. *)

val stats : t -> stats

val reset_stats : t -> unit
