type zones = { names : string array; assignment : int array; rtt_ms : float array array }

type t = {
  n : int;
  subnet : int array;
  scales : (int * int, float) Hashtbl.t;
  zones : zones option;
}

let fully_connected n =
  if n <= 0 then invalid_arg "Topology.fully_connected: n <= 0";
  { n; subnet = Array.make n 0; scales = Hashtbl.create 16; zones = None }

let n t = t.n

let with_subnets t assignment =
  if Array.length assignment <> t.n then invalid_arg "Topology.with_subnets: length mismatch";
  (* [scales] is mutable shared state: the derived topology must get its own
     copy or [set_pair_scale] on one would silently mutate the other. *)
  { t with subnet = Array.copy assignment; scales = Hashtbl.copy t.scales }

let split_in_two n ~first_size =
  if first_size < 0 || first_size > n then invalid_arg "Topology.split_in_two";
  let t = fully_connected n in
  with_subnets t (Array.init n (fun i -> if i < first_size then 0 else 1))

let subnet_of t i = t.subnet.(i)

let same_subnet t a b = t.subnet.(a) = t.subnet.(b)

let set_pair_scale t ~src ~dst scale = Hashtbl.replace t.scales (src, dst) scale

let pair_scale t ~src ~dst = Option.value ~default:1.0 (Hashtbl.find_opt t.scales (src, dst))

(* --- Geographic zones --- *)

let validate_zones ~n ~names ~assignment ~rtt_ms =
  let z = Array.length names in
  if z = 0 then invalid_arg "Topology.with_zones: no zones";
  if Array.length assignment <> n then invalid_arg "Topology.with_zones: assignment length mismatch";
  Array.iter
    (fun zi -> if zi < 0 || zi >= z then invalid_arg "Topology.with_zones: zone index out of range")
    assignment;
  if Array.length rtt_ms <> z then invalid_arg "Topology.with_zones: rtt matrix not z x z";
  Array.iteri
    (fun i row ->
      if Array.length row <> z then invalid_arg "Topology.with_zones: rtt matrix not square";
      Array.iteri
        (fun j v ->
          if not (Float.is_finite v) || v < 0. then
            invalid_arg "Topology.with_zones: rtt entries must be finite and >= 0";
          if Float.abs (v -. rtt_ms.(j).(i)) > 1e-9 then
            invalid_arg "Topology.with_zones: rtt matrix must be symmetric")
        row)
    rtt_ms

let with_zones t ~names ~assignment ~rtt_ms =
  validate_zones ~n:t.n ~names ~assignment ~rtt_ms;
  {
    t with
    scales = Hashtbl.copy t.scales;
    zones =
      Some
        {
          names = Array.copy names;
          assignment = Array.copy assignment;
          rtt_ms = Array.map Array.copy rtt_ms;
        };
  }

let zone_count t = match t.zones with None -> 0 | Some z -> Array.length z.names

let zone_of t i = match t.zones with None -> None | Some z -> Some z.assignment.(i)

let zone_name t zi =
  match t.zones with
  | None -> invalid_arg "Topology.zone_name: topology has no zones"
  | Some z -> z.names.(zi)

let zone_rtt_ms t ~a ~b =
  match t.zones with None -> 0. | Some z -> z.rtt_ms.(z.assignment.(a)).(z.assignment.(b))

(* One-way propagation: half the zone-pair RTT.  Without zones the model
   degenerates to 0 and delays come from the sampled distribution alone. *)
let zone_delay_ms t ~src ~dst = zone_rtt_ms t ~a:src ~b:dst /. 2.

let round_robin_assignment ~n ~zones =
  if zones <= 0 then invalid_arg "Topology.round_robin_assignment: zones <= 0";
  Array.init n (fun i -> i mod zones)

(* --- Named presets (approximate inter-region RTTs, ms) --- *)

let intra_rtt = 2.

let matrix_of_pairs names pairs =
  let z = Array.length names in
  let m = Array.init z (fun _ -> Array.make z intra_rtt) in
  List.iter
    (fun (i, j, rtt) ->
      m.(i).(j) <- rtt;
      m.(j).(i) <- rtt)
    pairs;
  m

let geo3_names = [| "us-east"; "eu-west"; "ap-east" |]

let geo3_rtt = matrix_of_pairs geo3_names [ (0, 1, 80.); (0, 2, 200.); (1, 2, 180.) ]

let geo5_names = [| "us-east"; "us-west"; "eu-west"; "ap-south"; "ap-east" |]

let geo5_rtt =
  matrix_of_pairs geo5_names
    [
      (0, 1, 60.);
      (0, 2, 80.);
      (0, 3, 190.);
      (0, 4, 200.);
      (1, 2, 140.);
      (1, 3, 220.);
      (1, 4, 150.);
      (2, 3, 120.);
      (2, 4, 180.);
      (3, 4, 90.);
    ]

let zones_of_spec spec =
  match spec with
  | "geo3" -> Ok (geo3_names, geo3_rtt)
  | "geo5" -> Ok (geo5_names, geo5_rtt)
  | _ -> (
    (* uniform:<zones>@<rtt_ms> — k symmetric zones with one inter-zone RTT. *)
    match String.index_opt spec ':' with
    | Some i when String.sub spec 0 i = "uniform" -> (
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      match String.index_opt rest '@' with
      | None -> Error (Printf.sprintf "invalid zone spec %S (want uniform:<zones>@<rtt_ms>)" spec)
      | Some j -> (
        let k = String.sub rest 0 j in
        let rtt = String.sub rest (j + 1) (String.length rest - j - 1) in
        match (int_of_string_opt k, float_of_string_opt rtt) with
        | Some k, Some rtt when k > 0 && Float.is_finite rtt && rtt >= 0. ->
          let names = Array.init k (Printf.sprintf "zone-%d") in
          let pairs = ref [] in
          for a = 0 to k - 1 do
            for b = a + 1 to k - 1 do
              pairs := (a, b, rtt) :: !pairs
            done
          done;
          Ok (names, matrix_of_pairs names !pairs)
        | _ -> Error (Printf.sprintf "invalid zone spec %S" spec)))
    | _ -> Error (Printf.sprintf "unknown zone spec %S (try geo3, geo5 or uniform:<k>@<rtt>)" spec))

let of_zone_spec spec ~n =
  match zones_of_spec spec with
  | Error _ as e -> e
  | Ok (names, rtt_ms) ->
    let assignment = round_robin_assignment ~n ~zones:(Array.length names) in
    Ok (with_zones (fully_connected n) ~names ~assignment ~rtt_ms)
