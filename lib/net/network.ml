open Bftsim_sim

type stats = { sent : int; bytes : int; queued : int; queue_ms_total : float }

type t = {
  mutable delay : Delay_model.t;
  topology : Topology.t;
  rng : Rng.t;
  bandwidth_mbps : float option;
  link_busy_until : float array;  (* per-source egress link, FIFO *)
  mutable last_queue_ms : float;
  mutable sent : int;
  mutable bytes : int;
  mutable queued : int;
  mutable queue_ms_total : float;
}

let create ?bandwidth_mbps ~delay ~topology ~rng () =
  (match bandwidth_mbps with
  | Some b when (not (Float.is_finite b)) || b <= 0. ->
    invalid_arg "Network.create: bandwidth_mbps must be finite and > 0"
  | _ -> ());
  {
    delay;
    topology;
    rng;
    bandwidth_mbps;
    link_busy_until = Array.make (Topology.n topology) 0.;
    last_queue_ms = 0.;
    sent = 0;
    bytes = 0;
    queued = 0;
    queue_ms_total = 0.;
  }

let delay_model t = t.delay

let topology t = t.topology

let assign_delay t (msg : Message.t) =
  if msg.src = msg.dst then begin
    msg.delay_ms <- 0.;
    t.last_queue_ms <- 0.
  end
  else begin
    let jitter = Delay_model.sample t.delay t.rng in
    let propagation =
      (jitter *. Topology.pair_scale t.topology ~src:msg.src ~dst:msg.dst)
      +. Topology.zone_delay_ms t.topology ~src:msg.src ~dst:msg.dst
    in
    let transport =
      match t.bandwidth_mbps with
      | None ->
        t.last_queue_ms <- 0.;
        0.
      | Some mbps ->
        (* The sender's egress link is a FIFO server: a message must wait
           for everything ahead of it, then occupies the link for its
           serialization time (bytes -> ms at [mbps]). *)
        let now = Time.to_ms msg.sent_at in
        let serialization = float_of_int msg.size *. 0.008 /. mbps in
        let start = Float.max now t.link_busy_until.(msg.src) in
        t.link_busy_until.(msg.src) <- start +. serialization;
        let wait = start -. now in
        if wait > 0. then begin
          t.queued <- t.queued + 1;
          t.queue_ms_total <- t.queue_ms_total +. wait
        end;
        t.last_queue_ms <- wait;
        wait +. serialization
    in
    msg.delay_ms <- transport +. propagation;
    (* Self-addressed messages are local deliveries, not wire traffic, so
       only cross-node messages count toward message usage (§II-C). *)
    t.sent <- t.sent + 1;
    t.bytes <- t.bytes + msg.size
  end

let last_queue_ms t = t.last_queue_ms

let override_delay t delay = t.delay <- delay

let stats t = { sent = t.sent; bytes = t.bytes; queued = t.queued; queue_ms_total = t.queue_ms_total }

let reset_stats t =
  t.sent <- 0;
  t.bytes <- 0;
  t.queued <- 0;
  t.queue_ms_total <- 0.
