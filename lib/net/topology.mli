(** Logical network topology.

    The simulator models a fully connected peer-to-peer overlay; the
    topology adds three refinements used by experiments:

    - {b subnets}: a partition of the node set into groups.  The partition
      attacker (paper §III-C) filters on subnet boundaries.
    - {b per-pair latency scaling}: heterogeneous links (e.g. a slow
      cross-datacenter pair) without changing the global delay model.
    - {b geographic zones}: named regions with an inter-zone RTT matrix.
      When zones are present the network adds the one-way zone latency
      (RTT/2) to every sampled delay, turning the delay model into the
      jitter on top of geographic propagation. *)

type t

val fully_connected : int -> t
(** [fully_connected n] is the default topology: everyone in subnet 0,
    uniform latency scaling, no zones. *)

val n : t -> int

val with_subnets : t -> int array -> t
(** [with_subnets t assignment] places node [i] in subnet [assignment.(i)].
    The derived topology gets its own copy of the mutable per-pair scale
    table, so later [set_pair_scale] calls do not alias.
    @raise Invalid_argument if the array length differs from [n t]. *)

val split_in_two : int -> first_size:int -> t
(** Convenience: nodes [0 .. first_size-1] in subnet 0, the rest in
    subnet 1 — the two-subnet partition of the paper's Fig. 6. *)

val subnet_of : t -> int -> int

val same_subnet : t -> int -> int -> bool

val set_pair_scale : t -> src:int -> dst:int -> float -> unit
(** Multiplies sampled delays on the directed link [src -> dst]. *)

val pair_scale : t -> src:int -> dst:int -> float
(** The scaling factor for a directed link; 1.0 by default. *)

(** {1 Geographic zones} *)

val with_zones : t -> names:string array -> assignment:int array -> rtt_ms:float array array -> t
(** [with_zones t ~names ~assignment ~rtt_ms] attaches named zones: node [i]
    lives in zone [assignment.(i)]; [rtt_ms.(a).(b)] is the round-trip time
    between zones [a] and [b] (the diagonal is the intra-zone RTT).  All
    input arrays are copied.
    @raise Invalid_argument if the matrix is not square/symmetric, has
    negative or non-finite entries, or the assignment is out of range. *)

val zone_count : t -> int
(** Number of zones; [0] when the topology has none. *)

val zone_of : t -> int -> int option
(** Zone index of a node, [None] without zones. *)

val zone_name : t -> int -> string
(** @raise Invalid_argument when the topology has no zones. *)

val zone_rtt_ms : t -> a:int -> b:int -> float
(** Round-trip time between the zones of nodes [a] and [b]; [0.] without
    zones.  Symmetric by construction. *)

val zone_delay_ms : t -> src:int -> dst:int -> float
(** One-way propagation between the zones of [src] and [dst]: half the
    zone-pair RTT; [0.] without zones. *)

val intra_rtt : float
(** Intra-zone RTT (ms) used by the zone-spec presets: the diagonal of
    every generated matrix. *)

val round_robin_assignment : n:int -> zones:int -> int array
(** Node [i] in zone [i mod zones] — the default replica placement. *)

val zones_of_spec : string -> (string array * float array array, string) result
(** Parses a zone spec: the presets ["geo3"] / ["geo5"] (approximate
    inter-region RTTs across 3/5 regions, 2 ms intra-zone), or
    ["uniform:<zones>@<rtt_ms>"] for [k] symmetric zones. *)

val of_zone_spec : string -> n:int -> (t, string) result
(** [of_zone_spec spec ~n] builds a fully connected topology with the spec's
    zones and a round-robin replica placement. *)
