(* Open-loop client arrival processes (DESIGN.md §3.16).

   Open-loop means clients submit at their own pace regardless of how the
   system keeps up — the model that exposes a saturation knee, unlike
   closed-loop clients whose offered load collapses with latency.  Each
   process is a pure description; [next_gap_ms] samples the time to the
   next arrival from the process, the current simulation time and the
   harness RNG, so the arrival stream is deterministic per seed. *)

open Bftsim_sim

type t =
  | Constant of { rate : float }
  | Poisson of { rate : float }
  | On_off of { rate : float; on_ms : float; off_ms : float }

let validate = function
  | Constant { rate } | Poisson { rate } ->
    if (not (Float.is_finite rate)) || rate <= 0. then
      invalid_arg "Arrival: rate must be finite and > 0"
  | On_off { rate; on_ms; off_ms } ->
    if (not (Float.is_finite rate)) || rate <= 0. then
      invalid_arg "Arrival: rate must be finite and > 0";
    if (not (Float.is_finite on_ms)) || on_ms <= 0. then
      invalid_arg "Arrival: on window must be finite and > 0";
    if (not (Float.is_finite off_ms)) || off_ms < 0. then
      invalid_arg "Arrival: off window must be finite and >= 0"

let constant ~rate =
  let t = Constant { rate } in
  validate t;
  t

let poisson ~rate =
  let t = Poisson { rate } in
  validate t;
  t

let on_off ~rate ~on_ms ~off_ms =
  let t = On_off { rate; on_ms; off_ms } in
  validate t;
  t

let rate = function Constant { rate } | Poisson { rate } | On_off { rate; _ } -> rate

let with_rate t rate =
  if (not (Float.is_finite rate)) || rate <= 0. then
    invalid_arg "Arrival.with_rate: rate must be finite and > 0";
  match t with
  | Constant _ -> Constant { rate }
  | Poisson _ -> Poisson { rate }
  | On_off o -> On_off { o with rate }

let mean_rate = function
  | Constant { rate } | Poisson { rate } -> rate
  | On_off { rate; on_ms; off_ms } -> rate *. on_ms /. (on_ms +. off_ms)

(* During an on/off burst the gap is drawn over *on-time* only: walk
   forward from [now_ms], skipping off windows, until the drawn amount of
   on-time has elapsed.  Phase is absolute (cycle-aligned to t=0), so every
   client agrees on when bursts happen. *)
let skip_off_windows ~on_ms ~off_ms ~now_ms gap_on_time =
  let cycle = on_ms +. off_ms in
  let rec go at remaining =
    let p = Float.rem at cycle in
    if p >= on_ms then go (at +. (cycle -. p)) remaining
    else
      let available = on_ms -. p in
      if remaining <= available then at +. remaining else go (at +. available) (remaining -. available)
  in
  go now_ms gap_on_time -. now_ms

let next_gap_ms t ~now_ms rng =
  match t with
  | Constant { rate } -> 1000. /. rate
  | Poisson { rate } -> Rng.exponential rng ~mean:(1000. /. rate)
  | On_off { rate; on_ms; off_ms } ->
    let gap = Rng.exponential rng ~mean:(1000. /. rate) in
    skip_off_windows ~on_ms ~off_ms ~now_ms gap

let describe = function
  | Constant { rate } -> Printf.sprintf "constant(%g/s)" rate
  | Poisson { rate } -> Printf.sprintf "Poisson(%g/s)" rate
  | On_off { rate; on_ms; off_ms } -> Printf.sprintf "on/off(%g/s,%g|%g)" rate on_ms off_ms

let pp ppf t = Format.pp_print_string ppf (describe t)

let to_cli_string = function
  | Constant { rate } -> Printf.sprintf "constant:%g" rate
  | Poisson { rate } -> Printf.sprintf "poisson:%g" rate
  | On_off { rate; on_ms; off_ms } -> Printf.sprintf "onoff:%g,%g,%g" rate on_ms off_ms

let parse_floats s =
  try Some (List.map float_of_string (String.split_on_char ',' s)) with Failure _ -> None

let of_string s =
  let invalid () = Error (Printf.sprintf "invalid arrival process %S" s) in
  let guard t = match validate t with () -> Ok t | exception Invalid_argument _ -> invalid () in
  match String.index_opt s ':' with
  | None -> invalid ()
  | Some i -> (
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match kind with
    | "constant" | "const" -> (
      match parse_floats rest with Some [ rate ] -> guard (Constant { rate }) | _ -> invalid ())
    | "poisson" -> (
      match parse_floats rest with Some [ rate ] -> guard (Poisson { rate }) | _ -> invalid ())
    | "onoff" | "burst" -> (
      match parse_floats rest with
      | Some [ rate; on_ms; off_ms ] -> guard (On_off { rate; on_ms; off_ms })
      | _ -> invalid ())
    | _ -> invalid ())
