(* Bounded FIFO mempool (DESIGN.md §3.16).

   One logical pool of pending client requests on the proposer path.  The
   bound models admission control: when the pool is full, new requests are
   rejected (counted, not queued), which is what keeps an overdriven
   open-loop run from accumulating unbounded state past the saturation
   knee. *)

type request = { id : int; arrived_ms : float }

type t = {
  capacity : int;
  q : request Queue.t;
  mutable dropped : int;
  mutable peak : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Mempool.create: capacity must be > 0";
  { capacity; q = Queue.create (); dropped = 0; peak = 0 }

let length t = Queue.length t.q

let add t r =
  if Queue.length t.q >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    Queue.add r t.q;
    if Queue.length t.q > t.peak then t.peak <- Queue.length t.q;
    true
  end

let take t ~max =
  if max < 0 then invalid_arg "Mempool.take: max must be >= 0";
  let rec go acc k =
    if k = 0 || Queue.is_empty t.q then List.rev acc else go (Queue.pop t.q :: acc) (k - 1)
  in
  go [] max

let dropped t = t.dropped
let peak t = t.peak
