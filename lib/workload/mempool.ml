(* Bounded FIFO mempool (DESIGN.md §3.16).

   One logical pool of pending client requests on the proposer path.  The
   bound models admission control: when the pool is full, new requests are
   rejected (counted, not queued), which is what keeps an overdriven
   open-loop run from accumulating unbounded state past the saturation
   knee.

   Re-queue (PR 9): requests whose batch went stale on a view change are
   returned to the *front* of the pool so they keep their original FIFO
   position relative to younger requests.  The front stash is a plain list
   (LIFO push, so requeueing a batch's list restores its internal order)
   drained before the queue. *)

type request = { id : int; arrived_ms : float; key : int; client : int }

type t = {
  capacity : int;
  q : request Queue.t;
  mutable front : request list;  (* re-queued requests, served before [q] *)
  mutable dropped : int;
  mutable requeued : int;
  mutable peak : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Mempool.create: capacity must be > 0";
  { capacity; q = Queue.create (); front = []; dropped = 0; requeued = 0; peak = 0 }

let length t = List.length t.front + Queue.length t.q

let bump_peak t =
  let len = length t in
  if len > t.peak then t.peak <- len

let add t r =
  if length t >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    Queue.add r t.q;
    bump_peak t;
    true
  end

(* Stale-batch return path.  Bypasses the capacity bound: these requests
   were already admitted once, and bouncing them now would double-count the
   admission decision.  [rs] must be in FIFO order; pushing in reverse keeps
   that order at the front of the pool. *)
let requeue t rs =
  t.front <- List.rev_append (List.rev rs) t.front;
  t.requeued <- t.requeued + List.length rs;
  bump_peak t

let take t ~max =
  if max < 0 then invalid_arg "Mempool.take: max must be >= 0";
  let rec from_front acc k = function
    | r :: rest when k > 0 -> from_front (r :: acc) (k - 1) rest
    | rest ->
      t.front <- rest;
      let rec from_q acc k =
        if k = 0 || Queue.is_empty t.q then List.rev acc else from_q (Queue.pop t.q :: acc) (k - 1)
      in
      from_q acc k
  in
  from_front [] max t.front

let to_list t = t.front @ List.of_seq (Queue.to_seq t.q)

let dropped t = t.dropped
let requeued t = t.requeued
let peak t = t.peak
