(* Workload driver (DESIGN.md §3.16): wires arrivals, the mempool and the
   batcher into a [Controller.run] through the workload hooks, measures
   end-to-end request latency (arrival → commit quorum), and sweeps offered
   rates into a throughput-latency curve.

   Determinism: the harness owns a private RNG derived from the config
   seed — it never touches the controller's split chain, so a run with the
   workload enabled perturbs nothing but its own events, and a run without
   it is bit-identical to older builds.  Sweep points are independent runs
   aggregated in rate order, so the curve is byte-identical at any
   [--jobs].

   Goodput accounting (PR 9): a leader continuation that fires stale — the
   view moved on before the batch was cut — returns [false], and the batch
   is re-queued at the front of the mempool instead of dropped, so churny
   runs measure true goodput.  Alongside the open-loop arrivals there is a
   closed-loop client mode (a fixed population each keeping [cap] requests
   in flight; the sweep variable is the population size), and requests
   carry contention keys (see {!Keys}) so commit-order conflicts can be
   modeled. *)

open Bftsim_sim
module Core = Bftsim_core
module Context = Bftsim_protocols.Context
module Json = Bftsim_obs.Json
module Metrics = Bftsim_obs.Metrics

type clients = Open_loop | Closed_loop of { cap : int }

let clients_to_cli_string = function
  | Open_loop -> "open"
  | Closed_loop { cap } -> Printf.sprintf "closed:%d" cap

let clients_of_string s =
  match s with
  | "open" -> Ok Open_loop
  | _ -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "closed" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some cap when cap > 0 -> Ok (Closed_loop { cap })
      | Some _ | None -> Error (Printf.sprintf "invalid client mode %S (cap must be > 0)" s))
    | _ -> Error (Printf.sprintf "invalid client mode %S" s))

type t = {
  arrival : Arrival.t;
  policy : Batch.policy;
  mempool_capacity : int;
  clients : clients;
  keys : Keys.t;
}

let make ?(arrival = Arrival.poisson ~rate:100.) ?(policy = Batch.default)
    ?(mempool_capacity = 4096) ?(clients = Open_loop) ?(keys = Keys.Single) () =
  if mempool_capacity <= 0 then invalid_arg "Driver.make: mempool_capacity must be > 0";
  (match clients with
  | Open_loop -> ()
  | Closed_loop { cap } -> if cap <= 0 then invalid_arg "Driver.make: client cap must be > 0");
  Keys.validate keys;
  { arrival; policy; mempool_capacity; clients; keys }

let describe t =
  let base =
    match t.clients with
    | Open_loop -> Arrival.describe t.arrival
    | Closed_loop { cap } -> Printf.sprintf "closed-loop(cap=%d)" cap
  in
  let keys = match t.keys with Keys.Single -> "" | k -> " keys=" ^ Keys.describe k in
  Printf.sprintf "%s %s mempool=%d%s" base (Batch.describe t.policy) t.mempool_capacity keys

(* {1 One run} *)

(* Per-run harness state, closed over by the workload hooks. *)
type harness = {
  rng : Rng.t;
  pool : Mempool.t;
  policy : Batch.policy;
  arrival : Arrival.t;
  clients : clients;
  client_count : int;  (* closed-loop population; 0 in open loop *)
  keys_sampler : Keys.sampler;
  keyed : bool;  (* false = Single mode: skip conflict accounting *)
  ack_quorum : int;
  mutable env : Core.Controller.workload_env option;
  mutable next_request : int;
  mutable submitted : int;
  mutable next_batch : int;
  batches : (string, Mempool.request list) Hashtbl.t;  (* in-flight value -> requests *)
  mutable batch_log : (string * int list) list;  (* every bundle ever cut, newest first *)
  acks : (int, int ref) Hashtbl.t;  (* decision index -> distinct-node ack count *)
  committed_idx : (int, unit) Hashtbl.t;
  req_committed : (int, unit) Hashtbl.t;  (* committed request ids *)
  requeue_counts : (int, int) Hashtbl.t;  (* id -> times re-queued *)
  mutable committed : int;
  mutable committed_ids : int list;  (* newest first *)
  mutable key_conflicts : int;
  mutable last_key : int;  (* key of the previously committed request *)
  mutable latencies : float list;  (* newest first *)
  mutable occupancies : int list;  (* newest first; 0 = empty (no-op) batch *)
  mutable empty_batches : int;
  (* Deferred leader requests, with the pipeline width each asked for. *)
  waiting : (int * (Context.proposal -> bool)) Queue.t;
  mutable waiting_armed : int;  (* timers in flight for deferred requests *)
}

let create_harness ~seed ~n ~rate (t : t) =
  let f = (n - 1) / 3 in
  let client_count =
    match t.clients with Open_loop -> 0 | Closed_loop _ -> Stdlib.max 1 (int_of_float rate)
  in
  let capacity =
    (* Closed loops bound their own in-flight population; admission control
       on top would just deadlock clients whose requests were rejected. *)
    match t.clients with
    | Open_loop -> t.mempool_capacity
    | Closed_loop { cap } -> Stdlib.max t.mempool_capacity (client_count * cap)
  in
  {
    (* Private stream: xor with an ASCII-"load" constant so it cannot
       collide with the controller's root/net/attacker/node split order. *)
    rng = Rng.create (seed lxor 0x6c6f6164);
    pool = Mempool.create ~capacity;
    policy = t.policy;
    arrival = t.arrival;
    clients = t.clients;
    client_count;
    keys_sampler = Keys.sampler t.keys;
    keyed = (match t.keys with Keys.Single -> false | _ -> true);
    ack_quorum = f + 1;
    env = None;
    next_request = 0;
    submitted = 0;
    next_batch = 0;
    batches = Hashtbl.create 64;
    batch_log = [];
    acks = Hashtbl.create 64;
    committed_idx = Hashtbl.create 64;
    req_committed = Hashtbl.create 256;
    requeue_counts = Hashtbl.create 16;
    committed = 0;
    committed_ids = [];
    key_conflicts = 0;
    last_key = Stdlib.min_int;
    latencies = [];
    occupancies = [];
    empty_batches = 0;
    waiting = Queue.create ();
    waiting_armed = 0;
  }

let env_exn h =
  match h.env with
  | Some e -> e
  | None -> invalid_arg "Workload: hook fired before on_workload_start"

(* Return a stale bundle's requests to the front of the mempool.  The
   continuation never broadcast the proposal, so none of these can have
   committed — the filter is the promised dedup guard: a request id is
   never simultaneously pending and committed. *)
let requeue_stale h value =
  match Hashtbl.find_opt h.batches value with
  | None -> ()
  | Some reqs ->
    Hashtbl.remove h.batches value;
    let reqs =
      List.filter (fun (r : Mempool.request) -> not (Hashtbl.mem h.req_committed r.id)) reqs
    in
    List.iter
      (fun (r : Mempool.request) ->
        Hashtbl.replace h.requeue_counts r.id
          (1 + Option.value ~default:0 (Hashtbl.find_opt h.requeue_counts r.id)))
      reqs;
    Mempool.requeue h.pool reqs

(* Cut a bundle now: drain up to [width] chunks of up to [max_batch]
   requests each and hand the leader a value naming them all — chained
   protocols carry their whole pipeline window in one block, so the bundle
   is one proposal ("b12(256)+b13(44)"); [width = 1] degenerates to the
   single-chunk value PBFT-style slot windows use.  An empty pool yields
   the protocol's default (no-op) proposal so an idle system still
   advances heights.  If the continuation reports the proposal unused
   (stale view), the whole bundle is re-queued. *)
let cut h ~width ~default k =
  let width = Stdlib.max 1 width in
  let rec take_chunks names reqss w =
    if w = 0 then (List.rev names, List.rev reqss)
    else
      match Mempool.take h.pool ~max:h.policy.Batch.max_batch with
      | [] -> (List.rev names, List.rev reqss)
      | reqs ->
        let count = List.length reqs in
        let seq = h.next_batch in
        h.next_batch <- seq + 1;
        h.occupancies <- count :: h.occupancies;
        take_chunks (Printf.sprintf "b%d(%d)" seq count :: names) (reqs :: reqss) (w - 1)
  in
  let names, reqss = take_chunks [] [] width in
  match names with
  | [] ->
    h.empty_batches <- h.empty_batches + 1;
    h.occupancies <- 0 :: h.occupancies;
    ignore (k default : bool)
  | _ ->
    let value = String.concat "+" names in
    let reqs = List.concat reqss in
    Hashtbl.replace h.batches value reqs;
    h.batch_log <- (value, List.map (fun (r : Mempool.request) -> r.id) reqs) :: h.batch_log;
    let size =
      List.fold_left (fun acc rs -> acc + Batch.size_bytes ~count:(List.length rs)) 0 reqss
    in
    if not (k { Context.value; size }) then requeue_stale h value

(* Fire deferred leader requests while a full batch is available — the
   early-cut rule; the max-wait timer handles the rest. *)
let fire_ready h ~default_of =
  while
    (not (Queue.is_empty h.waiting)) && Mempool.length h.pool >= h.policy.Batch.max_batch
  do
    let width, k = Queue.pop h.waiting in
    cut h ~width ~default:(default_of ()) k
  done

let on_request_proposal h ~node:_ ~slot:_ ~width ~default k =
  if Mempool.length h.pool >= h.policy.Batch.max_batch || h.policy.Batch.max_wait_ms <= 0. then
    cut h ~width ~default k
  else begin
    (* Defer until the wait window closes (or a full batch arrives first).
       The timer pops whichever request is oldest; queue discipline keeps
       the pairing FIFO even when cuts race with arrivals. *)
    Queue.add (width, k) h.waiting;
    h.waiting_armed <- h.waiting_armed + 1;
    let env = env_exn h in
    env.Core.Controller.wl_schedule ~delay_ms:h.policy.Batch.max_wait_ms (fun () ->
        h.waiting_armed <- h.waiting_armed - 1;
        if not (Queue.is_empty h.waiting) then begin
          let width, k = Queue.pop h.waiting in
          cut h ~width ~default k
        end)
  end

let submit h ~client =
  let env = env_exn h in
  let arrived_ms = env.Core.Controller.wl_now_ms () in
  let id = h.next_request in
  h.next_request <- id + 1;
  h.submitted <- h.submitted + 1;
  let key = Keys.sample h.keys_sampler h.rng in
  ignore (Mempool.add h.pool { Mempool.id; arrived_ms; key; client } : bool);
  fire_ready h ~default_of:(fun () ->
      (* An early cut always finds a full pool, so the default is never
         consulted; a placeholder keeps the types honest. *)
      { Context.value = "noop"; size = Batch.size_bytes ~count:0 })

let on_commit h ~node:_ ~index ~value ~at_ms =
  if not (Hashtbl.mem h.committed_idx index) then begin
    let count =
      match Hashtbl.find_opt h.acks index with
      | Some r ->
        incr r;
        !r
      | None ->
        Hashtbl.replace h.acks index (ref 1);
        1
    in
    if count >= h.ack_quorum then begin
      Hashtbl.replace h.committed_idx index ();
      Hashtbl.remove h.acks index;
      match Hashtbl.find_opt h.batches value with
      | None -> ()  (* no-op height or foreign value: no requests to ack *)
      | Some reqs ->
        Hashtbl.remove h.batches value;
        List.iter
          (fun (r : Mempool.request) ->
            h.committed <- h.committed + 1;
            Hashtbl.replace h.req_committed r.Mempool.id ();
            h.committed_ids <- r.Mempool.id :: h.committed_ids;
            if h.keyed then begin
              if r.Mempool.key = h.last_key then h.key_conflicts <- h.key_conflicts + 1;
              h.last_key <- r.Mempool.key
            end;
            h.latencies <- (at_ms -. r.Mempool.arrived_ms) :: h.latencies;
            (* Closed loop: the committing client immediately (zero think
               time) submits its next request, through the event queue so
               the replacement interleaves deterministically. *)
            if r.Mempool.client >= 0 then
              (env_exn h).Core.Controller.wl_schedule ~delay_ms:0. (fun () ->
                  submit h ~client:r.Mempool.client))
          reqs
    end
  end

let on_workload_start h env =
  h.env <- Some env;
  match h.clients with
  | Closed_loop { cap } ->
    (* The whole population submits its full window at t = 0; afterwards
       each commit triggers that client's next request. *)
    for client = 0 to h.client_count - 1 do
      for _ = 1 to cap do
        submit h ~client
      done
    done
  | Open_loop ->
    let rec pump () =
      let now_ms = env.Core.Controller.wl_now_ms () in
      let gap = Arrival.next_gap_ms h.arrival ~now_ms h.rng in
      env.Core.Controller.wl_schedule ~delay_ms:gap (fun () ->
          submit h ~client:(-1);
          pump ())
    in
    pump ()

let workload_of_harness h =
  {
    Core.Controller.on_workload_start = on_workload_start h;
    on_request_proposal =
      (fun ~node ~slot ~width ~default k -> on_request_proposal h ~node ~slot ~width ~default k);
    on_commit = (fun ~node ~index ~value ~at_ms -> on_commit h ~node ~index ~value ~at_ms);
  }

(* {1 Points} *)

type point = {
  rate : float;
  outcome : string;
  duration_ms : float;
  submitted : int;
  committed : int;
  dropped : int;
  requeued : int;
  in_flight : int;
  pending : int;
  key_conflicts : int;
  mempool_peak : int;
  batches : int;
  empty_batches : int;
  occupancy_mean : float;
  throughput : float;
  latency : Core.Stats.t option;
}

let point_to_json p =
  Json.Assoc
    ([
       ("rate", Json.Float p.rate);
       ("outcome", Json.String p.outcome);
       ("duration_ms", Json.Float p.duration_ms);
       ("submitted", Json.Int p.submitted);
       ("committed", Json.Int p.committed);
       ("dropped", Json.Int p.dropped);
       ("requeued", Json.Int p.requeued);
       ("in_flight", Json.Int p.in_flight);
       ("pending", Json.Int p.pending);
       ("key_conflicts", Json.Int p.key_conflicts);
       ("mempool_peak", Json.Int p.mempool_peak);
       ("batches", Json.Int p.batches);
       ("empty_batches", Json.Int p.empty_batches);
       ("occupancy_mean", Json.Float p.occupancy_mean);
       ("throughput", Json.Float p.throughput);
     ]
    @
    match p.latency with
    | None -> []
    | Some s ->
      [
        ( "latency",
          Json.Assoc
            [
              ("count", Json.Int s.Core.Stats.count);
              ("mean", Json.Float s.Core.Stats.mean);
              ("stddev", Json.Float s.Core.Stats.stddev);
              ("min", Json.Float s.Core.Stats.min);
              ("max", Json.Float s.Core.Stats.max);
              ("median", Json.Float s.Core.Stats.median);
              ("p95", Json.Float s.Core.Stats.p95);
              ("p99", Json.Float s.Core.Stats.p99);
            ] );
      ])

let ( let* ) r f = Result.bind r f

let j_field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "load point: missing field %S" name)

let j_num name json =
  let* v = j_field name json in
  match Json.to_number v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "load point: %S is not a number" name)

let j_int name json =
  let* v = j_field name json in
  match v with
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "load point: %S is not an int" name)

let j_string name json =
  let* v = j_field name json in
  match v with
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "load point: %S is not a string" name)

let point_of_json json =
  let* rate = j_num "rate" json in
  let* outcome = j_string "outcome" json in
  let* duration_ms = j_num "duration_ms" json in
  let* submitted = j_int "submitted" json in
  let* committed = j_int "committed" json in
  let* dropped = j_int "dropped" json in
  let* requeued = j_int "requeued" json in
  let* in_flight = j_int "in_flight" json in
  let* pending = j_int "pending" json in
  let* key_conflicts = j_int "key_conflicts" json in
  let* mempool_peak = j_int "mempool_peak" json in
  let* batches = j_int "batches" json in
  let* empty_batches = j_int "empty_batches" json in
  let* occupancy_mean = j_num "occupancy_mean" json in
  let* throughput = j_num "throughput" json in
  let* latency =
    match Json.member "latency" json with
    | None -> Ok None
    | Some s ->
      let* count = j_int "count" s in
      let* mean = j_num "mean" s in
      let* stddev = j_num "stddev" s in
      let* min = j_num "min" s in
      let* max = j_num "max" s in
      let* median = j_num "median" s in
      let* p95 = j_num "p95" s in
      let* p99 = j_num "p99" s in
      Ok (Some { Core.Stats.count; mean; stddev; min; max; median; p95; p99 })
  in
  Ok
    {
      rate;
      outcome;
      duration_ms;
      submitted;
      committed;
      dropped;
      requeued;
      in_flight;
      pending;
      key_conflicts;
      mempool_peak;
      batches;
      empty_batches;
      occupancy_mean;
      throughput;
      latency;
    }

(* Live points pass through the JSON codec once, so a point computed now
   and the same point resumed from a journal are structurally equal — the
   byte-identity contract the campaign journal established for digests. *)
let canonical_point p =
  match Result.bind (Json.of_string (Json.to_string (point_to_json p))) point_of_json with
  | Ok p' -> p'
  | Error _ -> p

(* Post-run injection of the workload cells into the run's registry, so
   [--metrics] output and cross-point merges carry the mempool/batching
   telemetry next to the controller's own. *)
let inject_metrics reg (h : harness) ~throughput ~in_flight =
  Metrics.incr ~by:h.submitted reg "wl.submitted";
  Metrics.incr ~by:h.committed reg "wl.committed";
  Metrics.incr ~by:(Mempool.dropped h.pool) reg "wl.dropped";
  Metrics.incr ~by:(Mempool.requeued h.pool) reg "wl.requeued";
  Metrics.incr ~by:h.key_conflicts reg "wl.key_conflicts";
  Metrics.incr ~by:h.empty_batches reg "wl.empty_batches";
  Metrics.set_gauge reg "wl.mempool_peak" (float_of_int (Mempool.peak h.pool));
  Metrics.set_gauge reg "wl.in_flight" (float_of_int in_flight);
  Metrics.set_gauge reg "wl.committed_per_s" throughput;
  let occ = Metrics.histogram reg "wl.batch_occupancy" in
  List.iter (fun c -> Metrics.observe_h occ (float_of_int c)) (List.rev h.occupancies);
  let lat = Metrics.histogram reg "wl.request_latency_ms" in
  List.iter (fun l -> Metrics.observe_h lat l) (List.rev h.latencies)

(* End-of-run accounting (audited by test/test_workload.ml): every
   submitted request is exactly one of committed, dropped, pending in the
   pool, or in an in-flight batch — re-queues move requests between the
   last two states without losing or duplicating them. *)
type audit = {
  committed_ids : int list;  (** In commit order. *)
  requeued_ids : (int * int) list;  (** (id, times re-queued), by id. *)
  pending_ids : int list;  (** Left in the pool at run end, service order. *)
  in_flight_ids : int list;  (** In uncommitted batches at run end, by id. *)
  batch_log : (string * int list) list;  (** Every bundle cut, oldest first. *)
}

let run_point_full (t : t) ~rate (config : Core.Config.t) =
  let t = { t with arrival = Arrival.with_rate t.arrival rate } in
  let h = create_harness ~seed:config.Core.Config.seed ~n:config.Core.Config.n ~rate t in
  let result = Core.Controller.run ~workload:(workload_of_harness h) config in
  let duration_ms = result.Core.Controller.time_ms in
  let throughput =
    if duration_ms > 0. then float_of_int h.committed /. (duration_ms /. 1000.) else 0.
  in
  let in_flight_ids =
    Hashtbl.fold
      (fun _ reqs acc -> List.map (fun (r : Mempool.request) -> r.id) reqs @ acc)
      h.batches []
    |> List.sort compare
  in
  let in_flight = List.length in_flight_ids in
  Option.iter
    (fun reg -> inject_metrics reg h ~throughput ~in_flight)
    result.Core.Controller.metrics;
  let occupancies = List.rev h.occupancies in
  let point =
    canonical_point
      {
        rate;
        outcome = Core.Journal.outcome_class result.Core.Controller.outcome;
        duration_ms;
        submitted = h.submitted;
        committed = h.committed;
        dropped = Mempool.dropped h.pool;
        requeued = Mempool.requeued h.pool;
        in_flight;
        pending = Mempool.length h.pool;
        key_conflicts = h.key_conflicts;
        mempool_peak = Mempool.peak h.pool;
        batches = h.next_batch;
        empty_batches = h.empty_batches;
        occupancy_mean =
          (match occupancies with
          | [] -> 0.
          | l ->
            float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l));
        throughput;
        latency = (match h.latencies with [] -> None | l -> Some (Core.Stats.of_list l));
      }
  in
  let audit =
    {
      committed_ids = List.rev h.committed_ids;
      requeued_ids =
        Hashtbl.fold (fun id n acc -> (id, n) :: acc) h.requeue_counts [] |> List.sort compare;
      pending_ids = List.map (fun (r : Mempool.request) -> r.id) (Mempool.to_list h.pool);
      in_flight_ids;
      batch_log = List.rev h.batch_log;
    }
  in
  (point, audit, result)

let run_point (t : t) ~rate (config : Core.Config.t) =
  let point, _audit, result = run_point_full t ~rate config in
  (point, result.Core.Controller.metrics)

let run_point_audit (t : t) ~rate (config : Core.Config.t) = run_point_full t ~rate config

(* {1 Rate sweeps} *)

type curve = {
  points : point list;  (** In offered-rate order (the input order). *)
  metrics : Metrics.t option;  (** Merged across points when telemetry is on. *)
  resumed : int;  (** Points loaded from the journal instead of run. *)
}

let cell (t : t) (config : Core.Config.t) ~rate =
  Printf.sprintf "%s|load|%s|%s|%d|%s|%s|%g"
    (Core.Journal.cell_of_config config)
    (Arrival.to_cli_string t.arrival)
    (Batch.to_cli_string t.policy) t.mempool_capacity
    (clients_to_cli_string t.clients)
    (Keys.to_cli_string t.keys) rate

let fingerprint (t : t) (config : Core.Config.t) ~rates =
  let mode =
    Printf.sprintf "load|%s|%s|%d|%s|%s|%s" (Arrival.to_cli_string t.arrival)
      (Batch.to_cli_string t.policy) t.mempool_capacity
      (clients_to_cli_string t.clients)
      (Keys.to_cli_string t.keys)
      (String.concat "," (List.map (Printf.sprintf "%g") rates))
  in
  Core.Journal.fingerprint ~mode ~reps:1 [ config ]

(* A journaled point carries the merged-registry contribution next to the
   point itself (like a digest's [metrics] field), so a resumed sweep
   rebuilds the identical merged registry without re-running. *)
let note_body point metrics =
  Json.Assoc
    (("point", point_to_json point)
    ::
    (match metrics with
    | None -> []
    | Some reg -> [ ("metrics", Metrics.to_json reg) ]))

let note_decode json =
  let* pj = j_field "point" json in
  let* point = point_of_json pj in
  let* metrics =
    match Json.member "metrics" json with
    | None -> Ok None
    | Some mj -> Result.map Option.some (Metrics.of_json mj)
  in
  Ok (point, metrics)

let sweep ?jobs ?journal ?(resumed = []) (t : t) (config : Core.Config.t) ~rates =
  let recovered =
    List.map
      (fun rate ->
        match Core.Journal.notes resumed ~cell:(cell t config ~rate) with
        | body :: _ -> (
          match note_decode body with Ok pm -> Some pm | Error _ -> None)
        | [] -> None)
      rates
  in
  let todo = List.filteri (fun i _ -> List.nth recovered i = None) rates in
  let ran =
    Core.Parallel.map ?jobs
      (fun rate ->
        let point, metrics = run_point t ~rate config in
        (rate, point, metrics))
      todo
  in
  (* Journal completed points in rate order (the deterministic order the
     sequential path produces), then stitch recovered + fresh results. *)
  Option.iter
    (fun j ->
      List.iter
        (fun (rate, point, metrics) ->
          Core.Journal.append j
            (Core.Journal.Note { cell = cell t config ~rate; body = note_body point metrics }))
        ran)
    journal;
  let fresh = Hashtbl.create 16 in
  List.iter (fun (rate, point, metrics) -> Hashtbl.replace fresh rate (point, metrics)) ran;
  let resolved =
    List.map2
      (fun rate recovered ->
        match recovered with
        | Some pm -> (pm, true)
        | None -> (Hashtbl.find fresh rate, false))
      rates recovered
  in
  let points = List.map (fun ((p, _), _) -> p) resolved in
  let registries = List.filter_map (fun ((_, m), _) -> m) resolved in
  let metrics = match registries with [] -> None | rs -> Some (Metrics.merge rs) in
  { points; metrics; resumed = List.length (List.filter (fun (_, r) -> r) resolved) }

(* {1 Rendering} *)

let knee points =
  List.fold_left
    (fun best p ->
      match best with
      | Some b when b.throughput >= p.throughput -> best
      | _ -> Some p)
    None points

let header = "rate,outcome,throughput,committed,submitted,dropped,requeued,batches,occupancy,lat_p50_ms,lat_p95_ms,lat_p99_ms,mempool_peak"

let row p =
  let lat f = match p.latency with None -> "" | Some s -> Printf.sprintf "%.3f" (f s) in
  Printf.sprintf "%g,%s,%.3f,%d,%d,%d,%d,%d,%.2f,%s,%s,%s,%d" p.rate p.outcome p.throughput
    p.committed p.submitted p.dropped p.requeued p.batches p.occupancy_mean
    (lat (fun s -> s.Core.Stats.median))
    (lat (fun s -> s.Core.Stats.p95))
    (lat (fun s -> s.Core.Stats.p99))
    p.mempool_peak

let pp_curve ppf { points; _ } =
  Format.fprintf ppf "%-10s %-14s %10s %10s %8s %8s %9s %9s %9s@." "rate" "outcome" "tput/s"
    "commit" "drop" "requeue" "p50ms" "p95ms" "p99ms";
  List.iter
    (fun p ->
      let lat f = match p.latency with None -> "-" | Some s -> Printf.sprintf "%.1f" (f s) in
      Format.fprintf ppf "%-10g %-14s %10.1f %10d %8d %8d %9s %9s %9s@." p.rate p.outcome
        p.throughput p.committed p.dropped p.requeued
        (lat (fun s -> s.Core.Stats.median))
        (lat (fun s -> s.Core.Stats.p95))
        (lat (fun s -> s.Core.Stats.p99)))
    points;
  match knee points with
  | Some k when k.throughput > 0. ->
    Format.fprintf ppf "saturation: %.1f req/s committed at offered %g req/s@." k.throughput
      k.rate
  | _ -> ()

let curve_to_json { points; _ } = Json.List (List.map point_to_json points)
