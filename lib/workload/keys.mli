(** Request key distributions (DESIGN.md §3.16).

    Every client request carries a contention key drawn from one of these
    distributions; requests that commit adjacently with equal keys are
    counted as conflicts ([wl.key_conflicts]), modeling execution-layer
    contention on top of the consensus commit order.  [Single] — the
    default — assigns key [0] without consuming randomness, so unkeyed runs
    keep their historical random streams (and fingerprints) exactly. *)

open Bftsim_sim

type t =
  | Single  (** Every request keyed [0]; no RNG draw. *)
  | Uniform of { space : int }  (** Uniform over [\[0, space)]. *)
  | Zipf of { s : float; space : int }
      (** Zipfian with exponent [s]: P(key = k) proportional to
          [1/(k+1)^s] — a small set of hot keys takes most of the load. *)

val default_space : int
(** Key-space size used when [zipf:<s>] omits one (1024). *)

val validate : t -> unit
(** @raise Invalid_argument on non-positive spaces/exponents. *)

val uniform : space:int -> t

val zipf : ?space:int -> s:float -> unit -> t

type sampler
(** Precomputed per-run sampling state (the zipf CDF table). *)

val sampler : t -> sampler

val sample : sampler -> Rng.t -> int
(** Draw one key.  [Single] consumes no randomness; the others consume
    exactly one [Rng.float] draw (O(log space) CDF binary search). *)

val describe : t -> string

val pp : Format.formatter -> t -> unit

val to_cli_string : t -> string
(** Round-trips through {!of_string}: ["single"] | ["uniform:<n>"] |
    ["zipf:<s>[,<n>]"]. *)

val of_string : string -> (t, string) result
