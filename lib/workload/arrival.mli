(** Open-loop client arrival processes (DESIGN.md §3.16).

    Clients submit requests at their own pace regardless of how the system
    keeps up — the open-loop model that exposes a saturation knee in the
    throughput-latency curve.  A process is a pure description;
    {!next_gap_ms} draws the time to the next arrival, so the stream is a
    deterministic function of the seed. *)

open Bftsim_sim

type t =
  | Constant of { rate : float }  (** Evenly spaced arrivals at [rate] req/s. *)
  | Poisson of { rate : float }  (** Memoryless arrivals, exponential gaps. *)
  | On_off of { rate : float; on_ms : float; off_ms : float }
      (** Poisson at [rate] during [on_ms] bursts separated by [off_ms]
          silences; phase is cycle-aligned to t = 0. *)

val constant : rate:float -> t
val poisson : rate:float -> t
val on_off : rate:float -> on_ms:float -> off_ms:float -> t

val rate : t -> float
(** The in-burst rate parameter (req/s). *)

val with_rate : t -> float -> t
(** Same process shape at a different rate — how a rate sweep reuses one
    [--arrival] spec across its points.
    @raise Invalid_argument unless the rate is finite and positive. *)

val mean_rate : t -> float
(** Long-run offered rate: [rate] for constant/Poisson, duty-cycle-scaled
    for on/off. *)

val next_gap_ms : t -> now_ms:float -> Rng.t -> float
(** Time until the next arrival after [now_ms].  For on/off the drawn gap
    elapses over on-time only: arrivals never land in an off window. *)

val describe : t -> string
(** Human rendering, e.g. ["Poisson(500/s)"]. *)

val pp : Format.formatter -> t -> unit

val to_cli_string : t -> string
(** Parseable rendering; [of_string (to_cli_string t) = Ok t]. *)

val of_string : string -> (t, string) result
(** Parses ["constant:<rate>"], ["poisson:<rate>"],
    ["onoff:<rate>,<on_ms>,<off_ms>"] (alias ["burst:..."]). *)
