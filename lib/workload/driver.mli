(** Workload driver (DESIGN.md §3.16): open-loop clients feeding a bounded
    mempool, leader-side batching through the controller's workload hooks,
    and offered-rate sweeps into a throughput-latency curve.

    End-to-end request latency is measured from client arrival to the
    commit ack quorum: a request counts as committed when [f + 1] distinct
    replicas have decided the batch that contains it.

    Determinism: the harness draws arrivals from a private RNG derived
    from the config seed (never from the controller's split chain), sweep
    points are independent runs aggregated in offered-rate order, and
    journaled points round-trip through {!Bftsim_obs.Json} — so the curve
    is byte-identical at any [--jobs] and across [--resume]. *)

type t
(** A workload description: arrival process shape, batching policy,
    mempool capacity.  The sweep re-rates the arrival process per point. *)

val make : ?arrival:Arrival.t -> ?policy:Batch.policy -> ?mempool_capacity:int -> unit -> t
(** Defaults: Poisson arrivals (the rate is overridden per sweep point),
    {!Batch.default} batching, a 4096-request pool. *)

val describe : t -> string

type point = {
  rate : float;  (** Offered rate (req/s). *)
  outcome : string;  (** [Journal.outcome_class] of the underlying run. *)
  duration_ms : float;  (** Simulated time the run took. *)
  submitted : int;
  committed : int;  (** Requests that reached the ack quorum. *)
  dropped : int;  (** Rejected by the mempool bound. *)
  mempool_peak : int;
  batches : int;  (** Non-empty batches cut. *)
  empty_batches : int;  (** Heights that proposed the no-op default. *)
  occupancy_mean : float;  (** Mean requests per cut (empty cuts count). *)
  throughput : float;  (** Committed req/s of simulated time. *)
  latency : Bftsim_core.Stats.t option;
      (** Arrival-to-commit latency (ms); [None] when nothing committed. *)
}

val run_point :
  t -> rate:float -> Bftsim_core.Config.t -> point * Bftsim_obs.Metrics.t option
(** One run at one offered rate.  The config's [decisions_target] bounds
    the heights driven; the returned registry (when telemetry is on) has
    the [wl.*] cells injected next to the controller's own. *)

type curve = {
  points : point list;  (** In offered-rate order (the input order). *)
  metrics : Bftsim_obs.Metrics.t option;
      (** Deterministic rate-order merge across points. *)
  resumed : int;  (** Points loaded from the journal instead of run. *)
}

val fingerprint : t -> Bftsim_core.Config.t -> rates:float list -> string
(** Campaign fingerprint for the journal (covers workload shape, rates and
    the base config). *)

val sweep :
  ?jobs:int ->
  ?journal:Bftsim_core.Journal.t ->
  ?resumed:Bftsim_core.Journal.event list ->
  t ->
  Bftsim_core.Config.t ->
  rates:float list ->
  curve
(** Runs one point per rate (fanned across [jobs] domains), journaling each
    completed point as a {!Bftsim_core.Journal.Note} and skipping points
    already present in [resumed].  Output is identical whatever [jobs], and
    a resumed sweep's curve is byte-identical to an uninterrupted one. *)

val knee : point list -> point option
(** The point with the highest committed throughput — the saturation knee
    of an open-loop sweep. *)

val point_to_json : point -> Bftsim_obs.Json.t
val point_of_json : Bftsim_obs.Json.t -> (point, string) result
val curve_to_json : curve -> Bftsim_obs.Json.t

val header : string
(** CSV column names for {!row}. *)

val row : point -> string

val pp_curve : Format.formatter -> curve -> unit
(** Human table plus the saturation line; deterministic. *)
