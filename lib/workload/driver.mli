(** Workload driver (DESIGN.md §3.16): open- or closed-loop clients feeding
    a bounded mempool, leader-side batching through the controller's
    workload hooks, and offered-rate sweeps into a throughput-latency
    curve.

    End-to-end request latency is measured from client arrival to the
    commit ack quorum: a request counts as committed when [f + 1] distinct
    replicas have decided the batch that contains it.  Batches whose leader
    continuation fired stale (the view moved on) are re-queued into the
    mempool rather than dropped, so churny runs measure true goodput.

    Determinism: the harness draws arrivals from a private RNG derived
    from the config seed (never from the controller's split chain), sweep
    points are independent runs aggregated in offered-rate order, and
    journaled points round-trip through {!Bftsim_obs.Json} — so the curve
    is byte-identical at any [--jobs] and across [--resume]. *)

type clients =
  | Open_loop  (** Arrivals from the {!Arrival} process; the default. *)
  | Closed_loop of { cap : int }
      (** A fixed client population, each keeping up to [cap] requests in
          flight with zero think time; the sweep variable is the population
          size (so [rate] is a client count, not req/s). *)

val clients_to_cli_string : clients -> string
(** Round-trips through {!clients_of_string}: ["open"] | ["closed:<cap>"]. *)

val clients_of_string : string -> (clients, string) result

type t
(** A workload description: client mode, arrival process shape, batching
    policy, mempool capacity, request-key distribution.  The sweep re-rates
    the arrival process (or re-sizes the closed-loop population) per
    point. *)

val make :
  ?arrival:Arrival.t ->
  ?policy:Batch.policy ->
  ?mempool_capacity:int ->
  ?clients:clients ->
  ?keys:Keys.t ->
  unit ->
  t
(** Defaults: open-loop Poisson arrivals (the rate is overridden per sweep
    point), {!Batch.default} batching, a 4096-request pool, unkeyed
    requests.  Closed loops raise the pool bound to the population's
    in-flight total — admission control on a self-limiting load would only
    deadlock clients. *)

val describe : t -> string

type point = {
  rate : float;  (** Offered rate (req/s), or the closed-loop population. *)
  outcome : string;  (** [Journal.outcome_class] of the underlying run. *)
  duration_ms : float;  (** Simulated time the run took. *)
  submitted : int;
  committed : int;  (** Requests that reached the ack quorum. *)
  dropped : int;  (** Rejected by the mempool bound. *)
  requeued : int;
      (** Re-queue events after stale leader continuations (a request
          re-queued twice counts twice). *)
  in_flight : int;  (** In uncommitted batches when the run ended. *)
  pending : int;  (** Still in the mempool when the run ended. *)
  key_conflicts : int;
      (** Adjacent committed pairs with equal keys; [0] for unkeyed runs. *)
  mempool_peak : int;
  batches : int;  (** Non-empty batch chunks cut (re-cuts count again). *)
  empty_batches : int;  (** Heights that proposed the no-op default. *)
  occupancy_mean : float;  (** Mean requests per cut (empty cuts count). *)
  throughput : float;  (** Committed req/s of simulated time. *)
  latency : Bftsim_core.Stats.t option;
      (** Arrival-to-commit latency (ms); [None] when nothing committed. *)
}

val run_point :
  t -> rate:float -> Bftsim_core.Config.t -> point * Bftsim_obs.Metrics.t option
(** One run at one offered rate.  The config's [decisions_target] bounds
    the heights driven; the returned registry (when telemetry is on) has
    the [wl.*] cells injected next to the controller's own. *)

type audit = {
  committed_ids : int list;  (** In commit order. *)
  requeued_ids : (int * int) list;  (** (id, times re-queued), sorted by id. *)
  pending_ids : int list;  (** Left in the pool at run end, service order. *)
  in_flight_ids : int list;  (** In uncommitted batches at run end, sorted. *)
  batch_log : (string * int list) list;
      (** Every bundle value ever cut with its request ids, oldest first —
          the join key against per-node decision logs. *)
}
(** Request-level accounting for the differential tests: every submitted id
    is exactly one of committed / dropped / pending / in-flight, and
    re-queues never lose or duplicate an id. *)

val run_point_audit :
  t -> rate:float -> Bftsim_core.Config.t -> point * audit * Bftsim_core.Controller.result
(** {!run_point} plus the id-level audit and the raw controller result
    (whose [decisions] are the per-node consensus logs to diff against). *)

type curve = {
  points : point list;  (** In offered-rate order (the input order). *)
  metrics : Bftsim_obs.Metrics.t option;
      (** Deterministic rate-order merge across points. *)
  resumed : int;  (** Points loaded from the journal instead of run. *)
}

val fingerprint : t -> Bftsim_core.Config.t -> rates:float list -> string
(** Campaign fingerprint for the journal (covers workload shape, rates and
    the base config). *)

val sweep :
  ?jobs:int ->
  ?journal:Bftsim_core.Journal.t ->
  ?resumed:Bftsim_core.Journal.event list ->
  t ->
  Bftsim_core.Config.t ->
  rates:float list ->
  curve
(** Runs one point per rate (fanned across [jobs] domains), journaling each
    completed point as a {!Bftsim_core.Journal.Note} and skipping points
    already present in [resumed].  Output is identical whatever [jobs], and
    a resumed sweep's curve is byte-identical to an uninterrupted one. *)

val knee : point list -> point option
(** The point with the highest committed throughput — the saturation knee
    of an open-loop sweep. *)

val point_to_json : point -> Bftsim_obs.Json.t
val point_of_json : Bftsim_obs.Json.t -> (point, string) result
val curve_to_json : curve -> Bftsim_obs.Json.t

val header : string
(** CSV column names for {!row}. *)

val row : point -> string

val pp_curve : Format.formatter -> curve -> unit
(** Human table plus the saturation line; deterministic. *)
