(** Leader-side batching policy and batch size model (DESIGN.md §3.16). *)

type policy = {
  max_batch : int;  (** Cut immediately once this many requests are pending. *)
  max_wait_ms : float;
      (** Otherwise cut this long after the leader first asked for a
          payload; [0.] cuts immediately with whatever is pending. *)
}

val make : max_batch:int -> max_wait_ms:float -> policy
(** @raise Invalid_argument on a non-positive size or negative wait. *)

val default : policy
(** 256 requests, 50 ms. *)

val header_bytes : int
val request_bytes : int

val size_bytes : count:int -> int
(** Wire bytes of a batch of [count] requests:
    [header_bytes + count * request_bytes].  An empty (no-op) batch still
    pays the header. *)

val describe : policy -> string

val to_cli_string : policy -> string
(** ["SIZE@WAIT_MS"]; [of_string (to_cli_string p) = Ok p]. *)

val of_string : string -> (policy, string) result
(** Parses ["SIZE"] (default wait) or ["SIZE@WAIT_MS"]. *)
