(** Bounded FIFO mempool of pending client requests (DESIGN.md §3.16).

    The proposer path drains it in arrival order when a batch is cut; the
    capacity bound models admission control — a full pool rejects (and
    counts) new requests instead of queueing without limit, which keeps
    overdriven open-loop runs finite past the saturation knee.  Requests
    from batches that went stale on a view change are {!requeue}d at the
    front of the pool, preserving FIFO order, instead of being dropped. *)

type request = {
  id : int;  (** Deterministic request id (submission order). *)
  arrived_ms : float;  (** Arrival timestamp — latency measurement start. *)
  key : int;  (** Contention key (see {!Keys}); [0] for unkeyed runs. *)
  client : int;  (** Issuing closed-loop client, [-1] for open-loop. *)
}

type t

val create : capacity:int -> t
(** @raise Invalid_argument unless [capacity > 0]. *)

val add : t -> request -> bool
(** Enqueue; [false] means the pool was full and the request was dropped
    (the drop is counted). *)

val requeue : t -> request list -> unit
(** Return a stale batch's requests (given in FIFO order) to the front of
    the pool, ahead of younger requests.  Deliberately bypasses the
    capacity bound — these requests were already admitted once — so the
    pool can transiently exceed [capacity] after a view change. *)

val take : t -> max:int -> request list
(** Dequeue up to [max] requests in FIFO order (may return fewer, or []).
    Re-queued requests are served first. *)

val to_list : t -> request list
(** Snapshot of pending requests in service order (does not dequeue). *)

val length : t -> int

val dropped : t -> int
(** Requests rejected by the bound so far. *)

val requeued : t -> int
(** Requests returned by {!requeue} so far (counting re-admissions, so a
    twice-requeued request counts twice). *)

val peak : t -> int
(** High-water mark of the pool depth. *)
