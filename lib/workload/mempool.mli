(** Bounded FIFO mempool of pending client requests (DESIGN.md §3.16).

    The proposer path drains it in arrival order when a batch is cut; the
    capacity bound models admission control — a full pool rejects (and
    counts) new requests instead of queueing without limit, which keeps
    overdriven open-loop runs finite past the saturation knee. *)

type request = { id : int; arrived_ms : float }
(** Deterministic request id (submission order) and arrival timestamp —
    the start of the end-to-end latency measurement. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument unless [capacity > 0]. *)

val add : t -> request -> bool
(** Enqueue; [false] means the pool was full and the request was dropped
    (the drop is counted). *)

val take : t -> max:int -> request list
(** Dequeue up to [max] requests in FIFO order (may return fewer, or []). *)

val length : t -> int

val dropped : t -> int
(** Requests rejected by the bound so far. *)

val peak : t -> int
(** High-water mark of the pool depth. *)
