(* Request key distributions (DESIGN.md §3.16).

   Each client request carries a contention key; on top of the commit
   order this models execution-layer conflicts (two requests with the same
   key cannot be applied concurrently).  The simulator only needs the key
   *stream* to be deterministic per seed — conflict accounting happens in
   the driver, which counts adjacent same-key commits.

   [Single] is the pre-keys behavior: every request gets key 0 *without
   drawing from the RNG*, so runs that never asked for keys consume the
   exact same random stream as before the feature existed. *)

open Bftsim_sim

type t =
  | Single
  | Uniform of { space : int }
  | Zipf of { s : float; space : int }

let default_space = 1024

let validate = function
  | Single -> ()
  | Uniform { space } ->
    if space <= 0 then invalid_arg "Keys: key space must be > 0"
  | Zipf { s; space } ->
    if (not (Float.is_finite s)) || s <= 0. then invalid_arg "Keys: zipf exponent must be finite and > 0";
    if space <= 0 then invalid_arg "Keys: key space must be > 0"

let uniform ~space =
  let t = Uniform { space } in
  validate t;
  t

let zipf ?(space = default_space) ~s () =
  let t = Zipf { s; space } in
  validate t;
  t

type sampler = Pass_through | Cdf of float array

(* The zipf CDF is precomputed once per run: cdf.(k) = P(key <= k), with
   P(key = k) proportional to 1/(k+1)^s.  Sampling is a binary search for
   the first index whose cdf covers a uniform draw — O(log space) per
   request, no per-request allocation. *)
let sampler = function
  | Single -> Pass_through
  | Uniform { space = 1 } | Zipf { space = 1; _ } -> Pass_through
  | Uniform { space } -> Cdf (Array.init space (fun k -> float_of_int (k + 1) /. float_of_int space))
  | Zipf { s; space } ->
    let weights = Array.init space (fun k -> 1. /. (float_of_int (k + 1) ** s)) in
    let total = Array.fold_left ( +. ) 0. weights in
    let cdf = Array.make space 0. in
    let acc = ref 0. in
    Array.iteri
      (fun k w ->
        acc := !acc +. w;
        cdf.(k) <- !acc /. total)
      weights;
    cdf.(space - 1) <- 1.;
    Cdf cdf

let sample sampler rng =
  match sampler with
  | Pass_through -> 0
  | Cdf cdf ->
    let u = Rng.float rng 1. in
    let lo = ref 0 and hi = ref (Array.length cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo

let describe = function
  | Single -> "single"
  | Uniform { space } -> Printf.sprintf "uniform(%d)" space
  | Zipf { s; space } -> Printf.sprintf "zipf(s=%g,%d)" s space

let pp ppf t = Format.pp_print_string ppf (describe t)

let to_cli_string = function
  | Single -> "single"
  | Uniform { space } -> Printf.sprintf "uniform:%d" space
  | Zipf { s; space } ->
    if space = default_space then Printf.sprintf "zipf:%g" s else Printf.sprintf "zipf:%g,%d" s space

let of_string s =
  let invalid () = Error (Printf.sprintf "invalid key distribution %S" s) in
  let guard t = match validate t with () -> Ok t | exception Invalid_argument _ -> invalid () in
  match s with
  | "single" -> Ok Single
  | _ -> (
    match String.index_opt s ':' with
    | None -> invalid ()
    | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "uniform" -> (
        match int_of_string_opt rest with
        | Some space -> guard (Uniform { space })
        | None -> invalid ())
      | "zipf" -> (
        match String.split_on_char ',' rest with
        | [ se ] -> (
          match float_of_string_opt se with
          | Some s -> guard (Zipf { s; space = default_space })
          | None -> invalid ())
        | [ se; sp ] -> (
          match (float_of_string_opt se, int_of_string_opt sp) with
          | Some s, Some space -> guard (Zipf { s; space })
          | _ -> invalid ())
        | _ -> invalid ())
      | _ -> invalid ()))
