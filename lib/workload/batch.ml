(* Leader-side batching policy and batch size model (DESIGN.md §3.16).

   Two cut rules, the standard pair: a batch is cut as soon as [max_batch]
   requests are pending, or when [max_wait_ms] has elapsed since the leader
   first asked for a payload with requests still short of a full batch.
   The size model turns a batch into wire bytes (header + per-request),
   which the bandwidth-aware network serializes into delay. *)

type policy = { max_batch : int; max_wait_ms : float }

let validate { max_batch; max_wait_ms } =
  if max_batch <= 0 then invalid_arg "Batch: max_batch must be > 0";
  if (not (Float.is_finite max_wait_ms)) || max_wait_ms < 0. then
    invalid_arg "Batch: max_wait_ms must be finite and >= 0"

let make ~max_batch ~max_wait_ms =
  let p = { max_batch; max_wait_ms } in
  validate p;
  p

let default = { max_batch = 256; max_wait_ms = 50. }

(* Wire-size model: consensus metadata plus a fixed per-request payload.
   Chosen so an empty batch still costs a header (a no-op height is not
   free) and a full default batch is ~33 KB — enough for bandwidth to
   matter at WAN rates. *)
let header_bytes = 64
let request_bytes = 128

let size_bytes ~count =
  if count < 0 then invalid_arg "Batch.size_bytes: count must be >= 0";
  header_bytes + (request_bytes * count)

let describe { max_batch; max_wait_ms } = Printf.sprintf "batch(%d@%gms)" max_batch max_wait_ms

let to_cli_string { max_batch; max_wait_ms } = Printf.sprintf "%d@%g" max_batch max_wait_ms

let of_string s =
  let invalid () = Error (Printf.sprintf "invalid batch policy %S (want SIZE[@WAIT_MS])" s) in
  let parse ~size ~wait =
    match (int_of_string_opt size, float_of_string_opt wait) with
    | Some max_batch, Some max_wait_ms when max_batch > 0 && max_wait_ms >= 0. ->
      Ok { max_batch; max_wait_ms }
    | _ -> invalid ()
  in
  match String.index_opt s '@' with
  | None -> parse ~size:s ~wait:(Printf.sprintf "%g" default.max_wait_ms)
  | Some i ->
    parse ~size:(String.sub s 0 i) ~wait:(String.sub s (i + 1) (String.length s - i - 1))
