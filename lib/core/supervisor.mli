(** Crash isolation, wall-clock deadlines, deterministic retry and
    quarantine for campaign tasks (DESIGN.md §3.13).

    [Parallel.map] re-raises the first worker exception and discards every
    run in flight, and the only runaway guard below this layer is the
    {e sim-time} watchdog — one pathological replication can sink a
    thousand-cell campaign.  A supervisor turns each task into a structured
    {!outcome} instead: exceptions are caught with their backtrace, a
    per-attempt wall-clock deadline is enforced {e cooperatively} (the task
    receives a [cancel] polling function and the controller checks it in
    its event loop, next to [max_events] and the watchdog — completed runs
    are never perturbed, so determinism holds), failed attempts are retried
    on a bounded, seed-derived jitter schedule, and keys that keep failing
    are quarantined so they cannot eat the whole retry budget.

    A supervisor is shared by every worker of a campaign: recording is
    mutex-protected, the supervised task itself runs outside the lock. *)

exception Cancelled
(** Raised by cooperative cancellation points (e.g. the controller's event
    loop) when the supervisor's [cancel] function reports the deadline
    passed.  Tasks may also keep polling and return normally — a completed
    result is kept even if it finished over the deadline. *)

type policy = {
  deadline_ms : float option;  (** Per-attempt wall-clock budget; [None] = unbounded. *)
  max_retries : int;  (** Additional attempts after the first failure. *)
  quarantine_after : int;
      (** Failures of one key before it is quarantined (remaining retries
          are skipped and later [supervise] calls short-circuit). *)
  retry_base_ms : float;
      (** Base of the backoff schedule ({!retry_delay_ms}); [0.] retries
          immediately — the right setting for deterministic tests. *)
  seed : int;  (** Seeds the jitter schedule; campaign seed by convention. *)
}

val default_policy : policy
(** No deadline, one retry, quarantine after 3 failures, no backoff. *)

val policy_of_config : Config.t -> policy
(** The per-run supervision knobs of a configuration ({!Config.supervision})
    plus its seed, as a policy. *)

val retry_delay_ms : policy -> key:string -> attempt:int -> float
(** Backoff before retry [attempt] (1-based) of [key]:
    [retry_base_ms * 2^(attempt-1) * (0.5 + u)] where [u ∈ \[0, 1)] is
    derived from SHA-256 of [(seed, key, attempt)] — a pure function, so
    every re-execution of a campaign sleeps the same schedule. *)

type failure_kind = Crash of { exn : string; backtrace : string } | Deadline

type 'a outcome =
  | Ok of 'a
  | Crashed of { exn : string; backtrace : string; retries : int }
      (** Every attempt raised; the texts are from the last attempt. *)
  | Deadline_exceeded of { wall_ms : float; retries : int }
      (** Every attempt overran its wall-clock budget. *)
  | Quarantined of { failures : int }
      (** The key was already quarantined when [supervise] was called. *)

type stats = {
  runs_ok : int;
  runs_crashed : int;  (** Attempts that raised (retries count). *)
  runs_timed_out : int;  (** Attempts that overran the deadline. *)
  runs_retried : int;  (** Retry attempts started. *)
}

type t

val create : ?policy:policy -> ?on_failure:(key:string -> attempt:int -> wall_ms:float -> failure_kind -> unit) -> unit -> t
(** [on_failure] observes every failed attempt (journaling hook); it is
    called under the supervisor lock, after the failure was logged through
    [Simlog.err] with its backtrace. *)

val supervise : t -> key:string -> (cancel:(unit -> bool) -> 'a) -> 'a outcome
(** Run one task under supervision.  [cancel] is cheap to poll (it reads
    the wall clock only every few dozen polls) and flips to [true] once the
    attempt's deadline has passed; cancellation points raise {!Cancelled}.
    Any exception out of the task is classified: deadline observed →
    {!Deadline_exceeded}, otherwise {!Crashed} (with
    [Printexc] backtrace).  Never raises. *)

val stats : t -> stats
(** Snapshot of the counters (thread-safe). *)

val quarantined : t -> (string * int) list
(** Quarantined keys with their failure counts, sorted by key. *)

val export_metrics : t -> Bftsim_obs.Metrics.t -> unit
(** Write the counters into a registry as [supervisor.runs_ok],
    [supervisor.runs_crashed], [supervisor.runs_timed_out] and
    [supervisor.runs_retried] (always present, so summaries with and
    without failures stay structurally identical). *)
