type violation = { at_ms : float; monitor : string; detail : string }

type t = {
  counted : int -> bool;
  aligned : int -> bool;
  crashed_now : node:int -> at_ms:float -> bool;
  valid : string list option;
  (* Agreement expectation per decision index: who decided first, what. *)
  by_index : (int, int * string) Hashtbl.t;
  mutable violations : violation list;  (** Reverse detection order. *)
}

let create ~counted ?aligned ~crashed_now ?valid_values () =
  {
    counted;
    aligned = Option.value aligned ~default:counted;
    crashed_now;
    valid = valid_values;
    by_index = Hashtbl.create 64;
    violations = [];
  }

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

(* Validity, protocol-agnostically: protocols encode decisions differently
   (PBFT decides ["<input>/slot<k>"], ADD and Algorand the raw input), so a
   decided value counts as derived from a proposal when some proposed value
   occurs in it verbatim. *)
let derived_from_proposal proposals value = List.exists (fun p -> contains ~needle:p value) proposals

let flag t ~at_ms ~monitor detail =
  t.violations <- { at_ms; monitor; detail } :: t.violations;
  Bftsim_sim.Simlog.info "invariant violated (%s): %s" monitor detail

let on_decide t ~node ~index ~value ~at_ms =
  if t.crashed_now ~node ~at_ms then
    flag t ~at_ms ~monitor:"crashed-decide"
      (Printf.sprintf "node %d decided %S at %g ms while crashed" node value at_ms);
  if t.counted node then begin
    (match t.valid with
    | Some proposals when not (derived_from_proposal proposals value) ->
      flag t ~at_ms ~monitor:"validity"
        (Printf.sprintf "node %d decided %S, which derives from no proposed value" node value)
    | Some _ | None -> ());
    if t.aligned node then
      match Hashtbl.find_opt t.by_index index with
      | None -> Hashtbl.replace t.by_index index (node, value)
      | Some (other, expected) ->
        if not (String.equal expected value) then
          flag t ~at_ms ~monitor:"agreement"
            (Printf.sprintf "decision %d: node %d decided %S but node %d decided %S" index node
               value other expected)
  end

let violations t = List.rev t.violations

let ok t = t.violations = []

let first_violation t ~monitor =
  let rec last = function
    | [] -> None
    | v :: rest -> ( match last rest with Some _ as hit -> hit | None -> if v.monitor = monitor then Some v else None)
  in
  (* [t.violations] is reversed, so the earliest match is the deepest one. *)
  last t.violations

let describe_violation v = Printf.sprintf "[%g ms] %s: %s" v.at_ms v.monitor v.detail
