(* Fixed-size domain pool for fanning independent simulation runs across
   cores.

   A [map] call spins up workers (the calling domain is one of them) over a
   shared chunked task queue: workers claim the next [chunk] indices with an
   atomic fetch-and-add, so a fast worker steals the work a slow one never
   reaches.  Results land in a slot array keyed by input index and are
   reassembled in input order — callers observe the exact sequence the
   sequential path would have produced, whatever the domain interleaving
   was.

   Pool sizing (DESIGN.md §3.15): OCaml 5 minor collections are
   stop-the-world across every running domain, so domains beyond the
   hardware's parallelism do not merely idle — each minor GC must wait for
   descheduled domains to reach a safepoint, and an oversubscribed pool
   runs {e slower} than one thread (the 0.49x of BENCH_pr2.json).  [map]
   therefore never spawns more domains than
   [Domain.recommended_domain_count () - 1] whatever [jobs] asks for; the
   extra jobs fold into work-stealing over the same chunk queue, so results
   are identical.  [~oversubscribe:true] disables the cap — tests use it to
   exercise true cross-domain execution on small machines. *)

let hardware_jobs () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let default_jobs () =
  match Sys.getenv_opt "BFTSIM_JOBS" with
  | Some v -> (
    match int_of_string_opt v with
    | Some j when j >= 1 -> j
    | Some _ | None -> hardware_jobs ())
  | None -> hardware_jobs ()

(* GC shape for simulation workloads: the event loop's survivors are few
   (messages die at delivery), so a big minor heap turns almost all of the
   collection work into cheap pointer resets — and under a domain pool it
   divides the number of stop-the-world synchronizations by the same
   factor.  2^22 words = 32 MiB per domain. *)
let simulation_minor_heap_words = 1 lsl 22

let tune_gc () =
  let g = Gc.get () in
  if g.Gc.minor_heap_size < simulation_minor_heap_words then
    Gc.set { g with Gc.minor_heap_size = simulation_minor_heap_words }

(* Workers stay pinned in this loop until the queue drains.  [chunk]
   consecutive indices per claim amortizes the atomic and keeps one
   worker's result slots on contiguous cache lines (adjacent slots written
   by different domains would otherwise ping-pong the line). *)
let worker_loop ~results ~input ~next ~failure ~n ~chunk f =
  let continue = ref true in
  while !continue do
    let start = Atomic.fetch_and_add next chunk in
    if start >= n || Atomic.get failure <> None then continue := false
    else begin
      let stop = Stdlib.min n (start + chunk) in
      try
        for i = start to stop - 1 do
          results.(i) <- Some (f input.(i))
        done
      with exn ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failure None (Some (exn, bt)));
        continue := false
    end
  done

let map ?jobs ?chunk ?(oversubscribe = false) f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Parallel.map: jobs < 1";
  (match chunk with Some c when c < 1 -> invalid_arg "Parallel.map: chunk < 1" | _ -> ());
  let input = Array.of_list xs in
  let n = Array.length input in
  if n = 0 then []
  else if jobs = 1 || n = 1 then List.map f xs
  else begin
    (* Default chunk: ~8 claims per worker balances stealing granularity
       against atomic traffic; small batches stay at 1 so reps still
       spread across the pool. *)
    let chunk =
      match chunk with Some c -> c | None -> Stdlib.max 1 (n / (jobs * 8))
    in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* First failure wins; remaining workers drain and stop so the
       exception surfaces with its original backtrace. *)
    let failure = Atomic.make None in
    let worker () = worker_loop ~results ~input ~next ~failure ~n ~chunk f in
    let chunks = (n + chunk - 1) / chunk in
    (* The caller participates, so [recommended - 1] spawned domains fill
       the machine exactly. *)
    let hw_cap =
      if oversubscribe then max_int else Domain.recommended_domain_count () - 1
    in
    let spawned = Stdlib.max 0 (Stdlib.min (Stdlib.min (jobs - 1) (chunks - 1)) hw_cap) in
    let domains =
      Array.init spawned (fun _ ->
          Domain.spawn (fun () ->
              (* Fresh domains start with the default (small) minor heap;
                 retune so GC synchronization stays rare (see header). *)
              tune_gc ();
              worker ()))
    in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

(* Crash isolation at the pool level: capture per element instead of
   letting the first failure sink every run in flight.  The workers only
   ever see a total function, so [map]'s first-failure machinery stays
   dormant. *)
let try_map ?jobs ?chunk ?oversubscribe f xs =
  map ?jobs ?chunk ?oversubscribe
    (fun x ->
      match f x with
      | v -> Ok v
      | exception exn -> Error (exn, Printexc.get_raw_backtrace ()))
    xs
