(* Fixed-size domain pool for fanning independent simulation runs across
   cores.

   A [map] call spins up at most [jobs] workers (the calling domain is one
   of them) over a shared chunked task queue: workers claim the next [chunk]
   indices with an atomic fetch-and-add, so a fast worker steals the work a
   slow one never reaches.  Results land in a slot array keyed by input
   index and are reassembled in input order — callers observe the exact
   sequence the sequential path would have produced, whatever the domain
   interleaving was. *)

let hardware_jobs () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let default_jobs () =
  match Sys.getenv_opt "BFTSIM_JOBS" with
  | Some v -> (
    match int_of_string_opt v with
    | Some j when j >= 1 -> j
    | Some _ | None -> hardware_jobs ())
  | None -> hardware_jobs ()

let map ?jobs ?(chunk = 1) f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Parallel.map: jobs < 1";
  if chunk < 1 then invalid_arg "Parallel.map: chunk < 1";
  let input = Array.of_list xs in
  let n = Array.length input in
  if n = 0 then []
  else if jobs = 1 || n = 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* First failure wins; remaining workers drain and stop so the
       exception surfaces with its original backtrace. *)
    let failure = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n || Atomic.get failure <> None then continue := false
        else
          let stop = Stdlib.min n (start + chunk) in
          try
            for i = start to stop - 1 do
              results.(i) <- Some (f input.(i))
            done
          with exn ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (exn, bt)));
            continue := false
      done
    in
    let chunks = (n + chunk - 1) / chunk in
    let spawned = Stdlib.min (jobs - 1) (chunks - 1) in
    let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

(* Crash isolation at the pool level: capture per element instead of
   letting the first failure sink every run in flight.  The workers only
   ever see a total function, so [map]'s first-failure machinery stays
   dormant. *)
let try_map ?jobs ?chunk f xs =
  map ?jobs ?chunk
    (fun x ->
      match f x with
      | v -> Ok v
      | exception exn -> Error (exn, Printexc.get_raw_backtrace ()))
    xs
