let escape field =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field
  in
  if not needs_quoting then field
  else begin
    let buf = Buffer.create (String.length field + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let row fields = String.concat "," (List.map escape fields)

let result_header =
  row
    [
      "protocol"; "n"; "seed"; "lambda_ms"; "delay"; "attack"; "target"; "outcome"; "time_ms";
      "per_decision_latency_ms"; "per_decision_messages"; "messages"; "bytes"; "dropped"; "events";
      "max_final_view"; "safety_ok"; "liveness_failure"; "safety_violations";
    ]

let outcome_to_string = Journal.outcome_class

(* A journal digest carries every cell of the per-run row, so resumed
   campaigns (which have digests but no live [Controller.result]) export
   the identical CSV an uninterrupted campaign writes. *)
let digest_row (config : Config.t) (d : Journal.digest) =
  row
    [
      config.Config.protocol;
      string_of_int config.Config.n;
      string_of_int d.Journal.seed;
      Printf.sprintf "%g" config.Config.lambda_ms;
      Bftsim_net.Delay_model.describe config.Config.delay;
      Config.describe_attack config.Config.attack;
      string_of_int config.Config.decisions_target;
      d.Journal.outcome;
      Printf.sprintf "%.3f" d.Journal.time_ms;
      Printf.sprintf "%.3f" d.Journal.latency_ms;
      Printf.sprintf "%.2f" d.Journal.messages;
      string_of_int d.Journal.messages_sent;
      string_of_int d.Journal.bytes_sent;
      string_of_int d.Journal.messages_dropped;
      string_of_int d.Journal.events;
      string_of_int d.Journal.max_view;
      string_of_bool d.Journal.safety_ok;
      string_of_bool (d.Journal.outcome <> "reached-target");
      string_of_int d.Journal.violations;
    ]

let result_row (r : Controller.result) =
  digest_row r.Controller.config (Journal.digest_of_result ~rep:0 r)

let summary_header =
  row
    [
      "protocol"; "n"; "lambda_ms"; "delay"; "attack"; "reps"; "latency_mean_ms";
      "latency_stddev_ms"; "latency_min_ms"; "latency_max_ms"; "latency_p50_ms"; "latency_p95_ms";
      "latency_p99_ms"; "messages_mean"; "messages_stddev"; "messages_p50"; "messages_p95";
      "messages_p99"; "liveness_failures"; "safety_violations";
    ]

let summary_row (s : Runner.summary) =
  let c = s.config in
  row
    [
      c.Config.protocol;
      string_of_int c.Config.n;
      Printf.sprintf "%g" c.Config.lambda_ms;
      Bftsim_net.Delay_model.describe c.Config.delay;
      Config.describe_attack c.Config.attack;
      string_of_int s.reps;
      Printf.sprintf "%.3f" s.latency_ms.Stats.mean;
      Printf.sprintf "%.3f" s.latency_ms.Stats.stddev;
      Printf.sprintf "%.3f" s.latency_ms.Stats.min;
      Printf.sprintf "%.3f" s.latency_ms.Stats.max;
      Printf.sprintf "%.3f" s.latency_ms.Stats.median;
      Printf.sprintf "%.3f" s.latency_ms.Stats.p95;
      Printf.sprintf "%.3f" s.latency_ms.Stats.p99;
      Printf.sprintf "%.2f" s.messages.Stats.mean;
      Printf.sprintf "%.2f" s.messages.Stats.stddev;
      Printf.sprintf "%.2f" s.messages.Stats.median;
      Printf.sprintf "%.2f" s.messages.Stats.p95;
      Printf.sprintf "%.2f" s.messages.Stats.p99;
      string_of_int s.liveness_failures;
      string_of_int s.safety_violations;
    ]

let write_file ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc header;
      output_char oc '\n';
      List.iter
        (fun r ->
          output_string oc r;
          output_char oc '\n')
        rows)
