let escape field =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field
  in
  if not needs_quoting then field
  else begin
    let buf = Buffer.create (String.length field + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let row fields = String.concat "," (List.map escape fields)

let result_header =
  row
    [
      "protocol"; "n"; "seed"; "lambda_ms"; "delay"; "attack"; "target"; "outcome"; "time_ms";
      "per_decision_latency_ms"; "per_decision_messages"; "messages"; "bytes"; "dropped"; "events";
      "max_final_view"; "safety_ok"; "liveness_failure"; "safety_violations";
    ]

let outcome_to_string = function
  | Controller.Reached_target -> "reached-target"
  | Controller.Timed_out -> "timed-out"
  | Controller.Event_cap -> "event-cap"
  | Controller.Queue_drained -> "queue-drained"
  | Controller.Stalled _ -> "stalled"

let result_row (r : Controller.result) =
  let c = r.config in
  let max_view = Array.fold_left Stdlib.max (-1) r.final_views in
  row
    [
      c.Config.protocol;
      string_of_int c.Config.n;
      string_of_int c.Config.seed;
      Printf.sprintf "%g" c.Config.lambda_ms;
      Bftsim_net.Delay_model.describe c.Config.delay;
      Config.describe_attack c.Config.attack;
      string_of_int c.Config.decisions_target;
      outcome_to_string r.outcome;
      Printf.sprintf "%.3f" r.time_ms;
      Printf.sprintf "%.3f" r.per_decision_latency_ms;
      Printf.sprintf "%.2f" r.per_decision_messages;
      string_of_int r.messages_sent;
      string_of_int r.bytes_sent;
      string_of_int r.messages_dropped;
      string_of_int r.events_processed;
      string_of_int max_view;
      string_of_bool r.safety_ok;
      string_of_bool (r.outcome <> Controller.Reached_target);
      string_of_int (List.length r.violations);
    ]

let summary_header =
  row
    [
      "protocol"; "n"; "lambda_ms"; "delay"; "attack"; "reps"; "latency_mean_ms";
      "latency_stddev_ms"; "latency_min_ms"; "latency_max_ms"; "latency_p50_ms"; "latency_p95_ms";
      "latency_p99_ms"; "messages_mean"; "messages_stddev"; "messages_p50"; "messages_p95";
      "messages_p99"; "liveness_failures"; "safety_violations";
    ]

let summary_row (s : Runner.summary) =
  let c = s.config in
  row
    [
      c.Config.protocol;
      string_of_int c.Config.n;
      Printf.sprintf "%g" c.Config.lambda_ms;
      Bftsim_net.Delay_model.describe c.Config.delay;
      Config.describe_attack c.Config.attack;
      string_of_int s.reps;
      Printf.sprintf "%.3f" s.latency_ms.Stats.mean;
      Printf.sprintf "%.3f" s.latency_ms.Stats.stddev;
      Printf.sprintf "%.3f" s.latency_ms.Stats.min;
      Printf.sprintf "%.3f" s.latency_ms.Stats.max;
      Printf.sprintf "%.3f" s.latency_ms.Stats.median;
      Printf.sprintf "%.3f" s.latency_ms.Stats.p95;
      Printf.sprintf "%.3f" s.latency_ms.Stats.p99;
      Printf.sprintf "%.2f" s.messages.Stats.mean;
      Printf.sprintf "%.2f" s.messages.Stats.stddev;
      Printf.sprintf "%.2f" s.messages.Stats.median;
      Printf.sprintf "%.2f" s.messages.Stats.p95;
      Printf.sprintf "%.2f" s.messages.Stats.p99;
      string_of_int s.liveness_failures;
      string_of_int s.safety_violations;
    ]

let write_file ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc header;
      output_char oc '\n';
      List.iter
        (fun r ->
          output_string oc r;
          output_char oc '\n')
        rows)
