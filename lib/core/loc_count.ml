type entry = { label : string; network_model : string; files : string list; loc : int }

let is_counted line =
  let line = String.trim line in
  String.length line > 0
  && not (String.length line >= 2 && String.sub line 0 2 = "(*" && String.length line >= 2
          && String.sub line (String.length line - 2) 2 = "*)")

let count_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let count = ref 0 in
    (try
       while true do
         if is_counted (input_line ic) then incr count
       done
     with End_of_file -> ());
    close_in ic;
    Some !count

let count_files ~root files =
  List.fold_left
    (fun acc file ->
      match count_file (Filename.concat root file) with Some c -> acc + c | None -> acc)
    0 files

let proto_dir = "lib/protocols/"

(* Shared substrate files are attributed to every protocol that uses them,
   weighted nowhere — like the paper, each row counts the files specific to
   that protocol plus its share of a dedicated common core. *)
let table1_spec =
  [
    ("ADD+v1", "synchronous", [ "add_v1.ml"; "add_common.ml" ]);
    ("ADD+v2", "synchronous", [ "add_v2.ml"; "add_common.ml" ]);
    ("ADD+v3", "synchronous", [ "add_v3.ml"; "add_common.ml" ]);
    ("Algorand Agreement", "synchronous", [ "algorand.ml" ]);
    ("Async BA", "asynchronous", [ "async_ba.ml" ]);
    ("PBFT", "partially-synchronous", [ "pbft.ml" ]);
    ("HotStuff+NS", "partially-synchronous", [ "hotstuff.ml"; "chained_core.ml"; "chain.ml" ]);
    ("LibraBFT", "partially-synchronous", [ "librabft.ml"; "chained_core.ml"; "chain.ml" ]);
  ]

let table2_spec =
  [
    ("Network Partition Attack", "partition", [ "lib/attack/partition_attack.ml" ]);
    ("ADD+ BA Static Attack", "static", [ "lib/protocols/addplus_attacks.ml" ]);
    ("ADD+ BA Adaptive Attack", "rushing + adaptive", [ "lib/protocols/addplus_attacks.ml" ]);
    ("Chaos Fault Schedules", "timed fault plan", [ "lib/attack/fault_schedule.ml" ]);
  ]

let table1 ~root =
  List.map
    (fun (label, network_model, files) ->
      let files = List.map (fun f -> proto_dir ^ f) files in
      { label; network_model; files; loc = count_files ~root files })
    table1_spec

let table2 ~root =
  List.map
    (fun (label, network_model, files) ->
      { label; network_model; files; loc = count_files ~root files })
    table2_spec

let find_root () =
  let candidate_of dir =
    let rec walk dir depth =
      if depth > 6 then None
      else if Sys.file_exists (Filename.concat dir "lib/protocols") then Some dir
      else
        let parent = Filename.dirname dir in
        if String.equal parent dir then None else walk parent (depth + 1)
    in
    walk dir 0
  in
  match candidate_of (Sys.getcwd ()) with
  | Some root -> Some root
  | None -> candidate_of (Filename.dirname Sys.executable_name)
