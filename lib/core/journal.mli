(** Append-only JSONL campaign journal (DESIGN.md §3.13).

    A long sweep or fuzzing campaign writes one line per completed unit of
    work (a replication's {!digest}, or a passed conformance check) plus
    one per failed attempt; after a crash or SIGKILL,
    [bftsim sweep --resume] / [bftsim conform --resume] load the journal,
    skip finished work, and re-run only the rest.

    The resume contract is {e byte-identity}: a digest carries every field
    the merged summary, the per-run CSV row, and the metrics merge consume
    — encoded through {!Bftsim_obs.Json}, whose float representation
    round-trips exactly — and the campaign drivers rebuild their summaries
    from digests on the live path too, so an interrupted-and-resumed
    campaign and an uninterrupted one produce identical output at any
    [--jobs].

    Two safety properties for unclean deaths: every append is flushed
    before returning, and {!load} tolerates a torn final line (a record cut
    mid-write by SIGKILL is dropped, not fatal). *)

type digest = {
  rep : int;  (** Replication index within its campaign cell. *)
  seed : int;
  outcome : string;  (** Outcome class, as [Csv_export.outcome_to_string]. *)
  last_progress_ms : float option;  (** For [stalled] outcomes. *)
  time_ms : float;
  latency_ms : float;
  messages : float;  (** Per-decision message count. *)
  messages_sent : int;
  bytes_sent : int;
  messages_dropped : int;
  events : int;
  max_view : int;
  safety_ok : bool;
  violations : int;
  metrics : Bftsim_obs.Json.t option;
      (** Tagged registry encoding ([Metrics.to_json]). *)
}
(** Everything downstream consumers need from one completed replication —
    deliberately {e not} the full [Controller.result], which carries
    unbounded per-run data (decisions, traces) a journal must not hold. *)

val outcome_class : Controller.outcome -> string
(** CSV-stable class name: ["reached-target"], ["timed-out"],
    ["event-cap"], ["queue-drained"] or ["stalled"]. *)

val digest_of_result : rep:int -> Controller.result -> digest

type event =
  | Run of { cell : string; digest : digest }
      (** One completed replication of campaign cell [cell]. *)
  | Check of { cell : string; index : int }
      (** One passed conformance scenario check. *)
  | Note of { cell : string; body : Bftsim_obs.Json.t }
      (** A completed unit of campaign-specific work whose result is an
          arbitrary JSON document — the load driver journals each finished
          throughput-latency point this way.  The encoding goes through
          {!Bftsim_obs.Json}, so resumed and live points are byte-equal. *)
  | Failure of {
      cell : string;
      rep : int;
      attempt : int;
      wall_ms : float;
      kind : string;  (** ["crash"] or ["deadline"]. *)
      detail : string;  (** Exception text for crashes. *)
      backtrace : string;
    }
      (** A failed supervised attempt — diagnostic record; resume ignores
          it and re-runs the unit. *)

val cell_of_config : Config.t -> string
(** Stable fingerprint of one campaign cell: SHA-256 over the config's
    key-value form (which includes the base seed), hex. *)

val fingerprint : mode:string -> reps:int -> Config.t list -> string
(** Campaign fingerprint — mode, replication count and every cell — used
    to reject resuming a journal against a different campaign. *)

(** {1 Writing} *)

type t
(** An open journal: append handle shared across domains (mutex-protected,
    flushed per event). *)

val create : fingerprint:string -> string -> t
(** Truncate/create the file and write the header line. *)

val append : t -> event -> unit

val close : t -> unit

(** {1 Reading} *)

val load : string -> (string * event list, string) result
(** [(fingerprint, events)] in file order.  A torn final line is dropped;
    a malformed line elsewhere, a missing file, or a missing/foreign
    header is an [Error]. *)

val resume : fingerprint:string -> string -> (t * event list, string) result
(** {!load}, verify the fingerprint matches this campaign, and reopen the
    file for appending (existing events are kept). *)

val runs : event list -> cell:string -> (int * digest) list
(** The completed replications of one cell, as [(rep, digest)], keeping
    the {e first} record per rep (an interrupted append cannot duplicate a
    completed rep, but first-wins makes the choice explicit). *)

val checks : event list -> cell:string -> int list
(** Indices of the passed checks of one cell, deduplicated, sorted. *)

val notes : event list -> cell:string -> Bftsim_obs.Json.t list
(** Note bodies recorded for one cell, in file order. *)
