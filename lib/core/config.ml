open Bftsim_net
module Attack = Bftsim_attack
module Protocols = Bftsim_protocols
module Sha256 = Bftsim_crypto.Sha256

type attack_spec =
  | No_attack
  | Partition of { first_size : int; start_ms : float; heal_ms : float; drop : bool }
  | Silence of { nodes : int list; at_ms : float }
  | Add_static of { f : int }
  | Add_rushing_adaptive of { budget : int option }
  | Extra_delay of { extra_ms : float }

type transport = Direct | Gossip of { fanout : int }

type inputs = Distinct | Same of string | Random_binary

type telemetry = { metrics : bool; tracing : bool; trace_capacity : int }

let default_telemetry = { metrics = false; tracing = false; trace_capacity = 65536 }

type supervision = {
  deadline_ms : float option;
  max_retries : int;
  quarantine_after : int;
  retry_base_ms : float;
}

(* No wall-clock deadline, one retry, quarantine after 3 failures, no
   backoff sleep: supervision that only kicks in when something breaks. *)
let default_supervision =
  { deadline_ms = None; max_retries = 1; quarantine_after = 3; retry_base_ms = 0. }

type t = {
  protocol : string;
  n : int;
  crashed : int list;
  lambda_ms : float;
  delay : Delay_model.t;
  seed : int;
  attack : attack_spec;
  decisions_target : int;
  max_time_ms : float;
  max_events : int;
  inputs : inputs;
  transport : transport;
  costs : Cost_model.t;
  record_trace : bool;
  view_sample_ms : float option;
  chaos : Attack.Fault_schedule.t;
  twins : Attack.Twins_schedule.t option;
  watchdog : float option;
  check_validity : bool;
  naive_reset : Protocols.Context.naive_reset_policy;
  telemetry : telemetry;
  supervision : supervision;
  zones : string option;
      (** Geographic zone spec ([geo3] | [geo5] | [uniform:<k>@<rtt>]):
          replicas are placed round-robin across named zones and every
          message pays the one-way inter-zone latency on top of the
          sampled delay (which becomes the jitter). *)
  bandwidth_mbps : float option;
      (** Per-sender egress bandwidth; messages serialize FIFO through it
          so size becomes delay and congestion.  [None] = infinite. *)
  pipeline : int;
      (** Consensus heights a leader may keep in flight (slot-based
          protocols); 1 = the classic sequential behavior. *)
  loss : Loss_model.t;
      (** Stochastic per-link network faults (drop / dup / reorder /
          Gilbert–Elliott burst loss).  {!Loss_model.none} keeps the
          legacy reliable-delivery path bit for bit. *)
  reliable : bool;
      (** Run protocol traffic over the simulated reliable channel:
          sequence-numbered frames, acks, retransmission with exponential
          backoff, dedup on receive.  [false] = the exact legacy path. *)
  retrans_base_ms : float;
      (** Base retransmission timeout.  [0.] (the default) derives it as
          [2 * lambda_ms] at run time. *)
  retrans_backoff : float;  (** Exponential backoff factor, >= 1. *)
  retrans_max : int;  (** Retransmission attempts before giving up. *)
  wal_ms : float;
      (** Cost-modeled latency of one simulated WAL write
          ([Context.persist]); charged to the writing node's CPU.  [0.]
          keeps persistence free (and the legacy cost path exact). *)
  stall_ms : float option;
      (** Absolute liveness-watchdog stall threshold.  When set it
          replaces the [watchdog * lambda_ms] product, so high-loss runs
          can legitimately run slower without tripping exit 3. *)
}

(* Default for the HotStuff+NS pacemaker-reset ablation knob; the
   environment variable keeps the historical spelling.  Read per [make] so
   tests can set the variable mid-process. *)
(* Total replica count actually instantiated: each twinned identity runs a
   second physical node sharing its credentials (Twins_schedule's physical-id
   convention: twin of [ids.(k)] is physical [n + k]). *)
let physical_n t =
  match t.twins with None -> t.n | Some tw -> Attack.Twins_schedule.physical_n ~n:t.n tw

let naive_reset_default () =
  match Sys.getenv_opt "BFTSIM_NAIVE_RESET" with
  | Some s -> (
    match Protocols.Context.naive_reset_policy_of_string s with
    | Some p -> p
    | None -> Protocols.Context.Reset_on_commit)
  | None -> Protocols.Context.Reset_on_commit

(* Full consistency check, run by [make] and again at [Controller.run] entry
   so hand-built records (e.g. [{ (make ...) with n = ... }]) are caught
   before they silently misbehave. *)
let validate t =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let p =
    match Protocols.Registry.find t.protocol with
    | Some p -> p
    | None ->
      fail "Config: unknown protocol %S (known: %s)" t.protocol
        (String.concat ", " (Protocols.Registry.names ()))
  in
  if t.n <= 0 then fail "Config: n = %d, need at least one node" t.n;
  if t.decisions_target <= 0 then
    fail "Config: decisions_target = %d, nothing to wait for" t.decisions_target;
  if Float.is_nan t.lambda_ms || t.lambda_ms <= 0. then
    fail "Config: lambda = %g ms, the delay bound must be positive" t.lambda_ms;
  if Float.is_nan t.max_time_ms || t.max_time_ms <= 0. then
    fail "Config: max_time_ms = %g, the liveness cap must be positive" t.max_time_ms;
  if t.max_events <= 0 then fail "Config: max_events = %d, the event cap must be positive" t.max_events;
  (match t.transport with
  | Gossip { fanout } when fanout <= 0 -> fail "Config: gossip fanout = %d, must be positive" fanout
  | Gossip _ | Direct -> ());
  let seen = Hashtbl.create 8 in
  List.iter
    (fun node ->
      if node < 0 || node >= t.n then
        fail "Config: crashed node %d out of range 0..%d" node (t.n - 1);
      if Hashtbl.mem seen node then fail "Config: node %d listed as crashed twice" node;
      Hashtbl.replace seen node ())
    t.crashed;
  (* Fault-tolerance bound: config-crashed nodes are faults the protocol is
     expected to mask, so they must respect the model's resilience —
     (n-1)/2 crash faults under synchrony, (n-1)/3 otherwise.  Chaos-
     schedule crashes are deliberately exempt: exceeding the bound is
     exactly what a chaos experiment probes, and the watchdog reports the
     resulting stall instead. *)
  let tolerable =
    match Protocols.Protocol_intf.model p with
    | Protocols.Protocol_intf.Synchronous -> (t.n - 1) / 2
    | Protocols.Protocol_intf.Partially_synchronous | Protocols.Protocol_intf.Asynchronous ->
      (t.n - 1) / 3
  in
  if List.length t.crashed > tolerable then
    fail "Config: %d crashed nodes with n = %d exceeds the %s tolerance of %d (use a chaos schedule to over-crash deliberately)"
      (List.length t.crashed) t.n
      (Protocols.Protocol_intf.network_model_to_string (Protocols.Protocol_intf.model p))
      tolerable;
  (match t.attack with
  | No_attack -> ()
  | Partition { first_size; start_ms; heal_ms; drop = _ } ->
    if first_size < 1 || first_size >= t.n then
      fail "Config: partition first_size = %d splits nothing with n = %d (need 1..%d)" first_size
        t.n (t.n - 1);
    if Float.is_nan start_ms || start_ms < 0. then
      fail "Config: partition starts at %g ms; the start must be non-negative" start_ms;
    if Float.is_nan heal_ms || heal_ms <= start_ms then
      fail
        "Config: partition heals at %g ms, at or before its start at %g ms — the window is empty; use heal_ms > start_ms"
        heal_ms start_ms
  | Silence { nodes; at_ms } ->
    if Float.is_nan at_ms || at_ms < 0. then
      fail "Config: silence at %g ms; the onset must be non-negative" at_ms;
    if nodes = [] then fail "Config: silence attack with no nodes silences nothing";
    let seen = Hashtbl.create 8 in
    List.iter
      (fun node ->
        if node < 0 || node >= t.n then
          fail "Config: silenced node %d out of range 0..%d" node (t.n - 1);
        if Hashtbl.mem seen node then fail "Config: node %d silenced twice" node;
        Hashtbl.replace seen node ())
      nodes
  | Add_static { f } ->
    if f < 1 then fail "Config: add-static with f = %d adds no Byzantine nodes" f
  | Add_rushing_adaptive { budget = Some b } when b < 0 ->
    fail "Config: add-adaptive budget = %d, must be non-negative" b
  | Add_rushing_adaptive _ -> ()
  | Extra_delay { extra_ms } ->
    if Float.is_nan extra_ms || extra_ms < 0. then
      fail "Config: extra-delay of %g ms, must be non-negative" extra_ms);
  (match t.watchdog with
  | Some k when Float.is_nan k || k <= 0. ->
    fail "Config: watchdog multiplier %g must be positive" k
  | Some _ | None -> ());
  (match t.twins with
  | None -> ()
  | Some tw ->
    Attack.Twins_schedule.validate ~n:t.n tw;
    (* Twins emulate Byzantine faults, so the twinned identities count
       against the same resilience budget as config-crashed nodes. *)
    let twinned = Attack.Twins_schedule.count tw in
    if List.length t.crashed + twinned > tolerable then
      fail "Config: %d twinned + %d crashed nodes with n = %d exceeds the tolerance of %d"
        twinned (List.length t.crashed) t.n tolerable;
    List.iter
      (fun id ->
        if List.mem id t.crashed then
          fail "Config: node %d is both crashed and twinned — a crashed twin tests nothing" id)
      tw.Attack.Twins_schedule.ids;
    (match t.attack with
    | No_attack | Extra_delay _ -> ()
    | a ->
      fail
        "Config: twins cannot combine with the %s attack (attacker node ids do not extend to twin replicas); use the twins partition schedule instead"
        (match a with
        | Partition _ -> "partition"
        | Silence _ -> "silence"
        | Add_static _ -> "add-static"
        | Add_rushing_adaptive _ -> "add-adaptive"
        | No_attack | Extra_delay _ -> assert false));
    match t.transport with
    | Direct -> ()
    | Gossip _ -> fail "Config: twins requires the direct transport (gossip topology is per-physical-node)");
  if t.telemetry.trace_capacity <= 0 then
    fail "Config: trace_capacity = %d, the ring buffer needs room" t.telemetry.trace_capacity;
  (match t.supervision.deadline_ms with
  | Some d when Float.is_nan d || d <= 0. ->
    fail "Config: deadline_ms = %g, the wall-clock deadline must be positive" d
  | Some _ | None -> ());
  if t.supervision.max_retries < 0 then
    fail "Config: retries = %d, must be non-negative" t.supervision.max_retries;
  if t.supervision.quarantine_after < 1 then
    fail "Config: quarantine = %d, at least one failure must precede quarantine"
      t.supervision.quarantine_after;
  if Float.is_nan t.supervision.retry_base_ms || t.supervision.retry_base_ms < 0. then
    fail "Config: retry_base_ms = %g, must be non-negative" t.supervision.retry_base_ms;
  (match t.zones with
  | None -> ()
  | Some spec -> (
    match Topology.zones_of_spec spec with
    | Ok _ -> ()
    | Error e -> fail "Config: %s" e));
  (match t.bandwidth_mbps with
  | Some b when Float.is_nan b || b <= 0. ->
    fail "Config: bandwidth = %g Mbps, must be positive" b
  | Some _ | None -> ());
  if t.pipeline < 1 then fail "Config: pipeline = %d, need at least one height in flight" t.pipeline;
  let check_prob key v =
    if Float.is_nan v || v < 0. || v > 1. then
      fail "Config: %s = %g is not a probability; use a value in [0, 1]" key v
  in
  check_prob "loss" t.loss.Loss_model.drop;
  check_prob "dup" t.loss.Loss_model.dup;
  if Float.is_nan t.loss.Loss_model.reorder_ms || t.loss.Loss_model.reorder_ms < 0. then
    fail "Config: reorder = %g ms, the reordering window must be non-negative"
      t.loss.Loss_model.reorder_ms;
  (match t.loss.Loss_model.burst with
  | None -> ()
  | Some b ->
    check_prob "burst_loss p_gb (good->bad)" b.Loss_model.p_gb;
    check_prob "burst_loss p_bg (bad->good)" b.Loss_model.p_bg;
    check_prob "burst_loss p_bad (drop while bad)" b.Loss_model.p_bad);
  if Float.is_nan t.retrans_base_ms || t.retrans_base_ms < 0. then
    fail "Config: retrans_base_ms = %g, must be non-negative (0 derives 2*lambda)"
      t.retrans_base_ms;
  if Float.is_nan t.retrans_backoff || t.retrans_backoff < 1. then
    fail "Config: retrans_backoff = %g, the backoff factor must be >= 1" t.retrans_backoff;
  if t.retrans_max < 0 then
    fail "Config: retrans_max = %d, the retry cap must be non-negative" t.retrans_max;
  if Float.is_nan t.wal_ms || t.wal_ms < 0. then
    fail "Config: wal_ms = %g, the WAL write latency must be non-negative" t.wal_ms;
  (match t.stall_ms with
  | Some s when Float.is_nan s || s <= 0. ->
    fail "Config: stall_ms = %g, the stall threshold must be positive" s
  | Some _ | None -> ());
  (match (t.reliable, t.transport) with
  | true, Gossip _ ->
    fail "Config: reliable channels require the direct transport (gossip re-forwards frames per hop)"
  | _ -> ());
  (* Chaos steps may target twin replicas, so node ids range over the
     physical replica set. *)
  Attack.Fault_schedule.validate ~n:(physical_n t) t.chaos

let make ?(n = 16) ?(crashed = []) ?(lambda_ms = 1000.) ?(delay = Delay_model.normal ~mu:250. ~sigma:50.)
    ?(seed = 1) ?(attack = No_attack) ?decisions_target ?(max_time_ms = 600_000.)
    ?(max_events = 50_000_000) ?(inputs = Distinct) ?(transport = Direct) ?(costs = Cost_model.zero) ?(record_trace = false) ?view_sample_ms
    ?(chaos = Attack.Fault_schedule.empty) ?twins ?watchdog ?(check_validity = false) ?naive_reset
    ?(telemetry = default_telemetry) ?(supervision = default_supervision) ?zones ?bandwidth_mbps
    ?(pipeline = 1) ?(loss = Loss_model.none) ?(reliable = false) ?(retrans_base_ms = 0.)
    ?(retrans_backoff = 2.) ?(retrans_max = 10) ?(wal_ms = 0.) ?stall_ms protocol =
  let naive_reset =
    match naive_reset with Some p -> p | None -> naive_reset_default ()
  in
  let p = Protocols.Registry.find_exn protocol in
  let decisions_target =
    match decisions_target with
    | Some target -> target
    | None -> if Protocols.Protocol_intf.pipelined p then 10 else 1
  in
  let t =
    {
      protocol;
      n;
      crashed;
      lambda_ms;
      delay;
      seed;
      attack;
      decisions_target;
      max_time_ms;
      max_events;
      inputs;
      transport;
      costs;
      record_trace;
      view_sample_ms;
      chaos = Attack.Fault_schedule.normalize chaos;
      twins;
      watchdog;
      check_validity;
      naive_reset;
      telemetry;
      supervision;
      zones;
      bandwidth_mbps;
      pipeline;
      loss;
      reliable;
      retrans_base_ms;
      retrans_backoff;
      retrans_max;
      wal_ms;
      stall_ms;
    }
  in
  validate t;
  t

let input_for t node =
  match t.inputs with
  | Distinct -> Printf.sprintf "v%d" node
  | Same v -> v
  | Random_binary ->
    let d = Sha256.digest_string (Printf.sprintf "input|%d|%d" t.seed node) in
    if Char.code (Sha256.to_raw d).[0] land 1 = 0 then "0" else "1"

let honest_excluding_crashed t =
  let crashed = t.crashed in
  List.filter (fun i -> not (List.mem i crashed)) (List.init t.n (fun i -> i))

let describe_attack = function
  | No_attack -> "none"
  | Partition { first_size; start_ms; heal_ms; drop } ->
    Printf.sprintf "partition(%d|rest,[%g,%g),%s)" first_size start_ms heal_ms
      (if drop then "drop" else "delay")
  | Silence { nodes; at_ms } -> Printf.sprintf "silence(%d nodes@%g)" (List.length nodes) at_ms
  | Add_static { f } -> Printf.sprintf "add-static(f=%d)" f
  | Add_rushing_adaptive { budget } ->
    (match budget with
    | None -> "add-rushing-adaptive"
    | Some b -> Printf.sprintf "add-rushing-adaptive(budget=%d)" b)
  | Extra_delay { extra_ms } -> Printf.sprintf "extra-delay(%g)" extra_ms

let describe t =
  Printf.sprintf "%s n=%d crashed=%d lambda=%g delay=%s attack=%s target=%d seed=%d%s" t.protocol
    t.n (List.length t.crashed) t.lambda_ms (Delay_model.describe t.delay)
    (describe_attack t.attack) t.decisions_target t.seed
    ((if Cost_model.is_zero t.costs then "" else " costs=" ^ Cost_model.describe t.costs)
    ^ (match t.transport with
      | Direct -> ""
      | Gossip { fanout } -> Printf.sprintf " transport=gossip:%d" fanout)
    ^ (match t.chaos with
      | [] -> ""
      | steps -> Printf.sprintf " chaos=[%d steps]" (List.length steps))
    ^ (match t.twins with
      | None -> ""
      | Some tw -> " " ^ Attack.Twins_schedule.describe tw)
    ^ (match t.watchdog with
      | None -> ""
      | Some k -> Printf.sprintf " watchdog=%g*lambda" k)
    ^ (match t.naive_reset with
      | Protocols.Context.Reset_on_commit -> ""
      | p ->
        Printf.sprintf " naive-reset=%s" (Protocols.Context.naive_reset_policy_to_string p))
    ^ (match t.zones with None -> "" | Some spec -> Printf.sprintf " zones=%s" spec)
    ^ (match t.bandwidth_mbps with
      | None -> ""
      | Some b -> Printf.sprintf " bw=%gMbps" b)
    ^ (if t.pipeline = 1 then "" else Printf.sprintf " pipeline=%d" t.pipeline)
    ^ (if Loss_model.is_none t.loss then "" else " " ^ Loss_model.describe t.loss)
    ^ (if not t.reliable then ""
       else
         Printf.sprintf " reliable(base=%g,backoff=%g,max=%d)" t.retrans_base_ms
           t.retrans_backoff t.retrans_max)
    ^ (if t.wal_ms = 0. then "" else Printf.sprintf " wal=%gms" t.wal_ms)
    ^ (match t.stall_ms with None -> "" | Some s -> Printf.sprintf " stall=%gms" s)
    ^
    match (t.telemetry.metrics, t.telemetry.tracing) with
    | false, false -> ""
    | m, tr ->
      Printf.sprintf " telemetry=%s"
        (String.concat "+"
           (List.filter_map Fun.id [ (if m then Some "metrics" else None); (if tr then Some "trace" else None) ])))

let parse_int_list s =
  try Ok (List.filter_map (fun x -> if x = "" then None else Some (int_of_string x)) (String.split_on_char ',' s))
  with Failure _ -> Error (Printf.sprintf "invalid id list %S" s)

let parse_attack s =
  match String.index_opt s ':' with
  | None -> (
    match s with
    | "none" -> Ok No_attack
    | "add-adaptive" -> Ok (Add_rushing_adaptive { budget = None })
    | _ -> Error (Printf.sprintf "unknown attack %S" s))
  | Some i when String.sub s 0 i = "add-adaptive" -> (
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt rest with
    | Some budget -> Ok (Add_rushing_adaptive { budget = Some budget })
    | None -> Error (Printf.sprintf "invalid add-adaptive budget %S" rest))
  | Some i -> (
    let kind = String.sub s 0 i and rest = String.sub s (i + 1) (String.length s - i - 1) in
    match kind with
    | "partition" -> (
      match String.split_on_char ',' rest with
      | [ first; start; heal ] | [ first; start; heal; _ ] -> (
        try
          let drop =
            match String.split_on_char ',' rest with [ _; _; _; "delay" ] -> false | _ -> true
          in
          Ok
            (Partition
               {
                 first_size = int_of_string first;
                 start_ms = float_of_string start;
                 heal_ms = float_of_string heal;
                 drop;
               })
        with Failure _ -> Error (Printf.sprintf "invalid partition spec %S" rest))
      | _ -> Error (Printf.sprintf "invalid partition spec %S" rest))
    | "silence" -> (
      match String.index_opt rest '@' with
      | None -> Error (Printf.sprintf "invalid silence spec %S" rest)
      | Some j -> (
        let ids = String.sub rest 0 j in
        let at = String.sub rest (j + 1) (String.length rest - j - 1) in
        match (parse_int_list ids, float_of_string_opt at) with
        | Ok nodes, Some at_ms -> Ok (Silence { nodes; at_ms })
        | Error e, _ -> Error e
        | _, None -> Error (Printf.sprintf "invalid silence time %S" at)))
    | "add-static" -> (
      match int_of_string_opt rest with
      | Some f -> Ok (Add_static { f })
      | None -> Error (Printf.sprintf "invalid add-static f %S" rest))
    | "extra-delay" -> (
      match float_of_string_opt rest with
      | Some extra_ms -> Ok (Extra_delay { extra_ms })
      | None -> Error (Printf.sprintf "invalid extra-delay %S" rest))
    | _ -> Error (Printf.sprintf "unknown attack %S" s))

(* Parseable renderings (inverses of the parsers below) so a config can be
   written back out as a key = value file — the conformance repro bundles. *)
let attack_to_cli_string = function
  | No_attack -> "none"
  | Partition { first_size; start_ms; heal_ms; drop } ->
    Printf.sprintf "partition:%d,%g,%g%s" first_size start_ms heal_ms (if drop then "" else ",delay")
  | Silence { nodes; at_ms } ->
    Printf.sprintf "silence:%s@%g" (String.concat "," (List.map string_of_int nodes)) at_ms
  | Add_static { f } -> Printf.sprintf "add-static:%d" f
  | Add_rushing_adaptive { budget = None } -> "add-adaptive"
  | Add_rushing_adaptive { budget = Some b } -> Printf.sprintf "add-adaptive:%d" b
  | Extra_delay { extra_ms } -> Printf.sprintf "extra-delay:%g" extra_ms

let inputs_to_cli_string = function
  | Distinct -> "distinct"
  | Same v -> "same:" ^ v
  | Random_binary -> "binary"

let parse_inputs s =
  if String.equal s "distinct" then Ok Distinct
  else if String.equal s "binary" then Ok Random_binary
  else if String.length s > 5 && String.sub s 0 5 = "same:" then
    Ok (Same (String.sub s 5 (String.length s - 5)))
  else Error (Printf.sprintf "unknown inputs spec %S" s)

let of_keyvalues kvs =
  let ( let* ) = Result.bind in
  let find key = List.assoc_opt key kvs in
  let* protocol =
    match find "protocol" with Some p -> Ok p | None -> Error "missing key: protocol"
  in
  let int_key key default =
    match find key with
    | None -> Ok default
    | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "invalid integer for %s: %S" key v))
  in
  let float_key key default =
    match find key with
    | None -> Ok default
    | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "invalid float for %s: %S" key v))
  in
  let* n = int_key "n" 16 in
  let* seed = int_key "seed" 1 in
  let* max_events = int_key "max_events" 50_000_000 in
  let* lambda_ms = float_key "lambda" 1000. in
  let* max_time_ms = float_key "max_time_ms" 600_000. in
  let* delay =
    match find "delay" with
    | None -> Ok (Delay_model.normal ~mu:250. ~sigma:50.)
    | Some s -> Delay_model.of_string s
  in
  let* crashed = match find "crashed" with None -> Ok [] | Some s -> parse_int_list s in
  let* attack = match find "attack" with None -> Ok No_attack | Some s -> parse_attack s in
  let* inputs = match find "inputs" with None -> Ok Distinct | Some s -> parse_inputs s in
  let* costs =
    match find "costs" with None -> Ok Cost_model.zero | Some s -> Cost_model.of_string s
  in
  let* transport =
    match find "transport" with
    | None | Some "direct" -> Ok Direct
    | Some s when String.length s > 7 && String.sub s 0 7 = "gossip:" -> (
      match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some fanout when fanout > 0 -> Ok (Gossip { fanout })
      | _ -> Error (Printf.sprintf "invalid gossip fanout in %S" s))
    | Some s -> Error (Printf.sprintf "unknown transport %S" s)
  in
  let* target =
    match find "target" with
    | None -> Ok None
    | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok (Some i)
      | None -> Error (Printf.sprintf "invalid integer for target: %S" v))
  in
  let* chaos =
    match find "chaos" with
    | None -> Ok Attack.Fault_schedule.empty
    | Some s -> Attack.Fault_schedule.of_string s
  in
  let* twins =
    match find "twins" with
    | None -> Ok None
    | Some ids_s ->
      let* ids = Attack.Twins_schedule.ids_of_string ids_s in
      let* rounds =
        match find "twins_rounds" with
        | None -> Ok []
        | Some s -> Attack.Twins_schedule.rounds_of_string s
      in
      let* leaders =
        match find "twins_leaders" with
        | None -> Ok []
        | Some s -> Attack.Twins_schedule.ids_of_string s
      in
      let* round_ms = float_key "twins_round_ms" (4. *. lambda_ms) in
      Ok (Some { Attack.Twins_schedule.ids; round_ms; rounds; leaders })
  in
  let* watchdog =
    match find "watchdog" with
    | None -> Ok None
    | Some v -> (
      match float_of_string_opt v with
      | Some k -> Ok (Some k)
      | None -> Error (Printf.sprintf "invalid float for watchdog: %S" v))
  in
  let* naive_reset =
    match find "naive_reset" with
    | None -> Ok None
    | Some v -> (
      match Protocols.Context.naive_reset_policy_of_string v with
      | Some p -> Ok (Some p)
      | None -> Error (Printf.sprintf "invalid naive_reset %S (commit | never | view)" v))
  in
  let bool_key key default =
    match find key with
    | None -> Ok default
    | Some v -> (
      match bool_of_string_opt v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "invalid boolean for %s: %S" key v))
  in
  let* tel_metrics = bool_key "metrics" false in
  let* tel_tracing = bool_key "tracing" false in
  let* trace_capacity = int_key "trace_capacity" default_telemetry.trace_capacity in
  let telemetry = { metrics = tel_metrics; tracing = tel_tracing; trace_capacity } in
  let* deadline_ms =
    match find "deadline_ms" with
    | None | Some "none" -> Ok default_supervision.deadline_ms
    | Some v -> (
      match float_of_string_opt v with
      | Some d -> Ok (Some d)
      | None -> Error (Printf.sprintf "invalid float for deadline_ms: %S" v))
  in
  let* max_retries = int_key "retries" default_supervision.max_retries in
  let* quarantine_after = int_key "quarantine" default_supervision.quarantine_after in
  let* retry_base_ms = float_key "retry_base_ms" default_supervision.retry_base_ms in
  let supervision = { deadline_ms; max_retries; quarantine_after; retry_base_ms } in
  let* zones =
    match find "zones" with
    | None -> Ok None
    | Some spec -> (
      match Topology.zones_of_spec spec with Ok _ -> Ok (Some spec) | Error e -> Error e)
  in
  let* bandwidth_mbps =
    match find "bandwidth" with
    | None -> Ok None
    | Some v -> (
      match float_of_string_opt v with
      | Some b when b > 0. -> Ok (Some b)
      | _ -> Error (Printf.sprintf "invalid bandwidth %S (positive Mbps)" v))
  in
  let* pipeline = int_key "pipeline" 1 in
  let* loss_drop = float_key "loss" 0. in
  let* loss_dup = float_key "dup" 0. in
  let* loss_reorder = float_key "reorder" 0. in
  let* loss_burst =
    match find "burst_loss" with
    | None -> Ok None
    | Some s -> (
      try Ok (Some (Loss_model.burst_of_string s))
      with Invalid_argument e -> Error e)
  in
  let loss =
    Loss_model.make ~drop:loss_drop ~dup:loss_dup ~reorder_ms:loss_reorder
      ?burst:loss_burst ()
  in
  let* reliable = bool_key "reliable" false in
  let* retrans_base_ms = float_key "retrans_base_ms" 0. in
  let* retrans_backoff = float_key "retrans_backoff" 2. in
  let* retrans_max = int_key "retrans_max" 10 in
  let* wal_ms = float_key "wal_ms" 0. in
  let* stall_ms =
    match find "stall_ms" with
    | None | Some "none" -> Ok None
    | Some v -> (
      match float_of_string_opt v with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "invalid float for stall_ms: %S" v))
  in
  match Bftsim_protocols.Registry.find protocol with
  | None ->
    Error
      (Printf.sprintf "unknown protocol %S (known: %s)" protocol
         (String.concat ", " (Bftsim_protocols.Registry.names ())))
  | Some _ ->
    (try
       Ok
         (make ~n ~crashed ~lambda_ms ~delay ~seed ~attack ?decisions_target:target ~max_time_ms
            ~max_events ~inputs ~transport ~costs ~chaos ?twins ?watchdog ?naive_reset ~telemetry
            ~supervision ?zones ?bandwidth_mbps ~pipeline ~loss ~reliable ~retrans_base_ms
            ~retrans_backoff ~retrans_max ~wal_ms ?stall_ms protocol)
     with Invalid_argument msg -> Error msg)

(* Inverse of [of_keyvalues]: render the configuration as the key = value
   pairs the CLI and config files understand, so a failing fuzz scenario can
   be written to disk and replayed verbatim ([bftsim run -c bundle/config.txt]).
   Fields without file syntax ([record_trace], [view_sample_ms]) are
   per-invocation switches, not scenario identity, and are omitted. *)
let to_keyvalues t =
  [
    ("protocol", t.protocol);
    ("n", string_of_int t.n);
    ("seed", string_of_int t.seed);
    ("lambda", Printf.sprintf "%g" t.lambda_ms);
    ("delay", Delay_model.to_cli_string t.delay);
    ("max_time_ms", Printf.sprintf "%g" t.max_time_ms);
    ("max_events", string_of_int t.max_events);
    ("target", string_of_int t.decisions_target);
    ("inputs", inputs_to_cli_string t.inputs);
  ]
  @ (if t.crashed = [] then []
     else [ ("crashed", String.concat "," (List.map string_of_int t.crashed)) ])
  @ (match t.attack with No_attack -> [] | a -> [ ("attack", attack_to_cli_string a) ])
  @ (match t.transport with
    | Direct -> []
    | Gossip { fanout } -> [ ("transport", Printf.sprintf "gossip:%d" fanout) ])
  @ (if Cost_model.is_zero t.costs then []
     else
       [ ("costs", Printf.sprintf "custom:%g,%g" t.costs.Cost_model.sign_ms t.costs.Cost_model.verify_ms) ])
  @ (match t.chaos with [] -> [] | plan -> [ ("chaos", Attack.Fault_schedule.describe plan) ])
  @ (match t.twins with
    | None -> []
    | Some tw ->
      [ ("twins", Attack.Twins_schedule.ids_to_string tw.Attack.Twins_schedule.ids) ]
      @ (match tw.Attack.Twins_schedule.rounds with
        | [] -> []
        | rounds -> [ ("twins_rounds", Attack.Twins_schedule.rounds_to_string rounds) ])
      @ (match tw.Attack.Twins_schedule.leaders with
        | [] -> []
        | leaders -> [ ("twins_leaders", Attack.Twins_schedule.ids_to_string leaders) ])
      @ [ ("twins_round_ms", Printf.sprintf "%g" tw.Attack.Twins_schedule.round_ms) ])
  @ (match t.watchdog with None -> [] | Some k -> [ ("watchdog", Printf.sprintf "%g" k) ])
  @ (match t.naive_reset with
    | Protocols.Context.Reset_on_commit -> []
    | p -> [ ("naive_reset", Protocols.Context.naive_reset_policy_to_string p) ])
  @ (match t.zones with None -> [] | Some spec -> [ ("zones", spec) ])
  @ (match t.bandwidth_mbps with
    | None -> []
    | Some b -> [ ("bandwidth", Printf.sprintf "%g" b) ])
  @ (if t.pipeline = 1 then [] else [ ("pipeline", string_of_int t.pipeline) ])
  @ (if t.loss.Loss_model.drop = 0. then []
     else [ ("loss", Printf.sprintf "%g" t.loss.Loss_model.drop) ])
  @ (if t.loss.Loss_model.dup = 0. then []
     else [ ("dup", Printf.sprintf "%g" t.loss.Loss_model.dup) ])
  @ (if t.loss.Loss_model.reorder_ms = 0. then []
     else [ ("reorder", Printf.sprintf "%g" t.loss.Loss_model.reorder_ms) ])
  @ (match t.loss.Loss_model.burst with
    | None -> []
    | Some b -> [ ("burst_loss", Loss_model.burst_to_string b) ])
  @ (if not t.reliable then []
     else
       ("reliable", "true")
       :: ((if t.retrans_base_ms = 0. then []
            else [ ("retrans_base_ms", Printf.sprintf "%g" t.retrans_base_ms) ])
          @ (if t.retrans_backoff = 2. then []
             else [ ("retrans_backoff", Printf.sprintf "%g" t.retrans_backoff) ])
          @ if t.retrans_max = 10 then [] else [ ("retrans_max", string_of_int t.retrans_max) ]))
  @ (if t.wal_ms = 0. then [] else [ ("wal_ms", Printf.sprintf "%g" t.wal_ms) ])
  @ (match t.stall_ms with None -> [] | Some s -> [ ("stall_ms", Printf.sprintf "%g" s) ])
  @ (if t.telemetry.metrics then [ ("metrics", "true") ] else [])
  @ (if t.telemetry.tracing then [ ("tracing", "true") ] else [])
  @ (match t.supervision.deadline_ms with
    | None -> []
    | Some d -> [ ("deadline_ms", Printf.sprintf "%g" d) ])
  @ (if t.supervision.max_retries <> default_supervision.max_retries then
       [ ("retries", string_of_int t.supervision.max_retries) ]
     else [])
  @ (if t.supervision.quarantine_after <> default_supervision.quarantine_after then
       [ ("quarantine", string_of_int t.supervision.quarantine_after) ]
     else [])
  @ (if t.supervision.retry_base_ms <> default_supervision.retry_base_ms then
       [ ("retry_base_ms", Printf.sprintf "%g" t.supervision.retry_base_ms) ]
     else [])
  @
  if t.telemetry.trace_capacity <> default_telemetry.trace_capacity then
    [ ("trace_capacity", string_of_int t.telemetry.trace_capacity) ]
  else []
