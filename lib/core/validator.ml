type report = {
  decisions_match : bool;
  trace_match : bool option;
  divergence : string option;
}

let same_decisions (a : Controller.result) (b : Controller.result) =
  let clean r =
    List.filter (fun (_, values) -> values <> []) r.Controller.decisions
  in
  clean a = clean b

let decisions_divergence (a : Controller.result) (b : Controller.result) =
  (* The decision table is keyed by logical identity, and under a twins
     configuration a twinned identity appears once per physical half — so a
     key is NOT unique.  Group the value sequences per identity (in table
     order, which is deterministic physical order) instead of letting a
     last-write-wins table attribute one half's log to a phantom replica. *)
  let to_table r =
    let t : (int, string list list) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (node, values) ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt t node) in
        Hashtbl.replace t node (prev @ [ values ]))
      r.Controller.decisions;
    t
  in
  let ta = to_table a and tb = to_table b in
  (* Compare over the union of nodes: a node that decided only in the
     replayed run (absent from the ground-truth table) is a divergence
     too, so iterating a single table would miss it. *)
  let nodes = Hashtbl.create 16 in
  Hashtbl.iter (fun node _ -> Hashtbl.replace nodes node ()) ta;
  Hashtbl.iter (fun node _ -> Hashtbl.replace nodes node ()) tb;
  let sorted = List.sort compare (Hashtbl.fold (fun node () acc -> node :: acc) nodes []) in
  let show halves =
    String.concat " / " (List.map (fun vs -> "[" ^ String.concat "; " vs ^ "]") halves)
  in
  List.fold_left
    (fun diff node ->
      match diff with
      | Some _ -> diff
      | None ->
        let va = Option.value ~default:[] (Hashtbl.find_opt ta node) in
        let vb = Option.value ~default:[] (Hashtbl.find_opt tb node) in
        if va <> vb then Some (Printf.sprintf "node %d decided %s vs %s" node (show va) (show vb))
        else None)
    None sorted

let replay_delays trace =
  let table = Hashtbl.create 256 in
  List.iter
    (fun ((src, dst, tag), ds) ->
      List.iteri
        (fun seq d ->
          (* Dropped sends have no observed delay; the replaying attacker
             re-drops them, so their sampled delay never matters. *)
          match d with Some d -> Hashtbl.replace table (src, dst, tag, seq) d | None -> ())
        ds)
    (Trace.delays trace);
  fun ~src ~dst ~tag ~seq -> Hashtbl.find_opt table (src, dst, tag, seq)

let trace_divergence a b =
  match Trace.first_divergence a b with
  | None -> None
  | Some (i, x, y) ->
    let show = function
      | None -> "<end of trace>"
      | Some e -> Format.asprintf "%a" Trace.pp_entry e
    in
    Some (Printf.sprintf "trace entry %d: %s vs %s" i (show x) (show y))

let make_report ground replayed =
  let decisions_match = same_decisions ground replayed in
  let trace_match, trace_diff =
    match (ground.Controller.trace, replayed.Controller.trace) with
    | Some ta, Some tb ->
      let d = trace_divergence ta tb in
      (Some (d = None), d)
    | _ -> (None, None)
  in
  let divergence =
    if decisions_match then trace_diff else decisions_divergence ground replayed
  in
  { decisions_match; trace_match; divergence }

let validate_against ~ground_truth config =
  let trace =
    match ground_truth.Controller.trace with
    | Some t -> t
    | None -> invalid_arg "Validator.validate_against: ground truth has no trace"
  in
  let replayed =
    Controller.run ~delay_override:(replay_delays trace) { config with Config.record_trace = true }
  in
  make_report ground_truth replayed

let check_determinism config =
  let config = { config with Config.record_trace = true } in
  let a = Controller.run config in
  let b = Controller.run config in
  make_report a b

let pp_report ppf r =
  Format.fprintf ppf "decisions %s, trace %s%s"
    (if r.decisions_match then "match" else "DIFFER")
    (match r.trace_match with None -> "n/a" | Some true -> "match" | Some false -> "DIFFER")
    (match r.divergence with None -> "" | Some d -> "; first divergence: " ^ d)
