open Bftsim_net

let default_n = 16

(* The figures reproduce the paper's Table I set; the extension protocols
   are exercised by their own bench section and tests. *)
let all_protocols =
  [ "add-v1"; "add-v2"; "add-v3"; "algorand"; "async-ba"; "pbft"; "hotstuff-ns"; "librabft" ]

let extension_protocols = [ "tendermint"; "sync-hotstuff"; "hotstuff-cogsworth" ]

let partially_synchronous = [ "pbft"; "hotstuff-ns"; "librabft" ]

let network_environments =
  [
    ("N(250,50)", Delay_model.normal ~mu:250. ~sigma:50.);
    ("N(500,100)", Delay_model.normal ~mu:500. ~sigma:100.);
    ("N(1000,300)", Delay_model.normal ~mu:1000. ~sigma:300.);
    ("N(1000,1000)", Delay_model.normal ~mu:1000. ~sigma:1000.);
  ]

(* Async BA is a binary-value protocol, so it gets random bit inputs; the
   SMR-style protocols propose distinct values. *)
let inputs_for protocol = if String.equal protocol "async-ba" then Config.Random_binary else Config.Distinct

let base ?(n = default_n) ?(lambda_ms = 1000.) ?(delay = Delay_model.normal ~mu:250. ~sigma:50.)
    ?crashed ?attack ?decisions_target ?view_sample_ms ?chaos ?watchdog ~seed protocol =
  Config.make ~n ?crashed ~lambda_ms ~delay ~seed ?attack ?decisions_target ?view_sample_ms
    ?chaos ?watchdog ~inputs:(inputs_for protocol) protocol

(* Extended past the paper's axis: the allocation-free event core keeps
   the O(n^2) PBFT rounds tractable to n=4096, two orders of magnitude
   past the packet-level baseline's OOM wall.  bench --quick caps the
   sweep (--fig2-max) so CI stays within budget. *)
let fig2_node_counts = [ 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]

let fig2_config ~n = base ~n ~seed:1 "pbft"

let fig3_config ~protocol ~delay ~seed = base ~delay ~seed protocol

let fig4_lambdas = [ 1000.; 1500.; 2000.; 2500.; 3000. ]

let fig4_config ~protocol ~lambda_ms ~seed = base ~lambda_ms ~seed protocol

let fig5_lambdas = [ 150.; 250.; 500.; 1000.; 2000. ]

let fig5_config ~protocol ~lambda_ms ~seed = base ~lambda_ms ~seed protocol

let fig6_heal_ms = 20_000.

(* Async BA is excluded: a drop-mode partition violates the asynchronous
   model's reliable-channel assumption, under which Bracha's protocol (with
   no retransmission layer) cannot recover lost messages. *)
let fig6_protocols = [ "algorand"; "pbft"; "hotstuff-ns"; "librabft" ]

let fig6_config ~protocol ~seed =
  (* Time to the first consensus, for cross-protocol comparability: the
     paper reports how long after the heal each protocol terminates. *)
  base ~seed
    ~attack:
      (Config.Partition
         { first_size = default_n / 2; start_ms = 0.; heal_ms = fig6_heal_ms; drop = true })
    ~decisions_target:1 protocol

let fig7_failstop_counts = [ 0; 1; 2; 3; 4; 5 ]

let fig7_config ~protocol ~failstop ~seed =
  if failstop < 0 || failstop > Bftsim_protocols.Quorum.max_faulty default_n then
    invalid_arg "Experiments.fig7_config: failstop beyond tolerance";
  (* Crash the highest-numbered nodes so the time-zero leaders stay alive
     and every protocol still meets the crashed leaders as views rotate. *)
  let crashed = List.init failstop (fun i -> default_n - 1 - i) in
  base ~crashed ~lambda_ms:1000. ~delay:(Delay_model.normal ~mu:1000. ~sigma:300.) ~seed protocol

let fig8_f_values = [ 1; 2; 3; 4; 5 ]

let add_variants = [ "add-v1"; "add-v2"; "add-v3" ]

let fig8_static_config ~protocol ~f ~seed = base ~seed ~attack:(Config.Add_static { f }) protocol

let fig8_adaptive_config ~protocol ~f ~seed =
  base ~seed ~attack:(Config.Add_rushing_adaptive { budget = Some f }) protocol

let fig9_config ~seed =
  base ~lambda_ms:150. ~seed ~view_sample_ms:250. "hotstuff-ns"

(* --- Chaos sweeps (beyond the paper: the fault-injection subsystem) --- *)

module Fault_schedule = Bftsim_attack.Fault_schedule

let chaos_gst_ms = 15_000.

let chaos_watchdog = 10.

(* Highest-numbered nodes, like fig7: the time-zero leaders stay alive. *)
let top_nodes count = List.init count (fun i -> default_n - 1 - i)

let chaos_config ~protocol ~seed =
  let f = Bftsim_protocols.Quorum.max_faulty default_n in
  base ~seed ~decisions_target:1 ~watchdog:chaos_watchdog
    ~chaos:(Fault_schedule.crash_and_recover ~nodes:(top_nodes f) ~crash_ms:0. ~recover_ms:chaos_gst_ms)
    protocol

let chaos_overload_config ~protocol ~seed =
  let f = Bftsim_protocols.Quorum.max_faulty default_n in
  base ~seed ~decisions_target:1 ~watchdog:chaos_watchdog
    ~chaos:
      (List.map
         (fun node -> { Fault_schedule.at_ms = 0.; action = Fault_schedule.Crash node })
         (top_nodes (f + 1)))
    protocol

let chaos_turbulence_config ~protocol ~seed =
  base ~seed ~decisions_target:1 ~watchdog:chaos_watchdog
    ~delay:(Delay_model.normal ~mu:500. ~sigma:200.)
    ~chaos:
      (Fault_schedule.normalize
         [
           { Fault_schedule.at_ms = 0.; action = Fault_schedule.Loss_burst { p = 0.1; until_ms = chaos_gst_ms } };
           { Fault_schedule.at_ms = 0.; action = Fault_schedule.Delay_spike { extra_ms = 500.; until_ms = chaos_gst_ms } };
           { Fault_schedule.at_ms = 0.; action = Fault_schedule.Dup_burst { p = 0.05; until_ms = chaos_gst_ms } };
           { Fault_schedule.at_ms = chaos_gst_ms; action = Fault_schedule.Gst_shift (Delay_model.normal ~mu:100. ~sigma:20.) };
         ])
    protocol

(* Supervision preset for long campaigns: a generous per-replication
   wall-clock budget (no tier-1 run takes close to a minute), a second
   chance for transient host trouble, quarantine for repeat offenders and
   a small deterministic backoff so retries do not hammer the host. *)
let campaign_supervision =
  {
    Config.deadline_ms = Some 60_000.;
    max_retries = 2;
    quarantine_after = 3;
    retry_base_ms = 50.;
  }
