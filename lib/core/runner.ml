type summary = {
  config : Config.t;
  reps : int;
  latency_ms : Stats.t;
  messages : Stats.t;
  liveness_failures : int;
  safety_violations : int;
  metrics : Bftsim_obs.Metrics.t option;
  results : Controller.result list;
}

let default_reps () =
  match Sys.getenv_opt "BFTSIM_REPS" with
  | Some v -> ( match int_of_string_opt v with Some r when r > 0 -> r | _ -> 20)
  | None -> 20

let run_many ?reps ?jobs (config : Config.t) =
  let reps = match reps with Some r -> r | None -> default_reps () in
  if reps <= 0 then invalid_arg "Runner.run_many: reps <= 0";
  (* Replications are independent (distinct seeds, no shared mutable state),
     so they fan out across the domain pool; Parallel.map returns them in
     seed order, so the statistics below see the identical sequence the
     sequential path produces. *)
  let results =
    Parallel.map ?jobs
      (fun k -> Controller.run { config with Config.seed = config.Config.seed + k })
      (List.init reps Fun.id)
  in
  let latencies = List.map (fun r -> r.Controller.per_decision_latency_ms) results in
  let messages = List.map (fun r -> r.Controller.per_decision_messages) results in
  let liveness_failures =
    List.length (List.filter (fun r -> r.Controller.outcome <> Controller.Reached_target) results)
  in
  let safety_violations = List.length (List.filter (fun r -> not r.Controller.safety_ok) results) in
  (* Merge folds the per-run registries in seed order — the same order the
     sequential path produces — so the merged registry is bit-identical at
     any [jobs]. *)
  let metrics =
    match List.filter_map (fun r -> r.Controller.metrics) results with
    | [] -> None
    | regs -> Some (Bftsim_obs.Metrics.merge regs)
  in
  {
    config;
    reps;
    latency_ms = Stats.of_list latencies;
    messages = Stats.of_list messages;
    liveness_failures;
    safety_violations;
    metrics;
    results;
  }

let pp_summary ppf s =
  Format.fprintf ppf "%-12s latency %a msgs %a%s%s" s.config.Config.protocol Stats.pp_ms_as_s
    s.latency_ms Stats.pp s.messages
    (if s.liveness_failures > 0 then Printf.sprintf " [%d liveness failures]" s.liveness_failures
     else "")
    (if s.safety_violations > 0 then Printf.sprintf " [%d SAFETY VIOLATIONS]" s.safety_violations
     else "")
