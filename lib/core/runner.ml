(* Supervised replication campaigns (DESIGN.md §3.13).

   [run_many] fans replications across the domain pool under a
   [Supervisor]: a crashing or deadline-overrunning replication becomes a
   structured failure in the summary instead of sinking the batch, and
   completed replications are journaled as digests so an interrupted
   campaign resumes where it stopped.

   The byte-identity contract: the summary is computed from digests on
   {e every} path — statistics from digest fields, the merged registry from
   each digest's JSON-encoded registry — so a resumed campaign and an
   uninterrupted one print identical summaries at any pool size.  The only
   field that sees live [Controller.result]s is [results], kept for callers
   (benchmarks, tests) that inspect full runs and documented as holding
   this process's completions only. *)

module Metrics = Bftsim_obs.Metrics

type failure = { rep : int; kind : string; detail : string; retries : int }

type summary = {
  config : Config.t;
  reps : int;
  completed : int;
  latency_ms : Stats.t;
  messages : Stats.t;
  liveness_failures : int;
  safety_violations : int;
  metrics : Metrics.t option;
  results : Controller.result list;
  digests : Journal.digest list;
  failures : failure list;
  supervision : Supervisor.stats;
  resumed : int;
}

let default_reps () =
  match Sys.getenv_opt "BFTSIM_REPS" with
  | Some v -> ( match int_of_string_opt v with Some r when r > 0 -> r | _ -> 20)
  | None -> 20

let key_of_rep rep = Printf.sprintf "rep%d" rep

let rep_of_key key =
  try Scanf.sscanf key "rep%d" Fun.id with Scanf.Scan_failure _ | End_of_file -> -1

let kind_to_strings = function
  | Supervisor.Crash { exn; backtrace = _ } -> ("crash", exn)
  | Supervisor.Deadline -> ("deadline", "wall-clock deadline exceeded")

let run_many ?reps ?jobs ?journal ?(resumed = []) (config : Config.t) =
  let reps = match reps with Some r -> r | None -> default_reps () in
  if reps <= 0 then invalid_arg "Runner.run_many: reps <= 0";
  let cell = Journal.cell_of_config config in
  (* Replications finished by a previous incarnation of this campaign:
     skip them and splice their digests back in at their rep index. *)
  let journaled =
    List.filter (fun (rep, _) -> rep >= 0 && rep < reps) (Journal.runs resumed ~cell)
  in
  let done_tbl = Hashtbl.create 16 in
  List.iter (fun (rep, d) -> Hashtbl.replace done_tbl rep d) journaled;
  let pending = List.filter (fun k -> not (Hashtbl.mem done_tbl k)) (List.init reps Fun.id) in
  let on_failure =
    Option.map
      (fun j ~key ~attempt ~wall_ms kind ->
        let kind_s, detail = kind_to_strings kind in
        let backtrace = match kind with Supervisor.Crash c -> c.backtrace | _ -> "" in
        Journal.append j
          (Journal.Failure
             { cell; rep = rep_of_key key; attempt; wall_ms; kind = kind_s; detail; backtrace }))
      journal
  in
  let supervisor = Supervisor.create ~policy:(Supervisor.policy_of_config config) ?on_failure () in
  (* Replications are independent (distinct seeds, no shared mutable
     state), so they fan out across the domain pool; [supervise] never
     raises, so one bad replication cannot discard the others in flight.
     Completed digests are journaled from inside the worker — a campaign
     killed mid-flight keeps everything that finished. *)
  let outcomes =
    Parallel.map ?jobs
      (fun k ->
        let outcome =
          Supervisor.supervise supervisor ~key:(key_of_rep k) (fun ~cancel ->
              Controller.run ~cancel { config with Config.seed = config.Config.seed + k })
        in
        (match (outcome, journal) with
        | Supervisor.Ok r, Some j ->
          Journal.append j (Journal.Run { cell; digest = Journal.digest_of_result ~rep:k r })
        | _ -> ());
        (k, outcome))
      pending
  in
  let fresh_results =
    List.filter_map (function k, Supervisor.Ok r -> Some (k, r) | _ -> None) outcomes
  in
  let failures =
    List.filter_map
      (fun (k, outcome) ->
        match outcome with
        | Supervisor.Ok _ -> None
        | Supervisor.Crashed { exn; backtrace = _; retries } ->
          Some { rep = k; kind = "crash"; detail = exn; retries }
        | Supervisor.Deadline_exceeded { wall_ms; retries } ->
          Some
            { rep = k; kind = "deadline"; detail = Printf.sprintf "%.0f ms wall" wall_ms; retries }
        | Supervisor.Quarantined { failures } ->
          Some
            {
              rep = k;
              kind = "quarantined";
              detail = Printf.sprintf "%d earlier failure(s)" failures;
              retries = 0;
            })
      outcomes
  in
  let digests =
    List.init reps (fun k ->
        match Hashtbl.find_opt done_tbl k with
        | Some d -> Some d
        | None ->
          Option.map (fun r -> Journal.digest_of_result ~rep:k r) (List.assoc_opt k fresh_results))
    |> List.filter_map Fun.id
  in
  if digests = [] then
    invalid_arg
      (Printf.sprintf "Runner.run_many: every replication failed (%d failure(s), e.g. %s)"
         (List.length failures)
         (match failures with [] -> "none recorded" | f :: _ -> f.kind ^ ": " ^ f.detail));
  (* Every aggregate below reads digests, never live results: journaled
     floats round-trip exactly through the JSON codec, so resumed and
     uninterrupted campaigns aggregate identical sequences (in rep order,
     whatever the pool interleaving was). *)
  let latencies = List.map (fun d -> d.Journal.latency_ms) digests in
  let messages = List.map (fun d -> d.Journal.messages) digests in
  let liveness_failures =
    List.length (List.filter (fun d -> d.Journal.outcome <> "reached-target") digests)
  in
  let safety_violations = List.length (List.filter (fun d -> not d.Journal.safety_ok) digests) in
  let metrics =
    match List.filter_map (fun d -> d.Journal.metrics) digests with
    | [] -> None
    | encoded ->
      Some
        (Metrics.merge
           (List.map
              (fun j ->
                match Metrics.of_json j with
                | Ok m -> m
                | Error e -> invalid_arg ("Runner.run_many: bad journaled registry: " ^ e))
              encoded))
  in
  {
    config;
    reps;
    completed = List.length digests;
    latency_ms = Stats.of_list latencies;
    messages = Stats.of_list messages;
    liveness_failures;
    safety_violations;
    metrics;
    results = List.map snd fresh_results;
    digests;
    failures;
    supervision = Supervisor.stats supervisor;
    resumed = List.length journaled;
  }

let pp_summary ppf s =
  let count kind = List.length (List.filter (fun f -> f.kind = kind) s.failures) in
  let crashed = count "crash" in
  let timed_out = count "deadline" in
  let quarantined = count "quarantined" in
  Format.fprintf ppf "%-12s latency %a msgs %a%s%s%s%s%s" s.config.Config.protocol Stats.pp_ms_as_s
    s.latency_ms Stats.pp s.messages
    (if s.liveness_failures > 0 then Printf.sprintf " [%d liveness failures]" s.liveness_failures
     else "")
    (if s.safety_violations > 0 then Printf.sprintf " [%d SAFETY VIOLATIONS]" s.safety_violations
     else "")
    (if crashed > 0 then Printf.sprintf " [%d crashed]" crashed else "")
    (if timed_out > 0 then Printf.sprintf " [%d timed out]" timed_out else "")
    (if quarantined > 0 then Printf.sprintf " [%d quarantined]" quarantined else "")
