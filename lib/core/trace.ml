type kind = Send | Deliver | Drop | Timer_fired | Decide

type entry = {
  at_ms : float;
  kind : kind;
  node : int;
  peer : int;
  tag : string;
  detail : string;
}

type t = { mutable rev_entries : entry list; mutable count : int }

let create () = { rev_entries = []; count = 0 }

let record t entry =
  t.rev_entries <- entry :: t.rev_entries;
  t.count <- t.count + 1

let entries t = List.rev t.rev_entries

let length t = t.count

let entry_equal a b =
  Float.equal a.at_ms b.at_ms && a.kind = b.kind && a.node = b.node && a.peer = b.peer
  && String.equal a.tag b.tag && String.equal a.detail b.detail

let equal a b = a.count = b.count && List.for_all2 entry_equal (entries a) (entries b)

let first_divergence a b =
  let rec walk i xs ys =
    match (xs, ys) with
    | [], [] -> None
    | x :: xs', y :: ys' -> if entry_equal x y then walk (i + 1) xs' ys' else Some (i, Some x, Some y)
    | x :: _, [] -> Some (i, Some x, None)
    | [], y :: _ -> Some (i, None, Some y)
  in
  walk 0 (entries a) (entries b)

let delays t =
  (* Match sends to deliveries per (src, dst, tag) link in FIFO order; the
     event queue's deterministic ordering makes this reconstruction exact.
     Attacker-dropped sends keep their position as [None] so the list stays
     aligned with the sender-side sequence numbers replay uses. *)
  let cells : (int * int * string, float option ref list ref) Hashtbl.t = Hashtbl.create 64 in
  let pending : (int * int * string, (float * float option ref) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let keys = ref [] in
  List.iter
    (fun e ->
      match e.kind with
      | Send ->
        let key = (e.node, e.peer, e.tag) in
        let cell = ref None in
        (match Hashtbl.find_opt cells key with
        | Some l -> l := cell :: !l
        | None ->
          Hashtbl.replace cells key (ref [ cell ]);
          keys := key :: !keys);
        (match Hashtbl.find_opt pending key with
        | Some q -> q := (e.at_ms, cell) :: !q
        | None -> Hashtbl.replace pending key (ref [ (e.at_ms, cell) ]))
      | Deliver -> (
        let key = (e.peer, e.node, e.tag) in
        match Hashtbl.find_opt pending key with
        | Some ({ contents = _ :: _ } as q) ->
          (* FIFO: pending sends were consed, so take from the tail. *)
          let rec split_last acc = function
            | [] -> assert false
            | [ x ] -> (x, List.rev acc)
            | x :: rest -> split_last (x :: acc) rest
          in
          let (sent_at, cell), remaining = split_last [] !q in
          q := remaining;
          cell := Some (e.at_ms -. sent_at)
        | _ -> ())
      | Drop -> (
        (* A drop is recorded in the same routing step as its send, so the
           dropped message is the newest pending one; removing it leaves
           its cell [None], holding the position. *)
        let key = (e.node, e.peer, e.tag) in
        match Hashtbl.find_opt pending key with
        | Some ({ contents = _ :: rest } as q) -> q := rest
        | _ -> ())
      | Timer_fired | Decide -> ())
    (entries t);
  List.rev_map (fun key -> (key, List.rev_map (fun c -> !c) !(Hashtbl.find cells key))) !keys

let decisions t =
  let per_node : (int, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let nodes = ref [] in
  List.iter
    (fun e ->
      if e.kind = Decide then begin
        match Hashtbl.find_opt per_node e.node with
        | Some l -> l := e.tag :: !l
        | None ->
          Hashtbl.replace per_node e.node (ref [ e.tag ]);
          nodes := e.node :: !nodes
      end)
    (entries t);
  List.sort compare !nodes |> List.map (fun node -> (node, List.rev !(Hashtbl.find per_node node)))

let kind_to_string = function
  | Send -> "send"
  | Deliver -> "deliver"
  | Drop -> "drop"
  | Timer_fired -> "timer"
  | Decide -> "decide"

let pp_entry ppf e =
  Format.fprintf ppf "%10.3f %-8s node=%d peer=%d %s %s" e.at_ms (kind_to_string e.kind) e.node
    e.peer e.tag e.detail

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
