(** Repetition harness: runs one configuration many times over distinct
    seeds under campaign supervision (DESIGN.md §3.13) and aggregates the
    paper's two metrics.

    Every replication runs under a [Supervisor] built from
    [config.supervision]: a crash or a wall-clock deadline overrun becomes
    a structured entry in {!summary.failures} instead of discarding the
    batch, failed attempts are retried on the deterministic backoff
    schedule, and — when a {!Journal} is attached — completed replications
    are recorded as digests so an interrupted campaign can resume. *)

type failure = {
  rep : int;
  kind : string;  (** ["crash"], ["deadline"] or ["quarantined"]. *)
  detail : string;  (** Exception text / wall time / failure count. *)
  retries : int;  (** Retries spent before giving up. *)
}

type summary = {
  config : Config.t;  (** The base configuration (seed of the first run). *)
  reps : int;  (** Requested replications. *)
  completed : int;  (** Replications that produced a digest. *)
  latency_ms : Stats.t;  (** Per-decision time usage across runs. *)
  messages : Stats.t;  (** Per-decision message usage across runs. *)
  liveness_failures : int;
      (** Runs that hit the time/event cap instead of the target.  Their
          capped values are {e included} in the statistics (they are real
          observations of slowness), and also reported here. *)
  safety_violations : int;  (** Should always be 0; counted defensively. *)
  metrics : Bftsim_obs.Metrics.t option;
      (** Per-run registries merged in seed order (counters sum, gauges keep
          the max, histograms add bucket-wise) when [config.telemetry.metrics]
          is on — bit-identical whatever [jobs] was, resumed or not (the
          merge always reads the digests' JSON encoding, which round-trips
          registries exactly). *)
  results : Controller.result list;
      (** Full per-run details for the replications {e this process}
          completed, first seed first — replications skipped via [~resumed]
          appear only in [digests].  Aggregation must read [digests]. *)
  digests : Journal.digest list;
      (** One digest per completed replication, in rep order — journaled
          and fresh alike; the source of every aggregate in this record. *)
  failures : failure list;  (** Replications given up on, in rep order. *)
  supervision : Supervisor.stats;
      (** Supervisor counters for {e this process} (ok / crashed /
          timed-out / retried attempts). *)
  resumed : int;  (** Replications skipped thanks to the journal. *)
}

val run_many :
  ?reps:int ->
  ?jobs:int ->
  ?journal:Journal.t ->
  ?resumed:Journal.event list ->
  Config.t ->
  summary
(** [run_many config] executes [reps] (default {!default_reps}) supervised
    simulations with seeds [config.seed, config.seed + 1, ...], fanned
    across [jobs] domains (default {!Parallel.default_jobs}; [~jobs:1]
    forces the sequential path).  The summary is bit-for-bit identical
    whatever [jobs] is: each replication is deterministic in its seed and
    digests are reassembled in seed order.

    [~journal] appends each completed replication (and each failed
    attempt) as it happens — mutex-protected and flushed, so a SIGKILL
    loses at most the record in flight.  [~resumed] takes the events of a
    loaded journal: replications already recorded for this configuration's
    cell are skipped and their digests spliced back in at their rep index,
    reproducing the uninterrupted summary byte for byte.

    @raise Invalid_argument if [reps <= 0], or if {e every} replication
    failed (there is nothing to aggregate — the failure list is summarized
    in the message). *)

val default_reps : unit -> int
(** 20, overridable with the [BFTSIM_REPS] environment variable (the paper
    uses 100). *)

val pp_summary : Format.formatter -> summary -> unit
(** One line: protocol, latency, messages, then only-if-nonzero suffixes —
    [[n liveness failures]], [[n SAFETY VIOLATIONS]], [[n crashed]],
    [[n timed out]], [[n quarantined]]. *)
