(** Repetition harness: runs one configuration many times over distinct
    seeds and aggregates the paper's two metrics. *)

type summary = {
  config : Config.t;  (** The base configuration (seed of the first run). *)
  reps : int;
  latency_ms : Stats.t;  (** Per-decision time usage across runs. *)
  messages : Stats.t;  (** Per-decision message usage across runs. *)
  liveness_failures : int;
      (** Runs that hit the time/event cap instead of the target.  Their
          capped values are {e included} in the statistics (they are real
          observations of slowness), and also reported here. *)
  safety_violations : int;  (** Should always be 0; counted defensively. *)
  metrics : Bftsim_obs.Metrics.t option;
      (** Per-run registries merged in seed order (counters sum, gauges keep
          the max, histograms add bucket-wise) when [config.telemetry.metrics]
          is on — bit-identical whatever [jobs] was. *)
  results : Controller.result list;  (** Per-run details, first seed first. *)
}

val run_many : ?reps:int -> ?jobs:int -> Config.t -> summary
(** [run_many config] executes [reps] (default {!default_reps}) simulations
    with seeds [config.seed, config.seed + 1, ...], fanned across [jobs]
    domains (default {!Parallel.default_jobs}; [~jobs:1] forces the
    sequential path).  The summary is bit-for-bit identical whatever [jobs]
    is: each replication is deterministic in its seed and results are
    reassembled in seed order. *)

val default_reps : unit -> int
(** 20, overridable with the [BFTSIM_REPS] environment variable (the paper
    uses 100). *)

val pp_summary : Format.formatter -> summary -> unit
