(** The controller (paper §III-A1): wires all modules together and runs one
    simulation.

    It initializes the network, attacker and consensus nodes from a
    {!Config.t}, owns the event queue, dispatches message and time events to
    their modules, advances the simulation clock, and finally computes the
    performance metrics (time usage and message usage, §II-C). *)

open Bftsim_sim

type outcome =
  | Reached_target  (** Every counted honest node hit the decision target. *)
  | Timed_out  (** The simulated-time cap elapsed first: a liveness failure. *)
  | Event_cap  (** The event budget ran out (runaway guard). *)
  | Queue_drained  (** No events left — the protocol went silent. *)
  | Stalled of { last_progress_ms : float }
      (** The liveness watchdog fired: no counted node decided for
          [watchdog * lambda_ms] (and no scheduled chaos step explained the
          silence).  [last_progress_ms] is the last decision's timestamp
          (0 if nothing was ever decided); the rest of the result still
          carries the partial metrics accumulated up to the abort. *)

type result = {
  config : Config.t;
  outcome : outcome;
  time_ms : float;
      (** Simulation time when the run ended (target reached or cap hit). *)
  messages_sent : int;  (** Honest wire messages (§II-C message usage). *)
  bytes_sent : int;
  messages_dropped : int;  (** Suppressed by the attacker. *)
  events_processed : int;
  decisions : (int * string list) list;
      (** Per node, in decision order, keyed by {e logical} id.  Under a
          twins configuration a twinned identity contributes one row per
          physical half (same key twice); everywhere else keys are unique. *)
  safety_ok : bool;
      (** Agreement: for every decision index, all counted honest nodes that
          reached it decided the same value. *)
  safety_violation : string option;
  violations : Invariant.violation list;
      (** Everything the online monitors flagged (agreement, validity,
          crashed-decide), in detection order with timestamps. *)
  corrupted : int list;  (** Nodes adaptively corrupted during the run. *)
  per_decision_latency_ms : float;  (** [time_ms / decisions_target]. *)
  per_decision_messages : float;
  final_views : int array;
      (** Each node's view/round/period when the run ended (-1 = crashed) —
          the protocol's round complexity for this run (paper §II-C notes
          the simulator supports round complexity alongside time usage).
          Indexed by physical id ([Config.physical_n] entries; identical to
          logical ids without twins). *)
  view_samples : (float * int array) list;
      (** (time, view of each node; -1 = crashed), when sampling is on. *)
  trace : Trace.t option;
  metrics : Bftsim_obs.Metrics.t option;
      (** Telemetry registry (counters/gauges/histograms of simulated
          quantities) when [config.telemetry.metrics]; merged across
          replications by [Runner.run_many]. *)
  spans : Bftsim_obs.Tracer.t option;
      (** Ring buffer of typed spans/instants when
          [config.telemetry.tracing]; export with [Bftsim_obs.Exporter].
          Named [spans] because [trace] is the replay/validation event
          log, a different artifact. *)
}

type workload_env = {
  wl_now_ms : unit -> float;  (** Current simulation time. *)
  wl_schedule : delay_ms:float -> (unit -> unit) -> unit;
      (** Deterministic one-shot callback on the simulation clock; the
          workload harness uses it for client arrivals and batch-wait
          timers.  Fires through the ordinary event queue, so workload
          events interleave reproducibly with protocol events. *)
}
(** Capabilities handed to a workload harness at run start. *)

type workload = {
  on_workload_start : workload_env -> unit;
      (** Called after the attacker starts but before any node's
          [on_start] — a leader's first proposal request must already find
          the harness listening. *)
  on_request_proposal :
    node:int ->
    slot:int ->
    width:int ->
    default:Bftsim_protocols.Context.proposal ->
    (Bftsim_protocols.Context.proposal -> bool) ->
    unit;
      (** A leader asks for the payload of [slot] (physical [node]),
          covering [width] consensus slots — chained protocols pack their
          whole pipeline window into one block, slot-windowed protocols
          pass [1] per slot.  The harness may call the continuation
          immediately (pass-through) or defer it until a request batch is
          cut; the protocol's continuation re-checks staleness itself and
          returns whether the proposal was used, [false] signalling the
          harness to re-queue the batch rather than drop it. *)
  on_commit : node:int -> index:int -> value:string -> at_ms:float -> unit;
      (** Every decide by every physical node in simulation order — the
          commit-ack stream from which end-to-end request latency
          (arrival to commit quorum) is measured. *)
}
(** Workload hooks (DESIGN.md §3.16).  Passed to {!run} as an optional
    argument — like [?attacker], not part of {!Config.t}, because the hooks
    close over harness state and configs must stay serializable.  When
    absent, every hook site degenerates to the pre-workload behavior and
    runs are bit-identical to older builds. *)

val run :
  ?cancel:(unit -> bool) ->
  ?delay_override:(src:int -> dst:int -> tag:string -> seq:int -> float option) ->
  ?attacker:Bftsim_attack.Attacker.t ->
  ?workload:workload ->
  Config.t ->
  result
(** Runs one simulation to completion.  [cancel] is polled in the event
    loop (next to the [max_events] and watchdog checks); once it reports
    [true] the run raises [Supervisor.Cancelled] between events — the
    cooperative wall-clock deadline of the supervision layer (DESIGN.md
    §3.13).  Completed runs are never perturbed by it, so determinism
    holds.  [delay_override] replaces the sampled network delay of the
    [seq]-th message on a (src, dst, tag) link when it returns [Some _] —
    the replay mechanism of the validator module.  [attacker] overrides the
    attacker derived from the config, the hook for user-written attack
    scenarios (paper §III-A5).

    The [BFTSIM_FAULT_INJECT] environment variable (e.g.
    ["crash@17;hang@23"]) makes the run with base seed 17 raise at startup
    and the one with seed 23 spin on the wall clock until cancelled — the
    test knob behind the resilience suite and the CI kill-and-resume
    job. *)

val throughput : result -> float
(** Decided values per simulated second ([decisions_target / time]); the
    quantity the computation-cost extension (§III-A3) makes meaningful. *)

val wall_clock_of_run : Config.t -> float * result
(** [wall_clock_of_run config] measures the host time one simulation takes
    (seconds) — the quantity compared against the packet-level baseline in
    Fig. 2. *)

val pp_outcome : Format.formatter -> outcome -> unit

type Timer.payload += Sample_views
(** Internal controller timer driving periodic view sampling; exposed so
    traces render it meaningfully. *)
