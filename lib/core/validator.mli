(** The validator module (paper §III-A6, §III-D).

    Cross-validates a simulation against a ground-truth execution: the
    ground truth supplies the message-delay sequence, the validator replays
    those delays through the simulator and checks that the consensus module
    "produces the same result (i.e., which node agrees on what value)".

    The paper validated against BFTsim traces; those are not available, so
    the ground truth here comes from (a) a previous run of this simulator
    (replay determinism) and (b) the independent packet-level baseline
    simulator (cross-implementation agreement) — see DESIGN.md §4. *)

type report = {
  decisions_match : bool;
  trace_match : bool option;  (** [None] when either side lacks a trace. *)
  divergence : string option;  (** Human-readable first difference. *)
}

val same_decisions : Controller.result -> Controller.result -> bool
(** Agreement of the per-node decision sequences (order-sensitive). *)

val decisions_divergence : Controller.result -> Controller.result -> string option
(** Human-readable first per-node difference between the two decision
    tables, [None] when they agree.  Symmetric: a node that decided in only
    one of the runs — either one — is reported.  Twins-aware: a twinned
    identity's two physical halves are grouped under the one logical id and
    compared half-by-half, never attributed to a phantom extra node. *)

val replay_delays : Trace.t -> src:int -> dst:int -> tag:string -> seq:int -> float option
(** A {!Controller.run} [delay_override] that replays the message delays
    recorded in a ground-truth trace; [None] (fall back to sampling) for
    messages the ground truth never saw. *)

val validate_against : ground_truth:Controller.result -> Config.t -> report
(** Re-runs [config] with delays replayed from the ground truth's trace and
    compares decisions (and traces when both are recorded).
    @raise Invalid_argument if the ground truth carries no trace. *)

val check_determinism : Config.t -> report
(** Runs the configuration twice (same seed, traces on) and verifies the
    executions are identical — the reproducibility guarantee every other
    validation rests on. *)

val pp_report : Format.formatter -> report -> unit
