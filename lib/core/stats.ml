type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
  p99 : float;
}

let percentile samples p =
  if samples = [] then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort Float.compare samples in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then arr.(lo)
    else
      let w = rank -. float_of_int lo in
      (arr.(lo) *. (1. -. w)) +. (arr.(hi) *. w)
  end

let of_list samples =
  if samples = [] then invalid_arg "Stats.of_list: empty";
  let count = List.length samples in
  let fcount = float_of_int count in
  let mean = List.fold_left ( +. ) 0. samples /. fcount in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. samples /. fcount
  in
  {
    count;
    mean;
    stddev = sqrt var;
    min = List.fold_left Float.min infinity samples;
    max = List.fold_left Float.max neg_infinity samples;
    median = percentile samples 50.;
    p95 = percentile samples 95.;
    p99 = percentile samples 99.;
  }

let ci95_halfwidth t =
  if t.count <= 1 then 0. else 1.96 *. t.stddev /. sqrt (float_of_int t.count)

let pp ppf t =
  Format.fprintf ppf "%.1f ± %.1f (n=%d, p50/p95/p99 %.1f/%.1f/%.1f)" t.mean t.stddev t.count
    t.median t.p95 t.p99

let pp_ms_as_s ppf t =
  Format.fprintf ppf "%.2fs ± %.2fs (n=%d, p50/p95/p99 %.2f/%.2f/%.2fs)" (t.mean /. 1000.)
    (t.stddev /. 1000.) t.count (t.median /. 1000.) (t.p95 /. 1000.) (t.p99 /. 1000.)
