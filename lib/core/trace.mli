(** Execution traces (paper §III-A6).

    A trace is the ordered sequence of observable simulation events — sends,
    deliveries, drops, timer firings and decisions.  The validator module
    replays and compares traces; tests use them to assert event-level
    behaviour; the CLI can dump them for inspection. *)

type kind = Send | Deliver | Drop | Timer_fired | Decide

type entry = {
  at_ms : float;
  kind : kind;
  node : int;  (** Acting node ([-1] for the attacker). *)
  peer : int;  (** Counterpart node ([-1] when not applicable). *)
  tag : string;  (** Message/timer tag, or the decided value for [Decide]. *)
  detail : string;  (** Payload rendering for sends/deliveries. *)
}

type t

val create : unit -> t

val record : t -> entry -> unit

val entries : t -> entry list
(** In chronological (recording) order. *)

val length : t -> int

val equal : t -> t -> bool

val first_divergence : t -> t -> (int * entry option * entry option) option
(** [first_divergence a b] is [None] when the traces match, otherwise the
    index of the first differing entry together with both sides' entries at
    that index ([None] = trace ended). *)

val delays : t -> ((int * int * string) * float option list) list
(** Per [(src, dst, tag)] link, the observed message delays in send order —
    the replay table consumed by {!Validator.replay_delays}.  Delays are
    reconstructed as (delivery time - send time) by matching sends with
    deliveries per link in FIFO order; sends the attacker dropped appear as
    [None], keeping positions aligned with sender-side sequence numbers so
    replay stays exact under dropping attackers and chaos schedules. *)

val decisions : t -> (int * string list) list
(** Per node, the decided values in decision order. *)

val pp_entry : Format.formatter -> entry -> unit

val dump : Format.formatter -> t -> unit

val kind_to_string : kind -> string
