(** Simulation configuration.

    The paper's user story: "a user of our simulator needs only to write a
    configuration file specifying the network model and parameters, the BFT
    protocol, and, optionally, the attack scenario" (§III-A).  This record
    is that configuration; {!of_keyvalues} parses the file syntax used by
    the CLI. *)

open Bftsim_net

type attack_spec =
  | No_attack
  | Partition of { first_size : int; start_ms : float; heal_ms : float; drop : bool }
      (** Two-subnet partition attack; [drop = false] buffers cross traffic
          until the heal instead of dropping it. *)
  | Silence of { nodes : int list; at_ms : float }
      (** Fail-stop a set of nodes at a given time (attacker-driven). *)
  | Add_static of { f : int }  (** ADD+ static attack (Fig. 8 left). *)
  | Add_rushing_adaptive of { budget : int option }
      (** ADD+ rushing adaptive attack (Fig. 8 right); [budget] caps the
          corruptions (default: the tolerance bound [f]). *)
  | Extra_delay of { extra_ms : float }  (** Uniform adversarial slowdown. *)

type transport =
  | Direct  (** Broadcast = n point-to-point sends (the paper's model). *)
  | Gossip of { fanout : int }
      (** Epidemic dissemination: the origin sends to [fanout] random peers
          and every first-time receiver re-forwards to [fanout] more — the
          transport blockchain deployments actually use.  Trades extra
          messages and hops for sender bandwidth. *)

type inputs =
  | Distinct  (** Node [i] proposes ["v<i>"] — the general case. *)
  | Same of string  (** Unanimous inputs (validity tests). *)
  | Random_binary  (** Random bit per node (async BA workloads). *)

type telemetry = {
  metrics : bool;
      (** Collect a per-run metrics registry (counters, gauges, sim-time
          histograms), attached to [Controller.result.metrics] and merged
          deterministically across replications by [Runner.run_many]. *)
  tracing : bool;
      (** Record typed spans/instants into a bounded ring buffer
          ([Controller.result.spans]); export with [Bftsim_obs.Exporter]. *)
  trace_capacity : int;  (** Ring-buffer size; oldest entries are shed. *)
}

val default_telemetry : telemetry
(** Everything off, 65536-entry ring — the zero-overhead default. *)

type supervision = {
  deadline_ms : float option;
      (** Per-attempt wall-clock budget for a supervised run; the controller
          polls the supervisor's cancel flag in its event loop, so a
          deadline abandons a run between events and never perturbs a run
          that completes.  [None] = unbounded. *)
  max_retries : int;  (** Additional attempts after a failed one. *)
  quarantine_after : int;
      (** Total failures of one run key before it is quarantined. *)
  retry_base_ms : float;
      (** Base of the deterministic backoff jitter ([Supervisor.retry_delay_ms]);
          [0.] retries immediately. *)
}

val default_supervision : supervision
(** No deadline, one retry, quarantine after 3 failures, no backoff. *)

type t = {
  protocol : string;  (** Registry name, e.g. ["pbft"]. *)
  n : int;
  crashed : int list;
      (** Fail-stop nodes that are never started, realizing the paper's
          "start the system with n-f honest nodes" fail-stop model. *)
  lambda_ms : float;  (** The protocol's assumed delay bound / timeout. *)
  delay : Delay_model.t;  (** The network's actual delay distribution. *)
  seed : int;
  attack : attack_spec;
  decisions_target : int;
      (** Stop once every counted honest node has this many decisions:
          10 for pipelined protocols, 1 otherwise (paper §IV). *)
  max_time_ms : float;  (** Liveness cap: give up and report failure. *)
  max_events : int;  (** Hard safety cap on processed events. *)
  inputs : inputs;
  transport : transport;
  costs : Cost_model.t;
      (** Per-message computation costs; {!Cost_model.zero} reproduces the
          paper's cost-free model, anything else enables the throughput
          extension of §III-A3. *)
  record_trace : bool;
  view_sample_ms : float option;
      (** If set, sample every node's view at this period (Fig. 9). *)
  chaos : Bftsim_attack.Fault_schedule.t;
      (** Timed fault plan (crashes, recoveries, partitions, bursts, GST
          shifts); compiled into an attacker and composed with [attack].
          Kept normalized (sorted by time). *)
  twins : Bftsim_attack.Twins_schedule.t option;
      (** Twins-style attacker (DESIGN.md §3.14): each listed identity runs a
          duplicate replica sharing its credentials, under a round-indexed
          partition schedule and optional per-view leader pinning.  [None] =
          ordinary run.  Requires [Direct] transport and no node-addressed
          [attack]. *)
  watchdog : float option;
      (** Liveness watchdog: abort with {!Controller.outcome.Stalled} once
          no counted node has decided for [k * lambda_ms] (and no scheduled
          chaos step intervened).  [None] disables the watchdog. *)
  check_validity : bool;
      (** Enable the online validity monitor (decided values must be
          proposed values).  Off by default: chained protocols decide block
          digests, not raw inputs, and would trip it spuriously. *)
  naive_reset : Bftsim_protocols.Context.naive_reset_policy;
      (** HotStuff+NS pacemaker ablation knob (DESIGN.md §3.5), plumbed to
          the nodes through their context.  Per-run configuration rather
          than a process-global setter so concurrent runs cannot race;
          defaulted from the BFTSIM_NAIVE_RESET environment variable
          ([commit] (default) | [never] | [view]). *)
  telemetry : telemetry;
      (** Observability switches (DESIGN.md §3.11).  Off by default; the
          disabled path costs a handful of dead-cell stores per event. *)
  supervision : supervision;
      (** Campaign-supervision knobs (DESIGN.md §3.13): wall-clock deadline,
          retry budget, quarantine threshold.  Only consulted by the
          supervised campaign drivers ([Runner.run_many],
          [Conformance.Harness]); a bare [Controller.run] ignores them. *)
  zones : string option;
      (** Geographic zone spec ([geo3] | [geo5] | [uniform:<k>@<rtt>], see
          {!Bftsim_net.Topology.zones_of_spec}): replicas are placed
          round-robin across named zones and every message pays the one-way
          inter-zone latency on top of the sampled delay, which becomes the
          jitter.  [None] = the classic single-site model. *)
  bandwidth_mbps : float option;
      (** Per-sender egress bandwidth (Mbps): messages serialize FIFO
          through the sender's link, so message size becomes delay and
          congestion.  [None] = infinite bandwidth (sizes cost nothing). *)
  pipeline : int;
      (** Consensus heights a leader may keep in flight at once (slot-based
          protocols; consumed through [Context.pipeline_depth]).  [1] (the
          default) reproduces the classic sequential behavior bit for bit. *)
  loss : Bftsim_net.Loss_model.t;
      (** Stochastic per-link network faults — independent drop ([loss]
          key), duplication ([dup]), bounded reordering ([reorder], ms) and
          Gilbert–Elliott burst loss ([burst_loss = "p_gb,p_bg,p_bad"]) —
          applied after any attacker verdict, drawn from a dedicated RNG
          stream.  {!Bftsim_net.Loss_model.none} (the default) keeps the
          legacy reliable-delivery path bit for bit. *)
  reliable : bool;
      (** Run protocol traffic over the simulated reliable channel
          (DESIGN.md fault-model table): sequence-numbered frames, acks,
          retransmission with exponential backoff + deterministic jitter and
          a retry cap, dedup on receive.  Channel state is modeled as
          WAL-backed, so it survives a [restart@] chaos event.  [false]
          (the default) is the exact legacy path.  Requires [Direct]
          transport. *)
  retrans_base_ms : float;
      (** Base retransmission timeout; attempt [k] fires after
          [base * backoff^k] plus deterministic jitter.  [0.] (the default)
          derives the base as [2 * lambda_ms] at run time. *)
  retrans_backoff : float;  (** Exponential backoff factor; must be >= 1. *)
  retrans_max : int;
      (** Retransmission attempts per frame before the channel gives up
          (the original send always happens). *)
  wal_ms : float;
      (** Cost-modeled latency of one simulated WAL write
          ([Context.persist]): each write occupies the writing node's
          sequential CPU for this long, delaying its subsequent sends.
          [0.] (the default) keeps persistence free and the legacy cost
          path exact. *)
  stall_ms : float option;
      (** Absolute liveness-watchdog stall threshold in simulated ms.  When
          set it arms the watchdog with an absolute threshold, overriding
          the [watchdog * lambda_ms] product — lossy runs make legitimate
          progress slower, so give them a wider leash instead of disabling
          the watchdog.  [None] (the default) keeps the multiplier
          semantics. *)
}

val validate : t -> unit
(** Full consistency check: positive [lambda_ms] / caps / decision target,
    crashed ids in range and unique and within the protocol model's
    tolerance ((n-1)/2 crash faults under synchrony, (n-1)/3 otherwise),
    well-formed attack windows (partition [heal_ms > start_ms >= 0],
    non-negative silence onset / extra delay, in-range silenced ids),
    well-formed chaos schedule over the {e physical} replica set, positive
    watchdog multiplier, and a consistent twins schedule (twinned ids
    counted against the tolerance together with [crashed], [Direct]
    transport, no node-addressed attack).  Run by {!make} and again at
    [Controller.run] entry so hand-built records are rejected with a
    descriptive [Invalid_argument] rather than silently misbehaving.
    Chaos-schedule crashes are deliberately {e not} counted against the
    tolerance bound — over-crashing is a legitimate chaos experiment; the
    watchdog turns the resulting stall into a result. *)

val physical_n : t -> int
(** Replicas actually instantiated: [n] plus one duplicate per twinned
    identity ({!Bftsim_attack.Twins_schedule.physical_n}). *)

val make :
  ?n:int ->
  ?crashed:int list ->
  ?lambda_ms:float ->
  ?delay:Delay_model.t ->
  ?seed:int ->
  ?attack:attack_spec ->
  ?decisions_target:int ->
  ?max_time_ms:float ->
  ?max_events:int ->
  ?inputs:inputs ->
  ?transport:transport ->
  ?costs:Cost_model.t ->
  ?record_trace:bool ->
  ?view_sample_ms:float ->
  ?chaos:Bftsim_attack.Fault_schedule.t ->
  ?twins:Bftsim_attack.Twins_schedule.t ->
  ?watchdog:float ->
  ?check_validity:bool ->
  ?naive_reset:Bftsim_protocols.Context.naive_reset_policy ->
  ?telemetry:telemetry ->
  ?supervision:supervision ->
  ?zones:string ->
  ?bandwidth_mbps:float ->
  ?pipeline:int ->
  ?loss:Bftsim_net.Loss_model.t ->
  ?reliable:bool ->
  ?retrans_base_ms:float ->
  ?retrans_backoff:float ->
  ?retrans_max:int ->
  ?wal_ms:float ->
  ?stall_ms:float ->
  string ->
  t
(** [make protocol] builds a configuration with the paper's defaults:
    [n = 16], [lambda = 1000], delays [N(250, 50)], no attack, no crashes,
    decision target derived from the protocol's pipelining, 10-minute
    simulated-time cap.  @raise Invalid_argument on an unknown protocol or
    inconsistent parameters. *)

val input_for : t -> int -> string
(** The input value node [i] starts with under this configuration. *)

val honest_excluding_crashed : t -> int list
(** Node ids that are started (not in [crashed]). *)

val describe : t -> string
(** One-line summary used in tables and logs. *)

val describe_attack : attack_spec -> string

val attack_to_cli_string : attack_spec -> string
(** Parseable rendering (inverse of the [attack] key syntax), unlike
    {!describe_attack} which renders the human notation. *)

val inputs_to_cli_string : inputs -> string

val of_keyvalues : (string * string) list -> (t, string) result
(** Builds a config from [key = value] pairs (the CLI's config-file
    contents).  Recognized keys: [protocol], [n], [lambda], [delay],
    [seed], [crashed] (comma-separated ids), [attack]
    ([none] | [partition:<first>,<start>,<heal>[,delay]] |
    [silence:<ids>@<ms>] | [add-static:<f>] | [add-adaptive] |
    [extra-delay:<ms>]), [target], [max_time_ms], [inputs]
    ([distinct] | [same:<v>] | [binary]), [chaos] (a
    {!Bftsim_attack.Fault_schedule.of_string} plan, e.g.
    ["crash:3@0;recover:3@15000"]), [watchdog] (the stall multiplier
    [k], in units of [lambda_ms]), [naive_reset]
    ([commit] | [never] | [view]), [max_events], [metrics] / [tracing]
    (booleans), [trace_capacity] (ring-buffer entries), [zones]
    ([geo3] | [geo5] | [uniform:<k>@<rtt>]), [bandwidth] (per-sender
    egress Mbps), [pipeline] (heights in flight), the lossy-network and
    recovery family: [loss] / [dup] (probabilities), [reorder] (window
    ms), [burst_loss] (["p_gb,p_bg,p_bad"]), [reliable] (boolean),
    [retrans_base_ms] / [retrans_backoff] / [retrans_max], [wal_ms]
    (simulated WAL write latency), [stall_ms] (absolute watchdog stall
    threshold), and the twins
    family: [twins] (comma-separated logical ids to duplicate),
    [twins_rounds] (per-round physical-id partitions, e.g.
    ["0,1,4|2,3;-;0,4|1,2,3"]), [twins_leaders] (per-view logical leader
    ids) and [twins_round_ms] (round duration, default [4 * lambda]). *)

val to_keyvalues : t -> (string * string) list
(** Inverse of {!of_keyvalues}: the configuration as parseable key = value
    pairs (the repro-bundle format).  Round-trips through {!of_keyvalues}
    for every field that has file syntax; per-invocation switches
    ([record_trace], [view_sample_ms]) are omitted. *)
