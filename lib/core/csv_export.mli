(** CSV export of simulation results.

    The paper's workflow plots figures from simulator output; this module
    renders per-run results and per-configuration summaries as CSV so any
    plotting tool can consume them ([bftsim sweep --csv out.csv]). *)

val result_header : string
(** Column names for {!result_row}. *)

val result_row : Controller.result -> string
(** One line per run: protocol, n, seed, lambda, delay, attack, outcome,
    time_ms, per-decision latency/messages, messages, bytes, dropped,
    events, max final view, safety, liveness-failure flag and the online
    monitors' violation count.  Implemented as {!digest_row} over the
    result's digest, so live and journal-resumed exports coincide. *)

val digest_row : Config.t -> Journal.digest -> string
(** {!result_row} from a journal digest plus its cell's configuration
    (the digest supplies the per-rep seed) — the form resumed campaigns
    use, where no live [Controller.result] exists. *)

val outcome_to_string : Controller.outcome -> string
(** Alias of [Journal.outcome_class]. *)

val summary_header : string

val summary_row : Runner.summary -> string
(** One line per configuration: latency and message
    mean/stddev/min/max/p50/p95/p99, liveness failures, safety
    violations. *)

val escape : string -> string
(** RFC-4180 quoting for fields containing commas, quotes or newlines. *)

val write_file : path:string -> header:string -> rows:string list -> unit
(** Writes header + rows; overwrites [path]. *)
