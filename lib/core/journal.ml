(* Append-only JSONL campaign journal (DESIGN.md §3.13).

   One JSON object per line: a header first, then Run / Check / Failure
   events.  Appends flush before returning so a SIGKILL loses at most the
   line being written; [load] drops a torn final line for the same reason.
   The byte-identical-resume contract lives in the encoding: digests go
   through [Bftsim_obs.Json], whose float printer round-trips exactly, and
   the campaign drivers consume digests on the live path too. *)

module Json = Bftsim_obs.Json
module Sha256 = Bftsim_crypto.Sha256

let format_name = "bftsim-campaign"
let version = 1

type digest = {
  rep : int;
  seed : int;
  outcome : string;
  last_progress_ms : float option;
  time_ms : float;
  latency_ms : float;
  messages : float;
  messages_sent : int;
  bytes_sent : int;
  messages_dropped : int;
  events : int;
  max_view : int;
  safety_ok : bool;
  violations : int;
  metrics : Json.t option;
}

let outcome_class = function
  | Controller.Reached_target -> "reached-target"
  | Controller.Timed_out -> "timed-out"
  | Controller.Event_cap -> "event-cap"
  | Controller.Queue_drained -> "queue-drained"
  | Controller.Stalled _ -> "stalled"

(* The printer spells integral floats without a decimal point, which the
   parser reads back as [Int]: one print→parse pass makes a live digest
   structurally equal to its journal round trip. *)
let canonical_json j =
  match Json.of_string (Json.to_string j) with Ok v -> v | Error _ -> j

let digest_of_result ~rep (r : Controller.result) =
  {
    rep;
    seed = r.Controller.config.Config.seed;
    outcome = outcome_class r.Controller.outcome;
    last_progress_ms =
      (match r.Controller.outcome with
      | Controller.Stalled { last_progress_ms } -> Some last_progress_ms
      | _ -> None);
    time_ms = r.Controller.time_ms;
    latency_ms = r.Controller.per_decision_latency_ms;
    messages = r.Controller.per_decision_messages;
    messages_sent = r.Controller.messages_sent;
    bytes_sent = r.Controller.bytes_sent;
    messages_dropped = r.Controller.messages_dropped;
    events = r.Controller.events_processed;
    max_view = Array.fold_left Stdlib.max (-1) r.Controller.final_views;
    safety_ok = r.Controller.safety_ok;
    violations = List.length r.Controller.violations;
    metrics =
      Option.map (fun m -> canonical_json (Bftsim_obs.Metrics.to_json m)) r.Controller.metrics;
  }

type event =
  | Run of { cell : string; digest : digest }
  | Check of { cell : string; index : int }
  | Note of { cell : string; body : Json.t }
  | Failure of {
      cell : string;
      rep : int;
      attempt : int;
      wall_ms : float;
      kind : string;
      detail : string;
      backtrace : string;
    }

(* {1 Fingerprints} *)

let cell_of_config config =
  Config.to_keyvalues config
  |> List.map (fun (k, v) -> k ^ "=" ^ v)
  |> String.concat "\n"
  |> Sha256.digest_string |> Sha256.to_hex

let fingerprint ~mode ~reps configs =
  Printf.sprintf "%s|%d|%s" mode reps (String.concat "|" (List.map cell_of_config configs))
  |> Sha256.digest_string |> Sha256.to_hex

(* {1 Encoding} *)

let digest_to_json d =
  Json.Assoc
    ([
       ("rep", Json.Int d.rep);
       ("seed", Json.Int d.seed);
       ("outcome", Json.String d.outcome);
     ]
    @ (match d.last_progress_ms with
      | None -> []
      | Some p -> [ ("last_progress_ms", Json.Float p) ])
    @ [
        ("time_ms", Json.Float d.time_ms);
        ("latency_ms", Json.Float d.latency_ms);
        ("messages", Json.Float d.messages);
        ("messages_sent", Json.Int d.messages_sent);
        ("bytes_sent", Json.Int d.bytes_sent);
        ("messages_dropped", Json.Int d.messages_dropped);
        ("events", Json.Int d.events);
        ("max_view", Json.Int d.max_view);
        ("safety_ok", Json.Bool d.safety_ok);
        ("violations", Json.Int d.violations);
      ]
    @ match d.metrics with None -> [] | Some m -> [ ("metrics", m) ])

let event_to_json = function
  | Run { cell; digest } ->
    Json.Assoc
      [ ("run", Json.Assoc [ ("cell", Json.String cell); ("digest", digest_to_json digest) ]) ]
  | Check { cell; index } ->
    Json.Assoc [ ("check", Json.Assoc [ ("cell", Json.String cell); ("index", Json.Int index) ]) ]
  | Note { cell; body } ->
    Json.Assoc [ ("note", Json.Assoc [ ("cell", Json.String cell); ("body", body) ]) ]
  | Failure { cell; rep; attempt; wall_ms; kind; detail; backtrace } ->
    Json.Assoc
      [
        ( "failure",
          Json.Assoc
            [
              ("cell", Json.String cell);
              ("rep", Json.Int rep);
              ("attempt", Json.Int attempt);
              ("wall_ms", Json.Float wall_ms);
              ("kind", Json.String kind);
              ("detail", Json.String detail);
              ("backtrace", Json.String backtrace);
            ] );
      ]

(* {1 Decoding} *)

let ( let* ) r f = Result.bind r f

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "journal: missing field %S" name)

let int_field name json =
  let* v = field name json in
  match v with Json.Int i -> Ok i | _ -> Error (Printf.sprintf "journal: %S is not an int" name)

let float_field name json =
  let* v = field name json in
  match Json.to_number v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "journal: %S is not a number" name)

let string_field name json =
  let* v = field name json in
  match v with
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "journal: %S is not a string" name)

let bool_field name json =
  let* v = field name json in
  match v with Json.Bool b -> Ok b | _ -> Error (Printf.sprintf "journal: %S is not a bool" name)

let digest_of_json json =
  let* rep = int_field "rep" json in
  let* seed = int_field "seed" json in
  let* outcome = string_field "outcome" json in
  let last_progress_ms =
    Option.bind (Json.member "last_progress_ms" json) Json.to_number
  in
  let* time_ms = float_field "time_ms" json in
  let* latency_ms = float_field "latency_ms" json in
  let* messages = float_field "messages" json in
  let* messages_sent = int_field "messages_sent" json in
  let* bytes_sent = int_field "bytes_sent" json in
  let* messages_dropped = int_field "messages_dropped" json in
  let* events = int_field "events" json in
  let* max_view = int_field "max_view" json in
  let* safety_ok = bool_field "safety_ok" json in
  let* violations = int_field "violations" json in
  let metrics = Json.member "metrics" json in
  Ok
    {
      rep;
      seed;
      outcome;
      last_progress_ms;
      time_ms;
      latency_ms;
      messages;
      messages_sent;
      bytes_sent;
      messages_dropped;
      events;
      max_view;
      safety_ok;
      violations;
      metrics;
    }

let event_of_json json =
  match
    ( Json.member "run" json,
      Json.member "check" json,
      Json.member "note" json,
      Json.member "failure" json )
  with
  | Some body, _, _, _ ->
    let* cell = string_field "cell" body in
    let* dj = field "digest" body in
    let* digest = digest_of_json dj in
    Ok (Run { cell; digest })
  | None, Some body, _, _ ->
    let* cell = string_field "cell" body in
    let* index = int_field "index" body in
    Ok (Check { cell; index })
  | None, None, Some body, _ ->
    let* cell = string_field "cell" body in
    let* b = field "body" body in
    Ok (Note { cell; body = b })
  | None, None, None, Some body ->
    let* cell = string_field "cell" body in
    let* rep = int_field "rep" body in
    let* attempt = int_field "attempt" body in
    let* wall_ms = float_field "wall_ms" body in
    let* kind = string_field "kind" body in
    let* detail = string_field "detail" body in
    let* backtrace = string_field "backtrace" body in
    Ok (Failure { cell; rep; attempt; wall_ms; kind; detail; backtrace })
  | None, None, None, None -> Error "journal: line is neither run, check, note nor failure"

(* {1 Writing} *)

type t = { oc : out_channel; lock : Mutex.t }

let write_line t json =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      output_string t.oc (Json.to_string json);
      output_char t.oc '\n';
      (* Flush per event: a SIGKILL must lose at most the line in flight. *)
      flush t.oc)

let header_json ~fingerprint =
  Json.Assoc
    [
      ("journal", Json.String format_name);
      ("version", Json.Int version);
      ("fingerprint", Json.String fingerprint);
    ]

let create ~fingerprint path =
  let oc = open_out path in
  let t = { oc; lock = Mutex.create () } in
  write_line t (header_json ~fingerprint);
  t

let append t event = write_line t (event_to_json event)
let close t = close_out t.oc

(* {1 Reading} *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let parse_header json =
  match Json.member "journal" json with
  | Some (Json.String name) when name = format_name -> (
    match Json.member "fingerprint" json with
    | Some (Json.String fp) -> Ok fp
    | _ -> Error "journal: header has no fingerprint")
  | Some _ -> Error "journal: not a bftsim campaign journal"
  | None -> Error "journal: missing header line"

let load path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "journal: no such file: %s" path)
  else
    match read_lines path with
    | [] -> Error (Printf.sprintf "journal: empty file: %s" path)
    | header :: rest -> (
      let* hj =
        Result.map_error (fun e -> "journal: bad header: " ^ e) (Json.of_string header)
      in
      let* fp = parse_header hj in
      let n = List.length rest in
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | line :: tl -> (
          match Result.bind (Json.of_string line) event_of_json with
          | Ok ev -> go (i + 1) (ev :: acc) tl
          | Error e ->
            (* The final line may have been torn by a SIGKILL mid-append:
               drop it.  Anywhere else, corruption is fatal. *)
            if i = n - 1 then Ok (List.rev acc)
            else Error (Printf.sprintf "journal: line %d: %s" (i + 2) e))
      in
      let* events = go 0 [] rest in
      Ok (fp, events))

let abbrev fp = if String.length fp > 12 then String.sub fp 0 12 ^ "…" else fp

(* A SIGKILL mid-append leaves a final line without its newline; appending
   after it would fuse the next record onto the torn bytes.  Trim back to
   the last complete line before reopening. *)
let truncate_torn_tail path =
  let len = (Unix.stat path).Unix.st_size in
  if len > 0 then begin
    let ic = open_in_bin path in
    let last_newline =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go i last =
            if i >= len then last
            else go (i + 1) (if input_char ic = '\n' then i + 1 else last)
          in
          go 0 0)
    in
    if last_newline < len then Unix.truncate path last_newline
  end

let resume ~fingerprint path =
  let* fp, events = load path in
  if fp <> fingerprint then
    Error
      (Printf.sprintf
         "journal: fingerprint mismatch (journal %s, campaign %s): refusing to resume a \
          different campaign"
         (abbrev fp) (abbrev fingerprint))
  else begin
    truncate_torn_tail path;
    let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
    Ok ({ oc; lock = Mutex.create () }, events)
  end

(* {1 Queries} *)

let runs events ~cell =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (function
      | Run r when r.cell = cell && not (Hashtbl.mem seen r.digest.rep) ->
        Hashtbl.add seen r.digest.rep ();
        Some (r.digest.rep, r.digest)
      | _ -> None)
    events

let checks events ~cell =
  List.filter_map (function Check c when c.cell = cell -> Some c.index | _ -> None) events
  |> List.sort_uniq Stdlib.compare

let notes events ~cell =
  List.filter_map (function Note n when n.cell = cell -> Some n.body | _ -> None) events
