open Bftsim_sim
open Bftsim_net
module Attack = Bftsim_attack
module Protocols = Bftsim_protocols

type outcome =
  | Reached_target
  | Timed_out
  | Event_cap
  | Queue_drained
  | Stalled of { last_progress_ms : float }

type result = {
  config : Config.t;
  outcome : outcome;
  time_ms : float;
  messages_sent : int;
  bytes_sent : int;
  messages_dropped : int;
  events_processed : int;
  decisions : (int * string list) list;
  safety_ok : bool;
  safety_violation : string option;
  violations : Invariant.violation list;
  corrupted : int list;
  per_decision_latency_ms : float;
  per_decision_messages : float;
  final_views : int array;
  view_samples : (float * int array) list;
  trace : Trace.t option;
}

type Timer.payload += Sample_views

type Message.payload +=
  | Gossip_frame of { origin : int; gid : int; tag : string; size : int; inner : Message.payload }
      (** Epidemic-transport envelope: first-time receivers unwrap [inner]
          for their protocol and re-forward the frame to [fanout] peers. *)

type event =
  | Deliver of Message.t
  | Deliver_verified of Message.t
  | Node_timer of Timer.t
  | Attacker_timer of Timer.t

let pp_outcome ppf = function
  | Reached_target -> Format.pp_print_string ppf "reached-target"
  | Timed_out -> Format.pp_print_string ppf "timed-out"
  | Event_cap -> Format.pp_print_string ppf "event-cap"
  | Queue_drained -> Format.pp_print_string ppf "queue-drained"
  | Stalled { last_progress_ms } ->
    Format.fprintf ppf "stalled(last-progress=%gms)" last_progress_ms

let build_attacker (config : Config.t) =
  match config.attack with
  | Config.No_attack -> Attack.Attacker.passthrough
  | Config.Partition { first_size; start_ms; heal_ms; drop } ->
    let mode =
      if drop then Attack.Partition_attack.Drop_cross_traffic
      else Attack.Partition_attack.Delay_until_heal { jitter_ms = 10. }
    in
    Attack.Partition_attack.two_subnets ~n:config.n ~first_size ~start_ms ~heal_ms mode
  | Config.Silence { nodes; at_ms } -> Attack.Failstop.at_time ~nodes ~at_ms
  | Config.Add_static { f } -> Protocols.Addplus_attacks.static ~f
  | Config.Add_rushing_adaptive { budget } -> Protocols.Addplus_attacks.rushing_adaptive ?budget ()
  | Config.Extra_delay { extra_ms } -> Attack.Attacker.delay_all ~extra_ms

(* Agreement check: decision sequences of all counted honest nodes must
   agree index-wise (they may have reached different lengths). *)
let check_safety ~counted decisions =
  let violation = ref None in
  let by_index : (int, int * string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (node, values) ->
      if counted node then
        List.iteri
          (fun k value ->
            match Hashtbl.find_opt by_index k with
            | None -> Hashtbl.replace by_index k (node, value)
            | Some (other, expected) ->
              if (not (String.equal expected value)) && !violation = None then
                violation :=
                  Some
                    (Printf.sprintf "decision %d: node %d decided %S but node %d decided %S" k node
                       value other expected))
          values)
    decisions;
  !violation

let run ?delay_override ?attacker:attacker_override (config : Config.t) =
  Config.validate config;
  let (module P : Protocols.Protocol_intf.S) = Protocols.Registry.find_exn config.protocol in
  let n = config.n in
  let f = Protocols.Quorum.max_faulty n in
  let root_rng = Rng.create config.seed in
  let net_rng = Rng.split root_rng in
  let attacker_rng = Rng.split root_rng in
  let node_rngs = Array.init n (fun _ -> Rng.split root_rng) in
  let queue : event Event_queue.t = Event_queue.create () in
  Simlog.set_now (fun () -> Event_queue.now queue);
  let topology = Topology.fully_connected n in
  let network = Network.create ~delay:config.delay ~topology ~rng:net_rng in
  let trace = if config.record_trace then Some (Trace.create ()) else None in
  let record kind ~node ~peer ~tag ~detail =
    match trace with
    | None -> ()
    | Some t ->
      Trace.record t
        { at_ms = Time.to_ms (Event_queue.now queue); kind; node; peer; tag; detail }
  in
  let crashed = Array.make n false in
  List.iter (fun i -> crashed.(i) <- true) config.crashed;
  let corrupted = Array.make n false in
  let corrupted_order = ref [] in
  let msg_counter = ref 0 in
  let timer_counter = ref 0 in
  (* Timer bookkeeping: [pending] holds every scheduled-but-not-yet-fired
     id, [cancelled] the pending ids whose owner revoked them.  Both are
     pruned when the timer event is consumed, so neither grows with run
     length — only with the number of in-flight timers.  Cancelling an id
     that already fired is a no-op (nothing is pending), which is what
     keeps [cancelled] from leaking. *)
  let pending_timers : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let cancelled : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let consume_timer id =
    Hashtbl.remove pending_timers id;
    if Hashtbl.mem cancelled id then begin
      Hashtbl.remove cancelled id;
      false
    end
    else true
  in
  let dropped = ref 0 in
  let decisions : string list ref array = Array.init n (fun _ -> ref []) in
  (* Per-node decision counts, maintained incrementally so the hot
     decide/check_target path never walks the accumulating lists. *)
  let decision_counts = Array.make n 0 in
  let finished = ref None in
  let outcome = ref Queue_drained in
  let view_samples = ref [] in
  let chaos = Attack.Fault_schedule.normalize config.chaos in
  let attacker =
    let base = match attacker_override with Some a -> a | None -> build_attacker config in
    match chaos with
    | [] -> base
    | _ ->
      (* Chaos first: a message a crashed source never sent must not reach
         the scenario attacker either. *)
      Attack.Attacker.compose [ Attack.Fault_schedule.to_attacker chaos; base ]
  in
  (* Throughput extension (§III-A3): sequential per-node CPUs charged for
     signing and verification; zero costs short-circuit to the paper's
     cost-free behaviour. *)
  let costs = config.Config.costs in
  let cpus = Array.init n (fun _ -> Cost_model.make_cpu ()) in
  let gossip_rng = Rng.split root_rng in
  let gossip_counter = ref 0 in
  (* Per node: gossip frames already processed (origin, gid). *)
  let gossip_seen : (int * int, unit) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 64) in

  (* Nodes the chaos plan fail-stops and never restarts can no more reach
     the decision target than config-crashed ones; recovered nodes stay
     counted and must catch up. *)
  let chaos_gone =
    Array.init n (fun node -> Attack.Fault_schedule.crashed_at chaos ~node ~at_ms:Float.infinity)
  in
  let counted node = (not crashed.(node)) && (not corrupted.(node)) && not chaos_gone.(node) in
  (* Per-index agreement presumes complete logs; a node the plan crashes
     and restarts misses the decisions made while it was down (there is no
     state transfer), so only never-crashed nodes are index-aligned. *)
  let aligned node = counted node && not (Attack.Fault_schedule.ever_crashed chaos ~node) in
  let last_progress = ref 0. in
  let monitor =
    Invariant.create ~counted ~aligned
      ~crashed_now:(fun ~node ~at_ms ->
        crashed.(node) || Attack.Fault_schedule.crashed_at chaos ~node ~at_ms)
      ?valid_values:
        (if config.check_validity then Some (List.init n (Config.input_for config)) else None)
      ()
  in
  let check_target () =
    if !finished = None then begin
      let all_done = ref true in
      for i = 0 to n - 1 do
        if counted i && decision_counts.(i) < config.decisions_target then all_done := false
      done;
      if !all_done then begin
        finished := Some (Time.to_ms (Event_queue.now queue));
        outcome := Reached_target
      end
    end
  in

  (* Replay support: per-link send counters feeding the override. *)
  let link_seq : (int * int * string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let next_link_seq key =
    match Hashtbl.find_opt link_seq key with
    | Some r ->
      incr r;
      !r
    | None ->
      Hashtbl.replace link_seq key (ref 0);
      0
  in

  let attacker_env =
    {
      Attack.Attacker.n;
      f;
        lambda_ms = config.lambda_ms;
        now = (fun () -> Event_queue.now queue);
        rng = attacker_rng;
        topology;
        set_timer =
          (fun ~delay_ms ~tag payload ->
            incr timer_counter;
            let id = !timer_counter in
            Hashtbl.replace pending_timers id ();
            let deadline = Time.add_ms (Event_queue.now queue) (Float.max 0. delay_ms) in
            let timer = { Timer.id; owner = Timer.attacker_owner; deadline; tag; payload } in
            Event_queue.schedule queue ~at:deadline (Attacker_timer timer);
            id);
        inject =
          (fun ~src ~dst ~delay_ms ~tag ~size payload ->
            incr msg_counter;
            let msg =
              Message.make ~id:!msg_counter ~src ~dst ~sent_at:(Event_queue.now queue) ~tag ~size
                payload
            in
            msg.Message.delay_ms <- Float.max 0. delay_ms;
            record Trace.Send ~node:src ~peer:dst ~tag ~detail:"<injected>";
            Event_queue.schedule queue ~at:(Message.arrival_time msg) (Deliver msg));
        corrupt =
          (fun node ->
            if node < 0 || node >= n || corrupted.(node) then false
            else if List.length !corrupted_order >= f then false
            else begin
              corrupted.(node) <- true;
              corrupted_order := node :: !corrupted_order;
              Simlog.info "attacker corrupts node %d" node;
              true
            end);
        is_corrupted = (fun node -> node >= 0 && node < n && corrupted.(node));
        corrupted = (fun () -> List.sort compare !corrupted_order);
        override_delay = Network.override_delay network;
    }
  in

  let route (msg : Message.t) =
    Network.assign_delay network msg;
    (* The recorded delay is end-to-end (sample + crypto cost + attacker
       modifications), so in replay mode it is applied last — after the
       attacker has run (its verdicts and RNG draws must still happen) —
       and the sequence number advances for every send, dropped or not, to
       stay aligned with the recording. *)
    let replay_delay =
      match delay_override with
      | None -> None
      | Some override ->
        let seq = next_link_seq (msg.src, msg.dst, msg.tag) in
        override ~src:msg.src ~dst:msg.dst ~tag:msg.tag ~seq
    in
    record Trace.Send ~node:msg.src ~peer:msg.dst ~tag:msg.tag
      ~detail:(Message.payload_to_string msg.payload);
    (if costs.Cost_model.sign_ms > 0. && msg.src >= 0 && msg.src < n then begin
       let now = Time.to_ms (Event_queue.now queue) in
       let finish = Cost_model.charge cpus.(msg.src) ~now_ms:now ~cost_ms:costs.Cost_model.sign_ms in
       msg.Message.delay_ms <- msg.Message.delay_ms +. (finish -. now)
     end);
    match attacker.Attack.Attacker.attack attacker_env msg with
    | Attack.Attacker.Drop ->
      incr dropped;
      record Trace.Drop ~node:msg.src ~peer:msg.dst ~tag:msg.tag ~detail:""
    | Attack.Attacker.Deliver ->
      (match replay_delay with Some delay_ms -> msg.Message.delay_ms <- delay_ms | None -> ());
      Event_queue.schedule queue ~at:(Message.arrival_time msg) (Deliver msg)
  in

  let send_from src ~dst ~tag ~size payload =
    if not crashed.(src) then begin
      incr msg_counter;
      let msg =
        Message.make ~id:!msg_counter ~src ~dst ~sent_at:(Event_queue.now queue) ~tag ~size payload
      in
      route msg
    end
  in

  (* Gossip transport: forward a frame from [src] to [fanout] random peers
     (never back to [src] itself). *)
  let gossip_forward src (frame : Message.payload) ~tag ~size ~fanout =
    let chosen = Hashtbl.create 8 in
    let attempts = ref 0 in
    while Hashtbl.length chosen < Stdlib.min fanout (n - 1) && !attempts < 16 * n do
      incr attempts;
      let peer = Rng.int gossip_rng n in
      if peer <> src && not (Hashtbl.mem chosen peer) then Hashtbl.replace chosen peer ()
    done;
    Hashtbl.iter (fun peer () -> send_from src ~dst:peer ~tag ~size frame) chosen
  in

  let broadcast_from src ~include_self ~tag ~size payload =
    match config.Config.transport with
    | Config.Direct ->
      for dst = 0 to n - 1 do
        if include_self || dst <> src then send_from src ~dst ~tag ~size payload
      done
    | Config.Gossip { fanout } ->
      if include_self then send_from src ~dst:src ~tag ~size payload;
      incr gossip_counter;
      let gid = !gossip_counter in
      (* The origin has trivially "seen" its own frame. *)
      Hashtbl.replace gossip_seen.(src) (src, gid) ();
      gossip_forward src
        (Gossip_frame { origin = src; gid; tag; size; inner = payload })
        ~tag ~size ~fanout
  in

  let make_ctx node_id =
    {
      Protocols.Context.node_id;
      n;
      f;
      lambda_ms = config.lambda_ms;
      seed = config.seed;
      input = Config.input_for config node_id;
      naive_reset = config.Config.naive_reset;
      rng = node_rngs.(node_id);
      now = (fun () -> Event_queue.now queue);
      send_raw = (fun ~dst ~tag ~size payload -> send_from node_id ~dst ~tag ~size payload);
      broadcast_raw =
        (fun ~include_self ~tag ~size payload ->
          broadcast_from node_id ~include_self ~tag ~size payload);
      set_timer =
        (fun ~delay_ms ~tag payload ->
          incr timer_counter;
          let id = !timer_counter in
          Hashtbl.replace pending_timers id ();
          let deadline = Time.add_ms (Event_queue.now queue) (Float.max 0. delay_ms) in
          let timer = { Timer.id; owner = node_id; deadline; tag; payload } in
          Event_queue.schedule queue ~at:deadline (Node_timer timer);
          id);
      cancel_timer =
        (fun id -> if Hashtbl.mem pending_timers id then Hashtbl.replace cancelled id ());
      decide =
        (fun value ->
          let at_ms = Time.to_ms (Event_queue.now queue) in
          let index = decision_counts.(node_id) in
          decision_counts.(node_id) <- index + 1;
          decisions.(node_id) := value :: !(decisions.(node_id));
          record Trace.Decide ~node:node_id ~peer:(-1) ~tag:value ~detail:"";
          Invariant.on_decide monitor ~node:node_id ~index ~value ~at_ms;
          if counted node_id then last_progress := Float.max !last_progress at_ms;
          check_target ());
    }
  in

  let ctxs = Array.init n make_ctx in
  let nodes = Array.map (fun ctx -> if crashed.(ctx.Protocols.Context.node_id) then None else Some (P.create ctx)) ctxs in

  attacker.Attack.Attacker.on_start attacker_env;
  Array.iteri (fun i node -> match node with Some nd -> P.on_start nd ctxs.(i) | None -> ()) nodes;

  (* Periodic view sampling for the Fig. 9 analysis. *)
  (match config.view_sample_ms with
  | None -> ()
  | Some period ->
    let timer =
      {
        Timer.id = 0;
        owner = Timer.attacker_owner;
        deadline = Time.of_ms period;
        tag = "sample-views";
        payload = Sample_views;
      }
    in
    Event_queue.schedule queue ~at:(Time.of_ms period) (Attacker_timer timer));

  let sample_views () =
    let views =
      Array.mapi (fun i node -> match node with Some nd when not crashed.(i) -> P.view nd | _ -> -1) nodes
    in
    view_samples := (Time.to_ms (Event_queue.now queue), views) :: !view_samples
  in

  let rec dispatch (msg : Message.t) =
    let dst = msg.Message.dst in
    if dst >= 0 && dst < n then
      match msg.Message.payload with
      | Gossip_frame { origin; gid; tag; size; inner } ->
        (* First sight: unwrap for the protocol and keep the epidemic going;
           duplicates die here (their hop still counted as traffic). *)
        if not (Hashtbl.mem gossip_seen.(dst) (origin, gid)) then begin
          Hashtbl.replace gossip_seen.(dst) (origin, gid) ();
          (match config.Config.transport with
          | Config.Gossip { fanout } when not crashed.(dst) ->
            gossip_forward dst msg.Message.payload ~tag ~size ~fanout
          | Config.Gossip _ | Config.Direct -> ());
          incr msg_counter;
          let unwrapped =
            Message.make ~id:!msg_counter ~src:origin ~dst ~sent_at:msg.Message.sent_at ~tag ~size
              inner
          in
          dispatch unwrapped
        end
      | _ -> (
        match nodes.(dst) with
        | Some node ->
          record Trace.Deliver ~node:dst ~peer:msg.Message.src ~tag:msg.Message.tag
            ~detail:(Message.payload_to_string msg.Message.payload);
          P.on_message node ctxs.(dst) msg
        | None -> ())
  in
  let handle = function
    | Deliver msg ->
      let dst = msg.Message.dst in
      if costs.Cost_model.verify_ms > 0. && dst >= 0 && dst < n && msg.Message.src <> dst then begin
        (* The receiver's CPU must verify the message before the protocol
           sees it; contention shows up as extra queueing delay. *)
        let now = Time.to_ms (Event_queue.now queue) in
        let finish =
          Cost_model.charge cpus.(dst) ~now_ms:now ~cost_ms:costs.Cost_model.verify_ms
        in
        Event_queue.schedule queue ~at:(Time.of_ms finish) (Deliver_verified msg)
      end
      else dispatch msg
    | Deliver_verified msg -> dispatch msg
    | Node_timer timer ->
      let id = timer.Timer.id in
      let owner = timer.Timer.owner in
      let now_ms = Time.to_ms (Event_queue.now queue) in
      if
        (not (Hashtbl.mem cancelled id))
        && Attack.Fault_schedule.crashed_at chaos ~node:owner ~at_ms:now_ms
      then begin
        (* Crash-recovery semantics: a down node's timer is deferred to
           its restart instant (its timeout fires "on reboot"), or lost
           with the node if it never comes back. *)
        match Attack.Fault_schedule.next_recovery_after chaos ~node:owner ~at_ms:now_ms with
        | Some recover_ms ->
          (* Deferred, not consumed: the id stays pending and cancellable. *)
          let deadline = Time.of_ms recover_ms in
          Event_queue.schedule queue ~at:deadline (Node_timer { timer with Timer.deadline })
        | None -> Hashtbl.remove pending_timers id
      end
      else if consume_timer id then (
        match nodes.(owner) with
        | Some node ->
          record Trace.Timer_fired ~node:owner ~peer:(-1) ~tag:timer.Timer.tag ~detail:"";
          P.on_timer node ctxs.(owner) timer
        | None -> ())
    | Attacker_timer timer -> (
      match timer.Timer.payload with
      | Sample_views ->
        sample_views ();
        let next = Time.add_ms timer.Timer.deadline (Option.get config.view_sample_ms) in
        let timer = { timer with Timer.deadline = next } in
        Event_queue.schedule queue ~at:next (Attacker_timer timer)
      | _ ->
        if consume_timer timer.Timer.id then
          attacker.Attack.Attacker.on_time_event attacker_env timer)
  in

  (* Liveness watchdog: the simulation has stalled when the clock has run
     [k * lambda] past the last decision by a counted node.  While the fault
     plan still has steps ahead (a pending recovery, heal or GST shift) the
     watchdog holds its fire — the scenario is still unfolding and relief
     may be scheduled — and the last step resets the stall clock. *)
  let last_chaos_ms =
    List.fold_left Float.max Float.neg_infinity (Attack.Fault_schedule.step_times chaos)
  in
  let watchdog_ms = Option.map (fun k -> k *. config.lambda_ms) config.watchdog in
  let rec loop () =
    if !finished <> None then ()
    else if Event_queue.popped queue >= config.max_events then outcome := Event_cap
    else
      match Event_queue.next queue with
      | None -> outcome := Queue_drained
      | Some (now, ev) ->
        let now_ms = Time.to_ms now in
        if now_ms > config.max_time_ms then outcome := Timed_out
        else begin
          match watchdog_ms with
          | Some limit
            when now_ms >= last_chaos_ms
                 && now_ms -. Float.max !last_progress last_chaos_ms > limit ->
            Simlog.info "watchdog: no progress since %g ms, aborting at %g ms" !last_progress
              now_ms;
            outcome := Stalled { last_progress_ms = !last_progress }
          | _ ->
            handle ev;
            loop ()
        end
  in
  loop ();

  let time_ms =
    match !finished with
    | Some at -> at
    | None -> Float.min (Time.to_ms (Event_queue.now queue)) config.max_time_ms
  in
  let decisions_list = List.init n (fun i -> (i, List.rev !(decisions.(i)))) in
  let violations = Invariant.violations monitor in
  (* The online agreement monitor subsumes the post-hoc sweep; keep the
     sweep as a final belt-and-braces pass over the complete sequences. *)
  let safety_violation =
    match Invariant.first_violation monitor ~monitor:"agreement" with
    | Some v -> Some v.Invariant.detail
    | None -> check_safety ~counted:aligned decisions_list
  in
  let stats = Network.stats network in
  {
    config;
    outcome = !outcome;
    time_ms;
    messages_sent = stats.Network.sent;
    bytes_sent = stats.Network.bytes;
    messages_dropped = !dropped;
    events_processed = Event_queue.popped queue;
    decisions = decisions_list;
    safety_ok = safety_violation = None;
    safety_violation;
    violations;
    corrupted = List.sort compare !corrupted_order;
    per_decision_latency_ms = time_ms /. float_of_int config.decisions_target;
    per_decision_messages =
      float_of_int stats.Network.sent /. float_of_int config.decisions_target;
    final_views =
      Array.mapi
        (fun i node -> match node with Some nd when not crashed.(i) -> P.view nd | _ -> -1)
        nodes;
    view_samples = List.rev !view_samples;
    trace;
  }

let throughput r =
  if r.time_ms <= 0. then 0.
  else float_of_int r.config.Config.decisions_target /. (r.time_ms /. 1000.)

let wall_clock_of_run config =
  let start = Unix.gettimeofday () in
  let result = run config in
  (Unix.gettimeofday () -. start, result)
