open Bftsim_sim
open Bftsim_net
module Attack = Bftsim_attack
module Protocols = Bftsim_protocols
module Obs = Bftsim_obs

type outcome =
  | Reached_target
  | Timed_out
  | Event_cap
  | Queue_drained
  | Stalled of { last_progress_ms : float }

type result = {
  config : Config.t;
  outcome : outcome;
  time_ms : float;
  messages_sent : int;
  bytes_sent : int;
  messages_dropped : int;
  events_processed : int;
  decisions : (int * string list) list;
  safety_ok : bool;
  safety_violation : string option;
  violations : Invariant.violation list;
  corrupted : int list;
  per_decision_latency_ms : float;
  per_decision_messages : float;
  final_views : int array;
  view_samples : (float * int array) list;
  trace : Trace.t option;
  metrics : Obs.Metrics.t option;
  spans : Obs.Tracer.t option;
}

type Timer.payload += Sample_views

(* Workload layer (DESIGN.md §3.16): a run can be driven by client traffic
   instead of one pre-agreed value.  The hooks live here — not in Config —
   because they are closures over harness state, and Config must stay a
   serializable key = value record.  With [?workload] absent every hook site
   below degenerates to the pre-workload behavior, bit for bit. *)
type workload_env = {
  wl_now_ms : unit -> float;
  wl_schedule : delay_ms:float -> (unit -> unit) -> unit;
      (** Deterministic one-shot callback on the simulation clock; the
          workload harness uses it for client arrivals and batch timers. *)
}

type workload = {
  on_workload_start : workload_env -> unit;
  on_request_proposal :
    node:int ->
    slot:int ->
    width:int ->
    default:Protocols.Context.proposal ->
    (Protocols.Context.proposal -> bool) ->
    unit;
      (** A leader asks for a proposal payload covering [width] consensus
          slots; the harness may delay the continuation until a batch is
          cut.  The continuation reports whether the proposal was actually
          used — [false] means the leader window went stale (view change)
          and the harness should re-queue the batched requests. *)
  on_commit : node:int -> index:int -> value:string -> at_ms:float -> unit;
      (** Every decide by every physical node, in simulation order — the
          commit-ack stream that closes the request-latency loop. *)
}

type Timer.payload += Workload_fire of (unit -> unit)

type Message.payload +=
  | Gossip_frame of { origin : int; gid : int; tag : string; size : int; inner : Message.payload }
      (** Epidemic-transport envelope: first-time receivers unwrap [inner]
          for their protocol and re-forward the frame to [fanout] peers. *)

type Message.payload +=
  | Rc_frame of { seq : int; tag : string; size : int; inner : Message.payload }
      (** Reliable-channel envelope (DESIGN.md §3.17): per-(src,dst) sequence
          number, the wrapped protocol payload and its original tag/size.
          The receiver acks every frame (duplicates included — a duplicate
          usually means the previous ack was lost) and unwraps each sequence
          number exactly once. *)
  | Rc_ack of { seq : int }

type Timer.payload += Rc_retransmit of { dst : int; seq : int }
      (** Sender-side retransmission alarm, owned by the sending node so the
          crash-deferral machinery pauses retransmission while the sender is
          down and resumes it at the restart instant. *)

(* Sender-side bookkeeping for one unacked reliable frame. *)
type rc_pending = {
  rc_tag : string;
  rc_size : int;
  rc_inner : Message.payload;
  mutable rc_attempts : int;
}

type event =
  | Deliver of Message.t
  | Deliver_verified of Message.t
  | Node_timer of Timer.t
  | Attacker_timer of Timer.t

let pp_outcome ppf = function
  | Reached_target -> Format.pp_print_string ppf "reached-target"
  | Timed_out -> Format.pp_print_string ppf "timed-out"
  | Event_cap -> Format.pp_print_string ppf "event-cap"
  | Queue_drained -> Format.pp_print_string ppf "queue-drained"
  | Stalled { last_progress_ms } ->
    Format.fprintf ppf "stalled(last-progress=%gms)" last_progress_ms

let build_attacker (config : Config.t) =
  match config.attack with
  | Config.No_attack -> Attack.Attacker.passthrough
  | Config.Partition { first_size; start_ms; heal_ms; drop } ->
    let mode =
      if drop then Attack.Partition_attack.Drop_cross_traffic
      else Attack.Partition_attack.Delay_until_heal { jitter_ms = 10. }
    in
    Attack.Partition_attack.two_subnets ~n:config.n ~first_size ~start_ms ~heal_ms mode
  | Config.Silence { nodes; at_ms } -> Attack.Failstop.at_time ~nodes ~at_ms
  | Config.Add_static { f } -> Protocols.Addplus_attacks.static ~f
  | Config.Add_rushing_adaptive { budget } -> Protocols.Addplus_attacks.rushing_adaptive ?budget ()
  | Config.Extra_delay { extra_ms } -> Attack.Attacker.delay_all ~extra_ms

(* Agreement check: decision sequences of all counted honest nodes must
   agree index-wise (they may have reached different lengths). *)
let check_safety ~counted decisions =
  let violation = ref None in
  let by_index : (int, int * string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (node, values) ->
      if counted node then
        List.iteri
          (fun k value ->
            match Hashtbl.find_opt by_index k with
            | None -> Hashtbl.replace by_index k (node, value)
            | Some (other, expected) ->
              if (not (String.equal expected value)) && !violation = None then
                violation :=
                  Some
                    (Printf.sprintf "decision %d: node %d decided %S but node %d decided %S" k node
                       value other expected))
          values)
    decisions;
  !violation

(* Test-only fault injection: BFTSIM_FAULT_INJECT="crash@17;hang@23" makes
   the replication seeded 17 raise at startup and the one seeded 23 spin on
   the wall clock until cancelled.  The supervised campaign drivers turn
   those into structured outcomes; the knob exists so the resilience tests
   and the CI kill-and-resume job can exercise that machinery end to end. *)
let injected_faults =
  lazy
    (match Sys.getenv_opt "BFTSIM_FAULT_INJECT" with
    | None | Some "" -> []
    | Some spec ->
      String.split_on_char ';' spec
      |> List.filter_map (fun directive ->
             match String.split_on_char '@' (String.trim directive) with
             | [ "crash"; seed ] -> Option.map (fun s -> (`Crash, s)) (int_of_string_opt seed)
             | [ "hang"; seed ] -> Option.map (fun s -> (`Hang, s)) (int_of_string_opt seed)
             | _ ->
               invalid_arg
                 (Printf.sprintf "BFTSIM_FAULT_INJECT: cannot parse %S (want crash@N or hang@N)"
                    directive)))

let no_cancel () = false

let run ?(cancel = no_cancel) ?delay_override ?attacker:attacker_override ?workload
    (config : Config.t) =
  Config.validate config;
  List.iter
    (fun (kind, seed) ->
      if seed = config.seed then
        match kind with
        | `Crash -> failwith (Printf.sprintf "BFTSIM_FAULT_INJECT: injected crash (seed %d)" seed)
        | `Hang ->
          (* Spin on the wall clock, not sim time: this models a replication
             that hangs the host.  Only the cooperative deadline (or a
             SIGKILL) gets it unstuck. *)
          while not (cancel ()) do
            Unix.sleepf 0.005
          done;
          raise Supervisor.Cancelled)
    (Lazy.force injected_faults);
  let (module P : Protocols.Protocol_intf.S) = Protocols.Registry.find_exn config.protocol in
  let n = config.n in
  (* Twins (DESIGN.md §3.14): each twinned identity runs a second physical
     replica with the same credentials and input but its own RNG stream and
     state.  Everything below the protocol boundary — arrays, RNGs, network,
     traces — is indexed by PHYSICAL id [0..pn); the protocol only ever sees
     LOGICAL ids (its own via [ctx.node_id], peers via rewritten [msg.src]).
     Without twins [pn = n] and both id spaces coincide, so the code paths
     are shared and bit-identical to a pre-twins run. *)
  let twins = config.twins in
  let pn = Config.physical_n config in
  let to_logical p =
    match twins with
    | Some tw when p >= n -> Attack.Twins_schedule.logical ~n tw p
    | Some _ | None -> p
  in
  let instances id =
    match twins with None -> [ id ] | Some tw -> Attack.Twins_schedule.instances ~n tw id
  in
  let twinned p =
    match twins with
    | None -> false
    | Some tw -> p >= n || Attack.Twins_schedule.twin_instance ~n tw p <> None
  in
  let f = Protocols.Quorum.max_faulty n in
  let root_rng = Rng.create config.seed in
  let net_rng = Rng.split root_rng in
  let attacker_rng = Rng.split root_rng in
  let node_rngs = Array.init pn (fun _ -> Rng.split root_rng) in
  let queue : event Event_queue.t = Event_queue.create () in
  Simlog.set_now (fun () -> Event_queue.now queue);
  let topology =
    match config.Config.zones with
    | None -> Topology.fully_connected pn
    | Some spec -> (
      (* Validated by [Config.validate]; re-surface the error defensively
         for hand-built records that bypassed it. *)
      match Topology.of_zone_spec spec ~n:pn with
      | Ok t -> t
      | Error e -> invalid_arg ("Config: " ^ e))
  in
  let network =
    Network.create ?bandwidth_mbps:config.Config.bandwidth_mbps ~delay:config.delay ~topology
      ~rng:net_rng ()
  in
  let trace = if config.record_trace then Some (Trace.create ()) else None in
  (* Telemetry (DESIGN.md §3.11).  The registry holds only simulated
     quantities so [Runner.run_many]'s merge is identical whatever domain
     pool executed the runs; wall-clock attribution lives in the tracer.
     When both switches are off every probe below degenerates to a store
     into a dead cell or a [None] match — no hash lookups, no allocation. *)
  let telemetry = config.Config.telemetry in
  let reg = if telemetry.Config.metrics then Some (Obs.Metrics.create ()) else None in
  let tracer =
    if telemetry.Config.tracing then
      Some (Obs.Tracer.create ~capacity:telemetry.Config.trace_capacity ())
    else None
  in
  let telemetry_on = reg <> None || tracer <> None in
  (* Lossy-network / crash-recovery feature gates.  Everything they guard is
     conditional down to the RNG splits and metric registrations, so a run
     with all three off is byte-identical to the legacy path. *)
  let loss_on = not (Loss_model.is_none config.Config.loss) in
  let rc_on = config.Config.reliable in
  let has_restarts = Attack.Fault_schedule.restarts config.chaos <> [] in
  let ctr =
    match reg with
    | Some r -> fun name -> Obs.Metrics.counter r name
    | None ->
      let dead = Obs.Metrics.null_counter () in
      fun _ -> dead
  in
  let c_sent = ctr "net.sent" in
  let c_delivered = ctr "net.delivered" in
  let c_dropped = ctr "net.dropped" in
  let c_bytes = ctr "net.bytes" in
  let c_injected = ctr "net.injected" in
  let c_timer_set = ctr "timer.set" in
  let c_timer_fired = ctr "timer.fired" in
  let c_timer_cancelled = ctr "timer.cancelled" in
  let c_decisions = ctr "protocol.decisions" in
  let c_view_changes = ctr "protocol.view_changes" in
  let c_corruptions = ctr "attacker.corruptions" in
  let c_events = ctr "sim.events" in
  let c_twin_drops = ctr "twins.round_drops" in
  (* Registered only when the feature is on, so the metrics snapshot of an
     existing configuration gains no rows. *)
  let ctr_if on name = if on then ctr name else Obs.Metrics.null_counter () in
  let c_loss_dropped = ctr_if loss_on "net.loss_dropped" in
  let c_dup_created = ctr_if loss_on "net.dup_created" in
  let c_retrans = ctr_if rc_on "net.retrans" in
  let c_dup_dropped = ctr_if rc_on "net.dup_dropped" in
  let h_delay, h_size =
    match reg with
    | Some r ->
      ( Obs.Metrics.histogram r "net.delay_ms",
        Obs.Metrics.histogram
          ~buckets:[| 64.; 256.; 1024.; 4096.; 16384.; 65536.; 262144. |]
          r "net.msg.size_bytes" )
    | None -> (Obs.Metrics.null_histogram (), Obs.Metrics.null_histogram ())
  in
  let bandwidth_on = config.Config.bandwidth_mbps <> None in
  (* Egress queue-delay distribution; only present when the bandwidth model
     is on, so the registry of existing configs is unchanged. *)
  let h_queue =
    match reg with
    | Some r when bandwidth_on -> Obs.Metrics.histogram r "net.queue_ms"
    | Some _ | None -> Obs.Metrics.null_histogram ()
  in
  (* Restart-to-caught-up latency; present only when the plan restarts. *)
  let h_catchup =
    match reg with
    | Some r when has_restarts -> Obs.Metrics.histogram r "recovery.catchup_ms"
    | Some _ | None -> Obs.Metrics.null_histogram ()
  in
  (* Histogram observes mutate boxed-float fields, so unlike the dead
     counters they allocate; the off path takes a branch instead. *)
  let metrics_on = reg <> None in
  (* Per-tag send counters, resolved through a private cache so the
     metrics-on path still pays one registry lookup per {e distinct} tag,
     not per message. *)
  let count_tag =
    match reg with
    | None -> fun _ -> ()
    | Some r ->
      let cache : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
      fun tag ->
        let cell =
          match Hashtbl.find_opt cache tag with
          | Some c -> c
          | None ->
            let c = Obs.Metrics.counter r ("net.sent." ^ tag) in
            Hashtbl.replace cache tag c;
            c
        in
        incr cell
  in
  let us_now () = Event_queue.now_ms queue *. 1000. in
  (* Message spans run from send to arrival on the receiver's track; the
     simulated timestamps make them line up with dispatch spans in the
     Chrome/Perfetto rendering. *)
  let trace_net_deliver (msg : Message.t) =
    match tracer with
    | None -> ()
    | Some tr ->
      Obs.Tracer.span tr ~name:msg.Message.tag ~cat:"net" ~node:msg.Message.dst
        ~ts_us:(Time.to_ms msg.Message.sent_at *. 1000.)
        ~dur_us:(msg.Message.delay_ms *. 1000.)
        ~args:[ ("src", Obs.Tracer.Int msg.Message.src); ("size", Obs.Tracer.Int msg.Message.size) ]
        ()
  in
  (* Timer spans run from arming to firing.  Set times are tracked only
     when tracing — the table is dead weight otherwise. *)
  let timer_set_at : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let note_timer_set id =
    incr c_timer_set;
    if tracer <> None then Hashtbl.replace timer_set_at id (Event_queue.now_ms queue)
  in
  let note_timer_fired (timer : Timer.t) =
    incr c_timer_fired;
    match tracer with
    | None -> ()
    | Some tr ->
      let now_ms = Event_queue.now_ms queue in
      let set_ms =
        match Hashtbl.find_opt timer_set_at timer.Timer.id with
        | Some s ->
          Hashtbl.remove timer_set_at timer.Timer.id;
          s
        | None -> now_ms
      in
      Obs.Tracer.span tr
        ~name:("timer:" ^ timer.Timer.tag)
        ~cat:"timer" ~node:timer.Timer.owner ~ts_us:(set_ms *. 1000.)
        ~dur_us:((now_ms -. set_ms) *. 1000.)
        ()
  in
  let note_timer_cancelled (timer : Timer.t) =
    incr c_timer_cancelled;
    match tracer with
    | None -> ()
    | Some tr ->
      Hashtbl.remove timer_set_at timer.Timer.id;
      Obs.Tracer.instant tr
        ~name:("cancel:" ^ timer.Timer.tag)
        ~cat:"timer" ~node:timer.Timer.owner ~ts_us:(us_now ()) ()
  in
  let record kind ~node ~peer ~tag ~detail =
    match trace with
    | None -> ()
    | Some t ->
      Trace.record t
        { at_ms = Event_queue.now_ms queue; kind; node; peer; tag; detail }
  in
  (* Ambient sink: protocol / library code below the controller can emit
     probes without a handle (domain-local, so concurrent runs on a domain
     pool stay separate).  Warnings and errors are mirrored onto the trace
     timeline so anomalies appear next to the events that caused them. *)
  if telemetry_on then Obs.Probe.set ?metrics:reg ?tracer ();
  (match tracer with
  | Some tr ->
    Simlog.set_mirror
      (Some
         (fun ~level s ->
           let name =
             match level with Logs.Error -> "error" | Logs.Warning -> "warning" | _ -> "log"
           in
           Obs.Tracer.instant tr ~name ~cat:"log" ~node:(-1) ~ts_us:(us_now ())
             ~args:[ ("msg", Obs.Tracer.Str s) ]
             ()))
  | None -> ());
  let crashed = Array.make pn false in
  List.iter (fun i -> crashed.(i) <- true) config.crashed;
  let corrupted = Array.make pn false in
  let corrupted_order = ref [] in
  let msg_counter = ref 0 in
  let timer_counter = ref 0 in
  (* Timer bookkeeping: [pending] holds every scheduled-but-not-yet-fired
     id, [cancelled] the pending ids whose owner revoked them.  Timer ids
     are issued sequentially, so both sets are flat bitsets (one bit per id
     ever issued, no per-operation allocation) instead of hashtables.  Both
     are pruned when the timer event is consumed; cancelling an id that
     already fired is a no-op (nothing is pending), which is what keeps
     [cancelled] from accumulating. *)
  let pending_timers = Dense_set.create ~initial_capacity:1024 () in
  let cancelled = Dense_set.create ~initial_capacity:1024 () in
  let consume_timer id =
    Dense_set.remove pending_timers id;
    if Dense_set.mem cancelled id then begin
      Dense_set.remove cancelled id;
      false
    end
    else true
  in
  let dropped = ref 0 in
  let decisions : string list ref array = Array.init pn (fun _ -> ref []) in
  (* Per-node decision counts, maintained incrementally so the hot
     decide/check_target path never walks the accumulating lists. *)
  let decision_counts = Array.make pn 0 in
  let finished = ref None in
  let outcome = ref Queue_drained in
  let view_samples = ref [] in
  let chaos = Attack.Fault_schedule.normalize config.chaos in
  let attacker =
    let base = match attacker_override with Some a -> a | None -> build_attacker config in
    (* Layering: chaos first (a message a crashed source never sent must not
       reach anything downstream), then the twins partition schedule, then
       the scenario attacker. *)
    let layers =
      (match chaos with [] -> [] | _ -> [ Attack.Fault_schedule.to_attacker chaos ])
      @
      match twins with
      | None -> []
      | Some tw -> [ Attack.Twins_schedule.to_attacker ~on_drop:(fun () -> incr c_twin_drops) tw ]
    in
    match layers with [] -> base | _ -> Attack.Attacker.compose (layers @ [ base ])
  in
  (* Throughput extension (§III-A3): sequential per-node CPUs charged for
     signing and verification; zero costs short-circuit to the paper's
     cost-free behaviour. *)
  let costs = config.Config.costs in
  let cpus = Array.init pn (fun _ -> Cost_model.make_cpu ()) in
  let gossip_rng = Rng.split root_rng in
  let gossip_counter = ref 0 in
  (* Per node: gossip frames already processed (origin, gid). *)
  let gossip_seen : (int * int, unit) Hashtbl.t array = Array.init pn (fun _ -> Hashtbl.create 64) in

  (* Lossy-network and crash-recovery substrate (DESIGN.md §3.17).  The RNG
     splits are conditional and sit after every legacy split, so enabling a
     feature never shifts the streams of a run that does not use it. *)
  let loss_rng = if loss_on then Rng.split root_rng else root_rng in
  let loss_state = Loss_model.state config.Config.loss in
  let rc_rng = if rc_on then Rng.split root_rng else root_rng in
  let rc_base_ms =
    if config.Config.retrans_base_ms > 0. then config.Config.retrans_base_ms
    else 2. *. config.lambda_ms
  in
  (* Channel state is controller-owned — it models the NIC/kernel pair, not
     the replica process — so it survives [restart@] events; retransmission
     of unacked frames is exactly what bridges a receiver's downtime. *)
  let rc_next : (int * int, int ref) Hashtbl.t = Hashtbl.create (if rc_on then 64 else 1) in
  let rc_out : (int * int * int, rc_pending) Hashtbl.t =
    Hashtbl.create (if rc_on then 256 else 1)
  in
  let rc_seen : (int * int * int, unit) Hashtbl.t =
    Hashtbl.create (if rc_on then 256 else 1)
  in
  (* Simulated per-node write-ahead log: the only node state that survives a
     [restart@].  [incarnation] stamps protocol timers so alarms armed by a
     previous life of a restarted node die instead of firing into the fresh
     node; reliable-channel alarms are exempt (the channel survives). *)
  let wal : (string, string) Hashtbl.t array = Array.init pn (fun _ -> Hashtbl.create 8) in
  let restart_at = Array.make pn 0. in
  let awaiting_catchup = Array.make pn false in
  let incarnation = Array.make pn 0 in
  let timer_epoch : (int, int) Hashtbl.t = Hashtbl.create (if has_restarts then 256 else 1) in

  (* Nodes the chaos plan fail-stops and never restarts can no more reach
     the decision target than config-crashed ones; recovered nodes stay
     counted and must catch up. *)
  let chaos_gone =
    Array.init pn (fun node -> Attack.Fault_schedule.crashed_at chaos ~node ~at_ms:Float.infinity)
  in
  (* Twin instances emulate a Byzantine identity: they are excluded from the
     decision target and from agreement — equivocation between the two
     halves is the attack, not the violation.  The violation the oracles
     look for is disagreement among the remaining honest nodes. *)
  let counted node =
    (not crashed.(node)) && (not corrupted.(node)) && (not chaos_gone.(node)) && not (twinned node)
  in
  (* Per-index agreement presumes complete logs; a node the plan crashes
     and restarts misses the decisions made while it was down (there is no
     state transfer), so only never-crashed nodes are index-aligned — and
     neither is an honest node a twins round cut off from a quorum, which
     misses the quorum side's decisions the same way. *)
  let aligned node =
    counted node
    && (not (Attack.Fault_schedule.ever_crashed chaos ~node))
    && not
         (match twins with
         | None -> false
         | Some tw ->
           Attack.Twins_schedule.isolated_below_quorum ~n ~quorum:(Protocols.Quorum.quorum n) tw
             ~node)
  in
  let last_progress = ref 0. in
  let monitor =
    Invariant.create ~counted ~aligned
      ~crashed_now:(fun ~node ~at_ms ->
        crashed.(node) || Attack.Fault_schedule.crashed_at chaos ~node ~at_ms)
      ?valid_values:
        (if config.check_validity then Some (List.init n (Config.input_for config)) else None)
      ()
  in
  let check_target () =
    if !finished = None then begin
      let all_done = ref true in
      for i = 0 to pn - 1 do
        if counted i && decision_counts.(i) < config.decisions_target then all_done := false
      done;
      if !all_done then begin
        finished := Some (Event_queue.now_ms queue);
        outcome := Reached_target
      end
    end
  in

  (* Replay support: per-link send counters feeding the override. *)
  let link_seq : (int * int * string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let next_link_seq key =
    match Hashtbl.find_opt link_seq key with
    | Some r ->
      incr r;
      !r
    | None ->
      Hashtbl.replace link_seq key (ref 0);
      0
  in

  let attacker_env =
    {
      (* Attackers see the physical replica set — the twins partition
         schedule addresses twin halves individually. *)
      Attack.Attacker.n = pn;
      f;
        lambda_ms = config.lambda_ms;
        now = (fun () -> Event_queue.now queue);
        rng = attacker_rng;
        topology;
        set_timer =
          (fun ~delay_ms ~tag payload ->
            incr timer_counter;
            let id = !timer_counter in
            Dense_set.add pending_timers id;
            note_timer_set id;
            let deadline = Time.add_ms (Event_queue.now queue) (Float.max 0. delay_ms) in
            let timer = { Timer.id; owner = Timer.attacker_owner; deadline; tag; payload } in
            Event_queue.schedule queue ~at:deadline (Attacker_timer timer);
            id);
        inject =
          (fun ~src ~dst ~delay_ms ~tag ~size payload ->
            incr msg_counter;
            incr c_injected;
            let msg =
              Message.make ~id:!msg_counter ~src ~dst ~sent_at:(Event_queue.now queue) ~tag ~size
                payload
            in
            msg.Message.delay_ms <- Float.max 0. delay_ms;
            record Trace.Send ~node:src ~peer:dst ~tag ~detail:"<injected>";
            trace_net_deliver msg;
            Event_queue.schedule queue ~at:(Message.arrival_time msg) (Deliver msg));
        corrupt =
          (fun node ->
            if node < 0 || node >= n || corrupted.(node) then false
            else if List.length !corrupted_order >= f then false
            else begin
              corrupted.(node) <- true;
              corrupted_order := node :: !corrupted_order;
              incr c_corruptions;
              (match tracer with
              | Some tr ->
                Obs.Tracer.instant tr ~name:"corrupt" ~cat:"attacker" ~node ~ts_us:(us_now ()) ()
              | None -> ());
              Simlog.info "attacker corrupts node %d" node;
              true
            end);
        is_corrupted = (fun node -> node >= 0 && node < n && corrupted.(node));
        corrupted = (fun () -> List.sort compare !corrupted_order);
        override_delay = Network.override_delay network;
    }
  in

  let route (msg : Message.t) =
    Network.assign_delay network msg;
    (* The recorded delay is end-to-end (sample + crypto cost + attacker
       modifications), so in replay mode it is applied last — after the
       attacker has run (its verdicts and RNG draws must still happen) —
       and the sequence number advances for every send, dropped or not, to
       stay aligned with the recording. *)
    let replay_delay =
      match delay_override with
      | None -> None
      | Some override ->
        let seq = next_link_seq (msg.src, msg.dst, msg.tag) in
        override ~src:msg.src ~dst:msg.dst ~tag:msg.tag ~seq
    in
    (* [record] drops the row when tracing is off, but the [detail] string
       would still be rendered eagerly — and payload printing is a sprintf
       through the printer chain, by far the costliest allocation on the
       send path.  Guard it. *)
    if trace <> None then
      record Trace.Send ~node:msg.src ~peer:msg.dst ~tag:msg.tag
        ~detail:(Message.payload_to_string msg.payload);
    (* WAL writes ([wal_ms]) occupy the same sequential CPU as signing, so
       the queueing delay behind a persist must reach the wire even when
       signing itself is free. *)
    (if (costs.Cost_model.sign_ms > 0. || config.Config.wal_ms > 0.)
        && msg.src >= 0 && msg.src < pn
     then begin
       let now = Event_queue.now_ms queue in
       let finish = Cost_model.charge cpus.(msg.src) ~now_ms:now ~cost_ms:costs.Cost_model.sign_ms in
       msg.Message.delay_ms <- msg.Message.delay_ms +. (finish -. now)
     end);
    match attacker.Attack.Attacker.attack attacker_env msg with
    | Attack.Attacker.Drop ->
      incr dropped;
      incr c_dropped;
      (match tracer with
      | Some tr ->
        Obs.Tracer.instant tr
          ~name:("drop:" ^ msg.Message.tag)
          ~cat:"net" ~node:msg.Message.src ~ts_us:(us_now ())
          ~args:[ ("dst", Obs.Tracer.Int msg.Message.dst) ]
          ()
      | None -> ());
      record Trace.Drop ~node:msg.src ~peer:msg.dst ~tag:msg.tag ~detail:""
    | Attack.Attacker.Deliver ->
      (match replay_delay with Some delay_ms -> msg.Message.delay_ms <- delay_ms | None -> ());
      (* Stochastic per-link faults run after the adversary: the attacker
         models intent, this models the wire itself (DESIGN.md's third drop
         path).  Self-addressed messages are local and never lossy. *)
      let verdict =
        if loss_on && msg.Message.src <> msg.Message.dst then
          Loss_model.sample loss_state loss_rng ~src:msg.Message.src ~dst:msg.Message.dst
        else { Loss_model.deliver = true; duplicate = false; reorder_extra_ms = 0. }
      in
      if not verdict.Loss_model.deliver then begin
        incr dropped;
        incr c_loss_dropped;
        (match tracer with
        | Some tr ->
          Obs.Tracer.instant tr
            ~name:("loss:" ^ msg.Message.tag)
            ~cat:"net" ~node:msg.Message.src ~ts_us:(us_now ())
            ~args:[ ("dst", Obs.Tracer.Int msg.Message.dst) ]
            ()
        | None -> ());
        record Trace.Drop ~node:msg.src ~peer:msg.dst ~tag:msg.tag ~detail:"loss"
      end
      else begin
        msg.Message.delay_ms <- msg.Message.delay_ms +. verdict.Loss_model.reorder_extra_ms;
        if metrics_on && msg.Message.src <> msg.Message.dst then begin
          Obs.Metrics.observe_h h_delay msg.Message.delay_ms;
          if bandwidth_on then Obs.Metrics.observe_h h_queue (Network.last_queue_ms network)
        end;
        trace_net_deliver msg;
        Event_queue.schedule queue ~at:(Message.arrival_time msg) (Deliver msg);
        if verdict.Loss_model.duplicate then begin
          (* The duplicate is a network artifact, not wire traffic the
             sender paid for: it gets its own message id but no stats. *)
          incr msg_counter;
          incr c_dup_created;
          let dup =
            Message.make ~id:!msg_counter ~src:msg.Message.src ~dst:msg.Message.dst
              ~sent_at:msg.Message.sent_at ~tag:msg.Message.tag ~size:msg.Message.size
              msg.Message.payload
          in
          dup.Message.delay_ms <- msg.Message.delay_ms +. (0.5 *. config.lambda_ms);
          trace_net_deliver dup;
          Event_queue.schedule queue ~at:(Message.arrival_time dup) (Deliver dup)
        end
      end
  in

  let send_from src ~dst ~tag ~size payload =
    if not crashed.(src) then begin
      incr msg_counter;
      (* Mirror [Network.stats]: self-addressed messages are local
         deliveries, not wire traffic (§II-C message usage). *)
      if dst <> src then begin
        incr c_sent;
        c_bytes := !c_bytes + size;
        count_tag tag;
        if metrics_on then Obs.Metrics.observe_h h_size (float_of_int size)
      end;
      let msg =
        Message.make ~id:!msg_counter ~src ~dst ~sent_at:(Event_queue.now queue) ~tag ~size payload
      in
      route msg
    end
  in

  (* Reliable channel (opt-in via [reliable = true], DESIGN.md §3.17): every
     remote protocol send is wrapped in a sequence-numbered [Rc_frame]; the
     receiver acks and deduplicates; the sender retransmits unacked frames
     with exponential backoff and deterministic jitter until [retrans_max],
     then gives up.  With the flag off, [send_user] {e is} [send_from] — the
     legacy send path, closure-identical. *)
  let rc_header_bytes = 16 in
  let rc_arm_retransmit src ~dst ~seq ~attempt =
    incr timer_counter;
    let id = !timer_counter in
    Dense_set.add pending_timers id;
    note_timer_set id;
    let backoff = config.Config.retrans_backoff ** float_of_int attempt in
    let jitter = Rng.float rc_rng (0.25 *. rc_base_ms) in
    let deadline =
      Time.add_ms (Event_queue.now queue) ((rc_base_ms *. backoff) +. jitter)
    in
    let timer =
      { Timer.id; owner = src; deadline; tag = "rc-retransmit"; payload = Rc_retransmit { dst; seq } }
    in
    Event_queue.schedule queue ~at:deadline (Node_timer timer)
  in
  let send_reliable src ~dst ~tag ~size payload =
    if crashed.(src) then ()
    else if dst = src || dst < 0 || dst >= pn then
      (* Local deliveries cross no wire; nothing to make reliable. *)
      send_from src ~dst ~tag ~size payload
    else begin
      let link = (src, dst) in
      let seq =
        match Hashtbl.find_opt rc_next link with
        | Some r ->
          incr r;
          !r
        | None ->
          Hashtbl.replace rc_next link (ref 0);
          0
      in
      Hashtbl.replace rc_out (src, dst, seq)
        { rc_tag = tag; rc_size = size; rc_inner = payload; rc_attempts = 0 };
      send_from src ~dst ~tag ~size:(size + rc_header_bytes)
        (Rc_frame { seq; tag; size; inner = payload });
      rc_arm_retransmit src ~dst ~seq ~attempt:0
    end
  in
  let send_user = if rc_on then send_reliable else send_from in

  (* Gossip transport: forward a frame from [src] to [fanout] random peers
     (never back to [src] itself). *)
  let gossip_forward src (frame : Message.payload) ~tag ~size ~fanout =
    let chosen = Hashtbl.create 8 in
    let attempts = ref 0 in
    while Hashtbl.length chosen < Stdlib.min fanout (pn - 1) && !attempts < 16 * pn do
      incr attempts;
      let peer = Rng.int gossip_rng pn in
      if peer <> src && not (Hashtbl.mem chosen peer) then Hashtbl.replace chosen peer ()
    done;
    Hashtbl.iter (fun peer () -> send_from src ~dst:peer ~tag ~size frame) chosen
  in

  let broadcast_from src ~include_self ~tag ~size payload =
    match config.Config.transport with
    | Config.Direct ->
      (* Physical fan-out: twin halves receive broadcasts independently.
         [include_self = false] excludes only the sending instance — its
         co-twin is another machine on the wire. *)
      for dst = 0 to pn - 1 do
        if include_self || dst <> src then send_user src ~dst ~tag ~size payload
      done
    | Config.Gossip { fanout } ->
      if include_self then send_from src ~dst:src ~tag ~size payload;
      incr gossip_counter;
      let gid = !gossip_counter in
      (* The origin has trivially "seen" its own frame. *)
      Hashtbl.replace gossip_seen.(src) (src, gid) ();
      gossip_forward src
        (Gossip_frame { origin = src; gid; tag; size; inner = payload })
        ~tag ~size ~fanout
  in

  let leader_schedule =
    match twins with
    | Some tw when tw.Attack.Twins_schedule.leaders <> [] ->
      Some (Array.of_list tw.Attack.Twins_schedule.leaders)
    | Some _ | None -> None
  in
  (* [p] is the physical slot; the protocol instance inside it identifies as
     the LOGICAL [node_id] — a twin half sends, votes and leads under its
     co-twin's identity.  Bookkeeping (RNG, decisions, timers, trace rows)
     stays per-physical so the two halves remain distinguishable below the
     protocol boundary. *)
  let make_ctx p =
    let node_id = to_logical p in
    {
      Protocols.Context.node_id;
      n;
      f;
      lambda_ms = config.lambda_ms;
      seed = config.seed;
      input = Config.input_for config node_id;
      naive_reset = config.Config.naive_reset;
      rng = node_rngs.(p);
      now = (fun () -> Event_queue.now queue);
      send_raw =
        (match twins with
        | None ->
          (* Without twins the logical and physical id spaces coincide;
             skip the per-send singleton list [instances] would build. *)
          fun ~dst ~tag ~size payload -> send_user p ~dst ~tag ~size payload
        | Some _ ->
          (* The protocol addresses a logical identity; a twinned destination
             is two machines, each owed its own copy. *)
          fun ~dst ~tag ~size payload ->
            List.iter (fun pdst -> send_user p ~dst:pdst ~tag ~size payload) (instances dst));
      broadcast_raw =
        (fun ~include_self ~tag ~size payload ->
          broadcast_from p ~include_self ~tag ~size payload);
      set_timer =
        (fun ~delay_ms ~tag payload ->
          incr timer_counter;
          let id = !timer_counter in
          Dense_set.add pending_timers id;
          note_timer_set id;
          (* Stamp the arming incarnation so an alarm set before a restart
             cannot fire into the fresh node. *)
          if has_restarts then Hashtbl.replace timer_epoch id incarnation.(p);
          let deadline = Time.add_ms (Event_queue.now queue) (Float.max 0. delay_ms) in
          let timer = { Timer.id; owner = p; deadline; tag; payload } in
          Event_queue.schedule queue ~at:deadline (Node_timer timer);
          id);
      cancel_timer =
        (fun id -> if Dense_set.mem pending_timers id then Dense_set.add cancelled id);
      decide =
        (fun value ->
          let at_ms = Event_queue.now_ms queue in
          let index = decision_counts.(p) in
          decision_counts.(p) <- index + 1;
          decisions.(p) := value :: !(decisions.(p));
          incr c_decisions;
          (match tracer with
          | Some tr ->
            Obs.Tracer.instant tr ~name:"decide" ~cat:"protocol" ~node:p
              ~ts_us:(at_ms *. 1000.)
              ~args:[ ("index", Obs.Tracer.Int index); ("value", Obs.Tracer.Str value) ]
              ()
          | None -> ());
          record Trace.Decide ~node:p ~peer:(-1) ~tag:value ~detail:"";
          Invariant.on_decide monitor ~node:p ~index ~value ~at_ms;
          (match workload with
          | Some w -> w.on_commit ~node:p ~index ~value ~at_ms
          | None -> ());
          if counted p then last_progress := Float.max !last_progress at_ms;
          check_target ());
      probe =
        (match tracer with
        | None -> fun ~tag:_ ~detail:_ -> ()
        | Some tr ->
          fun ~tag ~detail ->
            Obs.Tracer.instant tr ~name:tag ~cat:"protocol" ~node:p ~ts_us:(us_now ())
              ~args:(if detail = "" then [] else [ ("detail", Obs.Tracer.Str detail) ])
              ());
      leader_schedule;
      request_proposal =
        (match workload with
        | None ->
          (* No workload: the continuation runs immediately with the
             protocol's own default — the pre-workload behavior. *)
          fun ~slot:_ ~width:_ ~default k -> ignore (k default : bool)
        | Some w ->
          fun ~slot ~width ~default k -> w.on_request_proposal ~node:p ~slot ~width ~default k);
      pipeline_depth = config.Config.pipeline;
      durable = has_restarts;
      persist =
        (fun ~key value ->
          Hashtbl.replace wal.(p) key value;
          if config.Config.wal_ms > 0. then
            ignore
              (Cost_model.charge cpus.(p) ~now_ms:(Event_queue.now_ms queue)
                 ~cost_ms:config.Config.wal_ms
                : float));
      recall = (fun ~key -> Hashtbl.find_opt wal.(p) key);
      on_caught_up =
        (fun () ->
          if awaiting_catchup.(p) then begin
            awaiting_catchup.(p) <- false;
            let dur = Event_queue.now_ms queue -. restart_at.(p) in
            Obs.Metrics.observe_h h_catchup dur;
            (match tracer with
            | Some tr ->
              Obs.Tracer.instant tr ~name:"caught-up" ~cat:"recovery" ~node:p ~ts_us:(us_now ())
                ~args:[ ("ms", Obs.Tracer.Float dur) ]
                ()
            | None -> ());
            Simlog.info "node %d caught up %.1f ms after restart" p dur
          end);
    }
  in

  let ctxs = Array.init pn make_ctx in
  let nodes = Array.mapi (fun p ctx -> if crashed.(p) then None else Some (P.create ctx)) ctxs in

  attacker.Attack.Attacker.on_start attacker_env;
  (* The workload initializes before the nodes start: a leader's first
     proposal request must already find the harness listening. *)
  (match workload with
  | None -> ()
  | Some w ->
    w.on_workload_start
      {
        wl_now_ms = (fun () -> Event_queue.now_ms queue);
        wl_schedule =
          (fun ~delay_ms f ->
            incr timer_counter;
            let id = !timer_counter in
            Dense_set.add pending_timers id;
            note_timer_set id;
            let deadline = Time.add_ms (Event_queue.now queue) (Float.max 0. delay_ms) in
            let timer =
              { Timer.id; owner = Timer.attacker_owner; deadline; tag = "workload"; payload = Workload_fire f }
            in
            Event_queue.schedule queue ~at:deadline (Attacker_timer timer));
      });
  Array.iteri (fun i node -> match node with Some nd -> P.on_start nd ctxs.(i) | None -> ()) nodes;

  (* View-change accounting: compare a node's view after each of its
     handlers.  Views derive from simulated execution only, so both the
     counter and the instants are replication-deterministic.  Gated on
     [telemetry_on] — the disabled path must not even call [P.view]. *)
  let last_views =
    if telemetry_on then Array.map (function Some nd -> P.view nd | None -> -1) nodes
    else [||]
  in
  let note_view node_id =
    match nodes.(node_id) with
    | Some nd ->
      let v = P.view nd in
      if v <> last_views.(node_id) then begin
        last_views.(node_id) <- v;
        incr c_view_changes;
        match tracer with
        | Some tr ->
          Obs.Tracer.instant tr ~name:"view-change" ~cat:"protocol" ~node:node_id
            ~ts_us:(us_now ())
            ~args:[ ("view", Obs.Tracer.Int v) ]
            ()
        | None -> ()
      end
    | None -> ()
  in

  (* Periodic view sampling for the Fig. 9 analysis. *)
  (match config.view_sample_ms with
  | None -> ()
  | Some period ->
    let timer =
      {
        Timer.id = 0;
        owner = Timer.attacker_owner;
        deadline = Time.of_ms period;
        tag = "sample-views";
        payload = Sample_views;
      }
    in
    Event_queue.schedule queue ~at:(Time.of_ms period) (Attacker_timer timer));

  let sample_views () =
    let views =
      Array.mapi (fun i node -> match node with Some nd when not crashed.(i) -> P.view nd | _ -> -1) nodes
    in
    view_samples := (Event_queue.now_ms queue, views) :: !view_samples
  in

  (* At the protocol boundary a message carries logical endpoints: a twin
     half's traffic is indistinguishable from its co-twin's — that is the
     entire attack surface.  The physical copy stays untouched for traces
     and replay (delays are keyed by physical link). *)
  let to_protocol (msg : Message.t) =
    if msg.Message.src < n && msg.Message.dst < n then msg
    else begin
      let m =
        Message.make ~id:msg.Message.id ~src:(to_logical msg.Message.src)
          ~dst:(to_logical msg.Message.dst) ~sent_at:msg.Message.sent_at ~tag:msg.Message.tag
          ~size:msg.Message.size msg.Message.payload
      in
      m.Message.delay_ms <- msg.Message.delay_ms;
      m
    end
  in
  let rec dispatch (msg : Message.t) =
    let dst = msg.Message.dst in
    if dst >= 0 && dst < pn then
      match msg.Message.payload with
      | Gossip_frame { origin; gid; tag; size; inner } ->
        (* First sight: unwrap for the protocol and keep the epidemic going;
           duplicates die here (their hop still counted as traffic). *)
        if not (Hashtbl.mem gossip_seen.(dst) (origin, gid)) then begin
          Hashtbl.replace gossip_seen.(dst) (origin, gid) ();
          (match config.Config.transport with
          | Config.Gossip { fanout } when not crashed.(dst) ->
            gossip_forward dst msg.Message.payload ~tag ~size ~fanout
          | Config.Gossip _ | Config.Direct -> ());
          incr msg_counter;
          let unwrapped =
            Message.make ~id:!msg_counter ~src:origin ~dst ~sent_at:msg.Message.sent_at ~tag ~size
              inner
          in
          dispatch unwrapped
        end
      | Rc_frame { seq; tag; size; inner } when nodes.(dst) <> None ->
        let src = msg.Message.src in
        (* Ack unconditionally, duplicates included: a duplicate frame
           usually means the previous ack was lost on the way back. *)
        send_from dst ~dst:src ~tag:"rc-ack" ~size:rc_header_bytes (Rc_ack { seq });
        if Hashtbl.mem rc_seen (src, dst, seq) then incr c_dup_dropped
        else begin
          Hashtbl.replace rc_seen (src, dst, seq) ();
          incr msg_counter;
          let unwrapped =
            Message.make ~id:!msg_counter ~src ~dst ~sent_at:msg.Message.sent_at ~tag ~size inner
          in
          unwrapped.Message.delay_ms <- msg.Message.delay_ms;
          dispatch unwrapped
        end
      | Rc_ack { seq } ->
        (* The channel key is (sender, receiver): the acked sender is this
           message's destination. *)
        Hashtbl.remove rc_out (dst, msg.Message.src, seq)
      | _ -> (
        match nodes.(dst) with
        | Some node ->
          incr c_delivered;
          (* Same guard as the Send site: don't render the payload when the
             row is going nowhere. *)
          if trace <> None then
            record Trace.Deliver ~node:dst ~peer:msg.Message.src ~tag:msg.Message.tag
              ~detail:(Message.payload_to_string msg.Message.payload);
          P.on_message node ctxs.(dst) (to_protocol msg);
          if telemetry_on then note_view dst
        | None -> ())
  in
  let handle = function
    | Deliver msg ->
      let dst = msg.Message.dst in
      if costs.Cost_model.verify_ms > 0. && dst >= 0 && dst < pn && msg.Message.src <> dst then begin
        (* The receiver's CPU must verify the message before the protocol
           sees it; contention shows up as extra queueing delay. *)
        let now = Event_queue.now_ms queue in
        let finish =
          Cost_model.charge cpus.(dst) ~now_ms:now ~cost_ms:costs.Cost_model.verify_ms
        in
        Event_queue.schedule queue ~at:(Time.of_ms finish) (Deliver_verified msg)
      end
      else dispatch msg
    | Deliver_verified msg -> dispatch msg
    | Node_timer timer ->
      let id = timer.Timer.id in
      let owner = timer.Timer.owner in
      let now_ms = Event_queue.now_ms queue in
      if
        (not (Dense_set.mem cancelled id))
        && Attack.Fault_schedule.crashed_at chaos ~node:owner ~at_ms:now_ms
      then begin
        (* Crash-recovery semantics: a down node's timer is deferred to
           its restart instant (its timeout fires "on reboot"), or lost
           with the node if it never comes back. *)
        match Attack.Fault_schedule.next_recovery_after chaos ~node:owner ~at_ms:now_ms with
        | Some recover_ms ->
          (* Deferred, not consumed: the id stays pending and cancellable. *)
          let deadline = Time.of_ms recover_ms in
          Event_queue.schedule queue ~at:deadline (Node_timer { timer with Timer.deadline })
        | None -> Dense_set.remove pending_timers id
      end
      else if consume_timer id then (
        match timer.Timer.payload with
        | Rc_retransmit { dst; seq } -> (
          (* Controller-owned alarm: never reaches [P.on_timer], and exempt
             from the incarnation check — the channel survives restarts. *)
          match Hashtbl.find_opt rc_out (owner, dst, seq) with
          | None -> () (* acked in the meantime; the channel is quiet *)
          | Some frame ->
            if frame.rc_attempts >= config.Config.retrans_max then begin
              (* Retry budget exhausted: the channel declares the peer
                 unreachable and abandons the frame. *)
              Hashtbl.remove rc_out (owner, dst, seq);
              record Trace.Drop ~node:owner ~peer:dst ~tag:frame.rc_tag ~detail:"rc-give-up"
            end
            else begin
              frame.rc_attempts <- frame.rc_attempts + 1;
              incr c_retrans;
              note_timer_fired timer;
              send_from owner ~dst ~tag:frame.rc_tag ~size:(frame.rc_size + rc_header_bytes)
                (Rc_frame { seq; tag = frame.rc_tag; size = frame.rc_size; inner = frame.rc_inner });
              rc_arm_retransmit owner ~dst ~seq ~attempt:frame.rc_attempts
            end)
        | _ ->
          let stale =
            has_restarts
            &&
            match Hashtbl.find_opt timer_epoch id with
            | Some epoch ->
              Hashtbl.remove timer_epoch id;
              epoch <> incarnation.(owner)
            | None -> false
          in
          if stale then
            (* Armed by a previous incarnation of a restarted node: the
               volatile state it referred to no longer exists. *)
            note_timer_cancelled timer
          else (
            match nodes.(owner) with
            | Some node ->
              note_timer_fired timer;
              record Trace.Timer_fired ~node:owner ~peer:(-1) ~tag:timer.Timer.tag ~detail:"";
              P.on_timer node ctxs.(owner) timer;
              if telemetry_on then note_view owner
            | None -> ()))
      else note_timer_cancelled timer
    | Attacker_timer timer -> (
      match timer.Timer.payload with
      | Sample_views ->
        sample_views ();
        let next = Time.add_ms timer.Timer.deadline (Option.get config.view_sample_ms) in
        let timer = { timer with Timer.deadline = next } in
        Event_queue.schedule queue ~at:next (Attacker_timer timer)
      | Workload_fire f ->
        if consume_timer timer.Timer.id then begin
          note_timer_fired timer;
          f ()
        end
        else note_timer_cancelled timer
      | Attack.Fault_schedule.Chaos_step (Attack.Fault_schedule.Restart p) when p >= 0 && p < pn
        ->
        if consume_timer timer.Timer.id then begin
          note_timer_fired timer;
          (* Let the chaos attacker log the transition first. *)
          attacker.Attack.Attacker.on_time_event attacker_env timer;
          (* Crash-recovery restart: a fresh node object — all volatile
             state is gone; only the WAL and the reliable-channel state
             survive.  Bumping the incarnation retires every alarm the
             previous life armed (including its crash-deferred ones, which
             land at this very instant but behind this timer). *)
          incarnation.(p) <- incarnation.(p) + 1;
          restart_at.(p) <- Event_queue.now_ms queue;
          awaiting_catchup.(p) <- true;
          (match tracer with
          | Some tr ->
            Obs.Tracer.instant tr ~name:"restart" ~cat:"recovery" ~node:p ~ts_us:(us_now ()) ()
          | None -> ());
          let node = P.create ctxs.(p) in
          nodes.(p) <- Some node;
          P.on_restart node ctxs.(p);
          if telemetry_on then note_view p
        end
        else note_timer_cancelled timer
      | _ ->
        if consume_timer timer.Timer.id then begin
          note_timer_fired timer;
          attacker.Attack.Attacker.on_time_event attacker_env timer
        end
        else note_timer_cancelled timer)
  in

  (* Liveness watchdog: the simulation has stalled when the clock has run
     [k * lambda] past the last decision by a counted node.  While the fault
     plan still has steps ahead (a pending recovery, heal or GST shift) the
     watchdog holds its fire — the scenario is still unfolding and relief
     may be scheduled — and the last step resets the stall clock. *)
  let last_chaos_ms =
    let chaos_last =
      List.fold_left Float.max Float.neg_infinity (Attack.Fault_schedule.step_times chaos)
    in
    (* A twins schedule is a scheduled disturbance like chaos: while its
       partition rounds are still unfolding the watchdog holds its fire, and
       the heal at the end resets the stall clock. *)
    match twins with
    | None -> chaos_last
    | Some tw -> Float.max chaos_last (Attack.Twins_schedule.end_ms tw)
  in
  (* [stall_ms] is an absolute override: it arms the watchdog even when the
     [watchdog] multiplier is unset, and wins over it when both are given —
     lossy runs make legitimate progress gaps longer than any sensible
     multiple of lambda. *)
  let watchdog_ms =
    match config.Config.stall_ms with
    | Some s -> Some s
    | None -> Option.map (fun k -> k *. config.lambda_ms) config.watchdog
  in
  (* Per-phase profiling: each handled event becomes a span at its simulated
     instant carrying the host-time cost of its handler as an argument —
     wall clock stays out of the registry (see the determinism rule). *)
  let ev_label = function
    | Deliver m | Deliver_verified m -> ("on_msg:" ^ m.Message.tag, m.Message.dst)
    | Node_timer t -> ("on_time:" ^ t.Timer.tag, t.Timer.owner)
    | Attacker_timer t -> ("attacker:" ^ t.Timer.tag, -1)
  in
  let handle_traced now_ms ev =
    incr c_events;
    match tracer with
    | None -> handle ev
    | Some tr ->
      let w0 = Unix.gettimeofday () in
      handle ev;
      let wall_dur_us = (Unix.gettimeofday () -. w0) *. 1e6 in
      let name, node = ev_label ev in
      Obs.Tracer.span tr ~name ~cat:"sim" ~node ~ts_us:(now_ms *. 1000.) ~dur_us:0.
        ~args:[ ("wall_dur_us", Obs.Tracer.Float wall_dur_us) ]
        ()
  in
  let rec loop () =
    if !finished <> None then ()
    else if cancel () then
      (* Cooperative wall-clock deadline (DESIGN.md §3.13): abandon the run
         between events.  Runs that complete are never perturbed, so their
         results stay deterministic. *)
      raise Supervisor.Cancelled
    else if Event_queue.popped queue >= config.max_events then outcome := Event_cap
    else if Event_queue.is_empty queue then outcome := Queue_drained
    else
      (* Allocation-free pop: take the event alone and read the advanced
         clock from the unboxed lane, instead of boxing a (time, event)
         option per event. *)
      let ev = Event_queue.next_exn queue in
      begin
        let now_ms = Event_queue.now_ms queue in
        if now_ms > config.max_time_ms then outcome := Timed_out
        else begin
          match watchdog_ms with
          | Some limit
            when now_ms >= last_chaos_ms
                 && now_ms -. Float.max !last_progress last_chaos_ms > limit ->
            Simlog.info "watchdog: no progress since %g ms, aborting at %g ms" !last_progress
              now_ms;
            outcome := Stalled { last_progress_ms = !last_progress }
          | _ ->
            handle_traced now_ms ev;
            loop ()
        end
      end
  in
  (* The mirror and ambient probes are domain-local; a cancellation or
     crash escaping the loop must not leave them pointing into this run's
     dead tracer for the next run scheduled on the same domain. *)
  Fun.protect
    ~finally:(fun () ->
      if telemetry_on then begin
        Simlog.set_mirror None;
        Obs.Probe.clear ()
      end)
    loop;

  let time_ms =
    match !finished with
    | Some at -> at
    | None -> Float.min (Event_queue.now_ms queue) config.max_time_ms
  in
  if telemetry_on then begin
    (match reg with
    | Some r ->
      Obs.Metrics.set_gauge r "sim.time_ms" time_ms;
      Obs.Metrics.set_gauge r "queue.pending_end" (float_of_int (Event_queue.pending queue));
      if twins <> None then Obs.Metrics.set_gauge r "twins.instances" (float_of_int (pn - n))
    | None -> ())
  end;
  (* The safety sweep runs over physical slots ([counted]/[aligned] are
     physical predicates); the published decision table carries logical ids,
     so a twin's two halves appear as two rows under one identity. *)
  let decisions_phys = List.init pn (fun p -> (p, List.rev !(decisions.(p)))) in
  let decisions_list = List.map (fun (p, values) -> (to_logical p, values)) decisions_phys in
  let violations = Invariant.violations monitor in
  (* The online agreement monitor subsumes the post-hoc sweep; keep the
     sweep as a final belt-and-braces pass over the complete sequences. *)
  let safety_violation =
    match Invariant.first_violation monitor ~monitor:"agreement" with
    | Some v -> Some v.Invariant.detail
    | None -> check_safety ~counted:aligned decisions_phys
  in
  let stats = Network.stats network in
  {
    config;
    outcome = !outcome;
    time_ms;
    messages_sent = stats.Network.sent;
    bytes_sent = stats.Network.bytes;
    messages_dropped = !dropped;
    events_processed = Event_queue.popped queue;
    decisions = decisions_list;
    safety_ok = safety_violation = None;
    safety_violation;
    violations;
    corrupted = List.sort compare !corrupted_order;
    per_decision_latency_ms = time_ms /. float_of_int config.decisions_target;
    per_decision_messages =
      float_of_int stats.Network.sent /. float_of_int config.decisions_target;
    final_views =
      Array.mapi
        (fun i node -> match node with Some nd when not crashed.(i) -> P.view nd | _ -> -1)
        nodes;
    view_samples = List.rev !view_samples;
    trace;
    metrics = reg;
    spans = tracer;
  }

let throughput r =
  if r.time_ms <= 0. then 0.
  else float_of_int r.config.Config.decisions_target /. (r.time_ms /. 1000.)

let wall_clock_of_run config =
  let start = Unix.gettimeofday () in
  let result = run config in
  (Unix.gettimeofday () -. start, result)
