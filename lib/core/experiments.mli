(** Canonical configurations for every experiment in the paper's evaluation
    (§IV) — the single source of truth shared by the benchmark harness, the
    CLI and the integration tests.  Parameters follow the paper exactly
    where it states them (figure captions) and use its defaults elsewhere:
    n = 16 nodes, lambda = 1000 ms, delays N(250, 50). *)

open Bftsim_net

val default_n : int

val all_protocols : string list
(** The eight protocols in Table I order. *)

val extension_protocols : string list
(** Protocols implemented beyond the paper: Tendermint, Sync HotStuff and
    HotStuff with the Cogsworth synchronizer. *)

val partially_synchronous : string list
(** pbft, hotstuff-ns, librabft — the protocols of Figs. 5 and 6. *)

val network_environments : (string * Delay_model.t) list
(** The four environments of Fig. 3, fast/stable through slow/unstable:
    N(250,50), N(500,100), N(1000,300), N(1000,1000). *)

val fig2_node_counts : int list
(** 4, 8, 16, 32, 64, 128, 256, 512. *)

val fig2_config : n:int -> Config.t
(** PBFT, lambda = 1000, N(250, 50) — the Fig. 2 scaling workload. *)

val fig3_config : protocol:string -> delay:Delay_model.t -> seed:int -> Config.t

val fig4_lambdas : float list
(** 1000 .. 3000 in 500 steps. *)

val fig4_config : protocol:string -> lambda_ms:float -> seed:int -> Config.t

val fig5_lambdas : float list
(** 150, 250, 500, 1000, 2000. *)

val fig5_config : protocol:string -> lambda_ms:float -> seed:int -> Config.t

val fig6_heal_ms : float

val fig6_protocols : string list
(** Algorand (the partition-resilient synchronous protocol) plus the
    partially-synchronous protocols and async BA. *)

val fig6_config : protocol:string -> seed:int -> Config.t
(** Two equal subnets, cross traffic dropped during [\[0, fig6_heal_ms)]. *)

val fig7_failstop_counts : int list
(** 0 .. 5 fail-stop nodes out of 16. *)

val fig7_config : protocol:string -> failstop:int -> seed:int -> Config.t
(** lambda = 1000, N(1000, 300) as in the Fig. 7 caption. *)

val fig8_f_values : int list
(** 1 .. 5 (n = 16 tolerates f <= 5). *)

val add_variants : string list

val fig8_static_config : protocol:string -> f:int -> seed:int -> Config.t

val fig8_adaptive_config : protocol:string -> f:int -> seed:int -> Config.t
(** Rushing adaptive attacker with a corruption budget of [f]. *)

val fig9_config : seed:int -> Config.t
(** HotStuff+NS, lambda = 150, N(250, 50), view sampling on — the
    view-synchronization case study. *)

val chaos_gst_ms : float
(** When the canonical chaos scenarios stabilize (15 s). *)

val chaos_watchdog : float
(** Watchdog multiplier used by the chaos sweeps (10 lambda). *)

val chaos_config : protocol:string -> seed:int -> Config.t
(** The canonical chaos scenario: fail-stop the [f] highest-numbered nodes
    at t = 0 and restart them at {!chaos_gst_ms}, with the liveness
    watchdog armed. *)

val chaos_overload_config : protocol:string -> seed:int -> Config.t
(** Crash [f + 1] nodes forever — beyond every tolerance bound, so no
    quorum forms.  The watchdog converts the inevitable non-termination
    into {!Controller.outcome.Stalled} within [chaos_watchdog * lambda]. *)

val chaos_turbulence_config : protocol:string -> seed:int -> Config.t
(** Lossy, duplicating, delay-spiked network until {!chaos_gst_ms}, then a
    GST shift to a fast stable delay model. *)

val campaign_supervision : Config.supervision
(** Recommended supervision knobs for long campaigns (DESIGN.md §3.13):
    60 s wall-clock deadline per replication attempt, 2 retries with a
    50 ms deterministic backoff base, quarantine after 3 failures. *)
