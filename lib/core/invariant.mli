(** Online invariant monitors.

    The seed checked agreement {e post hoc}, after the run ended; under
    chaos schedules that is too late — a violation may be transient state
    that later crashes, recoveries or view changes paper over.  This module
    checks each decision the instant it is made:

    - {b agreement}: for every decision index, all aligned honest nodes
      must decide the same value (first decider fixes the expectation).
      Per-index comparison presumes complete logs, so nodes that crashed
      and recovered mid-run (sparse logs — there is no state transfer) are
      excluded via the [aligned] predicate;
    - {b validity}: when enabled, every decided value must derive from a
      configured proposal (contain some proposed value verbatim — protocols
      encode decisions differently, e.g. PBFT's ["<input>/slot<k>"]).
      Meaningful only for protocols that decide input-derived values, not
      chained protocols that decide block digests;
    - {b crashed-decide}: a node that is down (config-crashed or
      chaos-crashed at that instant) must not decide at all — a sanity
      check on the fault-injection plumbing itself.

    Violations are recorded with their timestamp and returned in detection
    order; the controller surfaces them in the run result.  The liveness
    watchdog is the controller's job (it needs the event clock), not this
    module's. *)

type violation = {
  at_ms : float;  (** Simulation time the violation was detected. *)
  monitor : string;  (** ["agreement"], ["validity"] or ["crashed-decide"]. *)
  detail : string;  (** Human-readable account of what went wrong. *)
}

type t

val create :
  counted:(int -> bool) ->
  ?aligned:(int -> bool) ->
  crashed_now:(node:int -> at_ms:float -> bool) ->
  ?valid_values:string list ->
  unit ->
  t
(** [counted node] says whether the node's decisions are monitored at all
    (honest, not permanently failed) — evaluated at decision time.
    [aligned node] (default [counted]) additionally admits the node to the
    per-index agreement check; pass a stricter predicate to exempt nodes
    whose logs are legitimately sparse (crash-and-recover without state
    transfer).  [crashed_now] is the fault plan's crash predicate.
    [valid_values] enables the validity monitor with the proposal set
    decisions must derive from. *)

val on_decide : t -> node:int -> index:int -> value:string -> at_ms:float -> unit
(** Feed one decision ([index] = how many the node had already made). *)

val violations : t -> violation list
(** All violations so far, in detection order. *)

val ok : t -> bool

val first_violation : t -> monitor:string -> violation option
(** Earliest violation of the given monitor, if any. *)

val describe_violation : violation -> string
