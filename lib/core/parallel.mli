(** Domain-pool parallel map for independent simulation runs.

    {!Controller.run} is domain-safe (per-run state is confined to the run;
    the only cross-cutting hooks — the {!Bftsim_sim.Simlog} clock and the
    HotStuff+NS pacemaker-reset policy — are domain-local and configuration
    fields respectively), so independent replications can fan out across a
    fixed-size pool of OCaml 5 domains.  Determinism is preserved: results
    are keyed by input index and reassembled in input order, so aggregation
    sees the identical sequence the sequential path produces. *)

val default_jobs : unit -> int
(** Pool size used when [?jobs] is omitted:
    [Domain.recommended_domain_count () - 1] (at least 1, leaving one core
    for the coordinating domain), overridden by the [BFTSIM_JOBS]
    environment variable when it parses as a positive integer. *)

val map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] is [List.map f xs] computed by up to [jobs] domains (the
    caller participates as one worker; [jobs - 1] are spawned, never more
    than there are chunks).  Workers claim [chunk] (default 1) consecutive
    indices at a time from a shared atomic queue.  [f] must be domain-safe
    for the elements it receives.  Output order equals input order
    regardless of [jobs] and [chunk].  If any application of [f] raises,
    the first exception (by completion time) is re-raised in the caller
    after all workers have stopped.
    @raise Invalid_argument if [jobs < 1] or [chunk < 1]. *)

val try_map :
  ?jobs:int ->
  ?chunk:int ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result list
(** {!map} with per-element crash isolation: an application that raises
    becomes [Error (exn, backtrace)] in its slot and every other element
    still runs — the behaviour campaigns need (DESIGN.md §3.13), where
    {!map}'s first-failure short-circuit would discard the whole batch.
    Same ordering and determinism guarantees as {!map}. *)
