(** Domain-pool parallel map for independent simulation runs.

    {!Controller.run} is domain-safe (per-run state is confined to the run;
    the only cross-cutting hooks — the {!Bftsim_sim.Simlog} clock and the
    HotStuff+NS pacemaker-reset policy — are domain-local and configuration
    fields respectively), so independent replications can fan out across a
    fixed-size pool of OCaml 5 domains.  Determinism is preserved: results
    are keyed by input index and reassembled in input order, so aggregation
    sees the identical sequence the sequential path produces. *)

val default_jobs : unit -> int
(** Pool size used when [?jobs] is omitted:
    [Domain.recommended_domain_count () - 1] (at least 1, leaving one core
    for the coordinating domain), overridden by the [BFTSIM_JOBS]
    environment variable when it parses as a positive integer. *)

val tune_gc : unit -> unit
(** Grows the current domain's minor heap to the simulation profile
    (32 MiB) if it is smaller.  Event-loop garbage is short-lived, so a
    large minor heap makes collections rare — and, under a domain pool,
    divides the number of stop-the-world synchronizations by the same
    factor.  Entry points (CLI, bench) call it at startup; {!map} applies
    it to every spawned worker automatically.  Never shrinks a heap the
    user already grew via [OCAMLRUNPARAM]. *)

val map : ?jobs:int -> ?chunk:int -> ?oversubscribe:bool -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] is [List.map f xs] computed by up to [jobs] workers (the
    caller participates as one worker; at most [jobs - 1] are spawned,
    never more than there are chunks, and — because OCaml 5 minor GCs
    synchronize every running domain, making oversubscription strictly
    slower — never more than the hardware supports
    ([Domain.recommended_domain_count () - 1]); pass
    [~oversubscribe:true] to lift that last cap, e.g. to exercise true
    multi-domain interleavings on a small machine).  Workers claim [chunk]
    consecutive indices at a time from a shared atomic queue; by default
    [chunk] targets ~8 claims per worker (at least 1).  [f] must be
    domain-safe for the elements it receives.  Output order equals input
    order regardless of [jobs], [chunk] and the pool size actually used.
    If any application of [f] raises, the first exception (by completion
    time) is re-raised in the caller after all workers have stopped.
    @raise Invalid_argument if [jobs < 1] or [chunk < 1]. *)

val try_map :
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result list
(** {!map} with per-element crash isolation: an application that raises
    becomes [Error (exn, backtrace)] in its slot and every other element
    still runs — the behaviour campaigns need (DESIGN.md §3.13), where
    {!map}'s first-failure short-circuit would discard the whole batch.
    Same ordering and determinism guarantees as {!map}. *)
