(* Crash isolation, cooperative wall-clock deadlines, deterministic retry
   and quarantine for campaign tasks (DESIGN.md §3.13).

   The supervised function receives a [cancel] polling closure instead of
   being preempted: OCaml domains cannot be killed safely, and preemption
   would leave half-mutated simulation state behind.  The controller polls
   it in its event loop (next to the max_events and watchdog checks), so a
   deadline abandons a run between events — completed runs are never
   perturbed and stay deterministic.

   One supervisor serves every worker of a campaign; the bookkeeping
   (counters, per-key failure counts, quarantine set) is mutex-protected,
   while the task itself runs outside the lock. *)

module Sha256 = Bftsim_crypto.Sha256
module Simlog = Bftsim_sim.Simlog
module Obs = Bftsim_obs

exception Cancelled

type policy = {
  deadline_ms : float option;
  max_retries : int;
  quarantine_after : int;
  retry_base_ms : float;
  seed : int;
}

let default_policy =
  { deadline_ms = None; max_retries = 1; quarantine_after = 3; retry_base_ms = 0.; seed = 0 }

let policy_of_config (config : Config.t) =
  let s = config.Config.supervision in
  {
    deadline_ms = s.Config.deadline_ms;
    max_retries = s.Config.max_retries;
    quarantine_after = s.Config.quarantine_after;
    retry_base_ms = s.Config.retry_base_ms;
    seed = config.Config.seed;
  }

(* Deterministic jitter: u ∈ [0, 1) from the first 4 digest bytes of
   (seed, key, attempt).  A pure function of its inputs, so re-executing a
   campaign — or resuming it on another pool size — sleeps the same
   schedule. *)
let retry_delay_ms policy ~key ~attempt =
  if attempt < 1 then invalid_arg "Supervisor.retry_delay_ms: attempt < 1";
  if policy.retry_base_ms <= 0. then 0.
  else begin
    let d =
      Sha256.to_raw
        (Sha256.digest_string (Printf.sprintf "retry|%d|%s|%d" policy.seed key attempt))
    in
    let word =
      (Char.code d.[0] lsl 24) lor (Char.code d.[1] lsl 16) lor (Char.code d.[2] lsl 8)
      lor Char.code d.[3]
    in
    let u = float_of_int word /. 4294967296. in
    policy.retry_base_ms *. Float.ldexp 1. (attempt - 1) *. (0.5 +. u)
  end

type failure_kind = Crash of { exn : string; backtrace : string } | Deadline

type 'a outcome =
  | Ok of 'a
  | Crashed of { exn : string; backtrace : string; retries : int }
  | Deadline_exceeded of { wall_ms : float; retries : int }
  | Quarantined of { failures : int }

type stats = { runs_ok : int; runs_crashed : int; runs_timed_out : int; runs_retried : int }

type t = {
  policy : policy;
  on_failure : (key:string -> attempt:int -> wall_ms:float -> failure_kind -> unit) option;
  lock : Mutex.t;
  mutable counters : stats;
  failures_by_key : (string, int) Hashtbl.t;
  quarantine : (string, int) Hashtbl.t;
}

let create ?(policy = default_policy) ?on_failure () =
  if policy.max_retries < 0 then invalid_arg "Supervisor.create: max_retries < 0";
  if policy.quarantine_after < 1 then invalid_arg "Supervisor.create: quarantine_after < 1";
  (match policy.deadline_ms with
  | Some d when Float.is_nan d || d <= 0. ->
    invalid_arg "Supervisor.create: deadline_ms must be positive"
  | Some _ | None -> ());
  (* Crash reports without backtraces are not diagnosable from the journal
     alone; recording is cheap and idempotent. *)
  Printexc.record_backtrace true;
  {
    policy;
    on_failure;
    lock = Mutex.create ();
    counters = { runs_ok = 0; runs_crashed = 0; runs_timed_out = 0; runs_retried = 0 };
    failures_by_key = Hashtbl.create 16;
    quarantine = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* The polling closure handed to the task: the wall-clock read stride
   ramps 1, 2, 4, … up to 1024 polls, so fast pollers (an event loop
   calling per sub-microsecond event) amortize the clock read away while
   slow pollers (a sleep loop) still see the clock within their first few
   polls.  Latches once fired — the classification below keys off the
   latch, not off which exception the task happened to turn the
   cancellation into. *)
let make_cancel deadline_ms ~start_s ~fired =
  match deadline_ms with
  | None -> fun () -> false
  | Some d ->
    let polls = ref 0 in
    let next_check = ref 1 in
    fun () ->
      if not !fired then begin
        Stdlib.incr polls;
        if !polls >= !next_check then begin
          next_check := !polls + Stdlib.min !polls 1024;
          if (Unix.gettimeofday () -. start_s) *. 1000. >= d then fired := true
        end
      end;
      !fired

let supervise t ~key f =
  let quarantined_failures =
    locked t (fun () -> Hashtbl.find_opt t.quarantine key)
  in
  match quarantined_failures with
  | Some failures -> Quarantined { failures }
  | None ->
    let rec attempt_loop attempt =
      let start_s = Unix.gettimeofday () in
      let fired = ref false in
      let cancel = make_cancel t.policy.deadline_ms ~start_s ~fired in
      match f ~cancel with
      | v ->
        locked t (fun () -> t.counters <- { t.counters with runs_ok = t.counters.runs_ok + 1 });
        Ok v
      | exception exn ->
        let backtrace = Printexc.get_backtrace () in
        let wall_ms = (Unix.gettimeofday () -. start_s) *. 1000. in
        let exn_text = Printexc.to_string exn in
        let kind =
          if !fired then Deadline else Crash { exn = exn_text; backtrace }
        in
        (match kind with
        | Deadline ->
          Simlog.err "supervised %s: wall-clock deadline exceeded after %.0f ms (attempt %d)" key
            wall_ms attempt
        | Crash _ ->
          Simlog.err "supervised %s crashed (attempt %d): %s@\n%s" key attempt exn_text
            (if backtrace = "" then "<no backtrace: OCAMLRUNPARAM=b for call sites>"
             else String.trim backtrace));
        let now_quarantined =
          locked t (fun () ->
              t.counters <-
                (match kind with
                | Deadline -> { t.counters with runs_timed_out = t.counters.runs_timed_out + 1 }
                | Crash _ -> { t.counters with runs_crashed = t.counters.runs_crashed + 1 });
              let failures = 1 + Option.value ~default:0 (Hashtbl.find_opt t.failures_by_key key) in
              Hashtbl.replace t.failures_by_key key failures;
              (match t.on_failure with
              | Some hook -> hook ~key ~attempt ~wall_ms kind
              | None -> ());
              if failures >= t.policy.quarantine_after then begin
                Hashtbl.replace t.quarantine key failures;
                true
              end
              else false)
        in
        if now_quarantined || attempt > t.policy.max_retries then begin
          if now_quarantined then
            Simlog.err "supervised %s quarantined after %d failure(s)" key
              (locked t (fun () -> Hashtbl.find t.quarantine key));
          match kind with
          | Deadline -> Deadline_exceeded { wall_ms; retries = attempt - 1 }
          | Crash { exn; backtrace } -> Crashed { exn; backtrace; retries = attempt - 1 }
        end
        else begin
          locked t (fun () ->
              t.counters <- { t.counters with runs_retried = t.counters.runs_retried + 1 });
          let delay_ms = retry_delay_ms t.policy ~key ~attempt in
          if delay_ms > 0. then Unix.sleepf (delay_ms /. 1000.);
          attempt_loop (attempt + 1)
        end
    in
    attempt_loop 1

let stats t = locked t (fun () -> t.counters)

let quarantined t =
  locked t (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.quarantine []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let export_metrics t reg =
  let s = stats t in
  Obs.Metrics.incr ~by:s.runs_ok reg "supervisor.runs_ok";
  Obs.Metrics.incr ~by:s.runs_crashed reg "supervisor.runs_crashed";
  Obs.Metrics.incr ~by:s.runs_timed_out reg "supervisor.runs_timed_out";
  Obs.Metrics.incr ~by:s.runs_retried reg "supervisor.runs_retried"
