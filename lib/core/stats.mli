(** Descriptive statistics over repeated runs.

    Each experiment in the paper is "performed 100 times to calculate the
    average and standard deviation" (§IV); this module computes those
    summaries for any float-valued metric. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** Population standard deviation; 0 for a single sample. *)
  min : float;
  max : float;
  median : float;  (** p50 (linear interpolation, like {!percentile}). *)
  p95 : float;  (** Tail latency: 95th percentile. *)
  p99 : float;  (** Tail latency: 99th percentile. *)
}

val of_list : float list -> t
(** @raise Invalid_argument on []. *)

val ci95_halfwidth : t -> float
(** Half-width of the normal-approximation 95% confidence interval for the
    mean ([1.96 * stddev / sqrt count]); 0 for a single sample. *)

val percentile : float list -> float -> float
(** [percentile samples p] with [p] in [\[0, 100\]], linear interpolation.
    @raise Invalid_argument on [] or out-of-range [p]. *)

val pp : Format.formatter -> t -> unit
(** e.g. ["1234.5 ± 67.8 (n=20, p50/p95/p99 1230.0/1340.0/1360.0)"]. *)

val pp_ms_as_s : Format.formatter -> t -> unit
(** Renders a milliseconds-valued statistic in seconds. *)
