(* Trace exporters: JSONL (one event object per line, friendly to grep and
   jq) and the Chrome trace_event array format, which Perfetto and
   chrome://tracing open directly.

   Both formats share the per-entry object: the simulated timestamp is the
   primary axis ("ts"/"dur", microseconds, as the format requires) and the
   wall-clock offset rides along in "args.wall_us", so a viewer shows the
   protocol timeline while the raw numbers still attribute host time. *)

type format = Jsonl | Chrome

let format_of_string = function
  | "jsonl" -> Some Jsonl
  | "chrome" -> Some Chrome
  | _ -> None

let format_to_string = function Jsonl -> "jsonl" | Chrome -> "chrome"

let arg_to_json = function
  | Tracer.Str s -> Json.String s
  | Tracer.Int i -> Json.Int i
  | Tracer.Float f -> Json.Float f

let entry_to_json (e : Tracer.entry) =
  Json.Assoc
    ([
       ("name", Json.String e.name);
       ("cat", Json.String e.cat);
       ("ph", Json.String (match e.phase with Tracer.Complete -> "X" | Tracer.Instant -> "i"));
       ("ts", Json.Float e.ts_us);
     ]
    @ (match e.phase with
      | Tracer.Complete -> [ ("dur", Json.Float e.dur_us) ]
      | Tracer.Instant -> [ ("s", Json.String "t") ])
    @ [
        ("pid", Json.Int 0);
        ("tid", Json.Int e.node);
        ( "args",
          Json.Assoc
            (("wall_us", Json.Float e.wall_us) :: List.map (fun (k, v) -> (k, arg_to_json v)) e.args)
        );
      ])

let chrome_json t =
  Json.Assoc
    [
      ("traceEvents", Json.List (List.map entry_to_json (Tracer.entries t)));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Assoc
          [
            ("recorded", Json.Int (Tracer.recorded t));
            ("dropped", Json.Int (Tracer.dropped t));
          ] );
    ]

let write_chrome oc t = output_string oc (Json.to_string (chrome_json t))

let write_jsonl oc t =
  Tracer.iter t (fun e ->
      output_string oc (Json.to_string (entry_to_json e));
      output_char oc '\n')

let write_file ~path ~format t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> match format with Jsonl -> write_jsonl oc t | Chrome -> write_chrome oc t)
