(** Minimal JSON codec for the telemetry subsystem.

    Yojson is not among the project's dependencies, so this module provides
    the small slice the exporters and their tests need: a serializer used by
    {!Exporter}, and an RFC 8259 parser the test-suite uses to prove that
    exported traces are well-formed JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** Compact serialization.  Strings are escaped per RFC 8259; non-finite
    floats (which JSON cannot represent) degrade to [null]. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete document: escapes (including [\uXXXX] with
    surrogate pairs, decoded to UTF-8), nested containers, and numbers
    (integers without exponent/fraction parse as {!Int}).  Trailing
    non-whitespace is an error. *)

val member : string -> t -> t option
(** Field lookup on an [Assoc]; [None] on anything else. *)

val to_list : t -> t list option

val to_string_opt : t -> string option

val to_number : t -> float option
(** [Int] and [Float] both coerce to float. *)
