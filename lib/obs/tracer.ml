(* Event tracer backed by a bounded ring buffer.

   Recording is O(1) and allocation-light: one entry record into a
   preallocated array slot.  When the buffer is full the oldest entry is
   overwritten — a long run keeps the newest window, which is the one that
   explains how it ended.  Every entry carries both timestamps: the
   simulated instant (the x-axis the exporters use) and the wall-clock
   offset since tracer creation (where the host time actually went). *)

type arg = Str of string | Int of int | Float of float

type phase = Complete | Instant

type entry = {
  name : string;
  cat : string;
  node : int;  (* renders as the Chrome tid; -1 = controller/attacker *)
  ts_us : float;  (* simulated time, microseconds *)
  dur_us : float;  (* simulated duration; 0 for instants *)
  wall_us : float;  (* wall clock since tracer creation, microseconds *)
  phase : phase;
  args : (string * arg) list;
}

type t = {
  capacity : int;
  buf : entry array;
  mutable next : int;  (* slot the next entry lands in *)
  mutable total : int;  (* entries ever recorded *)
  epoch : float;  (* Unix.gettimeofday at creation *)
}

let default_capacity = 65536

let dummy =
  { name = ""; cat = ""; node = -1; ts_us = 0.; dur_us = 0.; wall_us = 0.; phase = Instant; args = [] }

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  { capacity; buf = Array.make capacity dummy; next = 0; total = 0; epoch = Unix.gettimeofday () }

let wall_us t = (Unix.gettimeofday () -. t.epoch) *. 1e6

let record t e =
  t.buf.(t.next) <- e;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let span t ?(args = []) ~name ~cat ~node ~ts_us ~dur_us () =
  record t { name; cat; node; ts_us; dur_us; wall_us = wall_us t; phase = Complete; args }

let instant t ?(args = []) ~name ~cat ~node ~ts_us () =
  record t { name; cat; node; ts_us; dur_us = 0.; wall_us = wall_us t; phase = Instant; args }

let length t = Stdlib.min t.total t.capacity

let recorded t = t.total

let dropped t = Stdlib.max 0 (t.total - t.capacity)

let entries t =
  (* Oldest first.  Before wraparound that is slots [0, total); after, the
     window starts at [next] (the slot the next write would claim is the
     oldest survivor). *)
  let n = length t in
  let start = if t.total <= t.capacity then 0 else t.next in
  List.init n (fun i -> t.buf.((start + i) mod t.capacity))

let iter t f = List.iter f (entries t)
