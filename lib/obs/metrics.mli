(** Metrics registry: named counters, gauges and fixed-bucket histograms.

    One registry belongs to one simulation run; the controller creates it,
    instrumentation writes to it without synchronization, and it rides out
    on [Controller.result].  Aggregation across runs goes through {!merge},
    which folds registries {e in the order given} — the runner passes seed
    order, so the merged registry is identical whatever domain pool executed
    the runs.

    {b Determinism rule}: registry values must derive only from simulated
    quantities.  Wall-clock measurements belong to the {!Tracer}; putting
    them in a registry would break the bit-identical-summaries guarantee. *)

type t

type histogram
(** Mutable fixed-bucket histogram handle (pre-resolved, hot-path safe). *)

val create : unit -> t

val default_buckets : float array
(** Log-ish spacing from 1 to 30000 — milliseconds-flavoured. *)

(** {1 Recording} *)

val counter : t -> string -> int ref
(** Get-or-create; the returned ref is the live cell, so call sites can
    resolve once and increment without further lookups. *)

val incr : ?by:int -> t -> string -> unit

val gauge : t -> string -> float ref

val set_gauge : t -> string -> float -> unit

val histogram : ?buckets:float array -> t -> string -> histogram
(** Get-or-create with the given upper bounds (strictly increasing; an
    overflow bucket is implicit).  [buckets] is only consulted on creation.
    @raise Invalid_argument on an empty or non-increasing layout, or if
    [name] is registered as a different cell type. *)

val observe_h : histogram -> float -> unit
(** Record one observation: bucket [i] holds values [<= bounds.(i)]
    (exceeding every bound lands in the overflow bucket); sum, count, min
    and max are tracked exactly. *)

val observe : ?buckets:float array -> t -> string -> float -> unit
(** [histogram] + [observe_h] in one call (per-call lookup; prefer the
    pre-resolved handle on hot paths). *)

val null_counter : unit -> int ref
(** A dead cell for disabled telemetry: increments go nowhere, so the
    disabled path costs one store instead of a branch per probe. *)

val null_histogram : unit -> histogram

(** {1 Snapshots and aggregation} *)

type histogram_snapshot = {
  s_bounds : float array;
  s_counts : int array;
  s_sum : float;
  s_count : int;
  s_min : float;  (** [infinity] when empty. *)
  s_max : float;  (** [neg_infinity] when empty. *)
}

type value = Counter_v of int | Gauge_v of float | Histogram_v of histogram_snapshot

val snapshot : t -> (string * value) list
(** Immutable copy, sorted by name — deterministic whatever the hash
    table's internal order. *)

val quantile_of_snapshot : histogram_snapshot -> float -> float
(** Quantile estimate ([p] in [0, 100]) from bucket counts with linear
    interpolation inside the bucket, clamped to the observed min/max.
    [nan] when empty. *)

val merge : t list -> t
(** Deterministic fold in list order: counters add, gauges keep the max,
    histograms add bucket-wise.
    @raise Invalid_argument when one name carries different cell types or
    bucket layouts across registries. *)

val equal : t -> t -> bool
(** Snapshot equality (used by determinism checks). *)

val pp : Format.formatter -> t -> unit
(** One line per cell in name order; histograms render count/sum/min/max
    and p50/p95/p99 estimates. *)

val to_json : t -> Json.t
(** Lossless tagged encoding: each cell is [{"counter": n}], [{"gauge": x}]
    or [{"histogram": {...}}] (the tag disambiguates a gauge holding an
    integral value from a counter).  Floats use the codec's shortest
    round-tripping representation, so {!of_json} reconstructs the registry
    exactly — the property the campaign journal's resume path relies on. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json t)] is a registry whose
    {!snapshot} equals [t]'s. *)
