(* Ambient telemetry sink, domain-local like the Simlog clock.

   The controller installs the current run's registry and tracer here at
   run entry (and always resets at the next entry), so library and
   user-protocol code can emit probes without the registry being threaded
   through every signature.  Domain-local storage keeps concurrent runs on
   different domains from seeing each other's sinks.  Every helper is a
   no-op when the corresponding sink is absent — the disabled path is one
   DLS read and a branch. *)

type sink = { metrics : Metrics.t option; tracer : Tracer.t option }

let key = Domain.DLS.new_key (fun () -> { metrics = None; tracer = None })

let set ?metrics ?tracer () = Domain.DLS.set key { metrics; tracer }

let clear () = set ()

let metrics () = (Domain.DLS.get key).metrics

let tracer () = (Domain.DLS.get key).tracer

let incr ?by name = match metrics () with Some r -> Metrics.incr ?by r name | None -> ()

let observe ?buckets name v =
  match metrics () with Some r -> Metrics.observe ?buckets r name v | None -> ()

let instant ?args ~name ~cat ~node ~ts_us () =
  match tracer () with Some tr -> Tracer.instant tr ?args ~name ~cat ~node ~ts_us () | None -> ()

let span ?args ~name ~cat ~node ~ts_us ~dur_us () =
  match tracer () with
  | Some tr -> Tracer.span tr ?args ~name ~cat ~node ~ts_us ~dur_us ()
  | None -> ()
