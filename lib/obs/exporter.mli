(** Trace exporters: JSONL and Chrome [trace_event] JSON.

    The Chrome output is the object form ([{"traceEvents": [...]}]) that
    [chrome://tracing] and Perfetto load directly; JSONL emits the same
    per-event objects one per line for grep/jq pipelines.  Timestamps
    ("ts"/"dur") are {e simulated} microseconds — the protocol timeline —
    while each event's [args.wall_us] carries the wall-clock offset for
    host-time attribution. *)

type format = Jsonl | Chrome

val format_of_string : string -> format option
(** ["jsonl"] | ["chrome"]. *)

val format_to_string : format -> string

val entry_to_json : Tracer.entry -> Json.t
(** One Chrome trace-event object: name, cat, ph (X/i), ts, dur/s, pid,
    tid (the node), args. *)

val chrome_json : Tracer.t -> Json.t
(** The full document, including recorded/dropped totals in [otherData]. *)

val write_chrome : out_channel -> Tracer.t -> unit

val write_jsonl : out_channel -> Tracer.t -> unit

val write_file : path:string -> format:format -> Tracer.t -> unit
(** Overwrites [path]. *)
