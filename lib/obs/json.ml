(* Minimal JSON codec.

   Yojson is not part of the dependency set, so the telemetry subsystem
   carries its own printer and parser: the exporters need a correct
   serializer, and the tests need to parse exporter output back to prove
   it is well-formed.  Scope is exactly RFC 8259 (objects, arrays,
   strings with escapes incl. \uXXXX surrogate pairs, numbers, literals);
   no streaming, no options. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* --- printing --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest float representation that round-trips; non-finite values have
   no JSON spelling and degrade to null (callers should avoid them). *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Assoc kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of string

type state = { input : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue := false
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "invalid hex digit in \\u escape"

let parse_hex4 st =
  if st.pos + 4 > String.length st.input then fail st "truncated \\u escape";
  let v =
    (hex_digit st st.input.[st.pos] lsl 12)
    lor (hex_digit st st.input.[st.pos + 1] lsl 8)
    lor (hex_digit st st.input.[st.pos + 2] lsl 4)
    lor hex_digit st st.input.[st.pos + 3]
  in
  st.pos <- st.pos + 4;
  v

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> advance st; Buffer.add_char buf '"'; loop ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; loop ()
      | Some '/' -> advance st; Buffer.add_char buf '/'; loop ()
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; loop ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; loop ()
      | Some 'r' -> advance st; Buffer.add_char buf '\r'; loop ()
      | Some 'b' -> advance st; Buffer.add_char buf '\b'; loop ()
      | Some 'f' -> advance st; Buffer.add_char buf '\012'; loop ()
      | Some 'u' ->
        advance st;
        let cp = parse_hex4 st in
        let cp =
          (* High surrogate: a low surrogate must follow; combine them. *)
          if cp >= 0xD800 && cp <= 0xDBFF then begin
            if
              st.pos + 1 < String.length st.input
              && st.input.[st.pos] = '\\'
              && st.input.[st.pos + 1] = 'u'
            then begin
              st.pos <- st.pos + 2;
              let low = parse_hex4 st in
              if low < 0xDC00 || low > 0xDFFF then fail st "invalid low surrogate";
              0x10000 + ((cp - 0xD800) lsl 10) + (low - 0xDC00)
            end
            else fail st "lone high surrogate"
          end
          else if cp >= 0xDC00 && cp <= 0xDFFF then fail st "lone low surrogate"
          else cp
        in
        add_utf8 buf cp;
        loop ()
      | _ -> fail st "invalid escape")
    | Some c when Char.code c < 0x20 -> fail st "raw control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek st with Some c when is_num_char c -> true | _ -> false) do
    advance st
  done;
  let text = String.sub st.input start (st.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "invalid number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* Magnitude beyond the int range still parses as a float. *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st (Printf.sprintf "invalid number %S" text))

let parse_literal st word v =
  let len = String.length word in
  if st.pos + len <= String.length st.input && String.sub st.input st.pos len = word then begin
    st.pos <- st.pos + len;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Assoc []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Assoc (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (elements [])
    end
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let st = { input = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors (the subset the tests need) --- *)

let member key = function Assoc kvs -> List.assoc_opt key kvs | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_number = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None
