(** Ambient telemetry sink — domain-local, like the [Simlog] clock hook.

    The controller installs the active run's registry/tracer at run entry;
    code anywhere below it (including user-written protocols) can then emit
    probes without plumbing a handle through its signatures.  All helpers
    are no-ops when the sink is absent, and sinks on different domains are
    independent, so concurrent runs never interleave their telemetry. *)

val set : ?metrics:Metrics.t -> ?tracer:Tracer.t -> unit -> unit
(** Installs the calling domain's sink (both components optional). *)

val clear : unit -> unit
(** [set ()] — removes both sinks. *)

val metrics : unit -> Metrics.t option

val tracer : unit -> Tracer.t option

val incr : ?by:int -> string -> unit
(** Counter increment on the ambient registry; no-op without one. *)

val observe : ?buckets:float array -> string -> float -> unit
(** Histogram observation on the ambient registry; no-op without one. *)

val instant :
  ?args:(string * Tracer.arg) list -> name:string -> cat:string -> node:int -> ts_us:float -> unit -> unit
(** Trace instant on the ambient tracer; no-op without one. *)

val span :
  ?args:(string * Tracer.arg) list ->
  name:string ->
  cat:string ->
  node:int ->
  ts_us:float ->
  dur_us:float ->
  unit ->
  unit
