(** Lightweight event tracer over a bounded ring buffer.

    The controller records typed spans and instants (message
    enqueue→deliver, timer set→fire, event dispatch, decisions, view
    changes, mirrored warnings); {!Exporter} renders them as JSONL or
    Chrome [trace_event] JSON.  The buffer is fixed-size and overwrites
    oldest-first, so memory is bounded by [capacity] and a long run keeps
    the newest window — {!dropped} says how much history was shed. *)

type arg = Str of string | Int of int | Float of float

type phase = Complete  (** Chrome ["ph": "X"] — a duration. *) | Instant  (** ["ph": "i"]. *)

type entry = {
  name : string;
  cat : string;  (** Category: [net], [timer], [sim], [protocol], [log]. *)
  node : int;  (** Rendered as the Chrome thread id; -1 = controller. *)
  ts_us : float;  (** Simulated time in microseconds — the exported x-axis. *)
  dur_us : float;  (** Simulated duration; 0 for instants. *)
  wall_us : float;  (** Wall clock since tracer creation (microseconds). *)
  phase : phase;
  args : (string * arg) list;
}

type t

val default_capacity : int
(** 65536 entries. *)

val create : ?capacity:int -> unit -> t
(** @raise Invalid_argument on a non-positive capacity. *)

val span :
  t ->
  ?args:(string * arg) list ->
  name:string ->
  cat:string ->
  node:int ->
  ts_us:float ->
  dur_us:float ->
  unit ->
  unit

val instant :
  t -> ?args:(string * arg) list -> name:string -> cat:string -> node:int -> ts_us:float -> unit -> unit

val entries : t -> entry list
(** Retained entries, oldest first. *)

val iter : t -> (entry -> unit) -> unit

val length : t -> int
(** Retained entry count ([min recorded capacity]). *)

val recorded : t -> int
(** Entries ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Entries lost to overwriting ([recorded - length]). *)
