(* Metrics registry: named counters, gauges and fixed-bucket histograms.

   One registry belongs to one simulation run (the controller creates it
   and attaches it to the result), so recording never synchronizes —
   concurrent runs on different domains each write their own registry, the
   same confinement discipline as the Simlog clock.  Cross-run aggregation
   happens after the fact through [merge], which folds registries in the
   order given (the runner passes seed order), making the merged registry
   a deterministic function of the run set alone — independent of how many
   domains produced it.

   Determinism rule: registry values must derive only from simulated
   quantities (event counts, simulated delays, sizes).  Wall-clock numbers
   are nondeterministic and belong to the tracer, never to a registry —
   otherwise merged summaries stop being bit-identical across pool sizes. *)

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length = Array.length bounds + 1; last = overflow *)
  mutable sum : float;
  mutable count : int;
  mutable vmin : float;
  mutable vmax : float;
}

type cell = Counter of int ref | Gauge of float ref | Histogram of histogram

type t = { cells : (string, cell) Hashtbl.t }

let create () = { cells = Hashtbl.create 64 }

(* Latency-flavoured default: sub-ms to tens of seconds, log-ish spacing. *)
let default_buckets =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.; 10000.; 30000. |]

let validate_bounds bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Metrics: histogram needs at least one bucket bound";
  for i = 0 to n - 2 do
    if bounds.(i) >= bounds.(i + 1) then
      invalid_arg "Metrics: histogram bounds must be strictly increasing"
  done

let fresh_histogram bounds =
  validate_bounds bounds;
  {
    bounds = Array.copy bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    sum = 0.;
    count = 0;
    vmin = infinity;
    vmax = neg_infinity;
  }

let type_error name = invalid_arg (Printf.sprintf "Metrics: %S already registered with another type" name)

let counter t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Counter r) -> r
  | Some _ -> type_error name
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.cells name (Counter r);
    r

let incr ?(by = 1) t name =
  let r = counter t name in
  r := !r + by

let gauge t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Gauge r) -> r
  | Some _ -> type_error name
  | None ->
    let r = ref 0. in
    Hashtbl.replace t.cells name (Gauge r);
    r

let set_gauge t name v = gauge t name := v

let histogram ?(buckets = default_buckets) t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Histogram h) -> h
  | Some _ -> type_error name
  | None ->
    let h = fresh_histogram buckets in
    Hashtbl.replace t.cells name (Histogram h);
    h

let observe_h h v =
  let n = Array.length h.bounds in
  (* Bucket i holds values <= bounds.(i) (and > bounds.(i-1)); the trailing
     slot is the overflow bucket.  Linear scan: bucket arrays are short. *)
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    Stdlib.incr i
  done;
  h.counts.(!i) <- h.counts.(!i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v

let observe ?buckets t name v = observe_h (histogram ?buckets t name) v

(* Disabled-path sinks: a pre-resolved handle that goes nowhere, so
   instrumented hot paths pay one increment on a dead cell instead of a
   branch plus a hash lookup.  Fresh per call site — sharing one across
   domains would be a benign but noisy data race. *)
let null_counter () = ref 0

let null_histogram () = fresh_histogram [| infinity |]

(* --- snapshots (deterministic order) --- *)

type histogram_snapshot = {
  s_bounds : float array;
  s_counts : int array;
  s_sum : float;
  s_count : int;
  s_min : float;
  s_max : float;
}

type value = Counter_v of int | Gauge_v of float | Histogram_v of histogram_snapshot

let snapshot_h h =
  {
    s_bounds = Array.copy h.bounds;
    s_counts = Array.copy h.counts;
    s_sum = h.sum;
    s_count = h.count;
    s_min = h.vmin;
    s_max = h.vmax;
  }

let snapshot t =
  Hashtbl.fold
    (fun name cell acc ->
      let v =
        match cell with
        | Counter r -> Counter_v !r
        | Gauge r -> Gauge_v !r
        | Histogram h -> Histogram_v (snapshot_h h)
      in
      (name, v) :: acc)
    t.cells []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Quantile estimate from bucket counts: find the bucket holding the rank,
   interpolate linearly inside it (observed min/max clamp the ends, so the
   estimate never leaves the observed range). *)
let quantile_of_snapshot hs p =
  if p < 0. || p > 100. then invalid_arg "Metrics.quantile: p out of range";
  if hs.s_count = 0 then Float.nan
  else begin
    let rank = p /. 100. *. float_of_int hs.s_count in
    let nb = Array.length hs.s_counts in
    let rec walk i cum =
      if i >= nb then hs.s_max
      else
        let cum' = cum +. float_of_int hs.s_counts.(i) in
        if cum' >= rank && hs.s_counts.(i) > 0 then begin
          let lower =
            if i = 0 then hs.s_min else Float.max hs.s_min hs.s_bounds.(i - 1)
          in
          let upper =
            if i < Array.length hs.s_bounds then Float.min hs.s_max hs.s_bounds.(i)
            else hs.s_max
          in
          let inside = (rank -. cum) /. float_of_int hs.s_counts.(i) in
          lower +. ((upper -. lower) *. Float.max 0. (Float.min 1. inside))
        end
        else walk (i + 1) cum'
    in
    walk 0 0.
  end

(* --- merging --- *)

(* Fold registries in list order; the result depends only on that order:
   counters add, gauges keep the maximum (the only order-free combination
   that still means something for end-of-run levels), histograms add
   bucket-wise (bucket layouts for one name must agree — they come from the
   same instrumentation site). *)
let merge ts =
  let out = create () in
  List.iter
    (fun t ->
      List.iter
        (fun (name, v) ->
          match v with
          | Counter_v c -> incr ~by:c out name
          | Gauge_v g -> (
            match Hashtbl.find_opt out.cells name with
            | Some (Gauge r) -> r := Float.max !r g
            | Some _ -> type_error name
            | None -> set_gauge out name g)
          | Histogram_v hs ->
            let h =
              match Hashtbl.find_opt out.cells name with
              | Some (Histogram h) ->
                if h.bounds <> hs.s_bounds then
                  invalid_arg
                    (Printf.sprintf "Metrics.merge: %S has mismatched bucket layouts" name);
                h
              | Some _ -> type_error name
              | None ->
                let h = fresh_histogram hs.s_bounds in
                Hashtbl.replace out.cells name (Histogram h);
                h
            in
            Array.iteri (fun i c -> h.counts.(i) <- h.counts.(i) + c) hs.s_counts;
            h.sum <- h.sum +. hs.s_sum;
            h.count <- h.count + hs.s_count;
            if hs.s_min < h.vmin then h.vmin <- hs.s_min;
            if hs.s_max > h.vmax then h.vmax <- hs.s_max)
        (snapshot t))
    ts;
  out

(* --- rendering --- *)

let pp ppf t =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v c -> Format.fprintf ppf "%-32s %d@." name c
      | Gauge_v g -> Format.fprintf ppf "%-32s %g@." name g
      | Histogram_v hs ->
        if hs.s_count = 0 then Format.fprintf ppf "%-32s count=0@." name
        else
          Format.fprintf ppf "%-32s count=%d sum=%g min=%g max=%g p50=%g p95=%g p99=%g@." name
            hs.s_count hs.s_sum hs.s_min hs.s_max
            (quantile_of_snapshot hs 50.)
            (quantile_of_snapshot hs 95.)
            (quantile_of_snapshot hs 99.))
    (snapshot t)

(* Cell kinds are tagged explicitly: an untagged encoding cannot tell a
   counter from a gauge that happens to hold an integral value (the codec
   prints 16.0 as "16"), and [of_json] must reconstruct the exact registry
   for the journal-resume byte-identity guarantee. *)
let to_json t =
  Json.Assoc
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Counter_v c -> Json.Assoc [ ("counter", Json.Int c) ]
           | Gauge_v g -> Json.Assoc [ ("gauge", Json.Float g) ]
           | Histogram_v hs ->
             Json.Assoc
               [
                 ( "histogram",
                   Json.Assoc
                     ([
                        ( "bounds",
                          Json.List (Array.to_list hs.s_bounds |> List.map (fun b -> Json.Float b)) );
                        ( "counts",
                          Json.List (Array.to_list hs.s_counts |> List.map (fun c -> Json.Int c)) );
                        ("sum", Json.Float hs.s_sum);
                        ("count", Json.Int hs.s_count);
                      ]
                     @
                     (* min/max have no JSON spelling when empty (±inf);
                        omitting them restores the empty-histogram state. *)
                     if hs.s_count = 0 then []
                     else [ ("min", Json.Float hs.s_min); ("max", Json.Float hs.s_max) ]) );
               ] ))
       (snapshot t))

let of_json json =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let number name = function
    | Some (Json.Int i) -> Ok (float_of_int i)
    | Some (Json.Float f) -> Ok f
    | _ -> err "Metrics.of_json: %s is not a number" name
  in
  let int_field name = function
    | Some (Json.Int i) -> Ok i
    | _ -> err "Metrics.of_json: %s is not an integer" name
  in
  match json with
  | Json.Assoc cells ->
    let t = create () in
    let rec go = function
      | [] -> Ok t
      | (name, cell) :: rest -> (
        match cell with
        | Json.Assoc [ ("counter", Json.Int c) ] ->
          incr ~by:c t name;
          go rest
        | Json.Assoc [ ("gauge", g) ] ->
          let* v = number name (Some g) in
          set_gauge t name v;
          go rest
        | Json.Assoc [ ("histogram", (Json.Assoc _ as h)) ] ->
          let* bounds =
            match Json.member "bounds" h with
            | Some (Json.List bs) ->
              let rec nums acc = function
                | [] -> Ok (Array.of_list (List.rev acc))
                | b :: bs ->
                  let* v = number (name ^ ".bounds") (Some b) in
                  nums (v :: acc) bs
              in
              nums [] bs
            | _ -> err "Metrics.of_json: %s has no bounds list" name
          in
          let* counts =
            match Json.member "counts" h with
            | Some (Json.List cs) ->
              let rec ints acc = function
                | [] -> Ok (Array.of_list (List.rev acc))
                | c :: cs ->
                  let* v = int_field (name ^ ".counts") (Some c) in
                  ints (v :: acc) cs
              in
              ints [] cs
            | _ -> err "Metrics.of_json: %s has no counts list" name
          in
          if Array.length counts <> Array.length bounds + 1 then
            err "Metrics.of_json: %s bounds/counts length mismatch" name
          else
            let* sum = number (name ^ ".sum") (Json.member "sum" h) in
            let* count = int_field (name ^ ".count") (Json.member "count" h) in
            let* vmin =
              if count = 0 then Ok infinity else number (name ^ ".min") (Json.member "min" h)
            in
            let* vmax =
              if count = 0 then Ok neg_infinity else number (name ^ ".max") (Json.member "max" h)
            in
            (match histogram ~buckets:bounds t name with
            | hist ->
              Array.blit counts 0 hist.counts 0 (Array.length counts);
              hist.sum <- sum;
              hist.count <- count;
              hist.vmin <- vmin;
              hist.vmax <- vmax;
              go rest
            | exception Invalid_argument m -> Error m)
        | _ -> err "Metrics.of_json: unrecognized cell %S" name)
    in
    go cells
  | _ -> Error "Metrics.of_json: expected an object of cells"

let equal a b = snapshot a = snapshot b
