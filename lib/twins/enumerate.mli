(** Bounded, symmetry-reduced enumeration of twins attack schedules (Bano
    et al., "Twins: BFT Systems Made Robust", §IV).

    The enumerator walks every schedule of [rounds] rounds over one twinned
    identity (logical 0, halves at physical 0 and [n]), where a round is
    either fully connected or a two-block partition, crossed with an
    optional leader prefix pinned on the twin.  Two prunings keep the space
    small without losing executions:

    - {e honest interchangeability}: blocks always take a prefix of the
      honest ids, so partitions differing only in {e which} honest nodes
      are split collapse to one shape;
    - {e canonicalization}: per-round block relabeling and the global swap
      of the two twin halves are quotiented out ({!canonical_key}).

    Emission is most-adversarial-first ({!adversarial_weight}), so budgeted
    campaigns examine leader-pinned, half-isolating schedules — the shapes
    that historically break pacemakers — before benign ones. *)

type round =
  | Healed
  | Split of { h : int; a : int; b : int }
      (** [h] honest nodes (logical 1..h) in block 1, the rest in block 2;
          [a]/[b] in [{1, 2}] place twin half A (physical 0) and half B
          (physical n). *)

type schedule = {
  rounds : round list;
  pinned : int;  (** Views 0..pinned-1 led by the twin; 0 = no pinning. *)
}

type stats = {
  enumerated : int;  (** Raw schedules before deduplication. *)
  unique : int;  (** After canonicalization. *)
  emitted : int;  (** After the campaign budget cap (0 from {!enumerate}). *)
}

val twin : int
(** The twinned logical identity every enumerated schedule uses (0). *)

val canonical_key : n:int -> schedule -> (int * int * int) list * int
(** Stable deduplication key: least encoding under per-round block swaps
    and the global half swap. *)

val adversarial_weight : n:int -> schedule -> int
(** Emission priority: rounds separating a twin half from the honest
    majority count 1 each, a pinned leader prefix counts 2. *)

val enumerate : n:int -> rounds:int -> schedule list * stats
(** All unique schedules for [n] logical nodes, most-adversarial-first
    (ties broken by canonical key, so the order is deterministic).
    [stats.emitted] is 0; campaigns fill it after applying their budget.
    @raise Invalid_argument when [n < 2] or [rounds < 1]. *)

val to_twins_schedule :
  n:int -> round_ms:float -> schedule -> Bftsim_attack.Twins_schedule.t
(** Compile to the executable schedule the controller consumes. *)

val describe : schedule -> string
(** Compact one-line form, e.g. ["h3:A2:B2;-;h3:A1:B2 pin8"]. *)
