(** Twins campaign synthesis: enumerated schedules compiled into
    conformance scenarios, ready for {!Bftsim_conformance.Harness}
    [fuzz_scenarios].

    Each scenario pairs one enumerated schedule with one protocol, under a
    deterministic constant-delay network, and is judged by the full oracle
    suite.  Liveness is only expected of schedules that never cut an honest
    node off from a quorum ({!Bftsim_attack.Twins_schedule.preserves_liveness});
    crash-fragile protocols get {e no} exemption here — a twins campaign is
    precisely the tool that rediscovers such weaknesses. *)

type params = {
  n : int;  (** Logical system size (physical size is [n + 1]). *)
  rounds : int;  (** Schedule length in rounds. *)
  round_ms : float;  (** Round duration, sim-ms. *)
  lambda_ms : float;  (** Protocol timeout parameter. *)
  delay_ms : float;  (** Constant link delay. *)
  seed : int;  (** Config seed shared by every scenario. *)
  max_time_ms : float;  (** Simulated-time cap per run. *)
}

val default_params : params
(** n = 4, 3 rounds of 2000 ms, lambda 1000 ms, delay 100 ms, seed 1,
    240 s cap. *)

val applicable_protocols : string list -> string list
(** The subset twins scenarios apply to (non-synchronous models). *)

val scenario_of :
  params:params -> string -> Enumerate.schedule -> Bftsim_conformance.Scenario.t

val synthesize :
  ?protocols:string list ->
  budget:int ->
  params:params ->
  unit ->
  Bftsim_conformance.Scenario.t list * Enumerate.stats
(** [synthesize ~budget ~params ()] enumerates, keeps the first [budget]
    schedules (most-adversarial-first), and crosses them with every
    applicable protocol ([protocols] defaults to the whole registry).
    Deterministic: same arguments, same scenario list.
    @raise Invalid_argument when [budget <= 0]. *)

val pp_stats : Format.formatter -> Enumerate.stats -> unit
