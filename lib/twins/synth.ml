open Bftsim_core
module Attack = Bftsim_attack
module Protocols = Bftsim_protocols
module Conf = Bftsim_conformance

type params = {
  n : int;
  rounds : int;
  round_ms : float;
  lambda_ms : float;
  delay_ms : float;
  seed : int;
  max_time_ms : float;
}

let default_params =
  {
    n = 4;
    rounds = 3;
    (* One base view per round: views last 2*lambda at the base cadence, so
       each round gives the protocol one leader slot under that round's
       partition. *)
    round_ms = 2000.;
    lambda_ms = 1000.;
    delay_ms = 100.;
    seed = 1;
    max_time_ms = 240_000.;
  }

let applicable_protocols names =
  List.filter
    (fun name ->
      let model = Protocols.Protocol_intf.model (Protocols.Registry.find_exn name) in
      Conf.Scenario.applicable ~model Conf.Scenario.Twins)
    names

(* Unlike the random conformance fuzzer, the enumerator does NOT exempt
   crash-fragile protocols from liveness judgment: rediscovering a
   documented pacemaker weakness (hotstuff-ns's never-reset exponential
   backoff) from scratch is exactly what a twins campaign is for.  Only
   schedules that keep every honest node quorum-connected are judged for
   liveness at all; the rest are safety-only. *)
let scenario_of ~params protocol schedule =
  let tw = Enumerate.to_twins_schedule ~n:params.n ~round_ms:params.round_ms schedule in
  let config =
    Config.make protocol ~n:params.n ~lambda_ms:params.lambda_ms
      ~delay:(Bftsim_net.Delay_model.Constant params.delay_ms)
      ~seed:params.seed ~twins:tw ~inputs:Config.Distinct ~max_time_ms:params.max_time_ms
  in
  let expect_live =
    Attack.Twins_schedule.preserves_liveness ~n:params.n
      ~quorum:(Protocols.Quorum.quorum params.n) tw
  in
  { Conf.Scenario.config; family = Conf.Scenario.Twins; expect_live }

let synthesize ?protocols ~budget ~params () =
  if budget <= 0 then invalid_arg "Twins.Synth.synthesize: budget <= 0";
  let protocols =
    match protocols with
    | Some ps when ps <> [] -> applicable_protocols ps
    | _ -> applicable_protocols (Protocols.Registry.names ())
  in
  let schedules, stats = Enumerate.enumerate ~n:params.n ~rounds:params.rounds in
  let emitted = List.filteri (fun i _ -> i < budget) schedules in
  let scenarios =
    List.concat_map
      (fun protocol -> List.map (scenario_of ~params protocol) emitted)
      protocols
  in
  (scenarios, { stats with Enumerate.emitted = List.length emitted })

let pp_stats ppf (stats : Enumerate.stats) =
  Format.fprintf ppf "%d raw schedule(s), %d unique (dedup %.2fx), %d emitted" stats.enumerated
    stats.unique
    (if stats.unique = 0 then 1. else float_of_int stats.enumerated /. float_of_int stats.unique)
    stats.emitted
