module Attack = Bftsim_attack

(* One schedule round over the physical replica set, in symmetry-reduced
   form: either fully connected, or a two-block partition described by how
   many honest nodes sit in block 1 and which block each twin half joins.
   Honest nodes are interchangeable under this encoding (block 1 always
   takes the honest prefix), which is the Twins paper's partition-shape
   pruning: with leaders pinned to the twinned identity, executions differ
   only up to a relabeling of honest replicas. *)
type round =
  | Healed
  | Split of { h : int; a : int; b : int }
      (** [h] honest nodes (logical 1..h) in block 1, the rest in block 2;
          [a]/[b] in [{1, 2}] place twin half A (physical 0) and half B
          (physical n). *)

type schedule = {
  rounds : round list;
  pinned : int;  (** Views 0..pinned-1 are led by the twinned identity; 0 = no pinning. *)
}

type stats = { enumerated : int; unique : int; emitted : int }

let twin = 0

(* --- canonicalization -------------------------------------------------- *)

(* Two symmetries identify schedules: swapping the two blocks of any round
   (block labels are arbitrary) and swapping the two twin halves across the
   whole schedule (the halves run identical code and credentials; only
   their physical ids differ).  The canonical key is the least encoding
   under both. *)

let swap_blocks ~n = function
  | Healed -> Healed
  | Split { h; a; b } -> Split { h = n - 1 - h; a = 3 - a; b = 3 - b }

let swap_halves = function
  | Healed -> Healed
  | Split { h; a; b } -> Split { h; a = b; b = a }

let encode = function Healed -> (-1, 0, 0) | Split { h; a; b } -> (h, a, b)

let canonical_key ~n { rounds; pinned } =
  let min_round r = min (encode r) (encode (swap_blocks ~n r)) in
  let variant rs = List.map min_round rs in
  (min (variant rounds) (variant (List.map swap_halves rounds)), pinned)

(* --- enumeration ------------------------------------------------------- *)

let round_options ~n =
  let splits =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b ->
                let size1 = h + (if a = 1 then 1 else 0) + (if b = 1 then 1 else 0) in
                let size2 = n - 1 - h + (if a = 2 then 1 else 0) + (if b = 2 then 1 else 0) in
                (* An empty block means the round is really fully connected;
                   Healed already covers it. *)
                if size1 = 0 || size2 = 0 then None else Some (Split { h; a; b }))
              [ 1; 2 ])
          [ 1; 2 ])
      (List.init n Fun.id)
  in
  Healed :: splits

let rec power options = function
  | 0 -> [ [] ]
  | k -> List.concat_map (fun rest -> List.map (fun o -> o :: rest) options) (power options (k - 1))

(* Most-adversarial-first emission order: rounds that keep a twin half away
   from the honest-majority block create the stale state and failed views
   the attack needs, and pinning leadership on the twin concentrates those
   failures.  Budgeted campaigns examine those schedules first. *)
let adversarial_weight ~n { rounds; pinned } =
  let per_round = function
    | Healed -> 0
    | Split { h; a; b } ->
      let majority = if 2 * h >= n - 1 then 1 else 2 in
      (if a <> majority then 1 else 0) + if b <> majority then 1 else 0
  in
  List.fold_left (fun acc r -> acc + per_round r) (if pinned > 0 then 2 else 0) rounds

let enumerate ~n ~rounds =
  if n < 2 then invalid_arg "Twins.Enumerate.enumerate: n < 2";
  if rounds < 1 then invalid_arg "Twins.Enumerate.enumerate: rounds < 1";
  (* The pinned prefix is kept short deliberately: every partial-synchrony
     protocol doubles its view timeout while stuck, so traversing k failed
     pinned views costs O(lambda * 2^k) for {e correct} implementations
     too.  A prefix of rounds + 1 views keeps that burden bounded (~2^4
     lambda) while still handing the twin a run of leader slots; genuine
     pacemaker weaknesses (hotstuff-ns) stall under plain rotation anyway. *)
  let pinned_options = [ 0; rounds + 1 ] in
  let raw =
    List.concat_map
      (fun rs ->
        if List.for_all (fun r -> r = Healed) rs then []
        else List.map (fun pinned -> { rounds = rs; pinned }) pinned_options)
      (power (round_options ~n) rounds)
  in
  let seen = Hashtbl.create 1024 in
  let unique =
    List.filter
      (fun s ->
        let key = canonical_key ~n s in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      raw
  in
  let ordered =
    List.stable_sort
      (fun s1 s2 ->
        match compare (adversarial_weight ~n s2) (adversarial_weight ~n s1) with
        | 0 -> compare (canonical_key ~n s1) (canonical_key ~n s2)
        | c -> c)
      unique
  in
  (ordered, { enumerated = List.length raw; unique = List.length unique; emitted = 0 })

(* --- compilation to an executable schedule ----------------------------- *)

let to_twins_schedule ~n ~round_ms { rounds; pinned } =
  let groups = function
    | Healed -> []
    | Split { h; a; b } ->
      let honest1 = List.init h (fun i -> i + 1) in
      let honest2 = List.init (n - 1 - h) (fun i -> i + 1 + h) in
      let block1 = (if a = 1 then [ twin ] else []) @ (if b = 1 then [ n ] else []) @ honest1 in
      let block2 = (if a = 2 then [ twin ] else []) @ (if b = 2 then [ n ] else []) @ honest2 in
      [ block1; block2 ]
  in
  {
    Attack.Twins_schedule.ids = [ twin ];
    round_ms;
    rounds = List.map groups rounds;
    leaders = List.init pinned (fun _ -> twin);
  }

let describe { rounds; pinned } =
  let round_s = function
    | Healed -> "-"
    | Split { h; a; b } -> Printf.sprintf "h%d:A%d:B%d" h a b
  in
  Printf.sprintf "%s%s"
    (String.concat ";" (List.map round_s rounds))
    (if pinned = 0 then "" else Printf.sprintf " pin%d" pinned)
