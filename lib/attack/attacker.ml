open Bftsim_sim
open Bftsim_net

type verdict = Deliver | Drop

type env = {
  n : int;
  f : int;
  lambda_ms : float;
  now : unit -> Time.t;
  rng : Rng.t;
  topology : Topology.t;
  set_timer : delay_ms:float -> tag:string -> Timer.payload -> Timer.id;
  inject :
    src:int -> dst:int -> delay_ms:float -> tag:string -> size:int -> Message.payload -> unit;
  corrupt : int -> bool;
  is_corrupted : int -> bool;
  corrupted : unit -> int list;
  override_delay : Delay_model.t -> unit;
}

type t = {
  name : string;
  on_start : env -> unit;
  attack : env -> Message.t -> verdict;
  on_time_event : env -> Timer.t -> unit;
}

let passthrough =
  {
    name = "passthrough";
    on_start = (fun _ -> ());
    attack = (fun _ _ -> Deliver);
    on_time_event = (fun _ _ -> ());
  }

let drop_from_corrupted env (msg : Message.t) =
  if env.is_corrupted msg.src then Drop else Deliver

let delay_all ~extra_ms =
  {
    name = Printf.sprintf "delay-all(+%gms)" extra_ms;
    on_start = (fun _ -> ());
    attack =
      (fun _ msg ->
        msg.Message.delay_ms <- msg.Message.delay_ms +. extra_ms;
        Deliver);
    on_time_event = (fun _ _ -> ());
  }

let compose = function
  | [] -> passthrough
  | [ single ] -> single
  | attackers ->
    {
      name =
        Printf.sprintf "compose(%s)" (String.concat "+" (List.map (fun a -> a.name) attackers));
      on_start = (fun env -> List.iter (fun a -> a.on_start env) attackers);
      attack =
        (fun env msg ->
          (* Any Drop wins: once one layer suppresses the message the later
             layers must not see it (they could otherwise mutate its delay
             or inject reactions to a message that never existed). *)
          let rec rule = function
            | [] -> Deliver
            | a :: rest -> ( match a.attack env msg with Drop -> Drop | Deliver -> rule rest)
          in
          rule attackers);
      on_time_event =
        (fun env timer ->
          (* Timer payloads are attacker-specific extensible variants; each
             layer pattern-matches its own and ignores the rest. *)
          List.iter (fun a -> a.on_time_event env timer) attackers);
    }
