open Bftsim_sim
open Bftsim_net

type action =
  | Crash of int
  | Recover of int
  | Restart of int
  | Partition of int list list
  | Heal
  | Loss_burst of { p : float; until_ms : float }
  | Dup_burst of { p : float; until_ms : float }
  | Delay_spike of { extra_ms : float; until_ms : float }
  | Gst_shift of Delay_model.t

type step = { at_ms : float; action : action }

type t = step list

type Timer.payload += Chaos_step of action

let empty = []

let normalize t = List.stable_sort (fun a b -> Float.compare a.at_ms b.at_ms) t

let describe_action = function
  | Crash node -> Printf.sprintf "crash:%d" node
  | Recover node -> Printf.sprintf "recover:%d" node
  | Restart node -> Printf.sprintf "restart:%d" node
  | Partition groups ->
    Printf.sprintf "partition:%s"
      (String.concat "|"
         (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups))
  | Heal -> "heal"
  | Loss_burst { p; _ } -> Printf.sprintf "loss:%g" p
  | Dup_burst { p; _ } -> Printf.sprintf "dup:%g" p
  | Delay_spike { extra_ms; _ } -> Printf.sprintf "spike:%g" extra_ms
  | Gst_shift model -> Printf.sprintf "gst:%s" (Delay_model.to_cli_string model)

let describe_step s =
  match s.action with
  | Loss_burst { until_ms; _ } | Dup_burst { until_ms; _ } | Delay_spike { until_ms; _ } ->
    Printf.sprintf "%s@%g-%g" (describe_action s.action) s.at_ms until_ms
  | _ -> Printf.sprintf "%s@%g" (describe_action s.action) s.at_ms

let describe t = String.concat ";" (List.map describe_step (normalize t))

let validate ~n t =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let check_node what node =
    if node < 0 || node >= n then
      fail "Fault_schedule: %s of node %d, but nodes are 0..%d" what node (n - 1)
  in
  let check_prob what p =
    if Float.is_nan p || p < 0. || p > 1. then
      fail "Fault_schedule: %s probability %g outside [0, 1]" what p
  in
  List.iter
    (fun s ->
      if Float.is_nan s.at_ms || s.at_ms < 0. || s.at_ms = Float.infinity then
        fail "Fault_schedule: step %S at invalid time %g" (describe_action s.action) s.at_ms;
      let check_window what until_ms =
        if Float.is_nan until_ms || until_ms < s.at_ms then
          fail "Fault_schedule: %s window ends at %g before it starts at %g" what until_ms s.at_ms
      in
      match s.action with
      | Crash node -> check_node "crash" node
      | Recover node -> check_node "recovery" node
      | Restart node -> check_node "restart" node
      | Partition groups ->
        let seen = Hashtbl.create 16 in
        List.iter
          (fun group ->
            List.iter
              (fun node ->
                check_node "partition" node;
                if Hashtbl.mem seen node then
                  fail "Fault_schedule: node %d appears in two partition groups" node;
                Hashtbl.replace seen node ())
              group)
          groups
      | Heal -> ()
      | Loss_burst { p; until_ms } ->
        check_prob "loss" p;
        check_window "loss" until_ms
      | Dup_burst { p; until_ms } ->
        check_prob "dup" p;
        check_window "dup" until_ms
      | Delay_spike { extra_ms; until_ms } ->
        if Float.is_nan extra_ms || extra_ms < 0. then
          fail "Fault_schedule: negative delay spike %g" extra_ms;
        check_window "spike" until_ms
      | Gst_shift _ -> ())
    t;
  (* Crash windows on the same node must not overlap: a [Crash] while the
     node is already down (or a [Recover] while it is up) is a silent no-op
     schedule — almost always a typo in the node id or the time. *)
  let down = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match s.action with
      | Crash node ->
        if Hashtbl.mem down node then
          fail
            "Fault_schedule: crash of node %d at %g overlaps an earlier crash window (recover it first)"
            node s.at_ms;
        Hashtbl.replace down node ()
      | Recover node ->
        if not (Hashtbl.mem down node) then
          fail "Fault_schedule: recovery of node %d at %g without a preceding crash" node s.at_ms;
        Hashtbl.remove down node
      | Restart node ->
        if not (Hashtbl.mem down node) then
          fail
            "Fault_schedule: restart of node %d at %g without a preceding crash (restart = recover with volatile state lost)"
            node s.at_ms;
        Hashtbl.remove down node
      | _ -> ())
    (normalize t)

let crash_and_recover ~nodes ~crash_ms ~recover_ms =
  List.map (fun node -> { at_ms = crash_ms; action = Crash node }) nodes
  @ List.map (fun node -> { at_ms = recover_ms; action = Recover node }) nodes

let crash_and_restart ~nodes ~crash_ms ~restart_ms =
  List.map (fun node -> { at_ms = crash_ms; action = Crash node }) nodes
  @ List.map (fun node -> { at_ms = restart_ms; action = Restart node }) nodes

let restarts t =
  List.filter_map (fun s -> match s.action with Restart node -> Some node | _ -> None) t

let has_restart t ~node = List.mem node (restarts t)

(* The evaluators fold over the normalized plan, so the last step at or
   before the query time wins — callers pass normalized schedules (the
   compiled attacker and the controller both normalize once up front). *)

let crashed_at t ~node ~at_ms =
  List.fold_left
    (fun down s ->
      if s.at_ms > at_ms then down
      else
        match s.action with
        | Crash m when m = node -> true
        | Recover m when m = node -> false
        | Restart m when m = node -> false
        | _ -> down)
    false t

let ever_crashed t ~node =
  List.exists (fun s -> match s.action with Crash m -> m = node | _ -> false) t

let next_recovery_after t ~node ~at_ms =
  List.fold_left
    (fun acc s ->
      match s.action with
      | (Recover m | Restart m) when m = node && s.at_ms > at_ms -> (
        match acc with Some best when best <= s.at_ms -> acc | _ -> Some s.at_ms)
      | _ -> acc)
    None t

let active_groups t ~at_ms =
  List.fold_left
    (fun acc s ->
      if s.at_ms > at_ms then acc
      else match s.action with Partition groups -> Some groups | Heal -> None | _ -> acc)
    None t

let separated t ~src ~dst ~at_ms =
  match active_groups t ~at_ms with
  | None -> false
  | Some groups ->
    (* Unlisted nodes share the implicit residual group (-1). *)
    let side node =
      let rec find k = function
        | [] -> -1
        | group :: rest -> if List.mem node group then k else find (k + 1) rest
      in
      find 0 groups
    in
    side src <> side dst

let step_times t = List.sort Float.compare (List.map (fun s -> s.at_ms) t)

let to_attacker schedule =
  let t = normalize schedule in
  let on_start (env : Attacker.env) =
    (* One attacker timer per step: Gst_shift needs the side effect at its
       instant, and the timers keep the event queue alive up to the last
       scheduled fault, so a recovery can still be observed even if every
       message in flight was dropped. *)
    List.iter
      (fun s -> ignore (env.Attacker.set_timer ~delay_ms:s.at_ms ~tag:"chaos" (Chaos_step s.action)))
      t
  in
  let attack (env : Attacker.env) (msg : Message.t) =
    let now = Time.to_ms (env.Attacker.now ()) in
    if crashed_at t ~node:msg.Message.src ~at_ms:now then Attacker.Drop
    else if msg.Message.src = msg.Message.dst then
      (* Self-addressed messages are local deliveries: they cross no wire,
         so partitions and network bursts cannot touch them. *)
      Attacker.Deliver
    else if separated t ~src:msg.Message.src ~dst:msg.Message.dst ~at_ms:now then Attacker.Drop
    else begin
      let lost = ref false in
      List.iter
        (fun s ->
          if s.at_ms <= now then
            match s.action with
            | Delay_spike { extra_ms; until_ms } when now < until_ms ->
              msg.Message.delay_ms <- msg.Message.delay_ms +. extra_ms
            | Loss_burst { p; until_ms } when now < until_ms ->
              if Rng.float env.Attacker.rng 1. < p then lost := true
            | _ -> ())
        t;
      if !lost then Attacker.Drop
      else if
        crashed_at t ~node:msg.Message.dst ~at_ms:(Time.to_ms (Message.arrival_time msg))
      then Attacker.Drop
      else begin
        List.iter
          (fun s ->
            if s.at_ms <= now then
              match s.action with
              | Dup_burst { p; until_ms } when now < until_ms ->
                if Rng.float env.Attacker.rng 1. < p then
                  env.Attacker.inject ~src:msg.Message.src ~dst:msg.Message.dst
                    ~delay_ms:(msg.Message.delay_ms +. 1.) ~tag:msg.Message.tag
                    ~size:msg.Message.size msg.Message.payload
              | _ -> ())
          t;
        Attacker.Deliver
      end
    end
  in
  let on_time_event (env : Attacker.env) (timer : Timer.t) =
    match timer.Timer.payload with
    | Chaos_step (Gst_shift model) ->
      Simlog.info "chaos: delay model shifts to %s" (Delay_model.describe model);
      env.Attacker.override_delay model
    | Chaos_step action -> Simlog.info "chaos: %s" (describe_action action)
    | _ -> ()
  in
  { Attacker.name = Printf.sprintf "chaos[%d steps]" (List.length t); on_start; attack; on_time_event }

let ( let* ) = Result.bind

let parse_float what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "invalid %s %S" what s)

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "invalid %s %S" what s)

let parse_window what s =
  match String.index_opt s '-' with
  | None -> Error (Printf.sprintf "invalid %s window %S (expected <from>-<until>)" what s)
  | Some i ->
    let* from_ms = parse_float (what ^ " start") (String.sub s 0 i) in
    let* until_ms = parse_float (what ^ " end") (String.sub s (i + 1) (String.length s - i - 1)) in
    Ok (from_ms, until_ms)

let parse_step s =
  (* The time always follows the LAST '@' — gst delay models may themselves
     contain '@' (e.g. bounded:normal:250,50@1000). *)
  match String.rindex_opt s '@' with
  | None -> Error (Printf.sprintf "invalid chaos step %S (expected action@time)" s)
  | Some i -> (
    let head = String.sub s 0 i and time = String.sub s (i + 1) (String.length s - i - 1) in
    let kind, rest =
      match String.index_opt head ':' with
      | None -> (head, "")
      | Some j -> (String.sub head 0 j, String.sub head (j + 1) (String.length head - j - 1))
    in
    let timed action =
      let* at_ms = parse_float "chaos time" time in
      Ok { at_ms; action }
    in
    let windowed what make =
      let* at_ms, until_ms = parse_window what time in
      Ok { at_ms; action = make ~until_ms }
    in
    match kind with
    | "crash" ->
      let* node = parse_int "crash node" rest in
      timed (Crash node)
    | "recover" ->
      let* node = parse_int "recovery node" rest in
      timed (Recover node)
    | "restart" ->
      let* node = parse_int "restart node" rest in
      timed (Restart node)
    | "partition" ->
      let* groups =
        List.fold_left
          (fun acc group ->
            let* acc = acc in
            let* ids =
              List.fold_left
                (fun acc id ->
                  let* acc = acc in
                  if id = "" then Ok acc
                  else
                    let* id = parse_int "partition node" id in
                    Ok (id :: acc))
                (Ok []) (String.split_on_char ',' group)
            in
            Ok (List.rev ids :: acc))
          (Ok [])
          (String.split_on_char '|' rest)
      in
      timed (Partition (List.rev groups))
    | "heal" -> timed Heal
    | "loss" ->
      let* p = parse_float "loss probability" rest in
      windowed "loss" (fun ~until_ms -> Loss_burst { p; until_ms })
    | "dup" ->
      let* p = parse_float "dup probability" rest in
      windowed "dup" (fun ~until_ms -> Dup_burst { p; until_ms })
    | "spike" ->
      let* extra_ms = parse_float "spike delay" rest in
      windowed "spike" (fun ~until_ms -> Delay_spike { extra_ms; until_ms })
    | "gst" ->
      let* model = Delay_model.of_string rest in
      timed (Gst_shift model)
    | _ -> Error (Printf.sprintf "unknown chaos action %S" kind))

let of_string s =
  let* steps =
    List.fold_left
      (fun acc step ->
        let* acc = acc in
        let step = String.trim step in
        if step = "" then Ok acc
        else
          let* step = parse_step step in
          Ok (step :: acc))
      (Ok [])
      (String.split_on_char ';' s)
  in
  Ok (normalize (List.rev steps))
