(** Declarative, timed fault schedules — the chaos layer.

    The paper's flexibility claim (§III-A5) is that the abstracted global
    attacker makes it cheap to express "as many scenarios as you can
    imagine".  This module turns that into an API: a schedule is a plain
    list of timestamped fault actions (crash, recover, partition, loss /
    duplication / delay bursts, a delay-model shift at GST) that
    {!to_attacker} compiles into an ordinary {!Attacker.t}.  Because the
    plan is declarative data rather than callback state, the same value
    drives three consumers:

    - the attacker (message verdicts and timed side effects),
    - the controller (timer suppression for crashed nodes, the liveness
      watchdog's notion of "the scenario just changed"),
    - the invariant monitors (no decision by a crashed node).

    Schedules compose with hand-written attackers via {!Attacker.compose},
    and — being pure data evaluated against a seeded RNG — chaos runs stay
    replayable under [Validator.check_determinism]. *)

open Bftsim_sim
open Bftsim_net

type action =
  | Crash of int
      (** Fail-stop the node: messages it sends are lost, messages arriving
          while it is down are lost, and its pending timers are deferred to
          its next {!Recover} (dropped if it never recovers). *)
  | Recover of int
      (** Bring a crashed node back up with its in-memory state intact —
          the node object survives, as if the process was merely paused. *)
  | Restart of int
      (** Bring a crashed node back up {e losing all volatile state}: the
          controller creates a fresh node object, which rehydrates from its
          simulated WAL ([Context.persist] / [recall]) and catches up with
          peers via the protocol's [on_restart] hook.  Like {!Recover}, it
          ends the crash window. *)
  | Partition of int list list
      (** Disjoint groups; cross-group traffic is dropped until {!Heal}.
          Nodes not listed in any group form one implicit residual group. *)
  | Heal  (** Lift the active partition. *)
  | Loss_burst of { p : float; until_ms : float }
      (** Drop each message independently with probability [p] until
          [until_ms] (drawn from the attacker's seeded RNG stream). *)
  | Dup_burst of { p : float; until_ms : float }
      (** Duplicate each delivered message with probability [p] until
          [until_ms]; the copy arrives 1 ms after the original. *)
  | Delay_spike of { extra_ms : float; until_ms : float }
      (** Add [extra_ms] to every message's delay until [until_ms]. *)
  | Gst_shift of Delay_model.t
      (** Swap the network's delay distribution — model a network that
          stabilizes (GST) or degrades at a known instant. *)

type step = { at_ms : float; action : action }

type t = step list
(** A schedule; {!normalize} sorts it by time (stable, so same-instant
    steps apply in list order). *)

type Timer.payload += Chaos_step of action
(** The attacker timer each step is armed on; exposed so traces and
    composed attackers can recognize chaos transitions. *)

val empty : t

val normalize : t -> t

val validate : n:int -> t -> unit
(** Rejects malformed plans with a descriptive [Invalid_argument]: node ids
    outside [\[0, n)], non-finite or negative times, burst windows ending
    before they start, probabilities outside [\[0, 1\]], overlapping
    partition groups, crash windows that overlap on the same node, and
    recoveries/restarts without a preceding crash. *)

val crash_and_recover : nodes:int list -> crash_ms:float -> recover_ms:float -> t
(** The canonical chaos scenario: fail-stop [nodes] at [crash_ms] and
    restart them at [recover_ms]. *)

val crash_and_restart : nodes:int list -> crash_ms:float -> restart_ms:float -> t
(** Like {!crash_and_recover}, but the nodes come back with volatile state
    lost ({!Restart}) and must rehydrate + catch up. *)

val restarts : t -> int list
(** Nodes the plan restarts (with multiplicity, in plan order). *)

val has_restart : t -> node:int -> bool

val crashed_at : t -> node:int -> at_ms:float -> bool
(** Pure evaluation of the plan: is [node] down at [at_ms]?  (Last
    crash/recover/restart step at or before [at_ms] wins.) *)

val ever_crashed : t -> node:int -> bool
(** Does the plan crash [node] at any point?  Recovered nodes have sparse
    decision logs (no state transfer), so per-index agreement checks only
    apply to nodes for which this is [false]. *)

val next_recovery_after : t -> node:int -> at_ms:float -> float option
(** Earliest [Recover node] or [Restart node] step strictly after [at_ms],
    if any. *)

val separated : t -> src:int -> dst:int -> at_ms:float -> bool
(** Does the partition active at [at_ms] (if any) place [src] and [dst] in
    different groups? *)

val step_times : t -> float list
(** Sorted step times — the controller's watchdog treats each as a scenario
    change that resets the stall clock. *)

val to_attacker : t -> Attacker.t
(** Compiles the plan into an attacker.  Message verdicts are evaluated
    against the plan at the message's send time (its source's crash state,
    the partition, bursts) and at its arrival time (its destination's crash
    state); [Gst_shift] steps fire on attacker timers and call
    [env.override_delay]. *)

val describe : t -> string
(** Round-trips through {!of_string}; e.g. ["crash:3@0;recover:3@15000"]. *)

val describe_action : action -> string

val of_string : string -> (t, string) result
(** Parses the CLI syntax: semicolon-separated steps, each [action@time]:
    [crash:<id>@<ms>], [recover:<id>@<ms>], [restart:<id>@<ms>]
    (recovery with volatile state lost),
    [partition:<ids>|<ids>|...@<ms>] (comma-separated ids per group),
    [heal@<ms>], [loss:<p>@<from>-<until>], [dup:<p>@<from>-<until>],
    [spike:<extra_ms>@<from>-<until>], [gst:<delay-model>@<ms>] (any
    {!Delay_model.of_string} syntax).  Example:
    ["crash:14@0;crash:15@0;loss:0.2@0-8000;recover:14@15000;recover:15@15000;gst:normal:100,10@15000"]. *)
