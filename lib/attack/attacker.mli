(** The abstracted global attacker (paper §III-A5).

    Instead of instantiating individual Byzantine nodes, the simulator routes
    {e every} message through a single attacker that may observe, delay, drop
    or forge traffic and may adaptively corrupt nodes during execution.  This
    subsumes the classical per-node Byzantine model: controlling all messages
    a node emits is equivalent to controlling the node as observed by the
    rest of the system (§III-C).

    Because the attacker sees each message before its delivery event is
    registered, every attacker is a {e rushing} attacker by construction.
    It cannot, however, retract a message it has already let through — the
    standard in-flight delivery guarantee that makes ADD+v3's
    prepare-then-reveal defence meaningful.

    An attacker implementation provides exactly the two callbacks of the
    paper: [attack] (per forwarded message) and [on_time_event]. *)

open Bftsim_sim
open Bftsim_net

type verdict =
  | Deliver  (** Register the message event with its (possibly rewritten) delay. *)
  | Drop  (** Suppress the message silently. *)

type env = {
  n : int;
  f : int;  (** Corruption budget: at most [f] nodes may ever be corrupted. *)
  lambda_ms : float;  (** The protocol's assumed delay bound (public knowledge). *)
  now : unit -> Time.t;
  rng : Rng.t;  (** Attacker-owned randomness stream. *)
  topology : Topology.t;
  set_timer : delay_ms:float -> tag:string -> Timer.payload -> Timer.id;
  inject :
    src:int -> dst:int -> delay_ms:float -> tag:string -> size:int -> Message.payload -> unit;
      (** Forge a message that appears to come from [src]; it bypasses the
          network's delay sampling (the attacker chooses the delay) but is
          dispatched as an ordinary message event. *)
  corrupt : int -> bool;
      (** Request adaptive corruption of a node.  Returns [false] when the
          budget [f] is exhausted or the node is already corrupted;
          otherwise marks it and returns [true]. *)
  is_corrupted : int -> bool;
  corrupted : unit -> int list;  (** Currently corrupted nodes, ascending. *)
  override_delay : Delay_model.t -> unit;
      (** Swap the network's delay distribution mid-run — the attacker-side
          face of {!Bftsim_net.Network.override_delay}, used by timed fault
          schedules to model a network that stabilizes (GST) or degrades at
          a known instant. *)
}
(** Capabilities the controller grants the attacker. *)

type t = {
  name : string;
  on_start : env -> unit;  (** Called once before the first event. *)
  attack : env -> Message.t -> verdict;
      (** Inspect/modify one in-flight message (mutate [delay_ms] to delay
          it) and rule on its delivery. *)
  on_time_event : env -> Timer.t -> unit;
      (** Runs when a timer registered through [env.set_timer] fires. *)
}

val passthrough : t
(** The no-op attacker: benign network. *)

val drop_from_corrupted : env -> Message.t -> verdict
(** Building block shared by adaptive attackers: silence every message whose
    sender is corrupted (equivalent to fail-stopping the node from the
    outside). *)

val delay_all : extra_ms:float -> t
(** Adds a fixed extra delay to every message — a crude WAN degradation used
    in tests and examples. *)

val compose : t list -> t
(** Stacks attackers into one: [on_start] and [on_time_event] fan out to
    every layer (each ignores timer payloads it does not recognize), and a
    message is delivered only if {e every} layer rules [Deliver] — any
    [Drop] wins, and later layers never see a dropped message.  Delay
    rewrites accumulate left to right.  [compose \[\]] is {!passthrough}.

    This is what makes fault schedules stack with protocol-specific
    attackers, e.g. a network partition plus an equivocating leader. *)
