(** Twins-style attacker schedules (Bano et al., "Twins: BFT Systems Made
    Robust").

    A twins schedule names a set of logical identities to duplicate, a
    per-round network-partition schedule over the resulting {e physical}
    replica set, and an optional per-view leader assignment. Running the
    duplicates with identical credentials but divergent state mechanically
    emulates equivocation, double voting, and state loss without any
    per-protocol attacker code.

    Physical-id convention: with [n] logical nodes and twinned identities
    [ids = [i0; i1; ...]], the twin half of [ik] is physical node [n + k].
    Physical ids [0..n-1] keep their logical meaning. *)

type t = {
  ids : int list;  (** logical identities that get a twin, each at most once *)
  round_ms : float;  (** duration of one schedule round, in sim-ms; > 0 *)
  rounds : int list list list;
      (** [rounds.(r)] is the partition for round [r] as groups of {e physical}
          ids; [[]] means fully connected. Nodes absent from every group share
          an implicit residual block (same convention as
          {!Fault_schedule.separated}). After the last round the network is
          healed. *)
  leaders : int list;
      (** per-view leader override ({e logical} ids); views beyond the list
          fall back to the protocol's own rotation. [[]] = no override. *)
}

val count : t -> int
(** Number of twinned identities. *)

val physical_n : n:int -> t -> int
(** Total physical replicas: [n + count t]. *)

val logical : n:int -> t -> int -> int
(** [logical ~n t phys] maps a physical id back to its logical identity.
    Raises [Invalid_argument] if [phys] is not a valid physical id. *)

val twin_instance : n:int -> t -> int -> int option
(** Physical id of the twin half of logical [id], if [id] is twinned. *)

val instances : n:int -> t -> int -> int list
(** All physical instances of a logical identity (one or two). *)

val end_ms : t -> float
(** Time at which the schedule is exhausted and the network heals. *)

val round_at : t -> at_ms:float -> int
(** Round index in effect at [at_ms] (clamped to 0 for negative times). *)

val groups_at : t -> at_ms:float -> int list list option
(** Partition groups in effect at [at_ms]; [None] = fully connected. *)

val separated : t -> src:int -> dst:int -> at_ms:float -> bool
(** Whether the partition in effect at [at_ms] separates two physical ids. *)

val leader_at : t -> view:int -> int option
(** Leader override for [view], if the schedule pins one. *)

val isolated_below_quorum : n:int -> quorum:int -> t -> node:int -> bool
(** Whether some round places {e logical} identity [node] (any of its
    instances) in a block of fewer than [quorum] distinct logical
    identities.  Such a node can miss decisions made on the quorum side, so
    its decision log may be incomplete — index-aligned agreement checks
    must skip it, exactly like a crash-recovered node. *)

val preserves_liveness : n:int -> quorum:int -> t -> bool
(** Whether liveness is a fair expectation under this schedule: [true] iff
    in every non-healed round each {e honest} (non-twinned) identity sits
    in a block of at least [quorum] distinct logical identities (twin
    halves count their shared identity once).  An honest node isolated in a
    sub-quorum block during a drop round can miss committed blocks forever
    — the engine models no state transfer — so such schedules are judged
    for safety only. *)

val validate : n:int -> t -> unit
(** Raises [Invalid_argument] with an actionable message on malformed
    schedules: empty/duplicate/out-of-range twin ids, non-positive round
    duration, out-of-range physical ids or double placement in a round,
    out-of-range leaders. *)

val to_attacker : ?on_drop:(unit -> unit) -> t -> Attacker.t
(** Compile the partition schedule to a network attacker. Messages crossing
    the round's partition (by send time) are dropped; self-addressed
    messages always pass. [on_drop] is invoked once per dropped message. *)

(** {2 Config-file syntax}

    [ids] and [leaders] render as comma-separated ints ("0" or "0,2");
    [rounds] renders one round per ';', groups separated by '|', members by
    ',', with "-" denoting a fully-connected round — e.g.
    ["0,1,4|2,3;-;0,4|1,2,3"]. *)

val ids_to_string : int list -> string

val ids_of_string : string -> (int list, string) result

val rounds_to_string : int list list list -> string

val rounds_of_string : string -> (int list list list, string) result

val describe : t -> string
