open Bftsim_sim
open Bftsim_net

type t = {
  ids : int list;
  round_ms : float;
  rounds : int list list list;
  leaders : int list;
}

let count t = List.length t.ids

let physical_n ~n t = n + count t

let logical ~n t phys =
  if phys < n then phys
  else
    match List.nth_opt t.ids (phys - n) with
    | Some id -> id
    | None -> invalid_arg (Printf.sprintf "Twins_schedule.logical: physical id %d out of range" phys)

let twin_instance ~n t id =
  let rec find k = function
    | [] -> None
    | x :: rest -> if x = id then Some (n + k) else find (k + 1) rest
  in
  find 0 t.ids

let instances ~n t id =
  match twin_instance ~n t id with None -> [ id ] | Some phys -> [ id; phys ]

let end_ms t = t.round_ms *. float_of_int (List.length t.rounds)

let round_at t ~at_ms = if at_ms < 0. then 0 else int_of_float (at_ms /. t.round_ms)

let groups_at t ~at_ms =
  match List.nth_opt t.rounds (round_at t ~at_ms) with
  | None | Some [] -> None
  | Some groups -> Some groups

(* Same residual-group convention as {!Fault_schedule.separated}: nodes not
   listed in any group share an implicit extra block. *)
let separated t ~src ~dst ~at_ms =
  match groups_at t ~at_ms with
  | None -> false
  | Some groups ->
    let side node =
      let rec find k = function
        | [] -> -1
        | group :: rest -> if List.mem node group then k else find (k + 1) rest
      in
      find 0 groups
    in
    side src <> side dst

let leader_at t ~view = if view < 0 then None else List.nth_opt t.leaders view

(* Liveness is only a fair expectation when no honest identity is ever cut
   off from a quorum-weight block: a drop-round that isolates an honest
   node lets the quorum side commit blocks the isolated node will never
   receive (the engine models no state transfer), which permanently stalls
   chained protocols' commit rule on that node — the same reason
   crash-recover scenarios are exempt from liveness judgment. *)
let isolated_below_quorum ~n ~quorum t ~node =
  let pn = physical_n ~n t in
  List.exists
    (fun groups ->
      groups <> []
      &&
      let explicit = List.concat groups in
      let residual = List.filter (fun p -> not (List.mem p explicit)) (List.init pn Fun.id) in
      List.exists
        (fun block ->
          let members = List.sort_uniq compare (List.map (logical ~n t) block) in
          List.mem node members && List.length members < quorum)
        (residual :: groups))
    t.rounds

let preserves_liveness ~n ~quorum t =
  List.for_all
    (fun id -> List.mem id t.ids || not (isolated_below_quorum ~n ~quorum t ~node:id))
    (List.init n Fun.id)

let validate ~n t =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if t.ids = [] then fail "Twins: no twinned identities (omit the twins key instead)";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun id ->
      if id < 0 || id >= n then fail "Twins: twinned identity %d out of range 0..%d" id (n - 1);
      if Hashtbl.mem seen id then fail "Twins: identity %d twinned twice" id;
      Hashtbl.replace seen id ())
    t.ids;
  if Float.is_nan t.round_ms || t.round_ms <= 0. then
    fail "Twins: round_ms = %g, the schedule round duration must be positive" t.round_ms;
  let pn = physical_n ~n t in
  List.iteri
    (fun r groups ->
      let placed = Hashtbl.create 16 in
      List.iter
        (fun group ->
          List.iter
            (fun node ->
              if node < 0 || node >= pn then
                fail "Twins: round %d partitions node %d, but physical ids are 0..%d" r node
                  (pn - 1);
              if Hashtbl.mem placed node then
                fail "Twins: round %d lists node %d in two partition groups" r node;
              Hashtbl.replace placed node ())
            group)
        groups)
    t.rounds;
  List.iteri
    (fun v leader ->
      if leader < 0 || leader >= n then
        fail "Twins: leader %d for view %d out of range 0..%d (leaders are logical ids)" leader v
          (n - 1))
    t.leaders

let to_attacker ?(on_drop = fun () -> ()) t =
  {
    Attacker.name =
      Printf.sprintf "twins[%d twin(s),%d round(s)]" (List.length t.ids) (List.length t.rounds);
    on_start = (fun _ -> ());
    attack =
      (fun env (msg : Message.t) ->
        (* Self-addressed messages are local deliveries; everything else is
           routed through the round's partition, the round being the one the
           message was *sent* in (the Twins paper's network rule). *)
        if msg.Message.src = msg.Message.dst then Attacker.Deliver
        else
          let now = Time.to_ms (env.Attacker.now ()) in
          if separated t ~src:msg.Message.src ~dst:msg.Message.dst ~at_ms:now then begin
            on_drop ();
            Attacker.Drop
          end
          else Attacker.Deliver);
    on_time_event = (fun _ _ -> ());
  }

(* --- config-file syntax ---------------------------------------------- *)

let ( let* ) = Result.bind

let ids_to_string ids = String.concat "," (List.map string_of_int ids)

let ids_of_string s =
  try
    Ok
      (List.filter_map
         (fun x -> if x = "" then None else Some (int_of_string x))
         (String.split_on_char ',' s))
  with Failure _ -> Error (Printf.sprintf "invalid twins id list %S" s)

let groups_to_string groups =
  if groups = [] then "-"
  else
    String.concat "|" (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups)

let rounds_to_string rounds = String.concat ";" (List.map groups_to_string rounds)

let groups_of_string s =
  if s = "-" || s = "" then Ok []
  else
    List.fold_left
      (fun acc group ->
        let* acc = acc in
        let* ids = ids_of_string group in
        Ok (acc @ [ ids ]))
      (Ok [])
      (String.split_on_char '|' s)

let rounds_of_string s =
  List.fold_left
    (fun acc round ->
      let* acc = acc in
      let* groups = groups_of_string (String.trim round) in
      Ok (acc @ [ groups ]))
    (Ok [])
    (String.split_on_char ';' s)

let describe t =
  Printf.sprintf "twins(%s;%d rounds x %gms%s)" (ids_to_string t.ids) (List.length t.rounds)
    t.round_ms
    (if t.leaders = [] then "" else ";leaders=" ^ ids_to_string t.leaders)
