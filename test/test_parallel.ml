(* Tests for the domain-pool parallel runner: Parallel.map order/exception
   semantics and the bit-for-bit determinism of Runner.run_many across
   jobs counts (the parallel path must be observationally identical to the
   sequential one). *)

module Core = Bftsim_core
module Net = Bftsim_net

(* --- Parallel.map --- *)

(* [~oversubscribe:true] lifts the hardware cap so these tests exercise
   true multi-domain execution even on single-core CI runners, where the
   cap would otherwise fold the pool back to the calling domain. *)

let test_map_empty_and_singleton () =
  Alcotest.(check (list int))
    "empty" []
    (Core.Parallel.map ~jobs:4 ~oversubscribe:true (fun x -> x) []);
  Alcotest.(check (list int))
    "singleton" [ 42 ]
    (Core.Parallel.map ~jobs:4 ~oversubscribe:true (fun x -> x * 2) [ 21 ])

let test_map_order_basic () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "order preserved" (List.map succ xs)
    (Core.Parallel.map ~jobs:4 ~chunk:3 ~oversubscribe:true succ xs)

let test_map_invalid_args () =
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Parallel.map: jobs < 1") (fun () ->
      ignore (Core.Parallel.map ~jobs:0 Fun.id [ 1; 2 ]));
  Alcotest.check_raises "chunk < 1" (Invalid_argument "Parallel.map: chunk < 1") (fun () ->
      ignore (Core.Parallel.map ~chunk:0 Fun.id [ 1; 2 ]))

exception Boom

let test_map_propagates_exception () =
  Alcotest.check_raises "exception surfaces" Boom (fun () ->
      ignore
        (Core.Parallel.map ~jobs:4 ~oversubscribe:true
           (fun x -> if x = 13 then raise Boom else x)
           (List.init 20 Fun.id)))

let prop_map_preserves_order =
  QCheck.Test.make ~count:200 ~name:"Parallel.map ~jobs ~chunk = List.map"
    QCheck.(triple (small_list small_int) (int_range 1 8) (int_range 1 7))
    (fun (xs, jobs, chunk) ->
      Core.Parallel.map ~jobs ~chunk ~oversubscribe:true (fun x -> (x * 31) + 7) xs
      = List.map (fun x -> (x * 31) + 7) xs)

(* --- run_many determinism across jobs counts --- *)

let fast_config protocol =
  Core.Config.make protocol ~n:7 ~seed:42 ~lambda_ms:400.
    ~delay:(Net.Delay_model.normal ~mu:80. ~sigma:15.)

let fingerprint (s : Core.Runner.summary) =
  List.map
    (fun (r : Core.Controller.result) ->
      (r.per_decision_latency_ms, r.per_decision_messages, r.outcome, r.messages_sent, r.decisions))
    s.results

let test_run_many_jobs_deterministic () =
  List.iter
    (fun protocol ->
      let config = fast_config protocol in
      let seq = Core.Runner.run_many ~reps:6 ~jobs:1 config in
      let par = Core.Runner.run_many ~reps:6 ~jobs:4 config in
      Alcotest.(check bool)
        (protocol ^ ": identical per-run results") true
        (fingerprint seq = fingerprint par);
      Alcotest.(check bool)
        (protocol ^ ": identical latency stats") true
        (seq.latency_ms = par.latency_ms && seq.messages = par.messages);
      Alcotest.(check int)
        (protocol ^ ": identical liveness failures") seq.liveness_failures par.liveness_failures)
    [ "pbft"; "hotstuff-ns"; "librabft" ]

let test_default_jobs_positive () =
  Alcotest.(check bool) "default_jobs >= 1" true (Core.Parallel.default_jobs () >= 1)

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "empty and singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "order basic" `Quick test_map_order_basic;
          Alcotest.test_case "invalid args" `Quick test_map_invalid_args;
          Alcotest.test_case "exception propagation" `Quick test_map_propagates_exception;
          QCheck_alcotest.to_alcotest prop_map_preserves_order;
        ] );
      ( "run_many",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 identical" `Slow test_run_many_jobs_deterministic;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
        ] );
    ]
