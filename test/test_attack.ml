(* Tests for the abstracted-global-attacker framework and the generic
   attacker implementations (fail-stop, partition, delay injection). *)

open Bftsim_sim
open Bftsim_net
open Bftsim_attack

(* A self-contained attacker environment over mutable test state. *)
let make_env ?(n = 8) ?(f = 2) ?(now = 0.) ?(on_override = fun _ -> ()) () =
  let corrupted = Hashtbl.create 8 in
  let injected = ref [] in
  let timers = ref [] in
  let now_ref = ref now in
  let env =
    {
      Attacker.n;
      f;
      lambda_ms = 1000.;
      now = (fun () -> Time.of_ms !now_ref);
      rng = Rng.create 1;
      topology = Topology.fully_connected n;
      set_timer =
        (fun ~delay_ms ~tag payload ->
          timers := (delay_ms, tag, payload) :: !timers;
          List.length !timers);
      inject =
        (fun ~src ~dst ~delay_ms ~tag ~size:_ payload ->
          injected := (src, dst, delay_ms, tag, payload) :: !injected);
      corrupt =
        (fun node ->
          if Hashtbl.mem corrupted node || Hashtbl.length corrupted >= f then false
          else begin
            Hashtbl.replace corrupted node ();
            true
          end);
      is_corrupted = Hashtbl.mem corrupted;
      corrupted =
        (fun () -> Hashtbl.fold (fun k () acc -> k :: acc) corrupted [] |> List.sort compare);
      override_delay = on_override;
    }
  in
  (env, now_ref, injected, timers)

let msg ?(src = 0) ?(dst = 1) ?(sent_at = 0.) ?(tag = "m") () =
  Message.make ~id:1 ~src ~dst ~sent_at:(Time.of_ms sent_at) ~tag (Message.Blob "x")

let is_deliver = function Attacker.Deliver -> true | Attacker.Drop -> false

(* --- passthrough & helpers --- *)

let test_passthrough () =
  let env, _, _, _ = make_env () in
  Alcotest.(check bool) "delivers" true (is_deliver (Attacker.passthrough.attack env (msg ())))

let test_corruption_budget () =
  let env, _, _, _ = make_env ~f:2 () in
  Alcotest.(check bool) "first corruption ok" true (env.corrupt 0);
  Alcotest.(check bool) "second corruption ok" true (env.corrupt 1);
  Alcotest.(check bool) "budget exhausted" false (env.corrupt 2);
  Alcotest.(check bool) "re-corruption refused" false (env.corrupt 0);
  Alcotest.(check (list int)) "ledger" [ 0; 1 ] (env.corrupted ())

let test_drop_from_corrupted () =
  let env, _, _, _ = make_env () in
  ignore (env.corrupt 3);
  Alcotest.(check bool) "corrupted sender dropped" false
    (is_deliver (Attacker.drop_from_corrupted env (msg ~src:3 ())));
  Alcotest.(check bool) "honest sender delivered" true
    (is_deliver (Attacker.drop_from_corrupted env (msg ~src:4 ())))

let test_delay_all () =
  let env, _, _, _ = make_env () in
  let attacker = Attacker.delay_all ~extra_ms:500. in
  let m = msg () in
  m.Message.delay_ms <- 100.;
  Alcotest.(check bool) "delivers" true (is_deliver (attacker.attack env m));
  Alcotest.(check (float 1e-9)) "delay extended" 600. m.Message.delay_ms

(* --- fail-stop --- *)

let test_failstop_from_start () =
  let env, _, _, _ = make_env () in
  let attacker = Failstop.from_start ~nodes:[ 1; 2 ] in
  Alcotest.(check bool) "victim silenced" false (is_deliver (attacker.attack env (msg ~src:1 ())));
  Alcotest.(check bool) "other node fine" true (is_deliver (attacker.attack env (msg ~src:0 ())))

let test_failstop_at_time () =
  let env, now_ref, _, _ = make_env () in
  let attacker = Failstop.at_time ~nodes:[ 5 ] ~at_ms:1000. in
  Alcotest.(check bool) "honest before the crash" true
    (is_deliver (attacker.attack env (msg ~src:5 ())));
  now_ref := 1500.;
  Alcotest.(check bool) "silenced after the crash" false
    (is_deliver (attacker.attack env (msg ~src:5 ())))

(* --- partition --- *)

let partition_spec ?(mode = Partition_attack.Drop_cross_traffic) () =
  Partition_attack.
    { groups = [| 0; 0; 0; 0; 1; 1; 1; 1 |]; start_ms = 1000.; heal_ms = 5000.; mode }

let test_partition_window () =
  let env, now_ref, _, _ = make_env () in
  let attacker = Partition_attack.make (partition_spec ()) in
  let cross () = msg ~src:0 ~dst:7 ~sent_at:!now_ref () in
  Alcotest.(check bool) "before the attack" true (is_deliver (attacker.attack env (cross ())));
  now_ref := 2000.;
  Alcotest.(check bool) "during: cross dropped" false (is_deliver (attacker.attack env (cross ())));
  Alcotest.(check bool) "during: intra delivered" true
    (is_deliver (attacker.attack env (msg ~src:0 ~dst:3 ())));
  now_ref := 5000.;
  Alcotest.(check bool) "at heal boundary delivered" true (is_deliver (attacker.attack env (cross ())))

let test_partition_delay_mode () =
  let env, now_ref, _, _ = make_env () in
  let attacker =
    Partition_attack.make (partition_spec ~mode:(Partition_attack.Delay_until_heal { jitter_ms = 0. }) ())
  in
  now_ref := 2000.;
  let m = msg ~src:1 ~dst:6 ~sent_at:2000. () in
  m.Message.delay_ms <- 250.;
  Alcotest.(check bool) "delivered (buffered)" true (is_deliver (attacker.attack env m));
  Alcotest.(check (float 1e-9)) "released at heal" 5000.
    (Time.to_ms (Message.arrival_time m))

let test_partition_validation () =
  match
    Partition_attack.make
      { groups = [| 0; 1 |]; start_ms = 10.; heal_ms = 5.; mode = Partition_attack.Drop_cross_traffic }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "heal before start accepted"

let test_two_subnets_builder () =
  let env, now_ref, _, _ = make_env () in
  let attacker =
    Partition_attack.two_subnets ~n:8 ~first_size:4 ~start_ms:0. ~heal_ms:1000.
      Partition_attack.Drop_cross_traffic
  in
  now_ref := 500.;
  Alcotest.(check bool) "0 -> 4 crosses" false
    (is_deliver (attacker.attack env (msg ~src:0 ~dst:4 ())));
  Alcotest.(check bool) "4 -> 7 intra" true (is_deliver (attacker.attack env (msg ~src:4 ~dst:7 ())))

(* --- compose --- *)

(* An attacker that drops messages from [victim] and logs everything it is
   shown — used to observe compose's short-circuit. *)
let spy_attacker ?victim seen =
  {
    Attacker.passthrough with
    Attacker.name = "spy";
    attack =
      (fun _env m ->
        seen := m.Message.src :: !seen;
        match victim with Some v when m.Message.src = v -> Attacker.Drop | _ -> Attacker.Deliver);
  }

let test_compose_drop_wins () =
  let env, _, _, _ = make_env () in
  let before = ref [] and after = ref [] in
  let composed = Attacker.compose [ spy_attacker before; spy_attacker ~victim:3 before; spy_attacker after ] in
  Alcotest.(check bool) "drop by any layer wins" false
    (is_deliver (composed.attack env (msg ~src:3 ())));
  Alcotest.(check (list int)) "later layers never see a dropped message" [] !after;
  Alcotest.(check bool) "all layers agree: delivered" true
    (is_deliver (composed.attack env (msg ~src:4 ())));
  Alcotest.(check (list int)) "survivors reach the last layer" [ 4 ] !after

let test_compose_fans_out_lifecycle () =
  let env, _, _, _ = make_env () in
  let starts = ref 0 and ticks = ref 0 in
  let counting =
    {
      Attacker.passthrough with
      Attacker.on_start = (fun _ -> incr starts);
      on_time_event = (fun _ _ -> incr ticks);
    }
  in
  let composed = Attacker.compose [ counting; counting; counting ] in
  composed.on_start env;
  composed.on_time_event env
    { Timer.id = 1; owner = Timer.attacker_owner; deadline = Time.zero; tag = "t";
      payload = Timer.Tick };
  Alcotest.(check int) "on_start fans out" 3 !starts;
  Alcotest.(check int) "on_time_event fans out" 3 !ticks;
  Alcotest.(check bool) "empty compose is passthrough" true
    (is_deliver ((Attacker.compose []).attack env (msg ())))

(* --- fault schedules --- *)

let test_schedule_crash_windows () =
  let plan =
    Fault_schedule.normalize
      [
        { Fault_schedule.at_ms = 1000.; action = Fault_schedule.Crash 2 };
        { Fault_schedule.at_ms = 5000.; action = Fault_schedule.Recover 2 };
      ]
  in
  let down at_ms = Fault_schedule.crashed_at plan ~node:2 ~at_ms in
  Alcotest.(check bool) "up before" false (down 999.);
  Alcotest.(check bool) "down at the crash instant" true (down 1000.);
  Alcotest.(check bool) "down in between" true (down 3000.);
  Alcotest.(check bool) "up again at recovery" false (down 5000.);
  Alcotest.(check bool) "other node untouched" false
    (Fault_schedule.crashed_at plan ~node:3 ~at_ms:3000.);
  Alcotest.(check (option (float 1e-9))) "next recovery" (Some 5000.)
    (Fault_schedule.next_recovery_after plan ~node:2 ~at_ms:1000.)

let test_schedule_crash_verdicts () =
  let env, now_ref, _, _ = make_env () in
  let attacker =
    Fault_schedule.to_attacker (Fault_schedule.crash_and_recover ~nodes:[ 1 ] ~crash_ms:1000. ~recover_ms:5000.)
  in
  Alcotest.(check bool) "sender up: delivered" true
    (is_deliver (attacker.attack env (msg ~src:1 ())));
  now_ref := 2000.;
  Alcotest.(check bool) "sender down: dropped" false
    (is_deliver (attacker.attack env (msg ~src:1 ~sent_at:2000. ())));
  (* A message to a node that will be down on arrival is lost too. *)
  now_ref := 500.;
  let m = msg ~src:0 ~dst:1 ~sent_at:500. () in
  m.Message.delay_ms <- 1000.;
  Alcotest.(check bool) "receiver down at arrival: dropped" false
    (is_deliver (attacker.attack env m));
  now_ref := 6000.;
  Alcotest.(check bool) "recovered sender: delivered" true
    (is_deliver (attacker.attack env (msg ~src:1 ~sent_at:6000. ())))

let test_schedule_partition_heal () =
  let env, now_ref, _, _ = make_env () in
  let plan =
    [
      { Fault_schedule.at_ms = 1000.; action = Fault_schedule.Partition [ [ 0; 1 ]; [ 2; 3 ] ] };
      { Fault_schedule.at_ms = 4000.; action = Fault_schedule.Heal };
    ]
  in
  Alcotest.(check bool) "cross-group separated" true
    (Fault_schedule.separated plan ~src:0 ~dst:2 ~at_ms:2000.);
  Alcotest.(check bool) "intra-group connected" false
    (Fault_schedule.separated plan ~src:2 ~dst:3 ~at_ms:2000.);
  Alcotest.(check bool) "unlisted nodes share the residual group" false
    (Fault_schedule.separated plan ~src:6 ~dst:7 ~at_ms:2000.);
  Alcotest.(check bool) "listed vs unlisted separated" true
    (Fault_schedule.separated plan ~src:0 ~dst:6 ~at_ms:2000.);
  Alcotest.(check bool) "healed" false (Fault_schedule.separated plan ~src:0 ~dst:2 ~at_ms:4000.);
  let attacker = Fault_schedule.to_attacker plan in
  now_ref := 2000.;
  Alcotest.(check bool) "attacker drops cross traffic" false
    (is_deliver (attacker.attack env (msg ~src:0 ~dst:2 ~sent_at:2000. ())))

let test_schedule_bursts () =
  let env, now_ref, injected, _ = make_env () in
  now_ref := 1000.;
  let certain_loss =
    Fault_schedule.to_attacker
      [ { Fault_schedule.at_ms = 0.; action = Fault_schedule.Loss_burst { p = 1.; until_ms = 2000. } } ]
  in
  Alcotest.(check bool) "p=1 loss drops" false
    (is_deliver (certain_loss.attack env (msg ~sent_at:1000. ())));
  now_ref := 3000.;
  Alcotest.(check bool) "loss window over" true
    (is_deliver (certain_loss.attack env (msg ~sent_at:3000. ())));
  let no_loss =
    Fault_schedule.to_attacker
      [ { Fault_schedule.at_ms = 0.; action = Fault_schedule.Loss_burst { p = 0.; until_ms = 2000. } } ]
  in
  now_ref := 1000.;
  Alcotest.(check bool) "p=0 loss is harmless" true
    (is_deliver (no_loss.attack env (msg ~sent_at:1000. ())));
  let spike =
    Fault_schedule.to_attacker
      [ { Fault_schedule.at_ms = 0.; action = Fault_schedule.Delay_spike { extra_ms = 300.; until_ms = 2000. } } ]
  in
  let m = msg ~sent_at:1000. () in
  m.Message.delay_ms <- 100.;
  Alcotest.(check bool) "spiked but delivered" true (is_deliver (spike.attack env m));
  Alcotest.(check (float 1e-9)) "spike added" 400. m.Message.delay_ms;
  let dup =
    Fault_schedule.to_attacker
      [ { Fault_schedule.at_ms = 0.; action = Fault_schedule.Dup_burst { p = 1.; until_ms = 2000. } } ]
  in
  Alcotest.(check bool) "original delivered" true
    (is_deliver (dup.attack env (msg ~sent_at:1000. ())));
  Alcotest.(check int) "copy injected" 1 (List.length !injected)

let test_schedule_gst_shift () =
  let shifted = ref [] in
  let env, _, _, timers =
    make_env ~on_override:(fun model -> shifted := model :: !shifted) ()
  in
  let model = Delay_model.normal ~mu:100. ~sigma:10. in
  let attacker =
    Fault_schedule.to_attacker
      [ { Fault_schedule.at_ms = 15_000.; action = Fault_schedule.Gst_shift model } ]
  in
  attacker.on_start env;
  Alcotest.(check int) "one chaos timer armed" 1 (List.length !timers);
  let delay_ms, tag, payload = List.hd !timers in
  attacker.on_time_event env
    { Timer.id = 1; owner = Timer.attacker_owner; deadline = Time.of_ms delay_ms; tag; payload };
  Alcotest.(check int) "delay model overridden once" 1 (List.length !shifted)

let test_schedule_validate () =
  let rejected plan =
    match Fault_schedule.validate ~n:8 plan with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  Alcotest.(check bool) "node out of range" true
    (rejected [ { Fault_schedule.at_ms = 0.; action = Fault_schedule.Crash 8 } ]);
  Alcotest.(check bool) "negative time" true
    (rejected [ { Fault_schedule.at_ms = -1.; action = Fault_schedule.Heal } ]);
  Alcotest.(check bool) "probability out of range" true
    (rejected
       [ { Fault_schedule.at_ms = 0.; action = Fault_schedule.Loss_burst { p = 1.5; until_ms = 10. } } ]);
  Alcotest.(check bool) "window ends before start" true
    (rejected
       [ { Fault_schedule.at_ms = 100.; action = Fault_schedule.Dup_burst { p = 0.5; until_ms = 50. } } ]);
  Alcotest.(check bool) "overlapping partition groups" true
    (rejected [ { Fault_schedule.at_ms = 0.; action = Fault_schedule.Partition [ [ 0; 1 ]; [ 1; 2 ] ] } ]);
  Alcotest.(check bool) "well-formed plan accepted" false
    (rejected (Fault_schedule.crash_and_recover ~nodes:[ 0; 1 ] ~crash_ms:0. ~recover_ms:5000.))

let test_schedule_of_string_roundtrip () =
  let spec = "crash:1@0;loss:0.25@0-8000;partition:0,1|2,3@2000;heal@4000;recover:1@15000;gst:normal:100,10@15000" in
  match Fault_schedule.of_string spec with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Alcotest.(check string) "describe round-trips" spec (Fault_schedule.describe plan);
    Alcotest.(check bool) "parse error surfaces" true
      (Result.is_error (Fault_schedule.of_string "crash:zero@0"));
    Alcotest.(check bool) "unknown action surfaces" true
      (Result.is_error (Fault_schedule.of_string "meteor@0"))

(* Restart steps: parse/describe round-trip, the helper builders, and the
   validation rule that a restart must follow a crash of the same node
   (restart = recover with volatile state lost). *)
let test_schedule_restart () =
  let spec = "crash:2@200;restart:2@700" in
  (match Fault_schedule.of_string spec with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Alcotest.(check string) "describe round-trips" spec (Fault_schedule.describe plan);
    Alcotest.(check (list int)) "restarts listed" [ 2 ] (Fault_schedule.restarts plan);
    Fault_schedule.validate ~n:4 plan);
  let built = Fault_schedule.crash_and_restart ~nodes:[ 1; 3 ] ~crash_ms:100. ~restart_ms:900. in
  Fault_schedule.validate ~n:4 built;
  Alcotest.(check (list int)) "builder restarts both" [ 1; 3 ]
    (List.sort compare (Fault_schedule.restarts built));
  let rejected plan =
    match Fault_schedule.validate ~n:8 plan with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  Alcotest.(check bool) "restart without a crash rejected" true
    (rejected [ { Fault_schedule.at_ms = 500.; action = Fault_schedule.Restart 2 } ]);
  Alcotest.(check bool) "restart node out of range rejected" true
    (rejected (Fault_schedule.crash_and_restart ~nodes:[ 9 ] ~crash_ms:0. ~restart_ms:100.));
  Alcotest.(check bool) "restart parse error surfaces" true
    (Result.is_error (Fault_schedule.of_string "restart:two@0"))

(* Corruption and chaos crashes are different faults: a chaos [Recover]
   restarts a crashed node, but an adaptively corrupted node stays silenced
   by [drop_from_corrupted] forever. *)
let test_corruption_survives_recovery () =
  let env, now_ref, _, _ = make_env () in
  ignore (env.Attacker.corrupt 3);
  let chaos = Fault_schedule.to_attacker (Fault_schedule.crash_and_recover ~nodes:[ 3 ] ~crash_ms:0. ~recover_ms:1000.) in
  let silencer = { Attacker.passthrough with Attacker.attack = Attacker.drop_from_corrupted } in
  let composed = Attacker.compose [ chaos; silencer ] in
  now_ref := 2000.;
  Alcotest.(check bool) "chaos alone would deliver after recovery" true
    (is_deliver (chaos.attack env (msg ~src:3 ~sent_at:2000. ())));
  Alcotest.(check bool) "composed attacker still drops: corruption is permanent" false
    (is_deliver (composed.attack env (msg ~src:3 ~sent_at:2000. ())))

(* --- ADD+ attacks (unit level; end-to-end covered in test_integration) --- *)

let test_add_static_marks_victims () =
  let env, _, _, _ = make_env ~f:3 () in
  let attacker = Bftsim_protocols.Addplus_attacks.static ~f:3 in
  attacker.on_start env;
  Alcotest.(check (list int)) "first f nodes corrupted" [ 0; 1; 2 ] (env.corrupted ());
  Alcotest.(check bool) "their messages dropped" false
    (is_deliver (attacker.attack env (msg ~src:0 ())))

let test_add_adaptive_corrupts_winner () =
  let env, now_ref, _, timers = make_env ~f:3 () in
  let attacker = Bftsim_protocols.Addplus_attacks.rushing_adaptive () in
  (* Replay an iteration's credential flow through the attacker. *)
  let creds =
    List.init 8 (fun node ->
        Bftsim_crypto.Vrf.eval ~seed:1 ~node ~input:"add|0")
  in
  List.iter
    (fun (c : Bftsim_crypto.Vrf.evaluation) ->
      let m =
        Message.make ~id:c.node ~src:c.node ~dst:0 ~sent_at:Time.zero ~tag:"add-credential"
          (Bftsim_protocols.Add_common.Add_credential { iter = 0; credential = c })
      in
      ignore (attacker.attack env m))
    creds;
  Alcotest.(check int) "one corruption timer armed" 1 (List.length !timers);
  (* Fire the armed timer. *)
  let delay_ms, tag, payload = List.hd !timers in
  now_ref := delay_ms;
  attacker.on_time_event env
    { Timer.id = 1; owner = Timer.attacker_owner; deadline = Time.of_ms delay_ms; tag; payload };
  let winner = (Option.get (Bftsim_crypto.Vrf.winner creds)).Bftsim_crypto.Vrf.node in
  Alcotest.(check (list int)) "exactly the VRF winner corrupted" [ winner ] (env.corrupted ())

let () =
  Alcotest.run "attack"
    [
      ( "framework",
        [
          Alcotest.test_case "passthrough" `Quick test_passthrough;
          Alcotest.test_case "corruption budget" `Quick test_corruption_budget;
          Alcotest.test_case "drop_from_corrupted" `Quick test_drop_from_corrupted;
          Alcotest.test_case "delay_all" `Quick test_delay_all;
        ] );
      ( "failstop",
        [
          Alcotest.test_case "from start" `Quick test_failstop_from_start;
          Alcotest.test_case "mid-run crash" `Quick test_failstop_at_time;
        ] );
      ( "partition",
        [
          Alcotest.test_case "attack window" `Quick test_partition_window;
          Alcotest.test_case "delay-until-heal mode" `Quick test_partition_delay_mode;
          Alcotest.test_case "validation" `Quick test_partition_validation;
          Alcotest.test_case "two_subnets builder" `Quick test_two_subnets_builder;
        ] );
      ( "compose",
        [
          Alcotest.test_case "any Drop wins, later layers blind" `Quick test_compose_drop_wins;
          Alcotest.test_case "lifecycle fans out" `Quick test_compose_fans_out_lifecycle;
        ] );
      ( "fault-schedule",
        [
          Alcotest.test_case "crash windows" `Quick test_schedule_crash_windows;
          Alcotest.test_case "crash verdicts" `Quick test_schedule_crash_verdicts;
          Alcotest.test_case "partition and heal" `Quick test_schedule_partition_heal;
          Alcotest.test_case "loss, spike and dup bursts" `Quick test_schedule_bursts;
          Alcotest.test_case "gst shift overrides the delay model" `Quick test_schedule_gst_shift;
          Alcotest.test_case "validation" `Quick test_schedule_validate;
          Alcotest.test_case "of_string round-trip" `Quick test_schedule_of_string_roundtrip;
          Alcotest.test_case "restart steps" `Quick test_schedule_restart;
          Alcotest.test_case "corruption survives recovery" `Quick
            test_corruption_survives_recovery;
        ] );
      ( "addplus",
        [
          Alcotest.test_case "static picks scheduled leaders" `Quick test_add_static_marks_victims;
          Alcotest.test_case "adaptive corrupts the revealed winner" `Quick
            test_add_adaptive_corrupts_winner;
        ] );
    ]
