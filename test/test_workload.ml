(* Tests for the workload subsystem: arrival processes, the bounded
   mempool, batching policy, and the driver's determinism guarantees
   (same point twice, jobs-independent sweeps, journal round-trips). *)

open Bftsim_sim
module Core = Bftsim_core
module Wl = Bftsim_workload

let rng () = Rng.create 42

(* --- Arrival --- *)

let test_arrival_roundtrip () =
  let cases =
    [
      Wl.Arrival.constant ~rate:100.;
      Wl.Arrival.poisson ~rate:0.5;
      Wl.Arrival.on_off ~rate:800. ~on_ms:100. ~off_ms:400.;
    ]
  in
  List.iter
    (fun a ->
      match Wl.Arrival.of_string (Wl.Arrival.to_cli_string a) with
      | Ok a' -> Alcotest.(check bool) (Wl.Arrival.describe a) true (a = a')
      | Error e -> Alcotest.failf "reparse %s failed: %s" (Wl.Arrival.to_cli_string a) e)
    cases;
  (match Wl.Arrival.of_string "poisson:-5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative rate accepted");
  match Wl.Arrival.of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense accepted"

let test_arrival_constant_gap () =
  let a = Wl.Arrival.constant ~rate:200. in
  Alcotest.(check (float 1e-9)) "gap = 1000/rate" 5. (Wl.Arrival.next_gap_ms a ~now_ms:0. (rng ()));
  Alcotest.(check (float 1e-9)) "rate" 200. (Wl.Arrival.mean_rate a)

let test_arrival_onoff_windows () =
  (* Walk the arrival stream; every arrival must land inside an on window. *)
  let on_ms = 100. and off_ms = 400. in
  let a = Wl.Arrival.on_off ~rate:500. ~on_ms ~off_ms in
  let r = rng () in
  let now = ref 0. in
  for _ = 1 to 2000 do
    let gap = Wl.Arrival.next_gap_ms a ~now_ms:!now r in
    if gap < 0. then Alcotest.failf "negative gap %f" gap;
    now := !now +. gap;
    let phase = Float.rem !now (on_ms +. off_ms) in
    if phase > on_ms +. 1e-9 then Alcotest.failf "arrival at %f lands in off window (phase %f)" !now phase
  done;
  (* Duty cycle scales the long-run rate. *)
  Alcotest.(check (float 1e-9)) "mean rate" 100. (Wl.Arrival.mean_rate a)

let test_arrival_with_rate () =
  let a = Wl.Arrival.on_off ~rate:500. ~on_ms:100. ~off_ms:400. in
  match Wl.Arrival.with_rate a 1000. with
  | Wl.Arrival.On_off { rate; on_ms; off_ms } ->
    Alcotest.(check (float 1e-9)) "rate swapped" 1000. rate;
    Alcotest.(check (float 1e-9)) "on kept" 100. on_ms;
    Alcotest.(check (float 1e-9)) "off kept" 400. off_ms
  | _ -> Alcotest.fail "shape changed"

(* --- Mempool --- *)

let req id = { Wl.Mempool.id; arrived_ms = float_of_int id; key = 0; client = -1 }

let test_mempool_fifo () =
  let p = Wl.Mempool.create ~capacity:10 in
  for i = 0 to 4 do
    Alcotest.(check bool) "accepted" true (Wl.Mempool.add p (req i))
  done;
  Alcotest.(check int) "length" 5 (Wl.Mempool.length p);
  let taken = Wl.Mempool.take p ~max:3 in
  Alcotest.(check (list int)) "FIFO order" [ 0; 1; 2 ]
    (List.map (fun (r : Wl.Mempool.request) -> r.Wl.Mempool.id) taken);
  let rest = Wl.Mempool.take p ~max:100 in
  Alcotest.(check (list int)) "remainder in order" [ 3; 4 ]
    (List.map (fun (r : Wl.Mempool.request) -> r.Wl.Mempool.id) rest);
  Alcotest.(check int) "drained" 0 (Wl.Mempool.length p)

let test_mempool_bound () =
  let p = Wl.Mempool.create ~capacity:3 in
  for i = 0 to 4 do
    ignore (Wl.Mempool.add p (req i) : bool)
  done;
  Alcotest.(check int) "capped" 3 (Wl.Mempool.length p);
  Alcotest.(check int) "drops counted" 2 (Wl.Mempool.dropped p);
  Alcotest.(check int) "peak" 3 (Wl.Mempool.peak p);
  (* The bound rejects the newest requests, keeping the oldest. *)
  let taken = Wl.Mempool.take p ~max:3 in
  Alcotest.(check (list int)) "oldest kept" [ 0; 1; 2 ]
    (List.map (fun (r : Wl.Mempool.request) -> r.Wl.Mempool.id) taken)

let test_mempool_requeue_front () =
  let p = Wl.Mempool.create ~capacity:10 in
  for i = 0 to 5 do
    ignore (Wl.Mempool.add p (req i) : bool)
  done;
  let batch = Wl.Mempool.take p ~max:3 in
  (* 3, 4, 5 remain; re-queueing [0;1;2] must put them back in front. *)
  Wl.Mempool.requeue p batch;
  Alcotest.(check int) "requeued counted" 3 (Wl.Mempool.requeued p);
  Alcotest.(check (list int)) "front order restored" [ 0; 1; 2; 3; 4; 5 ]
    (List.map (fun (r : Wl.Mempool.request) -> r.Wl.Mempool.id) (Wl.Mempool.take p ~max:10));
  (* Re-queue bypasses the capacity bound: already-admitted requests. *)
  let p2 = Wl.Mempool.create ~capacity:2 in
  ignore (Wl.Mempool.add p2 (req 0) : bool);
  ignore (Wl.Mempool.add p2 (req 1) : bool);
  let b = Wl.Mempool.take p2 ~max:2 in
  ignore (Wl.Mempool.add p2 (req 2) : bool);
  ignore (Wl.Mempool.add p2 (req 3) : bool);
  Wl.Mempool.requeue p2 b;
  Alcotest.(check int) "over capacity transiently" 4 (Wl.Mempool.length p2);
  Alcotest.(check int) "peak follows requeue" 4 (Wl.Mempool.peak p2)

(* QCheck: arbitrary interleavings of submit / cut / stale-requeue /
   commit never duplicate or lose a request id, and the peak high-water
   mark tracks the maximum observed pool depth.  Ops are drawn as small
   ints: 0 = submit, 1 = cut a batch (to in-flight), 2 = re-queue the
   oldest in-flight batch, 3 = commit the oldest in-flight batch. *)
let prop_requeue_conserves_ids =
  QCheck.Test.make ~count:300 ~name:"mempool requeue conserves ids"
    QCheck.(pair (int_range 1 32) (list_of_size Gen.(int_range 1 120) (int_range 0 3)))
    (fun (capacity, ops) ->
      let p = Wl.Mempool.create ~capacity in
      let next = ref 0 in
      let admitted = Hashtbl.create 64 in
      let in_flight = Queue.create () in
      let committed = Hashtbl.create 64 in
      let expected_peak = ref 0 in
      let observe_peak () = expected_peak := Stdlib.max !expected_peak (Wl.Mempool.length p) in
      List.iter
        (fun op ->
          (match op with
          | 0 ->
            let id = !next in
            incr next;
            if Wl.Mempool.add p (req id) then Hashtbl.replace admitted id ()
          | 1 -> (
            match Wl.Mempool.take p ~max:3 with [] -> () | b -> Queue.add b in_flight)
          | 2 -> if not (Queue.is_empty in_flight) then Wl.Mempool.requeue p (Queue.pop in_flight)
          | _ ->
            if not (Queue.is_empty in_flight) then
              List.iter
                (fun (r : Wl.Mempool.request) -> Hashtbl.replace committed r.Wl.Mempool.id ())
                (Queue.pop in_flight));
          observe_peak ())
        ops;
      let pool_ids = List.map (fun (r : Wl.Mempool.request) -> r.Wl.Mempool.id) (Wl.Mempool.to_list p) in
      let flight_ids =
        Queue.fold (fun acc b -> List.map (fun (r : Wl.Mempool.request) -> r.Wl.Mempool.id) b @ acc) [] in_flight
      in
      let committed_ids = Hashtbl.fold (fun id () acc -> id :: acc) committed [] in
      let all = pool_ids @ flight_ids @ committed_ids in
      let sorted = List.sort compare all in
      let admitted_ids = List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) admitted []) in
      (* Conservation: every admitted id is in exactly one place. *)
      sorted = admitted_ids
      && List.length (List.sort_uniq compare all) = List.length all
      && Wl.Mempool.peak p = !expected_peak)

(* --- Keys --- *)

let test_keys_roundtrip () =
  let cases =
    [ Wl.Keys.Single; Wl.Keys.uniform ~space:64; Wl.Keys.zipf ~s:1.1 (); Wl.Keys.zipf ~s:0.9 ~space:32 () ]
  in
  List.iter
    (fun k ->
      match Wl.Keys.of_string (Wl.Keys.to_cli_string k) with
      | Ok k' -> Alcotest.(check bool) (Wl.Keys.describe k) true (k = k')
      | Error e -> Alcotest.failf "reparse %s failed: %s" (Wl.Keys.to_cli_string k) e)
    cases;
  (match Wl.Keys.of_string "zipf:-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative exponent accepted");
  match Wl.Keys.of_string "uniform:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty key space accepted"

let test_keys_zipf_skew () =
  (* Single draws nothing from the RNG; zipf concentrates mass on low keys
     and is deterministic per seed. *)
  let r1 = rng () and r2 = rng () in
  Alcotest.(check int) "single is key 0" 0 (Wl.Keys.sample (Wl.Keys.sampler Wl.Keys.Single) r1);
  Alcotest.(check bool) "single consumes no randomness" true (Rng.bits64 r1 = Rng.bits64 r2);
  let sampler = Wl.Keys.sampler (Wl.Keys.zipf ~s:1.3 ~space:128 ()) in
  let draw r = Array.init 2000 (fun _ -> Wl.Keys.sample sampler r) in
  let a = draw (rng ()) and b = draw (rng ()) in
  Alcotest.(check bool) "deterministic per seed" true (a = b);
  let hot = Array.fold_left (fun acc k -> if k < 8 then acc + 1 else acc) 0 a in
  Alcotest.(check bool) "mass concentrates on hot keys" true (hot > 1000);
  let in_range = Array.for_all (fun k -> k >= 0 && k < 128) a in
  Alcotest.(check bool) "keys in range" true in_range

(* --- Batch --- *)

let test_batch_policy () =
  let p = Wl.Batch.make ~max_batch:128 ~max_wait_ms:25. in
  Alcotest.(check string) "cli" "128@25" (Wl.Batch.to_cli_string p);
  (match Wl.Batch.of_string "128@25" with
  | Ok p' -> Alcotest.(check bool) "roundtrip" true (p = p')
  | Error e -> Alcotest.fail e);
  (match Wl.Batch.of_string "64" with
  | Ok p' ->
    Alcotest.(check int) "bare size" 64 p'.Wl.Batch.max_batch;
    Alcotest.(check (float 1e-9)) "default wait" Wl.Batch.default.Wl.Batch.max_wait_ms
      p'.Wl.Batch.max_wait_ms
  | Error e -> Alcotest.fail e);
  (match Wl.Batch.of_string "0@10" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero batch accepted");
  Alcotest.(check int) "empty batch pays header" Wl.Batch.header_bytes (Wl.Batch.size_bytes ~count:0);
  Alcotest.(check int) "linear size"
    (Wl.Batch.header_bytes + (3 * Wl.Batch.request_bytes))
    (Wl.Batch.size_bytes ~count:3)

(* --- Driver --- *)

let load_config () =
  Core.Config.make ~n:4 ~lambda_ms:200. ~delay:(Bftsim_net.Delay_model.normal ~mu:20. ~sigma:5.)
    ~decisions_target:10 ~seed:7 "pbft"

let driver () =
  Wl.Driver.make
    ~arrival:(Wl.Arrival.poisson ~rate:1.)
    ~policy:(Wl.Batch.make ~max_batch:64 ~max_wait_ms:20.)
    ~mempool_capacity:512 ()

let test_driver_point_deterministic () =
  let config = load_config () in
  let p1, _ = Wl.Driver.run_point (driver ()) ~rate:400. config in
  let p2, _ = Wl.Driver.run_point (driver ()) ~rate:400. config in
  Alcotest.(check bool) "same point twice" true (p1 = p2);
  Alcotest.(check string) "liveness" "reached-target" p1.Wl.Driver.outcome;
  Alcotest.(check bool) "committed some requests" true (p1.Wl.Driver.committed > 0);
  Alcotest.(check bool) "latency measured" true (p1.Wl.Driver.latency <> None)

let test_driver_sweep_jobs_identical () =
  let config = load_config () in
  let rates = [ 200.; 800. ] in
  let c1 = Wl.Driver.sweep ~jobs:1 (driver ()) config ~rates in
  let c2 = Wl.Driver.sweep ~jobs:2 (driver ()) config ~rates in
  Alcotest.(check bool) "points identical at any jobs" true
    (c1.Wl.Driver.points = c2.Wl.Driver.points)

let test_driver_saturation () =
  (* Drive far past capacity: the pool must overflow and committed
     throughput must fall well short of the offered rate. *)
  let config = load_config () in
  let p, _ = Wl.Driver.run_point (driver ()) ~rate:50000. config in
  Alcotest.(check bool) "mempool overflowed" true (p.Wl.Driver.dropped > 0);
  Alcotest.(check bool) "throughput below offered" true (p.Wl.Driver.throughput < 25000.);
  Alcotest.(check bool) "batches full" true (p.Wl.Driver.occupancy_mean > 32.)

let test_driver_point_json_roundtrip () =
  let config = load_config () in
  let p, _ = Wl.Driver.run_point (driver ()) ~rate:400. config in
  match Wl.Driver.point_of_json (Wl.Driver.point_to_json p) with
  | Ok p' -> Alcotest.(check bool) "point json roundtrip" true (p = p')
  | Error e -> Alcotest.fail e

let test_driver_pipeline_commits () =
  (* Pipelined heights must preserve liveness and contiguous commits. *)
  let config = { (load_config ()) with Core.Config.pipeline = 4 } in
  let p, _ = Wl.Driver.run_point (driver ()) ~rate:400. config in
  Alcotest.(check string) "pipelined liveness" "reached-target" p.Wl.Driver.outcome;
  Alcotest.(check bool) "pipelined commits" true (p.Wl.Driver.committed > 0)

let test_driver_metrics_injected () =
  let config =
    {
      (load_config ()) with
      Core.Config.telemetry =
        { Core.Config.default_telemetry with Core.Config.metrics = true };
    }
  in
  let _, metrics = Wl.Driver.run_point (driver ()) ~rate:400. config in
  match metrics with
  | None -> Alcotest.fail "no registry with telemetry on"
  | Some reg ->
    let names = List.map fst (Bftsim_obs.Metrics.snapshot reg) in
    List.iter
      (fun name ->
        Alcotest.(check bool) name true (List.mem name names))
      [ "wl.submitted"; "wl.committed"; "wl.batch_occupancy"; "wl.request_latency_ms" ]

let test_workload_disabled_identical () =
  (* A run without the workload hook must be bit-identical to the
     pre-workload engine: same fingerprint fields, no stray events. *)
  let config = load_config () in
  let r1 = Core.Controller.run config in
  let r2 = Core.Controller.run config in
  Alcotest.(check bool) "plain runs deterministic" true
    (r1.Core.Controller.decisions = r2.Core.Controller.decisions
    && r1.Core.Controller.time_ms = r2.Core.Controller.time_ms
    && r1.Core.Controller.events_processed = r2.Core.Controller.events_processed)

(* --- Cross-protocol differential load suite --- *)

(* The paper's eight protocols (the golden set).  The single-shot
   value-agreement family (add-*, algorand, async-ba) never pulls batches —
   proposing a client batch would violate their validity condition — so
   under load they commit zero requests; the accounting invariants must
   hold for them all the same. *)
let eight = [ "add-v1"; "add-v2"; "add-v3"; "algorand"; "async-ba"; "pbft"; "hotstuff-ns"; "librabft" ]

let smr = [ "pbft"; "hotstuff-ns"; "librabft" ]

let diff_config ~pipeline protocol =
  let decisions_target = if List.mem protocol smr then 12 else 1 in
  Core.Config.make protocol ~n:4 ~lambda_ms:200. ~delay:(Bftsim_net.Delay_model.Constant 20.)
    ~decisions_target ~seed:7 ~pipeline

let diff_driver () =
  Wl.Driver.make
    ~arrival:(Wl.Arrival.constant ~rate:1.)
    ~policy:(Wl.Batch.make ~max_batch:32 ~max_wait_ms:10.)
    ~mempool_capacity:256 ()

(* Driver-side accounting vs the consensus logs: the committed-request set
   the driver observed must be permutation-equal to the requests contained
   in batch values decided by at least f+1 distinct nodes, and every
   submitted id must be in exactly one of committed / dropped / pending /
   in-flight. *)
let check_differential ~pipeline protocol () =
  let config = diff_config ~pipeline protocol in
  let point, audit, result = Wl.Driver.run_point_audit (diff_driver ()) ~rate:400. config in
  let f = (config.Core.Config.n - 1) / 3 in
  (* Accounting identity: no arrival unaccounted. *)
  Alcotest.(check int)
    (protocol ^ ": submitted = committed + dropped + pending + in_flight")
    point.Wl.Driver.submitted
    (point.Wl.Driver.committed + point.Wl.Driver.dropped + point.Wl.Driver.pending
   + point.Wl.Driver.in_flight);
  (* No id is both committed and still pending/in-flight (and in particular
     no dropped id can commit: drops never enter the pool). *)
  let committed_sorted = List.sort compare audit.Wl.Driver.committed_ids in
  Alcotest.(check bool) (protocol ^ ": no id committed twice") true
    (List.sort_uniq compare committed_sorted = committed_sorted);
  let module S = Set.Make (Int) in
  let cset = S.of_list committed_sorted in
  Alcotest.(check bool) (protocol ^ ": committed disjoint from pending") true
    (not (List.exists (fun id -> S.mem id cset) audit.Wl.Driver.pending_ids));
  Alcotest.(check bool) (protocol ^ ": committed disjoint from in-flight") true
    (not (List.exists (fun id -> S.mem id cset) audit.Wl.Driver.in_flight_ids));
  (* Permutation equality against the consensus logs. *)
  let decided_counts = Hashtbl.create 64 in
  List.iter
    (fun (_node, values) ->
      List.iter
        (fun v ->
          Hashtbl.replace decided_counts v (1 + Option.value ~default:0 (Hashtbl.find_opt decided_counts v)))
        (List.sort_uniq compare values))
    result.Core.Controller.decisions;
  let expected =
    List.concat_map
      (fun (value, ids) ->
        match Hashtbl.find_opt decided_counts value with
        | Some c when c >= f + 1 -> ids
        | Some _ | None -> [])
      audit.Wl.Driver.batch_log
  in
  Alcotest.(check (list int))
    (protocol ^ ": committed ids permutation-equal to quorum-decided batches")
    (List.sort compare expected) committed_sorted;
  (* The wired SMR protocols must actually move requests through. *)
  if List.mem protocol smr then
    Alcotest.(check bool) (protocol ^ ": nonzero goodput") true (point.Wl.Driver.committed > 0)

let test_differential_depth1 () = List.iter (fun p -> check_differential ~pipeline:1 p ()) eight

let test_differential_depth4 () = List.iter (fun p -> check_differential ~pipeline:4 p ()) eight

let test_chained_extensions_differential () =
  (* The chained/pipelined extension protocols go through the same audit. *)
  List.iter
    (fun p ->
      let config =
        Core.Config.make p ~n:4 ~lambda_ms:200. ~delay:(Bftsim_net.Delay_model.Constant 20.)
          ~decisions_target:12 ~seed:7 ~pipeline:4
      in
      let point, audit, _ = Wl.Driver.run_point_audit (diff_driver ()) ~rate:400. config in
      Alcotest.(check int) (p ^ ": accounting identity") point.Wl.Driver.submitted
        (point.Wl.Driver.committed + point.Wl.Driver.dropped + point.Wl.Driver.pending
       + point.Wl.Driver.in_flight);
      Alcotest.(check bool) (p ^ ": goodput") true (point.Wl.Driver.committed > 0);
      Alcotest.(check bool) (p ^ ": no duplicate commits") true
        (let s = List.sort compare audit.Wl.Driver.committed_ids in
         List.sort_uniq compare s = s))
    [ "tendermint"; "hotstuff-cogsworth"; "sync-hotstuff" ]

let test_chained_pipeline_speedup () =
  (* The tentpole claim: a chained protocol at depth 4 moves at least 2x
     the requests of depth 1 over the same heights at saturation. *)
  let run pipeline =
    let config =
      Core.Config.make "hotstuff-ns" ~n:4 ~lambda_ms:200.
        ~delay:(Bftsim_net.Delay_model.Constant 20.) ~decisions_target:20 ~seed:7 ~pipeline
    in
    let p, _ = Wl.Driver.run_point (diff_driver ()) ~rate:4000. config in
    p.Wl.Driver.throughput
  in
  let t1 = run 1 and t4 = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "depth-4 >= 2x depth-1 (%.1f vs %.1f req/s)" t4 t1)
    true (t4 >= 2. *. t1)

(* --- Re-queue accounting under churn --- *)

let test_requeue_churn_accounting () =
  (* A churny view-change schedule (chaos crash/recover on rotating
     leaders) with a batch wait longer than the base view duration: some
     leader continuations fire after their view moved on, and those batches
     must be re-queued and eventually committed, never lost.  The identity
     [submitted = committed + dropped + pending + in_flight] holding with
     [requeued > 0] is the "no arrival unaccounted" acceptance check. *)
  let chaos =
    [
      { Bftsim_attack.Fault_schedule.at_ms = 100.; action = Bftsim_attack.Fault_schedule.Crash 1 };
      { Bftsim_attack.Fault_schedule.at_ms = 2500.; action = Bftsim_attack.Fault_schedule.Recover 1 };
      { Bftsim_attack.Fault_schedule.at_ms = 2600.; action = Bftsim_attack.Fault_schedule.Crash 2 };
      { Bftsim_attack.Fault_schedule.at_ms = 5000.; action = Bftsim_attack.Fault_schedule.Recover 2 };
    ]
  in
  let config =
    Core.Config.make "hotstuff-ns" ~n:4 ~lambda_ms:100.
      ~delay:(Bftsim_net.Delay_model.Constant 10.) ~decisions_target:30 ~seed:11 ~chaos
      ~max_time_ms:60_000. ~pipeline:2
  in
  let driver =
    Wl.Driver.make
      ~arrival:(Wl.Arrival.constant ~rate:1.)
      ~policy:(Wl.Batch.make ~max_batch:512 ~max_wait_ms:400.)
      ~mempool_capacity:4096 ()
  in
  let point, audit, _ = Wl.Driver.run_point_audit driver ~rate:300. config in
  Alcotest.(check bool) "stale batches were re-queued" true (point.Wl.Driver.requeued > 0);
  Alcotest.(check bool) "progress despite churn" true (point.Wl.Driver.committed > 0);
  Alcotest.(check int) "every arrival accounted" point.Wl.Driver.submitted
    (point.Wl.Driver.committed + point.Wl.Driver.dropped + point.Wl.Driver.pending
   + point.Wl.Driver.in_flight);
  (* Re-queued requests are not lost: each re-queued id ends up committed,
     pending, or in flight — and never in two places. *)
  let module S = Set.Make (Int) in
  let c = S.of_list audit.Wl.Driver.committed_ids in
  let p = S.of_list audit.Wl.Driver.pending_ids in
  let fl = S.of_list audit.Wl.Driver.in_flight_ids in
  Alcotest.(check bool) "states disjoint" true
    (S.is_empty (S.inter c p) && S.is_empty (S.inter c fl) && S.is_empty (S.inter p fl));
  List.iter
    (fun (id, times) ->
      Alcotest.(check bool)
        (Printf.sprintf "requeued id %d (x%d) accounted" id times)
        true
        (S.mem id c || S.mem id p || S.mem id fl))
    audit.Wl.Driver.requeued_ids;
  (* wl.requeued + wl.dropped + wl.committed covers every *resolved*
     arrival: metrics view of the same identity. *)
  let requeue_events = List.fold_left (fun acc (_, n) -> acc + n) 0 audit.Wl.Driver.requeued_ids in
  Alcotest.(check int) "requeue count matches audit" point.Wl.Driver.requeued requeue_events

(* --- Closed loop + keys --- *)

let test_closed_loop_self_limits () =
  let config = load_config () in
  let driver =
    Wl.Driver.make
      ~policy:(Wl.Batch.make ~max_batch:64 ~max_wait_ms:20.)
      ~mempool_capacity:512
      ~clients:(Wl.Driver.Closed_loop { cap = 4 })
      ()
  in
  (* rate = population size in closed-loop mode. *)
  let p8, _ = Wl.Driver.run_point driver ~rate:8. config in
  let p32, _ = Wl.Driver.run_point driver ~rate:32. config in
  Alcotest.(check string) "closed loop reaches target" "reached-target" p8.Wl.Driver.outcome;
  (* Self-limiting: in-flight never exceeds population x cap, nothing is
     ever dropped, and more clients push more requests through. *)
  Alcotest.(check int) "closed loop never drops" 0 p8.Wl.Driver.dropped;
  Alcotest.(check bool) "peak bounded by population window" true
    (p8.Wl.Driver.mempool_peak <= 8 * 4);
  Alcotest.(check bool) "population scales throughput" true
    (p32.Wl.Driver.committed > p8.Wl.Driver.committed);
  let p8', _ = Wl.Driver.run_point driver ~rate:8. config in
  Alcotest.(check bool) "closed loop deterministic" true (p8 = p8')

let test_keyed_conflicts_counted () =
  let config = load_config () in
  let mk keys =
    Wl.Driver.make
      ~policy:(Wl.Batch.make ~max_batch:64 ~max_wait_ms:20.)
      ~mempool_capacity:512 ~keys ()
  in
  let hot, _ = Wl.Driver.run_point (mk (Wl.Keys.zipf ~s:1.5 ~space:16 ())) ~rate:800. config in
  let cold, _ = Wl.Driver.run_point (mk (Wl.Keys.uniform ~space:4096)) ~rate:800. config in
  let unkeyed, _ = Wl.Driver.run_point (mk Wl.Keys.Single) ~rate:800. config in
  Alcotest.(check int) "single mode counts no conflicts" 0 unkeyed.Wl.Driver.key_conflicts;
  Alcotest.(check bool) "hot zipf keys conflict more than a wide uniform space" true
    (hot.Wl.Driver.key_conflicts > cold.Wl.Driver.key_conflicts);
  (* Keyed runs keep the unkeyed arrival schedule: same submission count. *)
  Alcotest.(check int) "arrival schedule unperturbed by keying" unkeyed.Wl.Driver.submitted
    hot.Wl.Driver.submitted

let () =
  Alcotest.run "workload"
    [
      ( "arrival",
        [
          Alcotest.test_case "cli roundtrip" `Quick test_arrival_roundtrip;
          Alcotest.test_case "constant gap" `Quick test_arrival_constant_gap;
          Alcotest.test_case "on/off windows" `Quick test_arrival_onoff_windows;
          Alcotest.test_case "with_rate keeps shape" `Quick test_arrival_with_rate;
        ] );
      ( "mempool",
        [
          Alcotest.test_case "FIFO order" `Quick test_mempool_fifo;
          Alcotest.test_case "bound drops newest" `Quick test_mempool_bound;
          Alcotest.test_case "requeue front order" `Quick test_mempool_requeue_front;
          QCheck_alcotest.to_alcotest prop_requeue_conserves_ids;
        ] );
      ( "keys",
        [
          Alcotest.test_case "cli roundtrip" `Quick test_keys_roundtrip;
          Alcotest.test_case "zipf skew" `Quick test_keys_zipf_skew;
        ] );
      ( "batch", [ Alcotest.test_case "policy parse and size" `Quick test_batch_policy ] );
      ( "driver",
        [
          Alcotest.test_case "point deterministic" `Quick test_driver_point_deterministic;
          Alcotest.test_case "sweep jobs-identical" `Quick test_driver_sweep_jobs_identical;
          Alcotest.test_case "saturation under overload" `Quick test_driver_saturation;
          Alcotest.test_case "point json roundtrip" `Quick test_driver_point_json_roundtrip;
          Alcotest.test_case "pipelined liveness" `Quick test_driver_pipeline_commits;
          Alcotest.test_case "wl metrics injected" `Quick test_driver_metrics_injected;
          Alcotest.test_case "disabled path deterministic" `Quick test_workload_disabled_identical;
          Alcotest.test_case "closed loop self-limits" `Quick test_closed_loop_self_limits;
          Alcotest.test_case "keyed conflicts counted" `Quick test_keyed_conflicts_counted;
        ] );
      ( "differential",
        [
          Alcotest.test_case "eight protocols, depth 1" `Quick test_differential_depth1;
          Alcotest.test_case "eight protocols, depth 4" `Quick test_differential_depth4;
          Alcotest.test_case "chained extensions, depth 4" `Quick test_chained_extensions_differential;
          Alcotest.test_case "chained pipeline speedup" `Quick test_chained_pipeline_speedup;
        ] );
      ( "churn",
        [ Alcotest.test_case "requeue accounting under view changes" `Quick test_requeue_churn_accounting ] );
    ]
