(* Tests for the workload subsystem: arrival processes, the bounded
   mempool, batching policy, and the driver's determinism guarantees
   (same point twice, jobs-independent sweeps, journal round-trips). *)

open Bftsim_sim
module Core = Bftsim_core
module Wl = Bftsim_workload

let rng () = Rng.create 42

(* --- Arrival --- *)

let test_arrival_roundtrip () =
  let cases =
    [
      Wl.Arrival.constant ~rate:100.;
      Wl.Arrival.poisson ~rate:0.5;
      Wl.Arrival.on_off ~rate:800. ~on_ms:100. ~off_ms:400.;
    ]
  in
  List.iter
    (fun a ->
      match Wl.Arrival.of_string (Wl.Arrival.to_cli_string a) with
      | Ok a' -> Alcotest.(check bool) (Wl.Arrival.describe a) true (a = a')
      | Error e -> Alcotest.failf "reparse %s failed: %s" (Wl.Arrival.to_cli_string a) e)
    cases;
  (match Wl.Arrival.of_string "poisson:-5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative rate accepted");
  match Wl.Arrival.of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense accepted"

let test_arrival_constant_gap () =
  let a = Wl.Arrival.constant ~rate:200. in
  Alcotest.(check (float 1e-9)) "gap = 1000/rate" 5. (Wl.Arrival.next_gap_ms a ~now_ms:0. (rng ()));
  Alcotest.(check (float 1e-9)) "rate" 200. (Wl.Arrival.mean_rate a)

let test_arrival_onoff_windows () =
  (* Walk the arrival stream; every arrival must land inside an on window. *)
  let on_ms = 100. and off_ms = 400. in
  let a = Wl.Arrival.on_off ~rate:500. ~on_ms ~off_ms in
  let r = rng () in
  let now = ref 0. in
  for _ = 1 to 2000 do
    let gap = Wl.Arrival.next_gap_ms a ~now_ms:!now r in
    if gap < 0. then Alcotest.failf "negative gap %f" gap;
    now := !now +. gap;
    let phase = Float.rem !now (on_ms +. off_ms) in
    if phase > on_ms +. 1e-9 then Alcotest.failf "arrival at %f lands in off window (phase %f)" !now phase
  done;
  (* Duty cycle scales the long-run rate. *)
  Alcotest.(check (float 1e-9)) "mean rate" 100. (Wl.Arrival.mean_rate a)

let test_arrival_with_rate () =
  let a = Wl.Arrival.on_off ~rate:500. ~on_ms:100. ~off_ms:400. in
  match Wl.Arrival.with_rate a 1000. with
  | Wl.Arrival.On_off { rate; on_ms; off_ms } ->
    Alcotest.(check (float 1e-9)) "rate swapped" 1000. rate;
    Alcotest.(check (float 1e-9)) "on kept" 100. on_ms;
    Alcotest.(check (float 1e-9)) "off kept" 400. off_ms
  | _ -> Alcotest.fail "shape changed"

(* --- Mempool --- *)

let req id = { Wl.Mempool.id; arrived_ms = float_of_int id }

let test_mempool_fifo () =
  let p = Wl.Mempool.create ~capacity:10 in
  for i = 0 to 4 do
    Alcotest.(check bool) "accepted" true (Wl.Mempool.add p (req i))
  done;
  Alcotest.(check int) "length" 5 (Wl.Mempool.length p);
  let taken = Wl.Mempool.take p ~max:3 in
  Alcotest.(check (list int)) "FIFO order" [ 0; 1; 2 ]
    (List.map (fun (r : Wl.Mempool.request) -> r.Wl.Mempool.id) taken);
  let rest = Wl.Mempool.take p ~max:100 in
  Alcotest.(check (list int)) "remainder in order" [ 3; 4 ]
    (List.map (fun (r : Wl.Mempool.request) -> r.Wl.Mempool.id) rest);
  Alcotest.(check int) "drained" 0 (Wl.Mempool.length p)

let test_mempool_bound () =
  let p = Wl.Mempool.create ~capacity:3 in
  for i = 0 to 4 do
    ignore (Wl.Mempool.add p (req i) : bool)
  done;
  Alcotest.(check int) "capped" 3 (Wl.Mempool.length p);
  Alcotest.(check int) "drops counted" 2 (Wl.Mempool.dropped p);
  Alcotest.(check int) "peak" 3 (Wl.Mempool.peak p);
  (* The bound rejects the newest requests, keeping the oldest. *)
  let taken = Wl.Mempool.take p ~max:3 in
  Alcotest.(check (list int)) "oldest kept" [ 0; 1; 2 ]
    (List.map (fun (r : Wl.Mempool.request) -> r.Wl.Mempool.id) taken)

(* --- Batch --- *)

let test_batch_policy () =
  let p = Wl.Batch.make ~max_batch:128 ~max_wait_ms:25. in
  Alcotest.(check string) "cli" "128@25" (Wl.Batch.to_cli_string p);
  (match Wl.Batch.of_string "128@25" with
  | Ok p' -> Alcotest.(check bool) "roundtrip" true (p = p')
  | Error e -> Alcotest.fail e);
  (match Wl.Batch.of_string "64" with
  | Ok p' ->
    Alcotest.(check int) "bare size" 64 p'.Wl.Batch.max_batch;
    Alcotest.(check (float 1e-9)) "default wait" Wl.Batch.default.Wl.Batch.max_wait_ms
      p'.Wl.Batch.max_wait_ms
  | Error e -> Alcotest.fail e);
  (match Wl.Batch.of_string "0@10" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero batch accepted");
  Alcotest.(check int) "empty batch pays header" Wl.Batch.header_bytes (Wl.Batch.size_bytes ~count:0);
  Alcotest.(check int) "linear size"
    (Wl.Batch.header_bytes + (3 * Wl.Batch.request_bytes))
    (Wl.Batch.size_bytes ~count:3)

(* --- Driver --- *)

let load_config () =
  Core.Config.make ~n:4 ~lambda_ms:200. ~delay:(Bftsim_net.Delay_model.normal ~mu:20. ~sigma:5.)
    ~decisions_target:10 ~seed:7 "pbft"

let driver () =
  Wl.Driver.make
    ~arrival:(Wl.Arrival.poisson ~rate:1.)
    ~policy:(Wl.Batch.make ~max_batch:64 ~max_wait_ms:20.)
    ~mempool_capacity:512 ()

let test_driver_point_deterministic () =
  let config = load_config () in
  let p1, _ = Wl.Driver.run_point (driver ()) ~rate:400. config in
  let p2, _ = Wl.Driver.run_point (driver ()) ~rate:400. config in
  Alcotest.(check bool) "same point twice" true (p1 = p2);
  Alcotest.(check string) "liveness" "reached-target" p1.Wl.Driver.outcome;
  Alcotest.(check bool) "committed some requests" true (p1.Wl.Driver.committed > 0);
  Alcotest.(check bool) "latency measured" true (p1.Wl.Driver.latency <> None)

let test_driver_sweep_jobs_identical () =
  let config = load_config () in
  let rates = [ 200.; 800. ] in
  let c1 = Wl.Driver.sweep ~jobs:1 (driver ()) config ~rates in
  let c2 = Wl.Driver.sweep ~jobs:2 (driver ()) config ~rates in
  Alcotest.(check bool) "points identical at any jobs" true
    (c1.Wl.Driver.points = c2.Wl.Driver.points)

let test_driver_saturation () =
  (* Drive far past capacity: the pool must overflow and committed
     throughput must fall well short of the offered rate. *)
  let config = load_config () in
  let p, _ = Wl.Driver.run_point (driver ()) ~rate:50000. config in
  Alcotest.(check bool) "mempool overflowed" true (p.Wl.Driver.dropped > 0);
  Alcotest.(check bool) "throughput below offered" true (p.Wl.Driver.throughput < 25000.);
  Alcotest.(check bool) "batches full" true (p.Wl.Driver.occupancy_mean > 32.)

let test_driver_point_json_roundtrip () =
  let config = load_config () in
  let p, _ = Wl.Driver.run_point (driver ()) ~rate:400. config in
  match Wl.Driver.point_of_json (Wl.Driver.point_to_json p) with
  | Ok p' -> Alcotest.(check bool) "point json roundtrip" true (p = p')
  | Error e -> Alcotest.fail e

let test_driver_pipeline_commits () =
  (* Pipelined heights must preserve liveness and contiguous commits. *)
  let config = { (load_config ()) with Core.Config.pipeline = 4 } in
  let p, _ = Wl.Driver.run_point (driver ()) ~rate:400. config in
  Alcotest.(check string) "pipelined liveness" "reached-target" p.Wl.Driver.outcome;
  Alcotest.(check bool) "pipelined commits" true (p.Wl.Driver.committed > 0)

let test_driver_metrics_injected () =
  let config =
    {
      (load_config ()) with
      Core.Config.telemetry =
        { Core.Config.default_telemetry with Core.Config.metrics = true };
    }
  in
  let _, metrics = Wl.Driver.run_point (driver ()) ~rate:400. config in
  match metrics with
  | None -> Alcotest.fail "no registry with telemetry on"
  | Some reg ->
    let names = List.map fst (Bftsim_obs.Metrics.snapshot reg) in
    List.iter
      (fun name ->
        Alcotest.(check bool) name true (List.mem name names))
      [ "wl.submitted"; "wl.committed"; "wl.batch_occupancy"; "wl.request_latency_ms" ]

let test_workload_disabled_identical () =
  (* A run without the workload hook must be bit-identical to the
     pre-workload engine: same fingerprint fields, no stray events. *)
  let config = load_config () in
  let r1 = Core.Controller.run config in
  let r2 = Core.Controller.run config in
  Alcotest.(check bool) "plain runs deterministic" true
    (r1.Core.Controller.decisions = r2.Core.Controller.decisions
    && r1.Core.Controller.time_ms = r2.Core.Controller.time_ms
    && r1.Core.Controller.events_processed = r2.Core.Controller.events_processed)

let () =
  Alcotest.run "workload"
    [
      ( "arrival",
        [
          Alcotest.test_case "cli roundtrip" `Quick test_arrival_roundtrip;
          Alcotest.test_case "constant gap" `Quick test_arrival_constant_gap;
          Alcotest.test_case "on/off windows" `Quick test_arrival_onoff_windows;
          Alcotest.test_case "with_rate keeps shape" `Quick test_arrival_with_rate;
        ] );
      ( "mempool",
        [
          Alcotest.test_case "FIFO order" `Quick test_mempool_fifo;
          Alcotest.test_case "bound drops newest" `Quick test_mempool_bound;
        ] );
      ( "batch", [ Alcotest.test_case "policy parse and size" `Quick test_batch_policy ] );
      ( "driver",
        [
          Alcotest.test_case "point deterministic" `Quick test_driver_point_deterministic;
          Alcotest.test_case "sweep jobs-identical" `Quick test_driver_sweep_jobs_identical;
          Alcotest.test_case "saturation under overload" `Quick test_driver_saturation;
          Alcotest.test_case "point json roundtrip" `Quick test_driver_point_json_roundtrip;
          Alcotest.test_case "pipelined liveness" `Quick test_driver_pipeline_commits;
          Alcotest.test_case "wl metrics injected" `Quick test_driver_metrics_injected;
          Alcotest.test_case "disabled path deterministic" `Quick test_workload_disabled_identical;
        ] );
    ]
