(* Tests for the network module: envelopes, delay models (including the
   mapping to the paper's three network models), topology and counters. *)

open Bftsim_sim
open Bftsim_net

let rng () = Rng.create 1234

(* --- Message --- *)

let test_message_make () =
  let m = Message.make ~id:7 ~src:1 ~dst:2 ~sent_at:(Time.of_ms 100.) (Message.Blob "hello") in
  Alcotest.(check int) "id" 7 m.Message.id;
  Alcotest.(check string) "default tag" "msg" m.Message.tag;
  Alcotest.(check int) "default size" Message.default_size m.Message.size;
  Alcotest.(check (float 1e-9)) "no delay yet" 0. m.Message.delay_ms

let test_message_arrival () =
  let m = Message.make ~id:1 ~src:0 ~dst:1 ~sent_at:(Time.of_ms 100.) (Message.Blob "x") in
  m.Message.delay_ms <- 40.;
  Alcotest.(check (float 1e-9)) "arrival = sent + delay" 140. (Time.to_ms (Message.arrival_time m))

let test_message_printer_registry () =
  Alcotest.(check string) "blob fallback" "Blob(hi)" (Message.payload_to_string (Message.Blob "hi"));
  (* Registered printers see protocol payloads. *)
  let s = Message.payload_to_string (Bftsim_protocols.Pbft.Prepare { view = 1; slot = 2; value = "v" }) in
  Alcotest.(check string) "pbft prepare rendered" "Prepare(v=1,s=2,v)" s

(* --- Delay_model --- *)

let test_delay_constant () =
  let m = Delay_model.Constant 42. in
  for _ = 1 to 10 do
    Alcotest.(check (float 1e-9)) "constant" 42. (Delay_model.sample m (rng ()))
  done;
  Alcotest.(check (option (float 1e-9))) "bound" (Some 42.) (Delay_model.upper_bound m)

let test_delay_uniform_bounds () =
  let m = Delay_model.Uniform { lo = 10.; hi = 20. } in
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Delay_model.sample m r in
    if v < 10. || v >= 20. then Alcotest.failf "uniform delay out of bounds: %f" v
  done;
  Alcotest.(check (option (float 1e-9))) "upper bound" (Some 20.) (Delay_model.upper_bound m)

let test_delay_normal_nonnegative () =
  (* Truncation matters when mu is close to 0 relative to sigma. *)
  let m = Delay_model.normal ~mu:10. ~sigma:100. in
  let r = rng () in
  for _ = 1 to 5000 do
    let v = Delay_model.sample m r in
    if v < 0. then Alcotest.failf "negative delay: %f" v
  done;
  Alcotest.(check (option (float 1e-9))) "normal unbounded" None (Delay_model.upper_bound m)

let test_delay_bounded () =
  let m = Delay_model.bounded (Delay_model.normal ~mu:250. ~sigma:50.) ~bound:260. in
  let r = rng () in
  for _ = 1 to 2000 do
    let v = Delay_model.sample m r in
    if v > 260. then Alcotest.failf "bound violated: %f" v
  done;
  Alcotest.(check (option (float 1e-9))) "bound reported" (Some 260.) (Delay_model.upper_bound m)

let test_delay_mean () =
  Alcotest.(check (float 1e-9)) "uniform mean" 15.
    (Delay_model.mean (Delay_model.Uniform { lo = 10.; hi = 20. }));
  Alcotest.(check (float 1e-9)) "normal mean" 250. (Delay_model.mean (Delay_model.normal ~mu:250. ~sigma:50.));
  Alcotest.(check (float 1e-9)) "exp mean" 300. (Delay_model.mean (Delay_model.Exponential { mean = 300. }))

let test_delay_describe_parse_roundtrip () =
  let cases =
    [ "constant:100"; "uniform:10,20"; "normal:250,50"; "exp:300"; "poisson:250";
      "bounded:normal:250,50@1000" ]
  in
  List.iter
    (fun s ->
      match Delay_model.of_string s with
      | Error e -> Alcotest.failf "parse %s failed: %s" s e
      | Ok m -> ignore (Delay_model.describe m))
    cases;
  (match Delay_model.of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense parsed");
  (match Delay_model.of_string "uniform:20,10" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inverted uniform accepted");
  match Delay_model.of_string "normal:250,50" with
  | Ok (Delay_model.Normal { mu; sigma }) ->
    Alcotest.(check (float 1e-9)) "mu" 250. mu;
    Alcotest.(check (float 1e-9)) "sigma" 50. sigma
  | _ -> Alcotest.fail "normal parse shape"

let test_delay_lognormal () =
  let m = Delay_model.log_normal ~mu:1.5 ~sigma:0.5 in
  let r = rng () in
  for _ = 1 to 2000 do
    let v = Delay_model.sample m r in
    if v <= 0. || not (Float.is_finite v) then Alcotest.failf "lognormal sample out of range: %f" v
  done;
  Alcotest.(check (option (float 1e-9))) "lognormal unbounded" None (Delay_model.upper_bound m);
  (* E[LogN(mu, sigma)] = exp(mu + sigma^2/2). *)
  Alcotest.(check (float 1e-9)) "lognormal mean" (Float.exp (1.5 +. (0.5 *. 0.5 /. 2.)))
    (Delay_model.mean m);
  (match Delay_model.of_string "lognormal:1.5,0.5" with
  | Ok (Delay_model.LogNormal { mu; sigma }) ->
    Alcotest.(check (float 1e-9)) "mu" 1.5 mu;
    Alcotest.(check (float 1e-9)) "sigma" 0.5 sigma
  | _ -> Alcotest.fail "lognormal parse shape");
  match Delay_model.of_string "logn:0,1" with
  | Ok (Delay_model.LogNormal _) -> ()
  | _ -> Alcotest.fail "logn alias rejected"

let test_delay_bounded_mean_truncated () =
  (* min(mean base, bound) would report 250 here; the truncated mean must be
     strictly below the bound because clipping moves the upper tail down. *)
  let m = Delay_model.bounded (Delay_model.normal ~mu:250. ~sigma:50.) ~bound:250. in
  let est = Delay_model.mean m in
  if est >= 250. then Alcotest.failf "truncated mean not below bound: %f" est;
  if est < 200. then Alcotest.failf "truncated mean implausibly low: %f" est;
  (* Pure function of the model: repeated calls agree exactly. *)
  Alcotest.(check (float 0.)) "deterministic estimate" est (Delay_model.mean m)

(* Generator covering every Delay_model constructor, with parameters drawn so
   that printf "%g" round-trips them exactly (small integers scaled by 0.5). *)
let delay_model_gen =
  let open QCheck.Gen in
  let g_float = map (fun k -> float_of_int k /. 2.) (int_range 0 2000) in
  let g_pos = map (fun k -> float_of_int (k + 1) /. 2.) (int_range 0 2000) in
  let leaf =
    oneof
      [
        map (fun ms -> Delay_model.Constant ms) g_float;
        map2 (fun lo span -> Delay_model.Uniform { lo; hi = lo +. span }) g_float g_pos;
        map2 (fun mu sigma -> Delay_model.Normal { mu; sigma }) g_float g_pos;
        map (fun mean -> Delay_model.Exponential { mean }) g_pos;
        map (fun mean -> Delay_model.Poisson { mean }) g_pos;
        map2 (fun mu sigma -> Delay_model.LogNormal { mu; sigma }) g_float g_pos;
      ]
  in
  oneof [ leaf; map2 (fun base bound -> Delay_model.Bounded { base; bound }) leaf g_pos ]

let prop_delay_cli_roundtrip =
  QCheck.Test.make ~name:"of_string (to_cli_string d) = d for every constructor" ~count:500
    (QCheck.make ~print:Delay_model.describe delay_model_gen) (fun m ->
      match Delay_model.of_string (Delay_model.to_cli_string m) with
      | Ok m' -> m' = m
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e)

let prop_delay_samples_nonnegative_finite =
  let model_gen =
    QCheck.Gen.(
      oneof
        [
          map (fun ms -> Delay_model.Constant (Float.abs ms)) (float_bound_exclusive 1e4);
          map2
            (fun lo span -> Delay_model.Uniform { lo = Float.abs lo; hi = Float.abs lo +. Float.abs span +. 1. })
            (float_bound_exclusive 1e3) (float_bound_exclusive 1e3);
          map2
            (fun mu sigma -> Delay_model.Normal { mu = Float.abs mu; sigma = Float.abs sigma })
            (float_bound_exclusive 1e3) (float_bound_exclusive 1e3);
          map (fun mean -> Delay_model.Exponential { mean = Float.abs mean +. 1. }) (float_bound_exclusive 1e3);
        ])
  in
  QCheck.Test.make ~name:"all delay models sample nonnegative finite values" ~count:200
    (QCheck.make model_gen) (fun m ->
      let r = rng () in
      List.for_all
        (fun _ ->
          let v = Delay_model.sample m r in
          Float.is_finite v && v >= 0.)
        (List.init 50 (fun i -> i)))

(* --- Topology --- *)

let test_topology_default () =
  let t = Topology.fully_connected 8 in
  Alcotest.(check int) "n" 8 (Topology.n t);
  Alcotest.(check bool) "all same subnet" true (Topology.same_subnet t 0 7);
  Alcotest.(check (float 1e-9)) "default scale" 1.0 (Topology.pair_scale t ~src:0 ~dst:1)

let test_topology_split () =
  let t = Topology.split_in_two 10 ~first_size:4 in
  Alcotest.(check int) "subnet of node 0" 0 (Topology.subnet_of t 0);
  Alcotest.(check int) "subnet of node 3" 0 (Topology.subnet_of t 3);
  Alcotest.(check int) "subnet of node 4" 1 (Topology.subnet_of t 4);
  Alcotest.(check bool) "cross-subnet differs" false (Topology.same_subnet t 0 9)

let test_topology_pair_scale () =
  let t = Topology.fully_connected 4 in
  Topology.set_pair_scale t ~src:1 ~dst:2 3.5;
  Alcotest.(check (float 1e-9)) "scaled link" 3.5 (Topology.pair_scale t ~src:1 ~dst:2);
  Alcotest.(check (float 1e-9)) "reverse direction untouched" 1.0 (Topology.pair_scale t ~src:2 ~dst:1)

let test_topology_validation () =
  (match Topology.fully_connected 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n = 0 accepted");
  let t = Topology.fully_connected 4 in
  match Topology.with_subnets t [| 0; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched subnet assignment accepted"

let test_topology_with_subnets_no_aliasing () =
  (* Regression: with_subnets used to share the scales hashtable with its
     parent, so scaling a link on the derived topology silently mutated the
     original. *)
  let t = Topology.fully_connected 4 in
  let t' = Topology.with_subnets t [| 0; 0; 1; 1 |] in
  Topology.set_pair_scale t' ~src:0 ~dst:1 9.0;
  Alcotest.(check (float 1e-9)) "derived scaled" 9.0 (Topology.pair_scale t' ~src:0 ~dst:1);
  Alcotest.(check (float 1e-9)) "parent untouched" 1.0 (Topology.pair_scale t ~src:0 ~dst:1);
  (* And the subnet array is a copy too. *)
  let assignment = [| 0; 0; 1; 1 |] in
  let t'' = Topology.with_subnets t assignment in
  assignment.(0) <- 1;
  Alcotest.(check int) "assignment copied" 0 (Topology.subnet_of t'' 0)

let test_topology_zones () =
  match Topology.of_zone_spec "geo3" ~n:7 with
  | Error e -> Alcotest.failf "geo3 rejected: %s" e
  | Ok t ->
    Alcotest.(check int) "zone count" 3 (Topology.zone_count t);
    (* Round-robin placement. *)
    Alcotest.(check (option int)) "node 0 zone" (Some 0) (Topology.zone_of t 0);
    Alcotest.(check (option int)) "node 4 zone" (Some 1) (Topology.zone_of t 4);
    Alcotest.(check string) "zone name" "eu-west" (Topology.zone_name t 1);
    (* Matrix symmetry: rtt(a,b) = rtt(b,a) for every node pair. *)
    for a = 0 to 6 do
      for b = 0 to 6 do
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "rtt symmetric %d,%d" a b)
          (Topology.zone_rtt_ms t ~a ~b)
          (Topology.zone_rtt_ms t ~a:b ~b:a)
      done
    done;
    (* One-way zone delay is half the RTT; nodes 0 and 1 sit in different
       zones of geo3 (us-east / eu-west, 80 ms RTT). *)
    Alcotest.(check (float 1e-9)) "one-way = rtt/2" 40. (Topology.zone_delay_ms t ~src:0 ~dst:1);
    Alcotest.(check (float 1e-9)) "intra-zone rtt" Topology.intra_rtt
      (Topology.zone_rtt_ms t ~a:0 ~b:3)

let test_topology_zone_specs () =
  (match Topology.zones_of_spec "uniform:4@120" with
  | Ok (names, m) ->
    Alcotest.(check int) "k zones" 4 (Array.length names);
    Alcotest.(check (float 1e-9)) "uniform rtt" 120. m.(0).(3);
    Alcotest.(check (float 1e-9)) "diagonal intra" Topology.intra_rtt m.(2).(2)
  | Error e -> Alcotest.failf "uniform spec rejected: %s" e);
  (match Topology.zones_of_spec "geo5" with
  | Ok (names, _) -> Alcotest.(check int) "geo5 zones" 5 (Array.length names)
  | Error e -> Alcotest.failf "geo5 rejected: %s" e);
  match Topology.zones_of_spec "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense zone spec accepted"

(* --- Network --- *)

let make_msg ~src ~dst = Message.make ~id:1 ~src ~dst ~sent_at:Time.zero (Message.Blob "x")

let test_network_assigns_delay () =
  let net =
    Network.create ~delay:(Delay_model.Constant 30.) ~topology:(Topology.fully_connected 4)
      ~rng:(rng ()) ()
  in
  let m = make_msg ~src:0 ~dst:1 in
  Network.assign_delay net m;
  Alcotest.(check (float 1e-9)) "constant delay" 30. m.Message.delay_ms

let test_network_self_messages_free () =
  let net =
    Network.create ~delay:(Delay_model.Constant 30.) ~topology:(Topology.fully_connected 4)
      ~rng:(rng ()) ()
  in
  let m = make_msg ~src:2 ~dst:2 in
  Network.assign_delay net m;
  Alcotest.(check (float 1e-9)) "self delivery immediate" 0. m.Message.delay_ms;
  Alcotest.(check int) "self delivery not counted" 0 (Network.stats net).Network.sent

let test_network_counters () =
  let net =
    Network.create ~delay:(Delay_model.Constant 1.) ~topology:(Topology.fully_connected 4)
      ~rng:(rng ()) ()
  in
  Network.assign_delay net (make_msg ~src:0 ~dst:1);
  Network.assign_delay net (make_msg ~src:1 ~dst:2);
  let stats = Network.stats net in
  Alcotest.(check int) "sent" 2 stats.Network.sent;
  Alcotest.(check int) "bytes" (2 * Message.default_size) stats.Network.bytes;
  Network.reset_stats net;
  Alcotest.(check int) "reset" 0 (Network.stats net).Network.sent

let test_network_pair_scaling () =
  let topology = Topology.fully_connected 4 in
  Topology.set_pair_scale topology ~src:0 ~dst:1 2.0;
  let net = Network.create ~delay:(Delay_model.Constant 10.) ~topology ~rng:(rng ()) () in
  let m = make_msg ~src:0 ~dst:1 in
  Network.assign_delay net m;
  Alcotest.(check (float 1e-9)) "scaled delay" 20. m.Message.delay_ms

let test_network_zone_delay_additive () =
  (* Propagation = jitter * pair_scale + one-way zone delay. *)
  match Topology.of_zone_spec "geo3" ~n:4 with
  | Error e -> Alcotest.failf "geo3 rejected: %s" e
  | Ok topology ->
    let net = Network.create ~delay:(Delay_model.Constant 5.) ~topology ~rng:(rng ()) () in
    let m = make_msg ~src:0 ~dst:1 in
    Network.assign_delay net m;
    (* us-east -> eu-west: 80 ms RTT, so 40 ms one-way, plus 5 ms jitter. *)
    Alcotest.(check (float 1e-9)) "zone + jitter" 45. m.Message.delay_ms;
    let intra = make_msg ~src:0 ~dst:3 in
    Network.assign_delay net intra;
    Alcotest.(check (float 1e-9)) "intra-zone" (5. +. (Topology.intra_rtt /. 2.))
      intra.Message.delay_ms

let test_network_bandwidth_serialization () =
  (* 1 Mbps: a default-size (128 B) message serializes in 128*8/1000 = 1.024 ms. *)
  let net =
    Network.create ~bandwidth_mbps:1. ~delay:(Delay_model.Constant 10.)
      ~topology:(Topology.fully_connected 4) ~rng:(rng ()) ()
  in
  let m = make_msg ~src:0 ~dst:1 in
  Network.assign_delay net m;
  Alcotest.(check (float 1e-9)) "serialization added" (10. +. 1.024) m.Message.delay_ms;
  Alcotest.(check (float 1e-9)) "first message sees empty link" 0. (Network.last_queue_ms net)

let test_network_bandwidth_fifo_queue () =
  (* Two messages leaving the same source at t=0 share its egress link: the
     second waits for the first to finish serializing. *)
  let net =
    Network.create ~bandwidth_mbps:1. ~delay:(Delay_model.Constant 10.)
      ~topology:(Topology.fully_connected 4) ~rng:(rng ()) ()
  in
  let m1 = make_msg ~src:0 ~dst:1 in
  let m2 = make_msg ~src:0 ~dst:2 in
  let m3 = make_msg ~src:1 ~dst:2 in
  Network.assign_delay net m1;
  Network.assign_delay net m2;
  Network.assign_delay net m3;
  Alcotest.(check (float 1e-9)) "head of line" (10. +. 1.024) m1.Message.delay_ms;
  Alcotest.(check (float 1e-9)) "queued behind head" (10. +. 1.024 +. 1.024) m2.Message.delay_ms;
  Alcotest.(check (float 1e-9)) "queue wait recorded" 1.024 (Network.stats net).Network.queue_ms_total;
  Alcotest.(check int) "one message queued" 1 (Network.stats net).Network.queued;
  (* A different source has its own link. *)
  Alcotest.(check (float 1e-9)) "independent link" (10. +. 1.024) m3.Message.delay_ms

let test_network_bandwidth_link_drains () =
  (* After the link goes idle, a later message pays no queue wait. *)
  let net =
    Network.create ~bandwidth_mbps:1. ~delay:(Delay_model.Constant 0.)
      ~topology:(Topology.fully_connected 4) ~rng:(rng ()) ()
  in
  let early = make_msg ~src:0 ~dst:1 in
  Network.assign_delay net early;
  let late = Message.make ~id:2 ~src:0 ~dst:1 ~sent_at:(Time.of_ms 100.) (Message.Blob "x") in
  Network.assign_delay net late;
  Alcotest.(check (float 1e-9)) "no wait on idle link" 1.024 late.Message.delay_ms;
  Alcotest.(check int) "nothing queued" 0 (Network.stats net).Network.queued

let test_network_override_delay () =
  let net =
    Network.create ~delay:(Delay_model.Constant 10.) ~topology:(Topology.fully_connected 4)
      ~rng:(rng ()) ()
  in
  Network.override_delay net (Delay_model.Constant 99.);
  let m = make_msg ~src:0 ~dst:1 in
  Network.assign_delay net m;
  Alcotest.(check (float 1e-9)) "overridden model used" 99. m.Message.delay_ms

(* --- Loss_model --- *)

let test_loss_model_none () =
  Alcotest.(check bool) "none is lossless" true (Loss_model.is_none Loss_model.none);
  Alcotest.(check bool) "default make is lossless" true (Loss_model.is_none (Loss_model.make ()));
  Alcotest.(check string) "describe" "lossless" (Loss_model.describe Loss_model.none);
  (* The lossless model consumes no randomness: the RNG stream after a
     sample is exactly the stream before it (the disabled-path contract). *)
  let r1 = rng () and r2 = rng () in
  let st = Loss_model.state Loss_model.none in
  let v = Loss_model.sample st r1 ~src:0 ~dst:1 in
  Alcotest.(check bool) "delivers" true v.Loss_model.deliver;
  Alcotest.(check bool) "no dup" false v.Loss_model.duplicate;
  Alcotest.(check (float 0.)) "no reorder" 0. v.Loss_model.reorder_extra_ms;
  Alcotest.(check (float 0.)) "no draw consumed" (Rng.float r2 1.) (Rng.float r1 1.)

let test_loss_model_certain_drop () =
  let st = Loss_model.state (Loss_model.make ~drop:1. ()) in
  let r = rng () in
  for _ = 1 to 20 do
    let v = Loss_model.sample st r ~src:0 ~dst:1 in
    Alcotest.(check bool) "p=1 drops" false v.Loss_model.deliver
  done

let test_loss_model_rates () =
  (* Empirical frequencies over one link track the configured probabilities,
     and every reorder draw stays inside the window. *)
  let st = Loss_model.state (Loss_model.make ~drop:0.3 ~dup:0.2 ~reorder_ms:40. ()) in
  let r = rng () in
  let n = 10_000 in
  let drops = ref 0 and dups = ref 0 in
  for _ = 1 to n do
    let v = Loss_model.sample st r ~src:2 ~dst:3 in
    if not v.Loss_model.deliver then incr drops
    else begin
      if v.Loss_model.duplicate then incr dups;
      Alcotest.(check bool) "reorder inside window" true
        (v.Loss_model.reorder_extra_ms >= 0. && v.Loss_model.reorder_extra_ms < 40.)
    end
  done;
  let drop_rate = float_of_int !drops /. float_of_int n in
  let dup_rate = float_of_int !dups /. float_of_int (n - !drops) in
  Alcotest.(check bool) "drop rate ~0.3" true (abs_float (drop_rate -. 0.3) < 0.02);
  Alcotest.(check bool) "dup rate ~0.2" true (abs_float (dup_rate -. 0.2) < 0.02)

let test_loss_model_burst_chain () =
  (* With p_gb=1, p_bg=0, p_bad=1 the chain enters the bad state on the
     first message and drops everything after; with p_gb=0 the link never
     leaves the good state.  Chains are per-link. *)
  let st =
    Loss_model.state (Loss_model.make ~burst:{ Loss_model.p_gb = 1.; p_bg = 0.; p_bad = 1. } ())
  in
  let r = rng () in
  for _ = 1 to 10 do
    let v = Loss_model.sample st r ~src:0 ~dst:1 in
    Alcotest.(check bool) "bad state drops" false v.Loss_model.deliver
  done;
  let st2 =
    Loss_model.state (Loss_model.make ~burst:{ Loss_model.p_gb = 0.; p_bg = 0.; p_bad = 1. } ())
  in
  for _ = 1 to 10 do
    let v = Loss_model.sample st2 r ~src:0 ~dst:1 in
    Alcotest.(check bool) "good state delivers" true v.Loss_model.deliver
  done

let test_loss_model_validate () =
  Alcotest.check_raises "drop > 1 rejected"
    (Invalid_argument "loss (drop probability) must be a probability in [0, 1], got 1.5")
    (fun () -> Loss_model.validate (Loss_model.make ~drop:1.5 ()));
  Alcotest.check_raises "negative reorder rejected"
    (Invalid_argument "reorder window must be >= 0 ms, got -1") (fun () ->
      Loss_model.validate (Loss_model.make ~reorder_ms:(-1.) ()));
  let b = Loss_model.burst_of_string "0.01,0.2,0.8" in
  Alcotest.(check string) "burst roundtrip" "0.01,0.2,0.8" (Loss_model.burst_to_string b);
  Alcotest.check_raises "malformed burst"
    (Invalid_argument "burst_loss \"x\": expected \"p_gb,p_bg,p_bad\"") (fun () ->
      ignore (Loss_model.burst_of_string "x"))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "net"
    [
      ( "message",
        [
          Alcotest.test_case "make" `Quick test_message_make;
          Alcotest.test_case "arrival time" `Quick test_message_arrival;
          Alcotest.test_case "printer registry" `Quick test_message_printer_registry;
        ] );
      ( "delay_model",
        [
          Alcotest.test_case "constant" `Quick test_delay_constant;
          Alcotest.test_case "uniform bounds" `Quick test_delay_uniform_bounds;
          Alcotest.test_case "normal nonnegative" `Quick test_delay_normal_nonnegative;
          Alcotest.test_case "bounded clipping" `Quick test_delay_bounded;
          Alcotest.test_case "means" `Quick test_delay_mean;
          Alcotest.test_case "parse/describe" `Quick test_delay_describe_parse_roundtrip;
          Alcotest.test_case "lognormal" `Quick test_delay_lognormal;
          Alcotest.test_case "bounded truncated mean" `Quick test_delay_bounded_mean_truncated;
          qc prop_delay_cli_roundtrip;
          qc prop_delay_samples_nonnegative_finite;
        ] );
      ( "topology",
        [
          Alcotest.test_case "default" `Quick test_topology_default;
          Alcotest.test_case "two subnets" `Quick test_topology_split;
          Alcotest.test_case "pair scaling" `Quick test_topology_pair_scale;
          Alcotest.test_case "validation" `Quick test_topology_validation;
          Alcotest.test_case "with_subnets copies state" `Quick test_topology_with_subnets_no_aliasing;
          Alcotest.test_case "zones" `Quick test_topology_zones;
          Alcotest.test_case "zone specs" `Quick test_topology_zone_specs;
        ] );
      ( "network",
        [
          Alcotest.test_case "assigns sampled delay" `Quick test_network_assigns_delay;
          Alcotest.test_case "self messages free and uncounted" `Quick test_network_self_messages_free;
          Alcotest.test_case "counters" `Quick test_network_counters;
          Alcotest.test_case "per-pair scaling" `Quick test_network_pair_scaling;
          Alcotest.test_case "zone delay additive" `Quick test_network_zone_delay_additive;
          Alcotest.test_case "bandwidth serialization" `Quick test_network_bandwidth_serialization;
          Alcotest.test_case "bandwidth fifo queue" `Quick test_network_bandwidth_fifo_queue;
          Alcotest.test_case "bandwidth link drains" `Quick test_network_bandwidth_link_drains;
          Alcotest.test_case "mid-run override" `Quick test_network_override_delay;
        ] );
      ( "loss_model",
        [
          Alcotest.test_case "lossless consumes no rng" `Quick test_loss_model_none;
          Alcotest.test_case "certain drop" `Quick test_loss_model_certain_drop;
          Alcotest.test_case "empirical rates" `Quick test_loss_model_rates;
          Alcotest.test_case "burst chain states" `Quick test_loss_model_burst_chain;
          Alcotest.test_case "validation" `Quick test_loss_model_validate;
        ] );
    ]
