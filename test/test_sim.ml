(* Unit and property tests for the simulation substrate: virtual time, the
   deterministic priority queue, the event queue / clock, and the RNG. *)

open Bftsim_sim

let check_float = Alcotest.(check (float 1e-9))

(* --- Time --- *)

let test_time_construction () =
  check_float "zero is 0 ms" 0. (Time.to_ms Time.zero);
  check_float "of_ms round-trips" 1234.5 (Time.to_ms (Time.of_ms 1234.5));
  check_float "of_sec scales" 2500. (Time.to_ms (Time.of_sec 2.5));
  check_float "to_sec scales" 2.5 (Time.to_sec (Time.of_ms 2500.))

let test_time_invalid () =
  Alcotest.check_raises "negative rejected" (Invalid_argument "Time.of_ms: -1.000000") (fun () ->
      ignore (Time.of_ms (-1.)));
  (match Time.of_ms Float.nan with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN accepted");
  match Time.of_ms Float.infinity with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "infinity accepted"

let test_time_arithmetic () =
  let t = Time.of_ms 100. in
  check_float "add_ms" 150. (Time.to_ms (Time.add_ms t 50.));
  check_float "add_ms negative clamps at zero" 0. (Time.to_ms (Time.add_ms t (-200.)));
  check_float "diff_ms" 60. (Time.diff_ms (Time.of_ms 100.) (Time.of_ms 40.));
  check_float "diff_ms negative" (-60.) (Time.diff_ms (Time.of_ms 40.) (Time.of_ms 100.))

let test_time_order () =
  let a = Time.of_ms 1. and b = Time.of_ms 2. in
  Alcotest.(check bool) "is_before" true (Time.is_before a b);
  Alcotest.(check bool) "not before self" false (Time.is_before a a);
  Alcotest.(check int) "compare" (-1) (Time.compare a b);
  Alcotest.(check bool) "equal" true (Time.equal a (Time.of_ms 1.));
  check_float "min" 1. (Time.to_ms (Time.min a b));
  check_float "max" 2. (Time.to_ms (Time.max a b))

let test_time_pp () =
  Alcotest.(check string) "renders seconds" "12.345s" (Time.to_string (Time.of_ms 12345.))

(* --- Pqueue --- *)

let test_pqueue_basic () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "fresh queue empty" true (Pqueue.is_empty q);
  Pqueue.push q ~priority:3. "c";
  Pqueue.push q ~priority:1. "a";
  Pqueue.push q ~priority:2. "b";
  Alcotest.(check int) "length" 3 (Pqueue.length q);
  Alcotest.(check (option (pair (float 0.) string))) "peek is min" (Some (1., "a")) (Pqueue.peek q);
  Alcotest.(check (option (pair (float 0.) string))) "pop min" (Some (1., "a")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.) string))) "then next" (Some (2., "b")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.) string))) "then last" (Some (3., "c")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.) string))) "then empty" None (Pqueue.pop q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~priority:5. v) [ "first"; "second"; "third" ];
  Pqueue.push q ~priority:1. "early";
  let order = List.init 4 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list string))
    "ties pop in insertion order"
    [ "early"; "first"; "second"; "third" ]
    order

let test_pqueue_nan_rejected () =
  let q = Pqueue.create () in
  match Pqueue.push q ~priority:Float.nan "x" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "NaN priority accepted"

let test_pqueue_clear () =
  let q = Pqueue.create () in
  for i = 1 to 10 do
    Pqueue.push q ~priority:(float_of_int i) i
  done;
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q);
  Pqueue.push q ~priority:1. 42;
  Alcotest.(check (option (pair (float 0.) int))) "usable after clear" (Some (1., 42)) (Pqueue.pop q)

let test_pqueue_to_sorted_list () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q ~priority:p (int_of_float p)) [ 5.; 1.; 3.; 2.; 4. ];
  let snapshot = Pqueue.to_sorted_list q in
  Alcotest.(check (list int)) "sorted snapshot" [ 1; 2; 3; 4; 5 ] (List.map snd snapshot);
  Alcotest.(check int) "snapshot is non-destructive" 5 (Pqueue.length q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing priority order" ~count:300
    QCheck.(list (float_bound_exclusive 1e6))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q ~priority:p i) priorities;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain neg_infinity)

let prop_pqueue_preserves_all =
  QCheck.Test.make ~name:"pqueue returns exactly the pushed elements" ~count:300
    QCheck.(list small_nat)
    (fun xs ->
      let q = Pqueue.create () in
      List.iter (fun x -> Pqueue.push q ~priority:(float_of_int x) x) xs;
      let rec drain acc = match Pqueue.pop q with None -> acc | Some (_, v) -> drain (v :: acc) in
      List.sort compare (drain []) = List.sort compare xs)

(* Determinism under ties: replayability rests on equal-priority entries
   popping in insertion order, i.e. the heap realizes a stable sort.  Draw
   priorities from a tiny set so collisions are the common case. *)
let prop_pqueue_ties_fifo =
  QCheck.Test.make ~name:"pqueue equal priorities pop in insertion order" ~count:300
    QCheck.(list (int_range 0 3))
    (fun buckets ->
      let q = Pqueue.create () in
      List.iteri (fun i b -> Pqueue.push q ~priority:(float_of_int b) (i, b)) buckets;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
      in
      let expected =
        List.stable_sort (fun (_, a) (_, b) -> compare a b) (List.mapi (fun i b -> (i, b)) buckets)
      in
      drain [] = expected)

let prop_event_queue_tie_determinism =
  QCheck.Test.make ~name:"identical schedules drain identically, ties included" ~count:200
    QCheck.(list (pair (int_range 0 5) small_nat))
    (fun events ->
      let drain () =
        let q = Event_queue.create () in
        List.iter
          (fun (t, v) -> Event_queue.schedule q ~at:(Time.of_ms (float_of_int t)) v)
          events;
        let rec go acc =
          match Event_queue.next q with
          | None -> List.rev acc
          | Some (at, v) -> go ((Time.to_ms at, v) :: acc)
        in
        go []
      in
      drain () = drain ())

(* --- Event_queue --- *)

let test_event_queue_clock_advances () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~at:(Time.of_ms 10.) "a";
  Event_queue.schedule q ~at:(Time.of_ms 5.) "b";
  let t1, v1 = Option.get (Event_queue.next q) in
  check_float "clock at first event" 5. (Time.to_ms t1);
  Alcotest.(check string) "first event" "b" v1;
  check_float "now tracks pop" 5. (Time.to_ms (Event_queue.now q));
  let t2, _ = Option.get (Event_queue.next q) in
  check_float "clock advances" 10. (Time.to_ms t2)

let test_event_queue_rejects_past () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~at:(Time.of_ms 10.) "a";
  ignore (Event_queue.next q);
  match Event_queue.schedule q ~at:(Time.of_ms 5.) "too late" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "scheduling into the past accepted"

let test_event_queue_schedule_after () =
  let q = Event_queue.create () in
  Event_queue.schedule_after q ~delay_ms:100. "x";
  Event_queue.schedule_after q ~delay_ms:(-5.) "clamped";
  let t1, v1 = Option.get (Event_queue.next q) in
  check_float "negative delay clamps to now" 0. (Time.to_ms t1);
  Alcotest.(check string) "clamped event first" "clamped" v1;
  let t2, _ = Option.get (Event_queue.next q) in
  check_float "relative delay" 100. (Time.to_ms t2)

let test_event_queue_counters () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~at:(Time.of_ms 1.) ();
  Event_queue.schedule q ~at:(Time.of_ms 2.) ();
  Alcotest.(check int) "pending" 2 (Event_queue.pending q);
  Alcotest.(check int) "popped initially 0" 0 (Event_queue.popped q);
  Alcotest.(check (option (float 0.)))
    "peek_time" (Some 1.)
    (Option.map Time.to_ms (Event_queue.peek_time q));
  ignore (Event_queue.next q);
  Alcotest.(check int) "pending decrements" 1 (Event_queue.pending q);
  Alcotest.(check int) "popped increments" 1 (Event_queue.popped q)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_copy_and_split () =
  let a = Rng.create 7 in
  let c = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 c);
  let a = Rng.create 7 in
  let child = Rng.split a in
  let x = Rng.bits64 child and y = Rng.bits64 a in
  Alcotest.(check bool) "split child independent of parent" true (x <> y)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of bounds: %d" v
  done;
  (match Rng.int rng 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound 0 accepted");
  for _ = 1 to 200 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    if v < -5 || v > 5 then Alcotest.failf "int_in_range out of bounds: %d" v
  done

let test_rng_float_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.failf "float out of bounds: %f" v
  done;
  for _ = 1 to 1000 do
    let v = Rng.uniform rng ~lo:10. ~hi:20. in
    if v < 10. || v >= 20. then Alcotest.failf "uniform out of bounds: %f" v
  done

let mean_std samples =
  let n = float_of_int (List.length samples) in
  let mean = List.fold_left ( +. ) 0. samples /. n in
  let var = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. samples /. n in
  (mean, sqrt var)

let test_rng_normal_moments () =
  let rng = Rng.create 5 in
  let samples = List.init 20_000 (fun _ -> Rng.normal rng ~mu:100. ~sigma:15.) in
  let mean, std = mean_std samples in
  Alcotest.(check bool) "mean within 1%" true (Float.abs (mean -. 100.) < 1.);
  Alcotest.(check bool) "std within 5%" true (Float.abs (std -. 15.) < 0.75)

let test_rng_truncated_normal () =
  let rng = Rng.create 6 in
  for _ = 1 to 5000 do
    let v = Rng.truncated_normal rng ~mu:10. ~sigma:50. ~lo:0. in
    if v < 0. then Alcotest.failf "truncated normal below bound: %f" v
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 7 in
  let samples = List.init 20_000 (fun _ -> Rng.exponential rng ~mean:250.) in
  let mean, _ = mean_std samples in
  Alcotest.(check bool) "exponential mean within 3%" true (Float.abs (mean -. 250.) < 7.5)

let test_rng_poisson_mean () =
  let rng = Rng.create 8 in
  let samples = List.init 20_000 (fun _ -> float_of_int (Rng.poisson rng ~mean:12.)) in
  let mean, _ = mean_std samples in
  Alcotest.(check bool) "poisson mean within 2%" true (Float.abs (mean -. 12.) < 0.24)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 (fun i -> i)) sorted;
  Alcotest.(check bool) "shuffle moved something" true (arr <> Array.init 50 (fun i -> i))

let test_rng_pick () =
  let rng = Rng.create 10 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    let v = Rng.pick rng arr in
    if not (Array.mem v arr) then Alcotest.failf "pick returned foreign element %s" v
  done;
  match Rng.pick rng [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pick accepted"

let prop_rng_int_uniformish =
  QCheck.Test.make ~name:"rng int covers the full range" ~count:50
    QCheck.(int_range 2 40)
    (fun bound ->
      let rng = Rng.create bound in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Rng.int rng bound) <- true
      done;
      Array.for_all (fun b -> b) seen)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "construction" `Quick test_time_construction;
          Alcotest.test_case "invalid inputs" `Quick test_time_invalid;
          Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
          Alcotest.test_case "ordering" `Quick test_time_order;
          Alcotest.test_case "printing" `Quick test_time_pp;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "basic order" `Quick test_pqueue_basic;
          Alcotest.test_case "fifo tie-breaking" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "nan rejected" `Quick test_pqueue_nan_rejected;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          Alcotest.test_case "sorted snapshot" `Quick test_pqueue_to_sorted_list;
          qc prop_pqueue_sorted;
          qc prop_pqueue_preserves_all;
          qc prop_pqueue_ties_fifo;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "clock advances with pops" `Quick test_event_queue_clock_advances;
          Alcotest.test_case "past scheduling rejected" `Quick test_event_queue_rejects_past;
          Alcotest.test_case "relative scheduling" `Quick test_event_queue_schedule_after;
          Alcotest.test_case "counters" `Quick test_event_queue_counters;
          qc prop_event_queue_tie_determinism;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seeds_differ;
          Alcotest.test_case "copy and split" `Quick test_rng_copy_and_split;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "normal moments" `Slow test_rng_normal_moments;
          Alcotest.test_case "truncated normal bound" `Quick test_rng_truncated_normal;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
          Alcotest.test_case "poisson mean" `Slow test_rng_poisson_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          qc prop_rng_int_uniformish;
        ] );
    ]
