(* Supervision, journaling and resume (DESIGN.md §3.13).

   Covers the supervisor's semantics (crash isolation, cooperative
   deadline, deterministic retry schedule, quarantine), the journal's
   round-trip and torn-line tolerance, and the campaign-level guarantees:
   run_many over a journal resumes to the exact summary of an
   uninterrupted run, and the fault-injection knob turns into structured
   failures rather than lost batches. *)

module Core = Bftsim_core
module Net = Bftsim_net
module Obs = Bftsim_obs

(* Installed before anything can force Controller's lazy parse: every run
   seeded 424242 crashes at startup, 424243 hangs until cancelled. *)
let crash_seed = 424242
let hang_seed = 424243

let () =
  Unix.putenv "BFTSIM_FAULT_INJECT"
    (Printf.sprintf "crash@%d;hang@%d" crash_seed hang_seed)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let fast_config ?(seed = 1) () =
  Core.Config.make "pbft" ~n:4 ~seed ~delay:(Net.Delay_model.Constant 50.)

(* --- supervisor semantics --- *)

let test_supervise_ok () =
  let t = Core.Supervisor.create () in
  (match Core.Supervisor.supervise t ~key:"k" (fun ~cancel ->
       Alcotest.(check bool) "cancel starts false" false (cancel ());
       41 + 1)
   with
  | Core.Supervisor.Ok v -> Alcotest.(check int) "value" 42 v
  | _ -> Alcotest.fail "expected Ok");
  let s = Core.Supervisor.stats t in
  Alcotest.(check int) "runs_ok" 1 s.Core.Supervisor.runs_ok;
  Alcotest.(check int) "runs_crashed" 0 s.Core.Supervisor.runs_crashed

let test_supervise_crash_isolated () =
  let t = Core.Supervisor.create () in
  (match Core.Supervisor.supervise t ~key:"boom" (fun ~cancel:_ -> failwith "kaboom") with
  | Core.Supervisor.Crashed { exn; backtrace = _; retries } ->
    Alcotest.(check bool) "exception text" true (contains ~affix:"kaboom" exn);
    Alcotest.(check int) "default policy retries once" 1 retries
  | _ -> Alcotest.fail "expected Crashed");
  let s = Core.Supervisor.stats t in
  Alcotest.(check int) "both attempts counted" 2 s.Core.Supervisor.runs_crashed;
  Alcotest.(check int) "one retry" 1 s.Core.Supervisor.runs_retried;
  (* The supervisor is intact: later tasks still run. *)
  match Core.Supervisor.supervise t ~key:"fine" (fun ~cancel:_ -> "ok") with
  | Core.Supervisor.Ok v -> Alcotest.(check string) "later task unaffected" "ok" v
  | _ -> Alcotest.fail "expected Ok after a crash"

let test_supervise_deadline () =
  let policy =
    { Core.Supervisor.default_policy with deadline_ms = Some 30.; max_retries = 0 }
  in
  let t = Core.Supervisor.create ~policy () in
  match
    Core.Supervisor.supervise t ~key:"hang" (fun ~cancel ->
        while not (cancel ()) do
          Unix.sleepf 0.002
        done;
        raise Core.Supervisor.Cancelled)
  with
  | Core.Supervisor.Deadline_exceeded { wall_ms; retries } ->
    Alcotest.(check bool) "saw the deadline" true (wall_ms >= 30.);
    Alcotest.(check int) "no retries configured" 0 retries;
    let s = Core.Supervisor.stats t in
    Alcotest.(check int) "counted as timed out" 1 s.Core.Supervisor.runs_timed_out;
    Alcotest.(check int) "not as crashed" 0 s.Core.Supervisor.runs_crashed
  | _ -> Alcotest.fail "expected Deadline_exceeded"

let test_deadline_classification_survives_wrapping () =
  (* A task may turn the cancellation into its own exception; the latch,
     not the exception identity, must drive the classification. *)
  let policy =
    { Core.Supervisor.default_policy with deadline_ms = Some 20.; max_retries = 0 }
  in
  let t = Core.Supervisor.create ~policy () in
  match
    Core.Supervisor.supervise t ~key:"wrapped" (fun ~cancel ->
        while not (cancel ()) do
          Unix.sleepf 0.002
        done;
        failwith "wrapped the cancellation")
  with
  | Core.Supervisor.Deadline_exceeded _ -> ()
  | _ -> Alcotest.fail "expected Deadline_exceeded despite the foreign exception"

let test_retry_delay_deterministic () =
  let policy = { Core.Supervisor.default_policy with retry_base_ms = 100.; seed = 7 } in
  let d1 = Core.Supervisor.retry_delay_ms policy ~key:"rep3" ~attempt:1 in
  let d1' = Core.Supervisor.retry_delay_ms policy ~key:"rep3" ~attempt:1 in
  Alcotest.(check (float 0.)) "pure function of inputs" d1 d1';
  Alcotest.(check bool) "attempt 1 jitter within [0.5b, 1.5b)" true (d1 >= 50. && d1 < 150.);
  let d2 = Core.Supervisor.retry_delay_ms policy ~key:"rep3" ~attempt:2 in
  Alcotest.(check bool) "attempt 2 doubles the base" true (d2 >= 100. && d2 < 300.);
  let other = Core.Supervisor.retry_delay_ms policy ~key:"rep4" ~attempt:1 in
  Alcotest.(check bool) "keys decorrelate" true (other <> d1);
  let zero = Core.Supervisor.retry_delay_ms Core.Supervisor.default_policy ~key:"k" ~attempt:1 in
  Alcotest.(check (float 0.)) "base 0 means no sleep" 0. zero

let test_retry_then_succeed () =
  let t = Core.Supervisor.create () in
  let attempts = ref 0 in
  (match
     Core.Supervisor.supervise t ~key:"flaky" (fun ~cancel:_ ->
         incr attempts;
         if !attempts = 1 then failwith "transient" else "recovered")
   with
  | Core.Supervisor.Ok v -> Alcotest.(check string) "second attempt wins" "recovered" v
  | _ -> Alcotest.fail "expected Ok after retry");
  let s = Core.Supervisor.stats t in
  Alcotest.(check int) "runs_retried" 1 s.Core.Supervisor.runs_retried;
  Alcotest.(check int) "runs_ok" 1 s.Core.Supervisor.runs_ok;
  Alcotest.(check int) "runs_crashed counts the failed attempt" 1 s.Core.Supervisor.runs_crashed

let test_quarantine_short_circuits () =
  let policy = { Core.Supervisor.default_policy with max_retries = 0; quarantine_after = 2 } in
  let t = Core.Supervisor.create ~policy () in
  let calls = ref 0 in
  let crash () =
    Core.Supervisor.supervise t ~key:"offender" (fun ~cancel:_ ->
        incr calls;
        failwith "always")
  in
  (match crash () with Core.Supervisor.Crashed _ -> () | _ -> Alcotest.fail "crash 1");
  (match crash () with Core.Supervisor.Crashed _ -> () | _ -> Alcotest.fail "crash 2");
  (* Threshold reached: the key is quarantined, the task no longer runs. *)
  (match crash () with
  | Core.Supervisor.Quarantined { failures } -> Alcotest.(check int) "failure count" 2 failures
  | _ -> Alcotest.fail "expected Quarantined");
  Alcotest.(check int) "task not re-executed once quarantined" 2 !calls;
  Alcotest.(check (list (pair string int))) "quarantine list" [ ("offender", 2) ]
    (Core.Supervisor.quarantined t)

let test_export_metrics () =
  let t = Core.Supervisor.create () in
  ignore (Core.Supervisor.supervise t ~key:"a" (fun ~cancel:_ -> ()));
  ignore (Core.Supervisor.supervise t ~key:"b" (fun ~cancel:_ -> failwith "x"));
  let reg = Obs.Metrics.create () in
  Core.Supervisor.export_metrics t reg;
  let find name =
    match List.assoc_opt name (Obs.Metrics.snapshot reg) with
    | Some (Obs.Metrics.Counter_v c) -> c
    | _ -> Alcotest.failf "counter %s missing" name
  in
  Alcotest.(check int) "runs_ok exported" 1 (find "supervisor.runs_ok");
  Alcotest.(check int) "runs_crashed exported" 2 (find "supervisor.runs_crashed");
  Alcotest.(check int) "runs_timed_out exported (present at 0)" 0
    (find "supervisor.runs_timed_out")

(* --- Parallel.try_map --- *)

let test_try_map_isolates () =
  let results =
    Core.Parallel.try_map ~jobs:4
      (fun x -> if x mod 3 = 0 then failwith (string_of_int x) else x * 10)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let oks = List.filter_map (function Ok v -> Some v | Error _ -> None) results in
  Alcotest.(check (list int)) "survivors in order" [ 10; 20; 40; 50 ] oks;
  Alcotest.(check int) "failures captured per element" 2
    (List.length (List.filter Result.is_error results));
  match List.nth results 3 with
  | Error (Failure msg, _) -> Alcotest.(check string) "error in its slot" "3" msg
  | _ -> Alcotest.fail "expected Error at index 3"

(* --- journal --- *)

let sample_digest rep =
  {
    Core.Journal.rep;
    seed = 100 + rep;
    outcome = "reached-target";
    last_progress_ms = None;
    time_ms = 1234.5678901234;
    latency_ms = 0.1 +. float_of_int rep;
    messages = 48.;
    messages_sent = 480;
    bytes_sent = 55_000;
    messages_dropped = 3;
    events = 2000;
    max_view = 1;
    safety_ok = true;
    violations = 0;
    metrics = None;
  }

let test_journal_round_trip () =
  let path = Filename.temp_file "bftsim-journal" ".jsonl" in
  let j = Core.Journal.create ~fingerprint:"fp-1" path in
  Core.Journal.append j (Core.Journal.Run { cell = "cell-a"; digest = sample_digest 0 });
  Core.Journal.append j (Core.Journal.Check { cell = "cell-b"; index = 4 });
  Core.Journal.append j
    (Core.Journal.Failure
       {
         cell = "cell-a";
         rep = 1;
         attempt = 2;
         wall_ms = 17.25;
         kind = "crash";
         detail = "Failure(\"x\")";
         backtrace = "Raised at ...";
       });
  Core.Journal.close j;
  (match Core.Journal.load path with
  | Error e -> Alcotest.fail e
  | Ok (fp, events) ->
    Alcotest.(check string) "fingerprint" "fp-1" fp;
    Alcotest.(check int) "all events back" 3 (List.length events);
    (match Core.Journal.runs events ~cell:"cell-a" with
    | [ (0, d) ] ->
      Alcotest.(check (float 0.)) "float field exact" 1234.5678901234 d.Core.Journal.time_ms;
      Alcotest.(check string) "outcome" "reached-target" d.Core.Journal.outcome
    | _ -> Alcotest.fail "expected exactly rep 0 in cell-a");
    Alcotest.(check (list int)) "checks query" [ 4 ] (Core.Journal.checks events ~cell:"cell-b"));
  Sys.remove path

let test_journal_torn_final_line () =
  let path = Filename.temp_file "bftsim-journal" ".jsonl" in
  let j = Core.Journal.create ~fingerprint:"fp-torn" path in
  Core.Journal.append j (Core.Journal.Run { cell = "c"; digest = sample_digest 0 });
  Core.Journal.close j;
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"run\":{\"cell\":\"c\",\"dig";
  close_out oc;
  (match Core.Journal.load path with
  | Error e -> Alcotest.failf "torn line should be tolerated: %s" e
  | Ok (_, events) -> Alcotest.(check int) "torn record dropped" 1 (List.length events));
  (* Resume over the torn journal appends after the torn bytes; the next
     load must still parse every whole line. *)
  (match Core.Journal.resume ~fingerprint:"fp-torn" path with
  | Error e -> Alcotest.fail e
  | Ok (j, _) ->
    Core.Journal.append j (Core.Journal.Run { cell = "c"; digest = sample_digest 1 });
    Core.Journal.close j);
  (match Core.Journal.load path with
  | Error e -> Alcotest.fail e
  | Ok (_, events) ->
    Alcotest.(check int) "records around the tear survive" 2
      (List.length (Core.Journal.runs events ~cell:"c")));
  Sys.remove path

let test_journal_torn_note_mid_escape () =
  (* A Note record torn inside a string escape — the write died between the
     backslash and its continuation ("…\u00" then EOF) — must be dropped
     like any other torn tail: the parser cannot be left waiting for the
     escape to complete, and the whole records around it must survive. *)
  let path = Filename.temp_file "bftsim-journal" ".jsonl" in
  let j = Core.Journal.create ~fingerprint:"fp-note" path in
  Core.Journal.append j
    (Core.Journal.Note
       { cell = "c"; body = Bftsim_obs.Json.(Assoc [ ("knee", Float 1600.) ]) });
  Core.Journal.close j;
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"note\":{\"cell\":\"c\",\"body\":\"torn \\u00";
  close_out oc;
  (match Core.Journal.load path with
  | Error e -> Alcotest.failf "torn note should be tolerated: %s" e
  | Ok (_, events) ->
    Alcotest.(check int) "only the whole note survives" 1
      (List.length (Core.Journal.notes events ~cell:"c")));
  (* Resume must append cleanly after the torn escape bytes. *)
  (match Core.Journal.resume ~fingerprint:"fp-note" path with
  | Error e -> Alcotest.fail e
  | Ok (j, _) ->
    Core.Journal.append j
      (Core.Journal.Note { cell = "c"; body = Bftsim_obs.Json.(String "after tear") });
    Core.Journal.close j);
  (match Core.Journal.load path with
  | Error e -> Alcotest.fail e
  | Ok (_, events) ->
    Alcotest.(check int) "notes around the tear survive" 2
      (List.length (Core.Journal.notes events ~cell:"c")));
  Sys.remove path

let test_journal_fingerprint_mismatch () =
  let path = Filename.temp_file "bftsim-journal" ".jsonl" in
  Core.Journal.close (Core.Journal.create ~fingerprint:"fp-a" path);
  (match Core.Journal.resume ~fingerprint:"fp-b" path with
  | Error e -> Alcotest.(check bool) "mentions the mismatch" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "must refuse a foreign campaign");
  Sys.remove path

let test_metrics_json_round_trip () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.incr ~by:7 reg "counter.a";
  (* An integral gauge: the tagged encoding must not re-parse it as a
     counter (merge semantics differ: add vs max). *)
  Obs.Metrics.set_gauge reg "gauge.integral" 16.;
  Obs.Metrics.set_gauge reg "gauge.pi" 3.14159265358979;
  Obs.Metrics.observe reg "hist.lat" 12.;
  Obs.Metrics.observe reg "hist.lat" 250.;
  match Obs.Metrics.of_json (Obs.Metrics.to_json reg) with
  | Error e -> Alcotest.fail e
  | Ok reg' ->
    Alcotest.(check bool) "snapshot-identical after round trip" true (Obs.Metrics.equal reg reg');
    (* And merge still treats the round-tripped gauge as a gauge. *)
    let merged = Obs.Metrics.merge [ reg'; reg' ] in
    (match List.assoc_opt "gauge.integral" (Obs.Metrics.snapshot merged) with
    | Some (Obs.Metrics.Gauge_v g) -> Alcotest.(check (float 0.)) "gauges max, not add" 16. g
    | _ -> Alcotest.fail "gauge.integral lost its kind")

(* --- guards (satellite: clean Invalid_argument, no NaN summaries) --- *)

let test_stats_empty_raises () =
  Alcotest.check_raises "Stats.of_list []" (Invalid_argument "Stats.of_list: empty")
    (fun () -> ignore (Core.Stats.of_list []))

let test_run_many_rejects_nonpositive_reps () =
  Alcotest.check_raises "reps = 0" (Invalid_argument "Runner.run_many: reps <= 0") (fun () ->
      ignore (Core.Runner.run_many ~reps:0 (fast_config ())));
  Alcotest.check_raises "reps = -3" (Invalid_argument "Runner.run_many: reps <= 0") (fun () ->
      ignore (Core.Runner.run_many ~reps:(-3) (fast_config ())))

let test_run_many_all_failed_raises () =
  (* Every replication crashes (injected): aggregation must refuse loudly
     instead of producing NaN statistics. *)
  let config = fast_config ~seed:crash_seed () in
  match Core.Runner.run_many ~reps:1 ~jobs:1 config with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "message names the failure" true
      (contains ~affix:"every replication failed" msg)
  | _ -> Alcotest.fail "expected Invalid_argument when no replication survives"

(* --- config supervision plumbing --- *)

let test_config_supervision_keys () =
  let kvs =
    [ ("protocol", "pbft"); ("deadline_ms", "1500"); ("retries", "4"); ("quarantine", "7") ]
  in
  (match Core.Config.of_keyvalues kvs with
  | Error e -> Alcotest.fail e
  | Ok c ->
    Alcotest.(check (option (float 0.))) "deadline parsed" (Some 1500.)
      c.Core.Config.supervision.Core.Config.deadline_ms;
    Alcotest.(check int) "retries parsed" 4 c.Core.Config.supervision.Core.Config.max_retries;
    Alcotest.(check int) "quarantine parsed" 7
      c.Core.Config.supervision.Core.Config.quarantine_after;
    let kvs' = Core.Config.to_keyvalues c in
    (match Core.Config.of_keyvalues kvs' with
    | Ok c' -> Alcotest.(check bool) "round-trips through keyvalues" true (c = c')
    | Error e -> Alcotest.fail e));
  (* Defaults are omitted so pre-supervision config files stay stable. *)
  let plain = fast_config () in
  Alcotest.(check bool) "defaults emit no supervision keys" true
    (List.for_all
       (fun (k, _) -> not (List.mem k [ "deadline_ms"; "retries"; "quarantine"; "retry_base_ms" ]))
       (Core.Config.to_keyvalues plain));
  match Core.Config.of_keyvalues [ ("protocol", "pbft"); ("deadline_ms", "-5") ] with
  | Error _ | (exception Invalid_argument _) -> ()
  | Ok _ -> Alcotest.fail "negative deadline must be rejected"

(* --- supervised campaigns end to end --- *)

let test_run_many_isolates_injected_faults () =
  (* reps 0..5 over seeds 424240..424245: rep 2 crashes, rep 3 hangs.  The
     other four replications must complete and both failures must be
     reported as structured entries. *)
  let config =
    { (fast_config ~seed:(crash_seed - 2) ()) with
      Core.Config.supervision =
        { Core.Config.default_supervision with Core.Config.deadline_ms = Some 200. }
    }
  in
  let s = Core.Runner.run_many ~reps:6 ~jobs:3 config in
  Alcotest.(check int) "4 of 6 completed" 4 s.Core.Runner.completed;
  Alcotest.(check int) "2 failures" 2 (List.length s.Core.Runner.failures);
  let kind rep =
    match List.find_opt (fun f -> f.Core.Runner.rep = rep) s.Core.Runner.failures with
    | Some f -> f.Core.Runner.kind
    | None -> "missing"
  in
  Alcotest.(check string) "crashing rep classified" "crash" (kind 2);
  Alcotest.(check string) "hanging rep classified" "deadline" (kind 3);
  Alcotest.(check int) "supervisor counted the crash attempts" 2
    s.Core.Runner.supervision.Core.Supervisor.runs_crashed;
  Alcotest.(check int) "supervisor counted the deadline attempts" 2
    s.Core.Runner.supervision.Core.Supervisor.runs_timed_out

let summaries_equal (a : Core.Runner.summary) (b : Core.Runner.summary) =
  let render s = Format.asprintf "%a" Core.Runner.pp_summary s in
  render a = render b && a.Core.Runner.digests = b.Core.Runner.digests
  && a.Core.Runner.completed = b.Core.Runner.completed
  && (match (a.Core.Runner.metrics, b.Core.Runner.metrics) with
     | None, None -> true
     | Some x, Some y -> Obs.Metrics.equal x y
     | _ -> false)

let test_run_many_resume_equivalence () =
  let config =
    {
      (fast_config ~seed:11 ()) with
      Core.Config.telemetry =
        { Core.Config.default_telemetry with Core.Config.metrics = true };
    }
  in
  let reference = Core.Runner.run_many ~reps:6 ~jobs:2 config in
  (* Simulate an interrupted campaign: journal only reps 0, 2 and 5, then
     resume from that journal at a different pool size. *)
  let path = Filename.temp_file "bftsim-resume" ".jsonl" in
  let fp = Core.Journal.fingerprint ~mode:"test" ~reps:6 [ config ] in
  let j = Core.Journal.create ~fingerprint:fp path in
  let cell = Core.Journal.cell_of_config config in
  List.iter
    (fun rep ->
      Core.Journal.append j
        (Core.Journal.Run
           { cell; digest = List.nth reference.Core.Runner.digests rep }))
    [ 0; 2; 5 ];
  Core.Journal.close j;
  (match Core.Journal.resume ~fingerprint:fp path with
  | Error e -> Alcotest.fail e
  | Ok (j, events) ->
    let resumed = Core.Runner.run_many ~reps:6 ~jobs:4 ~journal:j ~resumed:events config in
    Core.Journal.close j;
    Alcotest.(check int) "3 reps skipped" 3 resumed.Core.Runner.resumed;
    Alcotest.(check int) "3 reps run live" 3 (List.length resumed.Core.Runner.results);
    Alcotest.(check bool) "summary identical to uninterrupted run" true
      (summaries_equal reference resumed);
    (* The finished journal now covers all 6 reps: a second resume runs
       nothing and still reproduces the summary. *)
    match Core.Journal.resume ~fingerprint:fp path with
    | Error e -> Alcotest.fail e
    | Ok (j2, events2) ->
      let replayed = Core.Runner.run_many ~reps:6 ~jobs:1 ~journal:j2 ~resumed:events2 config in
      Core.Journal.close j2;
      Alcotest.(check int) "nothing re-run" 0 (List.length replayed.Core.Runner.results);
      Alcotest.(check bool) "replayed summary identical" true
        (summaries_equal reference replayed));
  Sys.remove path

(* --- Stalled watchdog across protocols (satellite) --- *)

let test_watchdog_stalls protocol () =
  let config = Core.Experiments.chaos_overload_config ~protocol ~seed:3 in
  let r = Core.Controller.run config in
  match r.Core.Controller.outcome with
  | Core.Controller.Stalled _ ->
    Alcotest.(check bool) "partial metrics survive" true (r.Core.Controller.events_processed > 0)
  | o ->
    Alcotest.failf "%s: expected stalled, got %s" protocol
      (Format.asprintf "%a" Core.Controller.pp_outcome o)

let () =
  Alcotest.run "supervisor"
    [
      ( "supervise",
        [
          Alcotest.test_case "ok outcome" `Quick test_supervise_ok;
          Alcotest.test_case "crash isolated with backtrace" `Quick test_supervise_crash_isolated;
          Alcotest.test_case "cooperative deadline" `Quick test_supervise_deadline;
          Alcotest.test_case "latch beats exception identity" `Quick
            test_deadline_classification_survives_wrapping;
          Alcotest.test_case "retry schedule deterministic" `Quick test_retry_delay_deterministic;
          Alcotest.test_case "retry then succeed" `Quick test_retry_then_succeed;
          Alcotest.test_case "quarantine short-circuits" `Quick test_quarantine_short_circuits;
          Alcotest.test_case "counters exported to registry" `Quick test_export_metrics;
        ] );
      ( "try_map",
        [ Alcotest.test_case "failures stay in their slot" `Quick test_try_map_isolates ] );
      ( "journal",
        [
          Alcotest.test_case "round trip" `Quick test_journal_round_trip;
          Alcotest.test_case "torn final line tolerated" `Quick test_journal_torn_final_line;
          Alcotest.test_case "torn note mid-escape tolerated" `Quick
            test_journal_torn_note_mid_escape;
          Alcotest.test_case "fingerprint mismatch refused" `Quick
            test_journal_fingerprint_mismatch;
          Alcotest.test_case "metrics registry JSON round trip" `Quick
            test_metrics_json_round_trip;
        ] );
      ( "guards",
        [
          Alcotest.test_case "empty stats raise" `Quick test_stats_empty_raises;
          Alcotest.test_case "non-positive reps rejected" `Quick
            test_run_many_rejects_nonpositive_reps;
          Alcotest.test_case "all-failed campaign raises" `Quick test_run_many_all_failed_raises;
          Alcotest.test_case "config supervision keys" `Quick test_config_supervision_keys;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "injected faults isolated" `Quick
            test_run_many_isolates_injected_faults;
          Alcotest.test_case "resume reproduces the summary" `Quick
            test_run_many_resume_equivalence;
        ] );
      ( "watchdog",
        List.map
          (fun p -> Alcotest.test_case (p ^ " stalls when overloaded") `Quick (test_watchdog_stalls p))
          Core.Experiments.partially_synchronous );
    ]
