(* Property tests for the flat-lane Pqueue and the Event_queue built on it:
   the heap must pop in exactly the order a sorted-by-(priority, seq)
   reference model predicts, whatever interleaving of pushes and pops built
   it — this is the determinism contract the whole simulator rests on
   (§III-A2, DESIGN.md §3.15). *)

open Bftsim_sim

(* --- reference model: a sorted association list keyed (priority, seq) --- *)

module Model = struct
  type 'a t = { mutable entries : (float * int * 'a) list; mutable next_seq : int }

  let create () = { entries = []; next_seq = 0 }

  let push m ~priority v =
    let seq = m.next_seq in
    m.next_seq <- seq + 1;
    m.entries <-
      List.merge
        (fun (p1, s1, _) (p2, s2, _) -> if p1 <> p2 then compare p1 p2 else compare s1 s2)
        m.entries [ (priority, seq, v) ]

  let pop m =
    match m.entries with
    | [] -> None
    | (p, _, v) :: rest ->
      m.entries <- rest;
      Some (p, v)
end

(* --- scripted interleavings --- *)

(* A script is a list of operations; priorities are drawn from a small
   range so ties (the interesting case) are frequent. *)
type op = Push of float | Pop

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun p -> Push (float_of_int p)) (int_range 0 9));
        (2, return Pop);
      ])

let script_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map (function Push p -> Printf.sprintf "push %g" p | Pop -> "pop") ops))
    QCheck.Gen.(list_size (int_range 0 200) op_gen)

let run_script ops =
  let q = Pqueue.create () in
  let m = Model.create () in
  let counter = ref 0 in
  List.for_all
    (fun op ->
      match op with
      | Push p ->
        incr counter;
        Pqueue.push q ~priority:p !counter;
        Model.push m ~priority:p !counter;
        true
      | Pop -> Pqueue.pop q = Model.pop m)
    ops
  (* Drain both: every remaining entry must come out in model order too. *)
  && (let rec drain () =
        match (Pqueue.pop q, Model.pop m) with
        | None, None -> true
        | a, b when a = b -> drain ()
        | _ -> false
      in
      drain ())

let prop_matches_model =
  QCheck.Test.make ~count:500 ~name:"Pqueue pops = sorted (priority, seq) model" script_arb
    run_script

(* Equal priorities exclusively: pop order must be exactly insertion order. *)
let prop_fifo_on_ties =
  QCheck.Test.make ~count:200 ~name:"equal priorities pop FIFO"
    QCheck.(int_range 0 300)
    (fun n ->
      let q = Pqueue.create () in
      for i = 0 to n - 1 do
        Pqueue.push q ~priority:5. i
      done;
      let rec check i =
        match Pqueue.pop q with
        | None -> i = n
        | Some (_, v) -> v = i && check (i + 1)
      in
      check 0)

(* --- unit tests: NaN rejection, grow boundary, hot-path accessors --- *)

let test_nan_rejected () =
  let q = Pqueue.create () in
  Alcotest.check_raises "NaN priority"
    (Invalid_argument "Pqueue.push: NaN priority")
    (fun () -> Pqueue.push q ~priority:Float.nan ());
  Alcotest.(check int) "queue untouched" 0 (Pqueue.length q)

(* The lanes grow 0 -> 64 -> 128 -> ...; pushing 130 entries crosses both
   the first allocation and a doubling, and everything must still pop in
   model order. *)
let test_grow_boundary () =
  let q = Pqueue.create () in
  let n = 130 in
  for i = n - 1 downto 0 do
    Pqueue.push q ~priority:(float_of_int i) i
  done;
  Alcotest.(check int) "length across growth" n (Pqueue.length q);
  for i = 0 to n - 1 do
    match Pqueue.pop q with
    | Some (p, v) ->
      Alcotest.(check (float 0.)) "priority order" (float_of_int i) p;
      Alcotest.(check int) "payload order" i v
    | None -> Alcotest.fail "queue drained early"
  done;
  Alcotest.(check bool) "empty after drain" true (Pqueue.is_empty q)

let test_min_priority_pop_exn () =
  let q = Pqueue.create () in
  Alcotest.check_raises "min_priority empty"
    (Invalid_argument "Pqueue.min_priority: empty queue")
    (fun () -> ignore (Pqueue.min_priority q));
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Pqueue.pop_exn: empty queue")
    (fun () -> ignore (Pqueue.pop_exn q));
  Pqueue.push q ~priority:3. "b";
  Pqueue.push q ~priority:1. "a";
  Alcotest.(check (float 0.)) "min_priority" 1. (Pqueue.min_priority q);
  Alcotest.(check string) "pop_exn payload" "a" (Pqueue.pop_exn q);
  Alcotest.(check (float 0.)) "next min" 3. (Pqueue.min_priority q)

(* Popped and cleared slots must not retain payloads (the space-leak fix):
   observe collection of a popped payload through a weak pointer. *)
let test_no_payload_retention () =
  let q = Pqueue.create () in
  let w = Weak.create 1 in
  (let payload = Bytes.make 64 'x' in
   Weak.set w 0 (Some payload);
   Pqueue.push q ~priority:1. payload;
   ignore (Pqueue.pop_exn q));
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" true (Weak.get w 0 = None);
  let w2 = Weak.create 1 in
  (let payload = Bytes.make 64 'y' in
   Weak.set w2 0 (Some payload);
   Pqueue.push q ~priority:1. payload;
   Pqueue.clear q);
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "cleared payload collected" true (Weak.get w2 0 = None)

(* --- Event_queue on top: same order, monotone clock --- *)

let prop_event_queue_matches_model =
  QCheck.Test.make ~count:300 ~name:"Event_queue pops = sorted (time, seq) model"
    QCheck.(list_of_size (Gen.int_range 0 100) (make Gen.(map float_of_int (int_range 0 20))))
    (fun times ->
      let q = Event_queue.create () in
      let m = Model.create () in
      List.iteri
        (fun i t ->
          Event_queue.schedule q ~at:(Time.of_ms t) i;
          Model.push m ~priority:t i)
        times;
      let rec check last =
        match Event_queue.next q with
        | None -> Model.pop m = None
        | Some (at, ev) -> (
          match Model.pop m with
          | Some (mt, mv) ->
            Time.to_ms at = mt && ev = mv
            && Time.to_ms at >= last
            && Time.to_ms at = Event_queue.now_ms q
            && check (Time.to_ms at)
          | None -> false)
      in
      check 0.)

let () =
  Alcotest.run "pqueue"
    [
      ( "model",
        [
          QCheck_alcotest.to_alcotest prop_matches_model;
          QCheck_alcotest.to_alcotest prop_fifo_on_ties;
          QCheck_alcotest.to_alcotest prop_event_queue_matches_model;
        ] );
      ( "edges",
        [
          Alcotest.test_case "NaN rejected" `Quick test_nan_rejected;
          Alcotest.test_case "grow boundary" `Quick test_grow_boundary;
          Alcotest.test_case "min_priority / pop_exn" `Quick test_min_priority_pop_exn;
          Alcotest.test_case "no payload retention" `Quick test_no_payload_retention;
        ] );
    ]
