(* Tests for the features implemented beyond the paper's evaluation: the
   computation-cost (throughput) extension of §III-A3, the round-complexity
   metric, the Tendermint and Sync HotStuff extension protocols, the PBFT
   equivocation attack, and the pacemaker ablation knob. *)

module Core = Bftsim_core
module Net = Bftsim_net
module P = Bftsim_protocols

let run ?(protocol = "pbft") ?(n = 16) ?(seed = 11) ?(lambda = 1000.) ?(mu = 100.) ?crashed ?attack
    ?target ?costs ?max_time ?naive_reset () =
  let config =
    Core.Config.make protocol ~n ~lambda_ms:lambda ~seed
      ~delay:(Net.Delay_model.normal ~mu ~sigma:(mu /. 5.))
      ?crashed ?attack ?decisions_target:target ?costs ?max_time_ms:max_time ?naive_reset
  in
  Core.Controller.run config

let assert_live name (r : Core.Controller.result) =
  Alcotest.(check bool) (name ^ " live") true (r.outcome = Core.Controller.Reached_target);
  Alcotest.(check bool) (name ^ " safe") true r.safety_ok

(* --- Cost model --- *)

let test_cost_model_parsing () =
  Alcotest.(check bool) "none" true (Core.Cost_model.of_string "none" = Ok Core.Cost_model.zero);
  Alcotest.(check bool) "commodity" true
    (Core.Cost_model.of_string "commodity" = Ok Core.Cost_model.commodity);
  (match Core.Cost_model.of_string "custom:0.5,1.5" with
  | Ok { sign_ms = 0.5; verify_ms = 1.5 } -> ()
  | _ -> Alcotest.fail "custom parse failed");
  (match Core.Cost_model.of_string "custom:-1,2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative cost accepted");
  match Core.Cost_model.of_string "warp-speed" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense accepted"

let test_cost_model_cpu () =
  let cpu = Core.Cost_model.make_cpu () in
  Alcotest.(check (float 1e-9)) "first job" 2. (Core.Cost_model.charge cpu ~now_ms:0. ~cost_ms:2.);
  Alcotest.(check (float 1e-9)) "queued job" 4. (Core.Cost_model.charge cpu ~now_ms:1. ~cost_ms:2.);
  Alcotest.(check (float 1e-9)) "busy_until" 4. (Core.Cost_model.busy_until cpu);
  Alcotest.(check (float 1e-9)) "idle gap" 12. (Core.Cost_model.charge cpu ~now_ms:10. ~cost_ms:2.)

let test_costs_slow_consensus () =
  let free = run ~seed:7 () in
  let costly = run ~seed:7 ~costs:Core.Cost_model.rsa2048 () in
  assert_live "costly run" costly;
  Alcotest.(check bool) "crypto costs add latency" true (costly.time_ms > free.time_ms);
  Alcotest.(check bool) "throughput drops" true
    (Core.Controller.throughput costly < Core.Controller.throughput free)

let test_costs_zero_is_identity () =
  let a = run ~seed:8 () in
  let b = run ~seed:8 ~costs:Core.Cost_model.zero () in
  Alcotest.(check (float 1e-9)) "zero costs change nothing" a.time_ms b.time_ms

let test_costs_bind_throughput_with_n () =
  (* With per-message verification costs, larger n means quadratically more
     verification work per decision: throughput must degrade faster than in
     the cost-free model. *)
  let tp n costs =
    Core.Controller.throughput
      (run ~n ~seed:5 ~target:5 ~mu:20. ~costs ())
  in
  let free_ratio = tp 8 Core.Cost_model.zero /. tp 32 Core.Cost_model.zero in
  let costly_ratio = tp 8 Core.Cost_model.rsa2048 /. tp 32 Core.Cost_model.rsa2048 in
  Alcotest.(check bool) "compute-bound scaling is worse" true (costly_ratio > free_ratio)

(* --- Round complexity metric --- *)

let test_final_views_populated () =
  let r = run ~protocol:"hotstuff-ns" ~target:10 () in
  Alcotest.(check int) "one entry per node" 16 (Array.length r.final_views);
  Alcotest.(check bool) "views advanced" true (Array.for_all (fun v -> v >= 10) r.final_views)

let test_final_views_crashed () =
  let r = run ~crashed:[ 2 ] () in
  Alcotest.(check int) "crashed node marked" (-1) r.final_views.(2)

(* --- Tendermint --- *)

let test_tendermint_decides () =
  let r = run ~protocol:"tendermint" () in
  assert_live "tendermint" r;
  List.iter
    (fun (_, values) ->
      match values with
      | [ v ] -> Alcotest.(check string) "height-1 proposer's value" "v1/h1" v
      | _ -> Alcotest.fail "expected exactly one decision")
    r.decisions

let test_tendermint_multi_height () =
  let r = run ~protocol:"tendermint" ~target:5 () in
  assert_live "tendermint 5 heights" r;
  let _, values = List.find (fun (node, _) -> node = 0) r.decisions in
  Alcotest.(check int) "five heights" 5 (List.length values)

let test_tendermint_round_change_on_crashed_proposer () =
  (* Height 1's round-0 proposer is node 1; crash it and the round must
     advance to proposer 2. *)
  let r = run ~protocol:"tendermint" ~crashed:[ 1 ] () in
  assert_live "tendermint crashed proposer" r;
  let _, values = List.find (fun (node, _) -> node = 0) r.decisions in
  Alcotest.(check string) "round 1 proposer decided" "v2/h1" (List.hd values)

let test_tendermint_responsive () =
  let low = run ~protocol:"tendermint" ~lambda:1000. ~seed:3 () in
  let high = run ~protocol:"tendermint" ~lambda:3000. ~seed:3 () in
  Alcotest.(check bool) "latency independent of lambda" true
    (high.time_ms < 1.5 *. low.time_ms)

let test_tendermint_failstop_tolerance () =
  let r = run ~protocol:"tendermint" ~crashed:[ 11; 12; 13; 14; 15 ] ~target:3 () in
  assert_live "tendermint with 5 fail-stop" r

(* --- Sync HotStuff --- *)

let test_sync_hotstuff_decides () =
  let r = run ~protocol:"sync-hotstuff" ~mu:250. ~target:5 () in
  assert_live "sync-hotstuff" r

let test_sync_hotstuff_latency_scales_with_lambda () =
  (* The 2-delta commit wait makes it non-responsive, like the other
     synchronous protocols in Fig 4. *)
  let at lambda = (run ~protocol:"sync-hotstuff" ~lambda ~mu:250. ~seed:4 ~target:5 ()).time_ms in
  Alcotest.(check bool) "latency grows with lambda" true (at 3000. > 2. *. at 1000.)

let test_sync_hotstuff_minority_quorum () =
  Alcotest.(check int) "majority(16)" 9 (P.Sync_hotstuff.majority 16);
  Alcotest.(check int) "majority(5)" 3 (P.Sync_hotstuff.majority 5);
  (* Tolerates up to 7 of 16 crashed — beyond the n/3 protocols' budget. *)
  let r =
    run ~protocol:"sync-hotstuff" ~mu:250. ~crashed:[ 9; 10; 11; 12; 13; 14; 15 ] ~target:3
      ~max_time:180_000. ()
  in
  assert_live "sync-hotstuff with 7 fail-stop" r

let test_sync_hotstuff_unsafe_outside_assumption () =
  (* A synchronous protocol run with lambda far below the real delays is
     outside its model; the simulator's online agreement check must expose
     the resulting violation rather than hide it (run deterministically at
     a seed known to fork). *)
  let violated = ref false in
  for seed = 1 to 8 do
    let r =
      run ~protocol:"sync-hotstuff" ~lambda:150. ~mu:250. ~seed ~target:5 ~max_time:60_000. ()
    in
    if not r.safety_ok then violated := true
  done;
  Alcotest.(check bool) "assumption violation detected by the safety check" true !violated

(* --- HotStuff-Cogsworth --- *)

let test_cogsworth_decides () =
  let r = run ~protocol:"hotstuff-cogsworth" ~mu:250. ~target:10 () in
  assert_live "cogsworth" r

let test_cogsworth_skips_crashed_leaders () =
  (* Three consecutive crashed leaders: the escalating sync requests must
     reach a live leader and restart the chain. *)
  let r =
    run ~protocol:"hotstuff-cogsworth" ~mu:250. ~crashed:[ 13; 14; 15 ] ~target:10
      ~max_time:120_000. ()
  in
  assert_live "cogsworth crashed-leader recovery" r

let test_cogsworth_linear_pacemaker_traffic () =
  (* In the happy path the Cogsworth pacemaker is silent, so message usage
     matches plain chained HotStuff (no all-to-all timeout votes). *)
  let cogs = run ~protocol:"hotstuff-cogsworth" ~mu:250. ~target:10 ~seed:6 () in
  let hot = run ~protocol:"hotstuff-ns" ~mu:250. ~target:10 ~seed:6 () in
  Alcotest.(check int) "same happy-path message count" hot.messages_sent cogs.messages_sent

(* --- Equivocation attack --- *)

let test_equivocation_safe_but_slower () =
  let attacker = P.Equivocation_attack.pbft_equivocation ~victim:0 in
  let plain = run ~seed:21 () in
  let config =
    Core.Config.make "pbft" ~n:16 ~seed:21 ~delay:(Net.Delay_model.normal ~mu:100. ~sigma:20.)
  in
  let attacked = Core.Controller.run ~attacker config in
  Alcotest.(check bool) "still decides" true (attacked.outcome = Core.Controller.Reached_target);
  Alcotest.(check bool) "agreement survives equivocation" true attacked.safety_ok;
  Alcotest.(check bool) "equivocation costs a view change" true
    (attacked.time_ms > plain.time_ms +. 500.);
  (* Nobody may decide a forged value. *)
  List.iter
    (fun (_, values) ->
      List.iter
        (fun v ->
          Alcotest.(check bool) "no forged value decided" false
            (String.length v > 7 && String.sub v (String.length v - 7) 7 = "#forged"))
        values)
    attacked.decisions

let test_equivocation_many_seeds_never_unsafe () =
  for seed = 1 to 10 do
    let config =
      Core.Config.make "pbft" ~n:16 ~seed ~delay:(Net.Delay_model.normal ~mu:100. ~sigma:20.)
        ~max_time_ms:60_000.
    in
    let r =
      Core.Controller.run ~attacker:(P.Equivocation_attack.pbft_equivocation ~victim:0) config
    in
    Alcotest.(check bool) (Printf.sprintf "seed %d safe" seed) true r.safety_ok
  done

(* --- Gossip transport --- *)

let run_transport ~protocol ~transport ~seed =
  let config =
    Core.Config.make protocol ~n:16 ~seed ~transport
      ~delay:(Net.Delay_model.normal ~mu:100. ~sigma:20.)
      ~max_time_ms:120_000.
  in
  Core.Controller.run config

let test_gossip_decides () =
  List.iter
    (fun protocol ->
      let r =
        run_transport ~protocol ~transport:(Core.Config.Gossip { fanout = 8 }) ~seed:4
      in
      assert_live (protocol ^ " over gossip") r)
    [ "pbft"; "algorand"; "hotstuff-ns" ]

let test_gossip_costs_messages_and_hops () =
  let direct = run_transport ~protocol:"pbft" ~transport:Core.Config.Direct ~seed:4 in
  let gossip = run_transport ~protocol:"pbft" ~transport:(Core.Config.Gossip { fanout = 4 }) ~seed:4 in
  assert_live "pbft over gossip(4)" gossip;
  Alcotest.(check bool) "gossip sends more messages" true
    (gossip.messages_sent > 2 * direct.messages_sent);
  Alcotest.(check bool) "gossip pays extra hops" true (gossip.time_ms > direct.time_ms)

let test_gossip_default_is_direct () =
  let explicit = run_transport ~protocol:"pbft" ~transport:Core.Config.Direct ~seed:9 in
  let default =
    Core.Controller.run
      (Core.Config.make "pbft" ~n:16 ~seed:9 ~delay:(Net.Delay_model.normal ~mu:100. ~sigma:20.)
         ~max_time_ms:120_000.)
  in
  Alcotest.(check (float 1e-9)) "identical runs" explicit.time_ms default.time_ms;
  Alcotest.(check int) "identical messages" explicit.messages_sent default.messages_sent

let test_gossip_config_parse () =
  match Core.Config.of_keyvalues [ ("protocol", "pbft"); ("transport", "gossip:6") ] with
  | Ok { Core.Config.transport = Core.Config.Gossip { fanout = 6 }; _ } -> ()
  | Ok _ -> Alcotest.fail "wrong transport parsed"
  | Error e -> Alcotest.failf "parse failed: %s" e

(* --- Pacemaker ablation knob --- *)

let test_ablation_policies_run () =
  List.iter
    (fun naive_reset ->
      let r = run ~protocol:"hotstuff-ns" ~target:10 ~naive_reset () in
      assert_live "hotstuff under ablation policy" r)
    [ P.Chained_core.Reset_on_commit; P.Chained_core.Never_reset; P.Chained_core.Per_view_number ]

let test_ablation_policy_changes_behaviour () =
  (* Under crashed-leader churn the three policies accumulate back-off
     differently, so run times must differ. *)
  (* Crashed leaders 5 and 6 are met twice (views 5-6 and 21-22 of the
     round-robin) within a 20-decision run: the second encounter pays the
     accumulated back-off only under Never_reset. *)
  let time naive_reset =
    (run ~protocol:"hotstuff-ns" ~crashed:[ 5; 6 ] ~mu:250. ~target:20 ~max_time:240_000.
       ~naive_reset ())
      .time_ms
  in
  let commit = time P.Chained_core.Reset_on_commit in
  let never = time P.Chained_core.Never_reset in
  Alcotest.(check bool) "policies distinguishable" true (commit <> never)

let () =
  Alcotest.run "extensions"
    [
      ( "cost_model",
        [
          Alcotest.test_case "parsing" `Quick test_cost_model_parsing;
          Alcotest.test_case "cpu accounting" `Quick test_cost_model_cpu;
          Alcotest.test_case "costs slow consensus" `Quick test_costs_slow_consensus;
          Alcotest.test_case "zero costs are identity" `Quick test_costs_zero_is_identity;
          Alcotest.test_case "compute-bound scaling" `Slow test_costs_bind_throughput_with_n;
        ] );
      ( "round_complexity",
        [
          Alcotest.test_case "final views populated" `Quick test_final_views_populated;
          Alcotest.test_case "crashed marked" `Quick test_final_views_crashed;
        ] );
      ( "tendermint",
        [
          Alcotest.test_case "decides" `Quick test_tendermint_decides;
          Alcotest.test_case "multi-height SMR" `Quick test_tendermint_multi_height;
          Alcotest.test_case "round change on crash" `Quick
            test_tendermint_round_change_on_crashed_proposer;
          Alcotest.test_case "responsive" `Quick test_tendermint_responsive;
          Alcotest.test_case "fail-stop tolerance" `Quick test_tendermint_failstop_tolerance;
        ] );
      ( "sync_hotstuff",
        [
          Alcotest.test_case "decides" `Quick test_sync_hotstuff_decides;
          Alcotest.test_case "non-responsive (lambda-bound)" `Quick
            test_sync_hotstuff_latency_scales_with_lambda;
          Alcotest.test_case "minority fault tolerance" `Quick test_sync_hotstuff_minority_quorum;
          Alcotest.test_case "unsafe outside its assumption" `Slow
            test_sync_hotstuff_unsafe_outside_assumption;
        ] );
      ( "cogsworth",
        [
          Alcotest.test_case "decides" `Quick test_cogsworth_decides;
          Alcotest.test_case "skips crashed leaders" `Quick test_cogsworth_skips_crashed_leaders;
          Alcotest.test_case "linear pacemaker traffic" `Quick
            test_cogsworth_linear_pacemaker_traffic;
        ] );
      ( "equivocation",
        [
          Alcotest.test_case "safe but slower" `Quick test_equivocation_safe_but_slower;
          Alcotest.test_case "never unsafe across seeds" `Slow
            test_equivocation_many_seeds_never_unsafe;
        ] );
      ( "gossip",
        [
          Alcotest.test_case "protocols decide over gossip" `Quick test_gossip_decides;
          Alcotest.test_case "gossip trades messages and hops" `Quick
            test_gossip_costs_messages_and_hops;
          Alcotest.test_case "default transport is direct" `Quick test_gossip_default_is_direct;
          Alcotest.test_case "config parsing" `Quick test_gossip_config_parse;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "all policies run" `Quick test_ablation_policies_run;
          Alcotest.test_case "policies differ under churn" `Quick
            test_ablation_policy_changes_behaviour;
        ] );
    ]
