(* Tests for the packet-level baseline simulator: packet framing, the
   physical-layer models, and cross-validation against the main simulator
   (the §III-D substitution: two independent engines must agree on PBFT's
   decisions). *)

module B = Bftsim_baseline
module Core = Bftsim_core
module Conf = Bftsim_conformance

(* --- Packet --- *)

let test_packet_make () =
  let p = B.Packet.make ~id:1 ~src:0 ~dst:1 ~payload_bytes:100 B.Packet.Syn in
  Alcotest.(check int) "size includes header" (100 + B.Packet.header_bytes) p.B.Packet.size_bytes;
  Alcotest.(check bool) "fresh packet verifies" true (B.Packet.verify p)

let test_packet_checksum_detects_corruption () =
  let p =
    B.Packet.make ~id:1 ~src:0 ~dst:1 ~payload_bytes:100
      (B.Packet.Data { msg_id = 7; seq = 0; total = 1 })
  in
  Bytes.set p.B.Packet.payload 10 'X';
  Alcotest.(check bool) "corrupted frame rejected" false (B.Packet.verify p)

let test_packet_copy_at_hop () =
  let p = B.Packet.make ~id:1 ~src:0 ~dst:1 ~payload_bytes:10 B.Packet.Syn in
  let before = p.B.Packet.payload in
  B.Packet.copy_at_hop p;
  Alcotest.(check bool) "fresh buffer" true (p.B.Packet.payload != before);
  Alcotest.(check bool) "same content" true (Bytes.equal p.B.Packet.payload before)

(* --- Phys --- *)

let test_link_serialization_and_propagation () =
  let link = B.Phys.make_link ~bandwidth_mbps:8. ~propagation_ms:10. in
  (* 1000 bytes at 8 Mbps = 1 ms serialization, plus 10 ms propagation. *)
  let arrival = B.Phys.transmit link ~now_ms:0. ~bytes:1000 in
  Alcotest.(check (float 1e-6)) "arrival" 11. arrival

let test_link_queuing () =
  let link = B.Phys.make_link ~bandwidth_mbps:8. ~propagation_ms:0. in
  let a1 = B.Phys.transmit link ~now_ms:0. ~bytes:1000 in
  let a2 = B.Phys.transmit link ~now_ms:0. ~bytes:1000 in
  Alcotest.(check (float 1e-6)) "first done at 1ms" 1. a1;
  Alcotest.(check (float 1e-6)) "second queues behind first" 2. a2;
  Alcotest.(check bool) "queue depth visible" true (B.Phys.link_queue_depth_ms link ~now_ms:0. > 0.)

let test_cpu_charge () =
  let cpu = B.Phys.make_cpu () in
  let f1 = B.Phys.charge cpu ~now_ms:0. ~cost_ms:5. in
  let f2 = B.Phys.charge cpu ~now_ms:0. ~cost_ms:5. in
  Alcotest.(check (float 1e-9)) "first job" 5. f1;
  Alcotest.(check (float 1e-9)) "second job queues" 10. f2;
  let f3 = B.Phys.charge cpu ~now_ms:100. ~cost_ms:5. in
  Alcotest.(check (float 1e-9)) "idle gap skipped" 105. f3

let test_link_validation () =
  match B.Phys.make_link ~bandwidth_mbps:0. ~propagation_ms:1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bandwidth accepted"

(* --- Engine --- *)

let test_engine_pbft_decides () =
  let r = B.Engine.run ~n:8 ~seed:1 () in
  Alcotest.(check bool) "decides" true r.B.Engine.outcome_ok;
  Alcotest.(check bool) "agreement" true r.B.Engine.safety_ok;
  Alcotest.(check bool) "packets moved" true (r.B.Engine.packets > 0);
  Alcotest.(check bool) "many more events than main sim" true (r.B.Engine.events > 100)

let test_engine_deterministic () =
  let a = B.Engine.run ~n:8 ~seed:5 () and b = B.Engine.run ~n:8 ~seed:5 () in
  Alcotest.(check (float 1e-9)) "same sim time" a.B.Engine.time_ms b.B.Engine.time_ms;
  Alcotest.(check int) "same packets" a.B.Engine.packets b.B.Engine.packets

let test_engine_other_protocols () =
  (* The baseline reuses the protocol implementations unchanged. *)
  List.iter
    (fun protocol ->
      let r = B.Engine.run ~protocol ~n:8 ~seed:2 () in
      Alcotest.(check bool) (protocol ^ " decides over packets") true r.B.Engine.outcome_ok;
      Alcotest.(check bool) (protocol ^ " agreement") true r.B.Engine.safety_ok)
    [ "librabft"; "add-v1" ]

let test_engine_memory_model () =
  Alcotest.(check bool) "memory grows quadratically" true
    (B.Engine.estimated_memory_bytes ~n:64 > 16 * B.Engine.estimated_memory_bytes ~n:16 / 2);
  Alcotest.(check bool) "512 nodes are infeasible (> 4 GiB)" true
    (B.Engine.estimated_memory_bytes ~n:512 > 4 * 1024 * 1024 * 1024)

let test_engine_cross_validation_with_main () =
  (* §III-D substitution: the same PBFT logic on two independent engines
     must produce the same decided value (node 0 is primary and proposes
     its own input in both worlds). *)
  let b = B.Engine.run ~n:8 ~seed:3 () in
  let m =
    Core.Controller.run
      (Core.Config.make "pbft" ~n:8 ~seed:3 ~delay:(Bftsim_net.Delay_model.normal ~mu:250. ~sigma:50.))
  in
  let value_of decisions =
    match List.find_opt (fun (_, values) -> values <> []) decisions with
    | Some (_, v :: _) -> v
    | _ -> Alcotest.fail "no decision"
  in
  Alcotest.(check string) "same decided value across engines" (value_of m.Core.Controller.decisions)
    (value_of b.B.Engine.decisions)

let test_engine_differential_oracles () =
  (* Differential testing with the conformance oracles: run the same
     protocol on both engines and hold BOTH result sets to the same
     agreement / validity / integrity standard.  The baseline has no
     Controller.result of its own, so its decision table is judged by
     substituting it into the main run's record — the oracles only read the
     config and the decisions. *)
  List.iter
    (fun (protocol, seeds) ->
      List.iter
        (fun seed ->
          let config = Core.Config.make protocol ~n:8 ~seed ~decisions_target:1 in
          let m = Core.Controller.run config in
          let b = B.Engine.run ~protocol ~decisions_target:1 ~n:8 ~seed () in
          Alcotest.(check bool) (Printf.sprintf "%s seed=%d baseline decides" protocol seed) true
            b.B.Engine.outcome_ok;
          let judge label decisions =
            let substituted = { m with Core.Controller.decisions; trace = None } in
            let verdicts =
              Conf.Oracle.agreement config substituted
              @ Conf.Oracle.validity config substituted
              @ Conf.Oracle.integrity config substituted
            in
            List.iter
              (fun v ->
                Alcotest.fail
                  (Printf.sprintf "%s %s seed=%d: %s oracle: %s" protocol label seed
                     v.Conf.Oracle.oracle v.Conf.Oracle.detail))
              verdicts
          in
          judge "main" m.Core.Controller.decisions;
          judge "baseline" b.B.Engine.decisions;
          (* For value-deciding protocols the two engines must also decide
             the SAME value, not merely each agree internally. *)
          if List.mem protocol Conf.Oracle.value_deciding then begin
            let value_of decisions =
              match List.find_opt (fun (_, values) -> values <> []) decisions with
              | Some (_, v :: _) -> v
              | _ -> Alcotest.fail (protocol ^ ": no decision")
            in
            Alcotest.(check string)
              (Printf.sprintf "%s seed=%d: engines decide the same value" protocol seed)
              (value_of m.Core.Controller.decisions)
              (value_of b.B.Engine.decisions)
          end)
        seeds)
    [ ("pbft", [ 3; 9; 17 ]); ("add-v1", [ 3; 9 ]); ("librabft", [ 3; 9 ]) ]

let test_engine_slower_than_main () =
  let wall_b, _ = B.Engine.wall_clock_of_run ~n:16 ~seed:1 () in
  let wall_m, _ = Core.Controller.wall_clock_of_run (Core.Experiments.fig2_config ~n:16) in
  Alcotest.(check bool) "packet-level is at least 10x slower" true (wall_b > 10. *. wall_m)

let () =
  Alcotest.run "baseline"
    [
      ( "packet",
        [
          Alcotest.test_case "framing" `Quick test_packet_make;
          Alcotest.test_case "checksum catches corruption" `Quick
            test_packet_checksum_detects_corruption;
          Alcotest.test_case "hop copies" `Quick test_packet_copy_at_hop;
        ] );
      ( "phys",
        [
          Alcotest.test_case "serialization + propagation" `Quick
            test_link_serialization_and_propagation;
          Alcotest.test_case "queuing" `Quick test_link_queuing;
          Alcotest.test_case "cpu accounting" `Quick test_cpu_charge;
          Alcotest.test_case "validation" `Quick test_link_validation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "pbft decides" `Quick test_engine_pbft_decides;
          Alcotest.test_case "determinism" `Quick test_engine_deterministic;
          Alcotest.test_case "other protocols run" `Slow test_engine_other_protocols;
          Alcotest.test_case "memory model" `Quick test_engine_memory_model;
          Alcotest.test_case "cross-validation with main simulator" `Quick
            test_engine_cross_validation_with_main;
          Alcotest.test_case "differential oracles across engines" `Slow
            test_engine_differential_oracles;
          Alcotest.test_case "fidelity costs wall time" `Slow test_engine_slower_than_main;
        ] );
    ]
